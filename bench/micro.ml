(* Bechamel micro-benchmarks for the substrate operations: one Test.make
   per primitive, run under the monotonic clock with OLS estimation. *)

open Bechamel
open Cdse

let dist_pair =
  let mk off = Dist.make ~compare:Int.compare (List.init 16 (fun i -> (i + off, Rat.of_ints 1 16))) in
  (mk 0, mk 4)

let tests =
  let bits_a = Bits.of_string (String.concat "" (List.init 32 (fun i -> if i mod 3 = 0 then "1" else "0"))) in
  let big = Bignat.pow (Bignat.of_int 12345) 20 in
  let rat_a = Rat.of_ints 355 113 and rat_b = Rat.of_ints 22 7 in
  let value =
    Value.list (List.init 8 (fun i -> Value.pair (Value.int i) (Value.str "payload")))
  in
  let coin = Cdse_gen.Workloads.coin "c" in
  let sched = Scheduler.bounded 2 (Scheduler.first_enabled coin) in
  let da, db = dist_pair in
  [ Test.make ~name:"bits.append" (Staged.stage (fun () -> Bits.append bits_a bits_a));
    Test.make ~name:"bignat.mul" (Staged.stage (fun () -> Bignat.mul big big));
    Test.make ~name:"bignat.divmod" (Staged.stage (fun () -> Bignat.divmod big (Bignat.of_int 997)));
    Test.make ~name:"rat.add" (Staged.stage (fun () -> Rat.add rat_a rat_b));
    Test.make ~name:"value.to_bits" (Staged.stage (fun () -> Value.to_bits value));
    Test.make ~name:"value.of_bits" (let bits = Value.to_bits value in Staged.stage (fun () -> Value.of_bits bits));
    Test.make ~name:"dist.product" (Staged.stage (fun () -> Dist.product da db));
    Test.make ~name:"stat.distance" (Staged.stage (fun () -> Stat.sup_set_distance da db));
    Test.make ~name:"psioa.step" (Staged.stage (fun () -> Psioa.step coin (Psioa.start coin) (Action.make "c.flip")));
    Test.make ~name:"measure.exec_dist" (Staged.stage (fun () -> Measure.exec_dist coin sched ~depth:3));
    Test.make ~name:"bisim.coin" (Staged.stage (fun () -> Bisim.bisimilar coin coin));
    Test.make ~name:"measure.reach_prob"
      (let walk = Cdse_gen.Workloads.random_walk ~span:4 "w" in
       let wsched = Scheduler.bounded 4 (Scheduler.first_enabled walk) in
       Staged.stage (fun () ->
           Measure.reach_prob walk wsched ~depth:4 ~pred:(fun q ->
               Value.equal q (Value.tag "walk" (Value.int 4))))) ]

let run () =
  Pretty.section "Micro-benchmarks (bechamel, ns/op)";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"micro" ~fmt:"%s/%s" tests) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Bechamel.Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name res acc ->
        match Analyze.OLS.estimates res with
        | Some (e :: _) -> (name, e) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  Pretty.table ~header:[ "operation"; "ns/op" ]
    (List.map (fun (name, est) -> [ name; Printf.sprintf "%.1f" est ]) rows);
  (* Strip the grouping prefix ("micro/dist.product" -> "dist.product") so
     callers key results by operation name. *)
  List.map
    (fun (name, est) ->
      match String.index_opt name '/' with
      | Some i -> (String.sub name (i + 1) (String.length name - i - 1), est)
      | None -> (name, est))
    rows
