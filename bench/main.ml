(* Benchmark & experiment harness.

     dune exec bench/main.exe               — run every experiment + micro suite
     dune exec bench/main.exe -- E3 E6      — run selected experiments
     dune exec bench/main.exe -- micro      — micro-benchmarks only
     dune exec bench/main.exe -- check-json — validate BENCH_cdse.json keys
     dune exec bench/main.exe -- check-trace FILE
                                            — validate a Chrome trace-event file
     dune exec bench/main.exe -- serve-smoke --domains 2
                                            — daemon wire-protocol smoke gate
     dune exec bench/main.exe -- par --domains 4
                                            — multicore conformance smoke

   Add --stats to any run to collect engine observability counters
   (lib/obs) and print a report at the end. Note that regenerating
   BENCH_cdse.json ("micro") resets the counters per exec_dist cell while
   gathering its counters block, so the final report then covers the runs
   since the last cell.

   Each experiment regenerates one table of EXPERIMENTS.md; checks on the
   theorem-predicted shapes are enforced (non-zero exit on violation). *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let stats = List.mem "--stats" args in
  let args = List.filter (fun a -> not (String.equal a "--stats")) args in
  (* --domains N: domain count for the "par" experiment (default 2).
     --depth N: override the per-workload depths of the "par" experiment
     and the exec_dist_domains bench cells.
     --compress LEVEL: off | hcons | quotient, applied by the "par"
     experiment to both the sequential reference and the parallel run.
     --engine E: auto | layered | subtree, the multicore engine of the
     "par" experiment's timed parallel run.
     --compromise K: clamp the E18 compromise-budget sweep to the single
     budget K (default: sweep k = 0..3).
     --trace FILE: record a span trace of the experiment runs and write
     Chrome trace-event JSON to FILE (plus a text summary to stdout). *)
  let rec extract_flags acc = function
    | "--domains" :: n :: rest ->
        Workbench.domains := max 1 (int_of_string n);
        extract_flags acc rest
    | "--trace" :: file :: rest ->
        Workbench.trace_file := Some file;
        extract_flags acc rest
    | "--depth" :: n :: rest ->
        Workbench.par_depth := Some (max 1 (int_of_string n));
        extract_flags acc rest
    | "--compromise" :: n :: rest ->
        Workbench.compromise := Some (max 0 (int_of_string n));
        extract_flags acc rest
    | "--compress" :: level :: rest ->
        (Workbench.compress :=
           match level with
           | "off" -> `Off
           | "hcons" -> `Hcons
           | "quotient" -> `Quotient
           | other ->
               prerr_endline
                 ("--compress: expected off|hcons|quotient, got " ^ other);
               exit 2);
        extract_flags acc rest
    | "--engine" :: e :: rest ->
        (Workbench.engine :=
           match e with
           | "auto" -> `Auto
           | "layered" -> `Layered
           | "subtree" -> `Subtree
           | other ->
               prerr_endline ("--engine: expected auto|layered|subtree, got " ^ other);
               exit 2);
        extract_flags acc rest
    | a :: rest -> extract_flags (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_flags [] args in
  match args with
  | "check-json" :: _ -> Bench_json.check ()
  | "serve-smoke" :: _ -> Serve_smoke.run ~domains:!Workbench.domains ()
  | "check-trace" :: file :: _ -> Bench_json.check_trace file
  | [ "check-trace" ] ->
      prerr_endline "check-trace: expected a trace file argument";
      exit 2
  | args ->
      let run_micro = args = [] || List.mem "micro" args in
      let selected name = args = [] || List.mem name args in
      if stats then Cdse.Obs.set_enabled true;
      (match !Workbench.trace_file with
      | Some _ -> Cdse.Trace.start ()
      | None -> ());
      print_endline "cdse experiment harness — composable dynamic secure emulation";
      print_endline "(paper: brief announcement, no tables/figures; experiments per DESIGN.md §5)";
      List.iter (fun (name, f) -> if selected name then f ()) Experiments.all;
      (* The --trace session covers the experiments only: it must be
         written out before the micro suite runs, because regenerating
         BENCH_cdse.json starts and clears its own short trace sessions
         for the per-cell timing-attribution blocks. *)
      (match !Workbench.trace_file with
      | Some file ->
          Cdse.Trace.stop ();
          Cdse.Trace.write_chrome file;
          Format.printf "@.-- trace (--trace) --@.%a@.wrote %s@." Cdse.Trace.pp_summary
            (Cdse.Trace.summary ()) file;
          Cdse.Trace.clear ()
      | None -> ());
      if run_micro then Bench_json.emit (Micro.run ());
      Workbench.summary ();
      if stats then
        Format.printf "@.-- stats (--stats) --@.%a@." Cdse.Obs.report (Cdse.Obs.snapshot ())
