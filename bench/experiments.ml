(* The experiment suite designed in DESIGN.md §5. The paper (a brief
   announcement) has no tables or figures of its own; every lemma/theorem
   becomes an empirically validated experiment, and every table printed
   here is recorded in EXPERIMENTS.md. Parameters are fixed seeds: runs are
   reproducible bit-for-bit (timings vary, shapes do not). *)

open Cdse
open Workbench

let cell = string_of_int

(* ------------------------------------------------------------------ E1 *)
(* Lemma 4.3 / B.1: bound(A1 ‖ A2) ≤ c_comp · (b1 + b2). The lemma predicts
   a constant c_comp independent of the automata. *)

let e1 () =
  Pretty.section "E1  Lemma 4.3: composition preserves boundedness (PSIOA)";
  let rng = Rng.make 101 in
  let rows, worst =
    List.fold_left
      (fun (rows, worst) n ->
        let a1 = Cdse_gen.Random_auto.make ~rng ~name:"ra" ~n_states:n () in
        let a2 = Cdse_gen.Random_auto.make ~rng ~name:"rb" ~n_states:n () in
        let r1 = Bounded.measure_psioa a1 in
        let r2 = Bounded.measure_psioa a2 in
        let r12 = Bounded.measure_psioa ~max_states:400 (Compose.pair a1 a2) in
        let c = Bounded.comp_ratio r1 r2 r12 in
        ( rows
          @ [ [ cell n; cell r1.Bounded.bound; cell r2.Bounded.bound; cell r12.Bounded.bound;
                Printf.sprintf "%.3f" c ] ],
          Float.max worst c ))
      ([], 0.0) [ 2; 4; 8; 16; 32 ]
  in
  Pretty.table ~header:[ "states/side"; "b1"; "b2"; "b(A1||A2)"; "c_comp" ] rows;
  let ok = record_check ~experiment:"E1" (worst <= 4.0) in
  Printf.printf "claim: c_comp bounded by a constant (≤ 4 here): %s (max %.3f)\n" (verdict ok) worst

(* ------------------------------------------------------------------ E2 *)
(* Lemma 4.5 / B.3: bound(hide(A,S)) ≤ c_hide · (b + b'). *)

let e2 () =
  Pretty.section "E2  Lemma 4.5: hiding preserves boundedness";
  let rng = Rng.make 202 in
  let rows, worst =
    List.fold_left
      (fun (rows, worst) n ->
        let a = Cdse_gen.Random_auto.make ~rng ~name:"rh" ~n_states:n ~n_actions:6 () in
        let before = Bounded.measure_psioa a in
        (* Hide half of the action universe's outputs. *)
        let outs =
          Action_set.filter
            (fun act -> Action.hash act mod 2 = 0)
            (Psioa.universal_actions a)
        in
        let hidden = Hide.psioa_const a outs in
        let after = Bounded.measure_psioa hidden in
        let recognizer_bits = Bits.length (Encode.action_set outs) in
        let c = Bounded.hide_ratio ~before ~after ~recognizer_bits in
        ( rows
          @ [ [ cell n; cell before.Bounded.bound; cell recognizer_bits;
                cell after.Bounded.bound; Printf.sprintf "%.3f" c ] ],
          Float.max worst c ))
      ([], 0.0) [ 2; 4; 8; 16; 32 ]
  in
  Pretty.table ~header:[ "states"; "b"; "b' (recognizer)"; "b(hide)"; "c_hide" ] rows;
  let ok = record_check ~experiment:"E2" (worst <= 2.0) in
  Printf.printf "claim: c_hide bounded by a constant (≤ 2 here): %s (max %.3f)\n" (verdict ok) worst

(* ------------------------------------------------------------------ E3 *)
(* Lemma D.1 / 4.29: dummy adversary insertion is exact (ε = 0) with
   q2 = 2·q1, across alphabet sizes and schedulers. *)

let e3 () =
  Pretty.section "E3  Lemma D.1: dummy-adversary insertion (Forward^s)";
  let g = Dummy.prefix_renaming "g." in
  let rows = ref [] in
  let all_exact = ref true in
  List.iter
    (fun alpha ->
      let alphabet = List.init alpha Fun.id in
      let relay = Cdse_gen.Sworkloads.relay ~alphabet "proto" in
      let adv =
        Cdse_gen.Sworkloads.relay_adversary ~alphabet ~proto_name:"proto"
          ~rename:(fun n -> "g." ^ n)
          "adv"
      in
      let env = Cdse_gen.Sworkloads.relay_env ~alphabet ~proto_name:"proto" "env" in
      let setup = Forwarding.make_setup ~structured:relay ~g ~env ~adv () in
      let lhs = Forwarding.lhs setup in
      List.iter
        (fun (sched_name, sched) ->
          let report, t =
            time_it (fun () ->
                Forwarding.check_lemma_d1 setup ~insight_of:Insight.accept ~sched ~q1:6 ~depth:6)
          in
          all_exact := !all_exact && report.Forwarding.exact;
          rows :=
            [ cell alpha; sched_name; Rat.to_string report.Forwarding.distance;
              cell report.Forwarding.lhs_steps; cell report.Forwarding.rhs_steps; ms t ]
            :: !rows)
        [ ("first-enabled", Scheduler.first_enabled lhs); ("uniform", Scheduler.uniform lhs) ])
    [ 1; 2; 3 ];
  Pretty.table
    ~header:[ "alphabet"; "scheduler"; "distance"; "q1"; "q2"; "time(ms)" ]
    (List.rev !rows);
  let ok = record_check ~experiment:"E3" !all_exact in
  Printf.printf "claim: distance exactly 0 and q2 = 2·q1: %s\n" (verdict ok)

(* ------------------------------------------------------------------ E4 *)
(* Theorem 4.16 / B.4: transitivity with additive slack ε13 ≤ ε12 + ε23. *)

let e4 () =
  Pretty.section "E4  Theorem 4.16: transitivity, additive ε";
  let env = Cdse_gen.Workloads.acceptor ~watch:[ ("c.heads", None) ] "env" in
  let dist pa pb =
    let v =
      Impl.approx_le ~schema:(Schema.deterministic ~bound:4) ~insight_of:Insight.accept
        ~envs:[ env ] ~eps:Rat.one ~q1:4 ~q2:4 ~depth:6
        ~a:(Cdse_gen.Workloads.coin ~p:pa "c")
        ~b:(Cdse_gen.Workloads.coin ~p:pb "c")
    in
    v.Impl.worst
  in
  let chains =
    [ (Rat.half, Rat.of_ints 5 8, Rat.of_ints 3 4);
      (Rat.half, Rat.of_ints 2 3, Rat.of_ints 5 6);
      (Rat.of_ints 1 4, Rat.half, Rat.one);
      (Rat.of_ints 1 3, Rat.of_ints 1 3, Rat.of_ints 2 3) ]
  in
  let ok = ref true in
  let rows =
    List.map
      (fun (p1, p2, p3) ->
        let d12 = dist p1 p2 and d23 = dist p2 p3 and d13 = dist p1 p3 in
        let additive = Rat.compare d13 (Rat.add d12 d23) <= 0 in
        ok := !ok && additive;
        [ Rat.to_string p1; Rat.to_string p2; Rat.to_string p3; Rat.to_string d12;
          Rat.to_string d23; Rat.to_string d13; verdict additive ])
      chains
  in
  Pretty.table ~header:[ "p1"; "p2"; "p3"; "ε12"; "ε23"; "ε13"; "ε13 ≤ ε12+ε23" ] rows;
  let ok = record_check ~experiment:"E4" !ok in
  Printf.printf "claim: slack adds along chains: %s\n" (verdict ok)

(* ------------------------------------------------------------------ E5 *)
(* Lemma 4.13 / Theorem 4.15: composing a context onto both sides does not
   increase the distinguishing distance. *)

let e5 () =
  Pretty.section "E5  Lemma 4.13: context composition does not amplify ε";
  let env = Cdse_gen.Workloads.acceptor ~watch:[ ("c.heads", None) ] "env" in
  let fair = Cdse_gen.Workloads.coin ~p:Rat.half "c" in
  let biased = Cdse_gen.Workloads.coin ~p:(Rat.of_ints 3 4) "c" in
  let check ~q a b =
    (Impl.approx_le
       ~schema:(Schema.make ~name:"det" (fun x -> [ Scheduler.first_enabled x ]))
       ~insight_of:Insight.accept ~envs:[ env ] ~eps:Rat.one ~q1:q ~q2:q ~depth:(q + 2) ~a ~b)
      .Impl.worst
  in
  let base = check ~q:6 fair biased in
  let ok = ref true in
  let rows =
    List.map
      (fun ctx_size ->
        let ctx = Cdse_gen.Workloads.counter ~bound:ctx_size "ctx" in
        let d = check ~q:(6 + ctx_size) (Compose.pair ctx fair) (Compose.pair ctx biased) in
        let not_amplified = Rat.compare d base <= 0 in
        ok := !ok && not_amplified;
        [ cell ctx_size; Rat.to_string base; Rat.to_string d; verdict not_amplified ])
      [ 1; 2; 3; 4 ]
  in
  Pretty.table ~header:[ "context size"; "ε (plain)"; "ε (with context)"; "no amplification" ] rows;
  let ok = record_check ~experiment:"E5" !ok in
  Printf.printf "claim: context preserves the implementation distance: %s\n" (verdict ok)

(* ------------------------------------------------------------------ E6 *)
(* Theorem 4.30 / D.2: secure-emulation composability with the proof's
   composite simulator, for growing numbers of composed instances. *)

let e6 () =
  Pretty.section "E6  Theorem 4.30: composable secure emulation (OTP channels)";
  let ok = ref true in
  let rows =
    List.map
      (fun b ->
        let names = List.init b (fun i -> Printf.sprintf "n%d" i) in
        let reals = List.map Secure_channel.real names in
        let ideals = List.map Secure_channel.ideal names in
        let components =
          List.map2
            (fun name (real, ideal) ->
              let g = Dummy.prefix_renaming (Printf.sprintf "g%s." name) in
              { Emulation.real; ideal; g; dsim = Secure_channel.dsim ~g name })
            names (List.combine reals ideals)
        in
        let adv_hat =
          match List.map Secure_channel.adversary names with
          | [ a ] -> a
          | advs -> Compose.parallel advs
        in
        let real_hat =
          match reals with [ r ] -> r | r :: rest -> List.fold_left Structured.compose r rest | [] -> assert false
        in
        let ideal_hat =
          match ideals with [ i ] -> i | i :: rest -> List.fold_left Structured.compose i rest | [] -> assert false
        in
        let sim_hat = Emulation.composite_simulator ~components ~adv:adv_hat in
        let bound = 8 + (8 * b) in
        let v, t =
          time_it (fun () ->
              Emulation.check
                ~schema:(Schema.make ~name:"det" (fun x -> [ Scheduler.first_enabled x ]))
                ~insight_of:Insight.accept
                ~envs:[ Secure_channel.env_guess ~msg:1 "n0" ]
                ~eps:Rat.zero ~q1:bound ~q2:bound ~depth:(bound + 2) ~adversaries:[ adv_hat ]
                ~sim_for:(fun _ -> sim_hat) ~real:real_hat ~ideal:ideal_hat)
        in
        ok := !ok && v.Impl.holds;
        [ cell b; string_of_bool v.Impl.holds; Rat.to_string v.Impl.worst; ms t ])
      [ 1; 2; 3; 4 ]
  in
  Pretty.table ~header:[ "instances b"; "holds"; "slack"; "time(ms)" ] rows;
  let ok = record_check ~experiment:"E6" !ok in
  Printf.printf "claim: ≤_SE composes with the proof's simulator, slack 0: %s\n" (verdict ok)

(* ------------------------------------------------------------------ E7 *)
(* Framework cost: exact measure computation scaling, and ablation A1
   (exact rationals vs machine floats). *)

let float_exec_count auto sched ~depth =
  (* Float-backed replica of Measure.exec_dist for ablation A1. *)
  let rec go step alive count =
    if step = depth || alive = [] then count + List.length alive
    else
      let next, finished =
        List.fold_left
          (fun (acc, fin) (e, p) ->
            let choice = Scheduler.validate_choice auto sched e in
            let halt = 1.0 -. Rat.to_float (Dist.mass choice) in
            let fin = if halt > 0.0 then fin + 1 else fin in
            ( List.fold_left
                (fun acc (act, pa) ->
                  let eta = Psioa.step auto (Exec.lstate e) act in
                  List.fold_left
                    (fun acc (q', pq) ->
                      (Exec.extend e act q', p *. Rat.to_float pa *. Rat.to_float pq) :: acc)
                    acc (Dist.items eta))
                acc (Dist.items choice),
              fin ))
          ([], count) alive
      in
      go (step + 1) next finished
  in
  go 0 [ (Exec.init (Psioa.start auto), 1.0) ] 0

let e7 () =
  Pretty.section "E7  exact measure computation: scaling and ablation A1 (exact vs float)";
  let rows =
    List.concat_map
      (fun branching ->
        List.map
          (fun depth ->
            let rng = Rng.make (branching * 1000) in
            let auto =
              Cdse_gen.Random_auto.make ~rng ~name:"walk" ~n_states:8 ~n_actions:branching
                ~branching ()
            in
            let sched = Scheduler.uniform auto in
            let d, t_exact = time_it (fun () -> Measure.exec_dist auto sched ~depth) in
            let _, t_float = time_it (fun () -> float_exec_count auto sched ~depth) in
            let rng = Rng.make 7 in
            let _, t_sample =
              time_it (fun () ->
                  Measure.estimate_fdist auto sched
                    ~observe:(fun e -> Exec.length e)
                    ~rng ~samples:2000 ~depth)
            in
            [ cell branching; cell depth; cell (Dist.size d); ms t_exact; ms t_float;
              Printf.sprintf "%.2f" (t_exact /. Float.max 1e-9 t_float); ms t_sample ])
          [ 2; 4; 6; 8 ])
      [ 2; 3 ]
  in
  Pretty.table
    ~header:
      [ "branching"; "depth"; "#execs"; "exact(ms)"; "float(ms)"; "overhead×"; "2k samples(ms)" ]
    rows;
  ignore (record_check ~experiment:"E7" true);
  print_endline
    "claim: exact execs grow with branching^depth (exactness a constant factor over floats);\n\
     Monte-Carlo sampling is depth-linear — the scalable fallback (ablation A1)"

(* ------------------------------------------------------------------ E8 *)
(* PCA dynamics: creation/destruction throughput under churn. *)

let e8 () =
  Pretty.section "E8  PCA churn: run-time creation/destruction throughput";
  let rows =
    List.map
      (fun n ->
        let system = Dynamic_system.build ~n_subchains:n ~tx_values:[ 1; 2 ] ~max_total:(6 * n) () in
        let stats, t =
          time_it (fun () ->
              Dynamic_system.drive ~restart:true system ~rng:(Rng.make (n * 7)) ~steps:3000)
        in
        let rate = float_of_int stats.Dynamic_system.steps_taken /. Float.max 1e-9 t in
        [ cell n; cell stats.Dynamic_system.steps_taken; cell stats.Dynamic_system.creations;
          cell stats.Dynamic_system.destructions; cell stats.Dynamic_system.max_alive;
          cell stats.Dynamic_system.final_total; Printf.sprintf "%.0f" rate ])
      [ 2; 4; 8 ]
  in
  Pretty.table
    ~header:
      [ "subchains"; "steps"; "created"; "destroyed"; "max alive"; "ledger total"; "steps/s" ]
    rows;
  ignore (record_check ~experiment:"E8" true);
  print_endline "claim: intrinsic transitions with creation/destruction sustain interactive rates"

(* ------------------------------------------------------------------ E9 *)
(* Definition 3.6 distance computation: scaling and exact-vs-float. *)

let e9 () =
  Pretty.section "E9  sup-set distance (Def 3.6): scaling, exact vs float";
  let rows =
    List.map
      (fun n ->
        let mk offset =
          Dist.make ~compare:Int.compare
            (List.init n (fun i -> (i + offset, Rat.of_ints 1 n)))
        in
        let a = mk 0 and b = mk (n / 4) in
        let d, t_exact = time_it (fun () -> Stat.sup_set_distance a b) in
        let fa = Fprob.of_exact a and fb = Fprob.of_exact b in
        let fd, t_float = time_it (fun () -> Fprob.tv_distance fa fb) in
        [ cell n; Rat.to_string d; Printf.sprintf "%.4f" fd; ms t_exact; ms t_float ])
      [ 100; 1000; 10_000; 20_000 ]
  in
  Pretty.table ~header:[ "support"; "exact distance"; "float distance"; "exact(ms)"; "float(ms)" ] rows;
  ignore (record_check ~experiment:"E9" true);
  print_endline "claim: distance computation is linear in support size"

(* ----------------------------------------------------------------- E10 *)
(* n-ary composition scaling + ablation A2 (memoized signatures). *)

let e10 () =
  Pretty.section "E10  n-ary composition: signature/transition cost, ablation A2 (memoize)";
  let rows =
    List.map
      (fun n ->
        let parts = List.init n (fun i -> Cdse_gen.Workloads.counter ~bound:2 (Printf.sprintf "k%d" i)) in
        let sys = Compose.parallel parts in
        let q0 = Psioa.start sys in
        let reps = 200 in
        let (), t_plain =
          time_it (fun () ->
              for _ = 1 to reps do
                ignore (Psioa.signature sys q0);
                ignore (Psioa.step sys q0 (Action.make "k0.inc"))
              done)
        in
        let memo = Psioa.memoize sys in
        ignore (Psioa.signature memo q0);
        let (), t_memo =
          time_it (fun () ->
              for _ = 1 to reps do
                ignore (Psioa.signature memo q0);
                ignore (Psioa.step memo q0 (Action.make "k0.inc"))
              done)
        in
        [ cell n; Printf.sprintf "%.2f" (t_plain *. 1e6 /. float_of_int reps);
          Printf.sprintf "%.2f" (t_memo *. 1e6 /. float_of_int reps);
          Printf.sprintf "%.1f×" (t_plain /. Float.max 1e-9 t_memo) ])
      [ 2; 4; 8; 16; 32 ]
  in
  Pretty.table ~header:[ "components"; "plain(µs/op)"; "memoized(µs/op)"; "speedup" ] rows;
  ignore (record_check ~experiment:"E10" true);
  print_endline "claim: per-op cost grows with n; memoization amortises it (ablation A2)"

(* ------------------------------------------------------------------ A3 *)
(* Ablation: scheduler schema cost on the dynamic PCA. *)

let a3 () =
  Pretty.section "A3  ablation: scheduler choice on the dynamic PCA";
  let system = Dynamic_system.build ~n_subchains:2 ~tx_values:[ 1 ] ~max_total:8 () in
  (* Close the system: a scripted user plays the tx/close environment
     inputs, so the schedulers face genuine branching between user moves,
     manager openings and settlements. *)
  let user =
    let script =
      [ Subchain.tx 0 1; Subchain.close 0; Subchain.tx 1 1; Subchain.close 1 ]
    in
    let state k = Value.tag "user" (Value.int k) in
    Psioa.make ~name:"user" ~start:(state 0)
      ~signature:(fun q ->
        match q with
        | Value.Tag ("user", Value.Int k) when k < List.length script ->
            Sigs.make ~input:Action_set.empty
              ~output:(Action_set.of_list [ List.nth script k ])
              ~internal:Action_set.empty
        | _ -> Sigs.empty)
      ~transition:(fun q a ->
        match q with
        | Value.Tag ("user", Value.Int k)
          when k < List.length script && Action.equal a (List.nth script k) ->
            Some (Vdist.dirac (state (k + 1)))
        | _ -> None)
  in
  let auto = Compose.pair user (Pca.psioa system) in
  let script =
    [ Manager.open_action; Subchain.tx 0 1; Subchain.close 0; Subchain.settle 0 1;
      Manager.open_action; Subchain.close 1; Subchain.settle 1 0 ]
  in
  let rows =
    List.map
      (fun (name, sched) ->
        let d, t =
          time_it (fun () -> Measure.exec_dist auto (Scheduler.bounded 10 sched) ~depth:10)
        in
        [ name; cell (Dist.size d); ms t ])
      [ ("first-enabled", Scheduler.first_enabled auto);
        ("round-robin", Scheduler.round_robin auto);
        ("uniform", Scheduler.uniform auto);
        ("oblivious (creation-oblivious)", Scheduler.oblivious auto script) ]
  in
  Pretty.table ~header:[ "scheduler"; "#execs"; "time(ms)" ] rows;
  ignore (record_check ~experiment:"A3" true);
  print_endline
    "claim: oblivious (creation-oblivious) scheduling yields a single cheap path;\n\
     uniform pays for the branching it explores"

(* ----------------------------------------------------------------- E11 *)
(* Section 4.4: monotonicity w.r.t. creation holds under creation-oblivious
   schemas and fails under a creation-sensitive one. *)

let e11 () =
  Pretty.section "E11  Section 4.4: monotonicity w.r.t. creation needs creation-obliviousness";
  let x_slow = Pca.psioa (Cdse_gen.Monotone.pca_with Cdse_gen.Monotone.child_slow) in
  let x_fast = Pca.psioa (Cdse_gen.Monotone.pca_with Cdse_gen.Monotone.child_fast) in
  let run name schema =
    let v, t =
      time_it (fun () ->
          Impl.approx_le ~schema ~insight_of:Insight.accept ~envs:[ Cdse_gen.Monotone.env ]
            ~eps:Rat.zero ~q1:6 ~q2:6 ~depth:8 ~a:x_slow ~b:x_fast)
    in
    (v, [ name; string_of_bool v.Impl.holds; Rat.to_string v.Impl.worst; ms t ])
  in
  let v1, row1 =
    run "creation-oblivious (off-line scripts)"
      (Schema.oblivious_local
         ~scripts:[ Cdse_gen.Monotone.script_slow; Cdse_gen.Monotone.script_fast ])
  in
  let v2, row2 =
    run "creation-sensitive (halts on child A)"
      (Schema.make ~name:"cs" (fun comp -> [ Cdse_gen.Monotone.creation_sensitive comp ]))
  in
  Pretty.table ~header:[ "scheduler schema"; "X_A ≤ X_B"; "distance"; "time(ms)" ] [ row1; row2 ];
  let ok =
    record_check ~experiment:"E11"
      (v1.Impl.holds && (not v2.Impl.holds) && Rat.equal v2.Impl.worst Rat.one)
  in
  Printf.printf
    "claim: substitution of equivalent children preserved only under\n\
     creation-oblivious scheduling: %s\n" (verdict ok)

(* ----------------------------------------------------------------- E12 *)
(* Definitions 4.7-4.12: the k-indexed broadcast family — emulation slack
   stays exactly 0 at every index, with polynomially growing bounds. *)

let e12 () =
  Pretty.section "E12  family-indexed broadcast: ≤_SE at every k (Defs 4.7-4.12)";
  let ok = ref true in
  let rows =
    List.map
      (fun k ->
        let depth = 6 + (3 * k) in
        let real = Broadcast.real ~k "bc" and ideal = Broadcast.ideal ~k "bc" in
        let v, t =
          time_it (fun () ->
              Emulation.check
                ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
                ~insight_of:Insight.accept
                ~envs:[ Broadcast.env_all_delivered ~k ~msg:1 "bc" ]
                ~eps:Rat.zero ~q1:depth ~q2:depth ~depth
                ~adversaries:[ Broadcast.adversary ~k "bc" ]
                ~sim_for:(fun _ -> Broadcast.simulator ~k "bc")
                ~real ~ideal)
        in
        ok := !ok && v.Impl.holds;
        let bound =
          (Bounded.measure_psioa ~max_states:100 ~max_depth:depth (Structured.psioa real)).Bounded.bound
        in
        [ cell k; string_of_bool v.Impl.holds; Rat.to_string v.Impl.worst; cell bound; ms t ])
      [ 1; 2; 3; 4 ]
  in
  Pretty.table ~header:[ "receivers k"; "holds"; "slack"; "bound b(k)"; "time(ms)" ] rows;
  let ok = record_check ~experiment:"E12" !ok in
  Printf.printf "claim: slack 0 at every family index; b(k) grows polynomially: %s\n" (verdict ok)

(* ----------------------------------------------------------------- E13 *)
(* Definition 4.12 with ε > 0: the weak pad (zero key never drawn) has
   emulation slack EXACTLY 2^-width — a nonzero negligible family. *)

let e13 () =
  Pretty.section "E13  approximate emulation: weak pad with slack exactly 2^-k";
  let ok = ref true in
  let rows =
    List.map
      (fun width ->
        let real = Secure_channel.real_weak ~width "wk" in
        let ideal = Secure_channel.ideal ~width "wk" in
        let v, t =
          time_it (fun () ->
              Emulation.check
                ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
                ~insight_of:Insight.accept
                ~envs:[ Secure_channel.env_guess ~width ~msg:1 "wk" ]
                ~eps:Rat.one ~q1:12 ~q2:12 ~depth:14
                ~adversaries:[ Secure_channel.adversary ~width "wk" ]
                ~sim_for:(fun _ -> Secure_channel.simulator ~width "wk")
                ~real ~ideal)
        in
        let predicted = Rat.pow Rat.half width in
        let exact_match = Rat.equal v.Impl.worst predicted in
        ok := !ok && exact_match;
        [ cell width; Rat.to_string v.Impl.worst; Rat.to_string predicted;
          verdict exact_match; ms t ])
      [ 1; 2; 3; 4 ]
  in
  Pretty.table
    ~header:[ "width k"; "measured slack"; "predicted 2^-k"; "exact match"; "time(ms)" ]
    rows;
  let ok = record_check ~experiment:"E13" !ok in
  Printf.printf
    "claim: the weak-pad family emulates with slack exactly 2^-k —\n\
     nonzero, negligible, and computed as an exact rational: %s\n" (verdict ok)

(* ----------------------------------------------------------------- E14 *)
(* Dynamic committee: one commit round under all vote interleavings —
   exact measure size and agreement, as committee size grows. *)

let e14 () =
  Pretty.section "E14  dynamic committee: commit round under adversarial interleaving";
  let rows =
    List.map
      (fun k ->
        let name = "cmt" in
        let cmt = Committee.build ~max_validators:k ~blocks:1 name in
        let auto = Pca.psioa cmt in
        (* Deterministic prologue: add k validators, submit, propose. *)
        let prologue =
          List.init k (Committee.add name) @ [ Committee.submit name 0; Committee.propose name 0 ]
        in
        let q =
          List.fold_left
            (fun q a -> List.hd (Dist.support (Psioa.step auto q a)))
            (Psioa.start auto) prologue
        in
        (* From here the uniform scheduler interleaves the k votes freely:
           k! orders, all ending in the same commit. *)
        let tail = Psioa.make ~name:"round" ~start:q ~signature:(Psioa.signature auto)
            ~transition:(Psioa.transition auto) in
        let sched = Scheduler.bounded (k + 1) (Scheduler.uniform tail) in
        let d, t = time_it (fun () -> Measure.exec_dist tail sched ~depth:(k + 2)) in
        let all_commit =
          List.for_all
            (fun e ->
              List.exists (fun a -> Action.equal a (Committee.commit name 0)) (Exec.actions e))
            (Dist.support d)
        in
        [ cell k; cell (Dist.size d); string_of_bool all_commit; ms t ])
      [ 2; 3; 4; 5; 6 ]
  in
  Pretty.table ~header:[ "validators"; "interleavings"; "all commit"; "time(ms)" ] rows;
  let ok =
    record_check ~experiment:"E14"
      (List.for_all (fun row -> List.nth row 2 = "true") rows)
  in
  Printf.printf
    "claim: every vote interleaving commits (agreement); interleavings grow as k!: %s\n"
    (verdict ok)

(* ----------------------------------------------------------------- E15 *)
(* ≤_SE on a PCA at growing committee sizes: the committee (with dynamic
   creation) emulates the atomic-commit functionality with slack 0; cost
   of the exact check grows with the round length. *)

let e15 () =
  Pretty.section "E15  committee PCA ≤_SE atomic commit, by committee size";
  let nobody =
    Psioa.make ~name:"nobody" ~start:Value.unit
      ~signature:(fun _ -> Sigs.empty)
      ~transition:(fun _ _ -> None)
  in
  let ok = ref true in
  let rows =
    List.map
      (fun k ->
        let bound = 8 + (3 * k) in
        let real = Committee.structured (Committee.build ~max_validators:k ~blocks:1 "cmt") "cmt" in
        let ideal = Committee.ideal ~blocks:1 "cmt" in
        let v, t =
          time_it (fun () ->
              (* The AAct universe surfaces within one round: cap the
                 exploration rather than walking the full free-input
                 space. *)
              let sys_real adv = Emulation.hidden_system ~max_states:500 ~max_depth:bound real adv in
              let sys_ideal adv = Emulation.hidden_system ~max_states:500 ~max_depth:bound ideal adv in
              Impl.approx_le
                ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
                ~insight_of:Insight.accept
                ~envs:[ Committee.env_commit ~block:0 "cmt" ]
                ~eps:Rat.zero ~q1:bound ~q2:bound ~depth:(bound + 2)
                ~a:(sys_real nobody) ~b:(sys_ideal nobody))
        in
        ok := !ok && v.Impl.holds;
        [ cell k; string_of_bool v.Impl.holds; Rat.to_string v.Impl.worst; ms t ])
      [ 1; 2; 3; 4 ]
  in
  Pretty.table ~header:[ "validators"; "holds"; "slack"; "time(ms)" ] rows;
  let ok = record_check ~experiment:"E15" !ok in
  Printf.printf
    "claim: a dynamically-created committee of any size emulates atomic commit, slack 0: %s\n"
    (verdict ok)

(* ----------------------------------------------------------------- E16 *)
(* Private aggregation family: privacy AND correctness at slack 0 as the
   party count grows (joint pad space 2^p). *)

let e16 () =
  Pretty.section "E16  private XOR aggregation: privacy and correctness by party count";
  let ok = ref true in
  let rows =
    List.map
      (fun parties ->
        let inputs = List.init parties (fun i -> i mod 2) in
        let depth = 12 + (2 * parties) in
        let check env =
          Emulation.check
            ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
            ~insight_of:Insight.accept ~envs:[ env ] ~eps:Rat.zero ~q1:depth ~q2:depth
            ~depth:(depth + 2)
            ~adversaries:[ Aggregation.adversary "ag" ]
            ~sim_for:(fun _ -> Aggregation.simulator "ag")
            ~real:(Aggregation.real ~parties "ag")
            ~ideal:(Aggregation.ideal ~parties "ag")
        in
        let vp, t = time_it (fun () -> check (Aggregation.env_guess ~parties ~inputs "ag")) in
        let vc = check (Aggregation.env_sum ~parties ~inputs "ag") in
        ok := !ok && vp.Impl.holds && vc.Impl.holds;
        [ cell parties; string_of_bool vp.Impl.holds; string_of_bool vc.Impl.holds;
          Rat.to_string vp.Impl.worst; ms t ])
      [ 1; 2; 3; 4 ]
  in
  Pretty.table ~header:[ "parties"; "privacy"; "correctness"; "slack"; "time(ms)" ] rows;
  let ok = record_check ~experiment:"E16" !ok in
  Printf.printf "claim: masked aggregation is private and correct at slack 0 for every size: %s\n"
    (verdict ok)

(* ----------------------------------------------------------------- E17 *)
(* Fault injection: exact commit probability of one committee round as the
   crash budget grows. Crashes are free inputs of the committee PCA; the
   Fault.injector makes them schedulable, Fault.budget_sched caps their
   total, and the uniform scheduler interleaves them adversarially with
   the votes. Unanimity loses liveness at the first crash; a 2-of-3
   quorum is immune to one crash (P = 1, an exact rational) and degrades
   gracefully at two. *)

let e17 () =
  Pretty.section "E17  fault injection: commit probability vs crash budget";
  let name = "cmt" in
  let commit_prob ~quorum ~budget =
    let cmt = Committee.build ~max_validators:3 ~blocks:1 ~quorum name in
    let auto = Pca.psioa cmt in
    (* Deterministic prologue: create the validators, submit, propose. *)
    let q =
      List.fold_left
        (fun q a -> List.hd (Dist.support (Psioa.step auto q a)))
        (Psioa.start auto)
        [ Committee.add name 0; Committee.add name 1; Committee.add name 2;
          Committee.submit name 0; Committee.propose name 0 ]
    in
    let tail = Psioa.make ~name:"round" ~start:q ~signature:(Psioa.signature auto)
        ~transition:(Psioa.transition auto) in
    let inj = Fault.injector ~faults:(List.init 3 (Committee.crash name)) () in
    let sys = Compose.pair inj tail in
    let sched =
      Fault.budget_sched budget (Scheduler.bounded 12 (Scheduler.uniform sys))
    in
    let pred = function
      | Value.Pair (_, qc) -> Committee.committed cmt qc = [ 0 ]
      | _ -> false
    in
    Measure.reach_prob ~memo:true sys sched ~depth:12 ~pred
  in
  let rows =
    List.map
      (fun budget ->
        let p_all, t = time_it (fun () -> commit_prob ~quorum:`All ~budget) in
        let p_q = commit_prob ~quorum:(`At_least 2) ~budget in
        [ cell budget; Rat.to_string p_all; Rat.to_string p_q; ms t ])
      [ 0; 1; 2 ]
  in
  Pretty.table
    ~header:[ "crash budget"; "P(commit) unanimity"; "P(commit) quorum 2/3"; "time(ms)" ]
    rows;
  let p budget col = List.nth (List.nth rows budget) col in
  let ok =
    record_check ~experiment:"E17"
      (p 0 1 = "1" && p 0 2 = "1" && p 1 1 <> "1" && p 1 2 = "1" && p 2 2 <> "1")
  in
  Printf.printf
    "claim: a 2-of-3 quorum commits surely under any single crash (exact P = 1);\n\
     unanimity already loses liveness at crash budget 1: %s\n" (verdict ok)

(* ----------------------------------------------------------------- E18 *)
(* Dynamic compromise: Fault.compromise swaps a member's transition
   function for an adversary-controlled one at a scheduled
   compromise.<name> action, and Fault.compromise_budget caps how many
   members the adversary may take over. Two systems, each swept over the
   budget k: E6's composed OTP channels (2 instances; the compromised
   behaviour is the key-0 leaky channel, tolerance 0) and E15's
   3-validator committee with a 2-of-3 quorum (the compromised behaviour
   is a silenced validator, tolerance 1). The ≤_SE slack must be exactly 0
   strictly below each tolerance threshold and exactly the predicted
   positive rational at and above it — and every verdict must be
   bit-identical across the engine knobs (domains 1/2/4, memoisation,
   state-space compression). *)

(* "cmt.retire<i>" is chair bookkeeping, not an attack: a first-enabled
   scheduler would retire the whole committee before the submit arrives
   (r < s), so the compromise sweeps steer around it. *)
let is_retire a =
  let name = Action.name a in
  String.length name >= 10 && String.equal (String.sub name 0 10) "cmt.retire"

(* The engine-knob grid every verdict is recomputed under. *)
let e18_engines =
  [ Impl.default_engine;
    { Impl.memo = true; domains = 2; compress = `Hcons };
    { Impl.memo = true; domains = 4; compress = `Quotient } ]

let e18_otp engine k =
  let names = [ "n0"; "n1" ] in
  let wrapped n =
    Fault.compromise
      ~adversarial:(Structured.psioa (Secure_channel.real_leaky n))
      (Structured.psioa (Secure_channel.real n))
  in
  let inj = Fault.injector ~faults:(List.map Fault.compromise_action names) () in
  let sys = Compose.parallel (inj :: List.map wrapped names) in
  let eact q =
    Action_set.filter
      (fun a ->
        let base = Action.name a in
        List.exists
          (fun n -> String.equal base (n ^ ".send") || String.equal base (n ^ ".recv"))
          names)
      (Sigs.ext (Psioa.signature sys q))
  in
  let real = Structured.make sys ~eact in
  let ideal = Structured.compose (Secure_channel.ideal "n0") (Secure_channel.ideal "n1") in
  let adv = Compose.parallel (List.map Secure_channel.adversary names) in
  let sim = Compose.parallel (List.map Secure_channel.simulator names) in
  let bound = 24 in
  Emulation.check_engine engine
    ~schema:(Fault.compromise_budget k)
    ~insight_of:Insight.accept
    ~envs:[ Secure_channel.env_guess ~msg:1 "n0" ]
    ~eps:Rat.zero ~q1:bound ~q2:bound ~depth:(bound + 2) ~adversaries:[ adv ]
    ~sim_for:(fun _ -> sim) ~real ~ideal

let e18_committee engine k =
  let nobody =
    Psioa.make ~name:"nobody" ~start:Value.unit
      ~signature:(fun _ -> Sigs.empty)
      ~transition:(fun _ _ -> None)
  in
  let cmt =
    Committee.build ~max_validators:3 ~blocks:1 ~quorum:(`At_least 2)
      ~wrap_validator:(fun _ v -> Fault.compromise ~adversarial:(Adversary.silent_takeover v) v)
      "cmt"
  in
  let inj =
    Fault.injector
      ~faults:
        (List.init 3 (fun i -> Fault.compromise_action (Committee.validator_name "cmt" i)))
      ()
  in
  let real = Committee.structured_psioa (Compose.pair inj (Pca.psioa cmt)) "cmt" in
  let ideal = Committee.ideal ~blocks:1 "cmt" in
  let bound = 20 in
  let sys_real = Emulation.hidden_system ~max_states:800 ~max_depth:bound real nobody in
  let sys_ideal = Emulation.hidden_system ~max_states:800 ~max_depth:bound ideal nobody in
  Impl.approx_le_engine engine
    ~schema:(Fault.compromise_budget ~avoid:is_retire k)
    ~insight_of:Insight.accept
    ~envs:[ Committee.env_commit ~block:0 "cmt" ]
    ~eps:Rat.zero ~q1:bound ~q2:bound ~depth:(bound + 2) ~a:sys_real ~b:sys_ideal

let e18 () =
  Pretty.section "E18  dynamic compromise: ≤_SE slack vs k-of-n compromise budget";
  let ks = match !Workbench.compromise with Some k -> [ k ] | None -> [ 0; 1; 2; 3 ] in
  let ok = ref true in
  let agree check =
    (* Recompute the verdict under every engine configuration: holds AND
       worst slack must be bit-identical (the Measure determinism
       contract, here exercised through the budgeted scheduler). *)
    match List.map check e18_engines with
    | [] -> assert false
    | v0 :: rest ->
        ( v0,
          List.for_all
            (fun v -> v.Impl.holds = v0.Impl.holds && Rat.equal v.Impl.worst v0.Impl.worst)
            rest )
  in
  let rows =
    List.map
      (fun k ->
        let (votp, aotp), t = time_it (fun () -> agree (fun e -> e18_otp e k)) in
        let vcmt, acmt = agree (fun e -> e18_committee e k) in
        let expected_otp = if k = 0 then "0" else "1/2" in
        let expected_cmt = if k <= 1 then "0" else "1" in
        ok :=
          !ok && aotp && acmt
          && votp.Impl.holds = (k = 0)
          && String.equal (Rat.to_string votp.Impl.worst) expected_otp
          && vcmt.Impl.holds = (k <= 1)
          && String.equal (Rat.to_string vcmt.Impl.worst) expected_cmt;
        [ cell k; string_of_bool votp.Impl.holds; Rat.to_string votp.Impl.worst;
          string_of_bool vcmt.Impl.holds; Rat.to_string vcmt.Impl.worst;
          (if aotp && acmt then "yes" else "NO"); ms t ])
      ks
  in
  Pretty.table
    ~header:
      [ "budget k"; "OTP holds"; "OTP slack"; "committee holds"; "committee slack";
        "engines agree"; "time(ms)" ]
    rows;
  let ok = record_check ~experiment:"E18" !ok in
  Printf.printf
    "claim: slack is exactly 0 below the tolerance threshold (OTP: 0 takeovers;\n\
     2-of-3 committee: 1) and exactly the predicted positive rational above it\n\
     (1/2 resp. 1), bit-identical across domains ∈ {1,2,4} and compression: %s\n"
    (verdict ok)

(* ----------------------------------------------------------------- MUT *)
(* Mutation testing of the emulation checker itself: perturb a member
   automaton at one co-reachable (state, action) site — drop a transition,
   redirect an output payload, bias a probability by an exact rational —
   and demand the checker *kill* the mutant (the slack-0 verdict stops
   holding). A mutant that survives marks a blind spot of the insight
   function / scheduler family at that site; the suite requires zero. *)

let mut () =
  Pretty.section "MUT  mutation testing: the emulation checker kills every mutant";
  let module Mutate = Cdse_testkit.Mutate in
  let det = Schema.make ~name:"det" (fun x -> [ Scheduler.first_enabled x ]) in
  let ok = ref true in
  (* OTP channel: mutate the real protocol member; the trace insight (not
     just acceptance) is what kills payload redirects on recv. *)
  let otp_row =
    let real_s = Secure_channel.real "n0" in
    let proto = Structured.psioa real_s in
    let env = Secure_channel.env_guess ~msg:1 "n0" in
    let adv = Secure_channel.adversary "n0" in
    let sim = Secure_channel.simulator "n0" in
    let ideal = Secure_channel.ideal "n0" in
    let states =
      Mutate.co_reachable
        ~project:(fun q -> Some (fst (Compose.proj_pair (snd (Compose.proj_pair q)))))
        (Compose.pair env (Compose.pair proto adv))
    in
    let muts = Mutate.mutants ~states proto in
    let bound = 16 in
    let holds a =
      (Impl.approx_le ~schema:det ~insight_of:Insight.trace ~envs:[ env ] ~eps:Rat.zero
         ~q1:bound ~q2:bound ~depth:(bound + 2)
         ~a:(Emulation.hidden_system a adv)
         ~b:(Emulation.hidden_system ideal sim))
        .Impl.holds
    in
    let baseline = holds real_s in
    let rep, t =
      time_it (fun () ->
          Mutate.sweep
            ~killed:(fun m ->
              not (holds (Structured.make m.Mutate.mutant ~eact:(Structured.eact real_s))))
            muts)
    in
    ok := !ok && baseline && rep.Mutate.survivors = [] && rep.Mutate.total = 8;
    List.iter
      (fun m -> Printf.printf "  SURVIVOR (otp): %s\n" m.Mutate.label)
      rep.Mutate.survivors;
    [ "otp channel"; string_of_bool baseline; cell rep.Mutate.total; cell rep.Mutate.killed;
      cell (List.length rep.Mutate.survivors); ms t ]
  in
  (* Committee: mutate validator 0 of a 2-validator unanimous committee —
     both its vote sites are load-bearing, so a dropped or redirected vote
     must cost the commit. *)
  let cmt_row =
    let nobody =
      Psioa.make ~name:"nobody" ~start:Value.unit
        ~signature:(fun _ -> Sigs.empty)
        ~transition:(fun _ _ -> None)
    in
    let v0 = Committee.validator ~n:"cmt" ~blocks:1 0 in
    let site_pca = Committee.build ~max_validators:2 ~blocks:1 "cmt" in
    let states =
      Mutate.co_reachable
        ~project:(fun q ->
          List.assoc_opt
            (Committee.validator_name "cmt" 0)
            (Config.entries (Pca.config_of site_pca (snd (Compose.proj_pair q)))))
        (Compose.pair (Committee.env_commit ~block:0 "cmt") (Pca.psioa site_pca))
    in
    let muts = Mutate.mutants ~states v0 in
    let ideal = Committee.ideal ~blocks:1 "cmt" in
    let bound = 14 in
    let holds mutant =
      let real =
        Committee.structured
          (Committee.build ~max_validators:2 ~blocks:1
             ~wrap_validator:(fun i v -> if i = 0 then mutant else v)
             "cmt")
          "cmt"
      in
      (Impl.approx_le
         ~schema:(Fault.compromise_budget ~avoid:is_retire 0)
         ~insight_of:Insight.accept
         ~envs:[ Committee.env_commit ~block:0 "cmt" ]
         ~eps:Rat.zero ~q1:bound ~q2:bound ~depth:(bound + 2)
         ~a:(Emulation.hidden_system ~max_states:500 ~max_depth:bound real nobody)
         ~b:(Emulation.hidden_system ~max_states:500 ~max_depth:bound ideal nobody))
        .Impl.holds
    in
    let baseline = holds v0 in
    let rep, t =
      time_it (fun () -> Mutate.sweep ~killed:(fun m -> not (holds m.Mutate.mutant)) muts)
    in
    ok := !ok && baseline && rep.Mutate.survivors = [] && rep.Mutate.total = 2;
    List.iter
      (fun m -> Printf.printf "  SURVIVOR (committee): %s\n" m.Mutate.label)
      rep.Mutate.survivors;
    [ "committee validator"; string_of_bool baseline; cell rep.Mutate.total;
      cell rep.Mutate.killed; cell (List.length rep.Mutate.survivors); ms t ]
  in
  Pretty.table
    ~header:[ "member"; "baseline holds"; "mutants"; "killed"; "survivors"; "time(ms)" ]
    [ otp_row; cmt_row ];
  let ok = record_check ~experiment:"MUT" !ok in
  Printf.printf
    "claim: the unmutated members pass at slack 0 and the checker kills every\n\
     drop/redirect/bias mutant at a co-reachable site (0 survivors): %s\n" (verdict ok)

(* ----------------------------------------------------------------- par *)
(* Multicore engine smoke: E7's widest workloads expanded sequentially and
   with --domains (default 2) domains. The check is conformance — the
   parallel distribution must be Dist.equal to the sequential one, for
   the layered engine always and for the barrier-free subtree engine
   whenever the run supports it (an active quotient needs layers) — not
   speedup, which depends on the host's core count (wall-clock is printed
   so the recording host's scaling is visible; the timed parallel run
   uses --engine, default auto). *)

let par () =
  let domains = !Workbench.domains in
  let compress = !Workbench.compress in
  let engine = !Workbench.engine in
  let engine_name =
    match engine with `Auto -> "auto" | `Layered -> "layered" | `Subtree -> "subtree"
  in
  Pretty.section
    (Printf.sprintf
       "PAR  multicore exact measure: %d domains, engine %s, conformance + wall-clock%s"
       domains engine_name
       (match compress with
       | `Off -> ""
       | `Hcons -> " (compress: hcons)"
       | `Quotient -> " (compress: quotient)"));
  let ok = ref true in
  let rows =
    List.map
      (fun (branching, default_depth) ->
        let depth = Option.value ~default:default_depth !Workbench.par_depth in
        let rng = Rng.make (branching * 1000) in
        let auto =
          Cdse_gen.Random_auto.make ~rng ~name:"walk" ~n_states:8 ~n_actions:branching
            ~branching ()
        in
        let sched = Scheduler.uniform auto in
        let seq, t1 =
          wall_it (fun () -> Measure.exec_dist ~memo:true ~compress auto sched ~depth)
        in
        let par_d, tn =
          wall_it (fun () ->
              Measure.exec_dist ~engine ~memo:true ~compress ~domains auto sched ~depth)
        in
        let layered_ok =
          Dist.equal seq
            (Measure.exec_dist ~engine:`Layered ~memo:true ~compress ~domains auto
               sched ~depth)
        in
        let subtree_ok =
          (* [`Subtree] rejects runs that need layer synchronization; the
             uniform scheduler is memoryless, so an active quotient does. *)
          compress = `Quotient
          || Dist.equal seq
               (Measure.exec_dist ~engine:`Subtree ~memo:true ~compress ~domains auto
                  sched ~depth)
        in
        let identical = Dist.equal seq par_d && layered_ok && subtree_ok in
        ok := !ok && identical;
        [ cell branching; cell depth; cell (Dist.size seq); ms t1; ms tn;
          Printf.sprintf "%.2f" (t1 /. Float.max 1e-9 tn);
          (if identical then "yes" else "NO") ])
      [ (2, 8); (3, 6) ]
  in
  Pretty.table
    ~header:
      [ "branching"; "depth"; "#execs"; "seq(ms)";
        Printf.sprintf "%dd(ms)" domains; "speedup"; "identical" ]
    rows;
  let ok = record_check ~experiment:"PAR" !ok in
  Printf.printf
    "claim: both multicore engines return the bit-identical measure on every domain count\n\
     (speedup tracks the host's cores; determinism does not): %s\n" (verdict ok)

let all = [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
            ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12);
            ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16); ("E17", e17); ("E18", e18);
            ("MUT", mut); ("A3", a3); ("par", par) ]
