(** Shared helpers for the experiment harness. *)

let time_it f =
  let t0 = Sys.time () in
  let v = f () in
  (v, Sys.time () -. t0)

(* Wall-clock variant: [Sys.time] sums CPU time over every domain, which
   makes a parallel run look no faster than sequential — multicore
   experiments must time the clock on the wall. *)
let wall_it f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Domain count for the multicore smoke experiment ("par"); set by
   bench/main.ml's --domains flag. *)
let domains = ref 2

(* Depth override for the "par" experiment and the exec_dist_domains
   bench cells; [None] keeps each workload's recorded default. Set by
   --depth. *)
let par_depth : int option ref = ref None

(* State-space compression level applied by the "par" experiment (both
   the sequential reference and the parallel run, so the conformance
   check stays meaningful). Set by --compress. *)
let compress : [ `Off | `Hcons | `Quotient ] ref = ref `Off

(* Multicore engine for the "par" experiment's timed parallel run
   (conformance is checked against both engines regardless). Set by
   --engine. *)
let engine : [ `Auto | `Layered | `Subtree ] ref = ref `Auto

(* Compromise-budget override for the E18 sweep: [Some k] clamps the
   sweep to that single budget (the CI smoke runs one cell), [None]
   sweeps k = 0..3. Set by --compromise. *)
let compromise : int option ref = ref None

(* Span-trace output file: [Some f] records a Trace session around the
   experiment runs and writes Chrome trace-event JSON to [f]. Set by
   --trace. *)
let trace_file : string option ref = ref None

let ms t = Printf.sprintf "%.2f" (t *. 1000.)

let verdict ok = if ok then "PASS" else "FAIL"

let failures = ref []

let record_check ~experiment ok =
  if not ok then failures := experiment :: !failures;
  ok

let summary () =
  match !failures with
  | [] -> print_endline "\nAll experiment checks passed."
  | fs ->
      Printf.printf "\nFAILED experiments: %s\n" (String.concat ", " (List.rev fs));
      exit 1
