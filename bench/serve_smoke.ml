(* CI smoke gate for the serving layer: start an in-process cdse_serve
   daemon, drive the wire protocol end to end (ping, cold + warm measure,
   reach, stats), and assert a clean drain-and-shutdown — "bye" reply,
   socket unlinked, threads joined. Exits non-zero on any violation.
   Honors --domains so CI can exercise the multicore engine path. *)

module Client = Cdse_testkit.Serve_client
module Json = Cdse_serve.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("serve-smoke: FAIL: " ^ m);
      exit 1)
    fmt

let num i = Json.Num (float_of_int i)

let measure_fields ~domains ~depth =
  [ ("op", Json.Str "measure");
    ("model", Json.Obj [ ("kind", Json.Str "random_walk"); ("span", num 4) ]);
    ("sched", Json.Obj [ ("kind", Json.Str "uniform"); ("bound", num depth) ]);
    ("depth", num depth);
    ("domains", num domains) ]

let run ~domains () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cdse-smoke-%d.sock" (Unix.getpid ()))
  in
  let server = Cdse_serve.Server.start ~domains ~workers:2 ~socket () in
  let c = Client.connect socket in
  let ok what r =
    if not r.Client.r_ok then
      fail "%s failed: %s" what (Json.to_string r.Client.r_body);
    r.Client.r_body
  in
  (match ok "ping" (Client.ping c) with
  | Json.Str "pong" -> ()
  | j -> fail "ping replied %s, expected \"pong\"" (Json.to_string j));
  let depth = 6 in
  let cold = ok "cold measure" (Client.request c (measure_fields ~domains ~depth)) in
  (match Json.member "cached" cold with
  | Some (Json.Bool false) -> ()
  | _ -> fail "cold measure should report cached=false");
  let warm = ok "warm measure" (Client.request c (measure_fields ~domains ~depth)) in
  (match Json.member "cached" warm with
  | Some (Json.Bool true) -> ()
  | _ -> fail "warm measure should report cached=true");
  (match (Json.member "dist" cold, Json.member "dist" warm) with
  | Some a, Some b ->
      if Json.to_string a <> Json.to_string b then
        fail "warm dist differs from cold dist"
  | _ -> fail "measure reply missing \"dist\"");
  (* Reach on a committed bit pattern: probability of any state is an
     exact rational string — just assert the field parses. *)
  let target =
    match Json.member "dist" cold with
    | Some d -> (
        match Json.member "items" d with
        | Some (Json.List (Json.List (Json.Obj exec :: _) :: _)) -> (
            match List.assoc_opt "start" exec with
            | Some (Json.Str bits) -> bits
            | _ -> fail "dist item has no start bits")
        | _ -> fail "dist has no items")
    | None -> fail "measure reply missing \"dist\""
  in
  let reach =
    ok "reach"
      (Client.request c
         (("state", Json.Str target)
         :: [ ("op", Json.Str "reach") ]
         @ List.tl (measure_fields ~domains ~depth)))
  in
  (match Json.member "prob" reach with
  | Some (Json.Str s) -> (
      match Cdse.Rat.of_string s with
      | _ -> ()
      | exception _ -> fail "reach prob %S is not an exact rational" s)
  | _ -> fail "reach reply missing string \"prob\"");
  let stats = ok "stats" (Client.stats c) in
  let sint path =
    let j =
      List.fold_left
        (fun j k -> match Json.member k j with Some v -> v | None -> Json.Null)
        stats path
    in
    match Json.to_int j with Some i -> i | None -> -1
  in
  if sint [ "cache"; "hits" ] < 1 then fail "stats report no cache hits";
  if sint [ "queries" ] < 3 then fail "stats report fewer than 3 queries";
  (match ok "shutdown" (Client.shutdown c) with
  | Json.Str "bye" -> ()
  | j -> fail "shutdown replied %s, expected \"bye\"" (Json.to_string j));
  Cdse_serve.Server.wait server;
  Client.close c;
  if Sys.file_exists socket then fail "socket %s still exists after shutdown" socket;
  Printf.printf "serve-smoke: OK (domains=%d, socket drained and unlinked)\n%!"
    domains
