(* Persisted benchmark trajectory: emits BENCH_cdse.json next to the repo
   root, recording the current micro ns/op numbers and wall-clock
   [Measure.exec_dist] timings (depths 3-6 on the coin / random-walk /
   committee workloads) against the pre-optimization baseline hardcoded
   below. Regenerate with [dune exec bench/main.exe -- micro]. *)

open Cdse

(* ns/op on the seed revision (list-backed Dist, Bignat-only Rat, memo-free
   Measure), same bechamel config as Micro.run. *)
let micro_baseline =
  [ ("bits.append", 496.8);
    ("bignat.mul", 260.7);
    ("bignat.divmod", 51217.4);
    ("rat.add", 1019.1);
    ("value.to_bits", 63050.6);
    ("value.of_bits", 4488.3);
    ("dist.product", 253803.9);
    ("stat.distance", 14675.8);
    ("psioa.step", 795.1);
    ("measure.exec_dist", 5648.4);
    ("bisim.coin", 21497.7);
    ("measure.reach_prob", 50224.5) ]

(* ms/op for [Measure.exec_dist] on the seed revision, same workloads and
   schedulers as [measure_macro] below. *)
let macro_baseline =
  [ ("coin", [ (3, 0.0103); (4, 0.0150); (5, 0.0167); (6, 0.0167) ]);
    ("random_walk", [ (3, 0.0246); (4, 0.0603); (5, 0.1297); (6, 0.3463) ]);
    ("committee", [ (3, 0.1197); (4, 0.3131); (5, 0.5767); (6, 0.8399) ]) ]

let depths = [ 3; 4; 5; 6 ]

let wall f =
  let t0 = Unix.gettimeofday () in
  let iters = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.3 do
    ignore (Sys.opaque_identity (f ()));
    incr iters
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int !iters *. 1e3

let measure_macro () =
  let workloads =
    [ ("coin", Cdse_gen.Workloads.coin "c");
      ("random_walk", Cdse_gen.Workloads.random_walk ~span:4 "w");
      ("committee", Pca.psioa (Committee.build ~max_validators:3 ~blocks:1 "cmt")) ]
  in
  List.map
    (fun (name, auto) ->
      ( name,
        List.map
          (fun depth ->
            let sched = Scheduler.bounded depth (Scheduler.uniform auto) in
            (depth, wall (fun () -> Measure.exec_dist ~memo:true auto sched ~depth)))
          depths ))
    workloads

let entry ?(digits = 1) baseline current =
  match baseline with
  | Some b ->
      Printf.sprintf "{\"baseline\": %.*f, \"current\": %.*f, \"speedup\": %.2f}" digits b
        digits current (b /. current)
  | None -> Printf.sprintf "{\"baseline\": null, \"current\": %.*f, \"speedup\": null}" digits current

let emit micro_rows =
  let macro = measure_macro () in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"cdse-bench/1\",\n";
  add "  \"generated_by\": \"dune exec bench/main.exe -- micro\",\n";
  add "  \"units\": {\"micro\": \"ns/op\", \"exec_dist\": \"ms/op\"},\n";
  add "  \"micro\": {\n";
  List.iteri
    (fun i (name, current) ->
      add "    \"%s\": %s%s\n" name
        (entry (List.assoc_opt name micro_baseline) current)
        (if i < List.length micro_rows - 1 then "," else ""))
    micro_rows;
  add "  },\n";
  add "  \"exec_dist\": {\n";
  List.iteri
    (fun i (name, rows) ->
      let base = List.assoc_opt name macro_baseline in
      add "    \"%s\": {\n" name;
      List.iteri
        (fun j (depth, current) ->
          let baseline = Option.bind base (List.assoc_opt depth) in
          add "      \"%d\": %s%s\n" depth
            (entry ~digits:4 baseline current)
            (if j < List.length rows - 1 then "," else ""))
        rows;
      add "    }%s\n" (if i < List.length macro - 1 then "," else ""))
    macro;
  add "  }\n";
  add "}\n";
  let oc = open_out "BENCH_cdse.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "Wrote BENCH_cdse.json (%d micro rows, %d exec_dist workloads x depths 3-6)\n%!"
    (List.length micro_rows) (List.length macro)
