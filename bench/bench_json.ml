(* Persisted benchmark trajectory: emits BENCH_cdse.json next to the repo
   root, recording the current micro ns/op numbers and wall-clock
   [Measure.exec_dist] timings (depths 3-6 on the coin / random-walk /
   committee workloads) against the pre-optimization baseline hardcoded
   below, plus (schema cdse-bench/8) a serving-layer cell that drives an
   in-process cdse_serve daemon over its Unix-socket wire protocol.
   Regenerate with [dune exec bench/main.exe -- micro]. *)

open Cdse

(* ns/op on the seed revision (list-backed Dist, Bignat-only Rat, memo-free
   Measure), same bechamel config as Micro.run. *)
let micro_baseline =
  [ ("bits.append", 496.8);
    ("bignat.mul", 260.7);
    ("bignat.divmod", 51217.4);
    ("rat.add", 1019.1);
    ("value.to_bits", 63050.6);
    ("value.of_bits", 4488.3);
    ("dist.product", 253803.9);
    ("stat.distance", 14675.8);
    ("psioa.step", 795.1);
    ("measure.exec_dist", 5648.4);
    ("bisim.coin", 21497.7);
    ("measure.reach_prob", 50224.5) ]

(* ms/op for [Measure.exec_dist] on the seed revision, same workloads and
   schedulers as [measure_macro] below. *)
let macro_baseline =
  [ ("coin", [ (3, 0.0103); (4, 0.0150); (5, 0.0167); (6, 0.0167) ]);
    ("random_walk", [ (3, 0.0246); (4, 0.0603); (5, 0.1297); (6, 0.3463) ]);
    ("committee", [ (3, 0.1197); (4, 0.3131); (5, 0.5767); (6, 0.8399) ]) ]

let depths = [ 3; 4; 5; 6 ]

(* Parallel-scaling cells (schema cdse-bench/3, layered engine; schema
   cdse-bench/7 adds the same workloads under the barrier-free subtree
   engine): E7's widest uniform random-walk workloads, the exact cone
   expanded with 1, 2 and 4 domains. Times are wall-clock — the speedups
   reflect the recording host's core count, the distributions are
   bit-identical by contract either way. *)
let par_workloads = [ ("walk_b2", 2, 8); ("walk_b3", 3, 6) ]
let par_domains = [ 1; 2; 4 ]

(* State-space-compression cells (schema cdse-bench/4): lazy random walks
   whose executions are all-internal, so the on-the-fly quotient collapses
   a 2^depth frontier to at most span+1 classes per layer. Each cell
   records the wall-clock at every compression level at [depth], plus the
   quotient engine at [2 × depth] — the headline claim is that doubling
   the depth under `Quotient costs no more than the uncompressed engine at
   the original depth. (name, span, depth.) *)
let compress_workloads = [ ("random_walk", 4, 8); ("random_walk_wide", 8, 6) ]

(* Compromise-sweep cells (schema cdse-bench/5): the E18 verdicts at every
   budget k — exact ≤_SE slack (a rational string) and the holds bit for
   both swept systems, plus the wall-clock of the two checks. The slack
   trajectory is part of the recorded contract: 0 strictly below each
   system's tolerance threshold, the predicted positive rational above. *)
let compromise_budgets = [ 0; 1; 2; 3 ]

(* ----------------------------------------------------------- counters *)

(* Numeric counter keys of the per-cell "counters" block, in emission
   order. "truncation_deficit" is emitted separately as a string so the
   exact rational round-trips through [Rat.of_string], and
   "memo_hit_rate" as a float. *)
let counter_keys =
  [ "frontier_width_max"; "frontier_layers"; "finished"; "memo_hits";
    "memo_misses"; "choice_hits"; "choice_misses"; "rat_promotions";
    "sched_validations" ]

(* Run [f] once with stats enabled and render the engine counters as the
   JSON "counters" object. Collection is a separate run from the timing
   loop, which executes with stats in whatever state the caller left them
   — the emitted ms/op never includes instrumentation overhead. *)
let counters_json f =
  let (), snap = Obs.with_stats (fun () -> ignore (Sys.opaque_identity (f ()))) in
  let c name = Option.value ~default:0 (List.assoc_opt name snap.Obs.s_counters) in
  let width_max =
    match List.assoc_opt "measure.frontier.width" snap.Obs.s_histograms with
    | Some h -> h.Obs.h_max
    | None -> 0
  in
  let hits = c "psioa.memo.step.hit" and misses = c "psioa.memo.step.miss" in
  let hit_rate =
    if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses)
  in
  let deficit =
    Option.value ~default:"0" (List.assoc_opt "measure.truncation_deficit" snap.Obs.s_gauges)
  in
  let num =
    List.map
      (fun k ->
        let v =
          match k with
          | "frontier_width_max" -> width_max
          | "frontier_layers" -> c "measure.layers"
          | "finished" -> c "measure.finished"
          | "memo_hits" -> hits
          | "memo_misses" -> misses
          | "choice_hits" -> c "measure.choice.hit"
          | "choice_misses" -> c "measure.choice.miss"
          | "rat_promotions" -> c "rat.promotions"
          | "sched_validations" -> c "sched.validations"
          | k -> invalid_arg ("counters_json: " ^ k)
        in
        Printf.sprintf "\"%s\": %d" k v)
      counter_keys
  in
  Printf.sprintf "{%s, \"memo_hit_rate\": %.4f, \"truncation_deficit\": \"%s\"}"
    (String.concat ", " num) hit_rate deficit

let wall f =
  let t0 = Unix.gettimeofday () in
  let iters = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.3 do
    ignore (Sys.opaque_identity (f ()));
    incr iters
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int !iters *. 1e3

let measure_macro () =
  let workloads =
    [ ("coin", Cdse_gen.Workloads.coin "c");
      ("random_walk", Cdse_gen.Workloads.random_walk ~span:4 "w");
      ("committee", Pca.psioa (Committee.build ~max_validators:3 ~blocks:1 "cmt")) ]
  in
  List.map
    (fun (name, auto) ->
      ( name,
        List.map
          (fun depth ->
            let sched = Scheduler.bounded depth (Scheduler.uniform auto) in
            let run () = Measure.exec_dist ~memo:true auto sched ~depth in
            let counters = counters_json run in
            (depth, wall run, counters))
          depths ))
    workloads

(* Timing-attribution block for one exec_dist_domains cell (schema
   cdse-bench/6): a separate traced run at the widest recorded domain
   count, reduced to the three fractions ROADMAP item 1 needs — how much
   worker time stalls at layer barriers, how much layer time the
   deterministic merge costs, and how unevenly the chunks load the
   workers. Like [counters_json], collection is off the timing path. *)
let trace_json run =
  let domains = List.fold_left max 1 par_domains in
  Trace.start ();
  ignore (Sys.opaque_identity (run ~domains ()));
  Trace.stop ();
  let sm = Trace.summary () in
  Trace.clear ();
  Printf.sprintf
    "{\"domains\": %d, \"barrier_wait_frac\": %.4f, \"merge_frac\": %.4f, \
     \"imbalance_max_over_mean\": %.4f}"
    domains sm.Trace.sm_barrier_wait_frac sm.Trace.sm_merge_frac sm.Trace.sm_imbalance

let par_system (name, branching, default_depth) =
  let depth = Option.value ~default:default_depth !Workbench.par_depth in
  let rng = Rng.make (branching * 1000) in
  let auto =
    Cdse_gen.Random_auto.make ~rng ~name:"walk" ~n_states:8 ~n_actions:branching
      ~branching ()
  in
  (name, depth, auto, Scheduler.uniform auto)

(* One scaling cell: wall-clock per domain count, plus the dispatch
   overhead of the domains-aware entry point at domains = 1 versus the
   plain sequential call — both run the sequential engine, so this
   isolates the cost of the parallel plumbing (expected ≈ 1.0; tracked as
   a regression guard on the engine dispatch). *)
let par_cell ~trace workload run_of =
  let name, depth, auto, sched = par_system workload in
  let run = run_of auto sched ~depth in
  let times = List.map (fun domains -> (domains, wall (run ~domains))) par_domains in
  let t_plain = wall (fun () -> Measure.exec_dist ~memo:true auto sched ~depth) in
  let overhead_1 = List.assoc 1 times /. Float.max 1e-9 t_plain in
  (name, depth, times, overhead_1, trace run)

let measure_par () =
  List.map
    (fun workload ->
      par_cell ~trace:trace_json workload (fun auto sched ~depth ~domains () ->
          Measure.exec_dist ~engine:`Layered ~memo:true ~domains auto sched ~depth))
    par_workloads

(* Attribution block for one exec_dist_subtree cell (schema cdse-bench/7):
   the steal fraction — donated work units over all claimed work units —
   from a stats run, and the idle fraction and worker imbalance from a
   traced run, both off the timing path. *)
let subtree_trace_json run =
  let domains = List.fold_left max 1 par_domains in
  let (), snap =
    Obs.with_stats (fun () -> ignore (Sys.opaque_identity (run ~domains ())))
  in
  let c name = Option.value ~default:0 (List.assoc_opt name snap.Obs.s_counters) in
  let roots = c "measure.subtree.roots" and steals = c "measure.subtree.steals" in
  let steal_frac =
    if roots + steals = 0 then 0.0
    else float_of_int steals /. float_of_int (roots + steals)
  in
  Trace.start ();
  ignore (Sys.opaque_identity (run ~domains ()));
  Trace.stop ();
  let sm = Trace.summary () in
  Trace.clear ();
  Printf.sprintf
    "{\"domains\": %d, \"idle_frac\": %.4f, \"steal_frac\": %.4f, \
     \"imbalance_max_over_mean\": %.4f}"
    domains sm.Trace.sm_idle_frac steal_frac sm.Trace.sm_imbalance

let measure_subtree () =
  List.map
    (fun workload ->
      par_cell ~trace:subtree_trace_json workload
        (fun auto sched ~depth ~domains () ->
          Measure.exec_dist ~engine:`Subtree ~memo:true ~domains auto sched ~depth))
    par_workloads

(* One compression cell: wall-clock per level at [depth], the quotient
   engine at [2 × depth], and the frontier geometry from two stats runs —
   [frontier_width_max] from the uncompressed engine ("frontier actually
   expanded", the historical meaning) and [frontier_width_compressed] /
   [quotient_classes] / [mass_merged] from the quotient engine. *)
let measure_compress () =
  List.map
    (fun (name, span, depth) ->
      let auto = Cdse_gen.Workloads.random_walk ~span "w" in
      let sched d = Scheduler.bounded d (Scheduler.uniform auto) in
      let run ~compress d () =
        Measure.exec_dist ~memo:true ~compress auto (sched d) ~depth:d
      in
      let depth_2x = 2 * depth in
      let ms_off = wall (run ~compress:`Off depth) in
      let ms_hcons = wall (run ~compress:`Hcons depth) in
      let ms_quotient = wall (run ~compress:`Quotient depth) in
      let ms_quotient_2x = wall (run ~compress:`Quotient depth_2x) in
      let snap_of f =
        let (), snap = Obs.with_stats (fun () -> ignore (Sys.opaque_identity (f ()))) in
        snap
      in
      let h_max snap key =
        match List.assoc_opt key snap.Obs.s_histograms with
        | Some h -> h.Obs.h_max
        | None -> 0
      in
      let off_snap = snap_of (run ~compress:`Off depth) in
      let q_snap = snap_of (run ~compress:`Quotient depth) in
      let width_max = h_max off_snap "measure.frontier.width" in
      let width_compressed = h_max q_snap "measure.frontier.width_compressed" in
      let classes =
        Option.value ~default:0 (List.assoc_opt "quotient.classes" q_snap.Obs.s_counters)
      in
      let mass_merged =
        Option.value ~default:"0"
          (List.assoc_opt "quotient.mass_merged" q_snap.Obs.s_gauges)
      in
      ( name,
        Printf.sprintf
          "{\"span\": %d, \"depth\": %d, \"depth_2x\": %d, \"ms\": {\"off\": %.4f, \
           \"hcons\": %.4f, \"quotient\": %.4f, \"quotient_2x\": %.4f}, \
           \"frontier_width_max\": %d, \"frontier_width_compressed\": %d, \
           \"quotient_classes\": %d, \"mass_merged\": \"%s\"}"
          span depth depth_2x ms_off ms_hcons ms_quotient ms_quotient_2x width_max
          width_compressed classes mass_merged ))
    compress_workloads

let measure_compromise () =
  List.map
    (fun k ->
      let t0 = Unix.gettimeofday () in
      let votp = Experiments.e18_otp Impl.default_engine k in
      let vcmt = Experiments.e18_committee Impl.default_engine k in
      let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      ( k,
        Printf.sprintf
          "{\"otp_holds\": %b, \"otp_slack\": \"%s\", \"committee_holds\": %b, \
           \"committee_slack\": \"%s\", \"ms\": %.4f}"
          votp.Impl.holds (Rat.to_string votp.Impl.worst) vcmt.Impl.holds
          (Rat.to_string vcmt.Impl.worst) ms ))
    compromise_budgets

(* Serving-layer cell (schema cdse-bench/8): an in-process [Serve] daemon
   on a temp socket, driven over the wire protocol by the testkit client.
   Honest 1-core numbers (domains = 1, workers = 2): cold wall-clock on a
   fresh cache line, warm round-trip on an exact cache hit — the ≥ 2×
   warm speedup is part of the recorded contract, enforced by check-json
   — plus an incremental-deepening resume, sustained synchronous
   queries/sec, and the daemon's own latency percentiles and cache hit
   rate from a final stats reply. The workload is picked so the server's
   cold cost (measure + rendering the megabyte-scale dist reply) clearly
   dominates what a warm hit still pays (the memoized render spliced raw,
   the wire transfer, and the client's own parse). *)
let serve_span = 4
let serve_depth = 8

let measure_serve () =
  let module Client = Cdse_testkit.Serve_client in
  let module Sjson = Cdse_serve.Json in
  let was_enabled = Obs.enabled () in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cdse-bench-%d.sock" (Unix.getpid ()))
  in
  let server = Cdse_serve.Server.start ~domains:1 ~workers:2 ~socket () in
  let c = Client.connect socket in
  let num i = Sjson.Num (float_of_int i) in
  let measure_fields ~bound ~depth =
    [ ("op", Sjson.Str "measure");
      ("model",
       Sjson.Obj [ ("kind", Sjson.Str "random_walk"); ("span", num serve_span) ]);
      ("sched", Sjson.Obj [ ("kind", Sjson.Str "uniform"); ("bound", num bound) ]);
      ("depth", num depth) ]
  in
  let timed fields =
    let t0 = Unix.gettimeofday () in
    let r = Client.request c fields in
    let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    if not r.Client.r_ok then
      failwith ("bench serve: query failed: " ^ Sjson.to_string r.Client.r_body);
    (ms, r.Client.r_body)
  in
  (* Cold: three fresh cache lines, averaged. Distinct scheduler bounds
     ≥ depth compute identical distributions but key distinct lines, so
     every request misses. *)
  let cold_ms =
    let bounds = [ serve_depth; serve_depth + 1; serve_depth + 2 ] in
    let ts =
      List.map (fun bound -> fst (timed (measure_fields ~bound ~depth:serve_depth))) bounds
    in
    List.fold_left ( +. ) 0.0 ts /. float_of_int (List.length ts)
  in
  (* Warm: exact repeats of the first line — every request is a cache hit. *)
  let warm_ms =
    let n = 50 in
    let t = ref 0.0 in
    for _ = 1 to n do
      t := !t +. fst (timed (measure_fields ~bound:serve_depth ~depth:serve_depth))
    done;
    !t /. float_of_int n
  in
  (* Incremental deepening: seed a fresh line at half depth, then ask for
     the full depth — the daemon resumes from the cached frontier instead
     of recomputing the prefix. *)
  let seed_depth = serve_depth / 2 in
  let fresh_bound = serve_depth + 10 in
  let _ = timed (measure_fields ~bound:fresh_bound ~depth:seed_depth) in
  let resume_ms, resume_body =
    timed (measure_fields ~bound:fresh_bound ~depth:serve_depth)
  in
  let resumed_from =
    match Option.bind (Sjson.member "resumed_from" resume_body) Sjson.to_int with
    | Some d -> d
    | None -> -1
  in
  (* Sustained synchronous throughput on the warm line. *)
  let qps =
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.3 do
      ignore (timed (measure_fields ~bound:serve_depth ~depth:serve_depth));
      incr iters
    done;
    float_of_int !iters /. (Unix.gettimeofday () -. t0)
  in
  let stats = Client.stats c in
  let sfield path =
    List.fold_left
      (fun j k -> match Sjson.member k j with Some v -> v | None -> Sjson.Null)
      stats.Client.r_body path
  in
  let sint path = Option.value ~default:0 (Sjson.to_int (sfield path)) in
  let hits = sint [ "cache"; "hits" ] and misses = sint [ "cache"; "misses" ] in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let p50 = sint [ "latency_us"; "p50" ] and p99 = sint [ "latency_us"; "p99" ] in
  let queries = sint [ "queries" ] in
  ignore (Client.shutdown c);
  Cdse_serve.Server.wait server;
  Client.close c;
  Obs.set_enabled was_enabled;
  Printf.sprintf
    "{\"workload\": \"random_walk\", \"span\": %d, \"depth\": %d, \"domains\": 1, \
     \"workers\": 2, \"cold_ms\": %.4f, \"warm_ms\": %.4f, \"warm_speedup\": %.2f, \
     \"resumed_from\": %d, \"resume_ms\": %.4f, \"qps\": %.1f, \"p50_us\": %d, \
     \"p99_us\": %d, \"cache_hit_rate\": %.4f, \"queries\": %d}"
    serve_span serve_depth cold_ms warm_ms
    (cold_ms /. Float.max 1e-9 warm_ms)
    resumed_from resume_ms qps p50 p99 hit_rate queries

let entry ?(digits = 1) ?(extra = "") baseline current =
  match baseline with
  | Some b ->
      Printf.sprintf "{\"baseline\": %.*f, \"current\": %.*f, \"speedup\": %.2f%s}" digits b
        digits current (b /. current) extra
  | None ->
      Printf.sprintf "{\"baseline\": null, \"current\": %.*f, \"speedup\": null%s}" digits
        current extra

let emit micro_rows =
  (* The serve cell runs first: its round-trip timings are sensitive to
     major-GC pauses, so it should not inherit the heap the exec_dist
     sweeps churn up. *)
  let serve = measure_serve () in
  let macro = measure_macro () in
  let par = measure_par () in
  let subtree = measure_subtree () in
  let compress = measure_compress () in
  let compromise = measure_compromise () in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"cdse-bench/8\",\n";
  add "  \"generated_by\": \"dune exec bench/main.exe -- micro\",\n";
  add
    "  \"units\": {\"micro\": \"ns/op\", \"exec_dist\": \"ms/op\", \"counters\": \"count per single run\", \"exec_dist_domains\": \"ms/op wall-clock, layered engine\", \"exec_dist_subtree\": \"ms/op wall-clock, barrier-free subtree engine\", \"trace\": \"dimensionless fractions from a traced run\", \"exec_dist_compress\": \"ms/op wall-clock\", \"compromise_sweep\": \"ms wall-clock, exact rational slacks\", \"serve\": \"ms wall-clock round-trip over a Unix socket, in-process daemon\"},\n";
  add "  \"micro\": {\n";
  List.iteri
    (fun i (name, current) ->
      add "    \"%s\": %s%s\n" name
        (entry (List.assoc_opt name micro_baseline) current)
        (if i < List.length micro_rows - 1 then "," else ""))
    micro_rows;
  add "  },\n";
  add "  \"exec_dist\": {\n";
  List.iteri
    (fun i (name, rows) ->
      let base = List.assoc_opt name macro_baseline in
      add "    \"%s\": {\n" name;
      List.iteri
        (fun j (depth, current, counters) ->
          let baseline = Option.bind base (List.assoc_opt depth) in
          add "      \"%d\": %s%s\n" depth
            (entry ~digits:4 ~extra:(", \"counters\": " ^ counters) baseline current)
            (if j < List.length rows - 1 then "," else ""))
        rows;
      add "    }%s\n" (if i < List.length macro - 1 then "," else ""))
    macro;
  add "  },\n";
  let emit_par_block key cells =
    add "  \"%s\": {\n" key;
    List.iteri
      (fun i (name, depth, times, overhead_1, trace) ->
        let ms_of d = List.assoc d times in
        let t1 = ms_of 1 in
        add
          "    \"%s\": {\"depth\": %d, \"ms\": {%s}, \"speedup_2\": %.2f, \"speedup_4\": %.2f, \"overhead_1\": %.3f, \"trace\": %s}%s\n"
          name depth
          (String.concat ", "
             (List.map (fun (d, t) -> Printf.sprintf "\"%d\": %.4f" d t) times))
          (t1 /. Float.max 1e-9 (ms_of 2))
          (t1 /. Float.max 1e-9 (ms_of 4))
          overhead_1 trace
          (if i < List.length cells - 1 then "," else ""))
      cells;
    add "  },\n"
  in
  emit_par_block "exec_dist_domains" par;
  emit_par_block "exec_dist_subtree" subtree;
  add "  \"exec_dist_compress\": {\n";
  List.iteri
    (fun i (name, cell) ->
      add "    \"%s\": %s%s\n" name cell
        (if i < List.length compress - 1 then "," else ""))
    compress;
  add "  },\n";
  add "  \"compromise_sweep\": {\n";
  List.iteri
    (fun i (k, cell) ->
      add "    \"%d\": %s%s\n" k cell
        (if i < List.length compromise - 1 then "," else ""))
    compromise;
  add "  },\n";
  add "  \"serve\": %s\n" serve;
  add "}\n";
  let oc = open_out "BENCH_cdse.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "Wrote BENCH_cdse.json (%d micro rows, %d exec_dist workloads x depths 3-6, %d layered + %d subtree scaling cells, %d compression cells, %d compromise cells, 1 serve cell)\n%!"
    (List.length micro_rows) (List.length macro) (List.length par)
    (List.length subtree) (List.length compress) (List.length compromise)

(* ----------------------------------------------------- stable-key check *)

(* Minimal JSON reader — objects, arrays, strings, numbers, booleans and
   null — just enough for the CI smoke step to validate BENCH_cdse.json
   without pulling in a JSON dependency. *)
type json =
  | Jobj of (string * json) list
  | Jarr of json list
  | Jstr of string
  | Jnum of float
  | Jbool of bool
  | Jnull

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let i = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !i)) in
  let peek () = if !i >= n then fail "unexpected end of input" else s.[!i] in
  let skip_ws () =
    while !i < n && (match s.[!i] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false) do
      incr i
    done
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c" c) else incr i
  in
  let quoted () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> incr i; Buffer.contents b
      | '\\' ->
          incr i;
          let c = peek () in
          incr i;
          Buffer.add_char b (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
          go ()
      | c -> incr i; Buffer.add_char b c; go ()
    in
    go ()
  in
  let lit w v =
    let l = String.length w in
    if !i + l <= n && String.equal (String.sub s !i l) w then begin
      i := !i + l;
      v
    end
    else fail (Printf.sprintf "expected %s" w)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> Jstr (quoted ())
    | 't' -> lit "true" (Jbool true)
    | 'f' -> lit "false" (Jbool false)
    | 'n' -> lit "null" Jnull
    | _ ->
        let start = !i in
        while
          !i < n
          && (match s.[!i] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
        do
          incr i
        done;
        if !i = start then fail "expected a value"
        else Jnum (float_of_string (String.sub s start (!i - start)))
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin incr i; Jobj [] end
    else
      let rec fields acc =
        skip_ws ();
        let k = quoted () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' -> incr i; fields ((k, v) :: acc)
        | '}' -> incr i; Jobj (List.rev ((k, v) :: acc))
        | _ -> fail "expected , or }"
      in
      fields []
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then begin incr i; Jarr [] end
    else
      let rec elts acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' -> incr i; elts (v :: acc)
        | ']' -> incr i; Jarr (List.rev (v :: acc))
        | _ -> fail "expected , or ]"
      in
      elts []
  in
  let v = value () in
  skip_ws ();
  if !i <> n then fail "trailing content";
  v

(* Validate that BENCH_cdse.json parses and still carries the stable key
   set downstream tooling reads: the schema tag, every micro benchmark of
   the baseline, and every (workload, depth) exec_dist cell. Exits 1 with
   a diagnostic on any violation (the CI bench-smoke gate). *)
let check ?(path = "BENCH_cdse.json") () =
  let contents =
    try
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error e ->
      Printf.eprintf "check-json: %s\n" e;
      exit 1
  in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "check-json: %s: %s\n" path m;
        exit 1)
      fmt
  in
  let fields =
    match parse_json contents with
    | Jobj fields -> fields
    | exception Bad_json e -> fail "does not parse: %s" e
    | _ -> fail "top level is not an object"
  in
  (match List.assoc_opt "schema" fields with
  | Some (Jstr "cdse-bench/8") -> ()
  | Some (Jstr other) -> fail "schema is %S, expected \"cdse-bench/8\"" other
  | _ -> fail "missing string key \"schema\"");
  List.iter
    (fun k -> if not (List.mem_assoc k fields) then fail "missing key %S" k)
    [ "generated_by"; "units" ];
  let objf k =
    match List.assoc_opt k fields with
    | Some (Jobj o) -> o
    | _ -> fail "missing object key %S" k
  in
  let check_entry ctx = function
    | Jobj e ->
        List.iter
          (fun k -> if not (List.mem_assoc k e) then fail "%s: missing field %S" ctx k)
          [ "baseline"; "current"; "speedup" ];
        (match List.assoc "current" e with
        | Jnum _ -> ()
        | _ -> fail "%s: \"current\" is not a number" ctx)
    | _ -> fail "%s: not an object" ctx
  in
  (* The counters block: stable key set, numeric values, and an exact
     truncation deficit — the string must reparse as a rational in [0,1]
     via Rat.of_string. *)
  let check_counters ctx = function
    | Jobj c ->
        List.iter
          (fun k ->
            if not (List.mem_assoc k c) then fail "%s: counters missing key %S" ctx k)
          (counter_keys @ [ "memo_hit_rate"; "truncation_deficit" ]);
        List.iter
          (fun (k, v) ->
            match (k, v) with
            | "truncation_deficit", Jstr s -> (
                match Rat.of_string s with
                | r ->
                    if not (Rat.is_proper_prob r) then
                      fail "%s: truncation_deficit %S is not in [0,1]" ctx s
                | exception _ ->
                    fail "%s: truncation_deficit %S is not an exact rational" ctx s)
            | "truncation_deficit", _ ->
                fail "%s: truncation_deficit is not a string" ctx
            | _, Jnum _ -> ()
            | k, _ -> fail "%s: counter %S is not a number" ctx k)
          c
    | _ -> fail "%s: \"counters\" is not an object" ctx
  in
  let check_cell ctx e =
    check_entry ctx e;
    match e with
    | Jobj fields -> (
        match List.assoc_opt "counters" fields with
        | Some c -> check_counters ctx c
        | None -> fail "%s: missing field \"counters\"" ctx)
    | _ -> ()
  in
  let micro = objf "micro" in
  List.iter
    (fun (name, _) ->
      match List.assoc_opt name micro with
      | Some e -> check_entry ("micro." ^ name) e
      | None -> fail "micro: stable key %S missing" name)
    micro_baseline;
  let macro = objf "exec_dist" in
  List.iter
    (fun (name, base) ->
      match List.assoc_opt name macro with
      | Some (Jobj by_depth) ->
          List.iter
            (fun (d, _) ->
              let k = string_of_int d in
              match List.assoc_opt k by_depth with
              | Some e -> check_cell (Printf.sprintf "exec_dist.%s.%s" name k) e
              | None -> fail "exec_dist.%s: depth %s missing" name k)
            base
      | _ -> fail "exec_dist: stable workload %S missing" name)
    macro_baseline;
  (* Schema 3/7: per-domain wall-clock cells, one block per engine. Each
     workload carries its depth, a "ms" object with one number per
     recorded domain count, and the derived 2-/4-domain speedups; the
     timing-attribution "trace" block carries the engine-specific
     fractions — barrier-wait and merge for the layered engine (schema 6),
     idle and steal for the barrier-free subtree engine (schema 7). All
     fractions live in [0,1] by construction; the imbalance is a
     max-over-mean, ≥ 1 up to float rendering. *)
  let check_par_block key ~fracs =
    let block = objf key in
    List.iter
      (fun (name, _, _) ->
        let ctx = key ^ "." ^ name in
        match List.assoc_opt name block with
        | Some (Jobj cell) ->
            (match List.assoc_opt "depth" cell with
            | Some (Jnum _) -> ()
            | _ -> fail "%s: missing numeric field \"depth\"" ctx);
            (match List.assoc_opt "ms" cell with
            | Some (Jobj ms) ->
                List.iter
                  (fun d ->
                    match List.assoc_opt (string_of_int d) ms with
                    | Some (Jnum t) when t > 0.0 -> ()
                    | Some (Jnum _) -> fail "%s: ms[%d] is not positive" ctx d
                    | _ -> fail "%s: ms missing domain count %d" ctx d)
                  par_domains
            | _ -> fail "%s: missing object field \"ms\"" ctx);
            List.iter
              (fun k ->
                match List.assoc_opt k cell with
                | Some (Jnum _) -> ()
                | _ -> fail "%s: missing numeric field %S" ctx k)
              [ "speedup_2"; "speedup_4"; "overhead_1" ];
            (match List.assoc_opt "trace" cell with
            | Some (Jobj tr) ->
                let tnum k =
                  match List.assoc_opt k tr with
                  | Some (Jnum v) -> v
                  | _ -> fail "%s: trace missing numeric field %S" ctx k
                in
                if tnum "domains" < 1.0 then fail "%s: trace.domains < 1" ctx;
                List.iter
                  (fun k ->
                    let v = tnum k in
                    if v < 0.0 || v > 1.0 then
                      fail "%s: trace.%s %.4f is not in [0,1]" ctx k v)
                  fracs;
                if tnum "imbalance_max_over_mean" < 0.999 then
                  fail "%s: trace.imbalance_max_over_mean %.4f < 1" ctx
                    (tnum "imbalance_max_over_mean")
            | _ -> fail "%s: missing object field \"trace\"" ctx)
        | _ -> fail "%s: stable workload %S missing" key name)
      par_workloads
  in
  check_par_block "exec_dist_domains" ~fracs:[ "barrier_wait_frac"; "merge_frac" ];
  check_par_block "exec_dist_subtree" ~fracs:[ "idle_frac"; "steal_frac" ];
  (* Schema 4: state-space-compression cells. Structural validation plus
     the one timing-independent invariant — the quotient frontier can
     never be wider than the uncompressed one. *)
  let compress_block = objf "exec_dist_compress" in
  List.iter
    (fun (name, _, _) ->
      let ctx = "exec_dist_compress." ^ name in
      match List.assoc_opt name compress_block with
      | Some (Jobj cell) ->
          let num k =
            match List.assoc_opt k cell with
            | Some (Jnum v) -> v
            | _ -> fail "%s: missing numeric field %S" ctx k
          in
          List.iter (fun k -> ignore (num k))
            [ "span"; "depth"; "depth_2x"; "quotient_classes" ];
          if num "depth_2x" < 2.0 *. num "depth" then
            fail "%s: depth_2x < 2 x depth" ctx;
          (match List.assoc_opt "ms" cell with
          | Some (Jobj ms) ->
              List.iter
                (fun level ->
                  match List.assoc_opt level ms with
                  | Some (Jnum t) when t > 0.0 -> ()
                  | Some (Jnum _) -> fail "%s: ms.%s is not positive" ctx level
                  | _ -> fail "%s: ms missing level %S" ctx level)
                [ "off"; "hcons"; "quotient"; "quotient_2x" ]
          | _ -> fail "%s: missing object field \"ms\"" ctx);
          let wmax = num "frontier_width_max" in
          let wc = num "frontier_width_compressed" in
          if wc > wmax then
            fail "%s: frontier_width_compressed %.0f > frontier_width_max %.0f" ctx wc
              wmax;
          (match List.assoc_opt "mass_merged" cell with
          | Some (Jstr s) -> (
              (* Accumulated across layers, so it may exceed 1 — only
                 nonnegativity and exactness are invariant. *)
              match Rat.of_string s with
              | r -> if Rat.sign r < 0 then fail "%s: mass_merged %S is negative" ctx s
              | exception _ -> fail "%s: mass_merged %S is not an exact rational" ctx s)
          | _ -> fail "%s: missing string field \"mass_merged\"" ctx)
      | _ -> fail "exec_dist_compress: stable workload %S missing" name)
    compress_workloads;
  (* Schema 5: compromise-sweep cells. The recorded slacks are part of the
     contract: exact rationals in [0,1], non-decreasing in the budget, and
     the holds bits flip exactly at each system's tolerance threshold
     (OTP: 0 takeovers tolerated; 2-of-3 committee: 1). *)
  let compromise_block = objf "compromise_sweep" in
  let slack_at k field =
    let ctx = Printf.sprintf "compromise_sweep.%d" k in
    match List.assoc_opt (string_of_int k) compromise_block with
    | Some (Jobj cell) -> (
        (match List.assoc_opt "ms" cell with
        | Some (Jnum t) when t > 0.0 -> ()
        | _ -> fail "%s: missing positive numeric field \"ms\"" ctx);
        match List.assoc_opt field cell with
        | Some (Jstr s) -> (
            match Rat.of_string s with
            | r ->
                if not (Rat.is_proper_prob r) then
                  fail "%s: %s %S is not in [0,1]" ctx field s
                else r
            | exception _ -> fail "%s: %s %S is not an exact rational" ctx field s)
        | _ -> fail "%s: missing string field %S" ctx field)
    | _ -> fail "compromise_sweep: budget %d missing" k
  in
  let holds_at k field =
    match List.assoc_opt (string_of_int k) compromise_block with
    | Some (Jobj cell) -> (
        match List.assoc_opt field cell with
        | Some (Jbool b) -> b
        | _ -> fail "compromise_sweep.%d: missing boolean field %S" k field)
    | _ -> fail "compromise_sweep: budget %d missing" k
  in
  List.iter
    (fun field ->
      ignore
        (List.fold_left
           (fun prev k ->
             let s = slack_at k field in
             if Rat.compare s prev < 0 then
               fail "compromise_sweep: %s decreases at budget %d" field k;
             s)
           Rat.zero compromise_budgets))
    [ "otp_slack"; "committee_slack" ];
  List.iter
    (fun k ->
      if holds_at k "otp_holds" <> (k = 0) then
        fail "compromise_sweep.%d: otp_holds should flip at the 0-takeover threshold" k;
      if holds_at k "committee_holds" <> (k <= 1) then
        fail "compromise_sweep.%d: committee_holds should flip at the 1-takeover threshold" k)
    compromise_budgets;
  (* Schema 8: the serving-layer cell. The warm-cache speedup is part of
     the recorded contract — an exact cache hit must answer at least 2×
     faster than computing the distribution cold — and the resume depth
     must be a proper prefix of the full query depth. *)
  let serve_cell = objf "serve" in
  let snum k =
    match List.assoc_opt k serve_cell with
    | Some (Jnum v) -> v
    | _ -> fail "serve: missing numeric field %S" k
  in
  (match List.assoc_opt "workload" serve_cell with
  | Some (Jstr _) -> ()
  | _ -> fail "serve: missing string field \"workload\"");
  List.iter
    (fun k -> if snum k <= 0.0 then fail "serve: %S is not positive" k)
    [ "span"; "depth"; "domains"; "workers"; "cold_ms"; "warm_ms"; "resume_ms";
      "qps"; "queries" ];
  if snum "warm_speedup" < 2.0 then
    fail "serve: warm_speedup %.2f < 2 — the cache hit is not paying for itself"
      (snum "warm_speedup");
  let hr = snum "cache_hit_rate" in
  if hr < 0.0 || hr > 1.0 then fail "serve: cache_hit_rate %.4f is not in [0,1]" hr;
  if snum "p50_us" > snum "p99_us" then fail "serve: p50_us exceeds p99_us";
  let rf = snum "resumed_from" in
  if rf < 1.0 || rf >= snum "depth" then
    fail "serve: resumed_from %.0f is not a proper prefix of depth %.0f" rf
      (snum "depth");
  Printf.printf
    "check-json: %s OK (schema cdse-bench/8, %d micro keys, %d workloads x %d depths, %d layered + %d subtree scaling cells with trace blocks, %d compression cells, %d compromise cells, 1 serve cell, counters validated)\n"
    path (List.length micro_baseline) (List.length macro_baseline) (List.length depths)
    (List.length par_workloads) (List.length par_workloads)
    (List.length compress_workloads) (List.length compromise_budgets)

(* ------------------------------------------------------ trace-file check *)

(* Validate an emitted Chrome trace-event file (the --trace output): a
   top-level object with a "traceEvents" array of complete spans ("X"),
   instants ("i") and thread-name metadata ("M") — never unbalanced
   begin/end ("B"/"E") pairs — with numeric coordinates, nonnegative
   durations, and at least one engine work span (a layered-engine
   [measure.layer] or a subtree-engine [measure.subtree]/[measure.seed],
   whichever engine produced the trace). The CI trace-smoke gate. *)
let check_trace path =
  let contents =
    try
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error e ->
      Printf.eprintf "check-trace: %s\n" e;
      exit 1
  in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "check-trace: %s: %s\n" path m;
        exit 1)
      fmt
  in
  let fields =
    match parse_json contents with
    | Jobj fields -> fields
    | exception Bad_json e -> fail "does not parse: %s" e
    | _ -> fail "top level is not an object"
  in
  let events =
    match List.assoc_opt "traceEvents" fields with
    | Some (Jarr evs) -> evs
    | _ -> fail "missing array key \"traceEvents\""
  in
  let spans = ref 0 and layers = ref 0 and subtrees = ref 0 in
  List.iteri
    (fun i ev ->
      let ctx = Printf.sprintf "traceEvents[%d]" i in
      match ev with
      | Jobj e ->
          let str k =
            match List.assoc_opt k e with
            | Some (Jstr s) -> s
            | _ -> fail "%s: missing string field %S" ctx k
          in
          let num k =
            match List.assoc_opt k e with
            | Some (Jnum v) -> v
            | _ -> fail "%s: missing numeric field %S" ctx k
          in
          let name = str "name" in
          (match str "ph" with
          | "M" -> ()
          | "X" ->
              incr spans;
              if String.equal name "measure.layer" then incr layers;
              if String.equal name "measure.subtree" || String.equal name "measure.seed"
              then incr subtrees;
              ignore (num "ts");
              ignore (num "pid");
              ignore (num "tid");
              if num "dur" < 0.0 then fail "%s: negative dur" ctx
          | "i" ->
              ignore (num "ts");
              ignore (num "tid")
          | ("B" | "E") as ph ->
              fail "%s: unbalanced phase %S (exporter emits complete spans only)" ctx ph
          | ph -> fail "%s: unexpected phase %S" ctx ph)
      | _ -> fail "%s: not an object" ctx)
    events;
  if !spans = 0 then fail "no complete spans";
  if !layers = 0 && !subtrees = 0 then
    fail "no engine work spans (neither measure.layer nor measure.subtree/seed)";
  Printf.printf
    "check-trace: %s OK (%d events, %d spans, %d layer + %d subtree spans)\n" path
    (List.length events) !spans !layers !subtrees
