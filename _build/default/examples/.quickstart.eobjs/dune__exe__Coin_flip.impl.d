examples/coin_flip.ml: Cdse Coin_flip Compose Dist Emulation Format Impl Insight Pretty Rat Scheduler Schema Value
