examples/secure_channel.ml: Cdse Compose Dist Dummy Emulation Format Impl Insight Pretty Rat Scheduler Schema Secure_channel Structured Value
