examples/quickstart.mli:
