examples/committee.mli:
