examples/dynamic_subchain.ml: Action Cdse Dist Dynamic_system Exec Format List Manager Measure Pca Pretty Psioa Rat Rng Scheduler String Subchain
