examples/families.ml: Broadcast Cdse Emulation Format Impl Insight List Monotone Negligible Pca Poly Pretty Rat Scheduler Schema
