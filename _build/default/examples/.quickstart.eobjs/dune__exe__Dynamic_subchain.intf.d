examples/dynamic_subchain.mli:
