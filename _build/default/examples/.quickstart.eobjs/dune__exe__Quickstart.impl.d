examples/quickstart.ml: Action Action_set Cdse Compose Dist Exec Format Impl Insight List Measure Pretty Psioa Rat Scheduler Schema Sigs String Value Vdist
