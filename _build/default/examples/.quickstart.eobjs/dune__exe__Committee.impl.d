examples/committee.ml: Action Cdse Committee Dist Exec Format List Measure Pca Pretty Psioa Scheduler String
