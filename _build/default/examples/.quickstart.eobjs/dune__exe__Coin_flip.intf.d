examples/coin_flip.mli:
