examples/families.mli:
