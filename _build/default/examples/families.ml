(* Families and dynamicity: the k-indexed broadcast family under the
   ≤_{neg,pt} relation (Definitions 4.7-4.12), and the Section 4.4
   monotonicity-w.r.t.-creation story — substitution of equivalent
   dynamically-created components is sound exactly when the scheduler
   schema is creation-oblivious.

   Run with:  dune exec examples/families.exe *)

open Cdse

let () =
  Pretty.section "1. The broadcast family (k receivers)";
  let rows =
    List.map
      (fun k ->
        let depth = 6 + (3 * k) in
        let v =
          Emulation.check
            ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
            ~insight_of:Insight.accept
            ~envs:[ Broadcast.env_all_delivered ~k ~msg:1 "bc" ]
            ~eps:Rat.zero ~q1:depth ~q2:depth ~depth
            ~adversaries:[ Broadcast.adversary ~k "bc" ]
            ~sim_for:(fun _ -> Broadcast.simulator ~k "bc")
            ~real:(Broadcast.real ~k "bc")
            ~ideal:(Broadcast.ideal ~k "bc")
        in
        [ string_of_int k; string_of_bool v.Impl.holds; Rat.to_string v.Impl.worst ])
      [ 1; 2; 3 ]
  in
  Pretty.table ~header:[ "receivers k"; "real_k ≤_SE ideal_k"; "slack" ] rows;

  Pretty.section "2. Family-level ≤_{neg,pt} (Definition 4.12)";
  let hidden_real k =
    Emulation.hidden_system (Broadcast.real ~k:(max 1 k) "bc") (Broadcast.adversary ~k:(max 1 k) "bc")
  in
  let hidden_ideal k =
    Emulation.hidden_system (Broadcast.ideal ~k:(max 1 k) "bc") (Broadcast.simulator ~k:(max 1 k) "bc")
  in
  let v =
    Impl.le_neg_pt ~window:[ 1; 2; 3 ]
      ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
      ~insight_of:Insight.accept
      ~envs:(fun k -> [ Broadcast.env_all_delivered ~k:(max 1 k) ~msg:1 "bc" ])
      ~eps:Negligible.inv_pow2
      ~q1:(Poly.of_coeffs [ 4; 3 ])
      ~q2:(Poly.of_coeffs [ 4; 3 ])
      ~depth:(fun k -> 8 + (3 * k))
      ~a:hidden_real ~b:hidden_ideal
  in
  Format.printf "real ≤_(neg,pt) ideal over the window: %b (worst distance %s ≤ 2^-k)@."
    v.Impl.holds (Rat.to_string v.Impl.worst);

  Pretty.section "3. Monotonicity w.r.t. creation (Section 4.4)";
  let x_slow = Pca.psioa (Monotone.pca_with Monotone.child_slow) in
  let x_fast = Pca.psioa (Monotone.pca_with Monotone.child_fast) in
  let run label schema =
    let v =
      Impl.approx_le ~schema ~insight_of:Insight.accept ~envs:[ Monotone.env ] ~eps:Rat.zero
        ~q1:6 ~q2:6 ~depth:8 ~a:x_slow ~b:x_fast
    in
    Format.printf "%-42s X_A ≤ X_B: %-5b (distance %s)@." label v.Impl.holds
      (Rat.to_string v.Impl.worst)
  in
  run "creation-oblivious schema (scripts):"
    (Schema.oblivious_local ~scripts:[ Monotone.script_slow; Monotone.script_fast ]);
  run "creation-sensitive schema (peeks at kid):"
    (Schema.make ~name:"cs" (fun comp -> [ Monotone.creation_sensitive comp ]));
  print_endline
    "\nThe substituted children are equivalent, yet only the creation-oblivious\n\
     schema preserves the implementation relation across the substitution —\n\
     the Section 4.4 rationale for creation-oblivious scheduling.";
  print_endline "\nfamilies: done"
