(* Dynamically reconfigurable committee: the paper's blockchain motivation
   end to end. Validators join and leave at run time (PCA creation and
   destruction); blocks commit only when every current member voted; the
   adversarial scheduler interleaves votes freely and agreement holds in
   every interleaving, with probabilities computed exactly.

   Run with:  dune exec examples/committee.exe *)

open Cdse

let n = "cmt"

let () =
  let cmt = Committee.build ~max_validators:3 ~blocks:2 n in
  let auto = Pca.psioa cmt in

  Pretty.section "1. PCA constraints (Definition 2.16)";
  (match Pca.check_constraints ~max_states:300 ~max_depth:5 cmt with
  | Ok () -> print_endline "constraints hold on the explored states"
  | Error e -> failwith e);

  Pretty.section "2. A reconfiguration story";
  let show q =
    Format.printf "    members: [%s]   alive: [%s]   log: [%s]@."
      (String.concat "; " (List.map string_of_int (Committee.members cmt q)))
      (String.concat "; " (Pca.alive cmt q))
      (String.concat "; " (List.map string_of_int (Committee.committed cmt q)))
  in
  let step q a =
    Format.printf "  %s@." (Action.to_string a);
    let q' = List.hd (Dist.support (Psioa.step auto q a)) in
    show q';
    q'
  in
  let q = Psioa.start auto in
  show q;
  let q = step q (Committee.add n 0) in
  let q = step q (Committee.add n 1) in
  let q = step q (Committee.submit n 0) in
  let q = step q (Committee.propose n 0) in
  let q = step q (Committee.vote n 1 0) in
  let q = step q (Committee.vote n 0 0) in
  let q = step q (Committee.commit n 0) in
  let q = step q (Committee.retire n 1) in
  let q = step q (Committee.submit n 1) in
  let q = step q (Committee.propose n 1) in
  let q = step q (Committee.vote n 0 1) in
  let q = step q (Committee.commit n 1) in
  ignore q;

  Pretty.section "3. Agreement under every vote interleaving (exact)";
  let prologue =
    [ Committee.add n 0; Committee.add n 1; Committee.add n 2; Committee.submit n 0;
      Committee.propose n 0 ]
  in
  let q =
    List.fold_left
      (fun q a -> List.hd (Dist.support (Psioa.step auto q a)))
      (Psioa.start auto) prologue
  in
  let round =
    Psioa.make ~name:"round" ~start:q ~signature:(Psioa.signature auto)
      ~transition:(Psioa.transition auto)
  in
  let sched = Scheduler.bounded 4 (Scheduler.uniform round) in
  let d = Measure.exec_dist round sched ~depth:6 in
  let committed =
    List.for_all
      (fun e -> List.exists (Action.equal (Committee.commit n 0)) (Exec.actions e))
      (Dist.support d)
  in
  Format.printf "3 validators: %d vote interleavings, each with measure 1/6;@." (Dist.size d);
  Format.printf "block 0 commits in every interleaving: %b@." committed;
  print_endline "\ncommittee: done"
