(* Secure channel: the paper's Section 4.9 story end to end.

   A one-time-pad channel hands the ciphertext to the adversary; the ideal
   functionality leaks nothing but message presence. We check the dynamic
   secure-emulation relation (Definition 4.26) with exact rational
   probabilities, falsify it for a broken channel, and validate the
   Theorem 4.30 composite-simulator construction on two instances.

   Run with:  dune exec examples/secure_channel.exe *)

open Cdse

let accept_prob system env sched_bound depth =
  let comp = Compose.pair env system in
  let sched = Scheduler.bounded sched_bound (Scheduler.first_enabled comp) in
  let obs = Insight.apply (Insight.accept comp) comp sched ~depth in
  Rat.to_string (Dist.prob obs (Value.bool true))

let () =
  let real = Secure_channel.real "sc" in
  let leaky = Secure_channel.real_leaky "sc" in
  let ideal = Secure_channel.ideal "sc" in
  let adv = Secure_channel.adversary "sc" in
  let sim = Secure_channel.simulator "sc" in
  let env = Secure_channel.env_guess ~msg:1 "sc" in

  Pretty.section "1. The secrecy game (adversary guesses the plaintext)";
  Format.printf "P(adversary guesses m | OTP channel)    = %s@."
    (accept_prob (Emulation.hidden_system real adv) env 12 14);
  Format.printf "P(adversary guesses m | ideal + sim)    = %s@."
    (accept_prob (Emulation.hidden_system ideal sim) env 12 14);
  Format.printf "P(adversary guesses m | leaky channel)  = %s@."
    (accept_prob (Emulation.hidden_system leaky adv) env 12 14);

  Pretty.section "2. Secure emulation (Definition 4.26)";
  let check ~real =
    Emulation.check
      ~schema:(Schema.deterministic ~bound:12)
      ~insight_of:Insight.accept ~envs:[ env ] ~eps:Rat.zero ~q1:12 ~q2:12 ~depth:14
      ~adversaries:[ adv ] ~sim_for:(fun _ -> sim) ~real ~ideal
  in
  let good = check ~real in
  Format.printf "OTP channel  ≤_SE ideal: %b  (slack %s)@." good.Impl.holds
    (Rat.to_string good.Impl.worst);
  let bad = check ~real:leaky in
  Format.printf "leaky channel ≤_SE ideal: %b (adversary advantage %s)@." bad.Impl.holds
    (Rat.to_string bad.Impl.worst);

  Pretty.section "3. Composability (Theorem 4.30)";
  let r1 = Secure_channel.real "n1" and r2 = Secure_channel.real "n2" in
  let i1 = Secure_channel.ideal "n1" and i2 = Secure_channel.ideal "n2" in
  let g1 = Dummy.prefix_renaming "g1." and g2 = Dummy.prefix_renaming "g2." in
  let adv_hat = Compose.pair (Secure_channel.adversary "n1") (Secure_channel.adversary "n2") in
  let sim_hat =
    Emulation.composite_simulator
      ~components:
        [ { Emulation.real = r1; ideal = i1; g = g1; dsim = Secure_channel.dsim ~g:g1 "n1" };
          { Emulation.real = r2; ideal = i2; g = g2; dsim = Secure_channel.dsim ~g:g2 "n2" } ]
      ~adv:adv_hat
  in
  let v =
    Emulation.check
      ~schema:(Schema.deterministic ~bound:18)
      ~insight_of:Insight.accept
      ~envs:[ Secure_channel.env_guess ~msg:1 "n1" ]
      ~eps:Rat.zero ~q1:18 ~q2:18 ~depth:20 ~adversaries:[ adv_hat ]
      ~sim_for:(fun _ -> sim_hat) ~real:(Structured.compose r1 r2)
      ~ideal:(Structured.compose i1 i2)
  in
  Format.printf
    "n1‖n2 ≤_SE ideal‖ideal with the proof's composite simulator: %b (slack %s)@."
    v.Impl.holds (Rat.to_string v.Impl.worst);
  print_endline "\nsecure_channel: done"
