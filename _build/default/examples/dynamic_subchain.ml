(* Dynamic subchains: run-time creation and destruction of automata — the
   PCA machinery (Definitions 2.9-2.19) on the blockchain-flavoured
   workload from the paper's introduction.

   A manager opens off-chain subchannels; each accumulates transactions,
   settles its balance to an on-chain ledger and destroys itself
   (configuration reduction, Definition 2.12).

   Run with:  dune exec examples/dynamic_subchain.exe *)

open Cdse

let () =
  let system = Dynamic_system.build ~n_subchains:3 ~tx_values:[ 1; 2 ] ~max_total:12 () in
  let auto = Pca.psioa system in

  Pretty.section "1. PCA constraints (Definition 2.16)";
  (match Pca.check_constraints ~max_states:300 ~max_depth:5 system with
  | Ok () -> print_endline "all four constraints hold on the explored states"
  | Error e -> failwith e);

  Pretty.section "2. A scripted run (creation and destruction)";
  let show q = Format.printf "    alive: [%s]  ledger total: %d@."
      (String.concat "; " (Pca.alive system q))
      (Dynamic_system.ledger_total system q)
  in
  let step q a =
    Format.printf "  %s@." (Action.to_string a);
    let q' = List.hd (Dist.support (Psioa.step auto q a)) in
    show q';
    q'
  in
  let q = Psioa.start auto in
  show q;
  let q = step q Manager.open_action in
  let q = step q (Subchain.tx 0 2) in
  let q = step q Manager.open_action in
  let q = step q (Subchain.tx 1 1) in
  let q = step q (Subchain.close 0) in
  let q = step q (Subchain.settle 0 2) in
  let q = step q (Subchain.close 1) in
  let q = step q (Subchain.settle 1 1) in
  ignore q;

  Pretty.section "3. Random churn";
  let stats = Dynamic_system.drive system ~rng:(Rng.make 2024) ~steps:500 in
  Pretty.table
    ~header:[ "steps"; "creations"; "destructions"; "max alive"; "ledger total" ]
    [ [ string_of_int stats.Dynamic_system.steps_taken;
        string_of_int stats.Dynamic_system.creations;
        string_of_int stats.Dynamic_system.destructions;
        string_of_int stats.Dynamic_system.max_alive;
        string_of_int stats.Dynamic_system.final_total ] ];

  Pretty.section "4. Creation-oblivious scheduling (Section 4.4)";
  (* An off-line script fixed in advance — it cannot observe which automata
     exist, so it is creation-oblivious by construction; disabled actions
     simply halt the run. *)
  let script =
    [ Manager.open_action; Subchain.tx 0 1; Subchain.close 0; Subchain.settle 0 1 ]
  in
  let sched = Scheduler.oblivious auto script in
  let d = Measure.exec_dist auto sched ~depth:6 in
  List.iter
    (fun (e, p) ->
      Format.printf "  p=%s: %d scripted steps executed@." (Rat.to_string p) (Exec.length e))
    (Dist.items d);
  print_endline "\ndynamic_subchain: done"
