(* Quickstart: define two PSIOAs, compose them, schedule the composite,
   compute the exact execution measure, and check an implementation
   relation — the end-to-end tour of the foundational layer.

   Run with:  dune exec examples/quickstart.exe *)

open Cdse

let act ?payload name = Action.make ?payload name

let sig_io ?(i = []) ?(o = []) ?(h = []) () =
  Sigs.make ~input:(Action_set.of_list i) ~output:(Action_set.of_list o)
    ~internal:(Action_set.of_list h)

(* A biased coin: one internal flip, then it forever announces the
   outcome. *)
let coin ~p name =
  let init = Value.tag "init" Value.unit in
  let side b = Value.tag (if b then "heads" else "tails") Value.unit in
  let flip = act (name ^ ".flip") in
  let announce b = act (name ^ if b then ".heads" else ".tails") in
  Psioa.make ~name ~start:init
    ~signature:(fun q ->
      if Value.equal q init then sig_io ~h:[ flip ] ()
      else if Value.equal q (side true) then sig_io ~o:[ announce true ] ()
      else sig_io ~o:[ announce false ] ())
    ~transition:(fun q a ->
      if Value.equal q init && Action.equal a flip then
        Some (Vdist.coin ~p (side true) (side false))
      else if Value.equal q (side true) && Action.equal a (announce true) then
        Some (Vdist.dirac (side true))
      else if Value.equal q (side false) && Action.equal a (announce false) then
        Some (Vdist.dirac (side false))
      else None)

(* An environment that accepts when it hears heads. *)
let env name =
  let s k = Value.tag "env" (Value.int k) in
  let heads = act "c.heads" in
  let acc = act "acc" in
  Psioa.make ~name ~start:(s 0)
    ~signature:(fun q ->
      match q with
      | Value.Tag ("env", Value.Int 0) -> sig_io ~i:[ heads ] ()
      | Value.Tag ("env", Value.Int 1) -> sig_io ~o:[ acc ] ()
      | _ -> Sigs.empty)
    ~transition:(fun q a ->
      match q with
      | Value.Tag ("env", Value.Int 0) when Action.equal a heads -> Some (Vdist.dirac (s 1))
      | Value.Tag ("env", Value.Int 1) when Action.equal a acc -> Some (Vdist.dirac (s 2))
      | _ -> None)

let () =
  Pretty.section "1. Build and validate a PSIOA";
  let fair = coin ~p:Rat.half "c" in
  (match Psioa.validate fair with
  | Ok () -> print_endline "fair coin: valid PSIOA (Definition 2.1)"
  | Error e -> failwith e);

  Pretty.section "2. Compose with an environment (Definitions 2.4-2.5, 2.18)";
  let composite = Compose.pair (env "env") fair in
  Format.printf "composite signature at start: %a@."
    Sigs.pp (Psioa.signature composite (Psioa.start composite));

  Pretty.section "3. Schedule and compute the exact execution measure (Section 3)";
  let sched = Scheduler.bounded 3 (Scheduler.first_enabled composite) in
  let dist = Measure.exec_dist composite sched ~depth:5 in
  Format.printf "completed executions: %d, total mass: %s@." (Dist.size dist)
    (Rat.to_string (Dist.mass dist));
  List.iter
    (fun (e, p) ->
      Format.printf "  p=%-5s %s@." (Rat.to_string p)
        (String.concat " · " (List.map Action.to_string (Exec.actions e))))
    (Dist.items dist);

  Pretty.section "4. Observe through an insight function (Definitions 3.4-3.5)";
  let f = Insight.accept composite in
  let obs = Insight.apply f composite sched ~depth:5 in
  Format.printf "P(accept) = %s@." (Rat.to_string (Dist.prob obs (Value.bool true)));

  Pretty.section "5. Approximate implementation (Definition 4.12)";
  let check b_bias =
    Impl.approx_le
      ~schema:(Schema.standard ~bound:3)
      ~insight_of:Insight.accept
      ~envs:[ env "env" ]
      ~eps:Rat.zero ~q1:3 ~q2:3 ~depth:5 ~a:fair ~b:(coin ~p:b_bias "c")
  in
  let same = check Rat.half in
  Format.printf "fair ≤ fair at ε=0: %b (distance %s)@." same.Impl.holds
    (Rat.to_string same.Impl.worst);
  let biased = check (Rat.of_ints 3 4) in
  Format.printf "fair ≤ biased(3/4) at ε=0: %b (distance %s)@." biased.Impl.holds
    (Rat.to_string biased.Impl.worst);
  print_endline "\nquickstart: done"
