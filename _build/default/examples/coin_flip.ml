(* Commit-reveal coin flipping vs an ideal fair coin.

   The adversary controls all message timing; the commitment keeps party
   A's bit hidden until B has chosen, so the XOR stays exactly uniform and
   the protocol securely emulates the ideal coin with slack 0. A cheating
   variant (B echoes A's bit as if the commitment were transparent) is
   distinguished with advantage 1/2.

   Run with:  dune exec examples/coin_flip.exe *)

open Cdse

let () =
  let real = Coin_flip.real "cf" in
  let cheat = Coin_flip.real_cheating "cf" in
  let ideal = Coin_flip.ideal "cf" in
  let adv = Coin_flip.adversary "cf" in
  let sim = Coin_flip.simulator "cf" in
  let env = Coin_flip.env_result "cf" in

  Pretty.section "1. Result distribution (exact)";
  let result_prob protocol attacker =
    let sys = Emulation.hidden_system protocol attacker in
    let comp = Compose.pair env sys in
    let sched = Scheduler.bounded 14 (Scheduler.first_enabled comp) in
    let obs = Insight.apply (Insight.accept comp) comp sched ~depth:16 in
    Rat.to_string (Dist.prob obs (Value.bool true))
  in
  Format.printf "P(result = 0 | commit-reveal) = %s@." (result_prob real adv);
  Format.printf "P(result = 0 | ideal coin)    = %s@." (result_prob ideal sim);
  Format.printf "P(result = 0 | cheating B)    = %s@." (result_prob cheat adv);

  Pretty.section "2. Secure emulation (Definition 4.26)";
  let check ~real =
    Emulation.check
      ~schema:(Schema.deterministic ~bound:14)
      ~insight_of:Insight.accept ~envs:[ env ] ~eps:Rat.zero ~q1:14 ~q2:14 ~depth:16
      ~adversaries:[ adv ] ~sim_for:(fun _ -> sim) ~real ~ideal
  in
  let fair = check ~real in
  Format.printf "commit-reveal ≤_SE ideal coin: %b (slack %s)@." fair.Impl.holds
    (Rat.to_string fair.Impl.worst);
  let biased = check ~real:cheat in
  Format.printf "cheating      ≤_SE ideal coin: %b (bias %s)@." biased.Impl.holds
    (Rat.to_string biased.Impl.worst);
  print_endline "\ncoin_flip: done"
