(* Tests for the crypto substrate and the real/ideal protocol pairs: the
   one-time-pad secure channel (exact secrecy, ε = 0), its leaky
   falsification, the commit-reveal coin flip, and the Theorem 4.30
   composite-simulator construction on two channel instances. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_secure
open Cdse_crypto

let qtest = QCheck_alcotest.to_alcotest
let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

(* ------------------------------------------------------------ primitives *)

let prop_xor_involution =
  QCheck.Test.make ~name:"otp: decrypt ∘ encrypt = id"
    QCheck.(triple (int_bound 255) (int_bound 255) (int_range 1 8))
    (fun (m, k, w) ->
      let m = m land ((1 lsl w) - 1) in
      Primitives.xor_decrypt ~key:k ~width:w (Primitives.xor_encrypt ~key:k ~width:w m) = m)

let prop_xor_pad_uniform =
  (* The OTP core fact: for fixed m, c = m ⊕ k is a bijection of the key
     space, so a uniform key gives a uniform ciphertext. *)
  QCheck.Test.make ~name:"otp: ciphertext bijective in key"
    QCheck.(pair (int_bound 7) (int_range 1 3))
    (fun (m, w) ->
      let m = m land ((1 lsl w) - 1) in
      let cts = List.init (1 lsl w) (fun k -> Primitives.xor_encrypt ~key:k ~width:w m) in
      List.sort_uniq Int.compare cts = List.init (1 lsl w) Fun.id)

let test_prg_deterministic () =
  Alcotest.(check (list int)) "same seed same stream"
    (Primitives.prg_expand ~seed:42 ~len:8)
    (Primitives.prg_expand ~seed:42 ~len:8);
  Alcotest.(check bool) "different seeds differ" true
    (Primitives.prg_expand ~seed:1 ~len:8 <> Primitives.prg_expand ~seed:2 ~len:8);
  Alcotest.(check int) "length" 8 (List.length (Primitives.prg_expand ~seed:1 ~len:8))

let test_commit_verify () =
  let c = Primitives.commit ~msg:1 ~nonce:7 in
  Alcotest.(check bool) "verifies" true (Primitives.commit_verify ~commitment:c ~msg:1 ~nonce:7);
  Alcotest.(check bool) "wrong msg fails" false
    (Primitives.commit_verify ~commitment:c ~msg:0 ~nonce:7);
  Alcotest.(check bool) "wrong nonce fails" false
    (Primitives.commit_verify ~commitment:c ~msg:1 ~nonce:8)

(* --------------------------------------------------------- secure channel *)

let sc_real = Secure_channel.real "sc"
let sc_leaky = Secure_channel.real_leaky "sc"
let sc_ideal = Secure_channel.ideal "sc"
let sc_adv = Secure_channel.adversary "sc"
let sc_sim = Secure_channel.simulator "sc"

let test_channel_validates () =
  List.iter
    (fun s ->
      match Structured.validate s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Structured.name s) e)
    [ sc_real; sc_leaky; sc_ideal ]

let test_channel_adversary_valid () =
  (match Adversary.check ~structured:sc_real sc_adv with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "sim is adversary for ideal" true
    (Adversary.is_adversary ~structured:sc_ideal sc_sim)

(* Exact ε=0 claims quantify over the deterministic schema: a randomized
   σ needs a bespoke matching scheduler built from the simulation proof,
   which finite schema search cannot supply (see Schema.deterministic). *)
let se_check ~env ~real ~ideal ~adv ~sim ~eps =
  Emulation.check ~schema:(Schema.deterministic ~bound:12) ~insight_of:Insight.accept ~envs:[ env ]
    ~eps ~q1:12 ~q2:12 ~depth:14 ~adversaries:[ adv ] ~sim_for:(fun _ -> sim) ~real ~ideal

let test_channel_secrecy_exact () =
  (* The headline: OTP channel securely emulates the ideal functionality
     against the ciphertext-guessing adversary, with slack exactly 0 — the
     adversary's guess is uniform in both worlds. *)
  let v =
    se_check ~env:(Secure_channel.env_guess ~msg:1 "sc") ~real:sc_real ~ideal:sc_ideal
      ~adv:sc_adv ~sim:sc_sim ~eps:Rat.zero
  in
  Alcotest.(check bool) "real ≤_SE ideal (secrecy)" true v.Impl.holds;
  Alcotest.check rat "ε = 0 exactly" Rat.zero v.Impl.worst

let test_channel_completion_exact () =
  let v =
    se_check ~env:(Secure_channel.env_completion ~msg:1 "sc") ~real:sc_real ~ideal:sc_ideal
      ~adv:sc_adv ~sim:sc_sim ~eps:Rat.zero
  in
  Alcotest.(check bool) "functionality preserved" true v.Impl.holds

let test_channel_leaky_fails () =
  let v =
    se_check ~env:(Secure_channel.env_guess ~msg:1 "sc") ~real:sc_leaky ~ideal:sc_ideal
      ~adv:sc_adv ~sim:sc_sim ~eps:Rat.zero
  in
  Alcotest.(check bool) "leaky channel distinguished" false v.Impl.holds;
  (* Real: adversary's guess equals the plaintext always (acc prob 1).
     Ideal+sim: uniform fake (acc prob 1/2). Distance = 1/2. *)
  Alcotest.check rat "advantage 1/2" Rat.half v.Impl.worst

let test_channel_secrecy_width2 () =
  (* Wider message space: 2-bit OTP; the simulator's fake is uniform over
     4 ciphertexts; still exact. *)
  let real = Secure_channel.real ~width:2 "w2" and ideal = Secure_channel.ideal ~width:2 "w2" in
  let adv = Secure_channel.adversary ~width:2 "w2" and sim = Secure_channel.simulator ~width:2 "w2" in
  let v =
    se_check ~env:(Secure_channel.env_guess ~width:2 ~msg:3 "w2") ~real ~ideal ~adv ~sim
      ~eps:Rat.zero
  in
  Alcotest.(check bool) "2-bit channel exact" true v.Impl.holds

let test_channel_weak_eps_exact () =
  (* The weak pad (zero key never drawn): the plaintext-equal ciphertext
     never occurs, so the distance to the ideal world is EXACTLY 2^-width —
     the canonical ε > 0 instance of Definition 4.12. *)
  List.iter
    (fun width ->
      let real = Secure_channel.real_weak ~width "wk" and ideal = Secure_channel.ideal ~width "wk" in
      let adv = Secure_channel.adversary ~width "wk" and sim = Secure_channel.simulator ~width "wk" in
      let expected = Rat.pow Rat.half width in
      let check eps =
        Emulation.check ~schema:(Schema.deterministic ~bound:12) ~insight_of:Insight.accept
          ~envs:[ Secure_channel.env_guess ~width ~msg:1 "wk" ]
          ~eps ~q1:12 ~q2:12 ~depth:14 ~adversaries:[ adv ] ~sim_for:(fun _ -> sim) ~real ~ideal
      in
      let v0 = check Rat.zero in
      Alcotest.(check bool) (Printf.sprintf "w=%d fails at ε=0" width) false v0.Impl.holds;
      Alcotest.check rat (Printf.sprintf "w=%d distance exactly 2^-%d" width width) expected
        v0.Impl.worst;
      Alcotest.(check bool)
        (Printf.sprintf "w=%d holds at ε=2^-%d" width width)
        true (check expected).Impl.holds)
    [ 1; 2; 3 ]

let test_channel_weak_family_neg_pt () =
  (* Indexed by width: a family with ε(k) = 2^-k exactly — ≤_{neg,pt}
     holds with the canonical negligible bound but at no constant ε. *)
  let hidden_real k =
    let w = max 1 k in
    Emulation.hidden_system (Secure_channel.real_weak ~width:w "wk")
      (Secure_channel.adversary ~width:w "wk")
  in
  let hidden_ideal k =
    let w = max 1 k in
    Emulation.hidden_system (Secure_channel.ideal ~width:w "wk")
      (Secure_channel.simulator ~width:w "wk")
  in
  let run eps =
    Impl.le_neg_pt ~window:[ 1; 2; 3 ]
      ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
      ~insight_of:Insight.accept
      ~envs:(fun k -> [ Secure_channel.env_guess ~width:(max 1 k) ~msg:1 "wk" ])
      ~eps
      ~q1:(Cdse_util.Poly.of_coeffs [ 12 ])
      ~q2:(Cdse_util.Poly.of_coeffs [ 12 ])
      ~depth:(fun _ -> 14) ~a:hidden_real ~b:hidden_ideal
  in
  Alcotest.(check bool) "holds with ε(k) = 2^-k" true (run Cdse_bounded.Negligible.inv_pow2).Impl.holds;
  Alcotest.(check bool) "fails with ε = 0" false (run Cdse_bounded.Negligible.zero).Impl.holds

let test_channel_emulation_under_task_schedule () =
  (* The original task-PIOA setting: a task names an action CLASS (all
     payloads at once), so one off-line task schedule drives the protocol
     regardless of which key or ciphertext was sampled. The emulation
     claim holds at ε = 0 under the task-schedule schema — the paper's
     broader scheduler setting subsumes the task-scheduler one. *)
  let schedule_real =
    List.map Cdse_sched.Task.task_of_name
      [ "sc.keygen"; "sc.send"; "sc.ct"; "sc.deliver"; "sc.guess"; "sc.recv"; "acc" ]
  in
  let schedule_ideal =
    List.map Cdse_sched.Task.task_of_name
      [ "sc.send"; "sc.leak"; "sc.deliver"; "sc.guess"; "sc.recv"; "acc" ]
  in
  let schema =
    Schema.make ~name:"task" (fun a ->
        [ Cdse_sched.Task.scheduler_skipping a schedule_real;
          Cdse_sched.Task.scheduler_skipping a schedule_ideal ])
  in
  let v =
    Emulation.check ~schema ~insight_of:Insight.accept
      ~envs:[ Secure_channel.env_guess ~msg:1 "sc" ]
      ~eps:Rat.zero ~q1:10 ~q2:10 ~depth:12 ~adversaries:[ sc_adv ] ~sim_for:(fun _ -> sc_sim)
      ~real:sc_real ~ideal:sc_ideal
  in
  Alcotest.(check bool) "emulates under task schedules" true v.Impl.holds;
  Alcotest.check rat "ε = 0" Rat.zero v.Impl.worst

let test_channel_d1_direct () =
  (* Lemma D.1 on the secure channel itself (not just the relay fixture):
     the dummy adversary inserted between the OTP protocol and its
     ciphertext-observing adversary changes nothing, exactly. *)
  let g = Dummy.prefix_renaming "g." in
  let adv_renamed = Secure_channel.adversary ~rename:(fun s -> "g." ^ s) "sc" in
  let setup =
    Forwarding.make_setup ~structured:sc_real ~g
      ~env:(Secure_channel.env_guess ~msg:1 "sc")
      ~adv:adv_renamed ()
  in
  let lhs = Forwarding.lhs setup in
  List.iter
    (fun sched ->
      let r = Forwarding.check_lemma_d1 setup ~insight_of:Insight.accept ~sched ~q1:10 ~depth:10 in
      Alcotest.(check bool) "exact" true r.Forwarding.exact)
    [ Scheduler.first_enabled lhs; Scheduler.uniform lhs ]

(* ------------------------------------------------- Theorem 4.30 pipeline *)

let test_thm_430_composite_channels () =
  (* Two channel instances composed; the composite simulator is assembled
     from per-component dummy-simulators exactly as in the proof of
     Theorem 4.30, and the composite emulation still holds with ε = 0. *)
  let r1 = Secure_channel.real "n1" and r2 = Secure_channel.real "n2" in
  let i1 = Secure_channel.ideal "n1" and i2 = Secure_channel.ideal "n2" in
  let g1 = Dummy.prefix_renaming "g1." and g2 = Dummy.prefix_renaming "g2." in
  let real_hat = Structured.compose r1 r2 in
  let ideal_hat = Structured.compose i1 i2 in
  let adv_hat = Compose.pair (Secure_channel.adversary "n1") (Secure_channel.adversary "n2") in
  let components =
    [ { Emulation.real = r1; ideal = i1; g = g1; dsim = Secure_channel.dsim ~g:g1 "n1" };
      { Emulation.real = r2; ideal = i2; g = g2; dsim = Secure_channel.dsim ~g:g2 "n2" } ]
  in
  let sim_hat = Emulation.composite_simulator ~components ~adv:adv_hat in
  let env = Secure_channel.env_guess ~msg:1 "n1" in
  let v =
    Emulation.check ~schema:(Schema.deterministic ~bound:18) ~insight_of:Insight.accept ~envs:[ env ]
      ~eps:Rat.zero ~q1:18 ~q2:18 ~depth:20 ~adversaries:[ adv_hat ]
      ~sim_for:(fun _ -> sim_hat) ~real:real_hat ~ideal:ideal_hat
  in
  Alcotest.(check bool) "composite emulation holds" true v.Impl.holds;
  Alcotest.check rat "ε = 0" Rat.zero v.Impl.worst

let test_thm_430_mixed_protocols () =
  (* Theorem 4.30 across DIFFERENT protocol types: an OTP channel composed
     with a 2-of-2 secret sharing, each with its own renaming and
     dummy-simulator, glued by the proof's composite simulator. *)
  let ch_r = Secure_channel.real "mx1" and ch_i = Secure_channel.ideal "mx1" in
  let sh_r = Secret_share.real "mx2" and sh_i = Secret_share.ideal "mx2" in
  let g1 = Dummy.prefix_renaming "g1." and g2 = Dummy.prefix_renaming "g2." in
  let real_hat = Structured.compose ch_r sh_r in
  let ideal_hat = Structured.compose ch_i sh_i in
  let adv_hat = Compose.pair (Secure_channel.adversary "mx1") (Secret_share.adversary "mx2") in
  let sim_hat =
    Emulation.composite_simulator
      ~components:
        [ { Emulation.real = ch_r; ideal = ch_i; g = g1; dsim = Secure_channel.dsim ~g:g1 "mx1" };
          { Emulation.real = sh_r; ideal = sh_i; g = g2; dsim = Secret_share.dsim ~g:g2 "mx2" } ]
      ~adv:adv_hat
  in
  (* Two distinguishing environments: one playing each component's game. *)
  let envs = [ Secure_channel.env_guess ~msg:1 "mx1"; Secret_share.env_guess ~secret:1 "mx2" ] in
  let v =
    Emulation.check
      ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
      ~insight_of:Insight.accept ~envs ~eps:Rat.zero ~q1:20 ~q2:20 ~depth:22
      ~adversaries:[ adv_hat ] ~sim_for:(fun _ -> sim_hat) ~real:real_hat ~ideal:ideal_hat
  in
  Alcotest.(check bool) "mixed composition emulates" true v.Impl.holds;
  Alcotest.check rat "ε = 0" Rat.zero v.Impl.worst

(* -------------------------------------------------------------- coin flip *)

let cf_real = Coin_flip.real "cf"
let cf_cheat = Coin_flip.real_cheating "cf"
let cf_ideal = Coin_flip.ideal "cf"
let cf_adv = Coin_flip.adversary "cf"
let cf_sim = Coin_flip.simulator "cf"

let test_coinflip_validates () =
  List.iter
    (fun s ->
      match Structured.validate s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Structured.name s) e)
    [ cf_real; cf_cheat; cf_ideal ]

let test_coinflip_adversary_valid () =
  match Adversary.check ~structured:cf_real cf_adv with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let cf_check ~real ~eps =
  Emulation.check ~schema:(Schema.deterministic ~bound:14) ~insight_of:Insight.accept
    ~envs:[ Coin_flip.env_result "cf" ] ~eps ~q1:14 ~q2:14 ~depth:16 ~adversaries:[ cf_adv ]
    ~sim_for:(fun _ -> cf_sim) ~real ~ideal:cf_ideal

let test_coinflip_fair () =
  let v = cf_check ~real:cf_real ~eps:Rat.zero in
  Alcotest.(check bool) "commit-reveal emulates fair coin" true v.Impl.holds;
  Alcotest.check rat "ε = 0" Rat.zero v.Impl.worst

let test_coinflip_cheating_detected () =
  let v = cf_check ~real:cf_cheat ~eps:Rat.zero in
  Alcotest.(check bool) "biased protocol distinguished" false v.Impl.holds;
  (* Cheating real: result is always 0 (acc prob 1) vs ideal 1/2. *)
  Alcotest.check rat "bias 1/2" Rat.half v.Impl.worst

let test_coinflip_result_uniform () =
  (* Direct measure check: the real protocol's result distribution is
     exactly uniform under the deterministic driver. *)
  let sys =
    Compose.pair (Coin_flip.env_result "cf")
      (Hide.psioa_const
         (Compose.pair (Structured.psioa cf_real) cf_adv)
         (Structured.aact_universe cf_real))
  in
  let sched = Scheduler.bounded 14 (Scheduler.first_enabled sys) in
  let d = Insight.apply (Insight.accept sys) sys sched ~depth:16 in
  Alcotest.check rat "P(result=0) = 1/2" Rat.half (Dist.prob d (Value.bool true))

let () =
  Alcotest.run "cdse_crypto"
    [ ( "primitives",
        [ qtest prop_xor_involution;
          qtest prop_xor_pad_uniform;
          Alcotest.test_case "prg deterministic" `Quick test_prg_deterministic;
          Alcotest.test_case "commitment verify" `Quick test_commit_verify ] );
      ( "secure-channel",
        [ Alcotest.test_case "protocols validate" `Quick test_channel_validates;
          Alcotest.test_case "adversary/simulator valid (Def 4.24)" `Quick test_channel_adversary_valid;
          Alcotest.test_case "OTP secrecy exact (Def 4.26)" `Slow test_channel_secrecy_exact;
          Alcotest.test_case "functionality preserved" `Slow test_channel_completion_exact;
          Alcotest.test_case "leaky channel fails" `Slow test_channel_leaky_fails;
          Alcotest.test_case "2-bit width exact" `Slow test_channel_secrecy_width2;
          Alcotest.test_case "weak pad: ε = 2^-w exactly" `Slow test_channel_weak_eps_exact;
          Alcotest.test_case "weak pad family ≤ neg,pt" `Slow test_channel_weak_family_neg_pt;
          Alcotest.test_case "emulation under task schedules" `Slow
            test_channel_emulation_under_task_schedule;
          Alcotest.test_case "Lemma D.1 on the channel itself" `Slow test_channel_d1_direct;
          Alcotest.test_case "Thm 4.30 composite channels" `Slow test_thm_430_composite_channels;
          Alcotest.test_case "Thm 4.30 mixed protocols" `Slow test_thm_430_mixed_protocols ] );
      ( "coin-flip",
        [ Alcotest.test_case "protocols validate" `Quick test_coinflip_validates;
          Alcotest.test_case "adversary valid" `Quick test_coinflip_adversary_valid;
          Alcotest.test_case "fairness: emulates ideal coin" `Slow test_coinflip_fair;
          Alcotest.test_case "cheating detected" `Slow test_coinflip_cheating_detected;
          Alcotest.test_case "result exactly uniform" `Slow test_coinflip_result_uniform ] ) ]
