(* Tests for the bounded layer: encodings (Sec 4), decoding machines and
   time bounds (Defs 4.1-4.2), boundedness preservation under composition
   (Lemma 4.3) and hiding (Lemma 4.5), families (Defs 4.7-4.10) and
   negligible functions. *)

open Cdse_prob
open Cdse_psioa
open Cdse_bounded
open Cdse_testkit

let act = Fixtures.act

let coin = Fixtures.coin "c"
let counter = Fixtures.counter ~bound:3 "k"

(* ---------------------------------------------------------------- Encode *)

let test_encode_lengths_positive () =
  let q = Psioa.start coin in
  Alcotest.(check bool) "state bits" true (Cdse_util.Bits.length (Encode.state q) > 0);
  Alcotest.(check bool) "action bits" true (Cdse_util.Bits.length (Encode.action (act "c.flip")) > 0);
  let eta = Psioa.step coin q (act "c.flip") in
  Alcotest.(check bool) "transition bits" true
    (Cdse_util.Bits.length (Encode.transition q (act "c.flip") eta) > 0)

let test_encode_action_set_grows () =
  let s1 = Action_set.of_list [ act "a" ] in
  let s2 = Action_set.of_list [ act "a"; act "b"; act "c" ] in
  Alcotest.(check bool) "monotone" true
    (Cdse_util.Bits.length (Encode.action_set s2) > Cdse_util.Bits.length (Encode.action_set s1))

(* -------------------------------------------------------------- Machines *)

let test_m_start () =
  let yes, c1 = Machines.m_start coin (Encode.state (Psioa.start coin)) in
  Alcotest.(check bool) "start accepted" true yes;
  Alcotest.(check bool) "cost positive" true (c1 > 0);
  let no, _ = Machines.m_start coin (Encode.state (Value.tag "heads" Value.unit)) in
  Alcotest.(check bool) "non-start rejected" false no

let test_m_sig () =
  let q = Encode.state (Psioa.start coin) in
  let flip = Encode.action (act "c.flip") in
  Alcotest.(check bool) "flip internal" true (fst (Machines.m_sig coin q flip `Internal));
  Alcotest.(check bool) "flip not output" false (fst (Machines.m_sig coin q flip `Output));
  Alcotest.(check bool) "flip not input" false (fst (Machines.m_sig coin q flip `Input))

let test_m_trans_accepts_and_rejects () =
  let q = Psioa.start coin in
  let eta = Psioa.step coin q (act "c.flip") in
  let good = Encode.transition q (act "c.flip") eta in
  Alcotest.(check bool) "real transition accepted" true (fst (Machines.m_trans coin good));
  (* Wrong action: not a transition. *)
  let bad = Encode.transition q (act "c.heads") eta in
  Alcotest.(check bool) "wrong action rejected" false (fst (Machines.m_trans coin bad));
  (* Wrong probabilities: claim dirac where the coin is fair. *)
  let skewed = Encode.transition q (act "c.flip") (Vdist.dirac (Value.tag "heads" Value.unit)) in
  Alcotest.(check bool) "skewed measure rejected" false (fst (Machines.m_trans coin skewed));
  (* Garbage bits. *)
  let garbage = Cdse_util.Bits.of_string "1111111100000001" in
  Alcotest.(check bool) "garbage rejected" false (fst (Machines.m_trans coin garbage))

let test_m_step () =
  let q = Psioa.start coin in
  let eta = Psioa.step coin q (act "c.flip") in
  let tr = Encode.transition q (act "c.flip") eta in
  Alcotest.(check bool) "heads is a step" true
    (fst (Machines.m_step coin tr (Encode.state (Value.tag "heads" Value.unit))));
  Alcotest.(check bool) "init is not a step" false
    (fst (Machines.m_step coin tr (Encode.state q)))

let test_m_state_samples_support () =
  let rng = Rng.make 7 in
  let q = Encode.state (Psioa.start coin) in
  let flip = Encode.action (act "c.flip") in
  for _ = 1 to 50 do
    let out, cost = Machines.m_state coin rng q flip in
    let q' = Value.of_bits out in
    Alcotest.(check bool) "in support" true
      (Value.equal q' (Value.tag "heads" Value.unit) || Value.equal q' (Value.tag "tails" Value.unit));
    Alcotest.(check bool) "cost positive" true (cost > 0)
  done

(* --------------------------------------------------------------- Bounded *)

let test_measure_psioa_coin () =
  let r = Bounded.measure_psioa coin in
  Alcotest.(check int) "explored all states" 3 r.states_explored;
  Alcotest.(check bool) "bound positive" true (r.bound > 0);
  Alcotest.(check bool) "bound dominates parts" true (r.bound >= r.max_part_bits);
  Alcotest.(check bool) "is bounded at own bound" true (Bounded.is_time_bounded coin ~b:r.bound);
  Alcotest.(check bool) "not bounded below" false (Bounded.is_time_bounded coin ~b:(r.bound - 1))

let test_lemma_43_composition_bound () =
  (* Lemma 4.3 shape: bound(A1||A2) ≤ c_comp (b1 + b2) for a modest
     constant. *)
  let r1 = Bounded.measure_psioa coin in
  let r2 = Bounded.measure_psioa counter in
  let r12 = Bounded.measure_psioa (Compose.pair coin counter) in
  let ratio = Bounded.comp_ratio r1 r2 r12 in
  Alcotest.(check bool)
    (Printf.sprintf "c_comp = %.3f ≤ 4" ratio)
    true (ratio <= 4.0)

let test_lemma_43_pca () =
  let reg = Registry.of_list [ Fixtures.fragile "f1" ] in
  let reg2 = Registry.of_list [ Fixtures.fragile "f2" ] in
  let p1 = Cdse_config.Pca.make ~name:"p1" ~registry:reg ~init:(Cdse_config.Config.start_of reg [ "f1" ]) () in
  let p2 = Cdse_config.Pca.make ~name:"p2" ~registry:reg2 ~init:(Cdse_config.Config.start_of reg2 [ "f2" ]) () in
  let r1 = Bounded.measure_pca p1 and r2 = Bounded.measure_pca p2 in
  let r12 = Bounded.measure_pca (Cdse_config.Pca.compose_pair p1 p2) in
  let ratio = Bounded.comp_ratio r1 r2 r12 in
  Alcotest.(check bool) (Printf.sprintf "c'_comp = %.3f ≤ 4" ratio) true (ratio <= 4.0)

let test_lemma_45_hiding_bound () =
  let r = Bounded.measure_psioa coin in
  let hidden_set = Action_set.of_list [ act "c.heads" ] in
  let hidden = Hide.psioa_const coin hidden_set in
  let r' = Bounded.measure_psioa hidden in
  let recognizer_bits = Cdse_util.Bits.length (Encode.action_set hidden_set) in
  let ratio = Bounded.hide_ratio ~before:r ~after:r' ~recognizer_bits in
  Alcotest.(check bool) (Printf.sprintf "c_hide = %.3f ≤ 2" ratio) true (ratio <= 2.0)

(* ---------------------------------------------------------------- Family *)

let counter_family : Psioa.t Family.t = fun k -> Fixtures.counter ~bound:(1 + k) "k"
let coin_family : Psioa.t Family.t = fun _ -> coin

let test_family_compose () =
  let fam = Family.compose_psioa coin_family counter_family in
  match Psioa.validate (fam 2) with Ok () -> () | Error e -> Alcotest.fail e

let test_family_compatible_window () =
  Alcotest.(check bool) "compatible" true
    (Family.compatible_window ~window:[ 1; 2; 3 ] coin_family counter_family)

let test_family_time_bounded_window () =
  (* The counter family's states grow like log k: a generous linear bound
     holds on the window. *)
  let window = [ 1; 2; 4; 8 ] in
  Alcotest.(check bool) "linear bound holds" true
    (Family.time_bounded_window ~window ~bound:(fun k -> 2000 + (100 * k)) counter_family);
  Alcotest.(check bool) "zero bound fails" false
    (Family.time_bounded_window ~window ~bound:(fun _ -> 1) counter_family)

let test_family_map_const () =
  let doubled = Family.map (fun a -> Compose.pair a a) coin_family in
  (* Self-composition of the coin shares outputs with itself: invalid —
     use distinct names through map2 instead. *)
  ignore doubled;
  let named = Family.map2 (fun a b -> Compose.pair a b) coin_family counter_family in
  (match Psioa.validate (named 3) with Ok () -> () | Error e -> Alcotest.fail e);
  let c = Family.const 42 in
  Alcotest.(check int) "const" 42 (c 7)

let test_balance_check_family () =
  (* Definition 4.11 via Balance.check_family: identical coin families are
     balanced at ε(k) = 0 on a window; fair-vs-biased is not. *)
  let instance p k =
    let c = Fixtures.coin ~p "c" in
    let env = Fixtures.acceptor ~watch:[ ("c.heads", None) ] "env" in
    let comp = Compose.pair env c in
    ignore k;
    ( Cdse_sched.Insight.accept comp,
      comp,
      Cdse_sched.Scheduler.bounded 4 (Cdse_sched.Scheduler.first_enabled comp) )
  in
  let fair = instance Rat.half and biased = instance (Rat.of_ints 3 4) in
  Alcotest.(check bool) "identical families balanced" true
    (Cdse_sched.Balance.check_family
       ~eps:(fun _ -> Rat.zero)
       ~depth:(fun _ -> 6)
       ~window:[ 1; 2; 3 ] fair fair);
  Alcotest.(check bool) "biased family unbalanced at 0" false
    (Cdse_sched.Balance.check_family
       ~eps:(fun _ -> Rat.zero)
       ~depth:(fun _ -> 6)
       ~window:[ 1; 2; 3 ] fair biased)

let test_fit_poly_bound () =
  let window = [ 1; 2; 3; 4; 5 ] in
  let f k = (3 * k * k) + 1 in
  match Family.fit_poly_bound ~window ~degree:2 f with
  | None -> Alcotest.fail "no fit"
  | Some p ->
      Alcotest.(check bool) "dominates" true (Cdse_util.Poly.dominates p f ~from:1 ~upto:5)

(* ------------------------------------------------------------ Negligible *)

let test_negligible_inv_pow2 () =
  Alcotest.(check bool) "2^-k negligible (deg 3)" true
    (Negligible.is_negligible_window ~degree:3 ~from:20 ~upto:40 Negligible.inv_pow2);
  Alcotest.(check bool) "zero negligible" true
    (Negligible.is_negligible_window ~degree:5 ~from:1 ~upto:40 Negligible.zero)

let test_negligible_rejects_inverse_poly () =
  Alcotest.(check bool) "1/k^2 fails at degree 3" false
    (Negligible.is_negligible_window ~degree:3 ~from:10 ~upto:30 (Negligible.inv_poly 2))

let test_negligible_closed_under_add () =
  let e = Negligible.add Negligible.inv_pow2 Negligible.inv_pow2 in
  Alcotest.(check bool) "sum still negligible" true
    (Negligible.is_negligible_window ~degree:3 ~from:20 ~upto:40 e)

let test_negligible_mul_poly () =
  (* Polynomial factors preserve negligibility (hybrid arguments). *)
  (* 5k²·2^-k ≤ 1/k³ ⟺ 5k⁵ ≤ 2^k, which first holds at k = 26. *)
  let e = Negligible.mul_poly (Cdse_util.Poly.of_coeffs [ 0; 0; 5 ]) Negligible.inv_pow2 in
  Alcotest.(check bool) "5k²·2^-k negligible" true
    (Negligible.is_negligible_window ~degree:3 ~from:27 ~upto:45 e)

let test_negligible_pointwise () =
  Alcotest.(check bool) "2^-k ≤ 1 pointwise" true
    (Negligible.le_pointwise ~window:[ 1; 5; 10 ] Negligible.inv_pow2 (fun _ -> Rat.one))

let () =
  Alcotest.run "cdse_bounded"
    [ ( "encode",
        [ Alcotest.test_case "lengths positive" `Quick test_encode_lengths_positive;
          Alcotest.test_case "action set monotone" `Quick test_encode_action_set_grows ] );
      ( "machines",
        [ Alcotest.test_case "M_start" `Quick test_m_start;
          Alcotest.test_case "M_sig" `Quick test_m_sig;
          Alcotest.test_case "M_trans accept/reject" `Quick test_m_trans_accepts_and_rejects;
          Alcotest.test_case "M_step" `Quick test_m_step;
          Alcotest.test_case "M_state samples support" `Quick test_m_state_samples_support ] );
      ( "bounded",
        [ Alcotest.test_case "measure coin" `Quick test_measure_psioa_coin;
          Alcotest.test_case "Lemma 4.3 (PSIOA composition)" `Quick test_lemma_43_composition_bound;
          Alcotest.test_case "Lemma 4.3 (PCA composition)" `Quick test_lemma_43_pca;
          Alcotest.test_case "Lemma 4.5 (hiding)" `Quick test_lemma_45_hiding_bound ] );
      ( "family",
        [ Alcotest.test_case "pointwise composition" `Quick test_family_compose;
          Alcotest.test_case "compatibility window" `Quick test_family_compatible_window;
          Alcotest.test_case "time-bounded window (Def 4.8)" `Quick test_family_time_bounded_window;
          Alcotest.test_case "poly fit dominates" `Quick test_fit_poly_bound;
          Alcotest.test_case "map2/const combinators" `Quick test_family_map_const;
          Alcotest.test_case "balanced families (Def 4.11)" `Quick test_balance_check_family ] );
      ( "negligible",
        [ Alcotest.test_case "2^-k negligible" `Quick test_negligible_inv_pow2;
          Alcotest.test_case "1/k^d rejected" `Quick test_negligible_rejects_inverse_poly;
          Alcotest.test_case "closed under addition" `Quick test_negligible_closed_under_add;
          Alcotest.test_case "closed under poly factors" `Quick test_negligible_mul_poly;
          Alcotest.test_case "pointwise order" `Quick test_negligible_pointwise ] ) ]
