(* Tests for the extension layers: task-structured schedulers (the original
   task-PIOA scheduling the paper generalizes away from, Section 4.4),
   monotonicity w.r.t. creation and its failure under creation-sensitive
   scheduling (Section 4.4), and structured PCAs (Defs 4.20-4.23). *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_secure
open Cdse_testkit

let act = Fixtures.act
let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

(* ------------------------------------------------------------------ Task *)

let pipeline =
  Compose.parallel
    [ Fixtures.sender ~channel_name:"ch" ~script:[ 0; 1 ] "s";
      Fixtures.channel "ch";
      Fixtures.receiver ~channel_name:"ch" "r" ]

let test_task_enabled_in () =
  let t = Task.task_of_name "ch.send" in
  let acts = Task.enabled_in pipeline (Psioa.start pipeline) t in
  Alcotest.(check int) "one send enabled" 1 (List.length acts);
  Alcotest.(check int) "recv task empty initially" 0
    (List.length (Task.enabled_in pipeline (Psioa.start pipeline) (Task.task_of_name "ch.recv")))

let test_task_schedule_drives_pipeline () =
  let schedule =
    List.map Task.task_of_name [ "ch.send"; "ch.recv"; "ch.send"; "ch.recv" ]
  in
  let sched = Task.scheduler pipeline schedule in
  let d = Measure.exec_dist pipeline sched ~depth:6 in
  Alcotest.(check int) "single deterministic run" 1 (Dist.size d);
  Alcotest.(check int) "all four tasks fired" 4 (Exec.length (List.hd (Dist.support d)))

let test_task_halts_on_ambiguity () =
  (* Two counters share the task name pattern? Use an automaton where a
     task has two enabled members: channel with two pending sends is not
     possible; instead two independent counters named the same task. *)
  let sys = Compose.pair (Fixtures.counter ~bound:1 "a") (Fixtures.counter ~bound:1 "b") in
  (* Task "a.inc" is unique: fires. A fabricated task matching nothing:
     halts. *)
  let ok = Task.scheduler sys [ Task.task_of_name "a.inc" ] in
  Alcotest.(check int) "fires unique" 1
    (Exec.length (List.hd (Dist.support (Measure.exec_dist sys ok ~depth:3))));
  let ghost = Task.scheduler sys [ Task.task_of_name "ghost" ] in
  Alcotest.(check int) "halts on empty task" 0
    (Exec.length (List.hd (Dist.support (Measure.exec_dist sys ghost ~depth:3))))

let test_task_ambiguous_halts_strict_fires_skipping () =
  (* An automaton with two enabled actions of the same name (different
     payloads): strict task scheduling halts, the skipping variant skips to
     the next task. *)
  let both = act ~payload:(Value.int 0) "go" and both1 = act ~payload:(Value.int 1) "go" in
  let other = act "solo" in
  let auto =
    Psioa.make ~name:"amb" ~start:(Value.int 0)
      ~signature:(fun q ->
        if Value.equal q (Value.int 0) then Fixtures.sig_io ~o:[ both; both1; other ] ()
        else Sigs.empty)
      ~transition:(fun q a ->
        if Value.equal q (Value.int 0) && (Action.equal a both || Action.equal a both1 || Action.equal a other)
        then Some (Vdist.dirac (Value.int 1))
        else None)
  in
  let strict = Task.scheduler auto [ Task.task_of_name "go"; Task.task_of_name "solo" ] in
  Alcotest.(check int) "strict halts" 0
    (Exec.length (List.hd (Dist.support (Measure.exec_dist auto strict ~depth:3))));
  let lenient = Task.scheduler_skipping auto [ Task.task_of_name "go"; Task.task_of_name "solo" ] in
  let e = List.hd (Dist.support (Measure.exec_dist auto lenient ~depth:3)) in
  Alcotest.(check int) "skipping fires the next task" 1 (Exec.length e);
  Alcotest.(check string) "fired solo" "solo" (Action.name (List.hd (Exec.actions e)));
  Alcotest.(check bool) "ambiguity detected" false
    (Task.is_action_deterministic auto [ Task.task_of_name "go" ]);
  Alcotest.(check bool) "solo is deterministic" true
    (Task.is_action_deterministic auto [ Task.task_of_name "solo" ])

let test_task_schedules_are_oblivious () =
  (* A task schedule ignores states entirely: the same schedule applied to
     the dynamic subchain PCA is creation-oblivious — its choices do not
     depend on which subchains exist. *)
  let system = Cdse_dynamic.System.build ~n_subchains:2 ~tx_values:[ 1 ] ~max_total:4 () in
  let auto = Cdse_config.Pca.psioa system in
  let schedule = List.map Task.task_of_name [ "mgr.open"; "mgr.open" ] in
  let d = Measure.exec_dist auto (Task.scheduler auto schedule) ~depth:4 in
  Alcotest.(check int) "both opens fired" 2 (Exec.length (List.hd (Dist.support d)))

let test_task_matches_oblivious_on_deterministic_pipeline () =
  (* On an action-deterministic system, a task schedule and the oblivious
     script naming the same concrete actions induce the same measure. *)
  let acts =
    [ act ~payload:(Value.int 0) "ch.send"; act ~payload:(Value.int 0) "ch.recv";
      act ~payload:(Value.int 1) "ch.send"; act ~payload:(Value.int 1) "ch.recv" ]
  in
  let tasks = List.map (fun a -> Task.task_of_name (Action.name a)) acts in
  let d_task = Measure.exec_dist pipeline (Task.scheduler pipeline tasks) ~depth:6 in
  let d_obl = Measure.exec_dist pipeline (Scheduler.oblivious pipeline acts) ~depth:6 in
  Alcotest.(check bool) "same measure" true (Cdse_prob.Dist.equal d_task d_obl)

(* ---------------------------------------------- Monotonicity (Sec 4.4) *)

let x_slow = Cdse_gen.Monotone.pca_with Cdse_gen.Monotone.child_slow
let x_fast = Cdse_gen.Monotone.pca_with Cdse_gen.Monotone.child_fast

let oblivious_schema =
  Schema.oblivious_local ~scripts:[ Cdse_gen.Monotone.script_slow; Cdse_gen.Monotone.script_fast ]

let test_children_equivalent () =
  (* A ≤ B and B ≤ A through the accept insight under oblivious scripts. *)
  let env = Cdse_gen.Monotone.env in
  let scripts =
    Schema.oblivious_local
      ~scripts:[ [ act "kid.work"; act "kid.beep"; act "acc" ]; [ act "kid.beep"; act "acc" ] ]
  in
  let le a b =
    Impl.approx_le ~schema:scripts ~insight_of:Insight.accept ~envs:[ env ] ~eps:Rat.zero ~q1:4
      ~q2:4 ~depth:6 ~a ~b
  in
  let v1 = le Cdse_gen.Monotone.child_slow Cdse_gen.Monotone.child_fast in
  let v2 = le Cdse_gen.Monotone.child_fast Cdse_gen.Monotone.child_slow in
  Alcotest.(check bool) "A ≤ B" true v1.Impl.holds;
  Alcotest.(check bool) "B ≤ A" true v2.Impl.holds

let test_monotonic_under_creation_oblivious () =
  (* X_A ≤ X_B with the creation-oblivious (off-line script) schema. *)
  let v =
    Impl.approx_le ~schema:oblivious_schema ~insight_of:Insight.accept
      ~envs:[ Cdse_gen.Monotone.env ] ~eps:Rat.zero ~q1:4 ~q2:4 ~depth:6
      ~a:(Cdse_config.Pca.psioa x_slow) ~b:(Cdse_config.Pca.psioa x_fast)
  in
  Alcotest.(check bool) "monotonic: X_A ≤ X_B" true v.Impl.holds;
  Alcotest.check rat "distance 0" Rat.zero v.Impl.worst

let test_monotonicity_fails_creation_sensitive () =
  (* Under a creation-sensitive schema the same substitution is
     distinguished with advantage 1: the scheduler halts iff it sees child
     A's internal state. This is the Section 4.4 justification for
     creation-oblivious schemas. *)
  let schema = Schema.make ~name:"creation-sensitive" (fun comp -> [ Cdse_gen.Monotone.creation_sensitive comp ]) in
  let v =
    Impl.approx_le ~schema ~insight_of:Insight.accept ~envs:[ Cdse_gen.Monotone.env ]
      ~eps:Rat.zero ~q1:6 ~q2:6 ~depth:8
      ~a:(Cdse_config.Pca.psioa x_slow) ~b:(Cdse_config.Pca.psioa x_fast)
  in
  Alcotest.(check bool) "monotonicity broken" false v.Impl.holds;
  Alcotest.check rat "advantage 1" Rat.one v.Impl.worst

let test_monotonic_print_insight () =
  (* The paper singles out the print insight as the one suited to
     monotonicity w.r.t. creation: the environment's local view ignores
     the substituted component entirely, so X_A and X_B are
     indistinguishable under it with creation-oblivious scripts. *)
  let insight_of comp = Insight.print_left Cdse_gen.Monotone.env comp in
  let v =
    Impl.approx_le ~schema:oblivious_schema ~insight_of ~envs:[ Cdse_gen.Monotone.env ]
      ~eps:Rat.zero ~q1:4 ~q2:4 ~depth:6
      ~a:(Cdse_config.Pca.psioa x_slow) ~b:(Cdse_config.Pca.psioa x_fast)
  in
  Alcotest.(check bool) "monotone under print" true v.Impl.holds;
  Alcotest.check rat "distance 0" Rat.zero v.Impl.worst

(* ---------------------------------------------------- Structured PCA *)

let spca_of_system () =
  let system = Cdse_dynamic.System.build ~n_subchains:2 ~tx_values:[ 1 ] ~max_total:4 () in
  (* Environment interface: subchain tx/close and ledger reports; adversary
     interface: settlements and manager openings. *)
  let member_eact id q =
    let auto_sig =
      Psioa.signature (Registry.find (Cdse_config.Pca.registry system) id) q
    in
    let ext = Sigs.ext auto_sig in
    Action_set.filter
      (fun a ->
        let n = Action.name a in
        not (String.equal n "ledger.settle" || String.equal n "mgr.open"))
      ext
  in
  Spca.make ~pca:system ~member_eact

let test_spca_constraint () =
  match Spca.check_constraint ~max_states:200 ~max_depth:5 (spca_of_system ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_spca_eact_tracks_config () =
  let s = spca_of_system () in
  let auto = Cdse_config.Pca.psioa (Spca.pca s) in
  let q0 = Psioa.start auto in
  (* Initially no subchains: EAct_X contains no tx actions. *)
  Alcotest.(check bool) "no tx initially" true
    (Action_set.for_all
       (fun a -> Action.name a <> "sub0.tx")
       (Spca.eact s q0));
  let q1 = List.hd (Dist.support (Psioa.step auto q0 (act "mgr.open"))) in
  Alcotest.(check bool) "tx appears after creation" true
    (Action_set.exists (fun a -> Action.name a = "sub0.tx") (Spca.eact s q1));
  (* mgr.open stays on the adversary side. *)
  Alcotest.(check bool) "open is AAct" true
    (Action_set.for_all (fun a -> Action.name a <> "mgr.open") (Spca.eact s q0))

let test_spca_compose_lemma_423 () =
  (* Lemma 4.23: the composition of structured PCAs satisfies the
     structured constraint. Compose the subchain system with an
     independent fragile-automaton PCA. *)
  let reg = Registry.of_list [ Fixtures.fragile "frag" ] in
  let other_pca =
    Cdse_config.Pca.make ~name:"other" ~registry:reg
      ~init:(Cdse_config.Config.start_of reg [ "frag" ])
      ()
  in
  let other =
    Spca.make ~pca:other_pca ~member_eact:(fun id q ->
        Sigs.ext (Psioa.signature (Registry.find reg id) q))
  in
  let composed = Spca.compose_pair (spca_of_system ()) other in
  (match Spca.check_constraint ~max_states:200 ~max_depth:4 composed with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* The structured view is usable downstream. *)
  let st = Spca.to_structured composed in
  Alcotest.(check bool) "frag.go is EAct of the composite" true
    (Action_set.exists
       (fun a -> Action.name a = "frag.go")
       (Structured.eact st (Psioa.start (Structured.psioa st))))

let () =
  Alcotest.run "cdse_extensions"
    [ ( "task-scheduler",
        [ Alcotest.test_case "enabled_in" `Quick test_task_enabled_in;
          Alcotest.test_case "task schedule drives pipeline" `Quick test_task_schedule_drives_pipeline;
          Alcotest.test_case "unique fires / empty halts" `Quick test_task_halts_on_ambiguity;
          Alcotest.test_case "ambiguity: strict vs skipping" `Quick
            test_task_ambiguous_halts_strict_fires_skipping;
          Alcotest.test_case "task schedules are creation-oblivious" `Quick
            test_task_schedules_are_oblivious;
          Alcotest.test_case "task ≡ oblivious on deterministic systems" `Quick
            test_task_matches_oblivious_on_deterministic_pipeline ] );
      ( "monotonicity",
        [ Alcotest.test_case "children mutually implement" `Quick test_children_equivalent;
          Alcotest.test_case "monotone under creation-oblivious schema" `Quick
            test_monotonic_under_creation_oblivious;
          Alcotest.test_case "broken by creation-sensitive schema" `Quick
            test_monotonicity_fails_creation_sensitive;
          Alcotest.test_case "monotone under the print insight" `Quick
            test_monotonic_print_insight ] );
      ( "structured-pca",
        [ Alcotest.test_case "constraint (Def 4.22)" `Quick test_spca_constraint;
          Alcotest.test_case "EAct tracks configuration" `Quick test_spca_eact_tracks_config;
          Alcotest.test_case "closure under composition (Lemma 4.23)" `Quick
            test_spca_compose_lemma_423 ] ) ]
