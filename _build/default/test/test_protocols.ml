(* Tests for the additional protocol substrates: 2-of-2 XOR secret sharing
   and the family-indexed broadcast — including the family-level
   ≤_{neg,pt} relation (Definition 4.12) over a window of indices. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_secure
open Cdse_crypto

let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

(* ---------------------------------------------------------- secret share *)

let ss_real = Secret_share.real "ss"
let ss_real2 = Secret_share.real ~corrupt:`Second "ss"
let ss_leak = Secret_share.transparent "ss"
let ss_ideal = Secret_share.ideal "ss"
let ss_adv = Secret_share.adversary "ss"
let ss_sim = Secret_share.simulator "ss"

let ss_check ~real ~eps =
  Emulation.check ~schema:(Schema.deterministic ~bound:12) ~insight_of:Insight.accept
    ~envs:[ Secret_share.env_guess ~secret:1 "ss" ] ~eps ~q1:12 ~q2:12 ~depth:14
    ~adversaries:[ ss_adv ] ~sim_for:(fun _ -> ss_sim) ~real ~ideal:ss_ideal

let test_ss_validates () =
  List.iter
    (fun s -> match Structured.validate s with Ok () -> () | Error e -> Alcotest.fail e)
    [ ss_real; ss_real2; ss_leak; ss_ideal ]

let test_ss_adversary_valid () =
  match Adversary.check ~structured:ss_real ss_adv with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_ss_first_share_hides () =
  let v = ss_check ~real:ss_real ~eps:Rat.zero in
  Alcotest.(check bool) "share r reveals nothing" true v.Impl.holds;
  Alcotest.check rat "ε = 0" Rat.zero v.Impl.worst

let test_ss_second_share_hides () =
  let v = ss_check ~real:ss_real2 ~eps:Rat.zero in
  Alcotest.(check bool) "share s⊕r reveals nothing" true v.Impl.holds

let test_ss_transparent_fails () =
  let v = ss_check ~real:ss_leak ~eps:Rat.zero in
  Alcotest.(check bool) "transparent dealer distinguished" false v.Impl.holds;
  Alcotest.check rat "advantage 1/2" Rat.half v.Impl.worst

(* ---------------------------------------------------------- session channel *)

let ses_depth r = 2 + (7 * r)

let ses_check ~rounds ~eps =
  Emulation.check
    ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
    ~insight_of:Insight.accept
    ~envs:[ Secure_channel.env_session ~rounds ~msg:1 "ses" ]
    ~eps ~q1:(ses_depth rounds) ~q2:(ses_depth rounds) ~depth:(ses_depth rounds + 2)
    ~adversaries:[ Secure_channel.adversary "ses" ]
    ~sim_for:(fun _ -> Secure_channel.simulator "ses")
    ~real:(Secure_channel.session_real ~rounds "ses")
    ~ideal:(Secure_channel.session_ideal ~rounds "ses")

let test_session_validates () =
  List.iter
    (fun r ->
      (match Structured.validate (Secure_channel.session_real ~rounds:r "ses") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "real r=%d: %s" r e);
      match Structured.validate (Secure_channel.session_ideal ~rounds:r "ses") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "ideal r=%d: %s" r e)
    [ 1; 2; 3 ]

let test_session_adversary_valid () =
  match
    Adversary.check ~structured:(Secure_channel.session_real ~rounds:2 "ses")
      (Secure_channel.adversary "ses")
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_session_emulates_per_round () =
  (* Secrecy composes over time: slack exactly 0 at 1, 2 and 3 rounds. *)
  List.iter
    (fun rounds ->
      let v = ses_check ~rounds ~eps:Rat.zero in
      Alcotest.(check bool) (Printf.sprintf "rounds=%d" rounds) true v.Impl.holds;
      Alcotest.check rat "slack 0" Rat.zero v.Impl.worst)
    [ 1; 2; 3 ]

let test_session_guess_probability () =
  (* The environment's all-rounds guessing game succeeds with probability
     exactly 2^-rounds (1-bit messages) in the real world. *)
  let rounds = 3 in
  let sys =
    Compose.pair
      (Secure_channel.env_session ~rounds ~msg:1 "ses")
      (Emulation.hidden_system
         (Secure_channel.session_real ~rounds "ses")
         (Secure_channel.adversary "ses"))
  in
  let sched = Scheduler.bounded (ses_depth rounds) (Scheduler.first_enabled sys) in
  let d = Insight.apply (Insight.accept sys) sys sched ~depth:(ses_depth rounds + 2) in
  Alcotest.check rat "P(all guesses right) = 1/8" (Rat.of_ints 1 8)
    (Cdse_prob.Dist.prob d (Value.bool true))

(* ------------------------------------------------------------- broadcast *)

let bc_depth k = 4 + (3 * k)

let bc_check ~k ~eps =
  Emulation.check ~schema:(Schema.deterministic ~bound:(bc_depth k)) ~insight_of:Insight.accept
    ~envs:[ Broadcast.env_all_delivered ~k ~msg:1 "bc" ]
    ~eps ~q1:(bc_depth k) ~q2:(bc_depth k) ~depth:(bc_depth k + 2)
    ~adversaries:[ Broadcast.adversary ~k "bc" ]
    ~sim_for:(fun _ -> Broadcast.simulator ~k "bc")
    ~real:(Broadcast.real ~k "bc") ~ideal:(Broadcast.ideal ~k "bc")

let test_bc_validates () =
  List.iter
    (fun k ->
      match Structured.validate (Broadcast.real ~k "bc") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "real k=%d: %s" k e)
    [ 1; 2; 3 ];
  match Structured.validate (Broadcast.ideal ~k:2 "bc") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_bc_adversary_valid () =
  List.iter
    (fun k ->
      match Adversary.check ~structured:(Broadcast.real ~k "bc") (Broadcast.adversary ~k "bc") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "k=%d: %s" k e)
    [ 1; 2; 3 ]

let test_bc_emulates_per_k () =
  List.iter
    (fun k ->
      let v = bc_check ~k ~eps:Rat.zero in
      Alcotest.(check bool) (Printf.sprintf "k=%d emulates" k) true v.Impl.holds)
    [ 1; 2; 3 ]

let test_bc_family_neg_pt () =
  (* The family relation of Definition 4.12 on the hidden systems, with a
     negligible ε bound and polynomial scheduler bounds. *)
  let hidden_real k =
    Emulation.hidden_system (Broadcast.real ~k:(max 1 k) "bc") (Broadcast.adversary ~k:(max 1 k) "bc")
  in
  let hidden_ideal k =
    Emulation.hidden_system (Broadcast.ideal ~k:(max 1 k) "bc") (Broadcast.simulator ~k:(max 1 k) "bc")
  in
  let v =
    Impl.le_neg_pt ~window:[ 1; 2; 3 ]
      ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
      ~insight_of:Insight.accept
      ~envs:(fun k -> [ Broadcast.env_all_delivered ~k:(max 1 k) ~msg:1 "bc" ])
      ~eps:Cdse_bounded.Negligible.inv_pow2
      ~q1:(Cdse_util.Poly.of_coeffs [ 4; 3 ])
      ~q2:(Cdse_util.Poly.of_coeffs [ 4; 3 ])
      ~depth:(fun k -> bc_depth k + 2)
      ~a:hidden_real ~b:hidden_ideal
  in
  Alcotest.(check bool) "family ≤_{neg,pt}" true v.Impl.holds

let test_bc_family_poly_bounded () =
  (* Definition 4.8: the broadcast family has polynomially bounded
     description (bound grows polynomially in k). *)
  let fam k = Structured.psioa (Broadcast.real ~k:(max 1 k) "bc") in
  let ok =
    Cdse_bounded.Family.poly_bounded_window ~window:[ 1; 2; 3 ]
      ~poly:(Cdse_util.Poly.of_coeffs [ 4000; 2000; 500 ])
      ~max_states:150 ~max_depth:10 fam
  in
  Alcotest.(check bool) "poly-bounded family" true ok

let test_bc_delivery_reordering () =
  (* The adversary may release receivers in any order the scheduler picks;
     whatever the order, every receiver delivers the same message
     (agreement). *)
  let k = 3 in
  let sys =
    Compose.pair
      (Broadcast.env_all_delivered ~k ~msg:1 "bc")
      (Emulation.hidden_system (Broadcast.real ~k "bc") (Broadcast.adversary ~k "bc"))
  in
  let sched = Scheduler.bounded (bc_depth k) (Scheduler.uniform sys) in
  let d = Measure.exec_dist sys sched ~depth:(bc_depth k + 2) in
  Alcotest.(check bool) "several interleavings explored" true (Dist.size d > 1);
  List.iter
    (fun e ->
      List.iter
        (fun a ->
          if
            String.length (Action.name a) > 10
            && String.sub (Action.name a) 0 10 = "bc.deliver"
          then
            Alcotest.(check bool) "agreement: payload is the sent message" true
              (Value.equal (Action.payload a) (Value.int 1)))
        (Exec.actions e))
    (Dist.support d)

(* ------------------------------------------------------------ aggregation *)

let ag_depth p = 10 + (2 * p)

let ag_check ~parties ~env ~real ~eps =
  Emulation.check
    ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
    ~insight_of:Insight.accept ~envs:[ env ] ~eps ~q1:(ag_depth parties) ~q2:(ag_depth parties)
    ~depth:(ag_depth parties + 2)
    ~adversaries:[ Aggregation.adversary "ag" ]
    ~sim_for:(fun _ -> Aggregation.simulator "ag")
    ~real ~ideal:(Aggregation.ideal ~parties "ag")

let test_ag_validates () =
  List.iter
    (fun p ->
      List.iter
        (fun s ->
          match Structured.validate ~max_states:800 s with
          | Ok () -> ()
          | Error e -> Alcotest.failf "p=%d: %s" p e)
        [ Aggregation.real ~parties:p "ag"; Aggregation.unmasked ~parties:p "ag";
          Aggregation.ideal ~parties:p "ag" ])
    [ 1; 2; 3 ]

let test_ag_privacy_exact () =
  (* Privacy: the adversary's view of party 0's masked input is uniform;
     slack exactly 0 for 1..3 parties, any input vector. *)
  List.iter
    (fun (parties, inputs) ->
      let v =
        ag_check ~parties
          ~env:(Aggregation.env_guess ~parties ~inputs "ag")
          ~real:(Aggregation.real ~parties "ag") ~eps:Rat.zero
      in
      Alcotest.(check bool) (Printf.sprintf "p=%d private" parties) true v.Impl.holds;
      Alcotest.check rat "ε = 0" Rat.zero v.Impl.worst)
    [ (1, [ 1 ]); (2, [ 1; 0 ]); (3, [ 1; 1; 0 ]) ]

let test_ag_correctness () =
  (* Correctness: the announced sum is ⊕xᵢ in both worlds, so the sum game
     is also at slack 0. *)
  let parties = 3 and inputs = [ 1; 0; 1 ] in
  let v =
    ag_check ~parties
      ~env:(Aggregation.env_sum ~parties ~inputs "ag")
      ~real:(Aggregation.real ~parties "ag") ~eps:Rat.zero
  in
  Alcotest.(check bool) "sum correct in both worlds" true v.Impl.holds

let test_ag_unmasked_fails () =
  let parties = 2 and inputs = [ 1; 0 ] in
  let v =
    ag_check ~parties
      ~env:(Aggregation.env_guess ~parties ~inputs "ag")
      ~real:(Aggregation.unmasked ~parties "ag") ~eps:Rat.zero
  in
  Alcotest.(check bool) "unmasked distinguished" false v.Impl.holds;
  Alcotest.check rat "advantage 1/2" Rat.half v.Impl.worst

let () =
  Alcotest.run "cdse_protocols"
    [ ( "secret-share",
        [ Alcotest.test_case "validates" `Quick test_ss_validates;
          Alcotest.test_case "adversary valid (Def 4.24)" `Quick test_ss_adversary_valid;
          Alcotest.test_case "first share hides (ε=0)" `Slow test_ss_first_share_hides;
          Alcotest.test_case "second share hides (ε=0)" `Slow test_ss_second_share_hides;
          Alcotest.test_case "transparent dealer fails" `Slow test_ss_transparent_fails ] );
      ( "session-channel",
        [ Alcotest.test_case "validates for 1..3 rounds" `Quick test_session_validates;
          Alcotest.test_case "adversary valid across rounds" `Quick test_session_adversary_valid;
          Alcotest.test_case "secrecy composes over rounds (ε=0)" `Slow test_session_emulates_per_round;
          Alcotest.test_case "guess probability exactly 2^-r" `Slow test_session_guess_probability ] );
      ( "aggregation",
        [ Alcotest.test_case "validates for 1..3 parties" `Quick test_ag_validates;
          Alcotest.test_case "privacy exact (ε=0)" `Slow test_ag_privacy_exact;
          Alcotest.test_case "correctness (sum = ⊕xᵢ)" `Slow test_ag_correctness;
          Alcotest.test_case "unmasked variant fails" `Slow test_ag_unmasked_fails ] );
      ( "broadcast",
        [ Alcotest.test_case "validates for k=1..3" `Quick test_bc_validates;
          Alcotest.test_case "adversary valid for k=1..3" `Quick test_bc_adversary_valid;
          Alcotest.test_case "emulates per k (ε=0)" `Slow test_bc_emulates_per_k;
          Alcotest.test_case "family ≤ neg,pt (Def 4.12)" `Slow test_bc_family_neg_pt;
          Alcotest.test_case "poly-bounded family (Def 4.8)" `Slow test_bc_family_poly_bounded;
          Alcotest.test_case "agreement under reordering" `Slow test_bc_delivery_reordering ] ) ]
