(* Tests for the cdse_util substrate: bit strings, cost meter, polynomials,
   comparator combinators. *)

open Cdse_util

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ Bits *)

let bits_gen = QCheck.Gen.(map Bits.of_bool_list (small_list bool))
let bits_arb = QCheck.make ~print:Bits.to_string bits_gen

let test_bits_empty () =
  Alcotest.(check int) "length empty" 0 (Bits.length Bits.empty);
  Alcotest.(check string) "string empty" "" (Bits.to_string Bits.empty)

let test_bits_of_string () =
  let b = Bits.of_string "010110" in
  Alcotest.(check int) "length" 6 (Bits.length b);
  Alcotest.(check bool) "bit0" false (Bits.get b 0);
  Alcotest.(check bool) "bit1" true (Bits.get b 1);
  Alcotest.(check bool) "bit5" false (Bits.get b 5);
  Alcotest.(check string) "roundtrip" "010110" (Bits.to_string b)

let test_bits_of_string_bad () =
  Alcotest.check_raises "bad char" (Invalid_argument "Bits.of_string: bad char '2'") (fun () ->
      ignore (Bits.of_string "012"))

let test_bits_get_oob () =
  let b = Bits.of_string "01" in
  Alcotest.check_raises "oob" (Invalid_argument "Bits.get: index out of range") (fun () ->
      ignore (Bits.get b 2))

let test_bits_int_roundtrip () =
  List.iter
    (fun (w, n) ->
      Alcotest.(check int)
        (Printf.sprintf "width %d value %d" w n)
        n
        (Bits.to_int (Bits.of_int ~width:w n)))
    [ (0, 0); (1, 1); (8, 255); (8, 0); (16, 12345); (31, 1 lsl 30); (62, (1 lsl 61) + 17) ]

let test_bits_append () =
  let a = Bits.of_string "01" and b = Bits.of_string "110" in
  Alcotest.(check string) "append" "01110" (Bits.to_string (Bits.append a b));
  Alcotest.(check string) "append empty l" "01" (Bits.to_string (Bits.append Bits.empty a));
  Alcotest.(check string) "append empty r" "01" (Bits.to_string (Bits.append a Bits.empty))

let prop_bits_bool_roundtrip =
  QCheck.Test.make ~name:"bits: bool list roundtrip" QCheck.(small_list bool) (fun l ->
      Bits.to_bool_list (Bits.of_bool_list l) = l)

let prop_bits_append_length =
  QCheck.Test.make ~name:"bits: |a·b| = |a| + |b|" (QCheck.pair bits_arb bits_arb) (fun (a, b) ->
      Bits.length (Bits.append a b) = Bits.length a + Bits.length b)

let prop_bits_append_assoc =
  QCheck.Test.make ~name:"bits: append associative" (QCheck.triple bits_arb bits_arb bits_arb)
    (fun (a, b, c) ->
      Bits.equal (Bits.append a (Bits.append b c)) (Bits.append (Bits.append a b) c))

let prop_bits_compare_total =
  QCheck.Test.make ~name:"bits: compare antisymmetric" (QCheck.pair bits_arb bits_arb)
    (fun (a, b) -> Bits.compare a b = -Bits.compare b a)

let prop_encode_nat_roundtrip =
  QCheck.Test.make ~name:"bits: encode_nat/read_nat roundtrip" QCheck.(int_bound 100_000)
    (fun n ->
      let r = Bits.Reader.make (Bits.encode_nat n) in
      let v = Bits.Reader.read_nat r in
      v = n && Bits.Reader.at_end r)

let prop_encode_nat_self_delimiting =
  QCheck.Test.make ~name:"bits: encode_nat is a prefix code"
    QCheck.(pair (int_bound 5000) (int_bound 5000))
    (fun (n, m) ->
      let joined = Bits.append (Bits.encode_nat n) (Bits.encode_nat m) in
      let r = Bits.Reader.make joined in
      Bits.Reader.read_nat r = n && Bits.Reader.read_nat r = m && Bits.Reader.at_end r)

let test_reader_sequence () =
  let b = Bits.concat [ Bits.of_int ~width:4 0b1010; Bits.encode_nat 7; Bits.of_string "11" ] in
  let r = Bits.Reader.make b in
  Alcotest.(check int) "int" 0b1010 (Bits.Reader.read_int ~width:4 r);
  Alcotest.(check int) "nat" 7 (Bits.Reader.read_nat r);
  Alcotest.(check bool) "bit" true (Bits.Reader.read_bit r);
  Alcotest.(check bool) "bit2" true (Bits.Reader.read_bit r);
  Alcotest.(check bool) "end" true (Bits.Reader.at_end r)

(* ------------------------------------------------------------------ Cost *)

let test_cost_basic () =
  Cost.reset ();
  Cost.tick ();
  Cost.tick ~n:4 ();
  Alcotest.(check int) "meter" 5 (Cost.get ())

let test_cost_measure_nested () =
  Cost.reset ();
  Cost.tick ~n:3 ();
  let (), inner =
    Cost.measure (fun () ->
        Cost.tick ~n:10 ();
        let (), deeper = Cost.measure (fun () -> Cost.tick ~n:2 ()) in
        Alcotest.(check int) "deeper" 2 deeper)
  in
  Alcotest.(check int) "inner includes nested" 12 inner;
  Alcotest.(check int) "outer accumulates" 15 (Cost.get ())

let test_cost_measure_exn () =
  Cost.reset ();
  Cost.tick ~n:3 ();
  (try
     ignore
       (Cost.measure (fun () ->
            Cost.tick ~n:7 ();
            failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "meter restored + spent" 10 (Cost.get ())

(* ------------------------------------------------------------------ Poly *)

let test_poly_eval () =
  let p = Poly.of_coeffs [ 1; 2; 3 ] in
  Alcotest.(check int) "p(0)" 1 (Poly.eval p 0);
  Alcotest.(check int) "p(1)" 6 (Poly.eval p 1);
  Alcotest.(check int) "p(2)" 17 (Poly.eval p 2);
  Alcotest.(check int) "degree" 2 (Poly.degree p)

let test_poly_normalize () =
  Alcotest.(check (list int)) "trailing zeros dropped" [ 1 ] (Poly.coeffs (Poly.of_coeffs [ 1; 0; 0 ]));
  Alcotest.(check int) "zero degree" (-1) (Poly.degree (Poly.of_coeffs [ 0; 0 ]))

let test_poly_negative () =
  Alcotest.check_raises "negative coeff" (Invalid_argument "Poly.of_coeffs: negative coefficient")
    (fun () -> ignore (Poly.of_coeffs [ 1; -2 ]))

let small_poly_gen = QCheck.Gen.(map Poly.of_coeffs (list_size (int_bound 4) (int_bound 5)))
let poly_arb = QCheck.make ~print:(Format.asprintf "%a" Poly.pp) small_poly_gen

let prop_poly_add =
  QCheck.Test.make ~name:"poly: (p+q)(k) = p(k)+q(k)"
    QCheck.(triple poly_arb poly_arb (int_bound 10))
    (fun (p, q, k) -> Poly.eval (Poly.add p q) k = Poly.eval p k + Poly.eval q k)

let prop_poly_mul =
  QCheck.Test.make ~name:"poly: (p·q)(k) = p(k)·q(k)"
    QCheck.(triple poly_arb poly_arb (int_bound 10))
    (fun (p, q, k) -> Poly.eval (Poly.mul p q) k = Poly.eval p k * Poly.eval q k)

let prop_poly_compose =
  QCheck.Test.make ~name:"poly: (p∘q)(k) = p(q(k))"
    QCheck.(triple poly_arb poly_arb (int_bound 6))
    (fun (p, q, k) -> Poly.eval (Poly.compose p q) k = Poly.eval p (Poly.eval q k))

let test_poly_dominates () =
  let p = Poly.of_coeffs [ 0; 0; 1 ] in
  Alcotest.(check bool) "k² dominates 2k from 2" true (Poly.dominates p (fun k -> 2 * k) ~from:2 ~upto:50);
  Alcotest.(check bool) "k² fails vs 2k at 1" false (Poly.dominates p (fun k -> 2 * k) ~from:1 ~upto:50)

let test_pretty_table_renders () =
  let buf = Buffer.create 64 in
  let out = Format.formatter_of_buffer buf in
  Pretty.table ~out ~header:[ "col"; "value" ] [ [ "a"; "1" ]; [ "bbbb"; "22" ] ];
  Format.pp_print_flush out ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "header present" true (Astring.String.is_infix ~affix:"col" s);
  Alcotest.(check bool) "columns padded" true (Astring.String.is_infix ~affix:"bbbb  22" s)

(* ----------------------------------------------------------------- Order *)

let test_order_pair () =
  let cmp = Order.pair Int.compare String.compare in
  Alcotest.(check bool) "fst dominates" true (cmp (1, "z") (2, "a") < 0);
  Alcotest.(check bool) "snd breaks ties" true (cmp (1, "a") (1, "b") < 0);
  Alcotest.(check int) "equal" 0 (cmp (1, "a") (1, "a"))

let test_order_list () =
  let cmp = Order.list Int.compare in
  Alcotest.(check bool) "prefix smaller" true (cmp [ 1 ] [ 1; 2 ] < 0);
  Alcotest.(check bool) "lex" true (cmp [ 1; 3 ] [ 2 ] < 0);
  Alcotest.(check int) "equal" 0 (cmp [ 1; 2 ] [ 1; 2 ])

let test_order_lex_triple_by () =
  let lex = Order.lex [ Order.by fst Int.compare; Order.by snd String.compare ] in
  Alcotest.(check bool) "lex primary" true (lex (1, "z") (2, "a") < 0);
  Alcotest.(check bool) "lex secondary" true (lex (1, "a") (1, "b") < 0);
  let t = Order.triple Int.compare Int.compare Int.compare in
  Alcotest.(check bool) "triple third breaks" true (t (1, 2, 3) (1, 2, 4) < 0);
  Alcotest.(check int) "triple equal" 0 (t (1, 2, 3) (1, 2, 3))

let test_order_option () =
  let cmp = Order.option Int.compare in
  Alcotest.(check bool) "none smallest" true (cmp None (Some 0) < 0);
  Alcotest.(check int) "some eq" 0 (cmp (Some 3) (Some 3))

let () =
  Alcotest.run "cdse_util"
    [ ( "bits",
        [ Alcotest.test_case "empty" `Quick test_bits_empty;
          Alcotest.test_case "of_string" `Quick test_bits_of_string;
          Alcotest.test_case "of_string rejects" `Quick test_bits_of_string_bad;
          Alcotest.test_case "get out of bounds" `Quick test_bits_get_oob;
          Alcotest.test_case "int roundtrips" `Quick test_bits_int_roundtrip;
          Alcotest.test_case "append" `Quick test_bits_append;
          Alcotest.test_case "reader sequence" `Quick test_reader_sequence;
          qtest prop_bits_bool_roundtrip;
          qtest prop_bits_append_length;
          qtest prop_bits_append_assoc;
          qtest prop_bits_compare_total;
          qtest prop_encode_nat_roundtrip;
          qtest prop_encode_nat_self_delimiting ] );
      ( "cost",
        [ Alcotest.test_case "tick/get" `Quick test_cost_basic;
          Alcotest.test_case "nested measure" `Quick test_cost_measure_nested;
          Alcotest.test_case "measure under exception" `Quick test_cost_measure_exn ] );
      ( "poly",
        [ Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "normalize" `Quick test_poly_normalize;
          Alcotest.test_case "rejects negatives" `Quick test_poly_negative;
          Alcotest.test_case "dominates window" `Quick test_poly_dominates;
          qtest prop_poly_add;
          qtest prop_poly_mul;
          qtest prop_poly_compose ] );
      ( "order",
        [ Alcotest.test_case "pair" `Quick test_order_pair;
          Alcotest.test_case "list" `Quick test_order_list;
          Alcotest.test_case "option" `Quick test_order_option;
          Alcotest.test_case "lex/triple/by" `Quick test_order_lex_triple_by;
          Alcotest.test_case "pretty table" `Quick test_pretty_table_renders ] ) ]
