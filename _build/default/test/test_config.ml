(* Tests for the configuration layer: configurations (Defs 2.9-2.12),
   preserving/intrinsic transitions (Defs 2.13-2.14), PCA construction and
   constraints (Def 2.16), PCA hiding (Def 2.17) and composition (Def 2.19). *)

open Cdse_prob
open Cdse_psioa
open Cdse_config
open Cdse_testkit

let act = Fixtures.act
let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

(* Shared registry: a spawner, three child counters, a fragile automaton,
   a coin. *)
let child i = Printf.sprintf "child%d" i

let registry =
  Registry.of_list
    (Fixtures.spawner ~max_children:3 "mgr"
    :: Fixtures.fragile "frag"
    :: Fixtures.coin "coin"
    :: List.init 3 (fun i -> Fixtures.counter ~bound:2 (child i)))

(* ---------------------------------------------------------------- Config *)

let test_config_make_sorted () =
  let c = Config.make [ ("b", Value.int 1); ("a", Value.int 0) ] in
  Alcotest.(check (list string)) "sorted" [ "a"; "b" ] (Config.auts c)

let test_config_duplicate () =
  Alcotest.check_raises "duplicate" (Config.Duplicate_automaton "a") (fun () ->
      ignore (Config.make [ ("a", Value.int 1); ("a", Value.int 0) ]))

let test_config_signature_def211 () =
  (* sender out ch.send; channel in ch.send: composed input set must drop
     the matched action. *)
  let reg = Registry.of_list [ Fixtures.sender ~channel_name:"ch" ~script:[ 0 ] "s"; Fixtures.channel "ch" ] in
  let c = Config.start_of reg [ "s"; "ch" ] in
  let sg = Config.signature reg c in
  let send0 = act ~payload:(Value.int 0) "ch.send" in
  Alcotest.(check bool) "send is output" true (Sigs.classify send0 sg = `Output);
  Alcotest.(check bool) "send1 stays input" true
    (Sigs.classify (act ~payload:(Value.int 1) "ch.send") sg = `Input)

let test_config_reduce () =
  let dead = Value.tag "ctr" (Value.int 2) in
  let c = Config.make [ (child 0, dead); (child 1, Value.tag "ctr" (Value.int 0)) ] in
  let r = Config.reduce registry c in
  Alcotest.(check (list string)) "dead member dropped" [ child 1 ] (Config.auts r);
  Alcotest.(check bool) "idempotent" true (Config.equal r (Config.reduce registry r));
  Alcotest.(check bool) "was not reduced" false (Config.is_reduced registry c);
  Alcotest.(check bool) "now reduced" true (Config.is_reduced registry r)

let test_config_union_disjoint () =
  let a = Config.make [ ("x", Value.unit) ] and b = Config.make [ ("y", Value.unit) ] in
  Alcotest.(check (list string)) "union" [ "x"; "y" ] (Config.auts (Config.union a b));
  Alcotest.check_raises "clash" (Config.Duplicate_automaton "x") (fun () ->
      ignore (Config.union a a))

let test_config_value_roundtrip () =
  let c = Config.make [ ("a", Value.int 1); ("b", Value.pair Value.unit (Value.str "s")) ] in
  Alcotest.(check bool) "roundtrip" true (Config.equal c (Config.of_value (Config.to_value c)))

let test_config_compatible () =
  let reg = Registry.of_list [ Fixtures.sender ~channel_name:"ch" ~script:[ 0 ] "s1";
                               Fixtures.sender ~channel_name:"ch" ~script:[ 0 ] "s2" ] in
  let c = Config.start_of reg [ "s1"; "s2" ] in
  Alcotest.(check bool) "shared outputs incompatible" false (Config.compatible reg c)

(* ---------------------------------------------------------------- Ctrans *)

let test_preserving_keeps_auts () =
  let c = Config.start_of registry [ "mgr"; "coin" ] in
  match Ctrans.preserving registry c (act "coin.flip") with
  | None -> Alcotest.fail "flip should be enabled"
  | Some d ->
      Alcotest.(check int) "two outcomes" 2 (Dist.size d);
      List.iter
        (fun c' -> Alcotest.(check (list string)) "same automata" [ "coin"; "mgr" ] (Config.auts c'))
        (Dist.support d)

let test_preserving_disabled () =
  let c = Config.start_of registry [ "mgr" ] in
  Alcotest.(check bool) "absent action" true (Ctrans.preserving registry c (act "coin.flip") = None)

let test_intrinsic_creates () =
  let c = Config.start_of registry [ "mgr" ] in
  match Ctrans.intrinsic registry c (act "mgr.spawn") ~created:[ child 0 ] with
  | None -> Alcotest.fail "spawn enabled"
  | Some d ->
      let c' = List.hd (Dist.support d) in
      Alcotest.(check (list string)) "child created" [ child 0; "mgr" ] (Config.auts c');
      Alcotest.(check bool) "child at start state" true
        (Value.equal (Option.get (Config.state_of c' (child 0))) (Value.tag "ctr" (Value.int 0)))

let test_intrinsic_destroys_and_merges () =
  (* frag.go kills frag with prob 1/2: outcomes are {mgr} (reduced) and
     {frag, mgr}. With two fragiles f and frag... single frag: outcomes
     config-without-frag (1/2) and config-with-frag (1/2). *)
  let c = Config.start_of registry [ "mgr"; "frag" ] in
  match Ctrans.intrinsic registry c (act "frag.go") ~created:[] with
  | None -> Alcotest.fail "go enabled"
  | Some d ->
      Alcotest.(check int) "two reduced outcomes" 2 (Dist.size d);
      let without = Config.start_of registry [ "mgr" ] in
      Alcotest.check rat "death probability" Rat.half (Dist.prob d without)

let test_intrinsic_created_already_present () =
  (* φ ∩ A ≠ ∅ is ignored (no restart of existing members). *)
  let c = Config.start_of registry [ "mgr"; child 0 ] in
  match Ctrans.intrinsic registry c (act "mgr.spawn") ~created:[ child 0 ] with
  | None -> Alcotest.fail "spawn enabled"
  | Some d ->
      let c' = List.hd (Dist.support d) in
      Alcotest.(check int) "still two members" 2 (Config.cardinal c')

(* ------------------------------------------------------------------- PCA *)

(* Canonical dynamic PCA: mgr spawns child_k on its k-th spawn; children
   count to their bound and die. *)
let dyn_pca =
  let created c a =
    if String.equal (Action.name a) "mgr.spawn" then
      match Config.state_of c "mgr" with
      | Some (Value.Tag ("spawned", Value.Int k)) -> [ child k ]
      | _ -> []
    else []
  in
  Pca.make ~name:"dyn" ~registry ~init:(Config.start_of registry [ "mgr" ]) ~created ()

let run_actions pca acts =
  List.fold_left
    (fun q a -> List.hd (Dist.support (Psioa.step (Pca.psioa pca) q a)))
    (Psioa.start (Pca.psioa pca))
    acts

let test_pca_create_lifecycle () =
  let q = run_actions dyn_pca [ act "mgr.spawn" ] in
  Alcotest.(check (list string)) "child0 alive" [ child 0; "mgr" ] (Pca.alive dyn_pca q);
  let q = run_actions dyn_pca [ act "mgr.spawn"; act "child0.inc"; act "child0.inc" ] in
  Alcotest.(check (list string)) "child0 destroyed after bound" [ "mgr" ] (Pca.alive dyn_pca q);
  let q = run_actions dyn_pca [ act "mgr.spawn"; act "mgr.spawn" ] in
  Alcotest.(check (list string)) "two children" [ child 0; child 1; "mgr" ] (Pca.alive dyn_pca q)

let test_pca_signature_tracks_config () =
  let q0 = Psioa.start (Pca.psioa dyn_pca) in
  Alcotest.(check bool) "child action absent initially" false
    (Psioa.is_enabled (Pca.psioa dyn_pca) q0 (act "child0.inc"));
  let q1 = run_actions dyn_pca [ act "mgr.spawn" ] in
  Alcotest.(check bool) "child action appears" true
    (Psioa.is_enabled (Pca.psioa dyn_pca) q1 (act "child0.inc"))

let test_pca_constraints () =
  match Pca.check_constraints ~max_states:500 dyn_pca with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_pca_psioa_validates () =
  match Psioa.validate ~max_states:500 (Pca.psioa dyn_pca) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_pca_rejects_unreduced_init () =
  let dead = Value.tag "ctr" (Value.int 2) in
  let bad = Config.make [ (child 0, dead) ] in
  (try
     ignore (Pca.make ~name:"bad" ~registry ~init:bad ());
     Alcotest.fail "unreduced init accepted"
   with Invalid_argument _ -> ())

let test_pca_probabilistic_destruction () =
  let pca = Pca.make ~name:"fr" ~registry ~init:(Config.start_of registry [ "mgr"; "frag" ]) () in
  let d = Psioa.step (Pca.psioa pca) (Psioa.start (Pca.psioa pca)) (act "frag.go") in
  Alcotest.(check int) "two outcomes" 2 (Dist.size d);
  let q_dead = Config.to_value (Config.start_of registry [ "mgr" ]) in
  Alcotest.check rat "1/2 death" Rat.half (Dist.prob d q_dead)

let test_pca_hide () =
  let hidden_pca = Pca.hide dyn_pca (fun _ -> Action_set.of_list [ act "mgr.spawn" ]) in
  let q0 = Psioa.start (Pca.psioa hidden_pca) in
  Alcotest.(check bool) "spawn now internal" true
    (Sigs.classify (act "mgr.spawn") (Psioa.signature (Pca.psioa hidden_pca) q0) = `Internal);
  match Pca.check_constraints ~max_states:500 hidden_pca with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_pca_compose () =
  (* Two independent dynamic PCAs composed; constraint check (closure of PCA
     under composition) and disjoint-union configs. *)
  let reg2 =
    Registry.of_list
      (Fixtures.spawner ~max_children:2 "mgr2"
      :: List.init 2 (fun i -> Fixtures.counter ~bound:2 (Printf.sprintf "kid%d" i)))
  in
  let created2 c a =
    if String.equal (Action.name a) "mgr2.spawn" then
      match Config.state_of c "mgr2" with
      | Some (Value.Tag ("spawned", Value.Int k)) -> [ Printf.sprintf "kid%d" k ]
      | _ -> []
    else []
  in
  let pca2 = Pca.make ~name:"dyn2" ~registry:reg2 ~init:(Config.start_of reg2 [ "mgr2" ]) ~created:created2 () in
  let comp = Pca.compose_pair dyn_pca pca2 in
  (match Pca.check_constraints ~max_states:300 ~max_depth:4 comp with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let q = Psioa.start (Pca.psioa comp) in
  Alcotest.(check (list string)) "union config" [ "mgr"; "mgr2" ] (Pca.alive comp q);
  (* Spawn on each side; both configs grow independently. *)
  let q = List.hd (Dist.support (Psioa.step (Pca.psioa comp) q (act "mgr.spawn"))) in
  let q = List.hd (Dist.support (Psioa.step (Pca.psioa comp) q (act "mgr2.spawn"))) in
  Alcotest.(check (list string)) "both children alive" [ child 0; "kid0"; "mgr"; "mgr2" ]
    (Pca.alive comp q)

let test_pca_compose_preserves_measures () =
  (* Probabilities multiply across composed PCAs: frag.go in the left PCA is
     independent of the right. *)
  let left = Pca.make ~name:"l" ~registry ~init:(Config.start_of registry [ "frag" ]) () in
  let reg_r = Registry.of_list [ Fixtures.coin "coin" ] in
  let right = Pca.make ~name:"r" ~registry:reg_r ~init:(Config.start_of reg_r [ "coin" ]) () in
  let comp = Pca.compose_pair left right in
  let d = Psioa.step (Pca.psioa comp) (Psioa.start (Pca.psioa comp)) (act "frag.go") in
  Alcotest.(check int) "2 outcomes (right side unmoved)" 2 (Dist.size d);
  List.iter (fun (_, p) -> Alcotest.check rat "1/2 each" Rat.half p) (Dist.items d)

(* PCA scheduled end-to-end: exact measure over a dynamic system. *)
let test_pca_scheduled_measure () =
  let pca = Pca.make ~name:"fr2" ~registry ~init:(Config.start_of registry [ "frag" ]) () in
  let auto = Pca.psioa pca in
  let sched = Cdse_sched.Scheduler.bounded 3 (Cdse_sched.Scheduler.first_enabled auto) in
  let d = Cdse_sched.Measure.exec_dist auto sched ~depth:5 in
  Alcotest.(check bool) "proper" true (Dist.is_proper d);
  (* Surviving all 3 scheduled steps has probability (1/2)^3; death is
     absorbing (empty config ⇒ no enabled actions). *)
  let alive_cfg = Config.to_value (Config.start_of registry [ "frag" ]) in
  let survive_3 =
    List.filter (fun (e, _) -> Exec.length e = 3 && Value.equal (Exec.lstate e) alive_cfg)
      (Dist.items d)
    |> List.map snd |> Rat.sum
  in
  Alcotest.check rat "(1/2)^3" (Rat.of_ints 1 8) survive_3;
  (* Death probability within the 3-step window: 1 - 1/8. *)
  let died =
    List.filter (fun (e, _) -> not (Value.equal (Exec.lstate e) alive_cfg)) (Dist.items d)
    |> List.map snd |> Rat.sum
  in
  Alcotest.check rat "7/8 died" (Rat.of_ints 7 8) died

let test_pca_parallel_three () =
  (* n-ary PCA composition: three disjoint single-member PCAs; constraints
     hold and the configuration is the three-way union. *)
  let mk prefix =
    let reg = Registry.of_list [ Fixtures.counter ~bound:1 (prefix ^ "k") ] in
    Pca.make ~name:prefix ~registry:reg ~init:(Config.start_of reg [ prefix ^ "k" ]) ()
  in
  let comp = Pca.parallel ~name:"trio" [ mk "a"; mk "b"; mk "c" ] in
  (match Pca.check_constraints ~max_states:100 comp with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "three members" [ "ak"; "bk"; "ck" ]
    (Pca.alive comp (Psioa.start (Pca.psioa comp)))

let test_pca_compose_shared_member_rejected () =
  (* Two PCAs owning the same automaton identifier cannot compose: their
     configurations would not be a disjoint union (Definition 2.19). *)
  let reg = Registry.of_list [ Fixtures.fragile "shared" ] in
  let mk name = Pca.make ~name ~registry:reg ~init:(Config.start_of reg [ "shared" ]) () in
  let comp = Pca.compose_pair (mk "p1") (mk "p2") in
  Alcotest.check_raises "duplicate member" (Config.Duplicate_automaton "shared") (fun () ->
      ignore (Pca.config_of comp (Psioa.start (Pca.psioa comp))))

let () =
  Alcotest.run "cdse_config"
    [ ( "config",
        [ Alcotest.test_case "make sorts" `Quick test_config_make_sorted;
          Alcotest.test_case "duplicates rejected" `Quick test_config_duplicate;
          Alcotest.test_case "intrinsic signature (Def 2.11)" `Quick test_config_signature_def211;
          Alcotest.test_case "reduce (Def 2.12)" `Quick test_config_reduce;
          Alcotest.test_case "union" `Quick test_config_union_disjoint;
          Alcotest.test_case "value roundtrip" `Quick test_config_value_roundtrip;
          Alcotest.test_case "compatibility (Def 2.10)" `Quick test_config_compatible ] );
      ( "ctrans",
        [ Alcotest.test_case "preserving (Def 2.13)" `Quick test_preserving_keeps_auts;
          Alcotest.test_case "preserving: absent action" `Quick test_preserving_disabled;
          Alcotest.test_case "intrinsic creates (Def 2.14)" `Quick test_intrinsic_creates;
          Alcotest.test_case "intrinsic destroys + merges" `Quick test_intrinsic_destroys_and_merges;
          Alcotest.test_case "created ∩ A ignored" `Quick test_intrinsic_created_already_present ] );
      ( "pca",
        [ Alcotest.test_case "create/destroy lifecycle" `Quick test_pca_create_lifecycle;
          Alcotest.test_case "signature tracks config" `Quick test_pca_signature_tracks_config;
          Alcotest.test_case "constraints (Def 2.16)" `Quick test_pca_constraints;
          Alcotest.test_case "underlying PSIOA validates" `Quick test_pca_psioa_validates;
          Alcotest.test_case "unreduced init rejected" `Quick test_pca_rejects_unreduced_init;
          Alcotest.test_case "probabilistic destruction" `Quick test_pca_probabilistic_destruction;
          Alcotest.test_case "hiding (Def 2.17)" `Quick test_pca_hide;
          Alcotest.test_case "composition (Def 2.19)" `Quick test_pca_compose;
          Alcotest.test_case "composition: product measure" `Quick test_pca_compose_preserves_measures;
          Alcotest.test_case "scheduled measure over dynamics" `Quick test_pca_scheduled_measure;
          Alcotest.test_case "shared member rejected (Def 2.19)" `Quick
            test_pca_compose_shared_member_rejected;
          Alcotest.test_case "n-ary composition" `Quick test_pca_parallel_three ] ) ]
