(* Randomized cross-layer property suite: seeded random automata
   (Cdse_gen.Random_auto) driven through validation, composition, hiding,
   renaming, scheduling, measures, boundedness and the dummy-adversary
   forwarding — the properties the paper's lemmas promise, on arbitrary
   instances rather than hand-built fixtures. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_testkit

let qtest = QCheck_alcotest.to_alcotest

let auto_arb =
  (* An arbitrary over generated automata, shrunk only by seed. *)
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 100_000 in
      let* n_states = int_range 2 8 in
      let* n_actions = int_range 1 4 in
      return
        ( seed,
          Cdse_gen.Random_auto.make ~rng:(Rng.make seed) ~name:"ra" ~n_states ~n_actions () ))
  in
  QCheck.make ~print:(fun (seed, _) -> Printf.sprintf "seed %d" seed) gen

let auto_pair_arb =
  (* Two independently generated automata with disjoint alphabets. *)
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 100_000 in
      let rng = Rng.make seed in
      let a = Cdse_gen.Random_auto.make ~rng ~name:"pa" ~n_states:5 ~n_actions:3 () in
      let b = Cdse_gen.Random_auto.make ~rng ~name:"pb" ~n_states:5 ~n_actions:3 () in
      return (seed, a, b))
  in
  QCheck.make ~print:(fun (seed, _, _) -> Printf.sprintf "seed %d" seed) gen

(* --------------------------------------------------------- PSIOA layer *)

let prop_random_valid =
  QCheck.Test.make ~count:50 ~name:"random automata satisfy Definition 2.1" auto_arb
    (fun (_, a) -> Psioa.validate ~max_states:200 a = Ok ())

let prop_random_compose_valid =
  QCheck.Test.make ~count:30 ~name:"composition of random automata is a PSIOA (closure)"
    auto_pair_arb (fun (_, a, b) ->
      Psioa.validate ~max_states:300 (Compose.pair a b) = Ok ())

let prop_compose_signature_is_union =
  (* Disjoint alphabets: composed sig-hat = union of component sig-hats. *)
  QCheck.Test.make ~count:30 ~name:"disjoint composition: sig-hat is the union" auto_pair_arb
    (fun (_, a, b) ->
      let c = Compose.pair a b in
      List.for_all
        (fun q ->
          let qa, qb = Compose.proj_pair q in
          Action_set.equal
            (Sigs.all (Psioa.signature c q))
            (Action_set.union (Sigs.all (Psioa.signature a qa)) (Sigs.all (Psioa.signature b qb))))
        (Psioa.reachable ~max_states:100 c))

let prop_hide_preserves_measures =
  QCheck.Test.make ~count:30 ~name:"hiding changes no transition measure (Def 2.7)" auto_arb
    (fun (_, a) ->
      let hidden = Hide.psioa_const a (Psioa.universal_actions a) in
      List.for_all
        (fun q ->
          Action_set.for_all
            (fun act -> Dist.equal (Psioa.step a q act) (Psioa.step hidden q act))
            (Psioa.enabled a q))
        (Psioa.reachable ~max_states:100 a))

let prop_rename_roundtrip =
  QCheck.Test.make ~count:30 ~name:"renaming then inverse renaming is the identity" auto_arb
    (fun (_, a) ->
      let r = Rename.prefix "X." in
      let strip _q act =
        Action.with_name (fun n -> String.sub n 2 (String.length n - 2)) act
      in
      let back = Rename.psioa (Rename.psioa a r) strip in
      List.for_all
        (fun q ->
          Sigs.equal (Psioa.signature a q) (Psioa.signature back q)
          && Action_set.for_all
               (fun act -> Dist.equal (Psioa.step a q act) (Psioa.step back q act))
               (Psioa.enabled a q))
        (Psioa.reachable ~max_states:100 a))

let prop_rename_preserves_validity =
  QCheck.Test.make ~count:30 ~name:"Lemma A.1 on random automata" auto_arb (fun (_, a) ->
      Psioa.validate ~max_states:200 (Rename.psioa a (Rename.prefix "Y.")) = Ok ())

(* ------------------------------------------------------ scheduler layer *)

let scheds auto = [ Scheduler.first_enabled auto; Scheduler.round_robin auto; Scheduler.uniform auto ]

let prop_exec_dist_proper =
  QCheck.Test.make ~count:30 ~name:"ε_σ is a probability measure (mass 1)" auto_arb
    (fun (_, a) ->
      List.for_all
        (fun s -> Dist.is_proper (Measure.exec_dist a (Scheduler.bounded 4 s) ~depth:6))
        (scheds a))

let prop_exec_dist_depth_bound =
  QCheck.Test.make ~count:30 ~name:"bounded scheduler never exceeds its bound (Def 4.6)"
    auto_arb (fun (_, a) ->
      List.for_all
        (fun s ->
          List.for_all
            (fun e -> Exec.length e <= 4)
            (Dist.support (Measure.exec_dist a (Scheduler.bounded 4 s) ~depth:10)))
        (scheds a))

let prop_cone_matches_exec_dist =
  (* The measure of C_α computed incrementally agrees with the mass of
     extensions of α in the full measure. *)
  QCheck.Test.make ~count:20 ~name:"cone probability consistent with ε_σ" auto_arb
    (fun (_, a) ->
      let sched = Scheduler.bounded 3 (Scheduler.uniform a) in
      let d = Measure.exec_dist a sched ~depth:5 in
      List.for_all
        (fun (e, _) ->
          let cone = Measure.cone_prob a sched e in
          let mass_ext =
            Rat.sum
              (List.filter_map
                 (fun (e', p) -> if Exec.is_prefix e ~of_:e' then Some p else None)
                 (Dist.items d))
          in
          Rat.equal cone mass_ext)
        (Dist.items d))

let prop_trace_dist_mass =
  QCheck.Test.make ~count:30 ~name:"trace pushforward preserves mass" auto_arb (fun (_, a) ->
      let sched = Scheduler.bounded 4 (Scheduler.uniform a) in
      Dist.is_proper (Measure.trace_dist a sched ~depth:6))

let prop_memoize_same_measure =
  QCheck.Test.make ~count:20 ~name:"ablation A2: memoization preserves ε_σ exactly" auto_arb
    (fun (_, a) ->
      let m = Psioa.memoize a in
      let run x = Measure.exec_dist x (Scheduler.bounded 4 (Scheduler.first_enabled x)) ~depth:6 in
      Dist.equal (run a) (run m))

(* -------------------------------------------------------- bounded layer *)

let prop_lemma_43_random =
  QCheck.Test.make ~count:15 ~name:"Lemma 4.3 shape on random pairs" auto_pair_arb
    (fun (_, a, b) ->
      let r1 = Cdse_bounded.Bounded.measure_psioa ~max_states:60 a in
      let r2 = Cdse_bounded.Bounded.measure_psioa ~max_states:60 b in
      let r12 = Cdse_bounded.Bounded.measure_psioa ~max_states:120 (Compose.pair a b) in
      Cdse_bounded.Bounded.comp_ratio r1 r2 r12 <= 4.0)

let prop_bound_monotone_in_b =
  QCheck.Test.make ~count:20 ~name:"is_time_bounded monotone in b" auto_arb (fun (_, a) ->
      let r = Cdse_bounded.Bounded.measure_psioa ~max_states:60 a in
      Cdse_bounded.Bounded.is_time_bounded ~max_states:60 a ~b:(r.Cdse_bounded.Bounded.bound + 100))

(* ------------------------------------------------------------- exec laws *)

let execs_of seed =
  let auto = Cdse_gen.Random_auto.make ~rng:(Rng.make seed) ~name:"ex" ~n_states:5 ~n_actions:3 () in
  let sched = Scheduler.bounded 4 (Scheduler.uniform auto) in
  (auto, Dist.support (Measure.exec_dist auto sched ~depth:4))

let prop_exec_concat_prefix_laws =
  QCheck.Test.make ~count:20 ~name:"exec: splitting at any point and concatenating is identity"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, execs = execs_of seed in
      List.for_all
        (fun e ->
          let steps = Exec.steps e in
          List.for_all
            (fun cut ->
              let pre = Exec.of_steps (Exec.fstate e) (List.filteri (fun i _ -> i < cut) steps) in
              let post = Exec.of_steps (Exec.lstate pre) (List.filteri (fun i _ -> i >= cut) steps) in
              Exec.equal e (Exec.concat pre post) && Exec.is_prefix pre ~of_:e)
            (List.init (Exec.length e + 1) Fun.id))
        execs)

let prop_exec_trace_subsequence =
  QCheck.Test.make ~count:20 ~name:"exec: trace is a subsequence of the actions"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let auto, execs = execs_of seed in
      let rec subseq xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xr, y :: yr -> if Action.equal x y then subseq xr yr else subseq xs yr
      in
      List.for_all
        (fun e -> subseq (Exec.trace ~sig_of:(Psioa.signature auto) e) (Exec.actions e))
        execs)

(* --------------------------------------------------------- config layer *)

let pca_arb =
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 100_000 in
      let* n = int_range 2 5 in
      return (seed, Cdse_gen.Random_pca.make ~rng:(Rng.make seed) ~n_members:n ()))
  in
  QCheck.make ~print:(fun (seed, _) -> Printf.sprintf "seed %d" seed) gen

let prop_random_pca_constraints =
  QCheck.Test.make ~count:25 ~name:"random PCA satisfies Definition 2.16" pca_arb
    (fun (_, pca) ->
      Cdse_config.Pca.check_constraints ~max_states:120 ~max_depth:4 pca = Ok ())

let prop_random_pca_psioa_valid =
  QCheck.Test.make ~count:25 ~name:"random PCA's PSIOA satisfies Definition 2.1" pca_arb
    (fun (_, pca) ->
      Psioa.validate ~max_states:120 ~max_depth:4 (Cdse_config.Pca.psioa pca) = Ok ())

let prop_random_pca_configs_reduced =
  QCheck.Test.make ~count:25 ~name:"every reachable configuration is reduced (Def 2.12)" pca_arb
    (fun (_, pca) ->
      let reg = Cdse_config.Pca.registry pca in
      List.for_all
        (fun q -> Cdse_config.Config.is_reduced reg (Cdse_config.Pca.config_of pca q))
        (Psioa.reachable ~max_states:120 ~max_depth:4 (Cdse_config.Pca.psioa pca)))

let prop_random_pca_compose_closure =
  (* Definition 2.19 closure on random instances: the composite of two
     random PCAs (disjoint alphabets) still satisfies Definition 2.16. *)
  QCheck.Test.make ~count:12 ~name:"PCA composition closure (Def 2.19) on random pairs"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.make seed in
      let p1 = Cdse_gen.Random_pca.make ~rng ~n_members:3 ~prefix:"x" () in
      let p2 = Cdse_gen.Random_pca.make ~rng ~n_members:3 ~prefix:"y" () in
      let comp = Cdse_config.Pca.compose_pair p1 p2 in
      Cdse_config.Pca.check_constraints ~max_states:100 ~max_depth:3 comp = Ok ())

let prop_random_pca_hide_closure =
  QCheck.Test.make ~count:20 ~name:"PCA hiding closure (Def 2.17) on random instances" pca_arb
    (fun (_, pca) ->
      let auto = Cdse_config.Pca.psioa pca in
      let outs =
        Action_set.filter
          (fun a -> Action.hash a mod 2 = 0)
          (Psioa.universal_actions ~max_states:100 ~max_depth:4 auto)
      in
      let hidden = Cdse_config.Pca.hide pca (fun _ -> outs) in
      Cdse_config.Pca.check_constraints ~max_states:100 ~max_depth:4 hidden = Ok ())

let prop_random_pca_measure_proper =
  QCheck.Test.make ~count:20 ~name:"ε_σ proper on random dynamic systems" pca_arb
    (fun (_, pca) ->
      let auto = Cdse_config.Pca.psioa pca in
      List.for_all
        (fun s -> Dist.is_proper (Measure.exec_dist auto (Scheduler.bounded 3 s) ~depth:5))
        [ Scheduler.first_enabled auto; Scheduler.uniform auto ])

let prop_random_config_reduce_idempotent =
  QCheck.Test.make ~count:25 ~name:"reduce idempotent on random configurations" pca_arb
    (fun (_, pca) ->
      let reg = Cdse_config.Pca.registry pca in
      List.for_all
        (fun q ->
          let c = Cdse_config.Pca.config_of pca q in
          Cdse_config.Config.equal (Cdse_config.Config.reduce reg c)
            (Cdse_config.Config.reduce reg (Cdse_config.Config.reduce reg c)))
        (Psioa.reachable ~max_states:80 ~max_depth:4 (Cdse_config.Pca.psioa pca)))

(* --------------------------------------------------------- secure layer *)

let relay_of_seed seed =
  let n = 1 + (seed mod 3) in
  let alphabet = List.init n Fun.id in
  let relay = Sfixtures.relay ~alphabet "proto" in
  let adv =
    Sfixtures.relay_adversary ~alphabet ~proto_name:"proto" ~rename:(fun s -> "g." ^ s) "adv"
  in
  let env = Sfixtures.relay_env ~alphabet ~m0:(seed mod n) ~proto_name:"proto" "env" in
  (relay, adv, env)

let prop_d1_random_relays =
  QCheck.Test.make ~count:15 ~name:"Lemma D.1 exact on random relay instances"
    QCheck.(int_bound 1000)
    (fun seed ->
      let relay, adv, env = relay_of_seed seed in
      let setup =
        Cdse_secure.Forwarding.make_setup ~structured:relay
          ~g:(Cdse_secure.Dummy.prefix_renaming "g.") ~env ~adv ()
      in
      let lhs = Cdse_secure.Forwarding.lhs setup in
      let scheds = [ Scheduler.first_enabled lhs; Scheduler.uniform lhs; Scheduler.round_robin lhs ] in
      List.for_all
        (fun sched ->
          (Cdse_secure.Forwarding.check_lemma_d1 setup ~insight_of:Insight.accept ~sched ~q1:6
             ~depth:6)
            .Cdse_secure.Forwarding.exact)
        scheds)

let prop_forward_exec_cone_preserved =
  (* ε_σ(C_α) = ε_{σ'}(C_{Forward^e α}): the construction preserves cone
     probabilities, not just final observations. *)
  QCheck.Test.make ~count:10 ~name:"Forward^e preserves cone probabilities"
    QCheck.(int_bound 1000)
    (fun seed ->
      let relay, adv, env = relay_of_seed seed in
      let setup =
        Cdse_secure.Forwarding.make_setup ~structured:relay
          ~g:(Cdse_secure.Dummy.prefix_renaming "g.") ~env ~adv ()
      in
      let lhs = Cdse_secure.Forwarding.lhs setup in
      let rhs = Cdse_secure.Forwarding.rhs setup in
      let sigma = Scheduler.bounded 6 (Scheduler.uniform lhs) in
      let sigma' = Scheduler.bounded 12 (Cdse_secure.Forwarding.forward_sched setup sigma) in
      let d = Measure.exec_dist lhs sigma ~depth:6 in
      List.for_all
        (fun alpha ->
          let alpha' = Cdse_secure.Forwarding.forward_exec setup alpha in
          Rat.equal (Measure.cone_prob lhs sigma alpha) (Measure.cone_prob rhs sigma' alpha'))
        (Dist.support d))

let prop_emulation_reflexive_random =
  (* A ≤_SE A with the identity simulator, for random relay instances and
     message choices: the reflexivity every instantiation must satisfy. *)
  QCheck.Test.make ~count:10 ~name:"emulation reflexive on random relays"
    QCheck.(int_bound 1000)
    (fun seed ->
      let relay, _, env = relay_of_seed seed in
      let adv =
        Sfixtures.relay_adversary
          ~alphabet:(List.init (1 + (seed mod 3)) Fun.id)
          ~proto_name:"proto" ~rename:Fun.id "adv"
      in
      let v =
        Cdse_secure.Emulation.check
          ~schema:(Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]))
          ~insight_of:Insight.accept ~envs:[ env ] ~eps:Rat.zero ~q1:8 ~q2:8 ~depth:10
          ~adversaries:[ adv ] ~sim_for:Fun.id ~real:relay ~ideal:relay
      in
      v.Cdse_secure.Impl.holds)

let () =
  Alcotest.run "cdse_random"
    [ ( "psioa",
        [ qtest prop_random_valid;
          qtest prop_random_compose_valid;
          qtest prop_compose_signature_is_union;
          qtest prop_hide_preserves_measures;
          qtest prop_rename_roundtrip;
          qtest prop_rename_preserves_validity ] );
      ( "sched",
        [ qtest prop_exec_dist_proper;
          qtest prop_exec_dist_depth_bound;
          qtest prop_cone_matches_exec_dist;
          qtest prop_trace_dist_mass;
          qtest prop_memoize_same_measure ] );
      ("bounded", [ qtest prop_lemma_43_random; qtest prop_bound_monotone_in_b ]);
      ( "exec",
        [ qtest prop_exec_concat_prefix_laws; qtest prop_exec_trace_subsequence ] );
      ( "config",
        [ qtest prop_random_pca_constraints;
          qtest prop_random_pca_psioa_valid;
          qtest prop_random_pca_configs_reduced;
          qtest prop_random_pca_compose_closure;
          qtest prop_random_pca_hide_closure;
          qtest prop_random_pca_measure_proper;
          qtest prop_random_config_reduce_idempotent ] );
      ( "secure",
        [ qtest prop_d1_random_relays;
          qtest prop_forward_exec_cone_preserved;
          qtest prop_emulation_reflexive_random ] ) ]
