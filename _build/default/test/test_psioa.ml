(* Tests for the PSIOA core: values, actions, signatures, automata,
   executions, composition, hiding, renaming (paper Sections 2.2-2.4, 2.6,
   Definition 2.8 / Lemma A.1). *)

open Cdse_prob
open Cdse_psioa
open Cdse_testkit

let qtest = QCheck_alcotest.to_alcotest
let act = Fixtures.act
let sig_io = Fixtures.sig_io

(* ----------------------------------------------------------------- Value *)

let value_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           let base =
             oneof
               [ return Value.Unit;
                 map Value.bool bool;
                 map Value.int (int_range (-1000) 1000);
                 map Value.str (string_size ~gen:(char_range 'a' 'z') (int_bound 6)) ]
           in
           if n = 0 then base
           else
             frequency
               [ (3, base);
                 (1, map2 Value.pair (self (n / 2)) (self (n / 2)));
                 (1, map Value.list (list_size (int_bound 3) (self (n / 2))));
                 (1, map2 Value.tag (string_size ~gen:(char_range 'a' 'z') (int_range 1 5)) (self (n / 2))) ]))

let value_arb = QCheck.make ~print:Value.to_string value_gen

let prop_value_bits_roundtrip =
  QCheck.Test.make ~name:"value: bits roundtrip" value_arb (fun v ->
      Value.equal v (Value.of_bits (Value.to_bits v)))

let prop_value_compare_refl =
  QCheck.Test.make ~name:"value: compare reflexive" value_arb (fun v -> Value.compare v v = 0)

let prop_value_compare_antisym =
  QCheck.Test.make ~name:"value: compare antisymmetric" (QCheck.pair value_arb value_arb)
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let prop_value_encoding_injective =
  QCheck.Test.make ~name:"value: distinct values, distinct encodings"
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      QCheck.assume (not (Value.equal a b));
      not (Cdse_util.Bits.equal (Value.to_bits a) (Value.to_bits b)))

let test_value_trailing_bits () =
  let bits = Cdse_util.Bits.append (Value.to_bits Value.unit) (Cdse_util.Bits.of_string "1") in
  Alcotest.check_raises "trailing" (Invalid_argument "Value.of_bits: trailing bits") (fun () ->
      ignore (Value.of_bits bits))

let prop_decoder_total_on_garbage =
  (* Robustness: the self-delimiting decoder either parses or raises
     Invalid_argument — never crashes, loops, or returns on trailing
     garbage it silently ignored (roundtrip re-encoding must agree). *)
  QCheck.Test.make ~name:"value: decoder total on random bits"
    QCheck.(small_list bool)
    (fun bits ->
      let b = Cdse_util.Bits.of_bool_list bits in
      match Value.of_bits b with
      | v -> Cdse_util.Bits.equal (Value.to_bits v) b
      | exception Invalid_argument _ -> true)

(* ---------------------------------------------------------------- Action *)

let prop_action_bits_roundtrip =
  QCheck.Test.make ~name:"action: bits roundtrip"
    (QCheck.pair (QCheck.string_gen_of_size (QCheck.Gen.int_range 1 8) (QCheck.Gen.char_range 'a' 'z')) value_arb)
    (fun (n, p) ->
      let a = Action.make ~payload:p n in
      Action.equal a (Action.of_bits (Action.to_bits a)))

let test_action_pp () =
  Alcotest.(check string) "no payload" "go" (Action.to_string (act "go"));
  Alcotest.(check string) "payload" "send(7)" (Action.to_string (act ~payload:(Value.int 7) "send"))

(* ------------------------------------------------------------------ Sigs *)

let a1 = act "a1"
let a2 = act "a2"
let a3 = act "a3"
let a4 = act "a4"

let test_sigs_disjoint () =
  Alcotest.check_raises "overlap rejected"
    (Sigs.Not_disjoint "Sigs.make: overlapping components in={a1} out={a1} int={}") (fun () ->
      ignore (sig_io ~i:[ a1 ] ~o:[ a1 ] ()))

let test_sigs_compose_def24 () =
  (* Def 2.4: in ∪ in' − (out ∪ out'), out ∪ out', int ∪ int'. *)
  let s1 = sig_io ~i:[ a1; a2 ] ~o:[ a3 ] () in
  let s2 = sig_io ~i:[ a3 ] ~o:[ a2 ] ~h:[ a4 ] () in
  let c = Sigs.compose s1 s2 in
  Alcotest.(check bool) "in = {a1}" true (Action_set.equal (Sigs.input c) (Action_set.of_list [ a1 ]));
  Alcotest.(check bool) "out = {a2,a3}" true
    (Action_set.equal (Sigs.output c) (Action_set.of_list [ a2; a3 ]));
  Alcotest.(check bool) "int = {a4}" true
    (Action_set.equal (Sigs.internal c) (Action_set.of_list [ a4 ]))

let test_sigs_incompatible () =
  (* Shared output violates Def 2.3 clause 2. *)
  let s1 = sig_io ~o:[ a1 ] () and s2 = sig_io ~o:[ a1 ] () in
  Alcotest.(check bool) "shared output" false (Sigs.compatible s1 s2);
  (* Internal action visible to the other violates clause 1. *)
  let s3 = sig_io ~h:[ a2 ] () and s4 = sig_io ~i:[ a2 ] () in
  Alcotest.(check bool) "internal clash" false (Sigs.compatible s3 s4);
  Alcotest.check_raises "compose rejects" (Sigs.Not_disjoint "Sigs.compose: incompatible signatures")
    (fun () -> ignore (Sigs.compose s1 s2))

let test_sigs_hide () =
  let s = sig_io ~i:[ a1 ] ~o:[ a2; a3 ] () in
  let h = Sigs.hide s (Action_set.of_list [ a2; a4 ]) in
  Alcotest.(check bool) "a2 now internal" true (Sigs.classify a2 h = `Internal);
  Alcotest.(check bool) "a3 still output" true (Sigs.classify a3 h = `Output);
  Alcotest.(check bool) "a4 ignored" true (Sigs.classify a4 h = `Absent);
  Alcotest.(check bool) "input untouched" true (Sigs.classify a1 h = `Input)

let gen_sig rng_names =
  (* Build a signature from a pool of distinct names split three ways. *)
  QCheck.Gen.(
    let* names = return rng_names in
    let* cut1 = int_bound (List.length names) in
    let* cut2 = int_bound (List.length names) in
    let lo = min cut1 cut2 and hi = max cut1 cut2 in
    let idx = List.mapi (fun i n -> (i, n)) names in
    let part f = List.filter_map (fun (i, n) -> if f i then Some (act n) else None) idx in
    return
      (sig_io ~i:(part (fun i -> i < lo)) ~o:(part (fun i -> i >= lo && i < hi))
         ~h:(part (fun i -> i >= hi)) ()))

let compatible_sig_triple =
  (* Three signatures over disjoint name pools are always compatible. *)
  let gen =
    QCheck.Gen.(
      let* s1 = gen_sig [ "p1"; "p2"; "p3" ] in
      let* s2 = gen_sig [ "q1"; "q2"; "q3" ] in
      let* s3 = gen_sig [ "r1"; "r2"; "r3" ] in
      return (s1, s2, s3))
  in
  QCheck.make ~print:(fun (a, b, c) -> Format.asprintf "%a | %a | %a" Sigs.pp a Sigs.pp b Sigs.pp c) gen

let prop_sigs_compose_commutative =
  QCheck.Test.make ~name:"sigs: composition commutative" compatible_sig_triple (fun (s1, s2, _) ->
      Sigs.equal (Sigs.compose s1 s2) (Sigs.compose s2 s1))

let prop_sigs_compose_associative =
  QCheck.Test.make ~name:"sigs: composition associative" compatible_sig_triple (fun (s1, s2, s3) ->
      Sigs.equal
        (Sigs.compose (Sigs.compose s1 s2) s3)
        (Sigs.compose s1 (Sigs.compose s2 s3)))

let prop_sigs_hide_preserves_all =
  QCheck.Test.make ~name:"sigs: hiding preserves sig-hat" compatible_sig_triple (fun (s1, _, _) ->
      let h = Sigs.hide s1 (Sigs.output s1) in
      Action_set.equal (Sigs.all h) (Sigs.all s1))

(* ----------------------------------------------------------------- Psioa *)

let test_validate_fixtures () =
  List.iter
    (fun auto ->
      match Psioa.validate auto with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Psioa.name auto) e)
    [ Fixtures.coin "c";
      Fixtures.counter "k";
      Fixtures.channel "ch";
      Fixtures.sender ~channel_name:"ch" "s";
      Fixtures.receiver ~channel_name:"ch" "r";
      Fixtures.acceptor ~watch:[ ("x", None) ] "e" ]

let test_validate_broken () =
  (match Psioa.validate (Fixtures.broken_no_transition "b") with
  | Ok () -> Alcotest.fail "missing transition not caught"
  | Error e -> Alcotest.(check bool) "mentions action" true (String.length e > 0));
  match Psioa.validate (Fixtures.broken_improper "b") with
  | Ok () -> Alcotest.fail "improper dist not caught"
  | Error e ->
      Alcotest.(check bool) "mentions mass" true
        (Astring.String.is_infix ~affix:"mass" e
         || String.length e > 0)

let test_reachable_coin () =
  let c = Fixtures.coin "c" in
  Alcotest.(check int) "3 states" 3 (List.length (Psioa.reachable c))

let test_reachable_limit () =
  let k = Fixtures.counter ~bound:100 "k" in
  Alcotest.(check int) "state limit respected" 10 (List.length (Psioa.reachable ~max_states:10 k));
  Alcotest.(check int) "depth limit respected" 4 (List.length (Psioa.reachable ~max_depth:3 k))

let test_step_not_enabled () =
  let c = Fixtures.coin "c" in
  (try
     ignore (Psioa.step c (Psioa.start c) (act "nope"));
     Alcotest.fail "expected Not_enabled"
   with Psioa.Not_enabled { automaton; _ } -> Alcotest.(check string) "name" "c" automaton)

let test_memoize_equivalent () =
  let c = Fixtures.channel "ch" in
  let m = Psioa.memoize c in
  List.iter
    (fun q ->
      Alcotest.(check bool) "sig equal" true (Sigs.equal (Psioa.signature c q) (Psioa.signature m q));
      Action_set.iter
        (fun a ->
          let d1 = Psioa.step c q a and d2 = Psioa.step m q a in
          Alcotest.(check bool) "dist equal" true (Dist.equal d1 d2))
        (Psioa.enabled c q))
    (Psioa.reachable c)

let test_universal_actions () =
  let c = Fixtures.coin "c" in
  let acts = Psioa.universal_actions c in
  Alcotest.(check int) "3 actions" 3 (Action_set.cardinal acts)

(* ------------------------------------------------------------------ Exec *)

let test_exec_basic () =
  let e = Exec.init (Value.int 0) in
  Alcotest.(check int) "len 0" 0 (Exec.length e);
  let e = Exec.extend e a1 (Value.int 1) in
  let e = Exec.extend e a2 (Value.int 2) in
  Alcotest.(check int) "len 2" 2 (Exec.length e);
  Alcotest.(check bool) "fstate" true (Value.equal (Exec.fstate e) (Value.int 0));
  Alcotest.(check bool) "lstate" true (Value.equal (Exec.lstate e) (Value.int 2));
  Alcotest.(check int) "3 states" 3 (List.length (Exec.states e))

let test_exec_concat () =
  let e1 = Exec.extend (Exec.init (Value.int 0)) a1 (Value.int 1) in
  let e2 = Exec.extend (Exec.init (Value.int 1)) a2 (Value.int 2) in
  let e = Exec.concat e1 e2 in
  Alcotest.(check int) "len" 2 (Exec.length e);
  let bad = Exec.init (Value.int 9) in
  Alcotest.check_raises "mismatch" (Invalid_argument "Exec.concat: fragments do not meet")
    (fun () -> ignore (Exec.concat e1 bad))

let test_exec_prefix () =
  let e1 = Exec.extend (Exec.init (Value.int 0)) a1 (Value.int 1) in
  let e2 = Exec.extend e1 a2 (Value.int 2) in
  Alcotest.(check bool) "e1 ≤ e2" true (Exec.is_prefix e1 ~of_:e2);
  Alcotest.(check bool) "e2 ≰ e1" false (Exec.is_prefix e2 ~of_:e1);
  Alcotest.(check bool) "e ≤ e" true (Exec.is_prefix e2 ~of_:e2)

let test_exec_trace_hides_internal () =
  let c = Fixtures.coin "c" in
  let heads = Value.tag "heads" Value.unit in
  let e = Exec.extend (Exec.init (Psioa.start c)) (act "c.flip") heads in
  let e = Exec.extend e (act "c.heads") heads in
  let tr = Exec.trace ~sig_of:(Psioa.signature c) e in
  Alcotest.(check (list string)) "only external" [ "c.heads" ] (List.map Action.name tr)

(* --------------------------------------------------------------- Compose *)

let test_compose_sync () =
  (* sender(out send(m)) || channel(in send(m), out recv(m)): shared action
     becomes an output of the composite; messages flow. *)
  let ch = Fixtures.channel "ch" in
  let s = Fixtures.sender ~channel_name:"ch" ~script:[ 1 ] "s" in
  let c = Compose.pair s ch in
  (match Psioa.validate c with Ok () -> () | Error e -> Alcotest.fail e);
  let send1 = act ~payload:(Value.int 1) "ch.send" in
  let sg = Psioa.signature c (Psioa.start c) in
  Alcotest.(check bool) "send1 is output of composite" true (Sigs.classify send1 sg = `Output);
  let d = Psioa.step c (Psioa.start c) send1 in
  Alcotest.(check int) "deterministic" 1 (Dist.size d);
  let q' = List.hd (Dist.support d) in
  let _, qch = Compose.proj_pair q' in
  Alcotest.(check bool) "channel now full" true
    (Value.equal qch (Value.tag "full" (Value.int 1)))

let test_compose_product_measure () =
  (* Two independent coins flipped by a single shared action name would be
     incompatible; instead verify product measure via a synchronized input.
     Simpler: coin composed with a counter — independent actions — then the
     joint transition on coin.flip leaves the counter in place (Dirac). *)
  let c = Fixtures.coin "c" and k = Fixtures.counter "k" in
  let comp = Compose.pair c k in
  let d = Psioa.step comp (Psioa.start comp) (act "c.flip") in
  Alcotest.(check int) "two outcomes" 2 (Dist.size d);
  List.iter
    (fun q ->
      let _, qk = Compose.proj_pair q in
      Alcotest.(check bool) "counter unmoved" true (Value.equal qk (Value.tag "ctr" (Value.int 0))))
    (Dist.support d);
  Alcotest.(check string) "probability 1/2" "1/2"
    (Rat.to_string (Dist.prob d (Value.pair (Value.tag "heads" Value.unit) (Value.tag "ctr" (Value.int 0)))))

let test_compose_incompatible_outputs () =
  (* Two senders to the same channel share output actions: incompatible. *)
  let s1 = Fixtures.sender ~channel_name:"ch" ~script:[ 0 ] "s1" in
  let s2 = Fixtures.sender ~channel_name:"ch" ~script:[ 0 ] "s2" in
  Alcotest.(check bool) "not partially compatible" false (Compose.partially_compatible [ s1; s2 ])

let test_compose_parallel_three () =
  let s = Fixtures.sender ~channel_name:"ch" ~script:[ 0; 1 ] "s" in
  let ch = Fixtures.channel "ch" in
  let r = Fixtures.receiver ~channel_name:"ch" "r" in
  let sys = Compose.parallel [ s; ch; r ] in
  (match Psioa.validate sys with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "partially compatible" true (Compose.partially_compatible [ s; ch; r ]);
  (* Drive to completion: send 0, recv 0, send 1, recv 1. *)
  let step q a = List.hd (Dist.support (Psioa.step sys q a)) in
  let q = Psioa.start sys in
  let q = step q (act ~payload:(Value.int 0) "ch.send") in
  let q = step q (act ~payload:(Value.int 0) "ch.recv") in
  let q = step q (act ~payload:(Value.int 1) "ch.send") in
  let q = step q (act ~payload:(Value.int 1) "ch.recv") in
  match Compose.proj_list q with
  | [ _; _; qr ] ->
      Alcotest.(check bool) "receiver saw [0;1]" true
        (Value.equal qr (Value.tag "rcv" (Value.list [ Value.int 0; Value.int 1 ])))
  | _ -> Alcotest.fail "bad composite state"

let test_proj_exec () =
  let s = Fixtures.sender ~channel_name:"ch" ~script:[ 0 ] "s" in
  let ch = Fixtures.channel "ch" in
  let sys = Compose.parallel [ s; ch ] in
  let send0 = act ~payload:(Value.int 0) "ch.send" in
  let recv0 = act ~payload:(Value.int 0) "ch.recv" in
  let step q a = List.hd (Dist.support (Psioa.step sys q a)) in
  let q0 = Psioa.start sys in
  let q1 = step q0 send0 in
  let q2 = step q1 recv0 in
  let e = Exec.extend (Exec.extend (Exec.init q0) send0 q1) recv0 q2 in
  let es = Compose.proj_exec [ s; ch ] 0 e in
  Alcotest.(check int) "sender took 1 step" 1 (Exec.length es);
  let ech = Compose.proj_exec [ s; ch ] 1 e in
  Alcotest.(check int) "channel took 2 steps" 2 (Exec.length ech)

(* ------------------------------------------------------- extra workloads *)

let test_fifo_order () =
  let f = Fixtures.fifo ~capacity:2 "q" in
  (match Psioa.validate f with Ok () -> () | Error e -> Alcotest.fail e);
  let send m = act ~payload:(Value.int m) "q.send" in
  let recv m = act ~payload:(Value.int m) "q.recv" in
  let step q a = List.hd (Dist.support (Psioa.step f q a)) in
  let q = Psioa.start f in
  let q = step q (send 1) in
  let q = step q (send 0) in
  (* Full: no more sends; recv offers the OLDEST message. *)
  Alcotest.(check bool) "full" false (Psioa.is_enabled f q (send 1));
  Alcotest.(check bool) "fifo head" true (Psioa.is_enabled f q (recv 1));
  Alcotest.(check bool) "not the newest" false (Psioa.is_enabled f q (recv 0));
  let q = step q (recv 1) in
  Alcotest.(check bool) "then the second" true (Psioa.is_enabled f q (recv 0))

let test_timer_fires_once () =
  let t = Fixtures.timer ~horizon:2 "t" in
  (match Psioa.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  let sched = Cdse_sched.Scheduler.first_enabled t in
  let d = Cdse_sched.Measure.exec_dist t sched ~depth:10 in
  let e = List.hd (Dist.support d) in
  Alcotest.(check int) "2 ticks + timeout" 3 (Exec.length e);
  Alcotest.(check int) "exactly one timeout" 1
    (List.length (List.filter (fun a -> Action.name a = "t.timeout") (Exec.actions e)))

let test_random_walk_measure () =
  (* After 2 steps from the middle of 0..4: P(back at middle) = 1/2,
     P(±2) = 1/4 each. *)
  let w = Fixtures.random_walk ~span:4 "w" in
  let sched = Cdse_sched.Scheduler.bounded 2 (Cdse_sched.Scheduler.first_enabled w) in
  let d = Cdse_sched.Measure.exec_dist w sched ~depth:2 in
  let at k =
    Cdse_prob.Rat.sum
      (List.filter_map
         (fun (e, p) ->
           if Value.equal (Exec.lstate e) (Value.tag "walk" (Value.int k)) then Some p else None)
         (Dist.items d))
  in
  Alcotest.(check string) "P(2) = 1/2" "1/2" (Cdse_prob.Rat.to_string (at 2));
  Alcotest.(check string) "P(0) = 1/4" "1/4" (Cdse_prob.Rat.to_string (at 0));
  Alcotest.(check string) "P(4) = 1/4" "1/4" (Cdse_prob.Rat.to_string (at 4))

let test_walk_clamps () =
  (* From the border, the walk stays in range: support never leaves 0..span. *)
  let w = Fixtures.random_walk ~span:2 "w" in
  let sched = Cdse_sched.Scheduler.bounded 5 (Cdse_sched.Scheduler.first_enabled w) in
  let d = Cdse_sched.Measure.exec_dist w sched ~depth:5 in
  List.iter
    (fun e ->
      List.iter
        (fun q ->
          match q with
          | Value.Tag ("walk", Value.Int k) ->
              Alcotest.(check bool) "in range" true (k >= 0 && k <= 2)
          | _ -> ())
        (Exec.states e))
    (Dist.support d)

(* ------------------------------------------------------------ Hide/Rename *)

let test_hide_psioa () =
  let c = Fixtures.coin "c" in
  let hidden = Hide.psioa_const c (Action_set.of_list [ act "c.heads" ]) in
  let heads = Value.tag "heads" Value.unit in
  Alcotest.(check bool) "heads internal now" true
    (Sigs.classify (act "c.heads") (Psioa.signature hidden heads) = `Internal);
  (match Psioa.validate hidden with Ok () -> () | Error e -> Alcotest.fail e);
  (* Transitions unchanged. *)
  Alcotest.(check bool) "same transition" true
    (Dist.equal (Psioa.step c heads (act "c.heads")) (Psioa.step hidden heads (act "c.heads")))

let test_rename_lemma_a1 () =
  (* Lemma A.1: the renamed structure is still a PSIOA. *)
  let c = Fixtures.coin "c" in
  let r = Rename.prefix "X." in
  let rc = Rename.psioa c r in
  (match Psioa.validate rc with Ok () -> () | Error e -> Alcotest.fail e);
  let heads = Value.tag "heads" Value.unit in
  Alcotest.(check bool) "renamed output enabled" true
    (Psioa.is_enabled rc heads (act "X.c.heads"));
  Alcotest.(check bool) "original name gone" false (Psioa.is_enabled rc heads (act "c.heads"));
  (* Same transition measures modulo renaming (Def 2.8 item 4). *)
  Alcotest.(check bool) "same measure" true
    (Dist.equal (Psioa.step rc heads (act "X.c.heads")) (Psioa.step c heads (act "c.heads")))

let test_rename_only_restricts () =
  let set = Action_set.of_list [ act "c.flip" ] in
  let r = Rename.only set (Rename.prefix "Y.") in
  Alcotest.(check string) "in set renamed" "Y.c.flip"
    (Action.name (r Value.unit (act "c.flip")));
  Alcotest.(check string) "out of set untouched" "c.heads"
    (Action.name (r Value.unit (act "c.heads")))

let () =
  Alcotest.run "cdse_psioa"
    [ ( "value",
        [ Alcotest.test_case "trailing bits rejected" `Quick test_value_trailing_bits;
          qtest prop_value_bits_roundtrip;
          qtest prop_value_compare_refl;
          qtest prop_value_compare_antisym;
          qtest prop_value_encoding_injective;
          qtest prop_decoder_total_on_garbage ] );
      ( "action",
        [ Alcotest.test_case "pp" `Quick test_action_pp; qtest prop_action_bits_roundtrip ] );
      ( "sigs",
        [ Alcotest.test_case "disjointness enforced" `Quick test_sigs_disjoint;
          Alcotest.test_case "composition (Def 2.4)" `Quick test_sigs_compose_def24;
          Alcotest.test_case "incompatibility (Def 2.3)" `Quick test_sigs_incompatible;
          Alcotest.test_case "hiding (Def 2.6)" `Quick test_sigs_hide;
          qtest prop_sigs_compose_commutative;
          qtest prop_sigs_compose_associative;
          qtest prop_sigs_hide_preserves_all ] );
      ( "psioa",
        [ Alcotest.test_case "fixtures validate" `Quick test_validate_fixtures;
          Alcotest.test_case "broken automata rejected" `Quick test_validate_broken;
          Alcotest.test_case "reachable coin" `Quick test_reachable_coin;
          Alcotest.test_case "reachable limits" `Quick test_reachable_limit;
          Alcotest.test_case "step not enabled" `Quick test_step_not_enabled;
          Alcotest.test_case "memoize equivalent" `Quick test_memoize_equivalent;
          Alcotest.test_case "universal actions" `Quick test_universal_actions ] );
      ( "exec",
        [ Alcotest.test_case "basics" `Quick test_exec_basic;
          Alcotest.test_case "concat" `Quick test_exec_concat;
          Alcotest.test_case "prefix" `Quick test_exec_prefix;
          Alcotest.test_case "trace hides internal" `Quick test_exec_trace_hides_internal ] );
      ( "compose",
        [ Alcotest.test_case "synchronization" `Quick test_compose_sync;
          Alcotest.test_case "product measure (Def 2.5)" `Quick test_compose_product_measure;
          Alcotest.test_case "shared outputs incompatible" `Quick test_compose_incompatible_outputs;
          Alcotest.test_case "three-way pipeline" `Quick test_compose_parallel_three;
          Alcotest.test_case "execution projection" `Quick test_proj_exec ] );
      ( "workloads",
        [ Alcotest.test_case "fifo preserves order" `Quick test_fifo_order;
          Alcotest.test_case "timer fires once" `Quick test_timer_fires_once;
          Alcotest.test_case "random walk exact measure" `Quick test_random_walk_measure;
          Alcotest.test_case "random walk clamps" `Quick test_walk_clamps ] );
      ( "hide-rename",
        [ Alcotest.test_case "hiding (Def 2.7)" `Quick test_hide_psioa;
          Alcotest.test_case "renaming closure (Lemma A.1)" `Quick test_rename_lemma_a1;
          Alcotest.test_case "restricted renaming" `Quick test_rename_only_restricts ] ) ]
