test/test_util.ml: Alcotest Astring Bits Buffer Cdse_util Cost Format Int List Order Poly Pretty Printf QCheck QCheck_alcotest String
