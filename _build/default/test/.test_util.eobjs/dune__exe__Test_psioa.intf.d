test/test_psioa.mli:
