test/test_bounded.mli:
