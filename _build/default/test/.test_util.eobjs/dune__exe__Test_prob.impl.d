test/test_prob.ml: Alcotest Bignat Cdse_prob Dist Float Format Fprob Fun Int List QCheck QCheck_alcotest Rat Rng Stat
