test/support/fixtures.ml: Cdse_gen
