test/support/sfixtures.ml: Cdse_gen
