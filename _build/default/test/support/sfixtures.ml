(** Test-suite alias for the structured workload generators. *)
include Cdse_gen.Sworkloads
