(** Test-suite alias for the shared workload generators. *)
include Cdse_gen.Workloads
