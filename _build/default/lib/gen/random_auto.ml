open Cdse_prob
open Cdse_psioa

let make ~rng ~name ?(n_states = 6) ?(n_actions = 4) ?(branching = 2) () =
  let actions = Array.init n_actions (fun i -> Action.make (Printf.sprintf "%s.a%d" name i)) in
  let state i = Value.tag name (Value.int i) in
  (* Per-state: a non-empty subset of actions split into outputs and
     internals, and for each enabled action a random target measure. All
     tables are drawn eagerly so the automaton is a pure function of the
     seed. *)
  let plans =
    Array.init n_states (fun _ ->
        let n_enabled = 1 + Rng.int rng n_actions in
        let enabled = List.filteri (fun i _ -> i < n_enabled) (Rng.shuffle rng (Array.to_list actions)) in
        List.map
          (fun a ->
            let is_output = Rng.bool rng in
            let k = 1 + Rng.int rng branching in
            let targets = List.init k (fun _ -> Rng.int rng n_states) in
            let weights = List.map (fun _ -> 1 + Rng.int rng 3) targets in
            let total = List.fold_left ( + ) 0 weights in
            let dist =
              Vdist.make
                (List.map2 (fun t w -> (state t, Rat.of_ints w total)) targets weights)
            in
            (a, is_output, dist))
          enabled)
  in
  let plan_of q =
    match q with
    | Value.Tag (n, Value.Int i) when String.equal n name && i >= 0 && i < n_states -> plans.(i)
    | _ -> []
  in
  let signature q =
    let plan = plan_of q in
    let outs = List.filter_map (fun (a, o, _) -> if o then Some a else None) plan in
    let ints = List.filter_map (fun (a, o, _) -> if o then None else Some a) plan in
    Sigs.make ~input:Action_set.empty ~output:(Action_set.of_list outs)
      ~internal:(Action_set.of_list ints)
  in
  let transition q act =
    List.find_map
      (fun (a, _, dist) -> if Action.equal a act then Some dist else None)
      (plan_of q)
  in
  Psioa.make ~name ~start:(state 0) ~signature ~transition
