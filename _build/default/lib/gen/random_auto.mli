(** Seeded random PSIOA generator.

    Produces structurally varied but always-valid automata for the
    boundedness experiments (E1/E2) and property tests: random state
    counts, per-state output/internal action partitions, and random
    transition measures with small rational probabilities. Actions are
    namespaced by the automaton name, so independently generated automata
    are always pairwise compatible. *)

open Cdse_prob
open Cdse_psioa

val make :
  rng:Rng.t ->
  name:string ->
  ?n_states:int ->
  ?n_actions:int ->
  ?branching:int ->
  unit ->
  Psioa.t
(** [make ~rng ~name ()] draws an automaton with [n_states] states
    (default 6) over [n_actions] locally-controlled actions (default 4),
    each transition targeting up to [branching] states (default 2) with
    probabilities of denominator ≤ 4. The automaton is valid by
    construction ({!Cdse_psioa.Psioa.validate} holds). *)
