lib/gen/random_auto.ml: Action Action_set Array Cdse_prob Cdse_psioa List Printf Psioa Rat Rng Sigs String Value Vdist
