lib/gen/random_pca.mli: Cdse_config Cdse_prob Pca Rng
