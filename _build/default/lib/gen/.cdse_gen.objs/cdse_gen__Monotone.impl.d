lib/gen/monotone.ml: Action Cdse_config Cdse_prob Cdse_psioa Cdse_sched Config Exec Pca Psioa Registry Sigs Value Vdist Workloads
