lib/gen/workloads.ml: Action Action_set Cdse_prob Cdse_psioa List Psioa Rat Sigs Value Vdist
