lib/gen/random_auto.mli: Cdse_prob Cdse_psioa Psioa Rng
