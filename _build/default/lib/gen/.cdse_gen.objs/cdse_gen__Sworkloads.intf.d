lib/gen/sworkloads.mli: Cdse_psioa Cdse_secure Psioa Structured Value
