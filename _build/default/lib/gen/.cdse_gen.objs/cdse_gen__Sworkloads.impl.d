lib/gen/sworkloads.ml: Action Action_set Cdse_psioa Cdse_secure List Psioa Sigs Structured Value Vdist Workloads
