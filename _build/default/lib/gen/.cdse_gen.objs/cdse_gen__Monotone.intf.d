lib/gen/monotone.mli: Action Cdse_config Cdse_psioa Cdse_sched Psioa
