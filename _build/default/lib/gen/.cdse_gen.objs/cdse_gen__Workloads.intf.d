lib/gen/workloads.mli: Action Cdse_prob Cdse_psioa Psioa Rat Sigs Value
