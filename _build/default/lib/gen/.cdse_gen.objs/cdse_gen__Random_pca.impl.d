lib/gen/random_pca.ml: Action Cdse_config Cdse_prob Cdse_psioa Config Hashtbl List Pca Printf Psioa Rat Registry Rng Workloads
