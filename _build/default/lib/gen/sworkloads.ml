(** Structured fixtures for the secure layer tests.

    The running protocol is a tiny adversarially-scheduled relay:

      env --in(m)--> [proto] --leak(m)--> adversary
      adversary --deliver--> [proto] --out(m)--> env

    [in]/[out] are environment actions, [leak]/[deliver] adversary actions,
    so the fixture exercises both directions of the attack surface — which
    is what the dummy-adversary forwarding of Lemma D.1 needs. *)

open Cdse_psioa
open Cdse_secure

let act = Workloads.act
let sig_io = Workloads.sig_io

let q_idle = Value.tag "idle" Value.unit
let q_got m = Value.tag "got" (Value.int m)
let q_sent m = Value.tag "sent" (Value.int m)
let q_done m = Value.tag "done" (Value.int m)
let q_final = Value.tag "final" Value.unit

(** The relay protocol as a structured PSIOA over alphabet [0..alpha-1]. *)
let relay ?(alphabet = [ 0 ]) name =
  let in_ m = act ~payload:(Value.int m) (name ^ ".in") in
  let leak m = act ~payload:(Value.int m) (name ^ ".leak") in
  let deliver = act (name ^ ".deliver") in
  let out m = act ~payload:(Value.int m) (name ^ ".out") in
  let signature q =
    match q with
    | Value.Tag ("idle", _) -> sig_io ~i:(List.map in_ alphabet) ()
    | Value.Tag ("got", Value.Int m) -> sig_io ~o:[ leak m ] ()
    | Value.Tag ("sent", _) -> sig_io ~i:[ deliver ] ()
    | Value.Tag ("done", Value.Int m) -> sig_io ~o:[ out m ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("idle", _) ->
        List.find_map
          (fun m -> if Action.equal a (in_ m) then Some (Vdist.dirac (q_got m)) else None)
          alphabet
    | Value.Tag ("got", Value.Int m) when Action.equal a (leak m) -> Some (Vdist.dirac (q_sent m))
    | Value.Tag ("sent", Value.Int m) when Action.equal a deliver -> Some (Vdist.dirac (q_done m))
    | Value.Tag ("done", Value.Int m) when Action.equal a (out m) -> Some (Vdist.dirac q_final)
    | _ -> None
  in
  let psioa = Psioa.make ~name ~start:q_idle ~signature ~transition in
  let eact q =
    match q with
    | Value.Tag ("idle", _) -> Action_set.of_list (List.map in_ alphabet)
    | Value.Tag ("done", Value.Int m) -> Action_set.of_list [ out m ]
    | _ -> Action_set.empty
  in
  Structured.make psioa ~eact

(** Forwarding adversary speaking the (possibly renamed) adversary alphabet
    of a relay: receives leaks, replies with deliver. [rename] is applied
    to every adversary action name (use [Fun.id] for the unrenamed
    alphabet). *)
let relay_adversary ?(alphabet = [ 0 ]) ~proto_name ~rename name =
  let leak m = Action.with_name rename (act ~payload:(Value.int m) (proto_name ^ ".leak")) in
  let deliver = Action.with_name rename (act (proto_name ^ ".deliver")) in
  let waiting = Value.tag "adv-wait" Value.unit in
  let armed = Value.tag "adv-armed" Value.unit in
  let signature q =
    if Value.equal q waiting then sig_io ~i:(List.map leak alphabet) ()
    else sig_io ~i:(List.map leak alphabet) ~o:[ deliver ] ()
  in
  let transition q a =
    if List.exists (fun m -> Action.equal a (leak m)) alphabet then Some (Vdist.dirac armed)
    else if Value.equal q armed && Action.equal a deliver then Some (Vdist.dirac waiting)
    else None
  in
  Psioa.make ~name ~start:waiting ~signature ~transition

(** Environment: sends [proto.in m0], waits for any [proto.out], then
    announces acc. *)
let relay_env ?(alphabet = [ 0 ]) ?(m0 = 0) ~proto_name name =
  let in0 = act ~payload:(Value.int m0) (proto_name ^ ".in") in
  let outs = List.map (fun m -> act ~payload:(Value.int m) (proto_name ^ ".out")) alphabet in
  let acc = act "acc" in
  let s k = Value.tag "env" (Value.int k) in
  let signature q =
    match q with
    | Value.Tag ("env", Value.Int 0) -> sig_io ~o:[ in0 ] ()
    | Value.Tag ("env", Value.Int 1) -> sig_io ~i:outs ()
    | Value.Tag ("env", Value.Int 2) -> sig_io ~o:[ acc ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("env", Value.Int 0) when Action.equal a in0 -> Some (Vdist.dirac (s 1))
    | Value.Tag ("env", Value.Int 1) when List.exists (Action.equal a) outs ->
        Some (Vdist.dirac (s 2))
    | Value.Tag ("env", Value.Int 2) when Action.equal a acc -> Some (Vdist.dirac (s 3))
    | _ -> None
  in
  Psioa.make ~name ~start:(s 0) ~signature ~transition

(** A bad "adversary" that also listens to the protocol's environment
    actions — rejected by Definition 4.24. *)
let eact_touching_adversary ~proto_name name =
  let out0 = act ~payload:(Value.int 0) (proto_name ^ ".out") in
  Psioa.make ~name ~start:Value.unit
    ~signature:(fun _ -> sig_io ~i:[ out0 ] ())
    ~transition:(fun q a -> if Action.equal a out0 then Some (Vdist.dirac q) else None)
