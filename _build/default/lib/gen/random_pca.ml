open Cdse_prob
open Cdse_psioa
open Cdse_config

let make ~rng ?(n_members = 4) ?(prefix = "r") () =
  let member i =
    let name = Printf.sprintf "%s%d" prefix i in
    match Rng.int rng 3 with
    | 0 -> Workloads.counter ~bound:(1 + Rng.int rng 3) name
    | 1 -> Workloads.fragile ~p_die:(Rat.of_ints 1 (2 + Rng.int rng 3)) name
    | _ -> Workloads.spawner ~max_children:(1 + Rng.int rng 2) name
  in
  let members = List.init n_members member in
  let registry = Registry.of_list members in
  let ids = List.map Psioa.name members in
  let initial_ids =
    match List.filter (fun _ -> Rng.bool rng) ids with
    | [] -> [ List.hd ids ]
    | l -> l
  in
  (* Deterministic pseudo-random creation: the action name hash selects
     which absent members an action creates. Derived purely from the
     action, so the mapping is a function (as Definition 2.16 requires). *)
  let created config a =
    let h = Hashtbl.hash (Action.name a) in
    List.filteri
      (fun i id -> (not (Config.mem config id)) && (h lsr i) land 3 = 0)
      ids
  in
  Pca.make
    ~name:(prefix ^ "-pca")
    ~registry
    ~init:(Config.start_of registry initial_ids)
    ~created ()
