(** Structured workload automata for the secure layer.

    The running protocol is a tiny adversarially-scheduled relay:

    {v
    env --in(m)--> [proto] --leak(m)--> adversary
    adversary --deliver--> [proto] --out(m)--> env
    v}

    [in]/[out] are environment actions, [leak]/[deliver] adversary actions
    (Definition 4.17), so the fixture exercises both directions of the
    attack surface — which is exactly what the dummy-adversary forwarding
    of Lemma D.1 needs. *)

open Cdse_psioa
open Cdse_secure

(** {2 Relay states (exposed for tests)} *)

val q_idle : Value.t
val q_got : int -> Value.t
val q_sent : int -> Value.t
val q_done : int -> Value.t
val q_final : Value.t

val relay : ?alphabet:int list -> string -> Structured.t
(** The relay protocol over the given message alphabet (default [[0]]). *)

val relay_adversary :
  ?alphabet:int list -> proto_name:string -> rename:(string -> string) -> string -> Psioa.t
(** Forwarding adversary: receives leaks, replies with deliver. [rename]
    is applied to every adversary-action name — pass [Fun.id] for the
    unrenamed alphabet, or a [g]-prefix when attaching it behind a dummy
    renaming (Lemma D.1's setting). *)

val relay_env : ?alphabet:int list -> ?m0:int -> proto_name:string -> string -> Psioa.t
(** Environment: sends [proto.in m0], waits for any [proto.out], announces
    [acc]. *)

val eact_touching_adversary : proto_name:string -> string -> Psioa.t
(** Failure-injection fixture: a purported adversary that listens to the
    protocol's {e environment} actions — rejected by Definition 4.24. *)
