(** Seeded random configuration automata.

    Builds registries mixing self-destructing counters, probabilistically
    dying fragiles, coins and spawners, with a deterministic pseudo-random
    creation mapping — every transition may create fresh members and
    destroy expiring ones. Used by the randomized property suite to check
    the PCA constraints (Definition 2.16) and their closure under
    composition (Definition 2.19) on arbitrary instances. *)

open Cdse_prob
open Cdse_config

val make : rng:Rng.t -> ?n_members:int -> ?prefix:string -> unit -> Pca.t
(** A random canonical PCA with [n_members] (default 4) registry members,
    a random initial sub-configuration, and a hash-derived created
    mapping. All member/action names carry [prefix] (default ["r"]), so
    PCAs with distinct prefixes are composable. *)
