(** Monotonicity w.r.t. PSIOA creation (Section 4.4).

    The paper recalls (from the dynamic-PIOA framework) that the
    implementation relation is monotonic w.r.t. creation — if [X_A] and
    [X_B] differ only in creating [A] instead of [B], and [A] implements
    [B], then [X_A] implements [X_B] — {e only} under creation-oblivious
    scheduler schemas. This module packages the canonical witness:

    - two children with identical external behaviour ([beep] then die),
      differing in an internal [work] step;
    - two PCAs that create one or the other at run time;
    - a {e creation-sensitive} scheduler that halts exactly when it sees
      child A's distinctive internal state — breaking monotonicity;
    - oblivious scripts under which monotonicity holds.

    Used by the secure-layer tests and experiment E11. *)

open Cdse_psioa

val child_slow : Psioa.t
(** Child A: internal [kid.work], then output [kid.beep], then dies. *)

val child_fast : Psioa.t
(** Child B: output [kid.beep] immediately, then dies. Same identifier
    ("kid") — the two PCAs' registries bind it differently. *)

val pca_with : Psioa.t -> Cdse_config.Pca.t
(** The context [X_·]: a parent that spawns [kid] at run time. *)

val env : Psioa.t
(** Environment accepting after it hears [kid.beep]. *)

val script_slow : Action.t list
(** Oblivious script driving [env ‖ X_{child_slow}] to acceptance. *)

val script_fast : Action.t list

val creation_sensitive : Psioa.t -> Cdse_sched.Scheduler.t
(** The monotonicity-breaking scheduler for a composite [env ‖ X]: behaves
    like first-enabled until child A's pre-work state appears in the
    configuration, then halts. Creation-sensitive: its decision depends on
    {e which} automaton was created. *)
