open Cdse_psioa
open Cdse_config

let act = Workloads.act
let sig_io = Workloads.sig_io

let beep = act "kid.beep"
let work = act "kid.work"
let spawn = act "par.spawn"

let a0 = Value.tag "kid-a0" Value.unit
let a1 = Value.tag "kid-a1" Value.unit
let b0 = Value.tag "kid-b0" Value.unit
let dead = Value.tag "kid-dead" Value.unit

let child_slow =
  Psioa.make ~name:"kid" ~start:a0
    ~signature:(fun q ->
      if Value.equal q a0 then sig_io ~h:[ work ] ()
      else if Value.equal q a1 then sig_io ~o:[ beep ] ()
      else Sigs.empty)
    ~transition:(fun q a ->
      if Value.equal q a0 && Action.equal a work then Some (Vdist.dirac a1)
      else if Value.equal q a1 && Action.equal a beep then Some (Vdist.dirac dead)
      else None)

let child_fast =
  Psioa.make ~name:"kid" ~start:b0
    ~signature:(fun q -> if Value.equal q b0 then sig_io ~o:[ beep ] () else Sigs.empty)
    ~transition:(fun q a ->
      if Value.equal q b0 && Action.equal a beep then Some (Vdist.dirac dead) else None)

let parent =
  let p0 = Value.tag "par0" Value.unit in
  let p1 = Value.tag "par1" Value.unit in
  Psioa.make ~name:"par" ~start:p0
    ~signature:(fun q -> if Value.equal q p0 then sig_io ~o:[ spawn ] () else sig_io ())
    ~transition:(fun q a ->
      if Value.equal q p0 && Action.equal a spawn then Some (Vdist.dirac p1) else None)

let pca_with child =
  let registry = Registry.of_list [ parent; child ] in
  Pca.make ~name:"ctx" ~registry
    ~init:(Config.start_of registry [ "par" ])
    ~created:(fun _ a -> if Action.equal a spawn then [ "kid" ] else [])
    ()

let env = Workloads.acceptor ~watch:[ ("kid.beep", None) ] "env"

let script_slow = [ spawn; work; beep; act "acc" ]
let script_fast = [ spawn; beep; act "acc" ]

(* The composite is env ‖ psioa(X); the PCA state is the right component
   and encodes its configuration. Halt iff child A sits in its pre-work
   state — information only a creation-sensitive scheduler can use. *)
let sees_slow_child q =
  match q with
  | Value.Pair (_, pca_state) -> (
      match Config.of_value pca_state with
      | config -> (
          match Config.state_of config "kid" with
          | Some s -> Value.equal s a0
          | None -> false)
      | exception Invalid_argument _ -> false)
  | _ -> false

let creation_sensitive composite =
  let first = Cdse_sched.Scheduler.first_enabled composite in
  Cdse_sched.Scheduler.make ~name:"creation-sensitive" (fun e ->
      if sees_slow_child (Exec.lstate e) then
        Cdse_prob.Dist.empty ~compare:Action.compare
      else first.Cdse_sched.Scheduler.choose e)
