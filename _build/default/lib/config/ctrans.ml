open Cdse_prob
open Cdse_psioa

let preserving reg config act =
  let sg = Config.signature reg config in
  if not (Action_set.mem act (Sigs.all sg)) then None
  else begin
    (* Each member either participates (its own measure) or stays (Dirac),
       exactly the joint transition of Definition 2.5 lifted to named
       members. *)
    let per_member =
      List.map
        (fun (id, q) ->
          let auto = Registry.find reg id in
          let d =
            if Psioa.is_enabled auto q act then Psioa.step auto q act else Vdist.dirac q
          in
          Dist.map ~compare:(Cdse_util.Order.pair String.compare Value.compare) (fun q' -> (id, q')) d)
        (Config.entries config)
    in
    let joint =
      Dist.product_list ~compare:(Cdse_util.Order.pair String.compare Value.compare) per_member
    in
    Some (Dist.map ~compare:Config.compare Config.make joint)
  end

let intrinsic reg config act ~created =
  match preserving reg config act with
  | None -> None
  | Some eta_p ->
      let fresh = List.filter (fun id -> not (Config.mem config id)) created in
      let extend_and_reduce c =
        let extended =
          List.fold_left (fun c id -> Config.add id (Psioa.start (Registry.find reg id)) c) c fresh
        in
        Config.reduce reg extended
      in
      (* Dist.map sums the probabilities of outcomes that collapse to the
         same reduced configuration — the η_r summation of Definition 2.14. *)
      Some (Dist.map ~compare:Config.compare extend_and_reduce eta_p)
