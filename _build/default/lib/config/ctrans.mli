(** Configuration transitions (Definitions 2.13–2.14).

    The {e preserving} transition [C ⇀ η_p] moves the participating member
    automata jointly (product measure) with the automaton set unchanged.
    The {e intrinsic} transition [C ⟹_φ η] additionally creates the fresh
    automata [φ] in their start states and then reduces every outcome,
    destroying members that reached an empty-signature state. *)

open Cdse_prob
open Cdse_psioa

val preserving : Registry.t -> Config.t -> Action.t -> Config.t Dist.t option
(** [C ⇀ η_p] (Definition 2.13). [None] when the action is not in
    [sig-hat(C)]. *)

val intrinsic :
  Registry.t -> Config.t -> Action.t -> created:string list -> Config.t Dist.t option
(** [C ⟹_φ η] (Definition 2.14): preserving transition, extension of every
    outcome with the members of [φ] at their start states, then reduction
    (probabilities of outcomes mapping to the same reduced configuration
    are summed). Created identifiers already present in [C] are ignored,
    matching the [φ ∩ A = ∅] side condition. *)
