open Cdse_psioa

(* Entries sorted by identifier; at most one state per identifier. *)
type t = (string * Value.t) list

exception Duplicate_automaton of string

let empty : t = []
let is_empty c = c = []

let make pairs =
  let sorted = List.stable_sort (fun (a, _) (b, _) -> String.compare a b) pairs in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then raise (Duplicate_automaton a) else check rest
    | _ -> ()
  in
  check sorted;
  sorted

let auts c = List.map fst c
let entries c = c
let state_of c id = List.assoc_opt id c
let mem c id = List.mem_assoc id c
let cardinal = List.length

let add id q c =
  if mem c id then raise (Duplicate_automaton id) else make ((id, q) :: c)

let remove id c = List.filter (fun (i, _) -> not (String.equal i id)) c

let member_sigs reg c =
  List.map (fun (id, q) -> Psioa.signature (Registry.find reg id) q) c

(* Definition 2.11: outputs and internals are unions; inputs are the union
   of inputs minus the configuration's own outputs. *)
let signature reg c =
  let sigs = member_sigs reg c in
  let out = List.fold_left (fun acc s -> Action_set.union acc (Sigs.output s)) Action_set.empty sigs in
  let int_ = List.fold_left (fun acc s -> Action_set.union acc (Sigs.internal s)) Action_set.empty sigs in
  let in_all = List.fold_left (fun acc s -> Action_set.union acc (Sigs.input s)) Action_set.empty sigs in
  Sigs.make ~input:(Action_set.diff in_all out) ~output:out ~internal:int_

let compatible reg c = Sigs.compatible_list (member_sigs reg c)

let reduce reg c =
  List.filter (fun (id, q) -> not (Sigs.is_empty (Psioa.signature (Registry.find reg id) q))) c

let is_reduced reg c = List.length (reduce reg c) = List.length c

let start_of reg ids = make (List.map (fun id -> (id, Psioa.start (Registry.find reg id))) ids)

let union a b =
  List.iter (fun (id, _) -> if mem a id then raise (Duplicate_automaton id)) b;
  make (a @ b)

let restrict c ids = List.filter (fun (id, _) -> List.mem id ids) c

let compare a b =
  Cdse_util.Order.list (Cdse_util.Order.pair String.compare Value.compare) a b

let equal a b = compare a b = 0

let to_value c = Value.tag "config" (Value.list (List.map (fun (id, q) -> Value.pair (Value.str id) q) c))

let of_value = function
  | Value.Tag ("config", Value.List l) ->
      make
        (List.map
           (function
             | Value.Pair (Value.Str id, q) -> (id, q)
             | v -> invalid_arg ("Config.of_value: bad entry " ^ Value.to_string v))
           l)
  | v -> invalid_arg ("Config.of_value: not a configuration " ^ Value.to_string v)

let pp fmt c =
  Format.fprintf fmt "⟨@[<hov>%a@]⟩"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
       (fun fmt (id, q) -> Format.fprintf fmt "%s@%a" id Value.pp q))
    c
