lib/config/config.mli: Cdse_psioa Format Registry Sigs Value
