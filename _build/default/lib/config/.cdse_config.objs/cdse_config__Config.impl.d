lib/config/config.ml: Action_set Cdse_psioa Cdse_util Format List Psioa Registry Sigs String Value
