lib/config/pca.ml: Action Action_set Cdse_prob Cdse_psioa Compose Config Ctrans Dist Format Fun List Option Psioa Registry Sigs String Value
