lib/config/ctrans.ml: Action_set Cdse_prob Cdse_psioa Cdse_util Config Dist List Psioa Registry Sigs String Value Vdist
