lib/config/pca.mli: Action Action_set Cdse_psioa Config Psioa Registry Value
