lib/config/ctrans.mli: Action Cdse_prob Cdse_psioa Config Dist Registry
