(** Configurations (Definitions 2.9–2.12).

    A configuration [C = (A, S)] is a finite set of PSIOA identifiers
    together with a current state for each. Identifiers are resolved
    through a {!Cdse_psioa.Registry.t}. Configurations are the semantic
    objects behind PCA states; they can gain automata (creation, Definition
    2.14) and lose them (reduction of empty-signature members, Definition
    2.12). *)

open Cdse_psioa

type t

exception Duplicate_automaton of string

val make : (string * Value.t) list -> t
(** Build from (identifier, state) pairs. Raises {!Duplicate_automaton} on
    repeated identifiers. *)

val empty : t
val is_empty : t -> bool

val auts : t -> string list
(** [auts(C)]: identifiers, sorted. *)

val entries : t -> (string * Value.t) list
val state_of : t -> string -> Value.t option
(** [map(C)(A)]. *)

val mem : t -> string -> bool
val add : string -> Value.t -> t -> t
val remove : string -> t -> t
val cardinal : t -> int

val signature : Registry.t -> t -> Sigs.t
(** The intrinsic signature [sig(C)] of Definition 2.11:
    [out(C) = ∪ out(Aᵢ)(S(Aᵢ))], [int(C) = ∪ int(...)], and
    [in(C) = (∪ in(...)) ∖ out(C)]. Requires compatibility. *)

val compatible : Registry.t -> t -> bool
(** Definition 2.10: the member signatures are pairwise compatible. *)

val reduce : Registry.t -> t -> t
(** Definition 2.12: drop every member whose current signature is empty —
    the destruction mechanism. *)

val is_reduced : Registry.t -> t -> bool

val start_of : Registry.t -> string list -> t
(** The configuration with each listed automaton in its start state. *)

val union : t -> t -> t
(** Disjoint union, for PCA composition (Definition 2.19). Raises
    {!Duplicate_automaton} if the automaton sets intersect. *)

val restrict : t -> string list -> t
(** [S ↾ A]: keep only the listed automata. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_value : t -> Value.t
(** Injective encoding of a configuration as a state value — canonical PCA
    states are these encodings. *)

val of_value : Value.t -> t
(** Inverse of {!to_value}; raises [Invalid_argument] on non-encodings. *)

val pp : Format.formatter -> t -> unit
