open Cdse_psioa

type t = { psioa : Psioa.t; eact : Value.t -> Action_set.t }

let make psioa ~eact = { psioa; eact }
let psioa s = s.psioa
let name s = Psioa.name s.psioa
let eact s q = Action_set.inter (s.eact q) (Sigs.ext (Psioa.signature s.psioa q))
let aact s q = Action_set.diff (Sigs.ext (Psioa.signature s.psioa q)) (eact s q)
let ei s q = Action_set.inter (eact s q) (Sigs.input (Psioa.signature s.psioa q))
let eo s q = Action_set.inter (eact s q) (Sigs.output (Psioa.signature s.psioa q))
let ai s q = Action_set.inter (aact s q) (Sigs.input (Psioa.signature s.psioa q))
let ao s q = Action_set.inter (aact s q) (Sigs.output (Psioa.signature s.psioa q))

let universe f ?max_states ?max_depth s =
  List.fold_left
    (fun acc q -> Action_set.union acc (f s q))
    Action_set.empty
    (Psioa.reachable ?max_states ?max_depth s.psioa)

let aact_universe ?max_states ?max_depth s = universe aact ?max_states ?max_depth s
let ai_universe ?max_states ?max_depth s = universe ai ?max_states ?max_depth s
let ao_universe ?max_states ?max_depth s = universe ao ?max_states ?max_depth s

let validate ?max_states ?max_depth s =
  match Psioa.validate ?max_states ?max_depth s.psioa with
  | Error _ as e -> e
  | Ok () ->
      List.fold_left
        (fun acc q ->
          match acc with
          | Error _ -> acc
          | Ok () ->
              let declared = s.eact q in
              let ext = Sigs.ext (Psioa.signature s.psioa q) in
              if Action_set.subset declared ext then Ok ()
              else
                Error
                  (Format.asprintf "state %a: EAct %a not within ext %a" Value.pp q Action_set.pp
                     declared Action_set.pp ext))
        (Ok ())
        (Psioa.reachable ?max_states ?max_depth s.psioa)

let compatible ?max_states ?max_depth s1 s2 =
  Compose.partially_compatible ?max_states ?max_depth [ s1.psioa; s2.psioa ]
  && begin
       (* Definition 4.18 at every reachable composite state: shared enabled
          actions must be environment actions of both. *)
       let comp = Compose.pair s1.psioa s2.psioa in
       List.for_all
         (fun q ->
           let q1, q2 = Compose.proj_pair q in
           let shared =
             Action_set.inter
               (Sigs.all (Psioa.signature s1.psioa q1))
               (Sigs.all (Psioa.signature s2.psioa q2))
           in
           Action_set.equal shared (Action_set.inter (eact s1 q1) (eact s2 q2)))
         (Psioa.reachable ?max_states ?max_depth comp)
     end

let compose ?name s1 s2 =
  let psioa = Compose.pair ?name s1.psioa s2.psioa in
  let eact q =
    let q1, q2 = Compose.proj_pair q in
    Action_set.union (eact s1 q1) (eact s2 q2)
  in
  { psioa; eact }

let hide s h =
  let psioa = Hide.psioa s.psioa h in
  let eact q = Action_set.diff (s.eact q) (h q) in
  { psioa; eact }

let rename s r =
  let psioa = Rename.psioa s.psioa r in
  let eact q = Action_set.map_actions (r q) (eact s q) in
  { psioa; eact }
