(** The dummy adversary (Definition 4.27).

    [Dummy(A, g)] is a one-slot forwarder sitting between a structured
    automaton [A] and an outer adversary speaking the [g]-renamed adversary
    alphabet. Its state is a single [pending] cell holding the last
    received action (or ⊥):

    - inputs (constant): [AO_A ∪ g(AI_A)] — everything either side sends;
    - when [pending = a ∈ AO_A], its only output is [g(a)] (forward to the
      outer adversary);
    - when [pending = g(b) ∈ g(AI_A)], its only output is [b] (forward into
      [A]);
    - when [pending = ⊥], no outputs.

    Underlined [AO_A]/[AI_A] are the reachable-state unions computed by
    {!Structured.ao_universe} / {!Structured.ai_universe}. *)

open Cdse_psioa

type renaming = {
  apply : Action.t -> Action.t;
  invert : Action.t -> Action.t option;
      (** [invert (apply a) = Some a]; [None] on actions outside the
          image. *)
}

val prefix_renaming : string -> renaming
(** [g(a)] prefixes the action name — fresh as long as no original action
    name starts with the prefix. *)

val idle : Value.t
(** The start state ([pending = ⊥]). *)

val pending_of : Value.t -> Action.t option
(** The pending action of a dummy state, [None] when idle. *)

val make : name:string -> ai:Action_set.t -> ao:Action_set.t -> g:renaming -> Psioa.t
(** [Dummy(A, g)] for an automaton with adversary-input universe [ai] and
    adversary-output universe [ao]. *)
