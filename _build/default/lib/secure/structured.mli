(** Structured PSIOA (Definitions 4.17–4.19).

    A structured PSIOA partitions each state's external actions into
    {e environment} actions [EAct] (the protocol's functional interface)
    and {e adversary} actions [AAct = ext ∖ EAct] (the attack surface).
    Compatibility additionally demands that shared actions be environment
    actions of both parties (Definition 4.18), so composition never fuses
    automata through their attack surfaces. *)

open Cdse_psioa

type t

val make : Psioa.t -> eact:(Value.t -> Action_set.t) -> t
val psioa : t -> Psioa.t
val name : t -> string

val eact : t -> Value.t -> Action_set.t
(** [EAct_A(q) ⊆ ext(A)(q)]. *)

val aact : t -> Value.t -> Action_set.t
(** [AAct_A(q) = ext(A)(q) ∖ EAct_A(q)]. *)

val ei : t -> Value.t -> Action_set.t
(** Environment inputs [EAct ∩ in]. *)

val eo : t -> Value.t -> Action_set.t
val ai : t -> Value.t -> Action_set.t
val ao : t -> Value.t -> Action_set.t

val aact_universe : ?max_states:int -> ?max_depth:int -> t -> Action_set.t
(** The underlined [AAct_A]: union of [AAct_A(q)] over explored reachable
    states — domain of the adversary renamings [g] of Section 4.9. *)

val ai_universe : ?max_states:int -> ?max_depth:int -> t -> Action_set.t
val ao_universe : ?max_states:int -> ?max_depth:int -> t -> Action_set.t

val validate : ?max_states:int -> ?max_depth:int -> t -> (unit, string) result
(** Check [EAct_A(q) ⊆ ext(A)(q)] on the explored states (and the
    underlying PSIOA constraints). *)

val compatible : ?max_states:int -> ?max_depth:int -> t -> t -> bool
(** Definition 4.18: partial compatibility of the underlying PSIOA, plus
    "every shared action is an environment action of both" at reachable
    composite states. *)

val compose : ?name:string -> t -> t -> t
(** Definition 4.19: [A₁ ‖ A₂] with [EAct = EAct₁ ∪ EAct₂] (pointwise on
    pair states). *)

val hide : t -> (Value.t -> Action_set.t) -> t
(** [hide((A, EAct_A), S) = (hide(A, S), EAct_A ∖ S)] (Definition 4.17). *)

val rename : t -> Rename.t -> t
(** Apply an action renaming to the automaton and both partitions. *)
