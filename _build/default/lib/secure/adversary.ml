open Cdse_psioa

let on_composite_states ?max_states ?max_depth ~structured ~adv check =
  let a = Structured.psioa structured in
  let comp = Compose.pair a adv in
  List.fold_left
    (fun acc q ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          let qa, qadv = Compose.proj_pair q in
          check ~qa ~qadv)
    (Ok ())
    (Psioa.reachable ?max_states ?max_depth comp)

let check ?max_states ?max_depth ~structured adv =
  match Compose.partially_compatible ?max_states ?max_depth [ Structured.psioa structured; adv ] with
  | false -> Error "adversary not partially compatible with the structured automaton"
  | true ->
      on_composite_states ?max_states ?max_depth ~structured ~adv (fun ~qa ~qadv ->
          let adv_sig = Psioa.signature adv qadv in
          if not (Action_set.subset (Structured.ai structured qa) (Sigs.output adv_sig)) then
            Error
              (Format.asprintf "state (%a,%a): AI_A ⊄ out(Adv)" Value.pp qa Value.pp qadv)
          else if
            not (Action_set.disjoint (Structured.eact structured qa) (Sigs.all adv_sig))
          then
            Error
              (Format.asprintf "state (%a,%a): adversary touches EAct_A" Value.pp qa Value.pp qadv)
          else Ok ())

let is_adversary ?max_states ?max_depth ~structured adv =
  match check ?max_states ?max_depth ~structured adv with Ok () -> true | Error _ -> false

let full_control ?max_states ?max_depth ~structured adv =
  is_adversary ?max_states ?max_depth ~structured adv
  &&
  match
    on_composite_states ?max_states ?max_depth ~structured ~adv (fun ~qa ~qadv ->
        if
          Action_set.subset (Structured.ao structured qa)
            (Sigs.input (Psioa.signature adv qadv))
        then Ok ()
        else Error "AO_A ⊄ in(Adv)")
  with
  | Ok () -> true
  | Error _ -> false
