(** Structured configuration automata (Definitions 4.20–4.23).

    A structured PCA attaches environment-action mappings to every member
    of every configuration, and derives the PCA-level partition
    [EAct_X(q) = EAct(config(X)(q)) ∖ hidden-actions(X)(q)]
    (Definition 4.22 item 3). Lemma 4.23 (closure under composition) is
    re-checked by {!check_constraint} on any instance. *)

open Cdse_psioa
open Cdse_config

type t

val make : pca:Pca.t -> member_eact:(string -> Value.t -> Action_set.t) -> t
(** [member_eact id q] is [EAct_{aut(id)}(q)] for each automaton of the
    registry. *)

val pca : t -> Pca.t

val config_eact : t -> Config.t -> Action_set.t
(** [EAct(C) = ∪_{A∈C} EAct_A(S(A))] (Definition 4.20). *)

val eact : t -> Value.t -> Action_set.t
(** The derived [EAct_X(q)] of Definition 4.22. *)

val to_structured : t -> Structured.t
(** The structured PSIOA view of the structured PCA (for use with
    adversaries, dummies and emulation). *)

val compose_pair : ?name:string -> t -> t -> t
(** Structured PCA composition (after Definition 4.22); Lemma 4.23
    guarantees the result is again a structured PCA. *)

val check_constraint : ?max_states:int -> ?max_depth:int -> t -> (unit, string) result
(** Verify [EAct_X(q) = EAct(config(X)(q)) ∖ hidden-actions(X)(q)] on the
    explored states — the Definition 4.22 invariant, and the content of
    Lemma 4.23 when applied to a composition. *)
