open Cdse_psioa

type renaming = { apply : Action.t -> Action.t; invert : Action.t -> Action.t option }

let prefix_renaming prefix =
  let apply a = Action.with_name (fun n -> prefix ^ n) a in
  let invert a =
    let n = Action.name a in
    let plen = String.length prefix in
    if String.length n > plen && String.sub n 0 plen = prefix then
      Some (Action.with_name (fun _ -> String.sub n plen (String.length n - plen)) a)
    else None
  in
  { apply; invert }

let idle = Value.tag "dummy-idle" Value.unit

let pending_state a = Value.tag "dummy-pending" (Value.Tag (Action.name a, Action.payload a))

let pending_of = function
  | Value.Tag ("dummy-pending", Value.Tag (name, payload)) -> Some (Action.make ~payload name)
  | _ -> None

let make ~name ~ai ~ao ~g =
  let inputs = Action_set.union ao (Action_set.map_actions g.apply ai) in
  let out_for q =
    match pending_of q with
    | None -> Action_set.empty
    | Some p -> (
        match g.invert p with
        | Some b when Action_set.mem b ai ->
            (* pending ∈ g(AI_A): forward the unrenamed command into A. *)
            Action_set.singleton b
        | _ when Action_set.mem p ao ->
            (* pending ∈ AO_A: forward the renamed report to the outer
               adversary. *)
            Action_set.singleton (g.apply p)
        | _ -> Action_set.empty)
  in
  let signature q =
    Sigs.make ~input:inputs ~output:(out_for q) ~internal:Action_set.empty
  in
  let transition q act =
    if Action_set.mem act inputs then Some (Vdist.dirac (pending_state act))
    else if Action_set.mem act (out_for q) then Some (Vdist.dirac idle)
    else None
  in
  Psioa.make ~name ~start:idle ~signature ~transition
