(** Adversaries for structured automata (Definition 4.24, Lemma 4.25).

    An adversary [Adv] for [(A, EAct_A)] is a PSIOA, partially compatible
    with [A], such that at every reachable composite state (i) the
    adversary inputs of [A] are outputs of [Adv] — the adversary drives the
    attack surface — and (ii) [Adv] never touches the environment actions
    of [A]. *)

open Cdse_psioa

val check :
  ?max_states:int -> ?max_depth:int -> structured:Structured.t -> Psioa.t -> (unit, string) result
(** Verify the two Definition 4.24 conditions on the explored reachable
    states of [A ‖ Adv]. *)

val is_adversary : ?max_states:int -> ?max_depth:int -> structured:Structured.t -> Psioa.t -> bool

val full_control :
  ?max_states:int -> ?max_depth:int -> structured:Structured.t -> Psioa.t -> bool
(** The stronger condition assumed by the dummy-adversary reduction
    (Lemma D.1): additionally every adversary output of [A] is an input of
    [Adv], so all [AAct] traffic flows through the adversary. *)
