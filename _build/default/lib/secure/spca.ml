open Cdse_psioa
open Cdse_config

type t = { pca : Pca.t; member_eact : string -> Value.t -> Action_set.t }

let make ~pca ~member_eact = { pca; member_eact }
let pca s = s.pca

let config_eact s c =
  List.fold_left
    (fun acc (id, q) -> Action_set.union acc (s.member_eact id q))
    Action_set.empty (Config.entries c)

let eact s q =
  Action_set.diff
    (config_eact s (Pca.config_of s.pca q))
    (Pca.hidden_actions s.pca q)

let to_structured s = Structured.make (Pca.psioa s.pca) ~eact:(eact s)

let compose_pair ?name s1 s2 =
  let pca = Pca.compose_pair ?name s1.pca s2.pca in
  let member_eact id q =
    if Registry.mem (Pca.registry s1.pca) id then s1.member_eact id q else s2.member_eact id q
  in
  { pca; member_eact }

let check_constraint ?max_states ?max_depth s =
  let auto = Pca.psioa s.pca in
  List.fold_left
    (fun acc q ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          let derived = eact s q in
          let ext = Sigs.ext (Psioa.signature auto q) in
          (* EAct_X(q) must also be a valid environment partition: a subset
             of the PCA's external actions. *)
          if Action_set.subset derived ext then Ok ()
          else
            Error
              (Format.asprintf "state %a: EAct_X %a escapes ext %a" Value.pp q Action_set.pp
                 derived Action_set.pp ext))
    (Ok ())
    (Psioa.reachable ?max_states ?max_depth auto)
