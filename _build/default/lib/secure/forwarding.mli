(** The [Forward^e] / [Forward^s] constructions of Lemma D.1 (dummy
    adversary insertion, Lemma 4.29).

    Setting: a structured automaton [A], a renaming [g] of its adversary
    actions, an environment [E] and an outer adversary [Adv] with full
    control of the attack surface. The lemma compares

    - lhs: [E ‖ g(A) ‖ Adv] — the adversary attached directly, and
    - rhs: [E ‖ hide(A ‖ Dummy(A,g), AAct_A) ‖ Adv] — the dummy forwarder
      inserted in between,

    and constructs, for every scheduler σ of the lhs, a scheduler
    [Forward^s(σ)] of the rhs that replays σ, expanding each adversary
    interaction into a receive-then-forward pair through the dummy. The
    resulting f-dists agree exactly (ε = 0) and the rhs scheduler uses at
    most twice as many steps ([q₂ = 2·q₁]). *)

open Cdse_psioa
open Cdse_sched

type setup

val make_setup :
  ?max_states:int ->
  ?max_depth:int ->
  structured:Structured.t ->
  g:Dummy.renaming ->
  env:Psioa.t ->
  adv:Psioa.t ->
  unit ->
  setup
(** Computes the adversary-action universes of [A] and assembles both
    systems. The adversary must have {!Adversary.full_control}; this is
    checked lazily by {!check_lemma_d1}. *)

val lhs : setup -> Psioa.t
(** [E ‖ g(A) ‖ Adv] (state shape: [List [q_E; q_A; q_Adv]]). *)

val rhs : setup -> Psioa.t
(** [E ‖ hide(A ‖ Dummy, AAct_A) ‖ Adv] (state shape:
    [List [q_E; Pair (q_A, q_D); q_Adv]]). *)

val dummy : setup -> Psioa.t

val forward_exec : setup -> Exec.t -> Exec.t
(** [Forward^e]: the unique rhs execution [α'] with [α ∼ α']. Raises
    [Invalid_argument] on executions that are not lhs executions. *)

val forward_sched : setup -> Scheduler.t -> Scheduler.t
(** [Forward^s]: replays an lhs scheduler on the rhs; on a fragment that
    just delivered an adversary action to the dummy it deterministically
    fires the forward, otherwise it mirrors σ on the resynchronised lhs
    fragment (halting off-correspondence fragments). *)

type d1_report = {
  distance : Cdse_prob.Rat.t;  (** sup-set distance of the two f-dists *)
  exact : bool;  (** [distance = 0] — the lemma's claim *)
  lhs_steps : int;  (** bound used on the lhs scheduler *)
  rhs_steps : int;  (** bound of the forwarded scheduler ([= 2·lhs]) *)
}

val check_brave :
  setup ->
  insight_of:(Psioa.t -> Insight.t) ->
  sched:Scheduler.t ->
  q1:int ->
  depth:int ->
  bool
(** The checkable bullets of Definition 4.28 (brave pair) on the support
    of the lhs measure: the insight is invariant under hiding the
    adversary alphabet, and [Forward^e] preserves observations
    pointwise. *)

val check_lemma_d1 :
  setup ->
  insight_of:(Psioa.t -> Insight.t) ->
  sched:Scheduler.t ->
  q1:int ->
  depth:int ->
  d1_report
(** Run both systems — σ on the lhs at [depth], [Forward^s σ] on the rhs at
    [2·depth] — and compare observations. *)

val check_lemma_d1_family :
  window:int list ->
  setup_of:(int -> setup) ->
  insight_of:(Psioa.t -> Insight.t) ->
  sched_of:(int -> setup -> Scheduler.t) ->
  q1:(int -> int) ->
  depth:(int -> int) ->
  bool
(** Lemma 4.29 at the family level: exact at every index of the window. *)
