lib/secure/dummy.ml: Action Action_set Cdse_psioa Psioa Sigs String Value Vdist
