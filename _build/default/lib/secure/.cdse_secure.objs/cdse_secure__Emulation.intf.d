lib/secure/emulation.mli: Cdse_prob Cdse_psioa Cdse_sched Dummy Impl Insight Psioa Rat Schema Structured
