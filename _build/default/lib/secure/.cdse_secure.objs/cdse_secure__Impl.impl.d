lib/secure/impl.ml: Cdse_prob Cdse_psioa Cdse_sched Cdse_util Compose Format Insight List Option Printf Psioa Rat Scheduler Schema Stat Value
