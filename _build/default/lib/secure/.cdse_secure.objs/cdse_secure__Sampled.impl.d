lib/secure/sampled.ml: Cdse_prob Cdse_psioa Cdse_sched Compose Float Insight List Measure Option Rng Schema Value
