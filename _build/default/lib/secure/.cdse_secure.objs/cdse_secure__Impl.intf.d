lib/secure/impl.mli: Cdse_bounded Cdse_prob Cdse_psioa Cdse_sched Cdse_util Format Insight Psioa Rat Scheduler Schema
