lib/secure/adversary.mli: Cdse_psioa Psioa Structured
