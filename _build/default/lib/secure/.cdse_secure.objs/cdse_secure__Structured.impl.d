lib/secure/structured.ml: Action_set Cdse_psioa Compose Format Hide List Psioa Rename Sigs Value
