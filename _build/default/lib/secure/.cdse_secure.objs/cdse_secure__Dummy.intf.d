lib/secure/dummy.mli: Action Action_set Cdse_psioa Psioa Value
