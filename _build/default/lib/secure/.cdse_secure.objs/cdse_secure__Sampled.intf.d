lib/secure/sampled.mli: Cdse_psioa Cdse_sched Insight Psioa Scheduler Schema
