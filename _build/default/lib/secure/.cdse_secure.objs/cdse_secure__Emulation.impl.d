lib/secure/emulation.ml: Action_set Cdse_psioa Compose Dummy Hide Impl List Printf Psioa Rename Structured
