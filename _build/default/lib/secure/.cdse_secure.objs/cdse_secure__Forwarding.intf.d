lib/secure/forwarding.mli: Cdse_prob Cdse_psioa Cdse_sched Dummy Exec Insight Psioa Scheduler Structured
