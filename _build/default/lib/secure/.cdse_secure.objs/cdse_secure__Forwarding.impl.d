lib/secure/forwarding.ml: Action Action_set Cdse_prob Cdse_psioa Cdse_sched Compose Dist Dummy Exec Hide Insight List Measure Psioa Rat Rename Scheduler Stat Structured Value
