lib/secure/structured.mli: Action_set Cdse_psioa Psioa Rename Value
