lib/secure/adversary.ml: Action_set Cdse_psioa Compose Format List Psioa Sigs Structured Value
