lib/secure/spca.mli: Action_set Cdse_config Cdse_psioa Config Pca Structured Value
