lib/secure/spca.ml: Action_set Cdse_config Cdse_psioa Config Format List Pca Psioa Registry Sigs Structured Value
