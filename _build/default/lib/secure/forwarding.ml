open Cdse_prob
open Cdse_psioa
open Cdse_sched

type setup = {
  structured : Structured.t;
  g : Dummy.renaming;
  env : Psioa.t;
  adv : Psioa.t;
  ai_univ : Action_set.t;
  ao_univ : Action_set.t;
  lhs_sys : Psioa.t;
  rhs_sys : Psioa.t;
  dummy_auto : Psioa.t;
}

let make_setup ?max_states ?max_depth ~structured ~g ~env ~adv () =
  let ai_univ = Structured.ai_universe ?max_states ?max_depth structured in
  let ao_univ = Structured.ao_universe ?max_states ?max_depth structured in
  let aact_univ = Action_set.union ai_univ ao_univ in
  let a = Structured.psioa structured in
  let g_a = Rename.psioa a (Rename.only aact_univ (fun _ act -> g.Dummy.apply act)) in
  let dummy_auto =
    Dummy.make ~name:(Psioa.name a ^ ".dummy") ~ai:ai_univ ~ao:ao_univ ~g
  in
  let h = Hide.psioa_const (Compose.pair a dummy_auto) aact_univ in
  let lhs_sys = Compose.parallel ~name:"lhs" [ env; g_a; adv ] in
  let rhs_sys = Compose.parallel ~name:"rhs" [ env; h; adv ] in
  { structured; g; env; adv; ai_univ; ao_univ; lhs_sys; rhs_sys; dummy_auto }

let lhs s = s.lhs_sys
let rhs s = s.rhs_sys
let dummy s = s.dummy_auto

(* --------------------------------------------------------------------- *)
(* State plumbing. *)

let lhs_components q =
  match Compose.proj_list q with
  | [ qe; qa; qadv ] -> (qe, qa, qadv)
  | _ -> invalid_arg "Forwarding: bad lhs state"

let rhs_components q =
  match Compose.proj_list q with
  | [ qe; Value.Pair (qa, qd); qadv ] -> (qe, qa, qd, qadv)
  | _ -> invalid_arg "Forwarding: bad rhs state"

let rhs_state qe qa qd qadv = Value.list [ qe; Value.pair qa qd; qadv ]
let lhs_state qe qa qadv = Value.list [ qe; qa; qadv ]

(* Classification of an lhs action: which side of the adversary fence does
   it live on? Based on the unrenamed action's membership in the adversary
   universes — E-actions (environment traffic and internals) pass through
   unchanged. *)
type kind =
  | Env_action
  | F_a of Action.t  (* act = g(a), a ∈ AO_A: A reports to the adversary *)
  | F_adv of Action.t  (* act = g(b), b ∈ AI_A: adversary commands A *)

let classify s act =
  match s.g.Dummy.invert act with
  | Some a when Action_set.mem a s.ao_univ -> F_a a
  | Some b when Action_set.mem b s.ai_univ -> F_adv b
  | _ -> Env_action

(* --------------------------------------------------------------------- *)
(* Forward^e: map an lhs execution to the corresponding rhs execution. *)

let forward_exec s alpha =
  let qe0, qa0, qadv0 = lhs_components (Exec.fstate alpha) in
  let init = Exec.init (rhs_state qe0 qa0 Dummy.idle qadv0) in
  let step (acc, (qe, qa, qadv)) (act, target) =
    let qe', qa', qadv' = lhs_components target in
    let acc =
      match classify s act with
      | Env_action -> Exec.extend acc act (rhs_state qe' qa' Dummy.idle qadv')
      | F_a a ->
          (* A emits a (hidden) into the dummy, which forwards g(a). *)
          let mid = Exec.extend acc a (rhs_state qe qa' (Value.tag "dummy-pending" (Value.Tag (Action.name a, Action.payload a))) qadv) in
          Exec.extend mid act (rhs_state qe' qa' Dummy.idle qadv')
      | F_adv b ->
          (* Adv emits g(b) into the dummy, which forwards b (hidden). *)
          let mid = Exec.extend acc act (rhs_state qe qa (Value.tag "dummy-pending" (Value.Tag (Action.name act, Action.payload act))) qadv') in
          Exec.extend mid b (rhs_state qe' qa' Dummy.idle qadv')
    in
    (acc, (qe', qa', qadv'))
  in
  fst (List.fold_left step (init, (qe0, qa0, qadv0)) (Exec.steps alpha))

(* --------------------------------------------------------------------- *)
(* Resynchronisation: recover, from an rhs fragment, the lhs fragment it
   replays — or the pending forward it still owes. *)

type sync =
  | Synced of Exec.t  (* the corresponding lhs fragment *)
  | Mid_forward of Action.t  (* the forward action the dummy owes *)
  | Desynced

let resync s alpha' =
  let qe0, qa0, qd0, qadv0 = rhs_components (Exec.fstate alpha') in
  if not (Value.equal qd0 Dummy.idle) then Desynced
  else
    (* Walk the rhs fragment. A pending entry [(forward, lhs_act)] records
       that the dummy has just received an action and owes [forward]; once
       the forward fires, the two rhs steps collapse into the single lhs
       step [lhs_act]. The A→dummy half-step carries the unrenamed action
       a ∈ AO_A, which [classify] does not recognise (it inverts g first),
       so it is detected before the general classification. *)
    let rec walk lhs_acc pending steps =
      match steps with
      | [] -> (
          match pending with
          | None -> Synced lhs_acc
          | Some (forward, _) -> Mid_forward forward)
      | (act, target) :: rest -> (
          match rhs_components target with
          | exception Invalid_argument _ -> Desynced
          | qe', qa', qd', qadv' -> (
              match pending with
              | Some (forward, lhs_act) ->
                  if Action.equal act forward && Value.equal qd' Dummy.idle then
                    let lhs_acc = Exec.extend lhs_acc lhs_act (lhs_state qe' qa' qadv') in
                    walk lhs_acc None rest
                  else Desynced
              | None ->
                  if Action_set.mem act s.ao_univ then
                    (* A posted a into the dummy: owed forward is g(a); the
                       lhs action is g(a). *)
                    walk lhs_acc (Some (s.g.Dummy.apply act, s.g.Dummy.apply act)) rest
                  else (
                    match classify s act with
                    | F_adv b -> walk lhs_acc (Some (b, act)) rest
                    | Env_action ->
                        if Value.equal qd' Dummy.idle then
                          let lhs_acc = Exec.extend lhs_acc act (lhs_state qe' qa' qadv') in
                          walk lhs_acc None rest
                        else Desynced
                    | F_a _ -> Desynced)))
    in
    walk (Exec.init (lhs_state qe0 qa0 qadv0)) None (Exec.steps alpha')

(* --------------------------------------------------------------------- *)
(* Forward^s. *)

let forward_sched s sigma =
  let choose alpha' =
    match resync s alpha' with
    | Desynced -> Dist.empty ~compare:Action.compare
    | Mid_forward forward -> Dist.dirac ~compare:Action.compare forward
    | Synced alpha ->
        let choice = sigma.Scheduler.choose alpha in
        (* Map each lhs action to the first rhs action of its replay:
           adversary reports g(a) start with the unrenamed a; everything
           else keeps its name. *)
        Dist.map ~compare:Action.compare
          (fun act ->
            match classify s act with
            | F_a a -> a
            | F_adv _ | Env_action -> act)
          choice
  in
  Scheduler.make ~name:("forward " ^ sigma.Scheduler.name) choose

(* Definition 4.28's brave-pair bullets, checked on the support of the
   lhs measure: (i) hiding the adversary actions does not change the
   insight's observation (the arrival space depends only on E), and
   (ii) Forward^e preserves observations pointwise. Bullet (iv) — that
   Forward^s lands in the schema — holds by construction for the schemas
   used here and is exercised by check_lemma_d1's measure computation. *)
let check_brave s ~insight_of ~sched ~q1 ~depth =
  let sigma = Scheduler.bounded q1 sched in
  let d = Measure.exec_dist s.lhs_sys sigma ~depth in
  let aact_univ = Action_set.union s.ai_univ s.ao_univ in
  let g_univ = Action_set.map_actions s.g.Dummy.apply aact_univ in
  let hidden_lhs = Hide.psioa_const s.lhs_sys g_univ in
  let f_lhs = insight_of s.lhs_sys and f_hidden = insight_of hidden_lhs in
  let f_rhs = insight_of s.rhs_sys in
  List.for_all
    (fun alpha ->
      let obs = f_lhs.Insight.observe alpha in
      Value.equal obs (f_hidden.Insight.observe alpha)
      && Value.equal obs (f_rhs.Insight.observe (forward_exec s alpha)))
    (Dist.support d)

type d1_report = { distance : Rat.t; exact : bool; lhs_steps : int; rhs_steps : int }

let check_lemma_d1 s ~insight_of ~sched ~q1 ~depth =
  let sigma = Scheduler.bounded q1 sched in
  let sigma' = Scheduler.bounded (2 * q1) (forward_sched s sigma) in
  let da = Insight.apply (insight_of s.lhs_sys) s.lhs_sys sigma ~depth in
  let db = Insight.apply (insight_of s.rhs_sys) s.rhs_sys sigma' ~depth:(2 * depth) in
  let distance = Stat.sup_set_distance da db in
  { distance; exact = Rat.is_zero distance; lhs_steps = q1; rhs_steps = 2 * q1 }


(* Family form of Lemma D.1 / 4.29: one setup per index, all exact. *)
let check_lemma_d1_family ~window ~setup_of ~insight_of ~sched_of ~q1 ~depth =
  List.for_all
    (fun k ->
      let s = setup_of k in
      (check_lemma_d1 s ~insight_of ~sched:(sched_of k s) ~q1:(q1 k) ~depth:(depth k)).exact)
    window
