(** Sampled (Monte-Carlo) implementation checking.

    The exact checker {!Impl.approx_le} expands full execution cones — fine
    at the paper's bounded depths, exponential on large branching systems.
    This module estimates the same f-dist comparison from sampled runs:
    sound up to sampling error (a tolerance the caller supplies), never
    used for the exact [ε = 0] claims. The empirical distance converges to
    the exact sup-set distance at rate O(1/√samples). *)

open Cdse_psioa
open Cdse_sched

type verdict = {
  holds : bool;
  worst : float;  (** largest best-match empirical distance *)
  samples : int;
}

val approx_le_sampled :
  schema:Schema.t ->
  insight_of:(Psioa.t -> Insight.t) ->
  envs:Psioa.t list ->
  eps:float ->
  tolerance:float ->
  q1:int ->
  q2:int ->
  depth:int ->
  samples:int ->
  seed:int ->
  a:Psioa.t ->
  b:Psioa.t ->
  verdict
(** Like {!Impl.approx_le} with empirical f-dists: holds when every σ finds
    a candidate within [eps + tolerance]. *)

val empirical_distance :
  insight_of:(Psioa.t -> Insight.t) ->
  sched_a:Scheduler.t ->
  sched_b:Scheduler.t ->
  depth:int ->
  samples:int ->
  seed:int ->
  Psioa.t ->
  Psioa.t ->
  float
(** Empirical sup-set distance between two scheduled systems' observation
    distributions. *)
