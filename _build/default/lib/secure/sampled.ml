open Cdse_prob
open Cdse_psioa
open Cdse_sched

type verdict = { holds : bool; worst : float; samples : int }

let empirical_fdist ~insight composite sched ~depth ~samples ~rng =
  Measure.estimate_fdist composite sched ~observe:insight.Insight.observe ~rng ~samples ~depth

let float_tv a b =
  (* Merge the two empirical association lists and take the sup-set
     distance, as in Stat but over floats. *)
  let keys =
    List.sort_uniq Value.compare (List.map fst a @ List.map fst b)
  in
  let get l k = Option.value ~default:0.0 (List.assoc_opt k l) in
  let pos, neg =
    List.fold_left
      (fun (pos, neg) k ->
        let d = get a k -. get b k in
        if d >= 0.0 then (pos +. d, neg) else (pos, neg -. d))
      (0.0, 0.0) keys
  in
  Float.max pos neg

let empirical_distance ~insight_of ~sched_a ~sched_b ~depth ~samples ~seed a b =
  let rng = Rng.make seed in
  let da = empirical_fdist ~insight:(insight_of a) a sched_a ~depth ~samples ~rng in
  let db = empirical_fdist ~insight:(insight_of b) b sched_b ~depth ~samples ~rng in
  float_tv da db

let approx_le_sampled ~schema ~insight_of ~envs ~eps ~tolerance ~q1 ~q2 ~depth ~samples ~seed ~a
    ~b =
  let worst = ref 0.0 in
  let holds = ref true in
  List.iter
    (fun env ->
      let comp_a = Compose.pair env a in
      let comp_b = Compose.pair env b in
      List.iter
        (fun sigma1 ->
          let best =
            List.fold_left
              (fun best sigma2 ->
                Float.min best
                  (empirical_distance ~insight_of ~sched_a:sigma1 ~sched_b:sigma2 ~depth
                     ~samples ~seed comp_a comp_b))
              infinity
              (Schema.bounded_instantiate schema ~bound:q2 comp_b)
          in
          if best > !worst then worst := best;
          if best > eps +. tolerance then holds := false)
        (Schema.bounded_instantiate schema ~bound:q1 comp_a))
    envs;
  { holds = !holds; worst = !worst; samples }
