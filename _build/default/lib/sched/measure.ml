open Cdse_prob
open Cdse_psioa

(* Iteratively expand the cone frontier. [alive] holds executions the
   scheduler may still extend, [finished] the accumulated halting mass. *)
let exec_dist auto sched ~depth =
  let rec go step alive finished =
    if step = depth || alive = [] then
      Dist.make ~compare:Exec.compare (List.rev_append finished alive)
    else begin
      let alive', finished' =
        List.fold_left
          (fun (alive_acc, fin_acc) (e, p) ->
            let choice = Scheduler.validate_choice auto sched e in
            let halt_mass = Rat.mul p (Dist.deficit choice) in
            let fin_acc = if Rat.is_zero halt_mass then fin_acc else (e, halt_mass) :: fin_acc in
            let alive_acc =
              List.fold_left
                (fun acc (act, pa) ->
                  let eta = Psioa.step auto (Exec.lstate e) act in
                  List.fold_left
                    (fun acc (q', pq) ->
                      (Exec.extend e act q', Rat.mul p (Rat.mul pa pq)) :: acc)
                    acc (Dist.items eta))
                alive_acc (Dist.items choice)
            in
            (alive_acc, fin_acc))
          ([], finished) alive
      in
      go (step + 1) alive' finished'
    end
  in
  go 0 [ (Exec.init (Psioa.start auto), Rat.one) ] []

let cone_prob auto sched alpha =
  let rec go acc prefix = function
    | [] -> acc
    | (act, q') :: rest ->
        let choice = Scheduler.validate_choice auto sched prefix in
        let pa = Dist.prob choice act in
        if Rat.is_zero pa then Rat.zero
        else
          let eta = Psioa.step auto (Exec.lstate prefix) act in
          let pq = Dist.prob eta q' in
          if Rat.is_zero pq then Rat.zero
          else go (Rat.mul acc (Rat.mul pa pq)) (Exec.extend prefix act q') rest
  in
  if not (Value.equal (Exec.fstate alpha) (Psioa.start auto)) then Rat.zero
  else go Rat.one (Exec.init (Psioa.start auto)) (Exec.steps alpha)

let trace_dist auto sched ~depth =
  Dist.map
    ~compare:(Cdse_util.Order.list Action.compare)
    (Exec.trace ~sig_of:(Psioa.signature auto))
    (exec_dist auto sched ~depth)

let n_execs auto sched ~depth = Dist.size (exec_dist auto sched ~depth)

(* Probabilistic reachability: mass of completed executions that visit a
   state satisfying the predicate within the depth bound. *)
let reach_prob auto sched ~depth ~pred =
  let d = exec_dist auto sched ~depth in
  Rat.sum
    (List.filter_map
       (fun (e, p) -> if List.exists pred (Exec.states e) then Some p else None)
       (Dist.items d))

(* Expected number of scheduled steps of the completed execution. *)
let expected_steps auto sched ~depth =
  Dist.expect (fun e -> Rat.of_int (Exec.length e)) (exec_dist auto sched ~depth)

(* Monte-Carlo estimation: drive sampled runs instead of expanding the
   exact cone tree. The estimator trades exactness for scale — the exact
   computation is exponential in depth on branching systems (experiment
   E7), while sampling is linear in [samples × depth]. *)
let sample_exec auto sched ~rng ~depth =
  let rec go e n =
    if n = 0 then e
    else
      let choice = Scheduler.validate_choice auto sched e in
      match Dist.sample rng choice with
      | None -> e
      | Some act -> (
          let eta = Psioa.step auto (Exec.lstate e) act in
          match Dist.sample rng eta with
          | None -> e (* unreachable: transition measures are proper *)
          | Some q' -> go (Exec.extend e act q') (n - 1))
  in
  go (Exec.init (Psioa.start auto)) depth

let estimate_fdist auto sched ~observe ~rng ~samples ~depth =
  let counts = Hashtbl.create 64 in
  for _ = 1 to samples do
    let obs = observe (sample_exec auto sched ~rng ~depth) in
    Hashtbl.replace counts obs (1 + Option.value ~default:0 (Hashtbl.find_opt counts obs))
  done;
  Hashtbl.fold (fun obs n acc -> (obs, float_of_int n /. float_of_int samples) :: acc) counts []
