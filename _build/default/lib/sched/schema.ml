(** Scheduler schemas (Definition 3.2).

    A schema maps any PSIOA (or PCA) to a set of its schedulers. The
    checkers in {!Cdse_secure} quantify over the (finite) scheduler lists a
    schema produces for the automata at hand. *)

open Cdse_psioa

type t = { name : string; instantiate : Psioa.t -> Scheduler.t list }

let make ~name instantiate = { name; instantiate }

(** All the built-in deterministic/uniform schedulers, bounded at [b]. *)
let standard ~bound =
  make ~name:(Printf.sprintf "standard[%d]" bound) (fun a ->
      List.map (Scheduler.bounded bound)
        [ Scheduler.uniform a; Scheduler.first_enabled a; Scheduler.round_robin a ])

(** Deterministic sub-schema: the two deterministic standard schedulers.
    Used for exact (ε = 0) emulation claims where the matching scheduler
    on the specification side is found by schema search — a randomized σ
    generally needs a bespoke mate constructed from the simulation proof,
    which a finite canned schema cannot supply. *)
let deterministic ~bound =
  make ~name:(Printf.sprintf "deterministic[%d]" bound) (fun a ->
      List.map (Scheduler.bounded bound) [ Scheduler.first_enabled a; Scheduler.round_robin a ])

(** Oblivious (off-line) schema: one scheduler per scripted action sequence.
    Oblivious schedulers are creation-oblivious (Section 4.4): the script
    does not look at the state, hence not at which sub-automata exist. *)
let oblivious ~scripts =
  make ~name:"oblivious" (fun a -> List.map (Scheduler.oblivious a) scripts)

(** Closed-world off-line schema: scripted, but never firing free inputs
    (see {!Scheduler.oblivious_local}). *)
let oblivious_local ~scripts =
  make ~name:"oblivious-local" (fun a -> List.map (Scheduler.oblivious_local a) scripts)

let instantiate schema a = schema.instantiate a

(** Every scheduler a schema produces for [a], with the Definition 4.6
    bound applied. *)
let bounded_instantiate schema ~bound a =
  List.map (Scheduler.bounded bound) (schema.instantiate a)
