(** Balanced schedulers (Definitions 3.6 and 4.11).

    [σ S^{≤ε}_{E,f} σ'] holds when the two scheduled systems' observation
    measures (f-dists, Definition 3.5) are within sup-set distance [ε].
    For the finite measures of the bounded setting the Definition 3.6
    supremum collapses to {!Cdse_prob.Stat.sup_set_distance}. *)

open Cdse_prob
open Cdse_psioa

type verdict = { distance : Rat.t; within : bool }

val check :
  eps:Rat.t ->
  depth:int ->
  Insight.t * Psioa.t * Scheduler.t ->
  Insight.t * Psioa.t * Scheduler.t ->
  verdict
(** [check ~eps ~depth (f_A, E‖A, σ) (f_B, E‖B, σ')]: compute both f-dists
    exactly and compare. *)

val check_family :
  eps:(int -> Rat.t) ->
  depth:(int -> int) ->
  window:int list ->
  (int -> Insight.t * Psioa.t * Scheduler.t) ->
  (int -> Insight.t * Psioa.t * Scheduler.t) ->
  bool
(** Definition 4.11 over a window of family indices with index-dependent
    slack. *)
