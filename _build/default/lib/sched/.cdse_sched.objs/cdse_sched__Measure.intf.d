lib/sched/measure.mli: Action Cdse_prob Cdse_psioa Dist Exec Psioa Rat Rng Scheduler Value
