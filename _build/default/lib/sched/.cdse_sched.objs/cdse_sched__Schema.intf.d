lib/sched/schema.mli: Action Cdse_psioa Psioa Scheduler
