lib/sched/measure.ml: Action Cdse_prob Cdse_psioa Cdse_util Dist Exec Hashtbl List Option Psioa Rat Scheduler Value
