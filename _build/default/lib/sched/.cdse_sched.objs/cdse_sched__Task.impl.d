lib/sched/task.ml: Action Action_set Array Cdse_prob Cdse_psioa Dist Exec List Printf Psioa Scheduler Sigs String
