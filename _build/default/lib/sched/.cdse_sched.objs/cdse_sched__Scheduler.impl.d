lib/sched/scheduler.ml: Action Action_set Array Cdse_prob Cdse_psioa Dist Exec List Printf Psioa Scanf Sigs Value
