lib/sched/task.mli: Action Cdse_psioa Psioa Scheduler Value
