lib/sched/schema.ml: Cdse_psioa List Printf Psioa Scheduler
