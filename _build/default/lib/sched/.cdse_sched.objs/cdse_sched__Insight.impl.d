lib/sched/insight.ml: Action Action_set Cdse_prob Cdse_psioa Compose Dist Exec List Measure Printf Psioa Rat Stat String Value
