lib/sched/balance.ml: Cdse_prob Insight List Rat Stat
