lib/sched/balance.mli: Cdse_prob Cdse_psioa Insight Psioa Rat Scheduler
