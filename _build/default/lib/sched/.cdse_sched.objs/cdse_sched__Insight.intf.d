lib/sched/insight.mli: Cdse_prob Cdse_psioa Dist Exec Psioa Scheduler Value
