lib/sched/scheduler.mli: Action Cdse_prob Cdse_psioa Dist Exec Psioa Value
