(** Balanced schedulers (Definitions 3.6 and 4.11).

    [σ S^{≤ε}_{E,f} σ'] holds when the observation measures of the two
    scheduled systems are within sup-set distance [ε]. The observation
    measures are [f-dist] image measures (Definition 3.5); the sup over
    observation families collapses to {!Cdse_prob.Stat.sup_set_distance}
    for the finite measures the bounded setting produces. *)

open Cdse_prob

type verdict = { distance : Rat.t; within : bool }

(** [check ~eps ~depth (f_A, comp_A, σ)  (f_B, comp_B, σ')] computes both
    f-dists exactly and compares their distance against [ε]. *)
let check ~eps ~depth (fa, comp_a, sched_a) (fb, comp_b, sched_b) =
  let da = Insight.apply fa comp_a sched_a ~depth in
  let db = Insight.apply fb comp_b sched_b ~depth in
  let distance = Stat.sup_set_distance da db in
  { distance; within = Rat.compare distance eps <= 0 }

(** Family version (Definition 4.11): check at every index of a window,
    with index-dependent [ε]. *)
let check_family ~eps ~depth ~window instances_a instances_b =
  List.for_all
    (fun k ->
      let verdict = check ~eps:(eps k) ~depth:(depth k) (instances_a k) (instances_b k) in
      verdict.within)
    window
