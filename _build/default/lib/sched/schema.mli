(** Scheduler schemas (Definition 3.2).

    A schema maps any PSIOA (or PCA) to a set of its schedulers — the
    quantification domain of the implementation relations (Definition
    4.12). The checkers in {!Cdse_secure} search a schema's (finite)
    instances for the existential "there is a matching σ'". *)

open Cdse_psioa

type t = { name : string; instantiate : Psioa.t -> Scheduler.t list }

val make : name:string -> (Psioa.t -> Scheduler.t list) -> t

val standard : bound:int -> t
(** Uniform, first-enabled and round-robin, all [bound]-bounded
    (Definition 4.6). *)

val deterministic : bound:int -> t
(** First-enabled and round-robin only. Used for exact (ε = 0) emulation
    claims discharged by schema search: a randomized σ generally needs a
    bespoke matching scheduler constructed from the simulation proof,
    which a finite canned schema cannot supply. *)

val oblivious : scripts:Action.t list list -> t
(** Off-line schema: one scheduler per scripted action sequence
    ({!Scheduler.oblivious}). Creation-oblivious in the sense of
    Section 4.4. *)

val oblivious_local : scripts:Action.t list list -> t
(** Closed-world off-line schema ({!Scheduler.oblivious_local}): scripted,
    never firing free inputs. *)

val instantiate : t -> Psioa.t -> Scheduler.t list

val bounded_instantiate : t -> bound:int -> Psioa.t -> Scheduler.t list
(** Instances with the Definition 4.6 bound applied on top. *)
