(** Task-structured scheduling (Canetti et al., task-PIOAs).

    Section 4.4 of the paper {e relaxes} the task-scheduler restriction of
    the original bounded task-PIOA framework; this module implements the
    original notion so that the relaxation can be exercised and compared
    (ablation A3). A {e task} is an equivalence class of actions — here,
    actions sharing a name — and a task schedule is a sequence of tasks
    fixed in advance. At each step the next task fires if it is
    {e uniquely enabled} (exactly one enabled locally-controlled action in
    the class); otherwise the task is skipped. Task schedules are
    off-line, hence oblivious and creation-oblivious in the sense of
    Section 4.4. *)

open Cdse_psioa

type task
(** An equivalence class of actions. *)

val task_of_name : string -> task
(** All actions with the given name (any payload). *)

val task_of_action : Action.t -> task
(** The class of the action's name. *)

val mem : Action.t -> task -> bool
val task_name : task -> string

val enabled_in : Psioa.t -> Value.t -> task -> Action.t list
(** The enabled locally-controlled actions of the class at a state. *)

type schedule = task list

val scheduler : Psioa.t -> schedule -> Scheduler.t
(** The task scheduler: deterministic, off-line. At step [i], the [i]-th
    task fires iff uniquely enabled; a non-uniquely-enabled task halts the
    run (the classic task-PIOA semantics requires the automaton to be
    "action-deterministic" per task — halting surfaces violations instead
    of hiding them). *)

val scheduler_skipping : Psioa.t -> schedule -> Scheduler.t
(** Lenient variant: tasks that are not uniquely enabled are skipped
    rather than halting (the remaining schedule shifts left). *)

val is_action_deterministic :
  ?max_states:int -> ?max_depth:int -> Psioa.t -> schedule -> bool
(** Every task of the schedule is enabled at most once per reachable
    state — the side condition under which {!scheduler} and
    {!scheduler_skipping} agree on fired tasks. *)
