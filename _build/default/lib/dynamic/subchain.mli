(** Off-chain subchannels ("subchains") — the dynamic workload of the
    paper's introduction (Platypus-style offchain protocols, [13]).

    A subchain is created at run time by the {!Manager}, accumulates
    transactions submitted by the environment, and on [close] settles its
    balance to the {!Ledger} and {e destroys itself}: its settle output is
    its last action, after which its signature is empty and configuration
    reduction (Definition 2.12) removes it. *)

open Cdse_psioa

val name : int -> string
(** Identifier of the [i]-th subchain ("sub0", "sub1", …). *)

val tx : int -> int -> Action.t
(** [tx i v]: submit a transaction of value [v] to subchain [i] (EI). *)

val close : int -> Action.t
(** [close i]: ask subchain [i] to settle (EI). *)

val settle : int -> int -> Action.t
(** [settle i total]: the settlement published to the ledger (output of the
    subchain, input of the ledger). *)

val make : ?tx_values:int list -> int -> Psioa.t
(** The [i]-th subchain automaton. [tx_values] is the per-transaction value
    alphabet (default [[1; 2]]). *)
