(** Subchain manager: opens subchains at run time.

    Each [mgr.open] output is mapped, at the PCA level, to the creation of
    the next subchain automaton (Definition 2.14's φ). *)

open Cdse_psioa

let open_action = Action.make "mgr.open"

let make ~max_open () =
  let state k = Value.tag "mgr" (Value.int k) in
  let signature q =
    match q with
    | Value.Tag ("mgr", Value.Int k) when k < max_open ->
        Sigs.make ~input:Action_set.empty
          ~output:(Action_set.of_list [ open_action ])
          ~internal:Action_set.empty
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("mgr", Value.Int k) when k < max_open && Action.equal a open_action ->
        Some (Vdist.dirac (state (k + 1)))
    | _ -> None
  in
  Psioa.make ~name:"mgr" ~start:(state 0) ~signature ~transition

let opened = function
  | Value.Tag ("mgr", Value.Int k) -> Some k
  | _ -> None
