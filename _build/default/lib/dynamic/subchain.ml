open Cdse_psioa

let name i = Printf.sprintf "sub%d" i
let tx i v = Action.make ~payload:(Value.int v) (name i ^ ".tx")
let close i = Action.make (name i ^ ".close")
let settle i total = Action.make ~payload:(Value.pair (Value.int i) (Value.int total)) "ledger.settle"

let sig_io ?(i = []) ?(o = []) () =
  Sigs.make ~input:(Action_set.of_list i) ~output:(Action_set.of_list o)
    ~internal:Action_set.empty

let make ?(tx_values = [ 1; 2 ]) i =
  let open_state total = Value.tag "open" (Value.int total) in
  let closing total = Value.tag "closing" (Value.int total) in
  let dead = Value.tag "dead" Value.unit in
  let signature q =
    match q with
    | Value.Tag ("open", _) -> sig_io ~i:(close i :: List.map (tx i) tx_values) ()
    | Value.Tag ("closing", Value.Int total) -> sig_io ~o:[ settle i total ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("open", Value.Int total) ->
        if Action.equal a (close i) then Some (Vdist.dirac (closing total))
        else
          List.find_map
            (fun v -> if Action.equal a (tx i v) then Some (Vdist.dirac (open_state (total + v))) else None)
            tx_values
    | Value.Tag ("closing", Value.Int total) when Action.equal a (settle i total) ->
        Some (Vdist.dirac dead)
    | _ -> None
  in
  Psioa.make ~name:(name i) ~start:(open_state 0) ~signature ~transition
