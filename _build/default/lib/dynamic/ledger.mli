(** On-chain settlement ledger.

    The static member of the dynamic subchain system: receives
    [ledger.settle (i, amount)] inputs from dying subchains, accumulates
    the total, and announces it via [ledger.report (total)] after each
    settlement. Input-enabled on settlements at every state, so
    settlements may race with reports. *)

open Cdse_psioa

val settle_name : string
(** The settlement action name ("ledger.settle"). *)

val report : int -> Action.t
(** [report total] — the announcement output. *)

val settle_inputs : n_subchains:int -> max_total:int -> Action.t list
(** The finite settlement payload universe the signature advertises:
    [(i, s)] for [i < n_subchains], [s ≤ max_total]. Settlements outside
    this universe fire as free outputs and are not recorded (callers size
    [max_total] to dominate reachable balances). *)

val make : n_subchains:int -> max_total:int -> unit -> Psioa.t

val total_of : Value.t -> int option
(** The recorded total of a ledger state. *)
