(** Subchain manager: the creating member of the dynamic system.

    Each [mgr.open] output is mapped at the PCA level to the creation of
    the next subchain (the φ of Definition 2.14). When its budget is
    exhausted its signature becomes empty and configuration reduction
    (Definition 2.12) destroys it. *)

open Cdse_psioa

val open_action : Action.t

val make : max_open:int -> unit -> Psioa.t

val opened : Value.t -> int option
(** How many subchains a manager state has opened. *)
