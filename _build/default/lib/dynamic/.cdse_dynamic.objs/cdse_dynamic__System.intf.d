lib/dynamic/system.mli: Cdse_config Cdse_prob Cdse_psioa Pca Rng Value
