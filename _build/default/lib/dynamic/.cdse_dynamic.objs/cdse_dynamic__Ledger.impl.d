lib/dynamic/ledger.ml: Action Action_set Cdse_psioa Fun List Psioa Sigs String Subchain Value Vdist
