lib/dynamic/manager.ml: Action Action_set Cdse_psioa Psioa Sigs Value Vdist
