lib/dynamic/committee.mli: Action Cdse_config Cdse_psioa Cdse_secure Pca Psioa Value
