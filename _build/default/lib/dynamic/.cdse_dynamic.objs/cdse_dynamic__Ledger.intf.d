lib/dynamic/ledger.mli: Action Cdse_psioa Psioa Value
