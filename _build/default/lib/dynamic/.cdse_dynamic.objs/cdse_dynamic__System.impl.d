lib/dynamic/system.ml: Action Action_set Cdse_config Cdse_prob Cdse_psioa Config Dist Ledger List Manager Option Pca Psioa Registry Rng Scanf Sigs String Subchain
