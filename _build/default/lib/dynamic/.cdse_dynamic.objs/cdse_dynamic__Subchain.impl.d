lib/dynamic/subchain.ml: Action Action_set Cdse_psioa List Printf Psioa Sigs Value Vdist
