lib/dynamic/subchain.mli: Action Cdse_psioa Psioa
