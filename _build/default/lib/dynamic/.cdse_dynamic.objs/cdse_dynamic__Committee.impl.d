lib/dynamic/committee.ml: Action Action_set Astring Cdse_config Cdse_psioa Cdse_secure Config Fun Int List Pca Printf Psioa Registry Sigs String Value Vdist
