lib/dynamic/manager.mli: Action Cdse_psioa Psioa Value
