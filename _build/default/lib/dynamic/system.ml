open Cdse_prob
open Cdse_psioa
open Cdse_config

let build ?(n_subchains = 3) ?(tx_values = [ 1; 2 ]) ?(max_total = 12) () =
  let registry =
    Registry.of_list
      (Manager.make ~max_open:n_subchains ()
      :: Ledger.make ~n_subchains ~max_total ()
      :: List.init n_subchains (fun i -> Subchain.make ~tx_values i))
  in
  let created config a =
    if Action.equal a Manager.open_action then
      match Option.bind (Config.state_of config "mgr") Manager.opened with
      | Some k when k < n_subchains -> [ Subchain.name k ]
      | _ -> []
    else []
  in
  Pca.make ~name:"subchain-system" ~registry
    ~init:(Config.start_of registry [ "mgr"; "ledger" ])
    ~created ()

let alive_subchains pca q =
  List.filter_map
    (fun id -> Scanf.sscanf_opt id "sub%d" (fun i -> i))
    (Pca.alive pca q)

let ledger_total pca q =
  match Option.bind (Config.state_of (Pca.config_of pca q) "ledger") Ledger.total_of with
  | Some t -> t
  | None -> 0

type drive_stats = {
  steps_taken : int;
  creations : int;
  destructions : int;
  max_alive : int;
  final_total : int;
}

let drive ?(restart = false) pca ~rng ~steps =
  let auto = Pca.psioa pca in
  let rec go q n stats =
    if n = 0 then { stats with final_total = stats.final_total + ledger_total pca q }
    else
      (* Closed-world driving: locally controlled actions fire on their
         own; of the input actions the driver only plays the environment's
         (subchain tx/close). The ledger's settle inputs are NOT candidates
         — they may only occur synchronised with a closing subchain's
         output, in which case they already appear among the local
         actions. *)
      let sg = Psioa.signature auto q in
      let env_inputs =
        Action_set.filter
          (fun a ->
            String.length (Cdse_psioa.Action.name a) >= 3
            && String.sub (Cdse_psioa.Action.name a) 0 3 = "sub")
          (Sigs.input sg)
      in
      let acts = Action_set.elements (Action_set.union (Sigs.local sg) env_inputs) in
      match acts with
      | [] ->
          if restart then
            go (Psioa.start auto) n
              { stats with final_total = stats.final_total + ledger_total pca q }
          else { stats with final_total = stats.final_total + ledger_total pca q }
      | _ ->
          let a = Rng.pick rng acts in
          let q' =
            match Dist.sample rng (Psioa.step auto q a) with
            | Some q' -> q'
            | None -> q
          in
          (* A single intrinsic transition can create and destroy at once
             (e.g. the manager expires while spawning its last subchain),
             so creation and destruction are counted by set difference. *)
          let before = Pca.alive pca q and after = Pca.alive pca q' in
          let born = List.filter (fun id -> not (List.mem id before)) after in
          let died = List.filter (fun id -> not (List.mem id after)) before in
          let stats =
            { stats with
              steps_taken = stats.steps_taken + 1;
              creations = stats.creations + List.length born;
              destructions = stats.destructions + List.length died;
              max_alive = max stats.max_alive (List.length after) }
          in
          go q' (n - 1) stats
  in
  go (Psioa.start auto) steps
    { steps_taken = 0; creations = 0; destructions = 0; max_alive = 0; final_total = 0 }
