(** On-chain settlement ledger.

    Receives [ledger.settle (i, amount)] inputs from dying subchains,
    accumulates the total, and announces it through [ledger.report (total)]
    after each settlement. The automaton is input-enabled on settlements at
    every state — settlements can race with reports. *)

open Cdse_psioa

let settle_name = "ledger.settle"
let report total = Action.make ~payload:(Value.int total) "ledger.report"

(** Settlement universe: the finite payload set the signature advertises,
    derived from the subchain count and maximum balance. *)
let settle_inputs ~n_subchains ~max_total =
  List.concat_map
    (fun i -> List.init (max_total + 1) (fun s -> Subchain.settle i s))
    (List.init n_subchains Fun.id)

let make ~n_subchains ~max_total () =
  let state ~total ~dirty = Value.tag "ledger" (Value.pair (Value.int total) (Value.bool dirty)) in
  let inputs = settle_inputs ~n_subchains ~max_total in
  let signature q =
    match q with
    | Value.Tag ("ledger", Value.Pair (Value.Int total, Value.Bool dirty)) ->
        Sigs.make
          ~input:(Action_set.of_list inputs)
          ~output:(if dirty then Action_set.of_list [ report total ] else Action_set.empty)
          ~internal:Action_set.empty
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("ledger", Value.Pair (Value.Int total, Value.Bool dirty)) -> (
        match Action.payload a with
        | Value.Pair (Value.Int _, Value.Int s) when String.equal (Action.name a) settle_name ->
            Some (Vdist.dirac (state ~total:(total + s) ~dirty:true))
        | Value.Int t when dirty && t = total && String.equal (Action.name a) "ledger.report" ->
            Some (Vdist.dirac (state ~total ~dirty:false))
        | _ -> None)
    | _ -> None
  in
  Psioa.make ~name:"ledger" ~start:(state ~total:0 ~dirty:false) ~signature ~transition

(** Total recorded in a ledger state. *)
let total_of = function
  | Value.Tag ("ledger", Value.Pair (Value.Int total, _)) -> Some total
  | _ -> None
