(** The assembled dynamic subchain system: a PCA whose live automaton set
    changes at run time.

    Initial configuration: manager + ledger. Each [mgr.open] creates the
    next subchain (constraint φ of Definition 2.14); each subchain destroys
    itself on settlement (reduction, Definition 2.12). This is the workload
    behind experiment E8 and the [dynamic_subchain] example. *)

open Cdse_prob
open Cdse_psioa
open Cdse_config

val build : ?n_subchains:int -> ?tx_values:int list -> ?max_total:int -> unit -> Pca.t
(** The canonical PCA. [n_subchains] bounds how many subchains can ever be
    created (registry size and manager budget); [max_total] bounds the
    ledger's advertised settlement payloads (must dominate any reachable
    subchain balance the driver produces). *)

val alive_subchains : Pca.t -> Value.t -> int list
(** Indices of currently live subchains in a PCA state. *)

val ledger_total : Pca.t -> Value.t -> int
(** The ledger's recorded total in a PCA state. *)

type drive_stats = {
  steps_taken : int;
  creations : int;
  destructions : int;
  max_alive : int;
  final_total : int;
}

val drive : ?restart:bool -> Pca.t -> rng:Rng.t -> steps:int -> drive_stats
(** Random closed-world driver: repeatedly samples an enabled
    locally-controlled or environment-input action (opens, transactions,
    closes, settlements, reports) and steps the PCA, tracking
    creation/destruction statistics. When the system quiesces (every
    subchain settled, manager expired) the driver stops — or, with
    [restart] (default false), resets to the initial configuration and
    continues for the full step budget (episodic churn, experiment E8).
    [final_total] accumulates across episodes. *)
