lib/crypto/primitives.ml: Cdse_psioa Cdse_util List Value
