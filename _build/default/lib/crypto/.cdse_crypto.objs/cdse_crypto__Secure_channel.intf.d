lib/crypto/secure_channel.mli: Action Cdse_psioa Cdse_secure Dummy Psioa Structured
