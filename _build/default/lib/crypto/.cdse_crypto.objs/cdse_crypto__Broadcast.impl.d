lib/crypto/broadcast.ml: Action Action_set Cdse_psioa Cdse_secure Fun Int List Printf Psioa Sigs Structured Value Vdist
