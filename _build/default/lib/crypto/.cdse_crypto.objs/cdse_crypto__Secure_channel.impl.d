lib/crypto/secure_channel.ml: Action Action_set Cdse_psioa Cdse_secure Dummy Fun List Option Primitives Psioa Sigs Structured Value Vdist
