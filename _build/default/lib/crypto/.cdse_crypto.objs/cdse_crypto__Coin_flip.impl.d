lib/crypto/coin_flip.ml: Action Action_set Cdse_psioa Cdse_secure Fun Int List Primitives Printf Psioa Sigs String Structured Value Vdist
