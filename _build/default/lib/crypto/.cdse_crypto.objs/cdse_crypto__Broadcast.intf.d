lib/crypto/broadcast.mli: Cdse_psioa Cdse_secure Psioa Structured
