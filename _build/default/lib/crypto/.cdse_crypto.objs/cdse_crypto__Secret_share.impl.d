lib/crypto/secret_share.ml: Action Action_set Cdse_psioa Cdse_secure Dummy Fun List Primitives Psioa Secure_channel Sigs Structured Value Vdist
