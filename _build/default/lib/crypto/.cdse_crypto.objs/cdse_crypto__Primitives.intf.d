lib/crypto/primitives.mli: Cdse_psioa
