lib/crypto/coin_flip.mli: Cdse_psioa Cdse_secure Psioa Structured
