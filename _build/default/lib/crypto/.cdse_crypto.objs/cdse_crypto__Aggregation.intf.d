lib/crypto/aggregation.mli: Cdse_psioa Cdse_secure Psioa Structured
