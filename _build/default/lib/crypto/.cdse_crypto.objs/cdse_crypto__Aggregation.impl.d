lib/crypto/aggregation.ml: Action Action_set Cdse_psioa Cdse_secure List Printf Psioa Secure_channel Sigs Structured Value Vdist
