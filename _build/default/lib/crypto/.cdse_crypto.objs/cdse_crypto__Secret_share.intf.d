lib/crypto/secret_share.mli: Cdse_psioa Cdse_secure Dummy Psioa Structured
