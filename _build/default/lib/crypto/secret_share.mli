(** 2-of-2 XOR secret sharing: real dealer vs ideal functionality.

    The dealer receives a secret, splits it into two one-time-pad shares
    [(r, s ⊕ r)], and the adversary corrupts one party, seeing that
    party's share. A single share is uniform regardless of the secret, so
    the ideal functionality (which leaks nothing but the sharing event)
    is emulated with slack exactly 0. The [transparent] variant leaks the
    secret itself as the "share" — the falsification fixture.

    Interfaces for an instance [n] over [width]-bit secrets:
    - environment: [n.input(s)] (EI), [n.done] (EO);
    - adversary: [n.share(v)] (AO, real), [n.leak] (AO, ideal),
      [n.ok] (AI); its report to the environment: [n.guess(v)]. *)

open Cdse_psioa
open Cdse_secure

val real : ?width:int -> ?corrupt:[ `First | `Second ] -> string -> Structured.t
(** The dealer; [corrupt] selects which share the adversary sees
    (default [`First], i.e. the raw pad [r]). *)

val transparent : ?width:int -> string -> Structured.t
(** Broken dealer: the leaked "share" is the secret. *)

val ideal : ?width:int -> string -> Structured.t

val adversary : ?width:int -> string -> Psioa.t
(** Observes the corrupted share, reports it as a guess, acknowledges. *)

val simulator : ?width:int -> string -> Psioa.t
(** Fakes a uniform share on the ideal leak. *)

val env_guess : ?width:int -> secret:int -> string -> Psioa.t
(** Sends the secret; accepts iff the adversary's guess equals it. *)

val dsim : ?width:int -> g:Dummy.renaming -> string -> Psioa.t
(** Dummy-adversary simulator for the Theorem 4.30 construction: on the
    ideal leak, fakes a uniform share and republishes it on the renamed
    interface [g(share(v))]; forwards [g(ok)] into the functionality. *)
