(** Secure message transmission: real protocol vs ideal functionality.

    The flagship Section 4.9 example. The {e real} protocol encrypts with a
    one-time pad and hands the ciphertext to the adversary, who controls
    delivery (and may tell the environment anything it learnt). The
    {e ideal} functionality leaks only that a message was sent. The
    {e simulator} turns an attack on the ideal world into the same
    observations by faking a uniformly random ciphertext — exact (ε = 0)
    because the pad is information-theoretically secure.

    Interfaces for an instance named [n] over [width]-bit messages:
    - environment: [n.send(m)] (EI), [n.recv(m)] (EO);
    - adversary: [n.ct(c)] (AO, real), [n.leak] (AO, ideal), [n.deliver]
      (AI);
    - the adversary's own report to the environment: [n.guess(c)].

    A {e leaky} variant ships the plaintext as "ciphertext" — the
    falsification fixture: emulation must fail against the guessing
    environment. *)

open Cdse_psioa
open Cdse_secure

val real : ?width:int -> string -> Structured.t
(** OTP-encrypting real protocol. *)

val real_leaky : ?width:int -> string -> Structured.t
(** Broken real protocol: the "ciphertext" is the plaintext. *)

val real_weak : ?width:int -> string -> Structured.t
(** Slightly-broken pad: the zero key is never drawn, so the
    plaintext-equal ciphertext never occurs. The emulation slack against
    {!ideal} is exactly [1/2^width] — nonzero but negligible in the width:
    the canonical ε > 0 instance of the approximate relation, and a
    family with [ε(k) = 2^{-k}] when indexed by width. *)

val ideal : ?width:int -> string -> Structured.t
(** The ideal functionality: leaks only message presence. *)

val adversary : ?width:int -> ?rename:(string -> string) -> string -> Psioa.t
(** Ciphertext-observing adversary for the real protocol: records the
    ciphertext, reports it to the environment via [guess], and delivers.
    [rename] is applied to the {e protocol-facing} adversary actions
    ([ct]/[deliver]) — used when attaching it behind a dummy renaming. *)

val simulator : ?width:int -> ?rename:(string -> string) -> string -> Psioa.t
(** Simulator for {!ideal} matching {!adversary}: on [leak], draws a
    uniform fake ciphertext, reports it as [guess], and delivers. *)

val dsim : ?width:int -> g:Dummy.renaming -> string -> Psioa.t
(** The dummy-adversary simulator used by the Theorem 4.30 construction:
    on the ideal [leak], fakes a ciphertext and republishes it on the
    renamed interface [g(n.ct(c))]; accepts [g(n.deliver)] and forwards it
    into the functionality. *)

(** {2 Reusable attack-surface skeletons}

    The "observe a value, report it to the environment, acknowledge to the
    protocol" pattern recurs across protocols (secret sharing reuses it
    verbatim). Both skeletons stay permanently receptive and re-arm on
    fresh observations — required by the pointwise Definition 4.24
    conditions (see the implementation comments). *)

val reporter :
  name:string ->
  inputs:Action.t list ->
  on_input:(Action.t -> int option) ->
  guess:(int -> Action.t) ->
  deliver_act:Action.t ->
  Psioa.t
(** Adversary skeleton: on an observed value [v] (decoded by [on_input]),
    owes one [guess v] report and one [deliver_act] acknowledgement. *)

val simulator_with :
  name:string ->
  leak:Action.t ->
  guess_name:string ->
  deliver_act:Action.t ->
  width:int ->
  Psioa.t
(** Simulator skeleton: on [leak], draws a uniform [width]-bit fake value
    and behaves like {!reporter} with it. *)

val env_completion : ?width:int -> msg:int -> string -> Psioa.t
(** Functional environment: sends [msg], accepts when it is delivered. *)

val env_guess : ?width:int -> msg:int -> string -> Psioa.t
(** Distinguishing environment: sends [msg] and accepts iff the adversary's
    [guess] equals the plaintext — the secrecy game. *)

(** {2 Multi-round sessions}

    A second family axis: [rounds] sequential transmissions, each with a
    fresh one-time pad. Per-round pads are independent, so the session
    emulates the ideal session with slack exactly 0 at every (width,
    rounds) index — composability over time, checked directly. The
    single-shot {!adversary} and {!simulator} already re-arm on fresh
    ciphertexts/leaks and work unchanged for sessions. *)

val session_real : ?width:int -> rounds:int -> string -> Structured.t
val session_ideal : ?width:int -> rounds:int -> string -> Structured.t

val env_session : ?width:int -> rounds:int -> msg:int -> string -> Psioa.t
(** Sends [msg] each round; accepts iff the adversary's guess equals the
    plaintext in {e every} round (success [2^{-width·rounds}] in both
    worlds). *)
