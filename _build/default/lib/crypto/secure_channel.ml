open Cdse_psioa
open Cdse_secure

let act = Action.make
let acti name m = Action.make ~payload:(Value.int m) name

let sig_io ?(i = []) ?(o = []) ?(h = []) () =
  Sigs.make ~input:(Action_set.of_list i) ~output:(Action_set.of_list o)
    ~internal:(Action_set.of_list h)

let msgs width = List.init (1 lsl width) Fun.id

(* ------------------------------------------------------------- real side *)

(* States: keygen → hold key → got message → ciphertext out → await
   delivery → deliver → done. *)
let real_with ~keygen ~cipher ?(width = 1) n =
  let send m = acti (n ^ ".send") m in
  let ct c = acti (n ^ ".ct") c in
  let deliver = act (n ^ ".deliver") in
  let recv m = acti (n ^ ".recv") m in
  let kg = act (n ^ ".keygen") in
  let q0 = Value.tag "sc0" Value.unit in
  let q1 k = Value.tag "sc1" (Value.int k) in
  let q2 k m = Value.tag "sc2" (Value.pair (Value.int k) (Value.int m)) in
  let q3 m = Value.tag "sc3" (Value.int m) in
  let q4 m = Value.tag "sc4" (Value.int m) in
  let q5 = Value.tag "sc5" Value.unit in
  let signature q =
    match q with
    | Value.Tag ("sc0", _) -> sig_io ~h:[ kg ] ()
    | Value.Tag ("sc1", _) -> sig_io ~i:(List.map send (msgs width)) ()
    | Value.Tag ("sc2", Value.Pair (Value.Int k, Value.Int m)) -> sig_io ~o:[ ct (cipher ~key:k m) ] ()
    | Value.Tag ("sc3", _) -> sig_io ~i:[ deliver ] ()
    | Value.Tag ("sc4", Value.Int m) -> sig_io ~o:[ recv m ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("sc0", _) when Action.equal a kg ->
        Some (Vdist.uniform (List.map q1 (keygen ~width)))
    | Value.Tag ("sc1", Value.Int k) ->
        List.find_map
          (fun m -> if Action.equal a (send m) then Some (Vdist.dirac (q2 k m)) else None)
          (msgs width)
    | Value.Tag ("sc2", Value.Pair (Value.Int k, Value.Int m))
      when Action.equal a (ct (cipher ~key:k m)) ->
        Some (Vdist.dirac (q3 m))
    | Value.Tag ("sc3", Value.Int m) when Action.equal a deliver -> Some (Vdist.dirac (q4 m))
    | Value.Tag ("sc4", Value.Int m) when Action.equal a (recv m) -> Some (Vdist.dirac q5)
    | _ -> None
  in
  let psioa = Psioa.make ~name:n ~start:q0 ~signature ~transition in
  let eact q =
    match q with
    | Value.Tag ("sc1", _) -> Action_set.of_list (List.map send (msgs width))
    | Value.Tag ("sc4", Value.Int m) -> Action_set.of_list [ recv m ]
    | _ -> Action_set.empty
  in
  Structured.make psioa ~eact

let real ?(width = 1) n =
  real_with ~width n
    ~keygen:(fun ~width -> msgs width)
    ~cipher:(fun ~key m -> Primitives.xor_encrypt ~key ~width m)

(* The falsification fixture: key fixed to 0, i.e. ciphertext = message. *)
let real_leaky ?(width = 1) n =
  real_with ~width n ~keygen:(fun ~width:_ -> [ 0 ]) ~cipher:(fun ~key m -> m lor (key * 0))

(* A slightly-broken pad: the zero key is never drawn, so the ciphertext
   equal to the plaintext never occurs. The statistical distance to the
   ideal world is exactly 1/2^width — a nonzero but negligible-in-width
   slack, the canonical ε > 0 instance of Definition 4.12. *)
let real_weak ?(width = 1) n =
  real_with ~width n
    ~keygen:(fun ~width -> List.filter (fun k -> k <> 0) (msgs width))
    ~cipher:(fun ~key m -> Primitives.xor_encrypt ~key ~width m)

(* ------------------------------------------------------------ ideal side *)

let ideal ?(width = 1) n =
  let send m = acti (n ^ ".send") m in
  let leak = act (n ^ ".leak") in
  let deliver = act (n ^ ".deliver") in
  let recv m = acti (n ^ ".recv") m in
  let q0 = Value.tag "id0" Value.unit in
  let q1 m = Value.tag "id1" (Value.int m) in
  let q2 m = Value.tag "id2" (Value.int m) in
  let q3 m = Value.tag "id3" (Value.int m) in
  let q4 = Value.tag "id4" Value.unit in
  let signature q =
    match q with
    | Value.Tag ("id0", _) -> sig_io ~i:(List.map send (msgs width)) ()
    | Value.Tag ("id1", _) -> sig_io ~o:[ leak ] ()
    | Value.Tag ("id2", _) -> sig_io ~i:[ deliver ] ()
    | Value.Tag ("id3", Value.Int m) -> sig_io ~o:[ recv m ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("id0", _) ->
        List.find_map
          (fun m -> if Action.equal a (send m) then Some (Vdist.dirac (q1 m)) else None)
          (msgs width)
    | Value.Tag ("id1", Value.Int m) when Action.equal a leak -> Some (Vdist.dirac (q2 m))
    | Value.Tag ("id2", Value.Int m) when Action.equal a deliver -> Some (Vdist.dirac (q3 m))
    | Value.Tag ("id3", Value.Int m) when Action.equal a (recv m) -> Some (Vdist.dirac q4)
    | _ -> None
  in
  let psioa = Psioa.make ~name:n ~start:q0 ~signature ~transition in
  let eact q =
    match q with
    | Value.Tag ("id0", _) -> Action_set.of_list (List.map send (msgs width))
    | Value.Tag ("id3", Value.Int m) -> Action_set.of_list [ recv m ]
    | _ -> Action_set.empty
  in
  Structured.make psioa ~eact

(* --------------------------------------------------- adversary & friends *)

(* Generic reporter skeleton: once armed with a ciphertext c, it owes a
   guess(c) report to the environment and a delivery to the protocol.
   It never terminates and re-arms (flags reset) on every fresh
   ciphertext: Definition 4.24's pointwise [AI_A ⊆ out(Adv)] condition
   quantifies over every reachable composite state — including states
   reached through free-input firings — so the adversary must stay
   receptive and regain its delivery capability whenever the protocol
   actually emits. *)
let reporter ~name ~inputs ~on_input ~guess ~deliver_act =
  let idle = Value.tag "rp0" Value.unit in
  let armed c g d = Value.tag "rp1" (Value.list [ Value.int c; Value.bool g; Value.bool d ]) in
  let signature q =
    match q with
    | Value.Tag ("rp0", _) -> sig_io ~i:inputs ()
    | Value.Tag ("rp1", Value.List [ Value.Int c; Value.Bool g; Value.Bool d ]) ->
        sig_io ~i:inputs
          ~o:((if g then [] else [ guess c ]) @ if d then [] else [ deliver_act ])
          ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("rp0", _) -> Option.map (fun c -> Vdist.dirac (armed c false false)) (on_input a)
    | Value.Tag ("rp1", Value.List [ Value.Int c; Value.Bool g; Value.Bool d ]) ->
        if (not g) && Action.equal a (guess c) then Some (Vdist.dirac (armed c true d))
        else if (not d) && Action.equal a deliver_act then Some (Vdist.dirac (armed c g true))
        else Option.map (fun c' -> Vdist.dirac (armed c' false false)) (on_input a)
    | _ -> None
  in
  Psioa.make ~name ~start:idle ~signature ~transition

let adversary ?(width = 1) ?(rename = Fun.id) n =
  let ct c = Action.make ~payload:(Value.int c) (rename (n ^ ".ct")) in
  let deliver = act (rename (n ^ ".deliver")) in
  let guess c = acti (n ^ ".guess") c in
  reporter ~name:(n ^ ".adv")
    ~inputs:(List.map ct (msgs width))
    ~on_input:(fun a ->
      List.find_map
        (fun c -> if Action.equal a (ct c) then Some c else None)
        (msgs width))
    ~guess ~deliver_act:deliver

(* The simulator draws the fake ciphertext directly in its (probabilistic)
   leak-input transition — a separate internal sampling step would open a
   window in which the Definition 4.24 delivery obligation is unmet — and
   then behaves like the reporter: never terminating, re-armed by fresh
   leaks. *)
let simulator_with ~name ~leak ~guess_name ~deliver_act ~width =
  let q0 = Value.tag "sm0" Value.unit in
  let armed c g d = Value.tag "sm2" (Value.list [ Value.int c; Value.bool g; Value.bool d ]) in
  let fresh = Vdist.uniform (List.map (fun c -> armed c false false) (msgs width)) in
  let guess c = acti guess_name c in
  let signature q =
    match q with
    | Value.Tag ("sm0", _) -> sig_io ~i:[ leak ] ()
    | Value.Tag ("sm2", Value.List [ Value.Int c; Value.Bool g; Value.Bool d ]) ->
        sig_io ~i:[ leak ]
          ~o:((if g then [] else [ guess c ]) @ if d then [] else [ deliver_act ])
          ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("sm0", _) when Action.equal a leak -> Some fresh
    | Value.Tag ("sm2", Value.List [ Value.Int c; Value.Bool g; Value.Bool d ]) ->
        if Action.equal a leak then Some fresh
        else if (not g) && Action.equal a (guess c) then Some (Vdist.dirac (armed c true d))
        else if (not d) && Action.equal a deliver_act then Some (Vdist.dirac (armed c g true))
        else None
    | _ -> None
  in
  Psioa.make ~name ~start:q0 ~signature ~transition

let simulator ?(width = 1) ?(rename = Fun.id) n =
  simulator_with ~name:(n ^ ".sim")
    ~leak:(act (rename (n ^ ".leak")))
    ~guess_name:(n ^ ".guess")
    ~deliver_act:(act (rename (n ^ ".deliver")))
    ~width

(* Dummy-adversary simulator for Theorem 4.30: like the simulator, but its
   "report" is the renamed ciphertext g(ct(c)) handed to the outer
   adversary, and it listens for g(deliver). *)
let dsim ?(width = 1) ~g n =
  let leak = act (n ^ ".leak") in
  let deliver = act (n ^ ".deliver") in
  let g_ct c = g.Dummy.apply (acti (n ^ ".ct") c) in
  let g_deliver = g.Dummy.apply (act (n ^ ".deliver")) in
  let fake = act (n ^ ".dsim.fake") in
  let q0 = Value.tag "ds0" Value.unit in
  let q1 = Value.tag "ds1" Value.unit in
  let q2 c = Value.tag "ds2" (Value.int c) in
  let q3 = Value.tag "ds3" Value.unit in
  let q4 = Value.tag "ds4" Value.unit in
  let q5 = Value.tag "ds5" Value.unit in
  let signature q =
    match q with
    | Value.Tag ("ds0", _) -> sig_io ~i:[ leak ] ()
    | Value.Tag ("ds1", _) -> sig_io ~h:[ fake ] ()
    | Value.Tag ("ds2", Value.Int c) -> sig_io ~o:[ g_ct c ] ~i:[ g_deliver ] ()
    | Value.Tag ("ds3", _) -> sig_io ~i:[ g_deliver ] ()
    | Value.Tag ("ds4", _) -> sig_io ~o:[ deliver ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("ds0", _) when Action.equal a leak -> Some (Vdist.dirac q1)
    | Value.Tag ("ds1", _) when Action.equal a fake ->
        Some (Vdist.uniform (List.map q2 (msgs width)))
    | Value.Tag ("ds2", Value.Int c) ->
        if Action.equal a (g_ct c) then Some (Vdist.dirac q3)
        else if Action.equal a g_deliver then Some (Vdist.dirac (q2 c))
        else None
    | Value.Tag ("ds3", _) when Action.equal a g_deliver -> Some (Vdist.dirac q4)
    | Value.Tag ("ds4", _) when Action.equal a deliver -> Some (Vdist.dirac q5)
    | _ -> None
  in
  Psioa.make ~name:(n ^ ".dsim") ~start:q0 ~signature ~transition

(* ----------------------------------------------------------- environments *)

let env_completion ?(width = 1) ~msg n =
  let send = acti (n ^ ".send") msg in
  let recvs = List.map (fun m -> acti (n ^ ".recv") m) (msgs width) in
  let acc = act "acc" in
  let s k = Value.tag "ec" (Value.int k) in
  let signature q =
    match q with
    | Value.Tag ("ec", Value.Int 0) -> sig_io ~o:[ send ] ()
    | Value.Tag ("ec", Value.Int 1) -> sig_io ~i:recvs ()
    | Value.Tag ("ec", Value.Int 2) -> sig_io ~o:[ acc ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("ec", Value.Int 0) when Action.equal a send -> Some (Vdist.dirac (s 1))
    | Value.Tag ("ec", Value.Int 1) when List.exists (Action.equal a) recvs ->
        Some (Vdist.dirac (s 2))
    | Value.Tag ("ec", Value.Int 2) when Action.equal a acc -> Some (Vdist.dirac (s 3))
    | _ -> None
  in
  Psioa.make ~name:(n ^ ".envc") ~start:(s 0) ~signature ~transition

let env_guess ?(width = 1) ~msg n =
  let send = acti (n ^ ".send") msg in
  let guesses = List.map (fun c -> acti (n ^ ".guess") c) (msgs width) in
  let acc = act "acc" in
  let s k = Value.tag "eg" (Value.int k) in
  let signature q =
    match q with
    | Value.Tag ("eg", Value.Int 0) -> sig_io ~o:[ send ] ()
    | Value.Tag ("eg", Value.Int 1) -> sig_io ~i:guesses ()
    | Value.Tag ("eg", Value.Int 2) -> sig_io ~o:[ acc ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("eg", Value.Int 0) when Action.equal a send -> Some (Vdist.dirac (s 1))
    | Value.Tag ("eg", Value.Int 1) ->
        List.find_map
          (fun c ->
            if Action.equal a (acti (n ^ ".guess") c) then
              (* Accept exactly when the adversary's report equals the
                 plaintext: the secrecy game. *)
              Some (Vdist.dirac (if c = msg then s 2 else s 3))
            else None)
          (msgs width)
    | Value.Tag ("eg", Value.Int 2) when Action.equal a acc -> Some (Vdist.dirac (s 3))
    | _ -> None
  in
  Psioa.make ~name:(n ^ ".envg") ~start:(s 0) ~signature ~transition


(* ------------------------------------------------------------- sessions *)

(* Multi-round session: each round draws a fresh pad, transports one
   message, and hands the ciphertext to the adversary. A second family
   axis (number of rounds) on top of the width axis: the per-round pads
   are independent, so secrecy composes across rounds with slack exactly
   0. States carry the round index; [phase] mirrors the single-shot
   automaton. *)
let session_real ?(width = 1) ~rounds n =
  let send m = acti (n ^ ".send") m in
  let ct c = acti (n ^ ".ct") c in
  let deliver = act (n ^ ".deliver") in
  let recv m = acti (n ^ ".recv") m in
  let kg = act (n ^ ".keygen") in
  let st r phase = Value.tag "ses" (Value.pair (Value.int r) phase) in
  let p_key = Value.tag "key" Value.unit in
  let p_hold k = Value.tag "hold" (Value.int k) in
  let p_ct k m = Value.tag "ct" (Value.pair (Value.int k) (Value.int m)) in
  let p_await m = Value.tag "await" (Value.int m) in
  let p_recv m = Value.tag "recv" (Value.int m) in
  let done_ = Value.tag "ses-done" Value.unit in
  let signature q =
    match q with
    | Value.Tag ("ses", Value.Pair (Value.Int _, phase)) -> (
        match phase with
        | Value.Tag ("key", _) -> sig_io ~h:[ kg ] ()
        | Value.Tag ("hold", _) -> sig_io ~i:(List.map send (msgs width)) ()
        | Value.Tag ("ct", Value.Pair (Value.Int k, Value.Int m)) ->
            sig_io ~o:[ ct (Primitives.xor_encrypt ~key:k ~width m) ] ()
        | Value.Tag ("await", _) -> sig_io ~i:[ deliver ] ()
        | Value.Tag ("recv", Value.Int m) -> sig_io ~o:[ recv m ] ()
        | _ -> Sigs.empty)
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("ses", Value.Pair (Value.Int r, phase)) -> (
        match phase with
        | Value.Tag ("key", _) when Action.equal a kg ->
            Some (Vdist.uniform (List.map (fun k -> st r (p_hold k)) (msgs width)))
        | Value.Tag ("hold", Value.Int k) ->
            List.find_map
              (fun m -> if Action.equal a (send m) then Some (Vdist.dirac (st r (p_ct k m))) else None)
              (msgs width)
        | Value.Tag ("ct", Value.Pair (Value.Int k, Value.Int m))
          when Action.equal a (ct (Primitives.xor_encrypt ~key:k ~width m)) ->
            Some (Vdist.dirac (st r (p_await m)))
        | Value.Tag ("await", Value.Int m) when Action.equal a deliver ->
            Some (Vdist.dirac (st r (p_recv m)))
        | Value.Tag ("recv", Value.Int m) when Action.equal a (recv m) ->
            Some (Vdist.dirac (if r + 1 < rounds then st (r + 1) p_key else done_))
        | _ -> None)
    | _ -> None
  in
  let psioa = Psioa.make ~name:n ~start:(st 0 p_key) ~signature ~transition in
  let eact q =
    match q with
    | Value.Tag ("ses", Value.Pair (_, Value.Tag ("hold", _))) ->
        Action_set.of_list (List.map send (msgs width))
    | Value.Tag ("ses", Value.Pair (_, Value.Tag ("recv", Value.Int m))) ->
        Action_set.of_list [ recv m ]
    | _ -> Action_set.empty
  in
  Structured.make psioa ~eact

let session_ideal ?(width = 1) ~rounds n =
  let send m = acti (n ^ ".send") m in
  let leak = act (n ^ ".leak") in
  let deliver = act (n ^ ".deliver") in
  let recv m = acti (n ^ ".recv") m in
  let st r phase = Value.tag "ises" (Value.pair (Value.int r) phase) in
  let p_hold = Value.tag "hold" Value.unit in
  let p_leak m = Value.tag "leak" (Value.int m) in
  let p_await m = Value.tag "await" (Value.int m) in
  let p_recv m = Value.tag "recv" (Value.int m) in
  let done_ = Value.tag "ises-done" Value.unit in
  let signature q =
    match q with
    | Value.Tag ("ises", Value.Pair (_, phase)) -> (
        match phase with
        | Value.Tag ("hold", _) -> sig_io ~i:(List.map send (msgs width)) ()
        | Value.Tag ("leak", _) -> sig_io ~o:[ leak ] ()
        | Value.Tag ("await", _) -> sig_io ~i:[ deliver ] ()
        | Value.Tag ("recv", Value.Int m) -> sig_io ~o:[ recv m ] ()
        | _ -> Sigs.empty)
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("ises", Value.Pair (Value.Int r, phase)) -> (
        match phase with
        | Value.Tag ("hold", _) ->
            List.find_map
              (fun m -> if Action.equal a (send m) then Some (Vdist.dirac (st r (p_leak m))) else None)
              (msgs width)
        | Value.Tag ("leak", Value.Int m) when Action.equal a leak ->
            Some (Vdist.dirac (st r (p_await m)))
        | Value.Tag ("await", Value.Int m) when Action.equal a deliver ->
            Some (Vdist.dirac (st r (p_recv m)))
        | Value.Tag ("recv", Value.Int m) when Action.equal a (recv m) ->
            Some (Vdist.dirac (if r + 1 < rounds then st (r + 1) p_hold else done_))
        | _ -> None)
    | _ -> None
  in
  let psioa = Psioa.make ~name:n ~start:(st 0 p_hold) ~signature ~transition in
  let eact q =
    match q with
    | Value.Tag ("ises", Value.Pair (_, Value.Tag ("hold", _))) ->
        Action_set.of_list (List.map send (msgs width))
    | Value.Tag ("ises", Value.Pair (_, Value.Tag ("recv", Value.Int m))) ->
        Action_set.of_list [ recv m ]
    | _ -> Action_set.empty
  in
  Structured.make psioa ~eact

(* Session environment: sends the same message each round and accepts only
   if the adversary's guess equals the plaintext in EVERY round — success
   probability (2^-width)^rounds in both worlds. *)
let env_session ?(width = 1) ~rounds ~msg n =
  let send = acti (n ^ ".send") msg in
  let guesses = List.map (fun c -> acti (n ^ ".guess") c) (msgs width) in
  let acc = act "acc" in
  let st r k = Value.tag "esn" (Value.pair (Value.int r) (Value.int k)) in
  let signature q =
    match q with
    | Value.Tag ("esn", Value.Pair (Value.Int _, Value.Int 0)) -> sig_io ~o:[ send ] ()
    | Value.Tag ("esn", Value.Pair (Value.Int _, Value.Int 1)) -> sig_io ~i:guesses ()
    | Value.Tag ("esn", Value.Pair (Value.Int _, Value.Int 2)) -> sig_io ~o:[ acc ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("esn", Value.Pair (Value.Int r, Value.Int 0)) when Action.equal a send ->
        Some (Vdist.dirac (st r 1))
    | Value.Tag ("esn", Value.Pair (Value.Int r, Value.Int 1)) ->
        List.find_map
          (fun c ->
            if Action.equal a (acti (n ^ ".guess") c) then
              Some
                (Vdist.dirac
                   (if c <> msg then st r 3 (* failed: dead *)
                    else if r + 1 < rounds then st (r + 1) 0
                    else st r 2))
            else None)
          (msgs width)
    | Value.Tag ("esn", Value.Pair (Value.Int r, Value.Int 2)) when Action.equal a acc ->
        Some (Vdist.dirac (st r 3))
    | _ -> None
  in
  Psioa.make ~name:(n ^ ".esn") ~start:(st 0 0) ~signature ~transition
