open Cdse_psioa
open Cdse_secure

let act = Action.make
let acti name m = Action.make ~payload:(Value.int m) name

let sig_io ?(i = []) ?(o = []) ?(h = []) () =
  Sigs.make ~input:(Action_set.of_list i) ~output:(Action_set.of_list o)
    ~internal:(Action_set.of_list h)

let bits = [ 0; 1 ]

(* Protocol phases for the real protocol:
   p0 --pick_a(int)--> p1(a,r) --commit(h) AO--> p2 --deliver1 AI-->
   p3 --pick_b(int)--> p4(b) --b(b) AO--> p5 --deliver2 AI-->
   p6 --reveal(a) AO--> p7 --deliver3 AI--> p8 --result(a⊕b) EO--> end *)
let real_with ~pick_b n =
  let pick_a = act (n ^ ".pick_a") in
  let commit_a h = acti (n ^ ".commit") h in
  let d1 = act (n ^ ".deliver1") in
  let pick_b_act = act (n ^ ".pick_b") in
  let send_b b = acti (n ^ ".b") b in
  let d2 = act (n ^ ".deliver2") in
  let reveal a = acti (n ^ ".reveal") a in
  let d3 = act (n ^ ".deliver3") in
  let result x = acti (n ^ ".result") x in
  let p0 = Value.tag "cf0" Value.unit in
  let p k payload = Value.tag (Printf.sprintf "cf%d" k) payload in
  let ar a r = Value.pair (Value.int a) (Value.int r) in
  let arb a r b = Value.list [ Value.int a; Value.int r; Value.int b ] in
  let commitment a r = Primitives.commit ~msg:a ~nonce:r in
  let signature q =
    match q with
    | Value.Tag ("cf0", _) -> sig_io ~h:[ pick_a ] ()
    | Value.Tag ("cf1", Value.Pair (Value.Int a, Value.Int r)) ->
        sig_io ~o:[ commit_a (commitment a r) ] ()
    | Value.Tag ("cf2", _) -> sig_io ~i:[ d1 ] ()
    | Value.Tag ("cf3", _) -> sig_io ~h:[ pick_b_act ] ()
    | Value.Tag ("cf4", Value.List [ _; _; Value.Int b ]) -> sig_io ~o:[ send_b b ] ()
    | Value.Tag ("cf5", _) -> sig_io ~i:[ d2 ] ()
    | Value.Tag ("cf6", Value.List [ Value.Int a; _; _ ]) -> sig_io ~o:[ reveal a ] ()
    | Value.Tag ("cf7", _) -> sig_io ~i:[ d3 ] ()
    | Value.Tag ("cf8", Value.List [ Value.Int a; _; Value.Int b ]) ->
        sig_io ~o:[ result (a lxor b) ] ()
    | _ -> Sigs.empty
  in
  let transition q a' =
    match q with
    | Value.Tag ("cf0", _) when Action.equal a' pick_a ->
        Some (Vdist.uniform (List.concat_map (fun a -> List.map (fun r -> p 1 (ar a r)) bits) bits))
    | Value.Tag ("cf1", Value.Pair (Value.Int a, Value.Int r))
      when Action.equal a' (commit_a (commitment a r)) ->
        Some (Vdist.dirac (p 2 (ar a r)))
    | Value.Tag ("cf2", payload) when Action.equal a' d1 -> Some (Vdist.dirac (p 3 payload))
    | Value.Tag ("cf3", Value.Pair (Value.Int a, Value.Int r)) when Action.equal a' pick_b_act ->
        Some (Vdist.uniform (List.map (fun b -> p 4 (arb a r b)) (pick_b ~a)))
    | Value.Tag ("cf4", (Value.List [ _; _; Value.Int b ] as payload))
      when Action.equal a' (send_b b) ->
        Some (Vdist.dirac (p 5 payload))
    | Value.Tag ("cf5", payload) when Action.equal a' d2 -> Some (Vdist.dirac (p 6 payload))
    | Value.Tag ("cf6", (Value.List [ Value.Int a; _; _ ] as payload))
      when Action.equal a' (reveal a) ->
        Some (Vdist.dirac (p 7 payload))
    | Value.Tag ("cf7", payload) when Action.equal a' d3 -> Some (Vdist.dirac (p 8 payload))
    | Value.Tag ("cf8", Value.List [ Value.Int a; _; Value.Int b ])
      when Action.equal a' (result (a lxor b)) ->
        Some (Vdist.dirac (Value.tag "cf9" Value.unit))
    | _ -> None
  in
  let psioa = Psioa.make ~name:n ~start:p0 ~signature ~transition in
  let eact q =
    match q with
    | Value.Tag ("cf8", Value.List [ Value.Int a; _; Value.Int b ]) ->
        Action_set.of_list [ result (a lxor b) ]
    | _ -> Action_set.empty
  in
  Structured.make psioa ~eact

let real n = real_with ~pick_b:(fun ~a:_ -> bits) n

(* B "sees through" the commitment and echoes a: result always 0. *)
let real_cheating n = real_with ~pick_b:(fun ~a -> [ a ]) n

let ideal n =
  let toss = act (n ^ ".toss") in
  let go = act (n ^ ".go") in
  let deliver = act (n ^ ".deliver") in
  let result x = acti (n ^ ".result") x in
  let q0 = Value.tag "ci0" Value.unit in
  let q1 x = Value.tag "ci1" (Value.int x) in
  let q2 x = Value.tag "ci2" (Value.int x) in
  let q3 x = Value.tag "ci3" (Value.int x) in
  let q4 = Value.tag "ci4" Value.unit in
  let signature q =
    match q with
    | Value.Tag ("ci0", _) -> sig_io ~h:[ toss ] ()
    | Value.Tag ("ci1", _) -> sig_io ~o:[ go ] ()
    | Value.Tag ("ci2", _) -> sig_io ~i:[ deliver ] ()
    | Value.Tag ("ci3", Value.Int x) -> sig_io ~o:[ result x ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("ci0", _) when Action.equal a toss -> Some (Vdist.uniform (List.map q1 bits))
    | Value.Tag ("ci1", Value.Int x) when Action.equal a go -> Some (Vdist.dirac (q2 x))
    | Value.Tag ("ci2", Value.Int x) when Action.equal a deliver -> Some (Vdist.dirac (q3 x))
    | Value.Tag ("ci3", Value.Int x) when Action.equal a (result x) -> Some (Vdist.dirac q4)
    | _ -> None
  in
  let psioa = Psioa.make ~name:n ~start:q0 ~signature ~transition in
  let eact q =
    match q with
    | Value.Tag ("ci3", Value.Int x) -> Action_set.of_list [ result x ]
    | _ -> Action_set.empty
  in
  Structured.make psioa ~eact

(* Passive scheduler: a single owed-delivery slot, overwritten by the most
   recent protocol message (commit owes deliver1, b owes deliver2, reveal
   owes deliver3). It never terminates and stays receptive: Definition
   4.24's pointwise AI ⊆ out(Adv) condition quantifies over all reachable
   composite states, including free-input paths, so the obligation must be
   re-armed whenever the protocol actually emits. *)
let adversary ?(rename = Fun.id) n =
  let d k = act (rename (Printf.sprintf "%s.deliver%d" n k)) in
  (* Owed deliveries as a set: a free-firing input must not overwrite an
     obligation that the protocol still awaits. *)
  let owes ks =
    Value.tag "cfa" (Value.list (List.map Value.int (List.sort_uniq Int.compare ks)))
  in
  let owed_of q =
    match q with
    | Value.Tag ("cfa", Value.List ks) ->
        List.filter_map (function Value.Int k -> Some k | _ -> None) ks
    | _ -> []
  in
  (* Index of the delivery owed after a given message, matched by name. *)
  let owed_by a =
    let base = Action.name a in
    List.find_map
      (fun (suffix, k) -> if String.equal base (rename (n ^ suffix)) then Some k else None)
      [ (".commit", 1); (".b", 2); (".reveal", 3) ]
  in
  (* Payload universe actually used by the protocol: commitments of
     (a,r) ∈ {0,1}², bits, reveals. *)
  let commits =
    List.sort_uniq Int.compare
      (List.concat_map (fun a -> List.map (fun r -> Primitives.commit ~msg:a ~nonce:r) bits) bits)
  in
  let inputs =
    List.map (fun h -> Action.make ~payload:(Value.int h) (rename (n ^ ".commit"))) commits
    @ List.map (fun b -> Action.make ~payload:(Value.int b) (rename (n ^ ".b"))) bits
    @ List.map (fun a -> Action.make ~payload:(Value.int a) (rename (n ^ ".reveal"))) bits
  in
  let signature q =
    match q with
    | Value.Tag ("cfa", _) -> sig_io ~i:inputs ~o:(List.map d (owed_of q)) ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("cfa", _) -> (
        let owed = owed_of q in
        match owed_by a with
        | Some j -> Some (Vdist.dirac (owes (j :: owed)))
        | None ->
            List.find_map
              (fun k ->
                if Action.equal a (d k) then
                  Some (Vdist.dirac (owes (List.filter (fun x -> x <> k) owed)))
                else None)
              owed)
    | _ -> None
  in
  Psioa.make ~name:(rename (n ^ ".adv")) ~start:(owes []) ~signature ~transition

(* The ideal-side simulator only needs to consume go and deliver; like the
   adversary it never terminates and re-arms on every go. *)
let simulator ?(rename = Fun.id) n =
  let go = act (rename (n ^ ".go")) in
  let deliver = act (rename (n ^ ".deliver")) in
  let q0 = Value.tag "cfs" (Value.int 0) in
  let q1 = Value.tag "cfs" (Value.int 1) in
  let signature q =
    match q with
    | Value.Tag ("cfs", Value.Int 0) -> sig_io ~i:[ go ] ()
    | Value.Tag ("cfs", Value.Int 1) -> sig_io ~i:[ go ] ~o:[ deliver ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("cfs", Value.Int 0) when Action.equal a go -> Some (Vdist.dirac q1)
    | Value.Tag ("cfs", Value.Int 1) ->
        if Action.equal a go then Some (Vdist.dirac q1)
        else if Action.equal a deliver then Some (Vdist.dirac q0)
        else None
    | _ -> None
  in
  Psioa.make ~name:(rename (n ^ ".sim")) ~start:q0 ~signature ~transition

let env_result n =
  let results = List.map (fun x -> acti (n ^ ".result") x) bits in
  let acc = act "acc" in
  let s k = Value.tag "cfe" (Value.int k) in
  let signature q =
    match q with
    | Value.Tag ("cfe", Value.Int 0) -> sig_io ~i:results ()
    | Value.Tag ("cfe", Value.Int 1) -> sig_io ~o:[ acc ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("cfe", Value.Int 0) ->
        if Action.equal a (acti (n ^ ".result") 0) then Some (Vdist.dirac (s 1))
        else if Action.equal a (acti (n ^ ".result") 1) then Some (Vdist.dirac (s 2))
        else None
    | Value.Tag ("cfe", Value.Int 1) when Action.equal a acc -> Some (Vdist.dirac (s 2))
    | _ -> None
  in
  Psioa.make ~name:(n ^ ".env") ~start:(s 0) ~signature ~transition
