open Cdse_psioa
open Cdse_secure

let act = Action.make
let acti name v = Action.make ~payload:(Value.int v) name

let sig_io ?(i = []) ?(o = []) ?(h = []) () =
  Sigs.make ~input:(Action_set.of_list i) ~output:(Action_set.of_list o)
    ~internal:(Action_set.of_list h)

let bits = [ 0; 1 ]
let in_ n i x = acti (Printf.sprintf "%s.in%d" n i) x
let masked n i v = acti (Printf.sprintf "%s.m%d" n i) v
let leak n = act (n ^ ".leak")
let release n = act (n ^ ".release")
let sum_act n x = acti (n ^ ".sum") x

let ints l = Value.list (List.map Value.int l)

let of_ints = function
  | Value.List l -> List.filter_map (function Value.Int i -> Some i | _ -> None) l
  | _ -> []

(* Protocol phases: collect inputs ascending; draw all masks in one
   probabilistic internal step (the joint pad distribution — uniform over
   2^parties vectors); publish the masked values ascending (AO); await the
   adversary's release; announce the XOR of the true inputs. [mask] turns
   the pad vector off for the unmasked falsification variant. *)
let protocol ~mask ~parties n =
  let collect xs = Value.tag "agc" (ints xs) in
  let publish xs ms k = Value.tag "agp" (Value.list [ ints xs; ints ms; Value.int k ]) in
  let done_ = Value.tag "agd" Value.unit in
  let draw = act (n ^ ".draw") in
  let xor_all xs = List.fold_left ( lxor ) 0 xs in
  let signature q =
    match q with
    | Value.Tag ("agc", Value.List xs) when List.length xs < parties ->
        sig_io ~i:(List.map (in_ n (List.length xs)) bits) ()
    | Value.Tag ("agc", _) -> sig_io ~h:[ draw ] ()
    | Value.Tag ("agp", Value.List [ _; Value.List ms; Value.Int k ]) when k < parties ->
        let mk = match List.nth_opt (of_ints (Value.List ms)) k with Some v -> v | None -> 0 in
        sig_io ~o:[ masked n k mk ] ()
    | Value.Tag ("agp", _) -> sig_io ~i:[ release n ] ()
    | Value.Tag ("agw", Value.List xs) ->
        sig_io ~o:[ sum_act n (xor_all (of_ints (Value.List xs))) ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("agc", Value.List xs_v) ->
        let xs = of_ints (Value.List xs_v) in
        if List.length xs < parties then
          List.find_map
            (fun x ->
              if Action.equal a (in_ n (List.length xs) x) then
                Some (Vdist.dirac (collect (xs @ [ x ])))
              else None)
            bits
        else if Action.equal a draw then
          (* All pad vectors, uniformly; the unmasked variant collapses to
             the zero vector. *)
          let vectors =
            if mask then
              let rec all k = if k = 0 then [ [] ] else List.concat_map (fun v -> [ 0 :: v; 1 :: v ]) (all (k - 1)) in
              all parties
            else [ List.map (fun _ -> 0) xs ]
          in
          Some
            (Vdist.uniform
               (List.map (fun pad -> publish xs (List.map2 ( lxor ) xs pad) 0) vectors))
        else None
    | Value.Tag ("agp", Value.List [ xs_v; ms_v; Value.Int k ]) ->
        let ms = of_ints ms_v in
        if k < parties then
          let mk = List.nth ms k in
          if Action.equal a (masked n k mk) then
            Some (Vdist.dirac (Value.tag "agp" (Value.list [ xs_v; ms_v; Value.int (k + 1) ])))
          else None
        else if Action.equal a (release n) then
          Some (Vdist.dirac (Value.tag "agw" xs_v))
        else None
    | Value.Tag ("agw", Value.List xs_v) ->
        let xs = of_ints (Value.List xs_v) in
        if Action.equal a (sum_act n (xor_all xs)) then Some (Vdist.dirac done_) else None
    | _ -> None
  in
  let psioa = Psioa.make ~name:n ~start:(collect []) ~signature ~transition in
  let eact q =
    match q with
    | Value.Tag ("agc", Value.List xs) when List.length xs < parties ->
        Action_set.of_list (List.map (in_ n (List.length xs)) bits)
    | Value.Tag ("agw", Value.List xs) ->
        Action_set.of_list
          [ sum_act n (List.fold_left ( lxor ) 0 (of_ints (Value.List xs))) ]
    | _ -> Action_set.empty
  in
  Structured.make psioa ~eact

let real ~parties n = protocol ~mask:true ~parties n
let unmasked ~parties n = protocol ~mask:false ~parties n

let ideal ~parties n =
  let collect xs = Value.tag "igc" (ints xs) in
  let leaking xs = Value.tag "igl" (ints xs) in
  let done_ = Value.tag "igd" Value.unit in
  let xor_all xs = List.fold_left ( lxor ) 0 xs in
  let signature q =
    match q with
    | Value.Tag ("igc", Value.List xs) when List.length xs < parties ->
        sig_io ~i:(List.map (in_ n (List.length xs)) bits) ()
    | Value.Tag ("igc", _) | Value.Tag ("igl", _) -> (
        match q with
        | Value.Tag ("igc", _) -> sig_io ~o:[ leak n ] ()
        | _ -> sig_io ~i:[ release n ] ())
    | Value.Tag ("igw", _) -> sig_io ~i:[ release n ] ()
    | Value.Tag ("iga", Value.List xs) ->
        sig_io ~o:[ sum_act n (xor_all (of_ints (Value.List xs))) ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("igc", Value.List xs_v) ->
        let xs = of_ints (Value.List xs_v) in
        if List.length xs < parties then
          List.find_map
            (fun x ->
              if Action.equal a (in_ n (List.length xs) x) then
                Some (Vdist.dirac (collect (xs @ [ x ])))
              else None)
            bits
        else if Action.equal a (leak n) then Some (Vdist.dirac (leaking xs))
        else None
    | Value.Tag ("igl", xs_v) when Action.equal a (release n) ->
        Some (Vdist.dirac (Value.tag "iga" xs_v))
    | Value.Tag ("igw", xs_v) when Action.equal a (release n) ->
        Some (Vdist.dirac (Value.tag "iga" xs_v))
    | Value.Tag ("iga", Value.List xs_v) ->
        let xs = of_ints (Value.List xs_v) in
        if Action.equal a (sum_act n (xor_all xs)) then Some (Vdist.dirac done_) else None
    | _ -> None
  in
  let psioa = Psioa.make ~name:n ~start:(collect []) ~signature ~transition in
  let eact q =
    match q with
    | Value.Tag ("igc", Value.List xs) when List.length xs < parties ->
        Action_set.of_list (List.map (in_ n (List.length xs)) bits)
    | Value.Tag ("iga", Value.List xs) ->
        Action_set.of_list
          [ sum_act n (List.fold_left ( lxor ) 0 (of_ints (Value.List xs))) ]
    | _ -> Action_set.empty
  in
  Structured.make psioa ~eact

(* The adversary listens to party 0's masked publication only; the other
   publications fire as unobserved outputs (and [leak] similarly on the
   ideal side). The reporter skeleton handles receptivity and
   obligations. *)
let adversary n =
  Secure_channel.reporter ~name:(n ^ ".adv")
    ~inputs:(List.map (masked n 0) bits)
    ~on_input:(fun a ->
      List.find_map (fun v -> if Action.equal a (masked n 0 v) then Some v else None) bits)
    ~guess:(fun v -> acti (n ^ ".guess") v)
    ~deliver_act:(release n)

let simulator n =
  Secure_channel.simulator_with ~name:(n ^ ".sim") ~leak:(leak n) ~guess_name:(n ^ ".guess")
    ~deliver_act:(release n) ~width:1

(* Environment skeleton: feed the inputs in order, then play a final
   acceptance game. *)
let env ~final_inputs ~final_watch ~accept_on ~parties ~inputs n name_suffix =
  let feed k = Value.tag "age" (Value.pair (Value.str "feed") (Value.int k)) in
  let watch = Value.tag "age" (Value.pair (Value.str "watch") Value.unit) in
  let acc_st = Value.tag "age" (Value.pair (Value.str "acc") Value.unit) in
  let done_ = Value.tag "age" (Value.pair (Value.str "done") Value.unit) in
  let acc = act "acc" in
  ignore final_inputs;
  let signature q =
    match q with
    | Value.Tag ("age", Value.Pair (Value.Str "feed", Value.Int k)) when k < parties ->
        sig_io ~o:[ in_ n k (List.nth inputs k) ] ()
    | Value.Tag ("age", Value.Pair (Value.Str "feed", _)) | Value.Tag ("age", Value.Pair (Value.Str "watch", _)) ->
        sig_io ~i:final_watch ()
    | Value.Tag ("age", Value.Pair (Value.Str "acc", _)) -> sig_io ~o:[ acc ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("age", Value.Pair (Value.Str "feed", Value.Int k)) when k < parties ->
        if Action.equal a (in_ n k (List.nth inputs k)) then
          Some (Vdist.dirac (if k + 1 < parties then feed (k + 1) else watch))
        else None
    | Value.Tag ("age", Value.Pair (Value.Str "feed", _))
    | Value.Tag ("age", Value.Pair (Value.Str "watch", _)) ->
        List.find_map
          (fun w ->
            if Action.equal a w then
              Some (Vdist.dirac (if accept_on w then acc_st else done_))
            else None)
          final_watch
    | Value.Tag ("age", Value.Pair (Value.Str "acc", _)) when Action.equal a acc ->
        Some (Vdist.dirac done_)
    | _ -> None
  in
  Psioa.make ~name:(n ^ name_suffix) ~start:(feed 0) ~signature ~transition

let env_guess ~parties ~inputs n =
  let x0 = List.nth inputs 0 in
  let watch = List.map (fun v -> acti (n ^ ".guess") v) bits in
  env ~final_inputs:() ~final_watch:watch
    ~accept_on:(fun a -> Value.equal (Action.payload a) (Value.int x0))
    ~parties ~inputs n ".envg"

let env_sum ~parties ~inputs n =
  let expected = List.fold_left ( lxor ) 0 inputs in
  let watch = List.map (fun x -> sum_act n x) bits in
  env ~final_inputs:() ~final_watch:watch
    ~accept_on:(fun a -> Value.equal (Action.payload a) (Value.int expected))
    ~parties ~inputs n ".envs"
