open Cdse_psioa
open Cdse_secure

let act = Action.make
let acti name v = Action.make ~payload:(Value.int v) name

let sig_io ?(i = []) ?(o = []) ?(h = []) () =
  Sigs.make ~input:(Action_set.of_list i) ~output:(Action_set.of_list o)
    ~internal:(Action_set.of_list h)

let msgs width = List.init (1 lsl width) Fun.id
let receivers k = List.init k Fun.id

let pkt n i m = acti (Printf.sprintf "%s.pkt%d" n i) m
let rel n i = act (Printf.sprintf "%s.rel%d" n i)
let deliver n i m = acti (Printf.sprintf "%s.deliver%d" n i) m
let send n m = acti (n ^ ".send") m
let leak n m = acti (n ^ ".leak") m

(* State payload: message + per-receiver phase. Phase 0: packet not yet
   emitted (real only); 1: awaiting release; 2: released, delivery owed;
   3: delivered. Packets are emitted in ascending receiver order; releases
   and deliveries happen in adversary-chosen order. *)
let phases_value m ph = Value.pair (Value.int m) (Value.list (List.map Value.int ph))

let parse_phases = function
  | Value.Pair (Value.Int m, Value.List ph) ->
      Some (m, List.map (function Value.Int p -> p | _ -> 0) ph)
  | _ -> None

let protocol ~leaky ?(width = 1) ~k n =
  let idle = Value.tag "bc-idle" Value.unit in
  let st m ph = Value.tag "bc" (phases_value m ph) in
  let parse q = match q with Value.Tag ("bc", p) -> parse_phases p | _ -> None in
  let set ph i v = List.mapi (fun j p -> if j = i then v else p) ph in
  let signature q =
    if Value.equal q idle then sig_io ~i:(List.map (send n) (msgs width)) ()
    else
      match parse q with
      | None -> Sigs.empty
      | Some (m, ph) ->
          (* Emit packets ascending: only the least phase-0 receiver's
             packet is an output. *)
          let next_pkt =
            List.find_map (fun i -> if List.nth ph i = 0 then Some i else None) (receivers k)
          in
          let outs =
            (match next_pkt with
            | Some i -> [ (if leaky then pkt n i m else pkt n i 0) ]
            | None -> [])
            @ List.filter_map
                (fun i -> if List.nth ph i = 2 then Some (deliver n i m) else None)
                (receivers k)
          in
          let ins =
            (* Releases are accepted once this receiver's packet is out. *)
            List.filter_map (fun i -> if List.nth ph i = 1 then Some (rel n i) else None)
              (receivers k)
          in
          if outs = [] && ins = [] then Sigs.empty else sig_io ~i:ins ~o:outs ()
  in
  let transition q a =
    if Value.equal q idle then
      List.find_map
        (fun m ->
          if Action.equal a (send n m) then Some (Vdist.dirac (st m (List.map (fun _ -> 0) (receivers k))))
          else None)
        (msgs width)
    else
      match parse q with
      | None -> None
      | Some (m, ph) ->
          List.find_map
            (fun i ->
              let p = List.nth ph i in
              if p = 0 && Action.equal a (if leaky then pkt n i m else pkt n i 0) then
                Some (Vdist.dirac (st m (set ph i 1)))
              else if p = 1 && Action.equal a (rel n i) then
                Some (Vdist.dirac (st m (set ph i 2)))
              else if p = 2 && Action.equal a (deliver n i m) then
                Some (Vdist.dirac (st m (set ph i 3)))
              else None)
            (receivers k)
  in
  let psioa = Psioa.make ~name:n ~start:idle ~signature ~transition in
  let eact q =
    if Value.equal q idle then Action_set.of_list (List.map (send n) (msgs width))
    else
      match parse q with
      | None -> Action_set.empty
      | Some (m, ph) ->
          Action_set.of_list
            (List.filter_map
               (fun i -> if List.nth ph i = 2 then Some (deliver n i m) else None)
               (receivers k))
  in
  Structured.make psioa ~eact

let real ?width ~k n = protocol ~leaky:true ?width ~k n

(* The ideal functionality: one leak of the message, then the same release
   interface. Encoded as the same protocol with packets replaced by a
   single leak: receiver phases start at 1 after the leak. *)
let ideal ?(width = 1) ~k n =
  let idle = Value.tag "bci-idle" Value.unit in
  let leaking m = Value.tag "bci-leak" (Value.int m) in
  let st m ph = Value.tag "bci" (phases_value m ph) in
  let parse q = match q with Value.Tag ("bci", p) -> parse_phases p | _ -> None in
  let set ph i v = List.mapi (fun j p -> if j = i then v else p) ph in
  let signature q =
    if Value.equal q idle then sig_io ~i:(List.map (send n) (msgs width)) ()
    else
      match q with
      | Value.Tag ("bci-leak", Value.Int m) -> sig_io ~o:[ leak n m ] ()
      | _ -> (
          match parse q with
          | None -> Sigs.empty
          | Some (m, ph) ->
              let outs =
                List.filter_map
                  (fun i -> if List.nth ph i = 2 then Some (deliver n i m) else None)
                  (receivers k)
              in
              let ins =
                List.filter_map (fun i -> if List.nth ph i = 1 then Some (rel n i) else None)
                  (receivers k)
              in
              if outs = [] && ins = [] then Sigs.empty else sig_io ~i:ins ~o:outs ())
  in
  let transition q a =
    if Value.equal q idle then
      List.find_map
        (fun m -> if Action.equal a (send n m) then Some (Vdist.dirac (leaking m)) else None)
        (msgs width)
    else
      match q with
      | Value.Tag ("bci-leak", Value.Int m) when Action.equal a (leak n m) ->
          Some (Vdist.dirac (st m (List.map (fun _ -> 1) (receivers k))))
      | _ -> (
          match parse q with
          | None -> None
          | Some (m, ph) ->
              List.find_map
                (fun i ->
                  let p = List.nth ph i in
                  if p = 1 && Action.equal a (rel n i) then Some (Vdist.dirac (st m (set ph i 2)))
                  else if p = 2 && Action.equal a (deliver n i m) then
                    Some (Vdist.dirac (st m (set ph i 3)))
                  else None)
                (receivers k))
  in
  let psioa = Psioa.make ~name:n ~start:idle ~signature ~transition in
  let eact q =
    if Value.equal q idle then Action_set.of_list (List.map (send n) (msgs width))
    else
      match parse q with
      | None -> Action_set.empty
      | Some (m, ph) ->
          Action_set.of_list
            (List.filter_map
               (fun i -> if List.nth ph i = 2 then Some (deliver n i m) else None)
               (receivers k))
  in
  Structured.make psioa ~eact

(* Release-scheduler: owes a SET of releases, all offered simultaneously.
   Definition 4.24's pointwise [AI_A ⊆ out(Adv)] makes anything weaker
   unsound: the protocol may accept any pending release, so the adversary
   must offer them all (the scheduler then resolves the order — the
   paper's model of distributed scheduling). Stays permanently receptive;
   free-input pre-arming is repaired by re-observation, as in the other
   protocol adversaries. *)
let release_machine ~name ~inputs ~observe ~rel_of =
  let owed_value owed =
    Value.tag "bca" (Value.list (List.map Value.int (List.sort_uniq Int.compare owed)))
  in
  let parse q =
    match q with
    | Value.Tag ("bca", Value.List l) -> List.filter_map (function Value.Int i -> Some i | _ -> None) l
    | _ -> []
  in
  let signature q =
    sig_io ~i:inputs ~o:(List.map rel_of (parse q)) ()
  in
  let transition q a =
    let owed = parse q in
    match observe a with
    | Some new_rels -> Some (Vdist.dirac (owed_value (new_rels @ owed)))
    | None ->
        List.find_map
          (fun i ->
            if Action.equal a (rel_of i) then
              Some (Vdist.dirac (owed_value (List.filter (fun j -> j <> i) owed)))
            else None)
          owed
  in
  Psioa.make ~name ~start:(owed_value []) ~signature ~transition

let adversary ?(width = 1) ~k n =
  let inputs = List.concat_map (fun i -> List.map (pkt n i) (msgs width)) (receivers k) in
  release_machine ~name:(n ^ ".adv") ~inputs
    ~observe:(fun a ->
      (* Each observed packet owes that receiver's release. *)
      List.find_map
        (fun i ->
          if List.exists (fun m -> Action.equal a (pkt n i m)) (msgs width) then Some [ i ]
          else None)
        (receivers k))
    ~rel_of:(rel n)

let simulator ?(width = 1) ~k n =
  release_machine ~name:(n ^ ".sim")
    ~inputs:(List.map (leak n) (msgs width))
    ~observe:(fun a ->
      if List.exists (fun m -> Action.equal a (leak n m)) (msgs width) then Some (receivers k)
      else None)
    ~rel_of:(rel n)

let env_all_delivered ?(width = 1) ~k ~msg n =
  let delivers = List.concat_map (fun i -> List.map (deliver n i) (msgs width)) (receivers k) in
  let acc = act "acc" in
  let s j = Value.tag "bce" (Value.int j) in
  let signature q =
    match q with
    | Value.Tag ("bce", Value.Int 0) -> sig_io ~o:[ send n msg ] ()
    | Value.Tag ("bce", Value.Int j) when j <= k -> sig_io ~i:delivers ()
    | Value.Tag ("bce", Value.Int j) when j = k + 1 -> sig_io ~o:[ acc ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("bce", Value.Int 0) when Action.equal a (send n msg) -> Some (Vdist.dirac (s 1))
    | Value.Tag ("bce", Value.Int j) when j <= k && List.exists (Action.equal a) delivers ->
        Some (Vdist.dirac (s (j + 1)))
    | Value.Tag ("bce", Value.Int j) when j = k + 1 && Action.equal a acc ->
        Some (Vdist.dirac (s (k + 2)))
    | _ -> None
  in
  Psioa.make ~name:(n ^ ".env") ~start:(s 0) ~signature ~transition

let real_family ?width n k = real ?width ~k:(max 1 k) n
let ideal_family ?width n k = ideal ?width ~k:(max 1 k) n
