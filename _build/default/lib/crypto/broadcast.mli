(** Adversarially-scheduled broadcast, indexed by the number of receivers —
    the family workload (Definitions 4.7–4.12).

    The sender broadcasts a message to [k] receivers. In the {e real}
    protocol each receiver's packet passes through the adversary, which
    observes the payload and releases receivers {e in any order}; the
    {e ideal} functionality leaks the message once and exposes the same
    per-receiver release interface. The simulator replays the leak as the
    per-receiver packets. Indexed by [k], the pair forms PSIOA families
    [(real_k)], [(ideal_k)] with [real ≤_{neg,pt} ideal] at slack exactly
    0 for every [k] — exercising {!Cdse_secure.Impl.le_neg_pt} and the
    bounded-family machinery end to end (experiment E12).

    Interfaces for instance [n] with [k] receivers over message alphabet
    [0..width2-1]:
    - environment: [n.send(m)] (EI), [n.deliver_i(m)] (EO, one per
      receiver);
    - adversary: [n.pkt_i(m)] (AO, real), [n.leak(m)] (AO, ideal),
      [n.rel_i] (AI). *)

open Cdse_psioa
open Cdse_secure

val real : ?width:int -> k:int -> string -> Structured.t
val ideal : ?width:int -> k:int -> string -> Structured.t

val adversary : ?width:int -> k:int -> string -> Psioa.t
(** Scheduler-adversary: each observed packet arms that receiver's release;
    all pending releases are offered simultaneously (Definition 4.24's
    pointwise condition demands it), the scheduler resolving the order. *)

val simulator : ?width:int -> k:int -> string -> Psioa.t
(** Matching simulator for {!ideal}: the single leak arms every release. *)

val env_all_delivered : ?width:int -> k:int -> msg:int -> string -> Psioa.t
(** Sends [msg] and accepts once every receiver has delivered it. *)

val real_family : ?width:int -> string -> int -> Structured.t
(** [fun k -> real ~k …] with [k ≥ 1] (index 0 is clamped to 1). *)

val ideal_family : ?width:int -> string -> int -> Structured.t
