open Cdse_psioa
open Cdse_secure

let act = Action.make
let acti name v = Action.make ~payload:(Value.int v) name

let sig_io ?(i = []) ?(o = []) ?(h = []) () =
  Sigs.make ~input:(Action_set.of_list i) ~output:(Action_set.of_list o)
    ~internal:(Action_set.of_list h)

let secrets width = List.init (1 lsl width) Fun.id

(* Dealer skeleton: input secret, internal split, leak the selected share,
   await acknowledgement, announce completion. [share_of ~r ~s] selects
   what the adversary sees. *)
let dealer ~share_of ?(width = 1) n =
  let input s = acti (n ^ ".input") s in
  let split = act (n ^ ".split") in
  let share v = acti (n ^ ".share") v in
  let ok = act (n ^ ".ok") in
  let done_ = act (n ^ ".done") in
  let q0 = Value.tag "ssd0" Value.unit in
  let q1 s = Value.tag "ssd1" (Value.int s) in
  let q2 v = Value.tag "ssd2" (Value.int v) in
  let q3 = Value.tag "ssd3" Value.unit in
  let q4 = Value.tag "ssd4" Value.unit in
  let q5 = Value.tag "ssd5" Value.unit in
  let signature q =
    match q with
    | Value.Tag ("ssd0", _) -> sig_io ~i:(List.map input (secrets width)) ()
    | Value.Tag ("ssd1", _) -> sig_io ~h:[ split ] ()
    | Value.Tag ("ssd2", Value.Int v) -> sig_io ~o:[ share v ] ()
    | Value.Tag ("ssd3", _) -> sig_io ~i:[ ok ] ()
    | Value.Tag ("ssd4", _) -> sig_io ~o:[ done_ ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("ssd0", _) ->
        List.find_map
          (fun s -> if Action.equal a (input s) then Some (Vdist.dirac (q1 s)) else None)
          (secrets width)
    | Value.Tag ("ssd1", Value.Int s) when Action.equal a split ->
        Some (Vdist.uniform (List.map (fun r -> q2 (share_of ~width ~r ~s)) (secrets width)))
    | Value.Tag ("ssd2", Value.Int v) when Action.equal a (share v) -> Some (Vdist.dirac q3)
    | Value.Tag ("ssd3", _) when Action.equal a ok -> Some (Vdist.dirac q4)
    | Value.Tag ("ssd4", _) when Action.equal a done_ -> Some (Vdist.dirac q5)
    | _ -> None
  in
  let psioa = Psioa.make ~name:n ~start:q0 ~signature ~transition in
  let eact q =
    match q with
    | Value.Tag ("ssd0", _) -> Action_set.of_list (List.map input (secrets width))
    | Value.Tag ("ssd4", _) -> Action_set.of_list [ done_ ]
    | _ -> Action_set.empty
  in
  Structured.make psioa ~eact

let real ?(width = 1) ?(corrupt = `First) n =
  let share_of ~width ~r ~s =
    match corrupt with
    | `First -> r
    | `Second -> Primitives.xor_encrypt ~key:r ~width s
  in
  dealer ~share_of ~width n

let transparent ?(width = 1) n = dealer ~share_of:(fun ~width:_ ~r:_ ~s -> s) ~width n

let ideal ?(width = 1) n =
  let input s = acti (n ^ ".input") s in
  let leak = act (n ^ ".leak") in
  let ok = act (n ^ ".ok") in
  let done_ = act (n ^ ".done") in
  let q0 = Value.tag "ssi0" Value.unit in
  let q1 = Value.tag "ssi1" Value.unit in
  let q2 = Value.tag "ssi2" Value.unit in
  let q3 = Value.tag "ssi3" Value.unit in
  let q4 = Value.tag "ssi4" Value.unit in
  let signature q =
    match q with
    | Value.Tag ("ssi0", _) -> sig_io ~i:(List.map input (secrets width)) ()
    | Value.Tag ("ssi1", _) -> sig_io ~o:[ leak ] ()
    | Value.Tag ("ssi2", _) -> sig_io ~i:[ ok ] ()
    | Value.Tag ("ssi3", _) -> sig_io ~o:[ done_ ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("ssi0", _) when List.exists (fun s -> Action.equal a (input s)) (secrets width) ->
        Some (Vdist.dirac q1)
    | Value.Tag ("ssi1", _) when Action.equal a leak -> Some (Vdist.dirac q2)
    | Value.Tag ("ssi2", _) when Action.equal a ok -> Some (Vdist.dirac q3)
    | Value.Tag ("ssi3", _) when Action.equal a done_ -> Some (Vdist.dirac q4)
    | _ -> None
  in
  let psioa = Psioa.make ~name:n ~start:q0 ~signature ~transition in
  let eact q =
    match q with
    | Value.Tag ("ssi0", _) -> Action_set.of_list (List.map input (secrets width))
    | Value.Tag ("ssi3", _) -> Action_set.of_list [ done_ ]
    | _ -> Action_set.empty
  in
  Structured.make psioa ~eact

(* The secure-channel reporter/simulator skeletons carry over verbatim:
   share plays the role of the ciphertext, ok of the delivery. *)
let adversary ?(width = 1) n =
  let share v = acti (n ^ ".share") v in
  Secure_channel.reporter ~name:(n ^ ".adv")
    ~inputs:(List.map share (secrets width))
    ~on_input:(fun a ->
      List.find_map (fun v -> if Action.equal a (share v) then Some v else None) (secrets width))
    ~guess:(fun v -> acti (n ^ ".guess") v)
    ~deliver_act:(act (n ^ ".ok"))

let simulator ?(width = 1) n =
  Secure_channel.simulator_with ~name:(n ^ ".sim") ~leak:(act (n ^ ".leak"))
    ~guess_name:(n ^ ".guess") ~deliver_act:(act (n ^ ".ok")) ~width

let env_guess ?(width = 1) ~secret n =
  let input = acti (n ^ ".input") secret in
  let guesses = List.map (fun v -> acti (n ^ ".guess") v) (secrets width) in
  let acc = act "acc" in
  let s k = Value.tag "sse" (Value.int k) in
  let signature q =
    match q with
    | Value.Tag ("sse", Value.Int 0) -> sig_io ~o:[ input ] ()
    | Value.Tag ("sse", Value.Int 1) -> sig_io ~i:guesses ()
    | Value.Tag ("sse", Value.Int 2) -> sig_io ~o:[ acc ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("sse", Value.Int 0) when Action.equal a input -> Some (Vdist.dirac (s 1))
    | Value.Tag ("sse", Value.Int 1) ->
        List.find_map
          (fun v ->
            if Action.equal a (acti (n ^ ".guess") v) then
              Some (Vdist.dirac (if v = secret then s 2 else s 3))
            else None)
          (secrets width)
    | Value.Tag ("sse", Value.Int 2) when Action.equal a acc -> Some (Vdist.dirac (s 3))
    | _ -> None
  in
  Psioa.make ~name:(n ^ ".envg") ~start:(s 0) ~signature ~transition


(* Dummy-adversary simulator for Theorem 4.30 (mixed-protocol composition):
   converts the ideal leak into a fake share republished on the renamed
   interface g(share(v)), and forwards g(ok) into the functionality. *)
let dsim ?(width = 1) ~g n =
  let leak = act (n ^ ".leak") in
  let ok = act (n ^ ".ok") in
  let g_share v = g.Dummy.apply (acti (n ^ ".share") v) in
  let g_ok = g.Dummy.apply (act (n ^ ".ok")) in
  let q0 = Value.tag "sds0" Value.unit in
  let q2 v = Value.tag "sds2" (Value.int v) in
  let q3 = Value.tag "sds3" Value.unit in
  let q4 = Value.tag "sds4" Value.unit in
  let q5 = Value.tag "sds5" Value.unit in
  let signature q =
    match q with
    | Value.Tag ("sds0", _) -> sig_io ~i:[ leak ] ()
    | Value.Tag ("sds2", Value.Int v) -> sig_io ~o:[ g_share v ] ~i:[ g_ok ] ()
    | Value.Tag ("sds3", _) -> sig_io ~i:[ g_ok ] ()
    | Value.Tag ("sds4", _) -> sig_io ~o:[ ok ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("sds0", _) when Action.equal a leak ->
        Some (Vdist.uniform (List.map q2 (secrets width)))
    | Value.Tag ("sds2", Value.Int v) ->
        if Action.equal a (g_share v) then Some (Vdist.dirac q3)
        else if Action.equal a g_ok then Some (Vdist.dirac (q2 v))
        else None
    | Value.Tag ("sds3", _) when Action.equal a g_ok -> Some (Vdist.dirac q4)
    | Value.Tag ("sds4", _) when Action.equal a ok -> Some (Vdist.dirac q5)
    | _ -> None
  in
  Psioa.make ~name:(n ^ ".dsim") ~start:q0 ~signature ~transition
