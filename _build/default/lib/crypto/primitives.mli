(** Toy cryptographic primitives for the protocol examples.

    The framework of the paper is agnostic to the concrete primitives; the
    examples need (i) an information-theoretically secure cipher — the
    one-time pad, where the emulation slack is exactly 0 — and (ii)
    computational stand-ins (PRG, hash, commitment) whose security is a
    {e simulated assumption} (DESIGN.md substitution table): they are
    deterministic toys, and the experiments treat their idealised versions
    as the specification rather than claiming cryptographic strength. *)

val xor_encrypt : key:int -> width:int -> int -> int
(** One-time pad over [width]-bit words: [msg XOR key], both reduced mod
    [2^width]. Self-inverse. *)

val xor_decrypt : key:int -> width:int -> int -> int

val prg_expand : seed:int -> len:int -> int list
(** Deterministic xorshift-style expansion of a seed into [len] words.
    NOT cryptographically secure — a stand-in exercising the same code
    paths. *)

val toy_digest : Cdse_psioa.Value.t -> int
(** 30-bit FNV-style digest of a value's canonical encoding. Collisions are
    possible in principle; the protocol state spaces used here are far
    below the birthday bound. *)

val commit : msg:int -> nonce:int -> int
(** Toy commitment [digest (msg, nonce)]. Hiding is {e assumed}
    (simulated); binding holds up to digest collisions. *)

val commit_verify : commitment:int -> msg:int -> nonce:int -> bool
