(** Two-party coin flipping: commit–reveal protocol vs ideal fair coin.

    The {e real} protocol: party A draws a bit [a] and a nonce, publishes a
    toy commitment (adversary action), the adversary schedules; party B
    draws a bit [b] and publishes it; A opens the commitment; the result
    [a XOR b] goes to the environment. The adversary controls all message
    timing but, being unable to open the commitment, cannot bias the
    result: it is uniform — exactly matching the {e ideal} functionality
    that tosses one fair coin.

    Interfaces for an instance [n]:
    - environment: [n.result(x)] (EO);
    - adversary: [n.commit(h)], [n.b(b)], [n.reveal(a)] (AO),
      [n.deliver1..3] (AI, real), [n.go] (AO) / [n.deliver] (AI, ideal).

    The {e cheating} variant lets B echo A's bit (as if the commitment
    were transparent), forcing result 0 — the falsification fixture. *)

open Cdse_psioa
open Cdse_secure

val real : string -> Structured.t
val real_cheating : string -> Structured.t
val ideal : string -> Structured.t

val adversary : ?rename:(string -> string) -> string -> Psioa.t
(** Passive message scheduler for the real protocol: delivers every message
    as soon as it sees it. *)

val simulator : ?rename:(string -> string) -> string -> Psioa.t
(** Simulator for {!ideal} against {!adversary}: fabricates a plausible
    transcript (commitment, bit, reveal) internally and delivers. *)

val env_result : string -> Psioa.t
(** Environment accepting iff the announced result is 0 — under a fair
    protocol this happens with probability exactly 1/2. *)
