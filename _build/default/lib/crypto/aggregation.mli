(** Private XOR aggregation — n-party secure computation of [⊕ᵢ xᵢ].

    Each party masks its input bit with a fresh private pad before
    publishing; the adversary observes only the masked values (each
    individually uniform) while the environment learns exactly the XOR of
    all inputs. The ideal functionality leaks nothing but the aggregation
    event. The "secure distributed computation" motif of the paper's
    abstract, as a family indexed by the number of parties.

    Interfaces for instance [n] with [parties] participants:
    - environment: [n.in_i(x)] (EI, one per party), [n.sum(x)] (EO);
    - adversary: [n.m_i(v)] (AO: the masked publications), [n.leak] (AO,
      ideal), [n.release] (AI); its report: [n.guess(v)].

    The [unmasked] variant publishes the raw inputs — the falsification
    fixture: the adversary's guess then reveals party 0's input exactly. *)

open Cdse_psioa
open Cdse_secure

val real : parties:int -> string -> Structured.t
val unmasked : parties:int -> string -> Structured.t
val ideal : parties:int -> string -> Structured.t

val adversary : string -> Psioa.t
(** Observes party 0's masked publication, reports it as a guess of
    [x₀], releases. *)

val simulator : string -> Psioa.t

val env_guess : parties:int -> inputs:int list -> string -> Psioa.t
(** Feeds the given input bits and accepts iff the adversary's guess
    equals [x₀] — the privacy game (probability exactly 1/2 in both the
    masked real world and the ideal world). *)

val env_sum : parties:int -> inputs:int list -> string -> Psioa.t
(** Feeds the inputs and accepts iff the announced sum equals [⊕ᵢ xᵢ] —
    the correctness game (probability 1 in both worlds). *)
