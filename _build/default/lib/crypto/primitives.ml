open Cdse_psioa

let mask width = (1 lsl width) - 1

let xor_encrypt ~key ~width msg = (msg lxor key) land mask width
let xor_decrypt ~key ~width ct = xor_encrypt ~key ~width ct

let xorshift s =
  let s = s lxor (s lsl 13) land ((1 lsl 62) - 1) in
  let s = s lxor (s lsr 7) in
  s lxor (s lsl 17) land ((1 lsl 62) - 1)

let prg_expand ~seed ~len =
  let rec go acc s n = if n = 0 then List.rev acc else
    let s = xorshift (s + 0x9E3779B9) in
    go ((s land 0x3FFFFFFF) :: acc) s (n - 1)
  in
  go [] (seed + 1) len

let toy_digest v =
  let bits = Value.to_bits v in
  let n = Cdse_util.Bits.length bits in
  let h = ref 0x811C9DC5 in
  for i = 0 to n - 1 do
    h := (!h lxor if Cdse_util.Bits.get bits i then 1 else 0) * 0x01000193 land 0x3FFFFFFF
  done;
  !h

let commit ~msg ~nonce = toy_digest (Value.pair (Value.int msg) (Value.int nonce))

let commit_verify ~commitment ~msg ~nonce = commitment = commit ~msg ~nonce
