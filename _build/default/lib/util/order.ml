(** Comparator combinators shared across the library. *)

type 'a t = 'a -> 'a -> int

let pair cmp_a cmp_b (a1, b1) (a2, b2) =
  let c = cmp_a a1 a2 in
  if c <> 0 then c else cmp_b b1 b2

let triple cmp_a cmp_b cmp_c (a1, b1, c1) (a2, b2, c2) =
  let c = cmp_a a1 a2 in
  if c <> 0 then c
  else
    let c = cmp_b b1 b2 in
    if c <> 0 then c else cmp_c c1 c2

let rec list cmp l1 l2 =
  match (l1, l2) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
      let c = cmp x y in
      if c <> 0 then c else list cmp xs ys

let option cmp o1 o2 =
  match (o1, o2) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some a, Some b -> cmp a b

let by f cmp a b = cmp (f a) (f b)

let lex cmps a b =
  let rec go = function
    | [] -> 0
    | c :: rest ->
        let r = c a b in
        if r <> 0 then r else go rest
  in
  go cmps
