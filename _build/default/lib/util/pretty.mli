(** Plain-text table rendering for the benchmark harness, examples and CLI.

    Deliberately minimal: fixed-width padded columns with a dashed rule, so
    experiment tables render identically in terminals, logs and the
    EXPERIMENTS.md code blocks they are pasted into. *)

val table : ?out:Format.formatter -> header:string list -> string list list -> unit
(** Render [header] and the rows with per-column padding (default
    formatter: stdout). *)

val section : ?out:Format.formatter -> string -> unit
(** A [== title ==] heading with surrounding blank lines. *)

val float_cell : float -> string
(** ["%.4g"]. *)

val int_cell : int -> string
val bool_cell : bool -> string
