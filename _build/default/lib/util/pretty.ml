(** Plain-text table rendering for the benchmark harness and examples. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let widths header rows =
  let cols = List.length header in
  let w = Array.make cols 0 in
  let feed row = List.iteri (fun i cell -> if i < cols then w.(i) <- max w.(i) (String.length cell)) row in
  feed header;
  List.iter feed rows;
  w

let render_row w row =
  String.concat "  " (List.mapi (fun i cell -> pad w.(i) cell) row)

let table ?(out = Format.std_formatter) ~header rows =
  let w = widths header rows in
  let rule = String.map (fun _ -> '-') (render_row w header) in
  Format.fprintf out "%s@.%s@." (render_row w header) rule;
  List.iter (fun row -> Format.fprintf out "%s@." (render_row w row)) rows;
  Format.fprintf out "@."

let section ?(out = Format.std_formatter) title =
  Format.fprintf out "@.== %s ==@.@." title

let float_cell f = Printf.sprintf "%.4g" f
let int_cell = string_of_int
let bool_cell b = if b then "yes" else "no"
