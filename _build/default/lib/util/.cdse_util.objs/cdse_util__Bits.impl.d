lib/util/bits.ml: Array Bytes Char Format Int List Printf String
