lib/util/order.mli:
