lib/util/pretty.ml: Array Format List Printf String
