lib/util/cost.ml:
