lib/util/order.ml:
