lib/util/cost.mli:
