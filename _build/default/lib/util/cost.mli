(** Global step meter standing in for Turing-machine running time.

    Definition 4.1 of the paper bounds automata by the running time of
    decoding machines [M_start, M_sig, M_trans, M_step, M_state]. We replace
    Turing machines by cost-metered OCaml interpreters: every primitive step
    of an encoder/decoder calls {!tick}, and "runs in time at most b" becomes
    "the meter advanced by at most b" (see DESIGN.md, substitution table). *)

val reset : unit -> unit
(** Reset the meter to zero. *)

val tick : ?n:int -> unit -> unit
(** Advance the meter by [n] (default 1). *)

val get : unit -> int
(** Current meter value. *)

val measure : (unit -> 'a) -> 'a * int
(** [measure f] runs [f] with a fresh meter and returns its result together
    with the number of steps it consumed. The enclosing meter (if any) is
    advanced by the same amount, so nested measurements compose. *)
