type t = { len : int; data : Bytes.t }

let empty = { len = 0; data = Bytes.empty }
let length b = b.len

let bytes_for len = (len + 7) / 8

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Bits.get: index out of range";
  let byte = Char.code (Bytes.get b.data (i / 8)) in
  byte land (0x80 lsr (i mod 8)) <> 0

(* Internal: build from a generator function. *)
let init len f =
  if len < 0 then invalid_arg "Bits.init: negative length";
  let data = Bytes.make (bytes_for len) '\000' in
  for i = 0 to len - 1 do
    if f i then begin
      let j = i / 8 in
      let cur = Char.code (Bytes.get data j) in
      Bytes.set data j (Char.chr (cur lor (0x80 lsr (i mod 8))))
    end
  done;
  { len; data }

let of_bool_list l =
  let arr = Array.of_list l in
  init (Array.length arr) (Array.get arr)

let to_bool_list b = List.init b.len (get b)
let singleton x = init 1 (fun _ -> x)

let append a b =
  if a.len = 0 then b
  else if b.len = 0 then a
  else
    init (a.len + b.len) (fun i -> if i < a.len then get a i else get b (i - a.len))

let concat l = List.fold_left append empty l

let of_int ~width n =
  if width < 0 || width > 62 then invalid_arg "Bits.of_int: width out of range";
  init width (fun i -> n land (1 lsl (width - 1 - i)) <> 0)

let to_int b =
  if b.len > 62 then invalid_arg "Bits.to_int: too long";
  let rec go acc i = if i >= b.len then acc else go ((acc lsl 1) lor (if get b i then 1 else 0)) (i + 1) in
  go 0 0

(* Elias-gamma on n+1 so that 0 is encodable: unary prefix of (width-1)
   zeros, then the binary digits of n+1 (whose leading bit is 1). *)
let encode_nat n =
  if n < 0 then invalid_arg "Bits.encode_nat: negative";
  let m = n + 1 in
  let width =
    let rec go w v = if v = 0 then w else go (w + 1) (v lsr 1) in
    go 0 m
  in
  append (init (width - 1) (fun _ -> false)) (of_int ~width m)

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | c -> invalid_arg (Printf.sprintf "Bits.of_string: bad char %C" c))

let to_string b = String.init b.len (fun i -> if get b i then '1' else '0')

let equal a b = a.len = b.len && to_string a = to_string b

let compare a b =
  let c = Int.compare a.len b.len in
  if c <> 0 then c else String.compare (to_string a) (to_string b)

let pp fmt b = Format.pp_print_string fmt (to_string b)

module Reader = struct
  type bits = t
  type nonrec t = { bits : bits; mutable p : int }

  let make bits = { bits; p = 0 }
  let pos r = r.p
  let remaining r = r.bits.len - r.p
  let at_end r = r.p >= r.bits.len

  let read_bit r =
    if at_end r then invalid_arg "Bits.Reader.read_bit: exhausted";
    let v = get r.bits r.p in
    r.p <- r.p + 1;
    v

  let read_int ~width r =
    let rec go acc i = if i = 0 then acc else go ((acc lsl 1) lor (if read_bit r then 1 else 0)) (i - 1) in
    go 0 width

  let read_nat r =
    (* The unary prefix must terminate in a 1 bit within the stream: a
       truncated stream is malformed, not a zero. *)
    let rec zeros n =
      if at_end r then invalid_arg "Bits.Reader.read_nat: truncated input"
      else if read_bit r then n
      else zeros (n + 1)
    in
    let z = zeros 0 in
    (* We already consumed the leading 1 of the binary part. *)
    let rest = read_int ~width:z r in
    ((1 lsl z) lor rest) - 1

  let read_bits n r =
    let b = init n (fun i -> get r.bits (r.p + i)) in
    r.p <- r.p + n;
    b
end
