type t = int array (* coefficients, lowest degree first; normalized: no trailing zeros *)

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  Array.sub a 0 !n

let of_coeffs l =
  List.iter (fun c -> if c < 0 then invalid_arg "Poly.of_coeffs: negative coefficient") l;
  normalize (Array.of_list l)

let const c = of_coeffs [ c ]
let x = of_coeffs [ 0; 1 ]
let degree p = Array.length p - 1
let coeffs p = Array.to_list p

let eval p k =
  Array.fold_right (fun c acc -> (acc * k) + c) p 0

let add p q =
  let n = max (Array.length p) (Array.length q) in
  let at a i = if i < Array.length a then a.(i) else 0 in
  normalize (Array.init n (fun i -> at p i + at q i))

let mul p q =
  if Array.length p = 0 || Array.length q = 0 then [||]
  else begin
    let r = Array.make (Array.length p + Array.length q - 1) 0 in
    Array.iteri (fun i ci -> Array.iteri (fun j cj -> r.(i + j) <- r.(i + j) + (ci * cj)) q) p;
    normalize r
  end

let scale c p =
  if c < 0 then invalid_arg "Poly.scale: negative";
  normalize (Array.map (fun ci -> c * ci) p)

let compose p q =
  Array.fold_right (fun c acc -> add (const c) (mul acc q)) p [||]

let equal p q = p = q

let pp fmt p =
  if Array.length p = 0 then Format.pp_print_string fmt "0"
  else
    let first = ref true in
    Array.iteri
      (fun i c ->
        if c <> 0 then begin
          if not !first then Format.pp_print_string fmt " + ";
          first := false;
          match i with
          | 0 -> Format.fprintf fmt "%d" c
          | 1 -> if c = 1 then Format.fprintf fmt "k" else Format.fprintf fmt "%d·k" c
          | _ -> if c = 1 then Format.fprintf fmt "k^%d" i else Format.fprintf fmt "%d·k^%d" c i
        end)
      p;
    if !first then Format.pp_print_string fmt "0"

let dominates p f ~from ~upto =
  let rec go k = k > upto || (f k <= eval p k && go (k + 1)) in
  go from
