(** Immutable bit strings with self-delimiting codes.

    This module is the substrate for the bit-string representations
    [⟨q⟩, ⟨a⟩, ⟨tr⟩, ⟨C⟩] of Section 4.1 of the paper ("We adopt a standard
    bit-representation ..."). All encodings used by the bounded layer
    ({!Cdse_bounded}) bottom out here. Bit strings are packed MSB-first into
    bytes; all operations are purely functional. *)

type t
(** An immutable sequence of bits. *)

val empty : t

val length : t -> int
(** Number of bits. *)

val get : t -> int -> bool
(** [get b i] is bit [i] (0-based). Raises [Invalid_argument] if out of
    range. *)

val of_bool_list : bool list -> t
val to_bool_list : t -> bool list

val singleton : bool -> t

val append : t -> t -> t
(** [append a b] is the concatenation [a · b]. O(|a| + |b|). *)

val concat : t list -> t

val of_int : width:int -> int -> t
(** [of_int ~width n] is the [width]-bit big-endian encoding of
    [n land (2^width - 1)]. Raises [Invalid_argument] on negative [width] or
    [width > 62]. *)

val to_int : t -> int
(** Big-endian value of the whole bit string. Raises [Invalid_argument] when
    longer than 62 bits. *)

val encode_nat : int -> t
(** Self-delimiting (Elias-gamma style) encoding of a natural number, usable
    as a prefix of a longer code. Raises [Invalid_argument] on negatives. *)

val of_string : string -> t
(** [of_string "0101"] parses a literal bit string. Raises
    [Invalid_argument] on characters other than ['0'] and ['1']. *)

val to_string : t -> string
(** Literal rendering, e.g. ["0101"]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Sequential decoding cursor over a bit string. *)
module Reader : sig
  type bits := t
  type t

  val make : bits -> t
  val pos : t -> int
  val remaining : t -> int
  val read_bit : t -> bool
  (** Raises [Invalid_argument] when exhausted. *)

  val read_int : width:int -> t -> int
  val read_nat : t -> int
  (** Inverse of {!encode_nat}. *)

  val read_bits : int -> t -> bits
  val at_end : t -> bool
end
