(** Integer polynomials with natural-number coefficients.

    Used for the polynomial bounds [p, q1, q2 : ℕ → ℕ] of Definitions
    4.8–4.12 and for fitting empirical bound curves in the experiments
    (E1, E2). Coefficients are stored lowest-degree first. *)

type t

val of_coeffs : int list -> t
(** [of_coeffs [c0; c1; c2]] is [c0 + c1·x + c2·x²]. Raises
    [Invalid_argument] on negative coefficients. *)

val const : int -> t
val x : t
(** The identity polynomial. *)

val degree : t -> int
val eval : t -> int -> int
val add : t -> t -> t
val mul : t -> t -> t
val scale : int -> t -> t
val compose : t -> t -> t
(** [compose p q] is [p ∘ q]. *)

val equal : t -> t -> bool
val coeffs : t -> int list
val pp : Format.formatter -> t -> unit

val dominates : t -> (int -> int) -> from:int -> upto:int -> bool
(** [dominates p f ~from ~upto] checks [f k ≤ p k] for all [k] in
    [from..upto] — the finite-window stand-in for "f is polynomially
    bounded by p". *)
