(** Comparator combinators.

    Exact distributions ({!Cdse_prob.Dist}) carry explicit element
    comparators rather than going through functorised sets; these
    combinators assemble them for the product, list and option shapes the
    composition operators produce. *)

type 'a t = 'a -> 'a -> int

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val list : 'a t -> 'a list t
(** Lexicographic, shorter lists first on shared prefixes. *)

val option : 'a t -> 'a option t
(** [None] smallest. *)

val by : ('a -> 'b) -> 'b t -> 'a t
(** Compare through a projection. *)

val lex : 'a t list -> 'a t
(** First non-zero comparator wins. *)
