let counter = ref 0
let reset () = counter := 0
let tick ?(n = 1) () = counter := !counter + n
let get () = !counter

let measure f =
  let saved = !counter in
  counter := 0;
  let finish () =
    let spent = !counter in
    counter := saved + spent;
    spent
  in
  match f () with
  | v ->
      let spent = finish () in
      (v, spent)
  | exception e ->
      ignore (finish ());
      raise e
