(** Statistical distance between distributions.

    Definition 3.6 of the paper compares two image measures by
    [sup_{I} |Σ_{i∈I} (q(ζ_i) - p(ζ_i))| ≤ ε] — the supremum over countable
    families of observations of the absolute mass difference. For finite
    discrete (sub-)measures this supremum is attained on the sets where one
    measure dominates the other, so it equals
    [max(Σ_{q>p}(q-p), Σ_{p>q}(p-q))], with the halting deficits of
    sub-measures accounted as mass on a virtual ⊥ outcome. *)

val sup_set_distance : 'a Dist.t -> 'a Dist.t -> Rat.t
(** The Definition 3.6 distance. Both arguments must have been built with
    compatible comparators (the left one is used). For proper distributions
    this coincides with total-variation distance (no 1/2 factor, matching
    the paper's definition). *)

val tv_distance : 'a Dist.t -> 'a Dist.t -> Rat.t
(** Alias of {!sup_set_distance}. *)

val l1_distance : 'a Dist.t -> 'a Dist.t -> Rat.t
(** [Σ |p - q|] over the joint support (deficits included). *)

val balanced : eps:Rat.t -> 'a Dist.t -> 'a Dist.t -> bool
(** [sup_set_distance ≤ eps] — the pointwise check behind
    [σ S^{≤ε}_{E,f} σ'] once the two f-dists have been computed. *)

val max_gap_point : 'a Dist.t -> 'a Dist.t -> ('a * Rat.t) option
(** The observation with the largest pointwise mass gap and that gap —
    the distinguishing witness reported when a balance or implementation
    check fails. [None] only when both supports are empty. *)
