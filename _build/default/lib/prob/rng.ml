type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let a = bits64 t and b = bits64 t in
  ({ state = a }, { state = b })

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let pick t l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
