(** Exact rational arithmetic.

    Probabilities, statistical distances and the [ε] slack parameters of the
    implementation relations (Definitions 3.6, 4.12) are represented as exact
    rationals so that zero-distance claims (Lemma D.1: the forwarded
    scheduler achieves [ε = 0]) can be verified with [=] rather than a float
    tolerance. Values are kept normalized: [gcd(num, den) = 1], [den > 0],
    sign carried separately. *)

type t

val zero : t
val one : t
val half : t
val minus_one : t

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints num den]. Raises [Division_by_zero] when [den = 0]. *)

val make : sign:int -> num:Bignat.t -> den:Bignat.t -> t
(** Normalizing constructor; [sign] must be [-1], [0] or [1]. *)

val num : t -> Bignat.t
val den : t -> Bignat.t
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Raises [Division_by_zero]. *)

val inv : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sum : t list -> t

val is_zero : t -> bool
val is_proper_prob : t -> bool
(** [0 ≤ x ≤ 1]. *)

val pow : t -> int -> t
(** Integer powers; negative exponents invert. *)

val to_float : t -> float
val to_bits : t -> Cdse_util.Bits.t
(** Self-delimiting encoding (sign bit, then length-prefixed numerator and
    denominator): part of the transition encodings ⟨tr⟩ of Section 4.1. *)

val of_bits : Cdse_util.Bits.t -> t
(** Inverse of {!to_bits}; raises [Invalid_argument] on malformed input and
    [Division_by_zero] on a zero denominator. *)

val of_string : string -> t
(** Accepts ["3/4"], ["-3/4"], ["7"]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int
