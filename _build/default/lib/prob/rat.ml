type t = { sg : int; n : Bignat.t; d : Bignat.t }

let make ~sign ~num ~den =
  if Bignat.is_zero den then raise Division_by_zero;
  if sign < -1 || sign > 1 then invalid_arg "Rat.make: bad sign";
  if sign = 0 || Bignat.is_zero num then { sg = 0; n = Bignat.zero; d = Bignat.one }
  else
    let g = Bignat.gcd num den in
    let n, _ = Bignat.divmod num g in
    let d, _ = Bignat.divmod den g in
    { sg = sign; n; d }

let zero = { sg = 0; n = Bignat.zero; d = Bignat.one }
let one = { sg = 1; n = Bignat.one; d = Bignat.one }
let minus_one = { sg = -1; n = Bignat.one; d = Bignat.one }
let half = { sg = 1; n = Bignat.one; d = Bignat.two }

let of_int n =
  if n = 0 then zero
  else if n > 0 then { sg = 1; n = Bignat.of_int n; d = Bignat.one }
  else { sg = -1; n = Bignat.of_int (-n); d = Bignat.one }

let of_ints num den =
  if den = 0 then raise Division_by_zero;
  let sign = if num = 0 then 0 else if (num > 0) = (den > 0) then 1 else -1 in
  make ~sign ~num:(Bignat.of_int (abs num)) ~den:(Bignat.of_int (abs den))

let num r = r.n
let den r = r.d
let sign r = r.sg

let neg r = if r.sg = 0 then r else { r with sg = -r.sg }
let abs r = if r.sg < 0 then { r with sg = 1 } else r
let is_zero r = r.sg = 0

(* |a| + |b| with signs: compute on cross-multiplied numerators. Equal
   denominators (the common case when summing probability masses) skip the
   cross-multiplication, keeping gcd arguments small. *)
let add a b =
  if a.sg = 0 then b
  else if b.sg = 0 then a
  else
    let na, nb, d =
      if Bignat.equal a.d b.d then (a.n, b.n, a.d)
      else (Bignat.mul a.n b.d, Bignat.mul b.n a.d, Bignat.mul a.d b.d)
    in
    if a.sg = b.sg then make ~sign:a.sg ~num:(Bignat.add na nb) ~den:d
    else
      let c = Bignat.compare na nb in
      if c = 0 then zero
      else if c > 0 then make ~sign:a.sg ~num:(Bignat.sub na nb) ~den:d
      else make ~sign:b.sg ~num:(Bignat.sub nb na) ~den:d

let sub a b = add a (neg b)

let mul a b =
  if a.sg = 0 || b.sg = 0 then zero
  else make ~sign:(a.sg * b.sg) ~num:(Bignat.mul a.n b.n) ~den:(Bignat.mul a.d b.d)

let inv a =
  if a.sg = 0 then raise Division_by_zero;
  { a with n = a.d; d = a.n }

let div a b = mul a (inv b)

let compare a b = sign (sub a b)
let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sum = List.fold_left add zero
let is_proper_prob r = r.sg >= 0 && compare r one <= 0

let rec pow a k =
  if k = 0 then one
  else if k > 0 then
    { sg = (if a.sg < 0 && k land 1 = 1 then -1 else if a.sg = 0 then 0 else 1);
      n = Bignat.pow a.n k;
      d = Bignat.pow a.d k }
  else inv (pow a (-k))

let to_float r =
  let big_to_float b =
    match Bignat.to_int_opt b with
    | Some i -> float_of_int i
    | None ->
        (* Scale down: take the top 52 bits and reapply the exponent. *)
        let nb = Bignat.num_bits b in
        let shift = nb - 52 in
        let top, _ = Bignat.divmod b (Bignat.pow Bignat.two shift) in
        let m = match Bignat.to_int_opt top with Some i -> float_of_int i | None -> assert false in
        ldexp m shift
  in
  float_of_int r.sg *. (big_to_float r.n /. big_to_float r.d)

let to_bits r =
  let open Cdse_util.Bits in
  let nbits = Bignat.to_bits r.n and dbits = Bignat.to_bits r.d in
  concat
    [ singleton (r.sg >= 0);
      encode_nat (length nbits);
      nbits;
      encode_nat (length dbits);
      dbits ]

let of_bits bits =
  let open Cdse_util.Bits in
  let r = Reader.make bits in
  let sign_bit = Reader.read_bit r in
  let nlen = Reader.read_nat r in
  let n = Bignat.of_bits (Reader.read_bits nlen r) in
  let dlen = Reader.read_nat r in
  let d = Bignat.of_bits (Reader.read_bits dlen r) in
  if not (Reader.at_end r) then invalid_arg "Rat.of_bits: trailing bits";
  let sign = if Bignat.is_zero n then 0 else if sign_bit then 1 else -1 in
  make ~sign ~num:n ~den:d

let to_string r =
  let base =
    if Bignat.equal r.d Bignat.one then Bignat.to_string r.n
    else Bignat.to_string r.n ^ "/" ^ Bignat.to_string r.d
  in
  if r.sg < 0 then "-" ^ base else base

let of_string s =
  let s, sign = if String.length s > 0 && s.[0] = '-' then (String.sub s 1 (String.length s - 1), -1) else (s, 1) in
  match String.index_opt s '/' with
  | None ->
      let n = Bignat.of_string s in
      make ~sign:(if Bignat.is_zero n then 0 else sign) ~num:n ~den:Bignat.one
  | Some i ->
      let n = Bignat.of_string (String.sub s 0 i) in
      let d = Bignat.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make ~sign:(if Bignat.is_zero n then 0 else sign) ~num:n ~den:d

let pp fmt r = Format.pp_print_string fmt (to_string r)
let hash r = Hashtbl.hash (r.sg, Bignat.hash r.n, Bignat.hash r.d)
