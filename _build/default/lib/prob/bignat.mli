(** Arbitrary-precision natural numbers.

    Probability values in the framework must be exact: the balanced-scheduler
    relation of Definition 3.6 is checked with [ε = 0] in Lemma D.1, and cone
    measures are products of many transition probabilities, so machine floats
    would drift. No [zarith] is available in the sealed environment, so this
    module implements naturals from scratch on top of OCaml [int] limbs
    (base 2^31). It is the numeric substrate for {!Rat} and {!Dist}. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** Raises [Invalid_argument] on negatives. *)

val to_int_opt : t -> int option
(** [None] if the value does not fit in an OCaml [int]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
(** Truncated subtraction; raises [Invalid_argument] if the result would be
    negative. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q·b + r], [0 ≤ r < b]. Raises
    [Division_by_zero] when [b] is zero. *)

val gcd : t -> t -> t
val pow : t -> int -> t
val shift_left : t -> int -> t

val num_bits : t -> int
(** Position of the highest set bit plus one; 0 for zero. *)

val to_bits : t -> Cdse_util.Bits.t
(** Big-endian binary representation without leading zeros ({!zero} encodes
    to the empty bit string). Part of the ⟨·⟩ encodings of Section 4.1. *)

val of_bits : Cdse_util.Bits.t -> t

val of_string : string -> t
(** Decimal. Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int
