(* Walk the merged supports accumulating positive and negative mass
   differences; the deficits of sub-measures act as an extra ⊥ point. *)
let diffs a b =
  let cmp = Dist.compare_elt a in
  let rec go pos neg la lb =
    match (la, lb) with
    | [], [] -> (pos, neg)
    | (_, p) :: ra, [] -> go (Rat.add pos p) neg ra []
    | [], (_, q) :: rb -> go pos (Rat.add neg q) [] rb
    | (x, p) :: ra, (y, q) :: rb ->
        let c = cmp x y in
        if c < 0 then go (Rat.add pos p) neg ra lb
        else if c > 0 then go pos (Rat.add neg q) la rb
        else
          let d = Rat.sub p q in
          if Rat.sign d >= 0 then go (Rat.add pos d) neg ra rb
          else go pos (Rat.add neg (Rat.neg d)) ra rb
  in
  let pos, neg = go Rat.zero Rat.zero (Dist.items a) (Dist.items b) in
  (* Deficit difference contributes to whichever side halts more. *)
  let dd = Rat.sub (Dist.deficit a) (Dist.deficit b) in
  if Rat.sign dd >= 0 then (Rat.add pos dd, neg) else (pos, Rat.add neg (Rat.neg dd))

let sup_set_distance a b =
  let pos, neg = diffs a b in
  Rat.max pos neg

let tv_distance = sup_set_distance

let l1_distance a b =
  let pos, neg = diffs a b in
  Rat.add pos neg

let balanced ~eps a b = Rat.compare (sup_set_distance a b) eps <= 0

(* The observation carrying the largest single-point mass gap — the
   counterexample a failed balance/implementation check should show. *)
let max_gap_point a b =
  let cmp = Dist.compare_elt a in
  let gap x = Rat.abs (Rat.sub (Dist.prob a x) (Dist.prob b x)) in
  let candidates = List.sort_uniq cmp (Dist.support a @ Dist.support b) in
  List.fold_left
    (fun best x ->
      match best with
      | Some (_, g) when Rat.compare (gap x) g <= 0 -> best
      | _ -> Some (x, gap x))
    None candidates
