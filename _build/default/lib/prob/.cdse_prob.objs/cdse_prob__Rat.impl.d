lib/prob/rat.ml: Bignat Cdse_util Format Hashtbl List Reader String
