lib/prob/fprob.mli: Dist
