lib/prob/dist.mli: Format Rat Rng
