lib/prob/stat.mli: Dist Rat
