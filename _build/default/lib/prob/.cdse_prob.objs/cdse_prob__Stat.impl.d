lib/prob/stat.ml: Dist List Rat
