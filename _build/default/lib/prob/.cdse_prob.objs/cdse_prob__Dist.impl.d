lib/prob/dist.ml: Cdse_util Format List Rat Rng
