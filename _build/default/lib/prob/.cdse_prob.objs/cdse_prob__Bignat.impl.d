lib/prob/bignat.ml: Array Buffer Cdse_util Char Format Hashtbl Int List String
