lib/prob/bignat.mli: Cdse_util Format
