lib/prob/rng.mli:
