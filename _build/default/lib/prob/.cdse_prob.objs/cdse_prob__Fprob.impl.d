lib/prob/fprob.ml: Dist Float List Rat
