lib/prob/rat.mli: Bignat Cdse_util Format
