(* Little-endian limbs in base 2^31; invariant: no trailing zero limbs, so
   zero is the empty array. Base 2^31 keeps limb products within the 63-bit
   native int range. *)

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let is_zero a = Array.length a = 0

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative";
  let rec go acc n = if n = 0 then List.rev acc else go ((n land mask) :: acc) (n lsr limb_bits) in
  Array.of_list (go [] n)

let to_int_opt a =
  let rec go acc i =
    if i < 0 then Some acc
    else if acc > (max_int - a.(i)) lsr limb_bits then None
    else go ((acc lsl limb_bits) lor a.(i)) (i - 1)
  in
  go 0 (Array.length a - 1)

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i = if i < 0 then 0 else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i - 1)
    in
    go (Array.length a - 1)

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Bignat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s land mask;
        carry := s lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let num_bits a =
  let n = Array.length a in
  if n = 0 then 0
  else
    let top = a.(n - 1) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    ((n - 1) * limb_bits) + width 0 top

let get_bit a i =
  let limb = i / limb_bits in
  if limb >= Array.length a then false else a.(limb) land (1 lsl (i mod limb_bits)) <> 0

let shift_left a k =
  if is_zero a || k = 0 then a
  else begin
    let nb = num_bits a + k in
    let n = ((nb + limb_bits - 1) / limb_bits) in
    let r = Array.make n 0 in
    for i = 0 to num_bits a - 1 do
      if get_bit a i then begin
        let j = i + k in
        r.(j / limb_bits) <- r.(j / limb_bits) lor (1 lsl (j mod limb_bits))
      end
    done;
    normalize r
  end

(* Schoolbook binary long division, with a native fast path when both
   operands fit in an OCaml int — the common case for probability
   denominators, and the hot loop of gcd normalisation. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else
    match (to_int_opt a, to_int_opt b) with
    | Some x, Some y -> (of_int (x / y), of_int (x mod y))
    | _ ->
    begin
    let nb = num_bits a in
    let q = Array.make (Array.length a) 0 in
    let r = ref zero in
    for i = nb - 1 downto 0 do
      (* r := 2r + bit i of a *)
      let shifted = shift_left !r 1 in
      r := if get_bit a i then add shifted one else shifted;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize q, !r)
  end

let rec gcd a b = if is_zero b then a else gcd b (snd (divmod a b))

let pow a k =
  if k < 0 then invalid_arg "Bignat.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else if k land 1 = 1 then go (mul acc base) (mul base base) (k lsr 1)
    else go acc (mul base base) (k lsr 1)
  in
  go one a k

let to_bits a =
  let nb = num_bits a in
  Cdse_util.Bits.of_bool_list (List.init nb (fun i -> get_bit a (nb - 1 - i)))

let of_bits bits =
  let n = Cdse_util.Bits.length bits in
  let r = ref zero in
  for i = 0 to n - 1 do
    let shifted = shift_left !r 1 in
    r := if Cdse_util.Bits.get bits i then add shifted one else shifted
  done;
  !r

let ten = of_int 10

let to_string a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go v =
      if not (is_zero v) then begin
        let q, r = divmod v ten in
        let d = match to_int_opt r with Some d -> d | None -> assert false in
        go q;
        Buffer.add_char buf (Char.chr (Char.code '0' + d))
      end
    in
    go a;
    Buffer.contents buf
  end

let of_string s =
  if s = "" then invalid_arg "Bignat.of_string: empty";
  let r = ref zero in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Bignat.of_string: bad digit";
      r := add (mul !r ten) (of_int (Char.code c - Char.code '0')))
    s;
  !r

let pp fmt a = Format.pp_print_string fmt (to_string a)

let hash a = Hashtbl.hash (Array.to_list a)
