type 'a t = { cmp : 'a -> 'a -> int; items : ('a * Rat.t) list }

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

(* Merge-normalize an association list under [cmp]: sort, merge duplicates,
   drop zeros, validate non-negativity and mass ≤ 1. *)
let normalize cmp pairs =
  List.iter
    (fun (_, p) -> if Rat.sign p < 0 then invalid "Dist: negative probability %s" (Rat.to_string p))
    pairs;
  let sorted = List.stable_sort (fun (a, _) (b, _) -> cmp a b) pairs in
  let rec merge = function
    | [] -> []
    | [ (x, p) ] -> if Rat.is_zero p then [] else [ (x, p) ]
    | (x, p) :: ((y, q) :: rest as tail) ->
        if cmp x y = 0 then merge ((x, Rat.add p q) :: rest)
        else if Rat.is_zero p then merge tail
        else (x, p) :: merge tail
  in
  let items = merge sorted in
  let total = Rat.sum (List.map snd items) in
  if Rat.compare total Rat.one > 0 then invalid "Dist: mass %s exceeds 1" (Rat.to_string total);
  items

let make ~compare pairs = { cmp = compare; items = normalize compare pairs }
let empty ~compare = { cmp = compare; items = [] }
let dirac ~compare x = { cmp = compare; items = [ (x, Rat.one) ] }

let uniform ~compare l =
  match l with
  | [] -> invalid "Dist.uniform: empty support"
  | _ ->
      let p = Rat.of_ints 1 (List.length l) in
      make ~compare (List.map (fun x -> (x, p)) l)

let bernoulli ~compare p =
  if not (Rat.is_proper_prob p) then invalid "Dist.bernoulli: %s not in [0,1]" (Rat.to_string p);
  make ~compare [ (true, p); (false, Rat.sub Rat.one p) ]

let items d = d.items
let support d = List.map fst d.items
let size d = List.length d.items
let compare_elt d = d.cmp

let prob d x =
  match List.find_opt (fun (y, _) -> d.cmp x y = 0) d.items with
  | Some (_, p) -> p
  | None -> Rat.zero

let mass d = Rat.sum (List.map snd d.items)
let deficit d = Rat.sub Rat.one (mass d)
let is_proper d = Rat.equal (mass d) Rat.one

let scale factor d =
  if Rat.sign factor < 0 || Rat.compare factor Rat.one > 0 then
    invalid "Dist.scale: factor %s not in [0,1]" (Rat.to_string factor);
  if Rat.is_zero factor then { d with items = [] }
  else { d with items = List.map (fun (x, p) -> (x, Rat.mul factor p)) d.items }

let map ~compare f d = make ~compare (List.map (fun (x, p) -> (f x, p)) d.items)

let bind ~compare d f =
  make ~compare
    (List.concat_map (fun (x, p) -> List.map (fun (y, q) -> (y, Rat.mul p q)) (f x).items) d.items)

let product a b =
  let compare = Cdse_util.Order.pair a.cmp b.cmp in
  make ~compare
    (List.concat_map (fun (x, p) -> List.map (fun (y, q) -> ((x, y), Rat.mul p q)) b.items) a.items)

let product_list ~compare ds =
  let lcompare = Cdse_util.Order.list compare in
  List.fold_right
    (fun d acc ->
      make ~compare:lcompare
        (List.concat_map
           (fun (x, p) -> List.map (fun (xs, q) -> (x :: xs, Rat.mul p q)) acc.items)
           d.items))
    ds
    (dirac ~compare:lcompare [])

let filter pred d = { d with items = List.filter (fun (x, _) -> pred x) d.items }

let expect f d = Rat.sum (List.map (fun (x, p) -> Rat.mul (f x) p) d.items)

let equal a b =
  List.length a.items = List.length b.items
  && List.for_all2
       (fun (x, p) (y, q) -> a.cmp x y = 0 && Rat.equal p q)
       a.items b.items

let corresponds ~f a b =
  (* f restricted to supp(a) must be a probability-preserving bijection onto
     supp(b) (Definition 2.15). Pushing a through f and comparing measures
     checks surjectivity and preservation; injectivity on the support holds
     iff the image support has the same cardinality. *)
  let image = map ~compare:b.cmp f a in
  size image = size a && equal image b

let sample rng d =
  let target = Rat.of_ints (Rng.int rng 1_000_003) 1_000_003 in
  let rec go acc = function
    | [] -> None
    | (x, p) :: rest ->
        let acc = Rat.add acc p in
        if Rat.compare target acc < 0 then Some x else go acc rest
  in
  go Rat.zero d.items

let pp pp_elt fmt d =
  Format.fprintf fmt "@[<hov 1>{";
  List.iteri
    (fun i (x, p) ->
      if i > 0 then Format.fprintf fmt ";@ ";
      Format.fprintf fmt "%a ↦ %a" pp_elt x Rat.pp p)
    d.items;
  Format.fprintf fmt "}@]"
