type 'a t = { cmp : 'a -> 'a -> int; items : ('a * float) list }

let normalize cmp pairs =
  let sorted = List.stable_sort (fun (a, _) (b, _) -> cmp a b) pairs in
  let rec merge = function
    | [] -> []
    | [ (x, p) ] -> if p = 0.0 then [] else [ (x, p) ]
    | (x, p) :: ((y, q) :: rest as tail) ->
        if cmp x y = 0 then merge ((x, p +. q) :: rest)
        else if p = 0.0 then merge tail
        else (x, p) :: merge tail
  in
  merge sorted

let make ~compare pairs = { cmp = compare; items = normalize compare pairs }
let dirac ~compare x = { cmp = compare; items = [ (x, 1.0) ] }

let uniform ~compare l =
  let p = 1.0 /. float_of_int (List.length l) in
  make ~compare (List.map (fun x -> (x, p)) l)

let items d = d.items
let mass d = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 d.items
let size d = List.length d.items
let map ~compare f d = make ~compare (List.map (fun (x, p) -> (f x, p)) d.items)

let bind ~compare d f =
  make ~compare
    (List.concat_map (fun (x, p) -> List.map (fun (y, q) -> (y, p *. q)) (f x).items) d.items)

let tv_distance a b =
  let cmp = a.cmp in
  let rec go pos neg la lb =
    match (la, lb) with
    | [], [] -> (pos, neg)
    | (_, p) :: ra, [] -> go (pos +. p) neg ra []
    | [], (_, q) :: rb -> go pos (neg +. q) [] rb
    | (x, p) :: ra, (y, q) :: rb ->
        let c = cmp x y in
        if c < 0 then go (pos +. p) neg ra lb
        else if c > 0 then go pos (neg +. q) la rb
        else if p >= q then go (pos +. p -. q) neg ra rb
        else go pos (neg +. q -. p) ra rb
  in
  let pos, neg = go 0.0 0.0 a.items b.items in
  Float.max pos neg

let of_exact d =
  { cmp = Dist.compare_elt d; items = List.map (fun (x, p) -> (x, Rat.to_float p)) (Dist.items d) }
