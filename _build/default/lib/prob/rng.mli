(** Deterministic splittable pseudo-random generator (splitmix64 core).

    All randomized workload generation in tests, examples and benchmarks
    flows through this module with fixed seeds, so every run of the
    reproduction is bit-for-bit repeatable. It is {e not} a cryptographic
    primitive; the toy crypto substrate ({!Cdse_crypto}) documents its own
    assumptions. *)

type t

val make : int -> t
(** Seeded generator. *)

val split : t -> t * t
(** Two independent streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound > 0]. Mutates the
    generator state. *)

val bool : t -> bool
val bits64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
