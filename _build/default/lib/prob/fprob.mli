(** Float-backed distributions — the ablation counterpart of {!Dist}.

    Ablation A1 (DESIGN.md) quantifies the cost of exactness by re-running
    the measure computations with machine floats. This module mirrors the
    subset of the {!Dist} API the benchmarks need. It is never used by the
    checkers: float rounding would make [ε = 0] claims meaningless. *)

type 'a t

val make : compare:('a -> 'a -> int) -> ('a * float) list -> 'a t
val dirac : compare:('a -> 'a -> int) -> 'a -> 'a t
val uniform : compare:('a -> 'a -> int) -> 'a list -> 'a t
val items : 'a t -> ('a * float) list
val mass : 'a t -> float
val size : 'a t -> int
val map : compare:('b -> 'b -> int) -> ('a -> 'b) -> 'a t -> 'b t
val bind : compare:('b -> 'b -> int) -> 'a t -> ('a -> 'b t) -> 'b t
val tv_distance : 'a t -> 'a t -> float
val of_exact : 'a Dist.t -> 'a t
