open Cdse_util
open Cdse_prob
open Cdse_psioa

let state = Value.to_bits
let action = Action.to_bits

let length_prefixed b = Bits.append (Bits.encode_nat (Bits.length b)) b

let transition q a eta =
  Bits.concat
    (length_prefixed (state q)
    :: length_prefixed (action a)
    :: Bits.encode_nat (Dist.size eta)
    :: List.concat_map
         (fun (q', p) -> [ length_prefixed (state q'); length_prefixed (Rat.to_bits p) ])
         (Dist.items eta))

let config c = Value.to_bits (Cdse_config.Config.to_value c)

let action_set s =
  Bits.concat
    (Bits.encode_nat (Action_set.cardinal s)
    :: List.map (fun a -> length_prefixed (action a)) (Action_set.elements s))

let id_list ids =
  Bits.concat
    (Bits.encode_nat (List.length ids)
    :: List.map (fun id -> length_prefixed (Value.to_bits (Value.str id))) ids)

let sig_bits s =
  Bits.concat
    [ action_set (Sigs.input s); action_set (Sigs.output s); action_set (Sigs.internal s) ]
