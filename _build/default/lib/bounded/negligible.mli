(** Negligible functions — the ε of [≤_{neg,pt}] (Definition 4.12).

    A function [ε : ℕ → ℝ≥0] is negligible when it is eventually below
    [1/k^d] for every degree [d]. Finite data cannot verify the full
    quantifier; {!is_negligible_window} checks the defining inequality at
    one requested degree over a window, which is sound for the
    experiments because the composability results only {e propagate}
    negligibility (DESIGN.md §2). *)

open Cdse_prob

type t = int -> Rat.t

val zero : t

val inv_pow2 : t
(** [k ↦ 2^{-k}] — the canonical negligible function. *)

val scaled_inv_pow2 : Rat.t -> t
(** [k ↦ c · 2^{-k}]. *)

val inv_poly : int -> t
(** [k ↦ 1/k^d] — {e not} negligible; the falsification fixture. *)

val add : t -> t -> t
(** Negligible functions are closed under addition — the fact behind the
    transitivity theorem's ε-accounting (Theorem 4.16). *)

val scale : Rat.t -> t -> t

val mul_poly : Cdse_util.Poly.t -> t -> t
(** Closure under polynomial factors (hybrid arguments). *)

val le_pointwise : window:int list -> t -> t -> bool

val is_negligible_window : ?degree:int -> from:int -> upto:int -> t -> bool
(** [ε k ≤ 1/k^degree] for all [k] in [from..upto] (degree defaults
    to 3). *)
