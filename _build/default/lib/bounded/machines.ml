open Cdse_util
open Cdse_prob
open Cdse_psioa

(* Charge one meter unit per bit of input consumed or output produced —
   the linear-in-encoding-length cost model the B.1–B.3 proofs rely on. *)
let charge bits = Cost.tick ~n:(Bits.length bits) ()

let metered f =
  Cost.measure (fun () -> f ())

let decode_value bits =
  charge bits;
  Value.of_bits bits

let decode_action bits =
  charge bits;
  Action.of_bits bits

let m_start a qbits =
  metered (fun () ->
      let q = decode_value qbits in
      Value.equal q (Psioa.start a))

let m_sig a qbits abits kind =
  metered (fun () ->
      let q = decode_value qbits in
      let act = decode_action abits in
      let s = Psioa.signature a q in
      match kind with
      | `Input -> Action_set.mem act (Sigs.input s)
      | `Output -> Action_set.mem act (Sigs.output s)
      | `Internal -> Action_set.mem act (Sigs.internal s))

(* Parse a ⟨tr⟩ encoding back into (q, a, items). *)
let parse_transition bits =
  charge bits;
  let r = Bits.Reader.make bits in
  let read_chunk () =
    let n = Bits.Reader.read_nat r in
    Bits.Reader.read_bits n r
  in
  let q = Value.of_bits (read_chunk ()) in
  let a = Action.of_bits (read_chunk ()) in
  let size = Bits.Reader.read_nat r in
  let items =
    List.init size (fun _ ->
        let q' = Value.of_bits (read_chunk ()) in
        let pbits = read_chunk () in
        (q', pbits))
  in
  (q, a, items)

let m_trans a trbits =
  metered (fun () ->
      match parse_transition trbits with
      | exception Invalid_argument _ -> false
      | q, act, items -> (
          match Psioa.transition a q act with
          | None -> false
          | Some eta ->
              List.length items = Dist.size eta
              && List.for_all2
                   (fun (q1, pbits) (q2, p) ->
                     Value.equal q1 q2 && Bits.equal pbits (Rat.to_bits p))
                   items (Dist.items eta)))

let m_step a trbits q'bits =
  metered (fun () ->
      match parse_transition trbits with
      | exception Invalid_argument _ -> false
      | q, act, _ -> (
          let q' = decode_value q'bits in
          match Psioa.transition a q act with
          | None -> false
          | Some eta -> List.exists (Value.equal q') (Dist.support eta)))

let m_state a rng qbits abits =
  metered (fun () ->
      let q = decode_value qbits in
      let act = decode_action abits in
      let eta = Psioa.step a q act in
      match Dist.sample rng eta with
      | Some q' ->
          let out = Value.to_bits q' in
          charge out;
          out
      | None -> assert false (* transition measures are proper *))

let m_conf pca qbits =
  metered (fun () ->
      let q = decode_value qbits in
      let out = Encode.config (Cdse_config.Pca.config_of pca q) in
      charge out;
      out)

let m_created pca qbits abits =
  metered (fun () ->
      let q = decode_value qbits in
      let act = decode_action abits in
      let out = Encode.id_list (Cdse_config.Pca.created pca q act) in
      charge out;
      out)

let m_hidden pca qbits =
  metered (fun () ->
      let q = decode_value qbits in
      let out = Encode.action_set (Cdse_config.Pca.hidden_actions pca q) in
      charge out;
      out)
