open Cdse_psioa

type 'a t = int -> 'a

let const x _ = x
let map f fam k = f (fam k)
let map2 f fa fb k = f (fa k) (fb k)

let compose_psioa fa fb k = Compose.pair (fa k) (fb k)

let compatible_window ~window fa fb =
  List.for_all (fun k -> Compose.partially_compatible [ fa k; fb k ]) window

let time_bounded_window ~window ~bound ?max_states ?max_depth fam =
  List.for_all (fun k -> Bounded.is_time_bounded ?max_states ?max_depth (fam k) ~b:(bound k)) window

let poly_bounded_window ~window ~poly ?max_states ?max_depth fam =
  time_bounded_window ~window ~bound:(Cdse_util.Poly.eval poly) ?max_states ?max_depth fam

let fit_poly_bound ~window ~degree f =
  (* Smallest scalar c such that c·(1 + k + … + k^degree) dominates f on
     the window; a crude but honest dominating polynomial. *)
  match window with
  | [] -> None
  | _ ->
      let basis k =
        let rec go acc p i = if i > degree then acc else go (acc + p) (p * k) (i + 1) in
        go 0 1 0
      in
      let c =
        List.fold_left (fun acc k -> max acc ((f k + basis k - 1) / basis k)) 1 window
      in
      Some (Cdse_util.Poly.scale c (Cdse_util.Poly.of_coeffs (List.init (degree + 1) (fun _ -> 1))))
