open Cdse_util
open Cdse_prob
open Cdse_psioa

type report = {
  max_part_bits : int;
  max_decode_cost : int;
  max_state_cost : int;
  bound : int;
  states_explored : int;
}

let rng = Rng.make 0xB0DED

let measure_common ?(max_states = 200) ?(max_depth = 6) auto ~extra =
  let states = Psioa.reachable ~max_states ~max_depth auto in
  let part = ref 0 and decode = ref 0 and state_cost = ref 0 in
  let bump r v = if v > !r then r := v in
  List.iter
    (fun q ->
      let qbits = Encode.state q in
      bump part (Bits.length qbits);
      let ok, c = Machines.m_start auto qbits in
      ignore ok;
      bump decode c;
      Action_set.iter
        (fun act ->
          let abits = Encode.action act in
          bump part (Bits.length abits);
          List.iter
            (fun kind ->
              let _, c = Machines.m_sig auto qbits abits kind in
              bump decode c)
            [ `Input; `Output; `Internal ];
          match Psioa.transition auto q act with
          | None -> ()
          | Some eta ->
              let trbits = Encode.transition q act eta in
              bump part (Bits.length trbits);
              let _, c = Machines.m_trans auto trbits in
              bump decode c;
              List.iter
                (fun q' ->
                  let _, c = Machines.m_step auto trbits (Encode.state q') in
                  bump decode c)
                (Dist.support eta);
              let _, c = Machines.m_state auto rng qbits abits in
              bump state_cost c)
        (Psioa.enabled auto q);
      extra ~bump ~part ~decode q qbits)
    states;
  let bound = max !part (max !decode !state_cost) in
  { max_part_bits = !part;
    max_decode_cost = !decode;
    max_state_cost = !state_cost;
    bound;
    states_explored = List.length states }

let measure_psioa ?max_states ?max_depth auto =
  measure_common ?max_states ?max_depth auto ~extra:(fun ~bump:_ ~part:_ ~decode:_ _ _ -> ())

let measure_pca ?max_states ?max_depth pca =
  let auto = Cdse_config.Pca.psioa pca in
  measure_common ?max_states ?max_depth auto ~extra:(fun ~bump ~part ~decode q qbits ->
      (* Definition 4.2: configuration, created and hidden encodings and
         machines also count towards the bound. *)
      let cbits, cost = Machines.m_conf pca qbits in
      bump part (Bits.length cbits);
      bump decode cost;
      let hbits, cost = Machines.m_hidden pca qbits in
      bump part (Bits.length hbits);
      bump decode cost;
      Action_set.iter
        (fun act ->
          let fbits, cost = Machines.m_created pca qbits (Encode.action act) in
          bump part (Bits.length fbits);
          bump decode cost)
        (Psioa.enabled auto q))

let is_time_bounded ?max_states ?max_depth auto ~b =
  (measure_psioa ?max_states ?max_depth auto).bound <= b

let comp_ratio r1 r2 r12 = float_of_int r12.bound /. float_of_int (r1.bound + r2.bound)

let hide_ratio ~before ~after ~recognizer_bits =
  float_of_int after.bound /. float_of_int (before.bound + recognizer_bits)
