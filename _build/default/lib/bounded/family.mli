(** Indexed families of automata, schedulers and bounds
    (Definitions 4.7–4.10).

    A family is a function from the security parameter [k ∈ ℕ] to an
    object. Verification is over finite windows of [k] (DESIGN.md
    substitution table): the positive results being checked are
    constructive, so any violated index falsifies them. *)

open Cdse_psioa

type 'a t = int -> 'a
(** The family [(x_k)_{k∈ℕ}]. *)

val const : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

val compose_psioa : Psioa.t t -> Psioa.t t -> Psioa.t t
(** Pointwise parallel composition (Definition 4.7):
    [(A‖B)_k = A_k ‖ B_k]. *)

val compatible_window : window:int list -> Psioa.t t -> Psioa.t t -> bool
(** Pairwise partial compatibility at every index of the window. *)

val time_bounded_window :
  window:int list -> bound:(int -> int) -> ?max_states:int -> ?max_depth:int -> Psioa.t t -> bool
(** Definition 4.8 on a window: [A_k] is [bound k]-time-bounded for each
    [k]. *)

val poly_bounded_window :
  window:int list -> poly:Cdse_util.Poly.t -> ?max_states:int -> ?max_depth:int -> Psioa.t t -> bool
(** "Polynomially bounded description" over a window. *)

val fit_poly_bound :
  window:int list -> degree:int -> (int -> int) -> Cdse_util.Poly.t option
(** Find a small polynomial of the given degree that dominates the
    measurements on the window — used to report empirical bound curves. *)
