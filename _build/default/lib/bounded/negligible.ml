(** Negligible functions, for the [≤_{neg,pt}] relation (Definition 4.12).

    A function [ε : ℕ → ℝ≥0] is negligible when it is eventually below
    [1/k^d] for every degree [d]. Exact verification is impossible on
    finite data; {!is_negligible_window} checks the defining inequality for
    the requested degree on a window — callers state the degree they need
    (the composability results only ever {e propagate} negligibility, so
    window checks at matching degrees are sound for the experiments). *)

open Cdse_prob

type t = int -> Rat.t

let zero : t = fun _ -> Rat.zero

(** [k ↦ 2^{-k}] — the canonical negligible function. *)
let inv_pow2 : t = fun k -> Rat.pow Rat.half (max 0 k)

(** [k ↦ c / 2^k]. *)
let scaled_inv_pow2 c : t = fun k -> Rat.mul c (inv_pow2 k)

(** [k ↦ 1/k^d] — NOT negligible; used as a falsification fixture. *)
let inv_poly d : t = fun k -> if k <= 0 then Rat.one else Rat.of_ints 1 (int_of_float (float_of_int k ** float_of_int d))

let add (a : t) (b : t) : t = fun k -> Rat.add (a k) (b k)
let scale c (a : t) : t = fun k -> Rat.mul c (a k)

(** [mul_poly p ε]: multiplying a negligible function by a polynomial
    keeps it negligible — the closure behind "polynomially many hybrid
    steps" arguments (used implicitly by Theorem 4.30's induction over a
    constant number of substitutions). *)
let mul_poly p (a : t) : t = fun k -> Rat.mul (Rat.of_int (Cdse_util.Poly.eval p k)) (a k)

let le_pointwise ~window (a : t) (b : t) =
  List.for_all (fun k -> Rat.compare (a k) (b k) <= 0) window

(** [ε k ≤ 1/k^degree] for every k in the window past [from]. *)
let is_negligible_window ?(degree = 3) ~from ~upto (eps : t) =
  let rec go k =
    k > upto
    ||
    let bound = Rat.of_ints 1 (int_of_float (float_of_int k ** float_of_int degree)) in
    Rat.compare (eps k) bound <= 0 && go (k + 1)
  in
  go (max from 1)
