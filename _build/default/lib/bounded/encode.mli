(** Bit-string representations ⟨q⟩, ⟨a⟩, ⟨tr⟩, ⟨C⟩ (Section 4).

    The bounded layer (Definitions 4.1–4.2) constrains the lengths of these
    representations and the running time of machines that decode them.
    States and actions reuse the canonical {!Cdse_psioa.Value} encoding; a
    transition [(q, a, η)] is encoded as the concatenation of ⟨q⟩, ⟨a⟩ and
    the sorted list of [(state, probability)] pairs of [η]; a configuration
    through its value encoding. *)

open Cdse_prob
open Cdse_psioa

val state : Value.t -> Cdse_util.Bits.t
val action : Action.t -> Cdse_util.Bits.t

val transition : Value.t -> Action.t -> Value.t Dist.t -> Cdse_util.Bits.t
(** ⟨tr⟩ for [tr = (q, a, η)]. *)

val config : Cdse_config.Config.t -> Cdse_util.Bits.t
(** ⟨C⟩. *)

val action_set : Action_set.t -> Cdse_util.Bits.t
(** Encoding of hidden-action sets (Definition 4.2). *)

val id_list : string list -> Cdse_util.Bits.t
(** Encoding of created-automata sets [⟨φ⟩] (Definition 4.2). *)

val sig_bits : Sigs.t -> Cdse_util.Bits.t
(** Encoding of a full signature triple (used when sizing automaton
    descriptions). *)
