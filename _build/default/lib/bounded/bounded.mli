(** b-time-bounded automata (Definitions 4.1–4.2) and the boundedness
    preservation lemmas (Lemmas 4.3 and 4.5).

    A PSIOA is [b]-time-bounded when (1) every state/action/transition
    encoding is at most [b] bits, (2) the decoding machines answer within
    [b] meter units, and (3) the next-state machine runs within [b] units.
    {!measure_psioa} computes the smallest such [b] over the explored state
    space; {!measure_pca} additionally covers the configuration, created and
    hidden-actions machines of Definition 4.2.

    Experiments E1/E2 use these reports to validate the {e shape} of the
    lemmas: [bound (A₁‖A₂) ≤ c_comp · (bound A₁ + bound A₂)] and
    [bound (hide (A, S)) ≤ c_hide · (bound A + b')]. *)

open Cdse_psioa

type report = {
  max_part_bits : int;  (** item 1: largest ⟨q⟩/⟨a⟩/⟨tr⟩ encoding *)
  max_decode_cost : int;  (** item 2: worst cost over M_start/M_sig/M_trans/M_step *)
  max_state_cost : int;  (** item 3: worst M_state cost *)
  bound : int;  (** the inferred [b]: max of the above *)
  states_explored : int;
}

val measure_psioa : ?max_states:int -> ?max_depth:int -> Psioa.t -> report
val measure_pca : ?max_states:int -> ?max_depth:int -> Cdse_config.Pca.t -> report

val is_time_bounded : ?max_states:int -> ?max_depth:int -> Psioa.t -> b:int -> bool
(** Definition 4.1 on the explored space. *)

val comp_ratio : report -> report -> report -> float
(** [comp_ratio r1 r2 r12 = bound r12 / (bound r1 + bound r2)] — the
    empirical [c_comp] of Lemma 4.3; the lemma predicts this is bounded by
    a constant independent of the automata. *)

val hide_ratio : before:report -> after:report -> recognizer_bits:int -> float
(** Empirical [c_hide] of Lemma 4.5. *)
