lib/bounded/encode.mli: Action Action_set Cdse_config Cdse_prob Cdse_psioa Cdse_util Dist Sigs Value
