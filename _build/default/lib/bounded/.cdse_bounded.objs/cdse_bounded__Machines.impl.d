lib/bounded/machines.ml: Action Action_set Bits Cdse_config Cdse_prob Cdse_psioa Cdse_util Cost Dist Encode List Psioa Rat Sigs Value
