lib/bounded/family.mli: Cdse_psioa Cdse_util Psioa
