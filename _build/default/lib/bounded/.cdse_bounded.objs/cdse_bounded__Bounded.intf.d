lib/bounded/bounded.mli: Cdse_config Cdse_psioa Psioa
