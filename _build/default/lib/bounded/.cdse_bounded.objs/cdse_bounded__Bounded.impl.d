lib/bounded/bounded.ml: Action_set Bits Cdse_config Cdse_prob Cdse_psioa Cdse_util Dist Encode List Machines Psioa Rng
