lib/bounded/negligible.mli: Cdse_prob Cdse_util Rat
