lib/bounded/machines.mli: Cdse_config Cdse_prob Cdse_psioa Cdse_util Psioa Rng
