lib/bounded/negligible.ml: Cdse_prob Cdse_util List Rat
