lib/bounded/family.ml: Bounded Cdse_psioa Cdse_util Compose List
