lib/bounded/encode.ml: Action Action_set Bits Cdse_config Cdse_prob Cdse_psioa Cdse_util Dist List Rat Sigs Value
