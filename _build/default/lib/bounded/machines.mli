(** Cost-metered decoding machines (Definition 4.1 items 2–3, Definition 4.2).

    Each function plays the role of one of the paper's Turing machines
    [M_start, M_sig, M_trans, M_step, M_state] (and [M_conf, M_created,
    M_hidden] for PCA). The machine model is replaced by cost-metered
    interpreters: every machine charges the {!Cdse_util.Cost} meter one unit
    per input/output bit processed, so "runs in time at most b" becomes
    "consumed at most b meter units" (see DESIGN.md). All machines return
    [(answer, cost)]. *)

open Cdse_prob
open Cdse_psioa

val m_start : Psioa.t -> Cdse_util.Bits.t -> bool * int
(** Does ⟨q⟩ denote the start state? *)

val m_sig :
  Psioa.t -> Cdse_util.Bits.t -> Cdse_util.Bits.t -> [ `Input | `Output | `Internal ] -> bool * int
(** Is the action denoted by the second argument in the given component of
    [sig(A)(q)]? *)

val m_trans : Psioa.t -> Cdse_util.Bits.t -> bool * int
(** Does ⟨tr⟩ denote a transition of [A]? *)

val m_step : Psioa.t -> Cdse_util.Bits.t -> Cdse_util.Bits.t -> bool * int
(** Given ⟨tr⟩ and a candidate ⟨q'⟩: is [(q, a, q') ∈ steps(A)]? *)

val m_state : Psioa.t -> Rng.t -> Cdse_util.Bits.t -> Cdse_util.Bits.t -> Cdse_util.Bits.t * int
(** The probabilistic next-state machine: sample [q'] from [η_(A,q,a)] and
    return its encoding. *)

val m_conf : Cdse_config.Pca.t -> Cdse_util.Bits.t -> Cdse_util.Bits.t * int
(** ⟨config(X)(q)⟩ (Definition 4.2). *)

val m_created : Cdse_config.Pca.t -> Cdse_util.Bits.t -> Cdse_util.Bits.t -> Cdse_util.Bits.t * int
(** ⟨created(X)(q)(a)⟩. *)

val m_hidden : Cdse_config.Pca.t -> Cdse_util.Bits.t -> Cdse_util.Bits.t * int
(** ⟨hidden-actions(X)(q)⟩. *)
