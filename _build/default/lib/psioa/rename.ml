type t = Value.t -> Action.t -> Action.t

let psioa a r =
  let signature q = Sigs.rename (r q) (Psioa.signature a q) in
  let transition q act =
    (* Invert r(q) on the finite enabled set to recover the original action. *)
    let originals = Action_set.elements (Psioa.enabled a q) in
    match List.find_opt (fun orig -> Action.equal (r q orig) act) originals with
    | Some orig -> Psioa.transition a q orig
    | None -> None
  in
  Psioa.make ~name:(Psioa.name a) ~start:(Psioa.start a) ~signature ~transition

let prefix p _q act = Action.with_name (fun n -> p ^ n) act

let on_names f _q act = Action.with_name f act

let only set r q act = if Action_set.mem act set then r q act else act
