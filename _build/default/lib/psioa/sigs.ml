type t = { input : Action_set.t; output : Action_set.t; internal : Action_set.t }

exception Not_disjoint of string

let make ~input ~output ~internal =
  if not (Action_set.disjoint3 input output internal) then
    raise
      (Not_disjoint
         (Format.asprintf "Sigs.make: overlapping components in=%a out=%a int=%a" Action_set.pp
            input Action_set.pp output Action_set.pp internal));
  { input; output; internal }

let empty = { input = Action_set.empty; output = Action_set.empty; internal = Action_set.empty }

let is_empty s =
  Action_set.is_empty s.input && Action_set.is_empty s.output && Action_set.is_empty s.internal

let input s = s.input
let output s = s.output
let internal s = s.internal
let all s = Action_set.union s.input (Action_set.union s.output s.internal)
let ext s = Action_set.union s.input s.output
let local s = Action_set.union s.output s.internal
let mem a s = Action_set.mem a (all s)

let classify a s =
  if Action_set.mem a s.input then `Input
  else if Action_set.mem a s.output then `Output
  else if Action_set.mem a s.internal then `Internal
  else `Absent

(* Definition 2.3. *)
let compatible s1 s2 =
  Action_set.disjoint (all s1) s2.internal
  && Action_set.disjoint (all s2) s1.internal
  && Action_set.disjoint s1.output s2.output

let rec compatible_list = function
  | [] | [ _ ] -> true
  | s :: rest -> List.for_all (compatible s) rest && compatible_list rest

(* Definition 2.4. *)
let compose s1 s2 =
  if not (compatible s1 s2) then
    raise (Not_disjoint "Sigs.compose: incompatible signatures");
  let output = Action_set.union s1.output s2.output in
  let input = Action_set.diff (Action_set.union s1.input s2.input) output in
  let internal = Action_set.union s1.internal s2.internal in
  make ~input ~output ~internal

let compose_list = function
  | [] -> empty
  | s :: rest -> List.fold_left compose s rest

(* Definition 2.6. *)
let hide s hidden =
  let hidden = Action_set.inter s.output hidden in
  { input = s.input;
    output = Action_set.diff s.output hidden;
    internal = Action_set.union s.internal hidden }

let rename f s =
  let check_injective set =
    let mapped = Action_set.map_actions f set in
    if Action_set.cardinal mapped <> Action_set.cardinal set then
      raise (Not_disjoint "Sigs.rename: renaming not injective on signature");
    mapped
  in
  make ~input:(check_injective s.input) ~output:(check_injective s.output)
    ~internal:(check_injective s.internal)

let equal s1 s2 =
  Action_set.equal s1.input s2.input
  && Action_set.equal s1.output s2.output
  && Action_set.equal s1.internal s2.internal

let pp fmt s =
  Format.fprintf fmt "@[<hov>in=%a@ out=%a@ int=%a@]" Action_set.pp s.input Action_set.pp s.output
    Action_set.pp s.internal
