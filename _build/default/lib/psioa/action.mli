(** Actions: named events with a structured payload.

    The paper's action universe is an abstract countable set partitioned at
    each state into input, output and internal actions (Definition 2.1). An
    action here is a name plus a {!Value.t} payload, so "send(m)" for every
    message [m] is a family of actions sharing a name — exactly how the
    crypto and dynamic examples use them. *)

type t = { name : string; payload : Value.t }

val make : ?payload:Value.t -> string -> t
val name : t -> string
val payload : t -> Value.t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val to_bits : t -> Cdse_util.Bits.t
(** The ⟨a⟩ encoding of Section 4.1. *)

val of_bits : Cdse_util.Bits.t -> t
val bit_length : t -> int

val with_name : (string -> string) -> t -> t
(** Rename by transforming the action name, keeping the payload. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
