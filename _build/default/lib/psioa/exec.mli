(** Execution fragments, executions and traces (Definition 2.2).

    An execution fragment [α = q⁰ a¹ q¹ a² …] is an alternating sequence of
    states and actions. Fragments here are always finite (the measure layer
    works with depth-bounded cones); they are stored with the step list
    reversed for O(1) extension. *)

type t

val init : Value.t -> t
(** The zero-length fragment at a state. *)

val extend : t -> Action.t -> Value.t -> t
(** [α ⌢ (a, q')] — append one step. *)

val fstate : t -> Value.t
val lstate : t -> Value.t

val length : t -> int
(** [|α|]: number of transitions. *)

val steps : t -> (Action.t * Value.t) list
(** Steps in execution order. *)

val states : t -> Value.t list
(** [q⁰; q¹; …] in order (length + 1 entries). *)

val actions : t -> Action.t list

val of_steps : Value.t -> (Action.t * Value.t) list -> t

val concat : t -> t -> t
(** [α ⌢ α']; raises [Invalid_argument] unless [fstate α' = lstate α]. *)

val is_prefix : t -> of_:t -> bool
(** [α ≤ α']. *)

val trace : sig_of:(Value.t -> Sigs.t) -> t -> Action.t list
(** The trace of [α]: the restriction to actions external in the signature
    of their source state. [sig_of] is the signature function of the
    automaton the fragment belongs to. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
