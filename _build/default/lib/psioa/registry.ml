(** The [aut : Autids → Auts] mapping of Section 2.2.

    Configuration automata (Definition 2.9) refer to sub-automata by
    identifier; a registry resolves identifiers to concrete PSIOA. *)

module Smap = Map.Make (String)

type t = Psioa.t Smap.t

let empty : t = Smap.empty

let add auto reg = Smap.add (Psioa.name auto) auto reg

let of_list autos = List.fold_left (fun reg a -> add a reg) empty autos

exception Unknown_automaton of string

let find reg id =
  match Smap.find_opt id reg with
  | Some a -> a
  | None -> raise (Unknown_automaton id)

let mem reg id = Smap.mem id reg
let ids reg = List.map fst (Smap.bindings reg)
let union a b = Smap.union (fun _ x _ -> Some x) a b
