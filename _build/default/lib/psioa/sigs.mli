(** State signatures: input / output / internal action partitions.

    Implements Definitions 2.3 (compatible signatures), 2.4 (signature
    composition) and 2.6 (hiding on signatures). A signature is the triple
    [sig(A)(q) = (in(A)(q), out(A)(q), int(A)(q))] of mutually disjoint
    action sets attached to a single state. *)

type t = private { input : Action_set.t; output : Action_set.t; internal : Action_set.t }

exception Not_disjoint of string

val make : input:Action_set.t -> output:Action_set.t -> internal:Action_set.t -> t
(** Raises {!Not_disjoint} if the three sets overlap (constraint of
    Definition 2.1). *)

val empty : t
(** The empty signature — an automaton in a state with empty signature is
    destroyed by configuration reduction (Definition 2.12). *)

val is_empty : t -> bool

val input : t -> Action_set.t
val output : t -> Action_set.t
val internal : t -> Action_set.t

val all : t -> Action_set.t
(** [sig-hat]: union of the three components. *)

val ext : t -> Action_set.t
(** External actions: input ∪ output. *)

val local : t -> Action_set.t
(** Locally controlled: output ∪ internal. *)

val mem : Action.t -> t -> bool

val classify : Action.t -> t -> [ `Input | `Output | `Internal | `Absent ]

val compatible : t -> t -> bool
(** Definition 2.3: no shared outputs, and neither's internal actions appear
    in the other. *)

val compatible_list : t list -> bool
(** Pairwise compatibility of a set of signatures. *)

val compose : t -> t -> t
(** Definition 2.4: [(in ∪ in' − (out ∪ out'), out ∪ out', int ∪ int')].
    Raises {!Not_disjoint} if the signatures are not compatible. *)

val compose_list : t list -> t

val hide : t -> Action_set.t -> t
(** Definition 2.6: [(in, out∖S, int ∪ (out∩S))]. Actions of [S] not in the
    output set are ignored. *)

val rename : (Action.t -> Action.t) -> t -> t
(** Apply an action renaming to every component. Raises {!Not_disjoint} if
    the renaming is not injective on this signature. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
