open Cdse_prob

type kind = In | Out | Int

type rule = { kind : kind; action : Action.t; target : Value.t Dist.t }

let input action target = { kind = In; action; target }
let output action target = { kind = Out; action; target }
let internal action target = { kind = Int; action; target }
let input_to action q = input action (Vdist.dirac q)
let output_to action q = output action (Vdist.dirac q)
let internal_to action q = internal action (Vdist.dirac q)

type entry = Value.t * rule list

let state q rules : entry = (q, rules)

module Vmap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

let make ~name ~start entries =
  let table =
    List.fold_left
      (fun acc (q, rules) ->
        if Vmap.mem q acc then
          invalid_arg (Printf.sprintf "Dsl.make %s: duplicate state %s" name (Value.to_string q));
        let seen = Hashtbl.create 8 in
        List.iter
          (fun r ->
            let key = Action.to_string r.action in
            if Hashtbl.mem seen key then
              invalid_arg
                (Printf.sprintf "Dsl.make %s: duplicate action %s at state %s" name key
                   (Value.to_string q));
            Hashtbl.replace seen key ())
          rules;
        Vmap.add q rules acc)
      Vmap.empty entries
  in
  if not (Vmap.mem start table) then
    invalid_arg (Printf.sprintf "Dsl.make %s: start state not listed" name);
  let rules_of q = Option.value ~default:[] (Vmap.find_opt q table) in
  let signature q =
    let pick k =
      Action_set.of_list
        (List.filter_map (fun r -> if r.kind = k then Some r.action else None) (rules_of q))
    in
    Sigs.make ~input:(pick In) ~output:(pick Out) ~internal:(pick Int)
  in
  let transition q act =
    List.find_map
      (fun r -> if Action.equal r.action act then Some r.target else None)
      (rules_of q)
  in
  Psioa.make ~name ~start ~signature ~transition
