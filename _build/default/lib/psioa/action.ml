type t = { name : string; payload : Value.t }

let make ?(payload = Value.Unit) name = { name; payload }
let name a = a.name
let payload a = a.payload

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else Value.compare a.payload b.payload

let equal a b = compare a b = 0
let hash a = Hashtbl.hash (a.name, Value.hash a.payload)

let to_bits a = Value.to_bits (Value.Tag (a.name, a.payload))

let of_bits bits =
  match Value.of_bits bits with
  | Value.Tag (name, payload) -> { name; payload }
  | _ -> invalid_arg "Action.of_bits: not an action encoding"

let bit_length a = Cdse_util.Bits.length (to_bits a)

let with_name f a = { a with name = f a.name }

let pp fmt a =
  match a.payload with
  | Value.Unit -> Format.pp_print_string fmt a.name
  | p -> Format.fprintf fmt "%s(%a)" a.name Value.pp p

let to_string a = Format.asprintf "%a" pp a
