(** Universal value language for automaton states and action payloads.

    The paper treats states abstractly ("a countable set of states",
    Definition 2.1) together with a standard bit-string representation ⟨q⟩
    (Section 4). We realise both at once: every state and payload is a value
    of this small first-order term language, which carries a total order, a
    hash, and a canonical self-delimiting binary encoding. Composite automata
    use {!Pair}/{!List} states; configuration automata encode whole
    configurations as values (see {!Cdse_config.Config.to_value}). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
  | Tag of string * t
      (** A labelled value, used to keep state spaces of distinct automata
          disjoint and encodings unambiguous. *)

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t
val tag : string -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val to_bits : t -> Cdse_util.Bits.t
(** Canonical self-delimiting encoding — the ⟨q⟩ of Section 4.1. *)

val decode : Cdse_util.Bits.Reader.t -> t
(** Inverse of {!to_bits}; raises [Invalid_argument] on malformed input. *)

val of_bits : Cdse_util.Bits.t -> t
(** Decode a complete bit string; raises [Invalid_argument] if bits remain. *)

val bit_length : t -> int
(** [Bits.length (to_bits v)] — the size that the boundedness definitions
    (Def 4.1 item 1) constrain. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
