(** Parallel composition of PSIOA (Definitions 2.5 and 2.18).

    The composite of [A₁, …, Aₙ] has states [(q₁, …, qₙ)] (represented as
    [Value.List]), the composed signature of Definition 2.4 at each state,
    and joint transitions: on action [a], every component with [a] in its
    signature moves by its own measure and the others stay put, the results
    combined by the product measure [η₁ ⊗ … ⊗ ηₙ] (Definition 2.5). *)

exception Incompatible of string
(** Raised when a reachable state's component signatures violate
    Definition 2.3. A set of automata is {e partially compatible} when no
    reachable state raises this. *)

val pair : ?name:string -> Psioa.t -> Psioa.t -> Psioa.t
(** [A₁ ‖ A₂] with states [Value.Pair (q₁, q₂)] — the binary form used by
    environments ([E ‖ A], Definition 3.3). *)

val parallel : ?name:string -> Psioa.t list -> Psioa.t
(** n-ary composition with states [Value.List [q₁; …; qₙ]]. The list must be
    non-empty. *)

val proj_pair : Value.t -> Value.t * Value.t
(** Component states of a {!pair} composite state ([q ↾ Aᵢ]). *)

val proj_list : Value.t -> Value.t list

val partially_compatible :
  ?max_states:int -> ?max_depth:int -> Psioa.t list -> bool
(** Check Definition 2.18's side condition on the explored reachable
    states. *)

val proj_exec : Psioa.t list -> int -> Exec.t -> Exec.t
(** Project an execution of [parallel l] onto component [i]: keep the steps
    whose action is in that component's signature at its current local
    state. *)
