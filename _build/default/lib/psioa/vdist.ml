(** Distributions over {!Value.t} — the transition-target measures
    [Disc(Q_A)] of Definition 2.1, specialised to the universal value state
    space. Thin convenience wrappers around {!Cdse_prob.Dist}. *)

open Cdse_prob

type t = Value.t Dist.t

let dirac v = Dist.dirac ~compare:Value.compare v
let uniform vs = Dist.uniform ~compare:Value.compare vs
let make pairs = Dist.make ~compare:Value.compare pairs

let coin ?(p = Rat.half) hd tl =
  make [ (hd, p); (tl, Rat.sub Rat.one p) ]

let map f d = Dist.map ~compare:Value.compare f d
let bind d f = Dist.bind ~compare:Value.compare d f
let pp = Dist.pp Value.pp
