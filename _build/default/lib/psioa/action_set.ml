(** Finite sets of actions.

    The paper allows countable action sets per state; we restrict to finite
    explicit sets (DESIGN.md substitution table): depth-bounded executions
    only ever inspect finitely many actions. *)

include Set.Make (Action)

let of_names names = of_list (List.map (fun n -> Action.make n) names)

let disjoint3 a b c = disjoint a b && disjoint a c && disjoint b c

let map_actions f s = of_list (List.map f (elements s))

let pp fmt s =
  Format.fprintf fmt "{@[<hov>%a@]}"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ") Action.pp)
    (elements s)

let to_string s = Format.asprintf "%a" pp s
