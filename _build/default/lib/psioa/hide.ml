(** The hiding operator on PSIOA (Definition 2.7).

    [psioa a h] reclassifies, at every state [q], the output actions
    [h q ∩ out(A)(q)] as internal. Transitions are untouched: hiding only
    changes external visibility (and hence traces and insight functions). *)

let psioa a h =
  let signature q = Sigs.hide (Psioa.signature a q) (h q) in
  Psioa.make
    ~name:(Psioa.name a)
    ~start:(Psioa.start a)
    ~signature
    ~transition:(Psioa.transition a)

(** Hide a fixed action set at every state. *)
let psioa_const a set = psioa a (fun _ -> set)
