(** Export explored automata as Graphviz DOT or a text transition table.

    Diagnostic tooling: render the reachable fragment of a PSIOA for
    inspection (`cdse_cli dot`), with probabilities printed exactly.
    Internal actions are dashed, outputs solid, inputs dotted. *)

val to_dot : ?max_states:int -> ?max_depth:int -> Psioa.t -> string
(** Graphviz digraph of the explored reachable fragment. Probabilistic
    transitions fan out from an intermediate point node labelled with the
    action. *)

val to_table : ?max_states:int -> ?max_depth:int -> Psioa.t -> string
(** Plain-text transition table: one line per (state, action, target,
    probability). *)
