(** Strong probabilistic bisimulation for finite-state PSIOA.

    A sound {e proof method} for the implementation relations of the
    paper: if two automata are strongly bisimilar (with internal actions
    abstracted to a common τ label), every observation distribution
    obtained through matching schedulers coincides, so bisimilarity gives
    [ε = 0] implementations without enumerating schedulers. The converse
    fails — bisimulation is finer than observational equivalence — which
    makes this a conservative, always-sound checker (Segala's probabilistic
    bisimulation for probabilistic automata [14]).

    The algorithm is classic partition refinement on the disjoint union of
    the two (explored) state spaces: blocks start from signature
    fingerprints and are split until, for every abstract label, related
    states present the same set of block-probability vectors. *)

type label =
  | Ext of Action.t  (** external actions are matched by name and payload *)
  | Tau  (** all internal actions collapse to τ *)

val default_label : Sigs.t -> Action.t -> label
(** [Ext a] for external actions of the signature, [Tau] for internal. *)

val bisimilar :
  ?max_states:int ->
  ?label:(Sigs.t -> Action.t -> label) ->
  Psioa.t ->
  Psioa.t ->
  bool
(** Are the two automata's start states strongly bisimilar on their
    explored state spaces (default cap 2000 states each)? Raises
    [Invalid_argument] if exploration truncates (the result would be
    unsound). *)

val classes :
  ?max_states:int ->
  ?label:(Sigs.t -> Action.t -> label) ->
  Psioa.t ->
  Psioa.t ->
  int * int
(** [(number of blocks, number of states considered)] of the final
    partition — exposed for diagnostics and benchmarks. *)
