(** Action renaming for PSIOA (Definition 2.8, Lemma A.1).

    A renaming [r] gives, for every state [q], an injective map on the
    enabled actions [sig-hat(A)(q)]. The renamed automaton [r(A)] has the
    same states and transition measures, with every action relabelled. *)

type t = Value.t -> Action.t -> Action.t
(** [r q a]: the renaming applied at state [q]. Must be injective on
    [sig-hat(A)(q)] for each [q] of the automaton it is applied to
    ({!Sigs.rename} enforces this lazily, raising {!Sigs.Not_disjoint}). *)

val psioa : Psioa.t -> t -> Psioa.t
(** [r(A)] per Definition 2.8. The transition relation is
    [{(q, r(a), η) | (q, a, η) ∈ dtrans(A)}]: an incoming renamed action is
    translated back through the per-state inverse before stepping. *)

val prefix : string -> t
(** Uniform renaming [a ↦ p ^ a] — always injective. *)

val on_names : (string -> string) -> t
(** State-independent renaming of action names; injectivity is the
    caller's obligation (checked lazily per state). *)

val only : Action_set.t -> t -> t
(** Restrict a renaming to a given action set, leaving others unchanged.
    Used for the adversary-action renamings [g] of Section 4.9, which only
    touch [AAct]. *)
