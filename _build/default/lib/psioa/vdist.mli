(** Distributions over state values — the transition-target measures
    [Disc(Q_A)] of Definition 2.1, specialised to the universal value
    state space. Thin wrappers around {!Cdse_prob.Dist} with the value
    comparator baked in. *)

open Cdse_prob

type t = Value.t Dist.t

val dirac : Value.t -> t
(** [δ_q]. *)

val uniform : Value.t list -> t
val make : (Value.t * Rat.t) list -> t

val coin : ?p:Rat.t -> Value.t -> Value.t -> t
(** [coin ~p heads tails]: [heads] with probability [p] (default 1/2). *)

val map : (Value.t -> Value.t) -> t -> t
val bind : t -> (Value.t -> t) -> t
val pp : Format.formatter -> t -> unit
