(** Finite sets of actions.

    The paper allows countable action sets per state; the implementation
    restricts to finite explicit sets (DESIGN.md substitution table):
    depth-bounded executions only ever inspect finitely many actions.
    This is [Set.Make(Action)] plus a few conveniences. *)

include Set.S with type elt = Action.t

val of_names : string list -> t
(** Payload-free actions from names. *)

val disjoint3 : t -> t -> t -> bool
(** Pairwise disjointness of the three signature components
    (Definition 2.1). *)

val map_actions : (Action.t -> Action.t) -> t -> t
(** Image of a set under an action transformation (used by renamings;
    injectivity is checked by callers through cardinality). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
