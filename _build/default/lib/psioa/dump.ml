open Cdse_prob

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let style_of sig_ act =
  match Sigs.classify act sig_ with
  | `Internal -> "dashed"
  | `Input -> "dotted"
  | `Output | `Absent -> "solid"

let to_dot ?max_states ?max_depth auto =
  let states = Psioa.reachable ?max_states ?max_depth auto in
  let buf = Buffer.create 1024 in
  let index = Hashtbl.create 64 in
  List.iteri (fun i q -> Hashtbl.replace index (Value.to_string q) i) states;
  let id q = Option.value ~default:(-1) (Hashtbl.find_opt index (Value.to_string q)) in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=LR;\n" (Psioa.name auto));
  List.iter
    (fun q ->
      let shape = if Value.equal q (Psioa.start auto) then "doublecircle" else "circle" in
      Buffer.add_string buf
        (Printf.sprintf "  s%d [shape=%s,label=\"%s\"];\n" (id q) shape
           (escape (Value.to_string q))))
    states;
  let mid = ref 0 in
  List.iter
    (fun q ->
      let sg = Psioa.signature auto q in
      Action_set.iter
        (fun act ->
          match Psioa.transition auto q act with
          | None -> ()
          | Some d ->
              let style = style_of sg act in
              (match Dist.items d with
              | [ (q', _) ] when id q' >= 0 ->
                  Buffer.add_string buf
                    (Printf.sprintf "  s%d -> s%d [label=\"%s\",style=%s];\n" (id q) (id q')
                       (escape (Action.to_string act)) style)
              | items ->
                  let m = !mid in
                  incr mid;
                  Buffer.add_string buf
                    (Printf.sprintf "  m%d [shape=point,label=\"\"];\n  s%d -> m%d [label=\"%s\",style=%s];\n"
                       m (id q) m (escape (Action.to_string act)) style);
                  List.iter
                    (fun (q', p) ->
                      if id q' >= 0 then
                        Buffer.add_string buf
                          (Printf.sprintf "  m%d -> s%d [label=\"%s\",style=%s];\n" m (id q')
                             (escape (Rat.to_string p)) style))
                    items))
        (Sigs.all sg))
    states;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_table ?max_states ?max_depth auto =
  let states = Psioa.reachable ?max_states ?max_depth auto in
  let buf = Buffer.create 1024 in
  List.iter
    (fun q ->
      Action_set.iter
        (fun act ->
          match Psioa.transition auto q act with
          | None -> ()
          | Some d ->
              List.iter
                (fun (q', p) ->
                  Buffer.add_string buf
                    (Printf.sprintf "%s  --%s-->  %s  @ %s\n" (Value.to_string q)
                       (Action.to_string act) (Value.to_string q') (Rat.to_string p)))
                (Dist.items d))
        (Psioa.enabled auto q))
    states;
  Buffer.contents buf
