(** Declarative table syntax for finite PSIOA.

    Writing an automaton as a pair of [signature]/[transition] functions is
    flexible but verbose; for finite automata a transition table is both
    shorter and self-documenting. The DSL builds a valid PSIOA from a list
    of per-state rules; states not listed have the empty signature (and are
    therefore destroyed by configuration reduction when used inside a
    PCA).

    {[
      let coin =
        Dsl.(make ~name:"c" ~start:(Value.str "init")
          [ state (Value.str "init")
              [ internal (Action.make "c.flip")
                  (Vdist.coin (Value.str "heads") (Value.str "tails")) ];
            state (Value.str "heads")
              [ output (Action.make "c.heads") (Vdist.dirac (Value.str "heads")) ];
            state (Value.str "tails")
              [ output (Action.make "c.tails") (Vdist.dirac (Value.str "tails")) ] ])
    ]}

    Duplicate actions within a state or duplicate states raise
    [Invalid_argument] at construction time. *)

open Cdse_prob

type rule

val input : Action.t -> Value.t Dist.t -> rule
val output : Action.t -> Value.t Dist.t -> rule
val internal : Action.t -> Value.t Dist.t -> rule

val input_to : Action.t -> Value.t -> rule
(** Deterministic (Dirac) shorthand. *)

val output_to : Action.t -> Value.t -> rule
val internal_to : Action.t -> Value.t -> rule

type entry

val state : Value.t -> rule list -> entry

val make : name:string -> start:Value.t -> entry list -> Psioa.t
(** Raises [Invalid_argument] on duplicate states, duplicate actions within
    a state, or a start state not listed. *)
