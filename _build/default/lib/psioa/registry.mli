(** The [aut : Autids → Auts] mapping of Section 2.2.

    Configuration automata (Definition 2.9) hold {e identifiers} of member
    automata; a registry resolves identifiers to concrete PSIOA. The
    identifier of an automaton is its {!Psioa.name}. *)

type t

exception Unknown_automaton of string

val empty : t
val add : Psioa.t -> t -> t
val of_list : Psioa.t list -> t

val find : t -> string -> Psioa.t
(** Raises {!Unknown_automaton}. *)

val mem : t -> string -> bool
val ids : t -> string list

val union : t -> t -> t
(** Left-biased union (for PCA composition, Definition 2.19). *)
