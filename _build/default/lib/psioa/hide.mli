(** The hiding operator on PSIOA (Definition 2.7).

    Hiding reclassifies selected output actions as internal: transitions
    are untouched, only external visibility (traces, insight observations)
    changes. The secure-emulation systems of Definition 4.26 are built by
    hiding the adversary-action universe of a composite. *)

val psioa : Psioa.t -> (Value.t -> Action_set.t) -> Psioa.t
(** [psioa A h]: at every state [q], the outputs in [h q ∩ out(A)(q)]
    become internal ([hide(A, h)] of Definition 2.7). *)

val psioa_const : Psioa.t -> Action_set.t -> Psioa.t
(** Hide a fixed action set at every state. *)
