lib/psioa/sigs.mli: Action Action_set Format
