lib/psioa/vdist.mli: Cdse_prob Dist Format Rat Value
