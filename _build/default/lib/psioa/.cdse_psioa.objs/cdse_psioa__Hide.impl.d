lib/psioa/hide.ml: Psioa Sigs
