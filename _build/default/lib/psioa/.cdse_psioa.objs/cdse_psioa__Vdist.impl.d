lib/psioa/vdist.ml: Cdse_prob Dist Rat Value
