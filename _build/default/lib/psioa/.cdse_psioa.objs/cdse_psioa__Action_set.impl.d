lib/psioa/action_set.ml: Action Format List Set
