lib/psioa/dump.mli: Psioa
