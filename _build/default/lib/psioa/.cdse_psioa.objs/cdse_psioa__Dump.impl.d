lib/psioa/dump.ml: Action Action_set Buffer Cdse_prob Dist Hashtbl List Option Printf Psioa Rat Sigs String Value
