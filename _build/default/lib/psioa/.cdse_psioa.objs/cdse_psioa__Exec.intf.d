lib/psioa/exec.mli: Action Format Sigs Value
