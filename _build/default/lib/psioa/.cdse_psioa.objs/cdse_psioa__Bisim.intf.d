lib/psioa/bisim.mli: Action Psioa Sigs
