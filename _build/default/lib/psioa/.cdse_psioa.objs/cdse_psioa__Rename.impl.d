lib/psioa/rename.ml: Action Action_set List Psioa Sigs Value
