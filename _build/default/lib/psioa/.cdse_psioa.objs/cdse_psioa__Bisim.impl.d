lib/psioa/bisim.ml: Action Action_set Cdse_prob Dist Hashtbl Int List Map Option Psioa Rat Sigs Value
