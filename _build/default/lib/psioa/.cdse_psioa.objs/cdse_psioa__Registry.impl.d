lib/psioa/registry.ml: List Map Psioa String
