lib/psioa/value.ml: Bits Bool Cdse_util Char Format Hashtbl Int List Printf String
