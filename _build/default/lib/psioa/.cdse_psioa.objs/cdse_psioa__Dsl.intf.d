lib/psioa/dsl.mli: Action Cdse_prob Dist Psioa Value
