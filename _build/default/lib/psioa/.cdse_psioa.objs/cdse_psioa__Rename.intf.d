lib/psioa/rename.mli: Action Action_set Psioa Value
