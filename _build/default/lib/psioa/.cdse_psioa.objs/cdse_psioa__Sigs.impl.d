lib/psioa/sigs.ml: Action_set Format List
