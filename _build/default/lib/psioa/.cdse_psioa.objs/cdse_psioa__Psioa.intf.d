lib/psioa/psioa.mli: Action Action_set Cdse_prob Dist Format Sigs Value
