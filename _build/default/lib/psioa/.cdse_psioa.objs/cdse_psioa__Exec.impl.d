lib/psioa/exec.ml: Action Action_set Cdse_util Format Hashtbl List Sigs Value
