lib/psioa/compose.ml: Action_set Cdse_prob Dist Exec Format Fun List Option Printf Psioa Sigs String Value Vdist
