lib/psioa/action.mli: Cdse_util Format Value
