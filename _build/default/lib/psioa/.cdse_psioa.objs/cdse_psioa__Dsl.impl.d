lib/psioa/dsl.ml: Action Action_set Cdse_prob Dist Hashtbl List Map Option Printf Psioa Sigs Value Vdist
