lib/psioa/value.mli: Cdse_util Format
