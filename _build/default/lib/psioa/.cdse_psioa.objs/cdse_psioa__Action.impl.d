lib/psioa/action.ml: Cdse_util Format Hashtbl String Value
