lib/psioa/registry.mli: Psioa
