lib/psioa/compose.mli: Exec Psioa Value
