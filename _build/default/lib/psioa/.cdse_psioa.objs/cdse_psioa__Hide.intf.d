lib/psioa/hide.mli: Action_set Psioa Value
