lib/psioa/action_set.mli: Action Format Set
