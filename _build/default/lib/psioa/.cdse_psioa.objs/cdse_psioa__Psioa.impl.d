lib/psioa/psioa.ml: Action Action_set Cdse_prob Dist Format Hashtbl List Printf Queue Rat Sigs Value
