open Cdse_prob

exception Incompatible of string

let compose_sigs ~name states sigs =
  match Sigs.compose_list sigs with
  | s -> s
  | exception Sigs.Not_disjoint msg ->
      raise
        (Incompatible
           (Format.asprintf "%s at state %a: %s" name
              (Format.pp_print_list Value.pp)
              states msg))

(* Joint transition at a compatible state (Definition 2.5): participating
   components move, the rest stay via Dirac. *)
let joint_transition autos qs act =
  let participates = List.map2 (fun a q -> Psioa.is_enabled a q act) autos qs in
  if not (List.exists Fun.id participates) then None
  else
    let per_component =
      List.map2
        (fun a q -> if Psioa.is_enabled a q act then Psioa.step a q act else Vdist.dirac q)
        autos qs
    in
    Some (Dist.product_list ~compare:Value.compare per_component)

let parallel ?name autos =
  if autos = [] then invalid_arg "Compose.parallel: empty list";
  let name =
    match name with Some n -> n | None -> String.concat "||" (List.map Psioa.name autos)
  in
  let proj = function
    | Value.List qs when List.length qs = List.length autos -> qs
    | q -> invalid_arg (Printf.sprintf "%s: bad composite state %s" name (Value.to_string q))
  in
  let signature q =
    let qs = proj q in
    compose_sigs ~name qs (List.map2 Psioa.signature autos qs)
  in
  let transition q act =
    let qs = proj q in
    (* Only actions of the composite signature are enabled (an input shared
       with an output becomes an output of the composite but stays a single
       action; absent actions yield None). *)
    if not (Action_set.mem act (Sigs.all (signature q))) then None
    else
      Option.map (Dist.map ~compare:Value.compare Value.list) (joint_transition autos qs act)
  in
  Psioa.make ~name ~start:(Value.list (List.map Psioa.start autos)) ~signature ~transition

let pair ?name a b =
  let name = match name with Some n -> n | None -> Psioa.name a ^ "||" ^ Psioa.name b in
  let proj = function
    | Value.Pair (qa, qb) -> (qa, qb)
    | q -> invalid_arg (Printf.sprintf "%s: bad pair state %s" name (Value.to_string q))
  in
  let signature q =
    let qa, qb = proj q in
    compose_sigs ~name [ qa; qb ] [ Psioa.signature a qa; Psioa.signature b qb ]
  in
  let transition q act =
    let qa, qb = proj q in
    if not (Action_set.mem act (Sigs.all (signature q))) then None
    else
      Option.map
        (Dist.map ~compare:Value.compare (function
          | [ qa'; qb' ] -> Value.pair qa' qb'
          | _ -> assert false))
        (joint_transition [ a; b ] [ qa; qb ] act)
  in
  Psioa.make ~name ~start:(Value.pair (Psioa.start a) (Psioa.start b)) ~signature ~transition

let proj_pair = function
  | Value.Pair (a, b) -> (a, b)
  | q -> invalid_arg (Printf.sprintf "Compose.proj_pair: %s" (Value.to_string q))

let proj_list = function
  | Value.List l -> l
  | q -> invalid_arg (Printf.sprintf "Compose.proj_list: %s" (Value.to_string q))

let partially_compatible ?max_states ?max_depth autos =
  match Psioa.reachable ?max_states ?max_depth (parallel autos) with
  | _ -> true
  | exception Incompatible _ -> false

let proj_exec autos i exec =
  let nth_auto = List.nth autos i in
  let local q = List.nth (proj_list q) i in
  let rec go acc q = function
    | [] -> acc
    | (act, q') :: rest ->
        let ql = local q and ql' = local q' in
        let acc =
          if Action_set.mem act (Psioa.enabled nth_auto ql) then Exec.extend acc act ql' else acc
        in
        go acc q' rest
  in
  go (Exec.init (local (Exec.fstate exec))) (Exec.fstate exec) (Exec.steps exec)
