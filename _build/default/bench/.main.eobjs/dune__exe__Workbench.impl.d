bench/workbench.ml: List Printf String Sys
