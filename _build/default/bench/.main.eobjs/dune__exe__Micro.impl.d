bench/micro.ml: Action Analyze Bechamel Benchmark Bignat Bisim Bits Cdse Cdse_gen Dist Hashtbl Int List Measure Pretty Printf Psioa Rat Scheduler Staged Stat String Test Time Toolkit Value
