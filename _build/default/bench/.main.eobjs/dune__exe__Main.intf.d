bench/main.mli:
