(* Tests for the tooling layer: strong probabilistic bisimulation
   (partition refinement) and the DOT / table exporters. *)

open Cdse_prob
open Cdse_psioa
open Cdse_testkit

(* ------------------------------------------------------------------ Bisim *)

let test_bisim_reflexive () =
  let c = Fixtures.coin "c" in
  Alcotest.(check bool) "coin ~ coin" true (Bisim.bisimilar c c);
  let k = Fixtures.counter ~bound:3 "k" in
  Alcotest.(check bool) "counter ~ counter" true (Bisim.bisimilar k k)

let test_bisim_state_encoding_irrelevant () =
  (* The same behaviour with differently-encoded states is bisimilar:
     counter over ints vs counter over strings. *)
  let inc = Fixtures.act "k.inc" in
  let string_counter =
    let state k = Value.str (String.make k 'x') in
    Psioa.make ~name:"k2" ~start:(state 0)
      ~signature:(fun q ->
        match q with
        | Value.Str s when String.length s < 3 -> Fixtures.sig_io ~o:[ inc ] ()
        | _ -> Sigs.empty)
      ~transition:(fun q a ->
        match q with
        | Value.Str s when String.length s < 3 && Action.equal a inc ->
            Some (Vdist.dirac (state (String.length s + 1)))
        | _ -> None)
  in
  Alcotest.(check bool) "int-counter ~ string-counter" true
    (Bisim.bisimilar (Fixtures.counter ~bound:3 "k") string_counter)

let test_bisim_detects_bias () =
  let fair = Fixtures.coin ~p:Rat.half "c" in
  let biased = Fixtures.coin ~p:(Rat.of_ints 1 3) "c" in
  Alcotest.(check bool) "fair !~ biased" false (Bisim.bisimilar fair biased)

let test_bisim_detects_label_mismatch () =
  let c = Fixtures.coin "c" and d = Fixtures.coin "d" in
  Alcotest.(check bool) "different external labels" false (Bisim.bisimilar c d);
  (* After renaming them to a common alphabet they are bisimilar. *)
  let rc = Rename.psioa c (Rename.on_names (fun n -> "x" ^ String.sub n 1 (String.length n - 1))) in
  let rd = Rename.psioa d (Rename.on_names (fun n -> "x" ^ String.sub n 1 (String.length n - 1))) in
  Alcotest.(check bool) "renamed to common alphabet" true (Bisim.bisimilar rc rd)

let test_bisim_internal_structure_visible () =
  (* Strong bisimulation counts internal steps: the slow child (τ then
     beep) is NOT strongly bisimilar to the fast child (beep). *)
  Alcotest.(check bool) "slow !~ fast (strong)" false
    (Bisim.bisimilar Cdse_gen.Monotone.child_slow Cdse_gen.Monotone.child_fast)

let test_bisim_congruence_instance () =
  (* Bisimilar components compose to bisimilar systems (tested on an
     instance): ctx || A ~ ctx || A' for A ~ A'. *)
  let inc = Fixtures.act "k.inc" in
  let variant =
    let state k = Value.pair (Value.int k) (Value.str "v") in
    Psioa.make ~name:"k" ~start:(state 0)
      ~signature:(fun q ->
        match q with
        | Value.Pair (Value.Int k, _) when k < 3 -> Fixtures.sig_io ~o:[ inc ] ()
        | _ -> Sigs.empty)
      ~transition:(fun q a ->
        match q with
        | Value.Pair (Value.Int k, _) when k < 3 && Action.equal a inc ->
            Some (Vdist.dirac (state (k + 1)))
        | _ -> None)
  in
  let base = Fixtures.counter ~bound:3 "k" in
  Alcotest.(check bool) "A ~ A'" true (Bisim.bisimilar base variant);
  let ctx = Fixtures.coin "c" in
  Alcotest.(check bool) "ctx||A ~ ctx||A'" true
    (Bisim.bisimilar (Compose.pair ctx base) (Compose.pair ctx variant))

let test_bisim_implies_equal_fdist () =
  (* Sound proof method: on bisimilar automata, matching deterministic
     schedulers induce identical trace distributions. *)
  let a = Fixtures.coin "c" in
  let b =
    (* Same coin with an extra unreachable state in the encoding. *)
    Psioa.make ~name:"c" ~start:(Psioa.start a) ~signature:(Psioa.signature a)
      ~transition:(Psioa.transition a)
  in
  Alcotest.(check bool) "bisimilar" true (Bisim.bisimilar a b);
  let run x =
    Cdse_sched.Measure.trace_dist x
      (Cdse_sched.Scheduler.bounded 3 (Cdse_sched.Scheduler.first_enabled x))
      ~depth:5
  in
  Alcotest.(check bool) "equal trace dists" true (Dist.equal (run a) (run b))

let test_bisim_truncation_rejected () =
  let k = Fixtures.counter ~bound:100 "k" in
  Alcotest.check_raises "unsound truncation rejected"
    (Invalid_argument
       "Bisim: automaton \"k\" has more than 10 reachable states (max_states); \
        raise ~max_states \xE2\x80\x94 a partition of a truncated state space \
        would be unsound")
    (fun () -> ignore (Bisim.bisimilar ~max_states:10 k k))

let test_bisim_classes () =
  let c = Fixtures.coin "c" in
  let n_blocks, n_states = Bisim.classes c c in
  Alcotest.(check int) "6 states considered" 6 n_states;
  Alcotest.(check int) "3 classes (paired up)" 3 n_blocks

(* -------------------------------------------------------------------- Dsl *)

let dsl_coin =
  let open Dsl in
  make ~name:"c" ~start:(Value.str "init")
    [ state (Value.str "init")
        [ internal (Fixtures.act "c.flip")
            (Vdist.coin (Value.str "heads") (Value.str "tails")) ];
      state (Value.str "heads")
        [ output_to (Fixtures.act "c.heads") (Value.str "heads") ];
      state (Value.str "tails")
        [ output_to (Fixtures.act "c.tails") (Value.str "tails") ] ]

let test_dsl_builds_valid_automaton () =
  match Psioa.validate dsl_coin with Ok () -> () | Error e -> Alcotest.fail e

let test_dsl_bisimilar_to_functional () =
  (* The table-defined coin is bisimilar to the functionally-defined one. *)
  Alcotest.(check bool) "dsl ~ functional" true (Bisim.bisimilar dsl_coin (Fixtures.coin "c"))

let test_dsl_rejects_duplicates () =
  let open Dsl in
  (try
     ignore
       (make ~name:"bad" ~start:Value.unit
          [ state Value.unit
              [ output_to (Fixtures.act "a") Value.unit; output_to (Fixtures.act "a") Value.unit ] ]);
     Alcotest.fail "duplicate action accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (make ~name:"bad" ~start:Value.unit [ state Value.unit []; state Value.unit [] ]);
     Alcotest.fail "duplicate state accepted"
   with Invalid_argument _ -> ());
  try
    ignore (make ~name:"bad" ~start:(Value.int 9) [ state Value.unit [] ]);
    Alcotest.fail "missing start accepted"
  with Invalid_argument _ -> ()

let test_dsl_unlisted_state_empty () =
  let open Dsl in
  let a =
    make ~name:"d" ~start:Value.unit
      [ state Value.unit [ output_to (Fixtures.act "go") (Value.int 1) ] ]
  in
  Alcotest.(check bool) "unlisted state has empty signature" true
    (Sigs.is_empty (Psioa.signature a (Value.int 1)))

(* ---------------------------------------------------------------- Sampled *)

let test_sampled_matches_exact () =
  (* The empirical checker approximates the exact weak-pad distance 1/4
     within tolerance. *)
  let width = 2 in
  let real =
    Cdse_secure.Emulation.hidden_system
      (Cdse_crypto.Secure_channel.real_weak ~width "wk")
      (Cdse_crypto.Secure_channel.adversary ~width "wk")
  in
  let ideal =
    Cdse_secure.Emulation.hidden_system
      (Cdse_crypto.Secure_channel.ideal ~width "wk")
      (Cdse_crypto.Secure_channel.simulator ~width "wk")
  in
  let env = Cdse_crypto.Secure_channel.env_guess ~width ~msg:1 "wk" in
  let schema = Cdse_sched.Schema.make ~name:"det" (fun a -> [ Cdse_sched.Scheduler.first_enabled a ]) in
  let v =
    Cdse_secure.Sampled.approx_le_sampled ~schema ~insight_of:Cdse_sched.Insight.accept
      ~envs:[ env ] ~eps:0.25 ~tolerance:0.05 ~q1:12 ~q2:12 ~depth:14 ~samples:4000 ~seed:11
      ~a:real ~b:ideal
  in
  Alcotest.(check bool) "holds at ε=1/4 (+tol)" true v.Cdse_secure.Sampled.holds;
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.3f within 0.05 of exact 0.25" v.Cdse_secure.Sampled.worst)
    true
    (Float.abs (v.Cdse_secure.Sampled.worst -. 0.25) < 0.05)

let test_sampled_detects_leak () =
  let real =
    Cdse_secure.Emulation.hidden_system
      (Cdse_crypto.Secure_channel.real_leaky "sc")
      (Cdse_crypto.Secure_channel.adversary "sc")
  in
  let ideal =
    Cdse_secure.Emulation.hidden_system
      (Cdse_crypto.Secure_channel.ideal "sc")
      (Cdse_crypto.Secure_channel.simulator "sc")
  in
  let env = Cdse_crypto.Secure_channel.env_guess ~msg:1 "sc" in
  let schema = Cdse_sched.Schema.make ~name:"det" (fun a -> [ Cdse_sched.Scheduler.first_enabled a ]) in
  let v =
    Cdse_secure.Sampled.approx_le_sampled ~schema ~insight_of:Cdse_sched.Insight.accept
      ~envs:[ env ] ~eps:0.0 ~tolerance:0.1 ~q1:12 ~q2:12 ~depth:14 ~samples:2000 ~seed:3
      ~a:real ~b:ideal
  in
  Alcotest.(check bool) "leak detected by sampling" false v.Cdse_secure.Sampled.holds

(* ------------------------------------------------------------------- Dump *)

let test_dot_wellformed () =
  let dot = Dump.to_dot (Fixtures.coin "c") in
  Alcotest.(check bool) "digraph" true (Astring.String.is_prefix ~affix:"digraph" dot);
  Alcotest.(check bool) "has nodes" true (Astring.String.is_infix ~affix:"doublecircle" dot);
  Alcotest.(check bool) "closes" true (Astring.String.is_suffix ~affix:"}\n" dot);
  (* Probabilistic fan-out through a point node. *)
  Alcotest.(check bool) "fan-out point" true (Astring.String.is_infix ~affix:"shape=point" dot);
  Alcotest.(check bool) "probability label" true (Astring.String.is_infix ~affix:"1/2" dot)

let test_table_lists_transitions () =
  let t = Dump.to_table (Fixtures.counter ~bound:2 "k") in
  Alcotest.(check bool) "has inc" true (Astring.String.is_infix ~affix:"--k.inc-->" t);
  Alcotest.(check int) "two lines" 2
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' t)))

let () =
  Alcotest.run "cdse_tools"
    [ ( "bisim",
        [ Alcotest.test_case "reflexive" `Quick test_bisim_reflexive;
          Alcotest.test_case "state encoding irrelevant" `Quick test_bisim_state_encoding_irrelevant;
          Alcotest.test_case "detects bias" `Quick test_bisim_detects_bias;
          Alcotest.test_case "labels matter (rename to align)" `Quick test_bisim_detects_label_mismatch;
          Alcotest.test_case "strong: internal steps visible" `Quick test_bisim_internal_structure_visible;
          Alcotest.test_case "congruence (instance)" `Quick test_bisim_congruence_instance;
          Alcotest.test_case "sound for trace dists" `Quick test_bisim_implies_equal_fdist;
          Alcotest.test_case "truncation rejected" `Quick test_bisim_truncation_rejected;
          Alcotest.test_case "class counts" `Quick test_bisim_classes ] );
      ( "dsl",
        [ Alcotest.test_case "builds valid automaton" `Quick test_dsl_builds_valid_automaton;
          Alcotest.test_case "bisimilar to functional twin" `Quick test_dsl_bisimilar_to_functional;
          Alcotest.test_case "rejects malformed tables" `Quick test_dsl_rejects_duplicates;
          Alcotest.test_case "unlisted states are empty" `Quick test_dsl_unlisted_state_empty ] );
      ( "sampled",
        [ Alcotest.test_case "approximates exact ε" `Quick test_sampled_matches_exact;
          Alcotest.test_case "detects leaky channel" `Quick test_sampled_detects_leak ] );
      ( "dump",
        [ Alcotest.test_case "dot well-formed" `Quick test_dot_wellformed;
          Alcotest.test_case "table lists transitions" `Quick test_table_lists_transitions ] ) ]
