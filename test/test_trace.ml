(* Tests for the span tracer (lib/obs/trace): the free-when-disabled
   guarantee (no events, no clock reads, bit-identical engine results),
   span balance (every recorded span is complete, even across raises),
   the per-domain buffer/drain discipline, ring-capacity accounting, the
   Chrome exporter's invariants and the determinism contract lifted to
   spans — the layer-span count cannot depend on the domain count. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
module Trace = Cdse_obs.Trace

(* A conformance-corpus case ("42 0 0 5" in test/corpus/seeds.txt): a
   random 6-state PSIOA under a bounded uniform scheduler — wide enough
   frontiers that the parallel engine actually chunks. *)
let corpus_system () =
  let rng = Rng.make 42 in
  let auto = Cdse_gen.Random_auto.make ~rng ~name:"ca" ~n_states:6 ~n_actions:3 () in
  (auto, Scheduler.bounded 5 (Scheduler.uniform auto), 5)

let items_identical d1 d2 =
  let i1 = Dist.items d1 and i2 = Dist.items d2 in
  List.length i1 = List.length i2
  && List.for_all2
       (fun (e, p) (e', p') -> Exec.compare e e' = 0 && Rat.equal p p')
       i1 i2

(* With tracing disabled every recording form is a no-op: thunks are
   never forced, tokens are inert, nothing reaches the store. *)
let test_disabled_emits_nothing () =
  Trace.clear ();
  Alcotest.(check bool) "tracing starts disabled" false (Trace.enabled ());
  let forced = ref 0 in
  let v =
    Trace.span "t.span"
      ~args:(fun () ->
        incr forced;
        [])
      (fun () -> 17)
  in
  Alcotest.(check int) "span is transparent" 17 v;
  let tok = Trace.begin_span "t.open" in
  Trace.end_span
    ~args:(fun () ->
      incr forced;
      [])
    tok;
  Trace.instant
    ~args:(fun () ->
      incr forced;
      [])
    "t.instant";
  Trace.emit_span "t.emit" ~ts_us:0. ~dur_us:1.;
  Alcotest.(check int) "argument thunks never forced while disabled" 0 !forced;
  Alcotest.(check (list string)) "no events recorded" []
    (List.map (fun e -> e.Trace.ev_name) (Trace.events ()));
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ())

(* Disabled tracing perturbs nothing: the engine's result with the
   tracer off is bit-identical to a traced run of the same corpus case,
   sequential and multicore, plain and quotient-compressed. *)
let test_disabled_bit_identical () =
  let auto, sched, depth = corpus_system () in
  Trace.clear ();
  let plain = Measure.exec_dist ~domains:2 auto sched ~depth in
  let quot = Measure.exec_dist ~compress:`Quotient ~domains:2 auto sched ~depth in
  Trace.start ();
  let plain_t = Measure.exec_dist ~domains:2 auto sched ~depth in
  let quot_t = Measure.exec_dist ~compress:`Quotient ~domains:2 auto sched ~depth in
  Trace.stop ();
  Alcotest.(check bool) "a traced run recorded spans" true
    (Trace.events () <> []);
  Trace.clear ();
  Alcotest.(check bool) "traced run bit-identical" true
    (items_identical plain plain_t);
  Alcotest.(check bool) "traced quotient run bit-identical" true
    (items_identical quot quot_t)

(* Spans are balanced: every event in the store is complete (non-negative
   duration, no dangling opens — the exporter only ever emits "X"/"i"/"M"
   phases), and a span body that raises still records its span. *)
let test_spans_balanced () =
  Trace.start ();
  (try Trace.span "t.raises" (fun () -> failwith "boom") with Failure _ -> ());
  let auto, sched, depth = corpus_system () in
  ignore (Measure.exec_dist ~domains:2 auto sched ~depth);
  Trace.stop ();
  let evs = Trace.events () in
  Alcotest.(check bool) "raising span still recorded" true
    (List.exists (fun e -> e.Trace.ev_name = "t.raises") evs);
  Alcotest.(check bool) "every event has a non-negative duration" true
    (List.for_all (fun e -> e.Trace.ev_dur >= 0.) evs);
  Alcotest.(check bool) "instants have zero duration" true
    (List.for_all
       (fun e -> (not e.Trace.ev_instant) || e.Trace.ev_dur = 0.)
       evs);
  let chrome = Trace.to_chrome () in
  Trace.clear ();
  let contains needle =
    Astring.String.is_infix ~affix:needle chrome
  in
  Alcotest.(check bool) "chrome export has the traceEvents array" true
    (contains "\"traceEvents\"");
  Alcotest.(check bool) "chrome export names worker timelines" true
    (contains "\"thread_name\"");
  Alcotest.(check bool) "no unbalanced begin phase" false (contains "\"ph\": \"B\"");
  Alcotest.(check bool) "no unbalanced end phase" false (contains "\"ph\": \"E\"")

(* The determinism contract lifted to the trace: one measure.layer span
   per frontier layer, so the count is a pure function of the system and
   depth — identical across domain counts {1, 2, 4}, barriers and merge
   spans notwithstanding. Layer spans are a layered-engine notion, so the
   multicore runs pin [`Layered] — under [`Auto] an unbudgeted multicore
   run takes the barrier-free subtree engine, which has no layers. *)
let test_layer_spans_domain_independent () =
  let auto, sched, depth = corpus_system () in
  let layer_spans domains =
    Trace.start ();
    ignore (Measure.exec_dist ~engine:`Layered ~domains auto sched ~depth);
    Trace.stop ();
    let n =
      List.length
        (List.filter
           (fun e -> e.Trace.ev_name = "measure.layer")
           (Trace.events ()))
    in
    Trace.clear ();
    n
  in
  let n1 = layer_spans 1 in
  Alcotest.(check bool) "sequential run has layer spans" true (n1 > 0);
  Alcotest.(check int) "domains=2 matches sequential" n1 (layer_spans 2);
  Alcotest.(check int) "domains=4 matches sequential" n1 (layer_spans 4)

(* The subtree engine's span vocabulary: an unbudgeted multicore run under
   [`Auto] records the seed phase and per-subtree work spans, and — being
   barrier-free — neither layer spans nor synthetic barrier waits. *)
let test_subtree_spans () =
  let auto, sched, depth = corpus_system () in
  List.iter
    (fun domains ->
      Trace.start ();
      ignore (Measure.exec_dist ~domains auto sched ~depth);
      Trace.stop ();
      let evs = Trace.events () in
      Trace.clear ();
      let has name = List.exists (fun e -> e.Trace.ev_name = name) evs in
      Alcotest.(check bool) "seed span recorded" true (has "measure.seed");
      Alcotest.(check bool) "subtree work spans recorded" true
        (has "measure.subtree");
      Alcotest.(check bool) "single final merge span" true (has "measure.merge");
      Alcotest.(check bool) "no layer spans" false (has "measure.layer");
      Alcotest.(check bool) "no barrier-wait spans" false
        (has "measure.barrier.wait"))
    [ 2; 4 ]

(* Ring capacity: a full store drops (never blocks, never reallocates)
   and counts every drop. *)
let test_capacity_and_dropped () =
  Trace.start ~capacity:16 ();
  for i = 1 to 100 do
    Trace.instant ~args:(fun () -> [ ("i", string_of_int i) ]) "t.flood"
  done;
  Trace.stop ();
  let kept = List.length (Trace.events ()) in
  Alcotest.(check int) "store capped at capacity" 16 kept;
  Alcotest.(check int) "every overflow counted" 84 (Trace.dropped ());
  Trace.clear ();
  Alcotest.(check int) "clear resets the dropped count" 0 (Trace.dropped ())

(* Worker buffers divert events until drained, and stamp their domain id
   on everything recorded under them. *)
let test_buffer_drain () =
  Trace.start ();
  let buf = Trace.buffer ~dom:3 in
  Trace.with_buffer buf (fun () ->
      Trace.instant "t.worker";
      Trace.span "t.worker.span" (fun () -> ()));
  Alcotest.(check (list string)) "buffered events invisible before drain" []
    (List.map (fun e -> e.Trace.ev_name) (Trace.events ()));
  Trace.drain buf;
  let evs = Trace.events () in
  Trace.stop ();
  Trace.clear ();
  Alcotest.(check int) "drain delivered both events" 2 (List.length evs);
  Alcotest.(check bool) "buffered events carry the buffer's domain id" true
    (List.for_all (fun e -> e.Trace.ev_dom = 3) evs)

(* The self-profiling summary on a real multicore run: fractions are
   fractions, imbalance is max/mean, and the vocabulary was recognized
   (layer rows and worker rows both present). Pinned to the layered
   engine, which is what the layer rows describe. *)
let test_summary_sane () =
  let auto, sched, depth = corpus_system () in
  Trace.start ();
  ignore (Measure.exec_dist ~engine:`Layered ~domains:2 auto sched ~depth);
  Trace.stop ();
  let sm = Trace.summary () in
  Trace.clear ();
  Alcotest.(check bool) "spans counted" true (sm.Trace.sm_spans > 0);
  Alcotest.(check bool) "barrier-wait fraction in [0,1]" true
    (sm.Trace.sm_barrier_wait_frac >= 0. && sm.Trace.sm_barrier_wait_frac <= 1.);
  Alcotest.(check bool) "merge fraction in [0,1]" true
    (sm.Trace.sm_merge_frac >= 0. && sm.Trace.sm_merge_frac <= 1.);
  Alcotest.(check bool) "imbalance is max/mean, so >= 1" true
    (sm.Trace.sm_imbalance >= 1.);
  Alcotest.(check bool) "layer rows parsed" true (sm.Trace.sm_layers <> []);
  Alcotest.(check bool) "worker rows parsed" true (sm.Trace.sm_workers <> []);
  Alcotest.(check bool) "layer rows carry the frontier width" true
    (List.for_all (fun lr -> lr.Trace.lr_width > 0) sm.Trace.sm_layers)

(* The summary over a subtree-engine run: worker rows come from the
   measure.subtree spans, idle time from measure.steal.idle, and the
   barrier-wait fraction is identically 0 — there are no barriers. *)
let test_summary_subtree () =
  let auto, sched, depth = corpus_system () in
  Trace.start ();
  ignore (Measure.exec_dist ~domains:2 auto sched ~depth);
  Trace.stop ();
  let sm = Trace.summary () in
  Trace.clear ();
  Alcotest.(check bool) "spans counted" true (sm.Trace.sm_spans > 0);
  Alcotest.(check (float 0.)) "no barrier waits in a barrier-free run" 0.
    sm.Trace.sm_barrier_wait_frac;
  Alcotest.(check bool) "idle fraction in [0,1]" true
    (sm.Trace.sm_idle_frac >= 0. && sm.Trace.sm_idle_frac <= 1.);
  Alcotest.(check bool) "worker rows parsed from subtree spans" true
    (sm.Trace.sm_workers <> []);
  Alcotest.(check bool) "work units counted" true
    (List.exists (fun w -> w.Trace.wr_chunks > 0) sm.Trace.sm_workers)

(* Regression (probe isolation): the per-layer stats deltas of a run must
   be computed against a run-start baseline of the process-global Obs
   counters, not against zero. Before the fix, the first
   measure.layer.stats instant of every run after the first reported the
   whole process history, so two engine runs in one process corrupted each
   other's deltas. Two identical back-to-back runs (fresh caches each)
   must report identical per-layer deltas. *)
let test_probe_isolation () =
  let auto, sched, depth = corpus_system () in
  Cdse_obs.Obs.set_enabled true;
  let stats_of () =
    ignore (Measure.exec_dist ~memo:true auto sched ~depth);
    let st =
      List.filter_map
        (fun e ->
          if e.Trace.ev_name = "measure.layer.stats" then Some e.Trace.ev_args
          else None)
        (Trace.events ())
    in
    Trace.clear ();
    st
  in
  Trace.start ();
  let run1 = stats_of () in
  let run2 = stats_of () in
  Trace.stop ();
  Trace.clear ();
  Cdse_obs.Obs.set_enabled false;
  Alcotest.(check bool) "stats instants recorded" true (run1 <> []);
  Alcotest.(check bool) "second run reports the same per-layer deltas" true
    (run1 = run2)

(* Regression (ring reuse): acquire/release recycles the per-worker rings
   instead of allocating a capacity-sized array per run, without leaking
   events or drop counts from one run into the next; a capacity change
   retires stale rings instead of reusing them. *)
let test_buffer_pool_reuse () =
  Trace.start ~capacity:32 ();
  let b1 = Trace.acquire_buffer ~dom:1 in
  Trace.with_buffer b1 (fun () ->
      for i = 1 to 100 do
        Trace.instant ~args:(fun () -> [ ("i", string_of_int i) ]) "t.flood"
      done);
  Trace.drain b1;
  Alcotest.(check int) "ring overflow counted" 68 (Trace.dropped ());
  Trace.release_buffer b1;
  let b2 = Trace.acquire_buffer ~dom:2 in
  Alcotest.(check bool) "ring physically reused" true (b1 == b2);
  Trace.clear ();
  Trace.with_buffer b2 (fun () -> Trace.instant "t.one");
  Trace.drain b2;
  Alcotest.(check (list string)) "no event leakage across runs" [ "t.one" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events ()));
  Alcotest.(check int) "no drop-count leakage across runs" 0 (Trace.dropped ());
  Trace.release_buffer b2;
  Trace.start ~capacity:64 ();
  let b3 = Trace.acquire_buffer ~dom:1 in
  Alcotest.(check bool) "stale-capacity ring not reused" false (b3 == b2);
  Trace.stop ();
  Trace.clear ()

let () =
  Alcotest.run "cdse_trace"
    [
      ( "disabled",
        [
          Alcotest.test_case "disabled mode emits nothing" `Quick
            test_disabled_emits_nothing;
          Alcotest.test_case "disabled mode is bit-identical" `Quick
            test_disabled_bit_identical;
        ] );
      ( "recording",
        [
          Alcotest.test_case "spans always balanced" `Quick test_spans_balanced;
          Alcotest.test_case "layer spans independent of domain count" `Quick
            test_layer_spans_domain_independent;
          Alcotest.test_case "subtree engine span vocabulary" `Quick
            test_subtree_spans;
          Alcotest.test_case "capacity bound and dropped count" `Quick
            test_capacity_and_dropped;
          Alcotest.test_case "worker buffers drain at barriers" `Quick
            test_buffer_drain;
        ] );
      ( "summary",
        [
          Alcotest.test_case "attribution fractions sane" `Quick test_summary_sane;
          Alcotest.test_case "subtree summary sane" `Quick test_summary_subtree;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "layer-stats probe isolated per run" `Quick
            test_probe_isolation;
          Alcotest.test_case "buffer pool reuses rings without leakage" `Quick
            test_buffer_pool_reuse;
        ] );
    ]
