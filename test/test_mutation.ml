(* Mutation-testing harness (test/support/mutate.ml) and its use against
   the emulation checker: operators are exact and signature-legal,
   co-reachability is closed-world, and the checker kills every mutant of
   the OTP channel and of a committee validator — with the unmutated
   baselines passing, so a kill means discrimination, not vacuity. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_secure
open Cdse_testkit

module Secure_channel = Cdse_crypto.Secure_channel
module Committee = Cdse_dynamic.Committee
module Fault = Cdse_fault.Fault

let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

let det = Schema.make ~name:"det" (fun x -> [ Scheduler.first_enabled x ])

let nobody =
  Psioa.make ~name:"nobody" ~start:Value.unit
    ~signature:(fun _ -> Sigs.empty)
    ~transition:(fun _ _ -> None)

let is_retire a =
  let name = Action.name a in
  String.length name >= 10 && String.equal (String.sub name 0 10) "cmt.retire"

(* ----------------------------------------------------------- operators *)

(* Coin with a 2-point keygen-style internal step, for exercising bias. *)
let coin = Cdse_gen.Workloads.coin "c"

let test_bias_is_exact () =
  let q0 = Psioa.start coin in
  let flip =
    match Action_set.elements (Sigs.local (Psioa.signature coin q0)) with
    | [ a ] -> a
    | _ -> Alcotest.fail "coin: expected one local action at start"
  in
  let muts =
    List.filter (fun m -> m.Mutate.op = Mutate.Bias) (Mutate.mutants ~states:[ q0 ] coin)
  in
  match muts with
  | [ m ] ->
      let d = Psioa.step m.Mutate.mutant q0 flip in
      Alcotest.check rat "mass preserved exactly" Rat.one (Dist.mass d);
      let ps = List.map snd (Dist.items d) in
      Alcotest.(check (list string))
        "mass shifted by exactly p/2"
        [ "3/4"; "1/4" ]
        (List.map Rat.to_string ps)
  | _ -> Alcotest.fail "expected exactly one bias mutant at the flip site"

let otp_sites () =
  let proto = Structured.psioa (Secure_channel.real "n0") in
  let env = Secure_channel.env_guess ~msg:1 "n0" in
  let adv = Secure_channel.adversary "n0" in
  ( proto,
    Mutate.co_reachable
      ~project:(fun q -> Some (fst (Compose.proj_pair (snd (Compose.proj_pair q)))))
      (Compose.pair env (Compose.pair proto adv)) )

let test_drop_and_redirect_are_signature_legal () =
  let proto, states = otp_sites () in
  let muts = Mutate.mutants ~states proto in
  Alcotest.(check bool) "every emitted mutant satisfies Def 2.1" true
    (List.for_all
       (fun m -> Result.is_ok (Psioa.validate ~max_states:2000 m.Mutate.mutant))
       muts)

let test_co_reachable_is_closed_world () =
  (* The environment only ever sends message 1, so the m = 0 protocol
     sites must not be offered as mutation targets — those mutants would
     be unkillable. *)
  let _, states = otp_sites () in
  let zero_message_site = function
    | Value.Tag ("sc2", Value.Pair (_, Value.Int 0)) | Value.Tag ("sc4", Value.Int 0) -> true
    | _ -> false
  in
  Alcotest.(check bool) "no m=0 site is co-reachable" true
    (not (List.exists zero_message_site states));
  Alcotest.(check bool) "the m=1 ciphertext sites are" true
    (List.exists (function Value.Tag ("sc2", _) -> true | _ -> false) states)

(* ------------------------------------------------------------- sweeps *)

let otp_holds real_s =
  let env = Secure_channel.env_guess ~msg:1 "n0" in
  let bound = 16 in
  (Impl.approx_le ~schema:det ~insight_of:Insight.trace ~envs:[ env ] ~eps:Rat.zero
     ~q1:bound ~q2:bound ~depth:(bound + 2)
     ~a:(Emulation.hidden_system real_s (Secure_channel.adversary "n0"))
     ~b:(Emulation.hidden_system (Secure_channel.ideal "n0") (Secure_channel.simulator "n0")))
    .Impl.holds

let test_otp_checker_kills_all () =
  let real_s = Secure_channel.real "n0" in
  let proto, states = otp_sites () in
  let muts = Mutate.mutants ~states proto in
  Alcotest.(check bool) "baseline holds" true (otp_holds real_s);
  let rep =
    Mutate.sweep
      ~killed:(fun m ->
        not (otp_holds (Structured.make m.Mutate.mutant ~eact:(Structured.eact real_s))))
      muts
  in
  Alcotest.(check int) "all four drops, three redirects, one bias" 8 rep.Mutate.total;
  Alcotest.(check (list string)) "no survivors" []
    (List.map (fun m -> m.Mutate.label) rep.Mutate.survivors)

let committee_holds mutant =
  let bound = 14 in
  let real =
    Committee.structured
      (Committee.build ~max_validators:2 ~blocks:1
         ~wrap_validator:(fun i v -> if i = 0 then mutant else v)
         "cmt")
      "cmt"
  in
  (Impl.approx_le
     ~schema:(Fault.compromise_budget ~avoid:is_retire 0)
     ~insight_of:Insight.accept
     ~envs:[ Committee.env_commit ~block:0 "cmt" ]
     ~eps:Rat.zero ~q1:bound ~q2:bound ~depth:(bound + 2)
     ~a:(Emulation.hidden_system ~max_states:500 ~max_depth:bound real nobody)
     ~b:
       (Emulation.hidden_system ~max_states:500 ~max_depth:bound
          (Committee.ideal ~blocks:1 "cmt") nobody))
    .Impl.holds

let test_committee_checker_kills_all () =
  let v0 = Committee.validator ~n:"cmt" ~blocks:1 0 in
  let site_pca = Committee.build ~max_validators:2 ~blocks:1 "cmt" in
  let states =
    Mutate.co_reachable
      ~project:(fun q ->
        List.assoc_opt
          (Committee.validator_name "cmt" 0)
          (Cdse_config.Config.entries
             (Cdse_config.Pca.config_of site_pca (snd (Compose.proj_pair q)))))
      (Compose.pair (Committee.env_commit ~block:0 "cmt") (Cdse_config.Pca.psioa site_pca))
  in
  let muts = Mutate.mutants ~states v0 in
  Alcotest.(check bool) "baseline holds" true (committee_holds v0);
  let rep = Mutate.sweep ~killed:(fun m -> not (committee_holds m.Mutate.mutant)) muts in
  Alcotest.(check int) "dropped vote + redirected vote payload" 2 rep.Mutate.total;
  Alcotest.(check (list string)) "no survivors" []
    (List.map (fun m -> m.Mutate.label) rep.Mutate.survivors)

let () =
  Alcotest.run "cdse_mutation"
    [ ( "operators",
        [ Alcotest.test_case "bias shifts exactly p/2" `Quick test_bias_is_exact;
          Alcotest.test_case "mutants stay Def 2.1-legal" `Quick
            test_drop_and_redirect_are_signature_legal;
          Alcotest.test_case "co-reachability is closed-world" `Quick
            test_co_reachable_is_closed_world ] );
      ( "kill-sweeps",
        [ Alcotest.test_case "OTP channel: 8/8 killed" `Quick test_otp_checker_kills_all;
          Alcotest.test_case "committee validator: 2/2 killed" `Quick
            test_committee_checker_kills_all ] ) ]
