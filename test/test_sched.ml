(* Tests for the scheduler layer: schedulers (Def 3.1), schemas (Def 3.2),
   the execution measure ε_σ, insight functions (Defs 3.4-3.5), f-dist and
   balanced schedulers (Def 3.6), stability by composition (Def 3.7). *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_testkit

let act = Fixtures.act

let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

(* -------------------------------------------------------------- Scheduler *)

let test_uniform_choice () =
  let sys = Compose.pair (Fixtures.counter ~bound:1 "a") (Fixtures.counter ~bound:1 "b") in
  let s = Scheduler.uniform sys in
  let d = s.Scheduler.choose (Exec.init (Psioa.start sys)) in
  Alcotest.(check int) "two increments" 2 (Dist.size d);
  Alcotest.check rat "each 1/2" Rat.half (Dist.prob d (act "a.inc"))

let test_uniform_skips_free_inputs () =
  (* A lone channel only has free inputs: the standard schedulers leave
     those to the environment and halt. *)
  let ch = Fixtures.channel "ch" in
  let s = Scheduler.uniform ch in
  Alcotest.(check int) "no local choice" 0 (Dist.size (s.Scheduler.choose (Exec.init (Psioa.start ch))))

let test_halt_scheduler () =
  let s = Scheduler.halt in
  Alcotest.(check int) "empty" 0 (Dist.size (s.Scheduler.choose (Exec.init Value.unit)))

let test_bounded_scheduler () =
  let c = Fixtures.coin "c" in
  let s = Scheduler.bounded 2 (Scheduler.first_enabled c) in
  Alcotest.(check (option int)) "bound recorded" (Some 2) (Scheduler.is_bounded s);
  let heads = Value.tag "heads" Value.unit in
  let e2 =
    Exec.extend (Exec.extend (Exec.init (Psioa.start c)) (act "c.flip") heads) (act "c.heads") heads
  in
  Alcotest.(check int) "halts at bound" 0 (Dist.size (s.Scheduler.choose e2));
  let e1 = Exec.extend (Exec.init (Psioa.start c)) (act "c.flip") heads in
  Alcotest.(check int) "active below bound" 1 (Dist.size (s.Scheduler.choose e1))

let test_oblivious_script () =
  let c = Fixtures.coin "c" in
  let s = Scheduler.oblivious c [ act "c.flip"; act "c.heads" ] in
  let e0 = Exec.init (Psioa.start c) in
  Alcotest.(check int) "step 0 fires" 1 (Dist.size (s.Scheduler.choose e0));
  (* After flip to tails, script wants c.heads which is disabled: halt. *)
  let tails = Value.tag "tails" Value.unit in
  let e1 = Exec.extend e0 (act "c.flip") tails in
  Alcotest.(check int) "disabled action halts" 0 (Dist.size (s.Scheduler.choose e1))

let test_validate_choice_rejects () =
  let c = Fixtures.coin "c" in
  let bad = Scheduler.make ~name:"bad" (fun _ -> Dist.dirac ~compare:Action.compare (act "ghost")) in
  (try
     ignore (Scheduler.validate_choice c bad (Exec.init (Psioa.start c)));
     Alcotest.fail "expected Bad_choice"
   with Scheduler.Bad_choice { scheduler; _ } -> Alcotest.(check string) "name" "bad" scheduler)

(* ---------------------------------------------------------------- Measure *)

let test_exec_dist_coin () =
  let c = Fixtures.coin "c" in
  let sched = Scheduler.bounded 1 (Scheduler.first_enabled c) in
  let d = Measure.exec_dist c sched ~depth:4 in
  Alcotest.(check int) "two completed executions" 2 (Dist.size d);
  Alcotest.(check bool) "proper measure" true (Dist.is_proper d);
  List.iter (fun (e, p) ->
      Alcotest.(check int) "length 1" 1 (Exec.length e);
      Alcotest.check rat "1/2" Rat.half p)
    (Dist.items d)

let test_exec_dist_depth_cutoff () =
  let k = Fixtures.counter ~bound:10 "k" in
  let sched = Scheduler.first_enabled k in
  let d = Measure.exec_dist k sched ~depth:3 in
  Alcotest.(check int) "single deterministic run" 1 (Dist.size d);
  Alcotest.(check int) "cut at depth" 3 (Exec.length (List.hd (Dist.support d)))

let test_exec_dist_halt_when_empty () =
  let k = Fixtures.counter ~bound:2 "k" in
  let sched = Scheduler.first_enabled k in
  let d = Measure.exec_dist k sched ~depth:10 in
  Alcotest.(check int) "stops at sig-empty state" 2 (Exec.length (List.hd (Dist.support d)));
  Alcotest.(check bool) "proper" true (Dist.is_proper d)

let test_cone_prob () =
  let c = Fixtures.coin "c" in
  let sched = Scheduler.uniform c in
  let heads = Value.tag "heads" Value.unit in
  let e = Exec.extend (Exec.init (Psioa.start c)) (act "c.flip") heads in
  Alcotest.check rat "P(cone flip→heads) = 1/2" Rat.half (Measure.cone_prob c sched e);
  let e2 = Exec.extend e (act "c.heads") heads in
  Alcotest.check rat "deterministic continuation keeps 1/2" Rat.half (Measure.cone_prob c sched e2);
  let bogus = Exec.extend (Exec.init heads) (act "c.flip") heads in
  Alcotest.check rat "wrong start has measure 0" Rat.zero (Measure.cone_prob c sched bogus)

let test_cone_prefix_monotone () =
  (* ε_σ(C_α) ≥ ε_σ(C_α') when α ≤ α'. *)
  let ch = Fixtures.channel "ch" in
  let s = Fixtures.sender ~channel_name:"ch" ~script:[ 0; 1 ] "s" in
  let sys = Compose.pair s ch in
  let sched = Scheduler.uniform sys in
  let d = Measure.exec_dist sys sched ~depth:4 in
  List.iter
    (fun e ->
      let rec prefixes acc cur = function
        | [] -> acc
        | (a, q) :: rest -> let nxt = Exec.extend cur a q in prefixes (nxt :: acc) nxt rest
      in
      let ps = prefixes [] (Exec.init (Exec.fstate e)) (Exec.steps e) in
      let probs = List.rev_map (Measure.cone_prob sys sched) ps in
      let rec decreasing = function
        | a :: (b :: _ as rest) -> Rat.compare a b >= 0 && decreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone along prefixes" true (decreasing probs))
    (Dist.support d)

let test_trace_dist () =
  let c = Fixtures.coin "c" in
  let sched = Scheduler.bounded 2 (Scheduler.first_enabled c) in
  let d = Measure.trace_dist c sched ~depth:4 in
  (* flip is internal: traces are [c.heads] and [c.tails], 1/2 each. *)
  Alcotest.(check int) "two traces" 2 (Dist.size d);
  Alcotest.check rat "heads trace 1/2" Rat.half (Dist.prob d [ act "c.heads" ])

(* ------------------------------------------------------- Budgeted measure *)

let test_budget_exact_when_unhit () =
  (* Budgets loose enough never to fire leave the measure bit-for-bit
     identical to the unbudgeted computation, and report [`Exact]. *)
  let c = Fixtures.coin "c" in
  let sched = Scheduler.bounded 4 (Scheduler.uniform c) in
  let plain = Measure.exec_dist c sched ~depth:5 in
  (match Measure.exec_dist_budgeted c sched ~depth:5 with
  | `Exact d -> Alcotest.(check bool) "no budgets: same dist" true (Dist.equal d plain)
  | `Truncated _ -> Alcotest.fail "no budget given, yet truncated");
  match Measure.exec_dist_budgeted ~max_execs:100_000 ~max_width:100_000 c sched ~depth:5 with
  | `Exact d -> Alcotest.(check bool) "loose budgets: same dist" true (Dist.equal d plain)
  | `Truncated _ -> Alcotest.fail "loose budgets must not truncate"

let test_budget_truncation_mass_accounting () =
  let w = Fixtures.random_walk ~span:4 "rw" in
  let sched = Scheduler.bounded 6 (Scheduler.uniform w) in
  let full = Measure.exec_dist w sched ~depth:7 in
  Alcotest.(check bool) "enough branching to truncate" true (Dist.size full > 4);
  match Measure.exec_dist_budgeted ~max_execs:3 w sched ~depth:7 with
  | `Exact _ -> Alcotest.fail "cap below support size must truncate"
  | `Truncated (d, lost) ->
      Alcotest.(check bool) "support within cap" true (Dist.size d <= 3);
      Alcotest.(check bool) "deficit strictly positive" true (Rat.sign lost > 0);
      Alcotest.check rat "dist mass + deficit = 1 exactly" Rat.one
        (Rat.add (Dist.mass d) lost);
      (* the memoized path truncates identically *)
      (match Measure.exec_dist_budgeted ~memo:true ~max_execs:3 w sched ~depth:7 with
      | `Truncated (d', lost') ->
          Alcotest.(check bool) "memo: same dist" true (Dist.equal d d');
          Alcotest.check rat "memo: same deficit" lost lost'
      | `Exact _ -> Alcotest.fail "memoized path must truncate too")

let test_budget_width_is_exact_submeasure () =
  (* Width pruning drops whole cones but never rescales: every retained
     execution keeps its exact unbudgeted probability. *)
  let w = Fixtures.random_walk ~span:4 "rw" in
  let sched = Scheduler.bounded 6 (Scheduler.uniform w) in
  match Measure.exec_dist_budgeted ~max_width:2 w sched ~depth:7 with
  | `Exact _ -> Alcotest.fail "width 2 must truncate the walk"
  | `Truncated (d, lost) ->
      Alcotest.check rat "mass + deficit = 1" Rat.one (Rat.add (Dist.mass d) lost);
      let full = Measure.exec_dist w sched ~depth:7 in
      List.iter
        (fun (e, p) -> Alcotest.check rat "retained prob is exact" (Dist.prob full e) p)
        (Dist.items d)

let test_budget_reach_prob_brackets () =
  let c = Fixtures.coin "c" in
  let sched = Scheduler.bounded 3 (Scheduler.uniform c) in
  let pred q = Value.equal q (Value.tag "heads" Value.unit) in
  let exact = Measure.reach_prob c sched ~depth:4 ~pred in
  match Measure.reach_prob_budgeted ~max_execs:1 c sched ~depth:4 ~pred with
  | `Exact _ -> Alcotest.fail "support 2 capped at 1 must truncate"
  | `Truncated (p, lost) ->
      Alcotest.(check bool) "lower bound" true (Rat.compare p exact <= 0);
      Alcotest.(check bool) "upper bound p + deficit" true
        (Rat.compare exact (Rat.add p lost) <= 0)

(* ---------------------------------------------------------------- Insight *)

let coin_env_composite name p =
  (* Environment accepting when it observes the coin landing heads. *)
  let c = Fixtures.coin ~p name in
  let env = Fixtures.acceptor ~watch:[ (name ^ ".heads", None) ] "env" in
  (env, Compose.pair env c)

let test_accept_insight () =
  let env, comp = coin_env_composite "c" Rat.half in
  ignore env;
  let sched = Scheduler.bounded 3 (Scheduler.first_enabled comp) in
  let f = Insight.accept comp in
  let d = Insight.apply f comp sched ~depth:5 in
  (* first_enabled: flip; if heads then acc eventually fires. *)
  Alcotest.check rat "accept prob 1/2" Rat.half (Dist.prob d (Value.bool true))

let test_accept_detects_bias () =
  let _, comp_fair = coin_env_composite "c" Rat.half in
  let _, comp_biased = coin_env_composite "c" (Rat.of_ints 3 4) in
  let sched a = Scheduler.bounded 3 (Scheduler.first_enabled a) in
  let verdict =
    Balance.check ~eps:Rat.zero ~depth:5
      (Insight.accept comp_fair, comp_fair, sched comp_fair)
      (Insight.accept comp_biased, comp_biased, sched comp_biased)
  in
  Alcotest.(check bool) "not balanced at 0" false verdict.Balance.within;
  Alcotest.check rat "distance = 1/4" (Rat.of_ints 1 4) verdict.Balance.distance

let test_balanced_identical_renamed () =
  (* The same coin under two different automaton names is indistinguishable
     through the accept insight: distance exactly 0 (the ε=0 case that
     motivates exact rationals). *)
  let _, comp_a = coin_env_composite "c" Rat.half in
  let env_b = Fixtures.acceptor ~watch:[ ("d.heads", None) ] "env" in
  let comp_b = Compose.pair env_b (Fixtures.coin "d") in
  let sched a = Scheduler.bounded 3 (Scheduler.first_enabled a) in
  let verdict =
    Balance.check ~eps:Rat.zero ~depth:5
      (Insight.accept comp_a, comp_a, sched comp_a)
      (Insight.accept comp_b, comp_b, sched comp_b)
  in
  Alcotest.(check bool) "balanced at ε=0" true verdict.Balance.within

let test_trace_insight_observation () =
  let c = Fixtures.coin "c" in
  let sched = Scheduler.bounded 2 (Scheduler.first_enabled c) in
  let f = Insight.trace c in
  let d = Insight.apply f c sched ~depth:4 in
  Alcotest.(check int) "two observations" 2 (Dist.size d)

let test_print_insight_env_view () =
  let env, comp = coin_env_composite "c" Rat.half in
  let sched = Scheduler.bounded 3 (Scheduler.first_enabled comp) in
  let f = Insight.print_left env comp in
  let d = Insight.apply f comp sched ~depth:5 in
  (* The environment either observes heads (then acc) or nothing: two
     distinct local views. *)
  Alcotest.(check int) "two env views" 2 (Dist.size d)

let test_stability_print_insight () =
  (* Def 3.7 for the print insight — the paper notes print is stable by
     composition and is the one suited to monotonicity results. Unlike
     accept/trace, the print observer changes with the grouping: E's local
     view when E observes B‖Aᵢ, and (E‖B)'s local view when E‖B observes
     Aᵢ — so the comparison is spelled out rather than going through
     check_stability. *)
  let env = Fixtures.acceptor ~watch:[ ("c.heads", None); ("d.heads", None) ] "env" in
  let ctx = Fixtures.counter ~bound:1 "ctx" in
  let a1 = Fixtures.coin "c" ~p:Rat.half in
  let a2 = Fixtures.coin "c" ~p:(Rat.of_ints 1 3) in
  let sched a = Scheduler.bounded 4 (Scheduler.first_enabled a) in
  let dist observer mk =
    let c1 = mk a1 and c2 = mk a2 in
    Stat.sup_set_distance
      (Insight.apply (Insight.print_left observer c1) c1 (sched c1) ~depth:6)
      (Insight.apply (Insight.print_left observer c2) c2 (sched c2) ~depth:6)
  in
  let d_env = dist env (fun a -> Compose.pair env (Compose.pair ctx a)) in
  let envctx = Compose.pair env ctx in
  let d_envctx = dist envctx (fun a -> Compose.pair envctx a) in
  Alcotest.(check bool) "E's print distance ≤ (E||B)'s" true (Rat.compare d_env d_envctx <= 0)

let test_stability_by_composition () =
  (* Def 3.7 on a concrete instance: E observing through context B has no
     more distinguishing power than E||B directly. *)
  let env = Fixtures.acceptor ~watch:[ ("c.heads", None); ("d.heads", None) ] "env" in
  let ctx = Fixtures.counter ~bound:1 "ctx" in
  let a1 = Fixtures.coin "c" ~p:Rat.half in
  let a2 = Fixtures.coin "c" ~p:(Rat.of_ints 1 3) in
  let ok =
    Insight.check_stability ~make_insight:Insight.accept ~env ~ctx ~a1 ~a2
      ~sched_of:(fun a -> Scheduler.bounded 4 (Scheduler.first_enabled a))
      ~depth:6
  in
  Alcotest.(check bool) "accept stable by composition" true ok

let test_sample_exec_in_cone () =
  (* Every sampled execution has positive exact cone probability. *)
  let c = Fixtures.coin "c" in
  let sched = Scheduler.bounded 2 (Scheduler.uniform c) in
  let rng = Rng.make 99 in
  for _ = 1 to 100 do
    let e = Measure.sample_exec c sched ~rng ~depth:4 in
    if Rat.is_zero (Measure.cone_prob c sched e) then
      Alcotest.fail "sampled execution outside the measure's support"
  done

let test_estimate_fdist_converges () =
  (* The empirical accept frequency converges to the exact 1/2. *)
  let env, comp = coin_env_composite "c" Rat.half in
  ignore env;
  let sched = Scheduler.bounded 3 (Scheduler.first_enabled comp) in
  let f = Insight.accept comp in
  let est =
    Measure.estimate_fdist comp sched ~observe:f.Insight.observe ~rng:(Rng.make 4) ~samples:4000
      ~depth:5
  in
  let p_true = Option.value ~default:0.0 (List.assoc_opt (Value.bool true) est) in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.3f within 0.05 of exact 0.5" p_true)
    true
    (Float.abs (p_true -. 0.5) < 0.05)

let test_print_nth_matches_print_left () =
  (* On a two-component parallel composite with the environment first,
     print_nth 0 and print_left (on the pair composite) observe the same
     environment view distribution. *)
  let c = Fixtures.coin "c" in
  let env = Fixtures.acceptor ~watch:[ ("c.heads", None) ] "env" in
  let par = Compose.parallel [ env; c ] in
  let pair = Compose.pair env c in
  let d_par =
    Insight.apply (Insight.print_nth env 0 par) par
      (Scheduler.bounded 3 (Scheduler.first_enabled par)) ~depth:5
  in
  let d_pair =
    Insight.apply (Insight.print_left env pair) pair
      (Scheduler.bounded 3 (Scheduler.first_enabled pair)) ~depth:5
  in
  Alcotest.(check bool) "same observation measure" true (Cdse_prob.Dist.equal d_par d_pair)

let test_reach_prob_walk () =
  (* Gambler's-ruin flavoured exact check: from 2 on 0..4, reaching 4
     within 2 steps has probability 1/4; within 4 steps it is
     1/4 + 2·(1/16) = 3/8 (up-up, and the two up-down/down-up detours that
     then go up-up). *)
  let w = Fixtures.random_walk ~span:4 "w" in
  let at4 = function Value.Tag ("walk", Value.Int 4) -> true | _ -> false in
  let sched d = Scheduler.bounded d (Scheduler.first_enabled w) in
  Alcotest.check rat "depth 2" (Rat.of_ints 1 4)
    (Measure.reach_prob w (sched 2) ~depth:2 ~pred:at4);
  Alcotest.check rat "depth 4" (Rat.of_ints 3 8)
    (Measure.reach_prob w (sched 4) ~depth:4 ~pred:at4)

let test_expected_steps () =
  (* The fragile automaton survives each step w.p. 1/2 under a 3-bounded
     scheduler: E[steps] = 1 + 1/2 + 1/4 = 7/4. *)
  let f = Fixtures.fragile "f" in
  let sched = Scheduler.bounded 3 (Scheduler.first_enabled f) in
  Alcotest.check rat "E[steps] = 7/4" (Rat.of_ints 7 4) (Measure.expected_steps f sched ~depth:5)

(* ------------------------------------------------------------------- Pool *)

exception Job_boom of int

(* Regression: a worker job that raises used to skip the pending-counter
   decrement, leaving [Pool.run] waiting on the completion barrier forever
   (the engine deadlocked the first time a scheduler raised on a multicore
   run). [run] must complete the barrier, re-raise deterministically — the
   recorded exception of the smallest worker id, independent of OS
   scheduling — and leave the pool reusable. *)
let test_pool_raise_no_deadlock () =
  let module Pool = Par_measure.For_tests.Pool in
  let pool = Pool.create 4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  for _ = 1 to 3 do
    (* Workers 1 and 3 raise; worker 1 — the smallest raising id — wins,
       whichever domain finishes first. *)
    let got =
      match Pool.run pool (fun w -> if w mod 2 = 1 then raise (Job_boom w)) with
      | () -> None
      | exception Job_boom w -> Some w
    in
    Alcotest.(check (option int)) "smallest raising worker id re-raised"
      (Some 1) got
  done;
  (* The pool survives raising runs: a clean job still runs on every
     worker. *)
  let hits = Array.make 4 0 in
  Pool.run pool (fun w -> hits.(w) <- hits.(w) + 1);
  Alcotest.(check (array int)) "pool reusable after raises" [| 1; 1; 1; 1 |] hits

let test_pool_caller_raise () =
  (* The caller is worker 0; its own raise must also complete the barrier
     (spawned workers finish their jobs) and re-raise. *)
  let module Pool = Par_measure.For_tests.Pool in
  let pool = Pool.create 2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let others = Atomic.make 0 in
  let got =
    match
      Pool.run pool (fun w ->
          if w = 0 then raise (Job_boom 0) else Atomic.incr others)
    with
    | () -> None
    | exception Job_boom w -> Some w
  in
  Alcotest.(check (option int)) "caller's exception re-raised" (Some 0) got;
  Alcotest.(check int) "spawned worker still ran" 1 (Atomic.get others);
  Pool.run pool (fun _ -> ());
  Alcotest.(check pass) "pool reusable after caller raise" () ()

(* ----------------------------------------------------------------- Schema *)

let test_schema_standard () =
  let c = Fixtures.coin "c" in
  let scheds = Schema.instantiate (Schema.standard ~bound:3) c in
  Alcotest.(check int) "three schedulers" 3 (List.length scheds);
  List.iter
    (fun s -> Alcotest.(check (option int)) "bounded" (Some 3) (Scheduler.is_bounded s))
    scheds

let test_schema_oblivious () =
  let c = Fixtures.coin "c" in
  let schema = Schema.oblivious ~scripts:[ [ act "c.flip" ]; [ act "c.flip"; act "c.heads" ] ] in
  Alcotest.(check int) "two scripts" 2 (List.length (Schema.instantiate schema c))

let () =
  Alcotest.run "cdse_sched"
    [ ( "scheduler",
        [ Alcotest.test_case "uniform" `Quick test_uniform_choice;
          Alcotest.test_case "free inputs not scheduled" `Quick test_uniform_skips_free_inputs;
          Alcotest.test_case "halt" `Quick test_halt_scheduler;
          Alcotest.test_case "bounded (Def 4.6)" `Quick test_bounded_scheduler;
          Alcotest.test_case "oblivious script" `Quick test_oblivious_script;
          Alcotest.test_case "support condition enforced" `Quick test_validate_choice_rejects ] );
      ( "measure",
        [ Alcotest.test_case "coin exec dist" `Quick test_exec_dist_coin;
          Alcotest.test_case "depth cutoff" `Quick test_exec_dist_depth_cutoff;
          Alcotest.test_case "halting on empty signature" `Quick test_exec_dist_halt_when_empty;
          Alcotest.test_case "cone probability" `Quick test_cone_prob;
          Alcotest.test_case "cone monotone on prefixes" `Quick test_cone_prefix_monotone;
          Alcotest.test_case "trace dist" `Quick test_trace_dist;
          Alcotest.test_case "sampling stays in support" `Quick test_sample_exec_in_cone;
          Alcotest.test_case "Monte-Carlo converges" `Quick test_estimate_fdist_converges;
          Alcotest.test_case "reachability probability (exact)" `Quick test_reach_prob_walk;
          Alcotest.test_case "expected steps (exact)" `Quick test_expected_steps ] );
      ( "budgeted-measure",
        [ Alcotest.test_case "loose budgets are exact" `Quick test_budget_exact_when_unhit;
          Alcotest.test_case "truncation: mass + deficit = 1" `Quick
            test_budget_truncation_mass_accounting;
          Alcotest.test_case "width pruning is an exact sub-measure" `Quick
            test_budget_width_is_exact_submeasure;
          Alcotest.test_case "budgeted reach_prob brackets" `Quick
            test_budget_reach_prob_brackets ] );
      ( "insight",
        [ Alcotest.test_case "accept (Def 3.4)" `Quick test_accept_insight;
          Alcotest.test_case "accept detects bias" `Quick test_accept_detects_bias;
          Alcotest.test_case "balanced at ε=0 (Def 3.6)" `Quick test_balanced_identical_renamed;
          Alcotest.test_case "trace observation" `Quick test_trace_insight_observation;
          Alcotest.test_case "print: environment view" `Quick test_print_insight_env_view;
          Alcotest.test_case "print_nth agrees with print_left" `Quick test_print_nth_matches_print_left;
          Alcotest.test_case "stability by composition (Def 3.7)" `Quick test_stability_by_composition;
          Alcotest.test_case "print stability (Def 3.7)" `Quick test_stability_print_insight ] );
      ( "pool",
        [ Alcotest.test_case "raising jobs neither deadlock nor poison" `Quick
            test_pool_raise_no_deadlock;
          Alcotest.test_case "caller raise completes the barrier" `Quick
            test_pool_caller_raise ] );
      ( "schema",
        [ Alcotest.test_case "standard schema" `Quick test_schema_standard;
          Alcotest.test_case "oblivious schema" `Quick test_schema_oblivious ] ) ]
