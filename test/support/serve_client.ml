(* Blocking test client for the cdse_serve wire protocol: one Unix-socket
   connection, synchronous request/response helpers, and raw-line access
   for malformed-input tests. Deliberately independent of the server's
   connection code — it exercises the protocol from the outside, byte by
   byte, the way a foreign client would. *)

module Json = Cdse_serve.Json

type t = {
  fd : Unix.file_descr;
  rbuf : bytes;
  pending : Buffer.t;
  mutable scanned : int;
      (* offset into [pending] below which no newline exists — large
         replies (a dist at depth 12 is megabytes) arrive in 4 KB chunks,
         and rescanning the whole buffer per chunk is quadratic *)
  mutable next_id : int;
}

(* The server binds its socket before [start] returns, but tests that
   launch it on another thread (or as a child process) may race the
   filesystem; retry briefly instead of flaking. *)
let connect ?(retries = 50) path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.05;
        go (n - 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  {
    fd = go retries;
    rbuf = Bytes.create 4096;
    pending = Buffer.create 256;
    scanned = 0;
    next_id = 0;
  }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write t.fd b off (n - off))
  in
  go 0

let recv_line t =
  let rec take () =
    let len = Buffer.length t.pending in
    let rec find i =
      if i >= len then None
      else if Buffer.nth t.pending i = '\n' then Some i
      else find (i + 1)
    in
    match find t.scanned with
    | Some i ->
        let s = Buffer.contents t.pending in
        Buffer.clear t.pending;
        Buffer.add_substring t.pending s (i + 1) (String.length s - i - 1);
        t.scanned <- 0;
        String.sub s 0 i
    | None -> (
        t.scanned <- len;
        match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
        | 0 -> failwith "Serve_client.recv_line: connection closed by server"
        | n ->
            Buffer.add_subbytes t.pending t.rbuf 0 n;
            take ())
  in
  take ()

type reply = { r_id : int option; r_ok : bool; r_body : Json.t }
(** [r_body] is the ["result"] field when [r_ok], the ["error"] object
    otherwise. *)

let reply_of_line line =
  let j = Json.parse line in
  let r_id =
    match Json.member "id" j with Some v -> Json.to_int v | None -> None
  in
  match (Json.member "ok" j, Json.member "result" j, Json.member "error" j) with
  | Some (Json.Bool true), Some r, _ -> { r_id; r_ok = true; r_body = r }
  | Some (Json.Bool false), _, Some e -> { r_id; r_ok = false; r_body = e }
  | _ -> failwith ("Serve_client: malformed reply: " ^ line)

(* Send [fields] as a request object with a fresh id; block for the reply
   with that id (buffering any interleaved replies would require real
   pipelining — the blocking client simply trusts the id match, which
   holds because it never has more than one request outstanding). *)
let request t fields =
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  send_line t
    (Json.to_string (Json.Obj (("id", Json.Num (float_of_int id)) :: fields)));
  let r = reply_of_line (recv_line t) in
  (match r.r_id with
  | Some i when i = id -> ()
  | _ -> failwith "Serve_client.request: reply id mismatch");
  r

let ping t = request t [ ("op", Json.Str "ping") ]
let stats t = request t [ ("op", Json.Str "stats") ]
let shutdown t = request t [ ("op", Json.Str "shutdown") ]

(* Field accessors for replies *)

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> failwith ("Serve_client: reply missing field " ^ name)

let str = function
  | Json.Str s -> s
  | j -> failwith ("Serve_client: expected string, got " ^ Json.to_string j)

let int j =
  match Json.to_int j with
  | Some i -> i
  | None -> failwith ("Serve_client: expected int, got " ^ Json.to_string j)
