(* Mutation-testing harness for the emulation checker.

   The WGCGB idea turned into a test tool: systematically perturb a member
   automaton at one (state, action) site — drop a transition, redirect an
   output's payload, bias a probability by an exact rational — and assert
   that the secure-emulation checker *kills* every mutant (the `≤_SE`
   verdict stops holding). A checker that passes all mutants is measuring
   something; one that passes a mutant is vacuous at that site.

   Operators target locally controlled actions only: mutating how a member
   reacts to a free input is a change of environment behaviour, not of the
   member, and dropping an input would break input-enabledness towards
   composition partners. *)

open Cdse_prob
open Cdse_psioa

type op = Drop | Redirect | Bias

let op_name = function Drop -> "drop" | Redirect -> "redirect" | Bias -> "bias"

type mutation = {
  op : op;
  state : Value.t;
  action : Action.t;
  label : string;
  mutant : Psioa.t;
}

(* Mutating env-unreachable member states breeds unkillable mutants (no
   execution of E ‖ protocol ever exercises the site), so target states
   are computed *co-reachably*: explore the composite the checker will
   actually run and project out the member's local states. The walk is
   closed-world — only locally controlled (output/internal) actions fire —
   because [Psioa.reachable] also chases free inputs nobody in the
   composite ever emits, which is exactly the unkillable-site mistake this
   function exists to avoid. *)
let co_reachable ?(max_states = 2000) ?(max_depth = max_int) ~project comp =
  let visited = ref [] in
  let states = ref [] in
  let mem l v = List.exists (fun x -> Value.compare x v = 0) l in
  let rec go depth frontier =
    match frontier with
    | [] -> ()
    | _ when depth > max_depth || List.length !visited >= max_states -> ()
    | _ ->
        let next =
          List.concat_map
            (fun q ->
              (match project q with
              | Some m when not (mem !states m) -> states := m :: !states
              | _ -> ());
              List.concat_map
                (fun a ->
                  match Psioa.transition comp q a with
                  | Some d -> Dist.support d
                  | None -> [])
                (Action_set.elements (Sigs.local (Psioa.signature comp q))))
            frontier
        in
        let fresh =
          List.filter
            (fun q ->
              if mem !visited q then false
              else begin
                visited := q :: !visited;
                true
              end)
            next
        in
        go (depth + 1) fresh
  in
  visited := [ Psioa.start comp ];
  go 0 [ Psioa.start comp ];
  List.rev !states

let mklabel op q a = Printf.sprintf "%s %s @ %s" (op_name op) (Action.to_string a) (Value.to_string q)

let at_state qh q = Value.compare q qh = 0

(* Remove one locally controlled action from one state: the signature
   shrinks (still legal per Def 2.1) and the transition becomes undefined
   exactly there. *)
let drop_at auto qh ah =
  let signature q =
    let s = Psioa.signature auto q in
    if at_state qh q then
      Sigs.make
        ~input:(Sigs.input s)
        ~output:(Action_set.remove ah (Sigs.output s))
        ~internal:(Action_set.remove ah (Sigs.internal s))
    else s
  in
  let transition q a =
    if at_state qh q && Action.equal a ah then None else Psioa.transition auto q a
  in
  Psioa.make ~name:(Psioa.name auto ^ "!drop") ~start:(Psioa.start auto) ~signature ~transition

(* Replace output [ah] with [ah'] at one state, keeping the original
   target distribution: the member emits the wrong thing. The caller
   guarantees [ah'] is fresh at that state. *)
let redirect_at auto qh ah ah' =
  let signature q =
    let s = Psioa.signature auto q in
    if at_state qh q then
      Sigs.make ~input:(Sigs.input s)
        ~output:(Action_set.add ah' (Action_set.remove ah (Sigs.output s)))
        ~internal:(Sigs.internal s)
    else s
  in
  let transition q a =
    if at_state qh q && Action.equal a ah then None
    else if at_state qh q && Action.equal a ah' then Psioa.transition auto q ah
    else Psioa.transition auto q a
  in
  Psioa.make ~name:(Psioa.name auto ^ "!redirect") ~start:(Psioa.start auto) ~signature ~transition

(* Shift exactly half of the second support point's mass onto the first:
   [(v0, p0); (v1, p1); …] becomes [(v0, p0 + p1/2); (v1, p1/2); …].
   Exact rationals, always a proper sub-distribution, always a genuine
   change (p1 > 0 in a support). *)
let bias_at auto qh ah =
  let bias d =
    match Dist.items d with
    | (v0, p0) :: (v1, p1) :: rest ->
        let half = Rat.div p1 (Rat.of_int 2) in
        Dist.make ~compare:Value.compare ((v0, Rat.add p0 half) :: (v1, half) :: rest)
    | _ -> d
  in
  let transition q a =
    let d = Psioa.transition auto q a in
    if at_state qh q && Action.equal a ah then Option.map bias d else d
  in
  Psioa.make ~name:(Psioa.name auto ^ "!bias") ~start:(Psioa.start auto)
    ~signature:(Psioa.signature auto) ~transition

(* Default redirect: flip the low bit of an integer payload, keeping the
   action name — send(1) becomes send(0). *)
let flip_payload a =
  match Action.payload a with
  | Value.Int v -> Some (Action.make ~payload:(Value.int (v lxor 1)) (Action.name a))
  | _ -> None

let mutants ?(redirect = flip_payload) ~states auto =
  let per_state qh =
    let s = Psioa.signature auto qh in
    let local = Action_set.elements (Sigs.local s) in
    let drops =
      List.map
        (fun a ->
          { op = Drop; state = qh; action = a; label = mklabel Drop qh a;
            mutant = drop_at auto qh a })
        local
    in
    let redirects =
      List.filter_map
        (fun a ->
          match redirect a with
          | Some a' when (not (Action.equal a a')) && not (Sigs.mem a' s) ->
              Some
                { op = Redirect; state = qh; action = a; label = mklabel Redirect qh a;
                  mutant = redirect_at auto qh a a' }
          | _ -> None)
        (Action_set.elements (Sigs.output s))
    in
    let biases =
      List.filter_map
        (fun a ->
          match Psioa.transition auto qh a with
          | Some d when Dist.size d >= 2 ->
              Some
                { op = Bias; state = qh; action = a; label = mklabel Bias qh a;
                  mutant = bias_at auto qh a }
          | _ -> None)
        local
    in
    drops @ redirects @ biases
  in
  (* Stillborn mutants (invalid per Def 2.1) prove nothing when "killed":
     discard them instead of counting them. *)
  List.filter
    (fun m -> match Psioa.validate ~max_states:2000 m.mutant with Ok () -> true | Error _ -> false)
    (List.concat_map per_state states)

type report = { total : int; killed : int; survivors : mutation list }

let sweep ~killed mutations =
  let survivors = List.filter (fun m -> not (killed m)) mutations in
  { total = List.length mutations;
    killed = List.length mutations - List.length survivors;
    survivors }
