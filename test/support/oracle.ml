(* Reference measure engine for differential conformance testing.

   Computes the same depth-bounded execution measure as
   [Cdse_sched.Measure.exec_dist], but with the most naive structures that
   can express the Section 3 semantics: plain lists, no memoization, no
   budgets, no arrays, no instrumentation — each layer rebuilt by literal
   list comprehension over the previous one. Deliberately shares no code
   with the production engines (sequential or multicore), so agreement is
   evidence about the semantics, not about a common implementation. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched

(* One-step extensions of a weighted execution: for every scheduled action
   and every target state, an extended execution carrying the product
   probability. *)
let extensions auto sched (e, p) =
  let choice = Scheduler.validate_choice auto sched e in
  List.concat_map
    (fun (act, pa) ->
      let eta = Psioa.step auto (Exec.lstate e) act in
      List.map
        (fun (q', pq) -> (Exec.extend e act q', Rat.mul p (Rat.mul pa pq)))
        (Dist.items eta))
    (Dist.items choice)

(* Mass on which the scheduler halts at [e]: p × (1 − |choice|). *)
let halt_mass auto sched (e, p) =
  let choice = Scheduler.validate_choice auto sched e in
  Rat.mul p (Dist.deficit choice)

let exec_dist auto sched ~depth =
  let rec go step alive finished =
    if step = depth || alive = [] then
      Dist.make ~compare:Exec.compare (finished @ alive)
    else
      let finished =
        finished
        @ List.filter_map
            (fun entry ->
              let m = halt_mass auto sched entry in
              if Rat.is_zero m then None else Some (fst entry, m))
            alive
      in
      let alive = List.concat_map (extensions auto sched) alive in
      go (step + 1) alive finished
  in
  go 0 [ (Exec.init (Psioa.start auto), Rat.one) ] []
