(* Differential conformance suite for the exact-measure engines.

   Three independent implementations compute the Section 3 depth-bounded
   execution measure: the naive list-based oracle (test/support/oracle.ml,
   shares no code with production), the sequential engine
   (Measure.exec_dist, domains = 1) and the multicore engine
   (Par_measure, domains ≥ 2). The suite generates random PSIOAs and PCAs
   (including fault-wrapped churning ones) and asserts all of them agree
   — distributions Dist.equal, budget tags and deficits identical, Obs
   totals conserved — for every domain count and chunk size.

   A committed corpus of previously interesting seeds (test/corpus/) is
   replayed first, then the randomized properties run with shrinking. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_testkit

let qtest = QCheck_alcotest.to_alcotest

(* Domain counts exercised against the sequential engine: always 2 and 4,
   plus CDSE_TEST_DOMAINS when the environment (CI) asks for another. *)
let test_domains =
  let base = [ 2; 4 ] in
  match Option.bind (Sys.getenv_opt "CDSE_TEST_DOMAINS") int_of_string_opt with
  | Some n when n > 1 && not (List.mem n base) -> base @ [ n ]
  | _ -> base

(* Compression level threaded through the budgeted / chunk / Obs
   properties, so a CI leg (CDSE_TEST_COMPRESS=quotient) replays the whole
   determinism battery on the compressed engine. The main [conforms] check
   always exercises every level regardless. *)
let test_compress : Measure.compress =
  match Sys.getenv_opt "CDSE_TEST_COMPRESS" with
  | Some "hcons" -> `Hcons
  | Some "quotient" -> `Quotient
  | _ -> `Off

(* Multicore engines pitted against the sequential reference on the
   unbudgeted paths. Both by default; CDSE_TEST_ENGINE pins one so a CI
   leg can replay the whole corpus on the barrier-free subtree engine (or
   the layered one) alone. Budgeted and quotient-compressed runs always go
   through the layered engine regardless — that dispatch is the
   [Par_measure] contract, not a test knob. *)
let test_engines : Measure.engine list =
  match Sys.getenv_opt "CDSE_TEST_ENGINE" with
  | Some "layered" -> [ `Layered ]
  | Some "subtree" -> [ `Subtree ]
  | _ -> [ `Layered; `Subtree ]

(* ------------------------------------------------------------ scenarios *)

(* A conformance case is four small integers; everything else is derived
   deterministically, so qcheck's integer shrinking shrinks the case. *)
type case = { seed : int; kind : int; sched : int; depth : int }

(* kind 3 (the robustness corner): a via-spliced faulty channel — lossy
   on even seeds, reordering on odd — feeds a compromisable receiver
   whose takeover is put under scheduler control by an injector
   (Cdse_gen.Workloads.faulty_channel, shared with the serve daemon's
   model registry). [build] then meters channel faults and takeovers
   together with [Fault.budget_sched], so the fault combinators are
   exercised end to end through every engine. *)
let build { seed; kind; sched; depth } =
  let rng = Rng.make seed in
  let auto =
    match kind mod 4 with
    | 0 -> Cdse_gen.Random_auto.make ~rng ~name:"ca" ~n_states:6 ~n_actions:3 ()
    | 1 -> Cdse_config.Pca.psioa (Cdse_gen.Random_pca.make ~rng ~n_members:3 ())
    | 2 ->
        Cdse_config.Pca.psioa
          (Cdse_gen.Random_pca.make ~rng ~n_members:3 ~faults:true ())
    | _ -> Cdse_gen.Workloads.faulty_channel ~seed
  in
  let sched =
    match sched mod 3 with
    | 0 -> Scheduler.uniform auto
    | 1 -> Scheduler.first_enabled auto
    | _ -> Scheduler.round_robin auto
  in
  let sched =
    (* kind 3 runs under a fault budget of k = (seed/2) mod 3, counting
       channel drops/skips and takeovers against the same cap. *)
    if kind mod 4 = 3 then Cdse_fault.Fault.budget_sched ((seed / 2) mod 3) sched
    else sched
  in
  (auto, Scheduler.bounded depth sched, depth)

let case_arb =
  let open QCheck in
  map
    ~rev:(fun { seed; kind; sched; depth } -> (seed, kind, sched, depth))
    (fun (seed, kind, sched, depth) -> { seed; kind; sched; depth })
    (quad (int_bound 100_000) (int_bound 3) (int_bound 2) (int_range 2 4))

let print_case { seed; kind; sched; depth } =
  Printf.sprintf "{seed=%d; kind=%d; sched=%d; depth=%d}" seed kind sched depth

let case_arb = QCheck.set_print print_case case_arb

(* ------------------------------------------------------------ equality *)

let budgeted_equal eq a b =
  match (a, b) with
  | `Exact d1, `Exact d2 -> eq d1 d2
  | `Truncated (d1, l1), `Truncated (d2, l2) -> eq d1 d2 && Rat.equal l1 l2
  | _ -> false

let trace_push auto d =
  Dist.map
    ~compare:(Cdse_util.Order.list Action.compare)
    (Exec.trace ~sig_of:(Psioa.signature auto))
    d

(* The full conformance check for one case: oracle vs sequential (plain
   and memoized) vs every multicore configuration, then the compression
   levels — [`Hcons] must be bit-identical (checked entry by entry, not
   just [Dist.equal], so a normal-form drift would also be caught);
   [`Quotient] must agree with the oracle's trace pushforward and preserve
   the total mass/deficit, and be bit-identical to itself across domain
   counts. *)
let conforms case =
  let auto, sched, depth = build case in
  let reference = Oracle.exec_dist auto sched ~depth in
  let seq = Measure.exec_dist auto sched ~depth in
  let items_identical d1 d2 =
    let i1 = Dist.items d1 and i2 = Dist.items d2 in
    List.length i1 = List.length i2
    && List.for_all2
         (fun (e, p) (e', p') -> Exec.compare e e' = 0 && Rat.equal p p')
         i1 i2
  in
  Dist.equal reference seq
  && Dist.equal seq (Measure.exec_dist ~memo:true auto sched ~depth)
  && List.for_all
       (fun domains ->
         List.for_all
           (fun engine ->
             Dist.equal seq (Measure.exec_dist ~engine ~domains auto sched ~depth)
             && Dist.equal seq
                  (Measure.exec_dist ~engine ~memo:true ~domains auto sched ~depth))
           test_engines)
       test_domains
  && items_identical seq (Measure.exec_dist ~compress:`Hcons auto sched ~depth)
  && List.for_all
       (fun domains ->
         List.for_all
           (fun engine ->
             Dist.equal seq
               (Measure.exec_dist ~engine ~compress:`Hcons ~memo:true ~domains auto
                  sched ~depth))
           test_engines)
       test_domains
  &&
  let q = Measure.exec_dist ~compress:`Quotient auto sched ~depth in
  Dist.equal (trace_push auto reference)
    (Measure.trace_dist ~compress:`Quotient auto sched ~depth)
  && Rat.equal (Dist.mass seq) (Dist.mass q)
  && Rat.equal (Dist.deficit seq) (Dist.deficit q)
  && List.for_all
       (fun domains ->
         items_identical q
           (Measure.exec_dist ~compress:`Quotient ~memo:true ~domains auto sched
              ~depth))
       test_domains

let prop_conformance =
  QCheck.Test.make ~count:200
    ~name:"oracle = sequential = memoized = multicore (exec_dist)" case_arb
    conforms

(* Budgets: the oracle has none, so the sequential engine is the reference;
   tag ([`Exact] / [`Truncated]) and exact deficit must survive sharding. *)
let prop_budgeted_conformance =
  QCheck.Test.make ~count:100
    ~name:"budget tag and deficit identical across domain counts" case_arb
    (fun case ->
      let auto, sched, depth = build case in
      let width = 1 + (case.seed mod 7) in
      let cap = 2 + (case.seed mod 11) in
      let run ?domains () =
        Measure.exec_dist_budgeted ~compress:test_compress ~max_width:width
          ~max_execs:cap ?domains auto sched ~depth
      in
      let seq = run () in
      List.for_all
        (fun domains -> budgeted_equal Dist.equal seq (run ~domains ()))
        test_domains)

(* The same invariant on the quotient engine unconditionally: at a fixed
   compression level the budget tag and exact deficit cannot depend on the
   domain count (the quotient merge happens before the budgets and is
   permutation-insensitive). *)
let prop_budgeted_quotient =
  QCheck.Test.make ~count:60
    ~name:"quotient: budget tag and deficit identical across domain counts"
    case_arb
    (fun case ->
      let auto, sched, depth = build case in
      let width = 1 + (case.seed mod 7) in
      let run ?domains () =
        Measure.exec_dist_budgeted ~compress:`Quotient ~max_width:width ?domains
          auto sched ~depth
      in
      let seq = run () in
      List.for_all
        (fun domains -> budgeted_equal Dist.equal seq (run ~domains ()))
        test_domains)

(* Chunked self-scheduling: any chunk size partitions every frontier the
   same way the merge reassembles it, so the result cannot depend on it.
   chunk = 1 maximally interleaves workers (each entry a separate claim);
   chunk = 64 usually hands whole layers to one worker. [chunk] is a
   layered-engine knob, so the engine is pinned — under [`Auto] an
   unbudgeted run would take the subtree engine and never read it. *)
let prop_chunk_independent =
  QCheck.Test.make ~count:50 ~name:"chunk size never changes the result" case_arb
    (fun case ->
      let auto, sched, depth = build case in
      let compress = test_compress in
      let seq = Measure.exec_dist ~compress auto sched ~depth in
      Dist.equal seq
        (Par_measure.exec_dist ~engine:`Layered ~compress ~domains:3 ~chunk:1 auto
           sched ~depth)
      && Dist.equal seq
           (Par_measure.exec_dist ~engine:`Layered ~compress ~domains:3 ~chunk:64
              auto sched ~depth))

(* ------------------------------------------- error-propagation audit *)

(* A scheduler raise must surface deterministically from every engine:
   when exactly one execution fails, the same exception — carrying the
   same failing entry — comes out of the sequential loop, the layered
   engine at every domain count × chunk size, and the subtree engine at
   every domain count; and the engines stay reusable afterwards. The
   failing execution is picked from the clean run's support (the
   [Exec.compare]-least completed execution, truncated to a length-2
   prefix), so it is guaranteed to be visited as a frontier node by every
   engine and partitioning. *)
exception Boom of int

let prefix_exec n e =
  let rec take k = function x :: tl when k > 0 -> x :: take (k - 1) tl | _ -> [] in
  List.fold_left
    (fun acc (a, q) -> Exec.extend acc a q)
    (Exec.init (Exec.fstate e))
    (take n (Exec.steps e))

let test_error_propagation () =
  let auto, sched, depth = build { seed = 42; kind = 0; sched = 0; depth = 5 } in
  let clean = Measure.exec_dist auto sched ~depth in
  let target =
    (* Dist items are sorted by Exec.compare, so hd is the least. *)
    prefix_exec 2 (fst (List.hd (Dist.items clean)))
  in
  let raising =
    Scheduler.make ~validated:true ~name:"raising" (fun e ->
        if Exec.compare e target = 0 then raise (Boom (Exec.hash e))
        else Scheduler.validate_choice auto sched e)
  in
  let failure_of run =
    match run () with
    | (_ : Exec.t Dist.t) -> None
    | exception Boom h -> Some h
  in
  let expected = failure_of (fun () -> Measure.exec_dist auto raising ~depth) in
  Alcotest.(check bool) "sequential run raises" true (expected <> None);
  List.iter
    (fun domains ->
      List.iter
        (fun chunk ->
          Alcotest.(check (option int))
            (Printf.sprintf "layered domains=%d chunk=%d raises the same entry"
               domains chunk)
            expected
            (failure_of (fun () ->
                 Par_measure.exec_dist ~engine:`Layered ~domains ~chunk auto raising
                   ~depth)))
        [ 1; 64 ];
      Alcotest.(check (option int))
        (Printf.sprintf "subtree domains=%d raises the same entry" domains)
        expected
        (failure_of (fun () ->
             Par_measure.exec_dist ~engine:`Subtree ~domains auto raising ~depth));
      (* Reusable after the raise: the same call sites produce the clean
         measure again with a non-raising scheduler. *)
      List.iter
        (fun engine ->
          Alcotest.(check bool)
            (Printf.sprintf "engine reusable after raise (domains=%d)" domains)
            true
            (Dist.equal clean
               (Par_measure.exec_dist ~engine ~domains auto sched ~depth)))
        [ `Layered; `Subtree ])
    [ 2; 4 ]

(* Budget pruning is the only frontier-order-sensitive step in the engine
   (everything else folds with exact, commutative rational arithmetic into
   order-normalizing Dist.make). Its comparator (probability descending,
   Exec.compare ascending) is a total order on any frontier — distinct
   cone branches are distinct executions — so permuting the frontier must
   leave both the kept entries and the dropped mass unchanged. *)
let prop_truncate_permutation_invariant =
  QCheck.Test.make ~count:50 ~name:"frontier permutation leaves pruning unchanged"
    case_arb (fun case ->
      let auto, sched, depth = build case in
      let entries = Dist.items (Measure.exec_dist auto sched ~depth) in
      let keep = 1 + (case.seed mod 5) in
      let kept, lost = Par_measure.For_tests.truncate_entries ~keep entries in
      let rng = Rng.make (case.seed + 1) in
      List.for_all
        (fun _ ->
          let kept', lost' =
            Par_measure.For_tests.truncate_entries ~keep (Rng.shuffle rng entries)
          in
          Rat.equal lost lost'
          && List.length kept = List.length kept'
          && List.for_all2
               (fun (e, p) (e', p') -> Exec.compare e e' = 0 && Rat.equal p p')
               kept kept')
        [ 1; 2; 3 ])

(* --------------------------------------------------- Obs conservation *)

(* Quantities the determinism contract promises are conserved across
   domain counts. The hit/miss *split* of the memo and choice caches is
   not conserved (each worker warms its own cache) — only the sums are;
   sched.validations and rat.promotions vary for the same reason. *)
let conserved snapshot =
  let c name =
    match List.assoc_opt name snapshot.Cdse_obs.Obs.s_counters with
    | Some v -> v
    | None -> 0
  in
  let sum2 a b = c a + c b in
  ( c "measure.layers",
    c "measure.finished",
    c "measure.truncated",
    (* Conserved at a fixed compression level; the hcons hit/miss split is
       NOT conserved (per-worker intern tables, like the memo caches) and
       not even its sum is (interning recurses over structure), so it is
       deliberately absent here. *)
    c "quotient.classes",
    c "quotient.merged",
    sum2 "measure.choice.hit" "measure.choice.miss",
    sum2 "psioa.memo.sig.hit" "psioa.memo.sig.miss",
    sum2 "psioa.memo.step.hit" "psioa.memo.step.miss",
    List.assoc_opt "measure.truncation_deficit" snapshot.s_gauges,
    List.assoc_opt "measure.frontier.width" snapshot.s_histograms )

let prop_obs_conserved =
  QCheck.Test.make ~count:40
    ~name:"Obs totals conserved between domains=1 and domains=4" case_arb
    (fun case ->
      let auto, sched, depth = build case in
      let run domains =
        snd
          (Cdse_obs.Obs.with_stats (fun () ->
               Measure.exec_dist ~memo:true ~compress:test_compress ~domains
                 ~max_width:(2 + (case.seed mod 6))
                 auto sched ~depth))
      in
      conserved (run 1) = conserved (run 4))

(* ------------------------------------------------- hash-consing audit *)

(* Random value trees, biased toward a small alphabet so structurally
   equal values are actually generated from distinct seeds and the
   interning paths (hit, miss, child-sharing) all fire. *)
let gen_value seed =
  let rng = Rng.make seed in
  let rec go fuel =
    match Rng.int rng (if fuel = 0 then 4 else 7) with
    | 0 -> Value.unit
    | 1 -> Value.bool (Rng.bool rng)
    | 2 -> Value.int (Rng.int rng 5)
    | 3 -> Value.str (String.make 1 (Char.chr (Char.code 'a' + Rng.int rng 3)))
    | 4 -> Value.pair (go (fuel - 1)) (go (fuel - 1))
    | 5 -> Value.list [ go (fuel - 1); go (fuel - 1) ]
    | _ -> Value.tag "t" (go (fuel - 1))
  in
  go 3

let seed_pair_arb = QCheck.(pair (int_bound 100_000) (int_bound 100_000))

(* make is idempotent and semantics-preserving: the canonical
   representative is structurally equal to the input, and re-interning a
   canonical value is physically the identity. *)
let prop_hcons_idempotent =
  QCheck.Test.make ~count:300 ~name:"hcons: make (make v) == make v, compare = 0"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let t = Hcons.create () in
      let v = gen_value seed in
      let c = Hcons.make t v in
      Hcons.make t c == c && Value.compare c v = 0)

(* Within one table, physical equality of representatives is exactly
   structural equality of the sources. *)
let prop_hcons_phys_eq =
  QCheck.Test.make ~count:300
    ~name:"hcons: make a == make b iff Value.compare a b = 0" seed_pair_arb
    (fun (s1, s2) ->
      let t = Hcons.create () in
      let a = gen_value s1 and b = gen_value s2 in
      Hcons.make t a == Hcons.make t b = (Value.compare a b = 0))

(* Exec.compare cannot distinguish an execution built from raw values from
   one built from their canonical representatives — interning never
   changes an ordering decision, in either mixed direction. *)
let prop_hcons_exec_compare =
  QCheck.Test.make ~count:300 ~name:"hcons: Exec.compare unchanged by interning"
    seed_pair_arb
    (fun (s1, s2) ->
      let t = Hcons.create () in
      let step = Action.make "step" in
      let exec_of seed =
        let rng = Rng.make seed in
        let e = ref (Exec.init (gen_value (Rng.int rng 100_000))) in
        for _ = 1 to 1 + Rng.int rng 3 do
          e := Exec.extend !e step (gen_value (Rng.int rng 100_000))
        done;
        !e
      in
      let intern e =
        List.fold_left
          (fun acc (a, q) -> Exec.extend acc a (Hcons.make t q))
          (Exec.init (Hcons.make t (Exec.fstate e)))
          (Exec.steps e)
      in
      let e1 = exec_of s1 and e2 = exec_of s2 in
      let c = Exec.compare e1 e2 in
      Exec.compare (intern e1) (intern e2) = c
      && Exec.compare (intern e1) e2 = c
      && Exec.compare e1 (intern e2) = c)

(* ------------------------------------------------------- corpus replay *)

(* Seeds that once exposed bugs or cover structural corners (faulty PCAs,
   truncating runs, deep uniform branching). Replayed verbatim before the
   randomized properties; add a line whenever qcheck shrinks a failure. *)
let corpus () =
  (* dune runtest runs with cwd = the test stanza's build dir (where the
     (deps) corpus lives); dune exec from the root does not — also look
     next to the executable. *)
  let candidates =
    [
      Filename.concat "corpus" "seeds.txt";
      Filename.concat (Filename.dirname Sys.executable_name) "corpus/seeds.txt";
      "test/corpus/seeds.txt";
    ]
  in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> List.hd candidates
  in
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> (
        match String.trim line with
        | "" -> go acc
        | l when l.[0] = '#' -> go acc
        | l ->
            (match List.map int_of_string (String.split_on_char ' ' l) with
            | [ seed; kind; sched; depth ] -> go ({ seed; kind; sched; depth } :: acc)
            | _ -> failwith ("bad corpus line: " ^ l)))
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_corpus () =
  List.iter
    (fun case ->
      Alcotest.(check bool)
        (Printf.sprintf "corpus case %s conforms" (print_case case))
        true (conforms case))
    (corpus ())

(* The corpus again with the span tracer live: tracing a quotient-
   compressed multicore run must not perturb the measure (bit-identical
   entries), and the trace itself must be well-formed — balanced spans
   with non-negative durations, layer spans present. Catches any
   instrumentation that accidentally reorders or re-times engine work. *)
let test_corpus_traced () =
  let module Trace = Cdse_obs.Trace in
  List.iter
    (fun case ->
      let auto, sched, depth = build case in
      let plain = Measure.exec_dist ~compress:`Quotient auto sched ~depth in
      Trace.start ();
      let traced =
        Measure.exec_dist ~compress:`Quotient ~domains:2 auto sched ~depth
      in
      Trace.stop ();
      let evs = Trace.events () in
      Trace.clear ();
      Alcotest.(check bool)
        (Printf.sprintf "traced quotient run bit-identical for %s"
           (print_case case))
        true
        (let i1 = Dist.items plain and i2 = Dist.items traced in
         List.length i1 = List.length i2
         && List.for_all2
              (fun (e, p) (e', p') -> Exec.compare e e' = 0 && Rat.equal p p')
              i1 i2);
      Alcotest.(check bool)
        (Printf.sprintf "trace well-formed for %s" (print_case case))
        true
        (evs <> []
        && List.for_all (fun e -> e.Trace.ev_dur >= 0.) evs
        && (* An active quotient keeps the layered engine (layer spans); a
              history-dependent scheduler degrades [`Quotient] to [`Hcons]
              and the run takes the barrier-free engine (subtree spans, or
              none when the cone bottoms out inside the seed phase). *)
        List.exists
          (fun e ->
            e.Trace.ev_name = "measure.layer"
            || e.Trace.ev_name = "measure.subtree"
            || e.Trace.ev_name = "measure.seed")
          evs))
    (corpus ())

(* ---------------------------------------------------------------- serve *)

(* Replay the committed corpus through the cdse_serve daemon: every case
   becomes a wire-level measure request carrying the same model/scheduler
   *specification* that [build] elaborates locally (seed, kind, fault
   budget, bound), and the decoded reply must be bit-identical — items,
   rationals, tag, deficit — to the naive oracle. This closes the loop
   between the conformance contract and the serving path: spec
   elaboration, canonical cache keys, frontier reuse and the exact wire
   codec all sit between the two sides being compared. *)

module Sjson = Cdse_serve.Json

let case_request case =
  let num i = Sjson.Num (float_of_int i) in
  let model =
    match case.kind mod 4 with
    | 0 ->
        Sjson.Obj
          [
            ("kind", Sjson.Str "random_auto");
            ("seed", num case.seed);
            ("states", num 6);
            ("actions", num 3);
          ]
    | 1 ->
        Sjson.Obj
          [
            ("kind", Sjson.Str "random_pca");
            ("seed", num case.seed);
            ("members", num 3);
          ]
    | 2 ->
        Sjson.Obj
          [
            ("kind", Sjson.Str "random_pca");
            ("seed", num case.seed);
            ("members", num 3);
            ("faults", Sjson.Bool true);
          ]
    | _ -> Sjson.Obj [ ("kind", Sjson.Str "faulty_channel"); ("seed", num case.seed) ]
  in
  let sched =
    Sjson.Obj
      (("kind",
        Sjson.Str
          (match case.sched mod 3 with
          | 0 -> "uniform"
          | 1 -> "first_enabled"
          | _ -> "round_robin"))
      :: (if case.kind mod 4 = 3 then
            [ ("fault_budget", num ((case.seed / 2) mod 3)) ]
          else [])
      @ [ ("bound", num case.depth) ])
  in
  [
    ("op", Sjson.Str "measure");
    ("model", model);
    ("sched", sched);
    ("depth", num case.depth);
    ("domains", num (List.hd test_domains));
  ]

let test_serve_corpus () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cdse-conf-%d.sock" (Unix.getpid ()))
  in
  let server = Cdse_serve.Server.start ~workers:2 ~socket () in
  Fun.protect
    ~finally:(fun () -> Cdse_serve.Server.stop server)
    (fun () ->
      let client = Serve_client.connect socket in
      Fun.protect
        ~finally:(fun () -> Serve_client.close client)
        (fun () ->
          List.iter
            (fun case ->
              let reply = Serve_client.request client (case_request case) in
              if not reply.Serve_client.r_ok then
                Alcotest.failf "serve error for %s: %s" (print_case case)
                  (Sjson.to_string reply.Serve_client.r_body);
              let body = reply.Serve_client.r_body in
              Alcotest.(check string)
                (Printf.sprintf "exact tag for %s" (print_case case))
                "exact"
                (Serve_client.str (Serve_client.field "tag" body));
              let served =
                Cdse_serve.Codec.dist_of_json (Serve_client.field "dist" body)
              in
              let auto, sched, depth = build case in
              let reference = Oracle.exec_dist auto sched ~depth in
              let identical =
                let i1 = Dist.items served and i2 = Dist.items reference in
                List.length i1 = List.length i2
                && List.for_all2
                     (fun (e, p) (e', p') ->
                       Exec.compare e e' = 0 && Rat.equal p p')
                     i1 i2
                && Rat.equal (Dist.deficit served) (Dist.deficit reference)
              in
              Alcotest.(check bool)
                (Printf.sprintf "daemon bit-identical to oracle for %s"
                   (print_case case))
                true identical)
            (corpus ())))

let () =
  Alcotest.run "conformance"
    [
      ( "corpus",
        [
          Alcotest.test_case "replay committed seed corpus" `Quick test_corpus;
          Alcotest.test_case "replay corpus traced (quotient, domains=2)" `Quick
            test_corpus_traced;
        ] );
      ( "differential",
        [
          qtest prop_conformance;
          qtest prop_budgeted_conformance;
          qtest prop_budgeted_quotient;
          qtest prop_chunk_independent;
        ] );
      ( "errors",
        [
          Alcotest.test_case "raise surfaces deterministically from every engine"
            `Quick test_error_propagation;
        ] );
      ( "determinism",
        [ qtest prop_truncate_permutation_invariant; qtest prop_obs_conserved ] );
      ( "hcons",
        [
          qtest prop_hcons_idempotent;
          qtest prop_hcons_phys_eq;
          qtest prop_hcons_exec_compare;
        ] );
      ( "serve",
        [
          Alcotest.test_case "replay corpus through the daemon" `Quick
            test_serve_corpus;
        ] );
    ]
