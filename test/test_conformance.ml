(* Differential conformance suite for the exact-measure engines.

   Three independent implementations compute the Section 3 depth-bounded
   execution measure: the naive list-based oracle (test/support/oracle.ml,
   shares no code with production), the sequential engine
   (Measure.exec_dist, domains = 1) and the multicore engine
   (Par_measure, domains ≥ 2). The suite generates random PSIOAs and PCAs
   (including fault-wrapped churning ones) and asserts all of them agree
   — distributions Dist.equal, budget tags and deficits identical, Obs
   totals conserved — for every domain count and chunk size.

   A committed corpus of previously interesting seeds (test/corpus/) is
   replayed first, then the randomized properties run with shrinking. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_testkit

let qtest = QCheck_alcotest.to_alcotest

(* Domain counts exercised against the sequential engine: always 2 and 4,
   plus CDSE_TEST_DOMAINS when the environment (CI) asks for another. *)
let test_domains =
  let base = [ 2; 4 ] in
  match Option.bind (Sys.getenv_opt "CDSE_TEST_DOMAINS") int_of_string_opt with
  | Some n when n > 1 && not (List.mem n base) -> base @ [ n ]
  | _ -> base

(* ------------------------------------------------------------ scenarios *)

(* A conformance case is four small integers; everything else is derived
   deterministically, so qcheck's integer shrinking shrinks the case. *)
type case = { seed : int; kind : int; sched : int; depth : int }

let build { seed; kind; sched; depth } =
  let rng = Rng.make seed in
  let auto =
    match kind mod 3 with
    | 0 -> Cdse_gen.Random_auto.make ~rng ~name:"ca" ~n_states:6 ~n_actions:3 ()
    | 1 -> Cdse_config.Pca.psioa (Cdse_gen.Random_pca.make ~rng ~n_members:3 ())
    | _ ->
        Cdse_config.Pca.psioa
          (Cdse_gen.Random_pca.make ~rng ~n_members:3 ~faults:true ())
  in
  let sched =
    match sched mod 3 with
    | 0 -> Scheduler.uniform auto
    | 1 -> Scheduler.first_enabled auto
    | _ -> Scheduler.round_robin auto
  in
  (auto, Scheduler.bounded depth sched, depth)

let case_arb =
  let open QCheck in
  map
    ~rev:(fun { seed; kind; sched; depth } -> (seed, kind, sched, depth))
    (fun (seed, kind, sched, depth) -> { seed; kind; sched; depth })
    (quad (int_bound 100_000) (int_bound 2) (int_bound 2) (int_range 2 4))

let print_case { seed; kind; sched; depth } =
  Printf.sprintf "{seed=%d; kind=%d; sched=%d; depth=%d}" seed kind sched depth

let case_arb = QCheck.set_print print_case case_arb

(* ------------------------------------------------------------ equality *)

let budgeted_equal eq a b =
  match (a, b) with
  | `Exact d1, `Exact d2 -> eq d1 d2
  | `Truncated (d1, l1), `Truncated (d2, l2) -> eq d1 d2 && Rat.equal l1 l2
  | _ -> false

(* The full conformance check for one case: oracle vs sequential (plain
   and memoized) vs every multicore configuration. *)
let conforms case =
  let auto, sched, depth = build case in
  let reference = Oracle.exec_dist auto sched ~depth in
  let seq = Measure.exec_dist auto sched ~depth in
  Dist.equal reference seq
  && Dist.equal seq (Measure.exec_dist ~memo:true auto sched ~depth)
  && List.for_all
       (fun domains ->
         Dist.equal seq (Measure.exec_dist ~domains auto sched ~depth)
         && Dist.equal seq (Measure.exec_dist ~memo:true ~domains auto sched ~depth))
       test_domains

let prop_conformance =
  QCheck.Test.make ~count:200
    ~name:"oracle = sequential = memoized = multicore (exec_dist)" case_arb
    conforms

(* Budgets: the oracle has none, so the sequential engine is the reference;
   tag ([`Exact] / [`Truncated]) and exact deficit must survive sharding. *)
let prop_budgeted_conformance =
  QCheck.Test.make ~count:100
    ~name:"budget tag and deficit identical across domain counts" case_arb
    (fun case ->
      let auto, sched, depth = build case in
      let width = 1 + (case.seed mod 7) in
      let cap = 2 + (case.seed mod 11) in
      let run ?domains () =
        Measure.exec_dist_budgeted ~max_width:width ~max_execs:cap ?domains auto
          sched ~depth
      in
      let seq = run () in
      List.for_all
        (fun domains -> budgeted_equal Dist.equal seq (run ~domains ()))
        test_domains)

(* Chunked self-scheduling: any chunk size partitions every frontier the
   same way the merge reassembles it, so the result cannot depend on it.
   chunk = 1 maximally interleaves workers (each entry a separate claim);
   chunk = 64 usually hands whole layers to one worker. *)
let prop_chunk_independent =
  QCheck.Test.make ~count:50 ~name:"chunk size never changes the result" case_arb
    (fun case ->
      let auto, sched, depth = build case in
      let seq = Measure.exec_dist auto sched ~depth in
      Dist.equal seq (Par_measure.exec_dist ~domains:3 ~chunk:1 auto sched ~depth)
      && Dist.equal seq
           (Par_measure.exec_dist ~domains:3 ~chunk:64 auto sched ~depth))

(* ------------------------------------------------- frontier-order audit *)

(* Budget pruning is the only frontier-order-sensitive step in the engine
   (everything else folds with exact, commutative rational arithmetic into
   order-normalizing Dist.make). Its comparator (probability descending,
   Exec.compare ascending) is a total order on any frontier — distinct
   cone branches are distinct executions — so permuting the frontier must
   leave both the kept entries and the dropped mass unchanged. *)
let prop_truncate_permutation_invariant =
  QCheck.Test.make ~count:50 ~name:"frontier permutation leaves pruning unchanged"
    case_arb (fun case ->
      let auto, sched, depth = build case in
      let entries = Dist.items (Measure.exec_dist auto sched ~depth) in
      let keep = 1 + (case.seed mod 5) in
      let kept, lost = Par_measure.For_tests.truncate_entries ~keep entries in
      let rng = Rng.make (case.seed + 1) in
      List.for_all
        (fun _ ->
          let kept', lost' =
            Par_measure.For_tests.truncate_entries ~keep (Rng.shuffle rng entries)
          in
          Rat.equal lost lost'
          && List.length kept = List.length kept'
          && List.for_all2
               (fun (e, p) (e', p') -> Exec.compare e e' = 0 && Rat.equal p p')
               kept kept')
        [ 1; 2; 3 ])

(* --------------------------------------------------- Obs conservation *)

(* Quantities the determinism contract promises are conserved across
   domain counts. The hit/miss *split* of the memo and choice caches is
   not conserved (each worker warms its own cache) — only the sums are;
   sched.validations and rat.promotions vary for the same reason. *)
let conserved snapshot =
  let c name =
    match List.assoc_opt name snapshot.Cdse_obs.Obs.s_counters with
    | Some v -> v
    | None -> 0
  in
  let sum2 a b = c a + c b in
  ( c "measure.layers",
    c "measure.finished",
    c "measure.truncated",
    sum2 "measure.choice.hit" "measure.choice.miss",
    sum2 "psioa.memo.sig.hit" "psioa.memo.sig.miss",
    sum2 "psioa.memo.step.hit" "psioa.memo.step.miss",
    List.assoc_opt "measure.truncation_deficit" snapshot.s_gauges,
    List.assoc_opt "measure.frontier.width" snapshot.s_histograms )

let prop_obs_conserved =
  QCheck.Test.make ~count:40
    ~name:"Obs totals conserved between domains=1 and domains=4" case_arb
    (fun case ->
      let auto, sched, depth = build case in
      let run domains =
        snd
          (Cdse_obs.Obs.with_stats (fun () ->
               Measure.exec_dist ~memo:true ~domains ~max_width:(2 + (case.seed mod 6))
                 auto sched ~depth))
      in
      conserved (run 1) = conserved (run 4))

(* ------------------------------------------------------- corpus replay *)

(* Seeds that once exposed bugs or cover structural corners (faulty PCAs,
   truncating runs, deep uniform branching). Replayed verbatim before the
   randomized properties; add a line whenever qcheck shrinks a failure. *)
let corpus () =
  (* dune runtest runs with cwd = the test stanza's build dir (where the
     (deps) corpus lives); dune exec from the root does not — also look
     next to the executable. *)
  let candidates =
    [
      Filename.concat "corpus" "seeds.txt";
      Filename.concat (Filename.dirname Sys.executable_name) "corpus/seeds.txt";
      "test/corpus/seeds.txt";
    ]
  in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> List.hd candidates
  in
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> (
        match String.trim line with
        | "" -> go acc
        | l when l.[0] = '#' -> go acc
        | l ->
            (match List.map int_of_string (String.split_on_char ' ' l) with
            | [ seed; kind; sched; depth ] -> go ({ seed; kind; sched; depth } :: acc)
            | _ -> failwith ("bad corpus line: " ^ l)))
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_corpus () =
  List.iter
    (fun case ->
      Alcotest.(check bool)
        (Printf.sprintf "corpus case %s conforms" (print_case case))
        true (conforms case))
    (corpus ())

let () =
  Alcotest.run "conformance"
    [
      ( "corpus",
        [ Alcotest.test_case "replay committed seed corpus" `Quick test_corpus ] );
      ( "differential",
        [
          qtest prop_conformance;
          qtest prop_budgeted_conformance;
          qtest prop_chunk_independent;
        ] );
      ( "determinism",
        [ qtest prop_truncate_permutation_invariant; qtest prop_obs_conserved ] );
    ]
