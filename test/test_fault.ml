(* Tests for the fault-injection layer (lib/fault): crash wrappers,
   adversarial channel interposers, the fault injector, and scheduler-level
   fault budgets — plus QCheck properties tying them back to Definition 2.1
   (state-dependent signatures) and trace equivalence at zero faults. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_fault
open Cdse_testkit

let act = Fixtures.act

let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal
let qtest = QCheck_alcotest.to_alcotest
let ok_or_fail = function Ok () -> () | Error msg -> Alcotest.fail msg
let step1 a q x = List.hd (Dist.support (Psioa.step a q x))

(* ------------------------------------------------------------- crashes *)

let test_crash_stop_validates () =
  ok_or_fail (Psioa.validate (Fault.crash_stop (Fixtures.counter ~bound:2 "k")))

let test_crash_stop_dead_absorbs () =
  let c = Fixtures.counter ~bound:2 "k" in
  let w = Fault.crash_stop c in
  let crash = Fault.crash_action (Psioa.name c) in
  Alcotest.(check bool) "crash is an input" true
    (Action_set.mem crash (Sigs.input (Psioa.signature w (Psioa.start w))));
  Alcotest.(check bool) "local pool preserved" true
    (Action_set.equal
       (Sigs.local (Psioa.signature w (Psioa.start w)))
       (Sigs.local (Psioa.signature c (Psioa.start c))));
  let dead = step1 w (Psioa.start w) crash in
  Alcotest.(check bool) "dead: signature shrinks to inputs" true
    (Action_set.is_empty (Sigs.local (Psioa.signature w dead)));
  Alcotest.(check bool) "dead absorbs a repeated crash" true
    (Value.equal dead (step1 w dead crash))

let test_crash_zero_faults_trace_equiv () =
  (* With no crash injected the wrapper is trace-equivalent to the
     original: the crash input is free and never scheduled. *)
  let c = Fixtures.counter ~bound:3 "k" in
  let w = Fault.crash_stop c in
  let dc = Measure.trace_dist c (Scheduler.bounded 5 (Scheduler.uniform c)) ~depth:6 in
  let dw = Measure.trace_dist w (Scheduler.bounded 5 (Scheduler.uniform w)) ~depth:6 in
  Alcotest.check rat "statistical distance 0" Rat.zero (Stat.tv_distance dc dw)

let test_crash_recover_reboots () =
  let c = Fixtures.counter ~bound:1 "k" in
  let w = Fault.crash_recover c in
  let crash = Fault.crash_action "k" and recover = Fault.recover_action "k" in
  ok_or_fail (Psioa.validate w);
  let q = step1 w (Psioa.start w) crash in
  Alcotest.(check bool) "dead accepts recover" true (Psioa.is_enabled w q recover);
  let q = step1 w q recover in
  Alcotest.(check bool) "rebooted to start" true (Value.equal q (Psioa.start w));
  Alcotest.(check bool) "inc enabled again" true (Psioa.is_enabled w q (act "k.inc"))

(* ------------------------------------------------------------ channels *)

let test_lossy_channel_fifo_and_drop () =
  let a = act "m.a" and b = act "m.b" in
  let ch = Fault.lossy_channel ~cap:4 ~name:"net" ~acts:[ a; b ] () in
  ok_or_fail (Psioa.validate ~max_states:400 ch);
  let wa = Fault.wire ~channel:"net" a and wb = Fault.wire ~channel:"net" b in
  let q = step1 ch (step1 ch (Psioa.start ch) wa) wb in
  Alcotest.(check bool) "FIFO: head is a" true (Psioa.is_enabled ch q a);
  Alcotest.(check bool) "b not deliverable yet" false (Psioa.is_enabled ch q b);
  let q = step1 ch q (act "net.drop") in
  Alcotest.(check bool) "after drop, head is b" true (Psioa.is_enabled ch q b);
  let q = step1 ch q b in
  Alcotest.(check bool) "drained: no local actions" true
    (Action_set.is_empty (Sigs.local (Psioa.signature ch q)))

let test_dup_channel_duplicates () =
  let a = act "m.a" in
  let ch = Fault.dup_channel ~cap:3 ~name:"net" ~acts:[ a ] () in
  let q = step1 ch (Psioa.start ch) (Fault.wire ~channel:"net" a) in
  let q = step1 ch q (act "net.dup") in
  let q = step1 ch q a in
  Alcotest.(check bool) "second copy deliverable" true (Psioa.is_enabled ch q a);
  let q = step1 ch q a in
  Alcotest.(check bool) "buffer drained after two copies" false (Psioa.is_enabled ch q a)

let test_delay_channel_reorders () =
  let a = act "m.a" and b = act "m.b" in
  let ch = Fault.delay_channel ~cap:4 ~name:"net" ~acts:[ a; b ] () in
  let wa = Fault.wire ~channel:"net" a and wb = Fault.wire ~channel:"net" b in
  let q = step1 ch (step1 ch (Psioa.start ch) wa) wb in
  let q = step1 ch q (act "net.skip") in
  Alcotest.(check bool) "b overtook a" true (Psioa.is_enabled ch q b);
  let q = step1 ch q b in
  Alcotest.(check bool) "a still queued" true (Psioa.is_enabled ch q a)

let test_via_lossy_delivery_under_budget () =
  (* counter → lossy channel → acceptor. With a zero fault budget the
     lossy channel is a perfect FIFO (delivery w.p. 1, exactly); allowing
     one drop makes delivery a fair race between deliver and drop. *)
  let msg = act "k.inc" in
  let sender = Fixtures.counter ~bound:1 "k" in
  let receiver = Fixtures.acceptor ~watch:[ ("k.inc", None) ] "env" in
  let chan = Fault.lossy_channel ~cap:2 ~name:"net" ~acts:[ msg ] () in
  let sys = Fault.via ~channel:chan ~acts:[ msg ] sender receiver in
  let traces k =
    Measure.trace_dist sys
      (Fault.budget_sched k (Scheduler.bounded 8 (Scheduler.uniform sys)))
      ~depth:8
  in
  let delivered = [ msg; act "acc" ] in
  Alcotest.check rat "budget 0: delivered surely" Rat.one (Dist.prob (traces 0) delivered);
  Alcotest.check rat "budget 1: delivered w.p. 1/2" Rat.half (Dist.prob (traces 1) delivered)

(* ------------------------------------------------------------ injector *)

let test_injector_spends_faults () =
  let f0 = act "x.crash0" and f1 = act "x.crash1" in
  let inj = Fault.injector ~faults:[ f0; f1 ] () in
  ok_or_fail (Psioa.validate inj);
  let q = Psioa.start inj in
  Alcotest.(check bool) "both faults offered" true
    (Psioa.is_enabled inj q f0 && Psioa.is_enabled inj q f1);
  let q = step1 inj q f0 in
  Alcotest.(check bool) "f0 spent" false (Psioa.is_enabled inj q f0);
  Alcotest.(check bool) "f1 remains" true (Psioa.is_enabled inj q f1);
  let q = step1 inj q f1 in
  Alcotest.(check bool) "signature empties once spent" true
    (Action_set.is_empty (Sigs.all (Psioa.signature inj q)))

(* ------------------------------------------------------------- budgets *)

let test_default_is_fault () =
  List.iter
    (fun (name, expect) ->
      Alcotest.(check bool) name expect (Fault.default_is_fault (act name)))
    [ ("n.crash", true); ("n.crash3", true); ("n.recover", true); ("net.drop", true);
      ("net.dup", true); ("net.skip", true); ("n.vote1", false); ("dropout", false);
      ("skipper.go", false) ]

let test_is_fault_structural () =
  (* Regressions against the old substring heuristic: ordinary actions
     whose names merely contain a fault stem must not be budgeted. *)
  List.iter
    (fun (name, expect) ->
      Alcotest.(check bool) name expect (Fault.default_is_fault (act name)))
    [ ("report.crash_count", false); ("x.recovery", false); ("a.crash.b", false);
      ("backdrop", false); ("sys.drop2", false); ("n.recover7", true);
      ("deep.ns.crash12", true) ];
  (* The old behaviour stays reachable for callers that depend on it. *)
  Alcotest.(check bool) "substring heuristic still flags crash_count" true
    (Fault.substring_is_fault (act "report.crash_count"));
  Alcotest.(check bool) "substring heuristic usable as ~is_fault"
    true
    (let e =
       Exec.extend (Exec.init (Value.int 0)) (act "report.crash_count") (Value.int 1)
     in
     Fault.count_faults ~is_fault:Fault.substring_is_fault e = 1
     && Fault.count_faults e = 0);
  (* Kinds classify as named. *)
  List.iter
    (fun (name, kind) ->
      Alcotest.(check (option string)) name kind
        (Option.map Fault.kind_name (Fault.fault_kind (act name))))
    [ ("n.crash0", Some "crash"); ("n.recover", Some "recover"); ("net.drop", Some "drop");
      ("net.dup", Some "dup"); ("net.skip", Some "skip"); ("net.dup3", None);
      ("crash", None) ]

let test_budget_all_faults_halts () =
  (* When every enabled action past the budget is a fault, the budgeted
     scheduler halts deliberately: the post-budget choice is empty
     (deficit 1), and the measure engine books the remaining mass as
     halting mass — the execution measure stays proper, with all mass on
     executions carrying at most k faults. *)
  let inj = Fault.injector ~faults:[ act "v.crash0" ] ~each:3 () in
  let sched = Fault.budget_sched 1 (Scheduler.bounded 6 (Scheduler.uniform inj)) in
  let e0 = Exec.init (Psioa.start inj) in
  let q1 = step1 inj (Psioa.start inj) (act "v.crash0") in
  let e1 = Exec.extend e0 (act "v.crash0") q1 in
  let d1 = sched.Scheduler.choose e1 in
  Alcotest.(check int) "post-budget all-faults choice is empty" 0 (Dist.size d1);
  Alcotest.check rat "empty choice has deficit 1" Rat.one (Dist.deficit d1);
  let m = Measure.exec_dist inj sched ~depth:6 in
  Alcotest.check rat "measure stays proper" Rat.one (Dist.mass m);
  Alcotest.(check bool) "every execution spends at most the budget" true
    (List.for_all (fun (e, _) -> Fault.count_faults e <= 1) (Dist.items m))

let test_budget_sched_filters_after_k () =
  let inj = Fault.injector ~faults:[ act "v.crash0" ] ~each:2 () in
  let sys = Compose.pair inj (Fixtures.counter ~bound:3 "k") in
  let base = Scheduler.uniform sys in
  let sched = Fault.budget_sched 1 base in
  let e0 = Exec.init (Psioa.start sys) in
  Alcotest.(check bool) "fault schedulable within budget" true
    (Rat.sign (Dist.prob (sched.Scheduler.choose e0) (act "v.crash0")) > 0);
  let q1 = step1 sys (Psioa.start sys) (act "v.crash0") in
  let e1 = Exec.extend e0 (act "v.crash0") q1 in
  Alcotest.(check int) "one fault in history" 1 (Fault.count_faults e1);
  let d1 = sched.Scheduler.choose e1 in
  Alcotest.check rat "no fault mass after the budget" Rat.zero
    (Dist.prob d1 (act "v.crash0"));
  Alcotest.check rat "choice mass preserved (liveness)" (Dist.mass (base.Scheduler.choose e1))
    (Dist.mass d1)

(* ---------------------------------------------------------- compromise *)

(* Two tiny automata over the same state space (Int n, n < 2): the honest
   one steps with [m.step], the adversarial one with [m.evil] — so a
   takeover is observable in the trace while Definition 2.1 signatures
   stay well-formed in both worlds. *)
let honest_pair () =
  let step n = act ~payload:(Value.int n) "m.step" in
  let evil n = act ~payload:(Value.int n) "m.evil" in
  let mk name out =
    Psioa.make ~name ~start:(Value.int 0)
      ~signature:(fun q ->
        match q with
        | Value.Int n when n < 2 ->
            Sigs.make ~input:Action_set.empty
              ~output:(Action_set.of_list [ out n ])
              ~internal:Action_set.empty
        | _ -> Sigs.empty)
      ~transition:(fun q a ->
        match q with
        | Value.Int n when n < 2 && Action.equal a (out n) -> Some (Vdist.dirac (Value.int (n + 1)))
        | _ -> None)
  in
  (mk "m" step, mk "m.adv" evil)

let test_compromise_classification () =
  (* Structural, on the final dotted component — same regression style as
     the crash/recover stems: a merely-containing name must not count. *)
  List.iter
    (fun (name, kind) ->
      Alcotest.(check (option string)) name kind
        (Option.map Fault.kind_name (Fault.fault_kind (act name))))
    [ ("x.compromise", Some "compromise"); ("x.compromise3", Some "compromise");
      ("x.restore", Some "restore"); ("a.b.restore", Some "restore");
      ("sys.compromised", None); ("x.restore_key", None); ("cfg.restore_keys", None);
      ("compromise", None); ("restore", None) ];
  Alcotest.(check bool) "compromise counts against the default fault budget" true
    (Fault.default_is_fault (act "x.compromise"));
  Alcotest.(check bool) "is_compromise accepts indexed compromises" true
    (Fault.is_compromise (act "x.compromise7"));
  Alcotest.(check bool) "restores are not compromise-budgeted" false
    (Fault.is_compromise (act "x.restore"))

let test_compromise_takeover_and_restore () =
  let a, b = honest_pair () in
  let w = Fault.compromise ~adversarial:b a in
  ok_or_fail (Psioa.validate w);
  let comp = Fault.compromise_action "m" and rest = Fault.restore_action "m" in
  let q0 = Psioa.start w in
  Alcotest.(check bool) "live offers the compromise input" true
    (Psioa.is_enabled w q0 comp);
  Alcotest.(check bool) "live local pool is the honest one" true
    (Psioa.is_enabled w q0 (act ~payload:(Value.int 0) "m.step"));
  let qe = step1 w q0 comp in
  Alcotest.(check bool) "takeover state is flagged" true
    (Option.is_some (Fault.is_compromised qe));
  Alcotest.(check bool) "evil world runs the adversarial transitions" true
    (Psioa.is_enabled w qe (act ~payload:(Value.int 0) "m.evil"));
  Alcotest.(check bool) "honest step gone after takeover" false
    (Psioa.is_enabled w qe (act ~payload:(Value.int 0) "m.step"));
  let qe = step1 w qe (act ~payload:(Value.int 0) "m.evil") in
  let ql = step1 w qe rest in
  Alcotest.(check bool) "restore hands the current state back" true
    (Option.is_none (Fault.is_compromised ql)
    && Psioa.is_enabled w ql (act ~payload:(Value.int 1) "m.step"));
  (* Empty-signature states stay empty in both worlds, so configuration
     reduction and PCA destruction are unaffected by the wrapper. *)
  let qdone = step1 w ql (act ~payload:(Value.int 1) "m.step") in
  Alcotest.(check bool) "terminal state gains no compromise input" true
    (Sigs.is_empty (Psioa.signature w qdone))

let test_compromise_zero_budget_trace_equiv () =
  (* Never scheduled, the compromise input is free: the wrapper is
     trace-equivalent to the honest member. *)
  let a, b = honest_pair () in
  let w = Fault.compromise ~adversarial:b a in
  let da = Measure.trace_dist a (Scheduler.bounded 4 (Scheduler.uniform a)) ~depth:5 in
  let dw = Measure.trace_dist w (Scheduler.bounded 4 (Scheduler.uniform w)) ~depth:5 in
  Alcotest.check rat "statistical distance 0" Rat.zero (Stat.tv_distance da dw)

let test_budget_first_enabled () =
  let a, b = honest_pair () in
  let w = Fault.compromise ~adversarial:b a in
  let comp = Fault.compromise_action "m" in
  let inj = Fault.injector ~faults:[ comp ] ~each:2 () in
  let sys = Compose.pair inj w in
  let pick k e =
    let d = (Fault.budget_first_enabled ~is_fault:Fault.is_compromise k sys).Scheduler.choose e in
    Dist.support d
  in
  let e0 = Exec.init (Psioa.start sys) in
  (* min-enabled is the compromise ("m.compromise" < "m.step"); a spent
     budget folds the constraint into the pick instead of halting on a
     post-filtered dirac. *)
  Alcotest.(check bool) "k=1 schedules the takeover first" true
    (pick 1 e0 = [ comp ]);
  Alcotest.(check bool) "k=0 picks the best honest action instead" true
    (pick 0 e0 = [ act ~payload:(Value.int 0) "m.step" ]);
  let q1 = step1 sys (Psioa.start sys) comp in
  let e1 = Exec.extend e0 comp q1 in
  Alcotest.(check bool) "budget spent: second takeover excluded" true
    (pick 1 e1 = [ act ~payload:(Value.int 0) "m.evil" ]);
  let avoided =
    (Fault.budget_first_enabled ~is_fault:Fault.is_compromise
       ~avoid:(fun x -> String.equal (Action.name x) "m.step")
       0 sys)
      .Scheduler.choose e0
  in
  Alcotest.(check int) "avoid + spent budget leaves a deliberate halt" 0
    (Dist.size avoided);
  (* The packaged schema instantiates to exactly that scheduler. *)
  Alcotest.(check int) "compromise_budget yields one scheduler" 1
    (List.length (Schema.instantiate (Fault.compromise_budget 1) sys))

(* ----------------------------------------------------------- properties *)

let auto_arb =
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 100_000 in
      let* n_states = int_range 2 6 in
      let* n_actions = int_range 1 3 in
      return
        (seed, Cdse_gen.Random_auto.make ~rng:(Rng.make seed) ~name:"fa" ~n_states ~n_actions ()))
  in
  QCheck.make ~print:(fun (seed, _) -> Printf.sprintf "seed %d" seed) gen

let prop_crash_stop_valid =
  QCheck.Test.make ~count:30 ~name:"crash_stop of a valid PSIOA is a valid PSIOA (Def 2.1)"
    auto_arb (fun (_, a) ->
      Result.is_ok (Psioa.validate ~max_states:400 (Fault.crash_stop a)))

let prop_crash_stop_signature_compatible =
  (* Live states keep exactly the original locally-controlled actions (so
     every composition partner of the original stays compatible with the
     wrapper) and only gain inputs; dead states have no locally-controlled
     actions at all. *)
  QCheck.Test.make ~count:30 ~name:"crash_stop preserves signature compatibility" auto_arb
    (fun (_, a) ->
      let w = Fault.crash_stop a in
      List.for_all
        (fun q ->
          match q with
          | Value.Tag ("fault-live", q0) ->
              let sw = Psioa.signature w q and sa = Psioa.signature a q0 in
              Action_set.equal (Sigs.local sw) (Sigs.local sa)
              && Action_set.subset (Sigs.input sa) (Sigs.input sw)
          | _ -> Action_set.is_empty (Sigs.local (Psioa.signature w q)))
        (Psioa.reachable ~max_states:400 w))

let prop_zero_fault_trace_equiv =
  QCheck.Test.make ~count:25 ~name:"zero faults: wrapper trace-equivalent to original" auto_arb
    (fun (_, a) ->
      let w = Fault.crash_stop a in
      let d1 = Measure.trace_dist a (Scheduler.bounded 4 (Scheduler.uniform a)) ~depth:5 in
      let d2 = Measure.trace_dist w (Scheduler.bounded 4 (Scheduler.uniform w)) ~depth:5 in
      Rat.is_zero (Stat.tv_distance d1 d2))

let prop_lossy_channel_input_enabled =
  QCheck.Test.make ~count:20 ~name:"lossy_channel is valid and never blocks its sender"
    QCheck.(int_range 1 3)
    (fun k ->
      let acts = List.init k (fun i -> act (Printf.sprintf "m%d" i)) in
      let ch = Fault.lossy_channel ~cap:2 ~name:"net" ~acts () in
      Result.is_ok (Psioa.validate ~max_states:400 ch)
      && List.for_all
           (fun q ->
             List.for_all
               (fun a -> Psioa.is_enabled ch q (Fault.wire ~channel:"net" a))
               acts)
           (Psioa.reachable ~max_states:400 ch))

let () =
  Alcotest.run "cdse_fault"
    [ ( "crash",
        [ Alcotest.test_case "crash_stop validates" `Quick test_crash_stop_validates;
          Alcotest.test_case "dead state absorbs inputs" `Quick test_crash_stop_dead_absorbs;
          Alcotest.test_case "zero faults ≡ original" `Quick test_crash_zero_faults_trace_equiv;
          Alcotest.test_case "crash_recover reboots" `Quick test_crash_recover_reboots ] );
      ( "channels",
        [ Alcotest.test_case "lossy: FIFO + drop" `Quick test_lossy_channel_fifo_and_drop;
          Alcotest.test_case "dup: duplicates head" `Quick test_dup_channel_duplicates;
          Alcotest.test_case "delay: reorders" `Quick test_delay_channel_reorders;
          Alcotest.test_case "via + budget: exact delivery probability" `Quick
            test_via_lossy_delivery_under_budget ] );
      ( "injector-budget",
        [ Alcotest.test_case "injector spends faults" `Quick test_injector_spends_faults;
          Alcotest.test_case "default_is_fault conventions" `Quick test_default_is_fault;
          Alcotest.test_case "structural classification regressions" `Quick
            test_is_fault_structural;
          Alcotest.test_case "budget filters and renormalizes" `Quick
            test_budget_sched_filters_after_k;
          Alcotest.test_case "all-faults choice halts deliberately" `Quick
            test_budget_all_faults_halts ] );
      ( "compromise",
        [ Alcotest.test_case "classification regressions" `Quick
            test_compromise_classification;
          Alcotest.test_case "takeover swaps worlds, restore hands back" `Quick
            test_compromise_takeover_and_restore;
          Alcotest.test_case "zero budget ≡ honest member" `Quick
            test_compromise_zero_budget_trace_equiv;
          Alcotest.test_case "budgeted first-enabled semantics" `Quick
            test_budget_first_enabled ] );
      ( "properties",
        [ qtest prop_crash_stop_valid;
          qtest prop_crash_stop_signature_compatible;
          qtest prop_zero_fault_trace_equiv;
          qtest prop_lossy_channel_input_enabled ] ) ]
