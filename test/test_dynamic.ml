(* Tests for the dynamic subchain substrate: run-time creation by the
   manager, self-destruction on settlement, ledger accounting, and the
   random churn driver used by experiment E8. *)

open Cdse_prob
open Cdse_psioa
open Cdse_config
open Cdse_dynamic

let system = System.build ~n_subchains:2 ~tx_values:[ 1 ] ~max_total:6 ()

let step pca q a = List.hd (Dist.support (Psioa.step (Pca.psioa pca) q a))

let test_members_validate () =
  List.iter
    (fun auto ->
      match Psioa.validate ~max_states:200 ~max_depth:8 auto with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Psioa.name auto) e)
    [ Manager.make ~max_open:2 ();
      Ledger.make ~n_subchains:2 ~max_total:6 ();
      Subchain.make ~tx_values:[ 1 ] 0 ]

let test_lifecycle () =
  let q0 = Psioa.start (Pca.psioa system) in
  Alcotest.(check (list int)) "no subchains initially" [] (System.alive_subchains system q0);
  let q1 = step system q0 Manager.open_action in
  Alcotest.(check (list int)) "sub0 created" [ 0 ] (System.alive_subchains system q1);
  let q2 = step system q1 (Subchain.tx 0 1) in
  let q3 = step system q2 (Subchain.tx 0 1) in
  let q4 = step system q3 (Subchain.close 0) in
  Alcotest.(check (list int)) "still alive while closing" [ 0 ] (System.alive_subchains system q4);
  let q5 = step system q4 (Subchain.settle 0 2) in
  Alcotest.(check (list int)) "destroyed after settle" [] (System.alive_subchains system q5);
  Alcotest.(check int) "ledger credited" 2 (System.ledger_total system q5);
  (* The ledger announces the new total. *)
  Alcotest.(check bool) "report enabled" true
    (Psioa.is_enabled (Pca.psioa system) q5 (Action.make ~payload:(Value.int 2) "ledger.report"))

let test_two_subchains_interleaved () =
  let q = Psioa.start (Pca.psioa system) in
  let q = step system q Manager.open_action in
  let q = step system q Manager.open_action in
  Alcotest.(check (list int)) "two alive" [ 0; 1 ] (System.alive_subchains system q);
  let q = step system q (Subchain.tx 1 1) in
  let q = step system q (Subchain.close 1) in
  let q = step system q (Subchain.settle 1 1) in
  Alcotest.(check (list int)) "sub1 gone, sub0 remains" [ 0 ] (System.alive_subchains system q);
  Alcotest.(check int) "total 1" 1 (System.ledger_total system q)

let test_pca_constraints_hold () =
  match Pca.check_constraints ~max_states:200 ~max_depth:5 system with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_manager_budget () =
  let q = Psioa.start (Pca.psioa system) in
  let q = step system q Manager.open_action in
  let q = step system q Manager.open_action in
  Alcotest.(check bool) "budget exhausted" false
    (Psioa.is_enabled (Pca.psioa system) q Manager.open_action)

let test_drive_deterministic () =
  let run seed = System.drive system ~rng:(Rng.make seed) ~steps:100 in
  let a = run 11 and b = run 11 in
  Alcotest.(check int) "same creations" a.System.creations b.System.creations;
  Alcotest.(check int) "same total" a.System.final_total b.System.final_total

let test_drive_stats_sane () =
  let s = System.drive system ~rng:(Rng.make 5) ~steps:200 in
  Alcotest.(check bool) "steps ≤ requested" true (s.System.steps_taken <= 200);
  (* 2 subchains can be born; the manager can also die (counted as a
     destruction alongside subchain settlements). *)
  Alcotest.(check bool) "creations bounded by budget" true (s.System.creations <= 2);
  Alcotest.(check bool) "destructions ≤ creations + 1 (manager)" true
    (s.System.destructions <= s.System.creations + 1);
  Alcotest.(check bool) "max alive ≤ budget + static" true (s.System.max_alive <= 4)

let test_larger_system_churns () =
  let big = System.build ~n_subchains:4 ~tx_values:[ 1; 2 ] ~max_total:20 () in
  let s = System.drive big ~rng:(Rng.make 17) ~steps:400 in
  Alcotest.(check bool) "some creations happened" true (s.System.creations > 0);
  Alcotest.(check bool) "some destructions happened" true (s.System.destructions > 0)

(* ------------------------------------------------------------- committee *)

let n = "cmt"
let cmt = Committee.build ~max_validators:3 ~blocks:2 n
let cauto = Pca.psioa cmt
let cstep q a = List.hd (Dist.support (Psioa.step cauto q a))

let drive q acts = List.fold_left cstep q acts

let test_committee_constraints () =
  match Pca.check_constraints ~max_states:300 ~max_depth:5 cmt with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_committee_commit_roundtrip () =
  let q = Psioa.start cauto in
  let q = drive q [ Committee.add n 0; Committee.add n 1 ] in
  Alcotest.(check (list int)) "two members" [ 0; 1 ] (Committee.members cmt q);
  Alcotest.(check int) "two validators alive" 3 (List.length (Pca.alive cmt q));
  let q = drive q [ Committee.submit n 1; Committee.propose n 1 ] in
  (* Votes in adversary order: 1 before 0. *)
  let q = drive q [ Committee.vote n 1 1; Committee.vote n 0 1 ] in
  Alcotest.(check bool) "commit enabled once all voted" true
    (Psioa.is_enabled cauto q (Committee.commit n 1));
  let q = cstep q (Committee.commit n 1) in
  Alcotest.(check (list int)) "block in log" [ 1 ] (Committee.committed cmt q)

let test_committee_no_early_commit () =
  (* Safety: whenever the commit action is enabled, every current member's
     vote has been collected — over all reachable states (including
     free-input paths where ghost proposals re-arm validators). *)
  List.iter
    (fun q ->
      List.iter
        (fun b ->
          if Psioa.is_enabled cauto q (Committee.commit n b) then
            match Committee.collecting cmt q with
            | None -> Alcotest.fail "commit enabled outside a collection phase"
            | Some (b', votes) ->
                Alcotest.(check int) "committing the collected block" b b';
                Alcotest.(check bool) "every member voted" true
                  (List.for_all (fun i -> List.mem i votes) (Committee.members cmt q)))
        [ 0; 1 ])
    (Psioa.reachable ~max_states:400 ~max_depth:6 cauto)

let test_committee_reconfiguration () =
  (* Retire a validator; the next block needs only the survivor's vote,
     and the retired automaton is destroyed. *)
  let q = Psioa.start cauto in
  let q = drive q [ Committee.add n 0; Committee.add n 1 ] in
  let q = drive q [ Committee.submit n 0; Committee.propose n 0;
                    Committee.vote n 0 0; Committee.vote n 1 0; Committee.commit n 0 ] in
  let q = cstep q (Committee.retire n 1) in
  Alcotest.(check (list int)) "member 1 retired" [ 0 ] (Committee.members cmt q);
  Alcotest.(check bool) "validator 1 destroyed" true
    (not (List.mem (Committee.validator_name n 1) (Pca.alive cmt q)));
  let q = drive q [ Committee.submit n 1; Committee.propose n 1; Committee.vote n 0 1 ] in
  let q = cstep q (Committee.commit n 1) in
  Alcotest.(check (list int)) "log grew" [ 0; 1 ] (Committee.committed cmt q)

let test_committee_agreement_any_interleaving () =
  (* Under the uniform scheduler (which interleaves adds/votes freely),
     every committed block equals a submitted block, in every execution.
     The environment submits via free-input scripts; close the system with
     an env automaton that submits block 1 once. *)
  let submitter =
    let s0 = Value.tag "sub" (Value.int 0) and s1 = Value.tag "sub" (Value.int 1) in
    Psioa.make ~name:"submitter" ~start:s0
      ~signature:(fun q ->
        if Value.equal q s0 then
          Sigs.make ~input:Action_set.empty
            ~output:(Action_set.of_list [ Committee.submit n 1 ])
            ~internal:Action_set.empty
        else Sigs.empty)
      ~transition:(fun q a ->
        if Value.equal q s0 && Action.equal a (Committee.submit n 1) then
          Some (Cdse_psioa.Vdist.dirac s1)
        else None)
  in
  let sys = Compose.pair submitter cauto in
  let sched = Cdse_sched.Scheduler.bounded 10 (Cdse_sched.Scheduler.uniform sys) in
  let d = Cdse_sched.Measure.exec_dist sys sched ~depth:12 in
  Alcotest.(check bool) "multiple interleavings" true (Dist.size d > 1);
  List.iter
    (fun e ->
      List.iter
        (fun a ->
          if String.equal (Action.name a) (n ^ ".commit") then
            Alcotest.(check bool) "agreement: only block 1 commits" true
              (Value.equal (Action.payload a) (Value.int 1)))
        (Exec.actions e))
    (Dist.support d)

let test_quorum_commits_despite_crash () =
  (* Crash tolerance: with quorum 2-of-3, a block commits even though one
     validator crashes mid-round. *)
  let qc = Committee.build ~max_validators:3 ~blocks:1 ~quorum:(`At_least 2) n in
  let qa = Pca.psioa qc in
  let s q a = List.hd (Dist.support (Psioa.step qa q a)) in
  let q = Psioa.start qa in
  let q = List.fold_left s q [ Committee.add n 0; Committee.add n 1; Committee.add n 2 ] in
  let q = List.fold_left s q [ Committee.submit n 0; Committee.propose n 0 ] in
  let q = s q (Committee.vote n 0 0) in
  (* Validator 1 crashes — the chair never learns. *)
  let q = s q (Committee.crash n 1) in
  Alcotest.(check bool) "val1 destroyed" true
    (not (List.mem (Committee.validator_name n 1) (Pca.alive qc q)));
  Alcotest.(check bool) "no commit yet at 1 vote" false
    (Psioa.is_enabled qa q (Committee.commit n 0));
  let q = s q (Committee.vote n 2 0) in
  Alcotest.(check bool) "commit at quorum" true (Psioa.is_enabled qa q (Committee.commit n 0));
  let q = s q (Committee.commit n 0) in
  Alcotest.(check (list int)) "committed" [ 0 ] (Committee.committed qc q)

let test_unanimous_blocks_on_crash () =
  (* The unanimous committee is NOT crash tolerant: after a mid-round
     crash the round can never complete (the chair waits for a vote that
     will never come). Liveness failure made visible. *)
  let uc = Committee.build ~max_validators:2 ~blocks:1 ~quorum:`All n in
  let ua = Pca.psioa uc in
  let s q a = List.hd (Dist.support (Psioa.step ua q a)) in
  let q = Psioa.start ua in
  let q = List.fold_left s q
      [ Committee.add n 0; Committee.add n 1; Committee.submit n 0; Committee.propose n 0;
        Committee.vote n 0 0; Committee.crash n 1 ] in
  (* No commit now, and no path to one in the CLOSED world: explore
     forward through locally-controlled actions only (the dead validator's
     vote is a free input that no component can produce). *)
  let rec explore seen frontier =
    match frontier with
    | [] -> seen
    | q' :: rest ->
        if List.exists (Value.equal q') seen then explore seen rest
        else
          let nexts =
            Action_set.fold
              (fun a acc -> Dist.support (Psioa.step ua q' a) @ acc)
              (Sigs.local (Psioa.signature ua q'))
              []
          in
          explore (q' :: seen) (nexts @ rest)
  in
  List.iter
    (fun q' ->
      Alcotest.(check bool) "commit unreachable" false
        (Psioa.is_enabled ua q' (Committee.commit n 0)))
    (explore [] [ q ])

let test_quorum_safety_reachable () =
  (* Safety for the threshold variant: commit enabled ⟹ ≥ t votes. *)
  let qc = Committee.build ~max_validators:2 ~blocks:1 ~quorum:(`At_least 2) n in
  let qa = Pca.psioa qc in
  List.iter
    (fun q ->
      if Psioa.is_enabled qa q (Committee.commit n 0) then
        match Committee.collecting qc q with
        | Some (_, votes) ->
            Alcotest.(check bool) "≥ 2 votes" true (List.length votes >= 2)
        | None -> Alcotest.fail "commit outside collection")
    (Psioa.reachable ~max_states:500 ~max_depth:8 qa)

let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

let test_fault_budget_commit_prob () =
  (* Regression for the committee.mli liveness note, computed as an exact
     reachability probability: crashes become schedulable via
     Fault.injector, the total is capped by Fault.budget_sched, and the
     uniform scheduler adversarially interleaves crashes with the round.
     A 3-validator `At_least 2 committee commits with probability exactly
     1 under any single crash; two crashes can wedge it, and the
     unanimous committee wedges under even one. *)
  let commit_prob ~quorum ~budget =
    let cmt = Committee.build ~max_validators:3 ~blocks:1 ~quorum n in
    let auto = Pca.psioa cmt in
    let q =
      List.fold_left
        (fun q a -> List.hd (Dist.support (Psioa.step auto q a)))
        (Psioa.start auto)
        [ Committee.add n 0; Committee.add n 1; Committee.add n 2;
          Committee.submit n 0; Committee.propose n 0 ]
    in
    let tail =
      Psioa.make ~name:"round" ~start:q ~signature:(Psioa.signature auto)
        ~transition:(Psioa.transition auto)
    in
    let inj = Cdse_fault.Fault.injector ~faults:(List.init 3 (Committee.crash n)) () in
    let sys = Compose.pair inj tail in
    let sched =
      Cdse_fault.Fault.budget_sched budget
        (Cdse_sched.Scheduler.bounded 12 (Cdse_sched.Scheduler.uniform sys))
    in
    let pred = function
      | Value.Pair (_, qc) -> Committee.committed cmt qc = [ 0 ]
      | _ -> false
    in
    Cdse_sched.Measure.reach_prob ~memo:true sys sched ~depth:12 ~pred
  in
  Alcotest.check rat "quorum 2-of-3 tolerates one crash: P(commit) = 1 exactly" Rat.one
    (commit_prob ~quorum:(`At_least 2) ~budget:1);
  let p_two = commit_prob ~quorum:(`At_least 2) ~budget:2 in
  Alcotest.(check bool) "two crashes can wedge the quorum round" true
    (Rat.compare p_two Rat.one < 0 && Rat.sign p_two > 0);
  let p_all = commit_prob ~quorum:`All ~budget:1 in
  Alcotest.(check bool) "unanimity wedges under a single crash" true
    (Rat.compare p_all Rat.one < 0 && Rat.sign p_all > 0)

let test_committee_secure_emulation () =
  (* The dynamic committee PCA securely emulates the atomic-commit
     functionality (Definition 4.26 on a PCA): with the scheduling surface
     hidden, an environment that submits and awaits its commit cannot tell
     the vote-collecting protocol from the ideal one. The adversary side
     is trivial here: all AAct actions are locally controlled outputs, so
     a do-nothing adversary/simulator suffices. *)
  let real = Committee.structured (Committee.build ~max_validators:2 ~blocks:2 n) n in
  let ideal = Committee.ideal ~blocks:2 n in
  let nobody =
    Psioa.make ~name:"nobody" ~start:Value.unit
      ~signature:(fun _ -> Sigs.empty)
      ~transition:(fun _ _ -> None)
  in
  let v =
    Cdse_secure.Emulation.check
      ~schema:(Cdse_sched.Schema.make ~name:"det" (fun a -> [ Cdse_sched.Scheduler.first_enabled a ]))
      ~insight_of:Cdse_sched.Insight.accept
      ~envs:[ Committee.env_commit ~block:0 n ]
      ~eps:Rat.zero ~q1:12 ~q2:12 ~depth:14 ~adversaries:[ nobody ] ~sim_for:(fun _ -> nobody)
      ~real ~ideal
  in
  Alcotest.(check bool) "committee ≤_SE atomic commit" true v.Cdse_secure.Impl.holds;
  Alcotest.(check bool) "slack 0" true (Rat.is_zero v.Cdse_secure.Impl.worst)

let test_committee_structured_partitions () =
  let real = Committee.structured cmt n in
  let q0 = Psioa.start cauto in
  (* submit is EAct; add0 is AAct. *)
  Alcotest.(check bool) "submit is EAct" true
    (Action_set.mem (Committee.submit n 0) (Cdse_secure.Structured.eact real q0));
  Alcotest.(check bool) "add is AAct" true
    (Action_set.mem (Committee.add n 0) (Cdse_secure.Structured.aact real q0))

let () =
  Alcotest.run "cdse_dynamic"
    [ ( "subchain-system",
        [ Alcotest.test_case "members validate" `Quick test_members_validate;
          Alcotest.test_case "open/tx/close/settle lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "interleaved subchains" `Quick test_two_subchains_interleaved;
          Alcotest.test_case "PCA constraints (Def 2.16)" `Quick test_pca_constraints_hold;
          Alcotest.test_case "manager budget" `Quick test_manager_budget ] );
      ( "committee",
        [ Alcotest.test_case "PCA constraints" `Quick test_committee_constraints;
          Alcotest.test_case "commit round trip" `Quick test_committee_commit_roundtrip;
          Alcotest.test_case "safety: no early commit" `Quick test_committee_no_early_commit;
          Alcotest.test_case "dynamic reconfiguration" `Quick test_committee_reconfiguration;
          Alcotest.test_case "agreement under interleaving" `Slow test_committee_agreement_any_interleaving;
          Alcotest.test_case "structured partitions (Def 4.22)" `Quick test_committee_structured_partitions;
          Alcotest.test_case "≤_SE atomic commit (PCA instance)" `Slow test_committee_secure_emulation;
          Alcotest.test_case "quorum commits despite crash" `Quick test_quorum_commits_despite_crash;
          Alcotest.test_case "unanimity blocks on crash" `Quick test_unanimous_blocks_on_crash;
          Alcotest.test_case "quorum safety (≥ t votes)" `Quick test_quorum_safety_reachable ] );
      ( "fault-tolerance",
        [ Alcotest.test_case "commit probability vs crash budget (exact)" `Slow
            test_fault_budget_commit_prob ] );
      ( "churn-driver",
        [ Alcotest.test_case "deterministic under seed" `Quick test_drive_deterministic;
          Alcotest.test_case "stats sane" `Quick test_drive_stats_sane;
          Alcotest.test_case "larger system churns" `Quick test_larger_system_churns ] ) ]
