(* Tests for the secure layer: structured PSIOA/PCA (Defs 4.17-4.23),
   adversaries (Def 4.24, Lemma 4.25), the approximate implementation
   relation (Def 4.12, Lemmas 4.13/4.16), the dummy adversary and the
   Forward constructions (Def 4.27, Lemma D.1), secure emulation and its
   composability construction (Def 4.26, Thm 4.30). *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_secure
open Cdse_testkit

let act = Fixtures.act
let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

let relay = Sfixtures.relay "proto"
let relay_adv = Sfixtures.relay_adversary ~proto_name:"proto" ~rename:Fun.id "adv"
let relay_env = Sfixtures.relay_env ~proto_name:"proto" "env"

(* ------------------------------------------------------------ Structured *)

let test_structured_partitions () =
  let q = Sfixtures.q_got 0 in
  Alcotest.(check int) "EAct at got = ∅" 0 (Action_set.cardinal (Structured.eact relay q));
  Alcotest.(check int) "AAct at got = {leak}" 1 (Action_set.cardinal (Structured.aact relay q));
  Alcotest.(check int) "AO at got" 1 (Action_set.cardinal (Structured.ao relay q));
  Alcotest.(check int) "AI at sent" 1 (Action_set.cardinal (Structured.ai relay (Sfixtures.q_sent 0)));
  Alcotest.(check int) "EI at idle" 1 (Action_set.cardinal (Structured.ei relay Sfixtures.q_idle));
  Alcotest.(check int) "EO at done" 1 (Action_set.cardinal (Structured.eo relay (Sfixtures.q_done 0)))

let test_structured_universes () =
  let ai = Structured.ai_universe relay and ao = Structured.ao_universe relay in
  Alcotest.(check int) "AI universe = {deliver}" 1 (Action_set.cardinal ai);
  Alcotest.(check int) "AO universe = {leak(0)}" 1 (Action_set.cardinal ao);
  Alcotest.(check bool) "deliver in AI" true (Action_set.mem (act "proto.deliver") ai)

let test_structured_validate () =
  (match Structured.validate relay with Ok () -> () | Error e -> Alcotest.fail e);
  (* Declaring an EAct action outside ext must be caught. *)
  let bad = Structured.make (Structured.psioa relay) ~eact:(fun _ -> Action_set.of_list [ act "ghost" ]) in
  (* eact is intersected with ext by the smart accessor, so validation of
     the declared function flags nothing only if the accessor clips; the
     validate function checks the raw declaration. *)
  match Structured.validate bad with
  | Ok () -> Alcotest.fail "over-declared EAct accepted"
  | Error _ -> ()

let test_structured_hide () =
  let out0 = act ~payload:(Value.int 0) "proto.out" in
  let hidden = Structured.hide relay (fun _ -> Action_set.of_list [ out0 ]) in
  Alcotest.(check int) "EO hidden away" 0
    (Action_set.cardinal (Structured.eo hidden (Sfixtures.q_done 0)))

let test_structured_compose_eact_union () =
  let r2 = Sfixtures.relay "proto2" in
  let c = Structured.compose relay r2 in
  let q = Value.pair Sfixtures.q_idle Sfixtures.q_idle in
  Alcotest.(check int) "EAct union" 2 (Action_set.cardinal (Structured.eact c q))

let test_structured_compatible () =
  let r2 = Sfixtures.relay "proto2" in
  Alcotest.(check bool) "disjoint protocols compatible" true (Structured.compatible relay r2);
  (* An automaton sharing the relay's *adversary* action as its own
     interface violates Definition 4.18. *)
  let eavesdropper =
    let leak0 = act ~payload:(Value.int 0) "proto.leak" in
    Structured.make
      (Psioa.make ~name:"eav" ~start:Value.unit
         ~signature:(fun _ -> Fixtures.sig_io ~i:[ leak0 ] ())
         ~transition:(fun q a -> if Action.equal a leak0 then Some (Vdist.dirac q) else None))
      ~eact:(fun _ -> Action_set.empty)
  in
  Alcotest.(check bool) "AAct-shared pair incompatible" false
    (Structured.compatible relay eavesdropper)

(* ------------------------------------------------------------- Adversary *)

let test_adversary_accepted () =
  (match Adversary.check ~structured:relay relay_adv with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "full control" true (Adversary.full_control ~structured:relay relay_adv)

let test_adversary_rejected_eact () =
  let bad = Sfixtures.eact_touching_adversary ~proto_name:"proto" "bad" in
  Alcotest.(check bool) "EAct-touching rejected" false
    (Adversary.is_adversary ~structured:relay bad)

let test_adversary_rejected_missing_ai () =
  (* An adversary that receives leaks but can never deliver: AI_A ⊄
     out(Adv). *)
  let leak0 = act ~payload:(Value.int 0) "proto.leak" in
  let deaf =
    Psioa.make ~name:"deaf" ~start:Value.unit
      ~signature:(fun _ -> Fixtures.sig_io ~i:[ leak0 ] ())
      ~transition:(fun q a -> if Action.equal a leak0 then Some (Vdist.dirac q) else None)
  in
  Alcotest.(check bool) "deaf adversary rejected" false (Adversary.is_adversary ~structured:relay deaf)

let contains ~sub s = Astring.String.is_infix ~affix:sub s

let test_adversary_error_actionable () =
  (* The rejection must name both automata, the violated Definition 4.24
     condition and the offending action — enough to fix the adversary
     without re-deriving the check by hand. *)
  let leak0 = act ~payload:(Value.int 0) "proto.leak" in
  let deaf =
    Psioa.make ~name:"deaf" ~start:Value.unit
      ~signature:(fun _ -> Fixtures.sig_io ~i:[ leak0 ] ())
      ~transition:(fun q a -> if Action.equal a leak0 then Some (Vdist.dirac q) else None)
  in
  (match Adversary.check ~structured:relay deaf with
  | Ok () -> Alcotest.fail "deaf adversary accepted"
  | Error msg ->
      List.iter
        (fun sub ->
          Alcotest.(check bool) (Printf.sprintf "message mentions %S" sub) true
            (contains ~sub msg))
        [ "deaf"; Structured.name relay; "AI_A"; "proto.deliver" ]);
  match Adversary.check_exn ~structured:relay deaf with
  | () -> Alcotest.fail "check_exn did not raise"
  | exception Adversary.Not_adversary { adversary; action; _ } ->
      Alcotest.(check string) "exception names the adversary" "deaf" adversary;
      Alcotest.(check (option string)) "exception carries the undriven input"
        (Some "proto.deliver")
        (Option.map Action.name action)

let test_silent_takeover_shape () =
  (* The canonical compromise payload: inputs survive (composition
     partners stay unblocked), every locally controlled action is gone. *)
  let relay_auto = Structured.psioa relay in
  let silenced = Adversary.silent_takeover relay_auto in
  Alcotest.(check bool) "valid per Def 2.1" true
    (Result.is_ok (Psioa.validate ~max_states:400 silenced));
  List.iter
    (fun q ->
      let s = Psioa.signature silenced q and s0 = Psioa.signature relay_auto q in
      Alcotest.(check bool) "no locally controlled actions" true
        (Action_set.is_empty (Sigs.local s));
      Alcotest.(check bool) "inputs preserved (unless the state emptied)" true
        (Sigs.is_empty s || Action_set.equal (Sigs.input s) (Sigs.input s0)))
    (Psioa.reachable ~max_states:400 silenced)

let test_emulation_check_failed_printer () =
  (* real_leaky hands the plaintext to the adversary: the guess game
     accepts with probability 1 against the ideal world's 1/2. The raised
     failure must carry both names, the exact slack and a witness line. *)
  let bound = 12 in
  match
    Emulation.check_exn
      ~schema:(Schema.make ~name:"det" (fun x -> [ Scheduler.first_enabled x ]))
      ~insight_of:Insight.accept
      ~envs:[ Cdse_crypto.Secure_channel.env_guess ~msg:1 "n0" ]
      ~eps:Rat.zero ~q1:bound ~q2:bound ~depth:(bound + 2)
      ~adversaries:[ Cdse_crypto.Secure_channel.adversary "n0" ]
      ~sim_for:(fun _ -> Cdse_crypto.Secure_channel.simulator "n0")
      ~real:(Cdse_crypto.Secure_channel.real_leaky "n0")
      ~ideal:(Cdse_crypto.Secure_channel.ideal "n0")
  with
  | _ -> Alcotest.fail "leaky channel accepted"
  | exception (Emulation.Check_failed { worst; witness; _ } as exn) ->
      Alcotest.(check string) "exact slack 1/2" "1/2" (Rat.to_string worst);
      Alcotest.(check bool) "witness carries a detail line" true
        (String.length witness > 0);
      let rendered = Printexc.to_string exn in
      List.iter
        (fun sub ->
          Alcotest.(check bool) (Printf.sprintf "printer mentions %S" sub) true
            (contains ~sub rendered))
        [ "does not securely emulate"; "1/2" ]

let test_lemma_425_restriction () =
  (* Lemma 4.25: an adversary for A||B is an adversary for A. Build an
     adversary serving two relays, check it against one. *)
  let r2 = Sfixtures.relay "proto2" in
  let composed = Structured.compose relay r2 in
  let adv2 =
    (* Forwarder serving both protocols. *)
    let leak p = act ~payload:(Value.int 0) (p ^ ".leak") in
    let deliver p = act (p ^ ".deliver") in
    let state pending = Value.tag "adv2" (Value.list (List.map Value.str pending)) in
    let protos = [ "proto"; "proto2" ] in
    let signature q =
      match q with
      | Value.Tag ("adv2", Value.List pend) ->
          let pending = List.filter_map (function Value.Str s -> Some s | _ -> None) pend in
          Fixtures.sig_io
            ~i:(List.map leak protos)
            ~o:(List.map deliver pending)
            ()
      | _ -> Sigs.empty
    in
    let transition q a =
      match q with
      | Value.Tag ("adv2", Value.List pend) ->
          let pending = List.filter_map (function Value.Str s -> Some s | _ -> None) pend in
          List.find_map
            (fun p ->
              if Action.equal a (leak p) then
                if List.mem p pending then Some (Vdist.dirac q)
                else Some (Vdist.dirac (state (List.sort String.compare (p :: pending))))
              else if Action.equal a (deliver p) && List.mem p pending then
                Some (Vdist.dirac (state (List.filter (fun x -> x <> p) pending)))
              else None)
            protos
      | _ -> None
    in
    Psioa.make ~name:"adv2" ~start:(state []) ~signature ~transition
  in
  Alcotest.(check bool) "adversary for A||B" true (Adversary.is_adversary ~structured:composed adv2);
  Alcotest.(check bool) "restriction: adversary for A" true
    (Adversary.is_adversary ~structured:relay adv2)

(* ------------------------------------------------------------------ Impl *)

let coin_pair p name = Fixtures.coin ~p name

let accept_envs = [ Fixtures.acceptor ~watch:[ ("c.heads", None) ] "env" ]

let impl_check ~eps pa pb =
  Impl.approx_le ~schema:(Schema.standard ~bound:4) ~insight_of:Insight.accept ~envs:accept_envs
    ~eps ~q1:4 ~q2:4 ~depth:6 ~a:(coin_pair pa "c") ~b:(coin_pair pb "c")

let test_impl_identical_holds () =
  let v = impl_check ~eps:Rat.zero Rat.half Rat.half in
  Alcotest.(check bool) "A ≤ A at ε=0" true v.Impl.holds;
  Alcotest.check rat "distance 0" Rat.zero v.Impl.worst

let test_impl_biased_fails_then_holds () =
  let v0 = impl_check ~eps:Rat.zero Rat.half (Rat.of_ints 3 4) in
  Alcotest.(check bool) "fails at ε=0" false v0.Impl.holds;
  (* The bias gap is 1/4; with best-match scheduler search the worst
     distance lies in (0, 1/4]. *)
  Alcotest.(check bool) "worst in (0, 1/4]" true
    (Rat.sign v0.Impl.worst > 0 && Rat.compare v0.Impl.worst (Rat.of_ints 1 4) <= 0);
  let v1 = impl_check ~eps:(Rat.of_ints 1 4) Rat.half (Rat.of_ints 3 4) in
  Alcotest.(check bool) "holds at ε=1/4" true v1.Impl.holds

let test_impl_transitivity_eps_adds () =
  (* Theorem 4.16: ε13 ≤ ε12 + ε23 (here with deterministic-scheduler
     matching the worst distances are exactly the bias gaps). *)
  let d12 = (impl_check ~eps:Rat.one Rat.half (Rat.of_ints 5 8)).Impl.worst in
  let d23 = (impl_check ~eps:Rat.one (Rat.of_ints 5 8) (Rat.of_ints 3 4)).Impl.worst in
  let d13 = (impl_check ~eps:Rat.one Rat.half (Rat.of_ints 3 4)).Impl.worst in
  Alcotest.(check bool) "ε13 ≤ ε12 + ε23" true (Rat.compare d13 (Rat.add d12 d23) <= 0)

let test_impl_composability_context () =
  (* Lemma 4.13 shape: composing a compatible context A3 onto both sides
     does not increase the distinguishing distance. Checked under the
     deterministic matched scheduler so both sides replay the same
     interleaving. *)
  let det = Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]) in
  let ctx = Fixtures.counter ~bound:2 "ctx" in
  let a13 = Compose.pair ctx (coin_pair Rat.half "c") in
  let a23 = Compose.pair ctx (coin_pair (Rat.of_ints 3 4) "c") in
  let plain =
    Impl.approx_le ~schema:det ~insight_of:Insight.accept ~envs:accept_envs ~eps:Rat.one ~q1:6
      ~q2:6 ~depth:8 ~a:(coin_pair Rat.half "c") ~b:(coin_pair (Rat.of_ints 3 4) "c")
  in
  let v =
    Impl.approx_le ~schema:det ~insight_of:Insight.accept ~envs:accept_envs ~eps:Rat.one ~q1:8
      ~q2:8 ~depth:10 ~a:a13 ~b:a23
  in
  Alcotest.(check bool) "context does not amplify" true
    (Rat.compare v.Impl.worst plain.Impl.worst <= 0)

let test_impl_family_neg_pt () =
  (* Family version: identical families are ≤_{neg,pt} with ε = 0 ≤ 2^-k. *)
  let fam _k = coin_pair Rat.half "c" in
  let v =
    Impl.le_neg_pt ~window:[ 1; 2; 3 ] ~schema:(Schema.standard ~bound:4)
      ~insight_of:Insight.accept
      ~envs:(fun _ -> accept_envs)
      ~eps:Cdse_bounded.Negligible.inv_pow2
      ~q1:(Cdse_util.Poly.of_coeffs [ 4 ])
      ~q2:(Cdse_util.Poly.of_coeffs [ 4 ])
      ~depth:(fun _ -> 6) ~a:fam ~b:fam
  in
  Alcotest.(check bool) "family holds" true v.Impl.holds

let test_impl_family_composability_lemma_414 () =
  (* Lemma 4.14 / B.5 on an instance family: if A_k ≤ B_k at every index,
     then C_k||A_k ≤ C_k||B_k at every index (deterministic matched
     schedulers, identical-pair family so ε = 0). *)
  let fam_a _k = coin_pair Rat.half "c" in
  let fam_c k = Fixtures.counter ~bound:(1 + (k mod 3)) "ctx" in
  let det = Schema.make ~name:"det" (fun a -> [ Scheduler.first_enabled a ]) in
  let composed fam k = Compose.pair (fam_c k) (fam k) in
  let v =
    Impl.approx_le_family ~window:[ 1; 2; 3 ] ~schema:det ~insight_of:Insight.accept
      ~envs:(fun _ -> accept_envs)
      ~eps:(fun _ -> Rat.zero)
      ~q1:(fun k -> 6 + k) ~q2:(fun k -> 6 + k)
      ~depth:(fun k -> 8 + k)
      ~a:(composed fam_a) ~b:(composed fam_a)
  in
  Alcotest.(check bool) "C||A ≤ C||B over the window" true v.Impl.holds

let test_triangle_chain () =
  (* A four-coin bias ladder: pairwise gaps 1/8 each under the matched
     deterministic scheduler; the direct distance is 3/8 = the sum
     (equality: the accept probability is linear in the bias). *)
  let ps = [ Rat.half; Rat.of_ints 5 8; Rat.of_ints 3 4; Rat.of_ints 7 8 ] in
  let report =
    Impl.triangle_chain
      ~schema:(Schema.make ~name:"det" (fun x -> [ Scheduler.first_enabled x ]))
      ~insight_of:Insight.accept ~envs:accept_envs ~q:4 ~depth:6
      (List.map (fun p -> coin_pair p "c") ps)
  in
  Alcotest.(check int) "three links" 3 (List.length report.Impl.pairwise);
  Alcotest.(check bool) "triangle bound holds" true report.Impl.triangle_holds;
  Alcotest.check rat "direct = 3/8" (Rat.of_ints 3 8) report.Impl.direct;
  Alcotest.check rat "sum = 3/8" (Rat.of_ints 3 8) report.Impl.total_bound

(* ----------------------------------------------------------------- Dummy *)

let g = Dummy.prefix_renaming "g."

let test_dummy_is_valid_psioa () =
  let dummy =
    Dummy.make ~name:"dum" ~ai:(Structured.ai_universe relay) ~ao:(Structured.ao_universe relay) ~g
  in
  (* The dummy has unbounded-in-principle state space (one state per
     receivable action + idle): validate on its small actual space. *)
  match Psioa.validate ~max_states:20 dummy with Ok () -> () | Error e -> Alcotest.fail e

let test_dummy_forwards () =
  let dummy =
    Dummy.make ~name:"dum" ~ai:(Structured.ai_universe relay) ~ao:(Structured.ao_universe relay) ~g
  in
  let leak0 = act ~payload:(Value.int 0) "proto.leak" in
  (* Receive an AO action: must offer g(leak0). *)
  let q1 = List.hd (Dist.support (Psioa.step dummy Dummy.idle leak0)) in
  Alcotest.(check bool) "pending after receive" true (Dummy.pending_of q1 <> None);
  Alcotest.(check bool) "offers g(leak0)" true (Psioa.is_enabled dummy q1 (g.Dummy.apply leak0));
  let q2 = List.hd (Dist.support (Psioa.step dummy q1 (g.Dummy.apply leak0))) in
  Alcotest.(check bool) "idle after forward" true (Value.equal q2 Dummy.idle);
  (* Receive a renamed AI command: must offer the unrenamed action. *)
  let gdeliver = g.Dummy.apply (act "proto.deliver") in
  let q3 = List.hd (Dist.support (Psioa.step dummy Dummy.idle gdeliver)) in
  Alcotest.(check bool) "offers deliver" true (Psioa.is_enabled dummy q3 (act "proto.deliver"))

(* ------------------------------------------------------------ Forwarding *)

let d1_setup () =
  let adv_renamed = Sfixtures.relay_adversary ~proto_name:"proto" ~rename:(fun n -> "g." ^ n) "adv" in
  Forwarding.make_setup ~structured:relay ~g ~env:relay_env ~adv:adv_renamed ()

let test_forward_exec_valid () =
  let setup = d1_setup () in
  let lhs = Forwarding.lhs setup and rhs = Forwarding.rhs setup in
  let sched = Scheduler.bounded 6 (Scheduler.first_enabled lhs) in
  let d = Measure.exec_dist lhs sched ~depth:6 in
  List.iter
    (fun alpha ->
      let alpha' = Forwarding.forward_exec setup alpha in
      (* Every forwarded execution must be a genuine rhs execution: each
         step enabled with the recorded target in the support. *)
      Alcotest.(check bool) "starts at rhs start" true
        (Value.equal (Exec.fstate alpha') (Psioa.start rhs));
      let rec check q = function
        | [] -> ()
        | (a, q') :: rest ->
            let eta = Psioa.step rhs q a in
            Alcotest.(check bool)
              (Format.asprintf "step %a reachable" Action.pp a)
              true
              (List.exists (Value.equal q') (Dist.support eta));
            check q' rest
      in
      check (Exec.fstate alpha') (Exec.steps alpha'))
    (Dist.support d)

let test_forward_exec_lengths () =
  let setup = d1_setup () in
  let lhs = Forwarding.lhs setup in
  let sched = Scheduler.bounded 6 (Scheduler.first_enabled lhs) in
  let d = Measure.exec_dist lhs sched ~depth:6 in
  List.iter
    (fun alpha ->
      let alpha' = Forwarding.forward_exec setup alpha in
      Alcotest.(check bool) "|α'| ≤ 2|α|" true (Exec.length alpha' <= 2 * Exec.length alpha))
    (Dist.support d)

let test_lemma_d1_exact () =
  (* The heart of Lemma D.1: inserting the dummy adversary and forwarding
     the scheduler leaves the accept-distribution exactly unchanged. *)
  let setup = d1_setup () in
  let lhs = Forwarding.lhs setup in
  let report =
    Forwarding.check_lemma_d1 setup ~insight_of:Insight.accept
      ~sched:(Scheduler.first_enabled lhs) ~q1:6 ~depth:6
  in
  Alcotest.check rat "distance 0" Rat.zero report.Forwarding.distance;
  Alcotest.(check bool) "exact" true report.Forwarding.exact;
  Alcotest.(check int) "q2 = 2 q1" 12 report.Forwarding.rhs_steps

let test_lemma_d1_exact_uniform () =
  (* Same with a randomized scheduler — exercises non-Dirac choices through
     the forwarding. *)
  let setup = d1_setup () in
  let lhs = Forwarding.lhs setup in
  let report =
    Forwarding.check_lemma_d1 setup ~insight_of:Insight.accept ~sched:(Scheduler.uniform lhs)
      ~q1:6 ~depth:6
  in
  Alcotest.(check bool) "exact with uniform scheduler" true report.Forwarding.exact

let test_lemma_d1_trace_insight () =
  (* Stronger observation: the full external trace agrees, not just the
     accept bit. *)
  let setup = d1_setup () in
  let lhs = Forwarding.lhs setup in
  let report =
    Forwarding.check_lemma_d1 setup ~insight_of:Insight.trace
      ~sched:(Scheduler.first_enabled lhs) ~q1:6 ~depth:6
  in
  Alcotest.(check bool) "traces identical" true report.Forwarding.exact

let test_lemma_d1_on_pca () =
  (* Lemma D.1's "(resp. PCA)" clause: the same forwarding construction,
     with the structured automaton being a configuration automaton — the
     relay wrapped as the single member of a canonical PCA, its EAct
     derived through the structured-PCA layer (Definition 4.22). *)
  let relay_auto = Structured.psioa relay in
  let registry = Cdse_psioa.Registry.of_list [ relay_auto ] in
  let pca =
    Cdse_config.Pca.make ~name:"relay-pca" ~registry
      ~init:(Cdse_config.Config.start_of registry [ "proto" ]) ()
  in
  let spca =
    Spca.make ~pca ~member_eact:(fun _id q -> Structured.eact relay q)
  in
  let structured_pca = Spca.to_structured spca in
  (* The PCA's states are configuration encodings; its actions are the
     relay's, so the same adversary and environment apply. *)
  let adv = Sfixtures.relay_adversary ~proto_name:"proto" ~rename:(fun n -> "g." ^ n) "adv" in
  let setup = Forwarding.make_setup ~structured:structured_pca ~g ~env:relay_env ~adv () in
  let lhs = Forwarding.lhs setup in
  List.iter
    (fun sched ->
      let report =
        Forwarding.check_lemma_d1 setup ~insight_of:Insight.accept ~sched ~q1:6 ~depth:6
      in
      Alcotest.(check bool) "exact on the PCA" true report.Forwarding.exact)
    [ Scheduler.first_enabled lhs; Scheduler.uniform lhs ]

let test_lemma_d1_family () =
  (* Lemma 4.29 at the family level: the relay family indexed by alphabet
     size, exact at every index. *)
  let ok =
    Forwarding.check_lemma_d1_family ~window:[ 1; 2; 3 ]
      ~setup_of:(fun k ->
        let alphabet = List.init k Fun.id in
        Forwarding.make_setup
          ~structured:(Sfixtures.relay ~alphabet "proto")
          ~g
          ~env:(Sfixtures.relay_env ~alphabet ~proto_name:"proto" "env")
          ~adv:
            (Sfixtures.relay_adversary ~alphabet ~proto_name:"proto"
               ~rename:(fun n -> "g." ^ n)
               "adv")
          ())
      ~insight_of:Insight.accept
      ~sched_of:(fun _ setup -> Scheduler.first_enabled (Forwarding.lhs setup))
      ~q1:(fun _ -> 6)
      ~depth:(fun _ -> 6)
  in
  Alcotest.(check bool) "family exact" true ok

let test_brave_pair () =
  (* Definition 4.28's checkable bullets hold for (deterministic schema,
     accept): hiding-invariance and Forward^e observation preservation. *)
  let setup = d1_setup () in
  let lhs = Forwarding.lhs setup in
  Alcotest.(check bool) "brave (accept)" true
    (Forwarding.check_brave setup ~insight_of:Insight.accept
       ~sched:(Scheduler.first_enabled lhs) ~q1:6 ~depth:6);
  Alcotest.(check bool) "brave (uniform)" true
    (Forwarding.check_brave setup ~insight_of:Insight.accept ~sched:(Scheduler.uniform lhs)
       ~q1:6 ~depth:6)

(* ------------------------------------------------------------- Emulation *)

let test_emulation_reflexive () =
  (* A ≤_SE A with the identity simulator. *)
  let v =
    Emulation.check ~schema:(Schema.standard ~bound:6) ~insight_of:Insight.accept
      ~envs:[ relay_env ] ~eps:Rat.zero ~q1:6 ~q2:6 ~depth:8 ~adversaries:[ relay_adv ]
      ~sim_for:Fun.id ~real:relay ~ideal:relay
  in
  Alcotest.(check bool) "A ≤_SE A" true v.Impl.holds;
  Alcotest.check rat "exactly 0" Rat.zero v.Impl.worst

let test_emulation_detects_leaky_ideal () =
  (* An 'ideal' that never completes is distinguishable: the acc output
     never fires. *)
  let stuck =
    Structured.make
      (Psioa.make ~name:"proto" ~start:Sfixtures.q_idle
         ~signature:(fun q ->
           if Value.equal q Sfixtures.q_idle then
             Fixtures.sig_io ~i:[ act ~payload:(Value.int 0) "proto.in" ] ()
           else Sigs.empty)
         ~transition:(fun _q a ->
           if Action.equal a (act ~payload:(Value.int 0) "proto.in") then
             Some (Vdist.dirac (Value.tag "stuck" Value.unit))
           else None))
      ~eact:(fun _ -> Action_set.of_list [ act ~payload:(Value.int 0) "proto.in" ])
  in
  let v =
    Emulation.check ~schema:(Schema.standard ~bound:6) ~insight_of:Insight.accept
      ~envs:[ relay_env ] ~eps:Rat.zero ~q1:6 ~q2:6 ~depth:8 ~adversaries:[ relay_adv ]
      ~sim_for:Fun.id ~real:relay ~ideal:stuck
  in
  Alcotest.(check bool) "distinguished" false v.Impl.holds;
  Alcotest.check rat "full distance" Rat.one v.Impl.worst

let test_composite_simulator_shape () =
  (* Theorem 4.30 construction on one component reduces to
     hide(DSim || g(Adv), g(AAct)). Sanity: the composite simulator is a
     valid PSIOA and exposes no renamed actions externally. *)
  let c =
    { Emulation.real = relay; ideal = relay; g; dsim = Forwarding.dummy (d1_setup ()) }
  in
  let sim = Emulation.composite_simulator ~components:[ c ] ~adv:relay_adv in
  let q0 = Psioa.start sim in
  let sg = Psioa.signature sim q0 in
  Action_set.iter
    (fun a ->
      Alcotest.(check bool)
        (Format.asprintf "no renamed external output %a" Action.pp a)
        false
        (String.length (Action.name a) > 2 && String.sub (Action.name a) 0 2 = "g."))
    (Sigs.output sg)

let () =
  Alcotest.run "cdse_secure"
    [ ( "structured",
        [ Alcotest.test_case "partitions (Def 4.17)" `Quick test_structured_partitions;
          Alcotest.test_case "action universes" `Quick test_structured_universes;
          Alcotest.test_case "validation" `Quick test_structured_validate;
          Alcotest.test_case "hiding (Def 4.17)" `Quick test_structured_hide;
          Alcotest.test_case "composition EAct union (Def 4.19)" `Quick test_structured_compose_eact_union;
          Alcotest.test_case "compatibility (Def 4.18)" `Quick test_structured_compatible ] );
      ( "adversary",
        [ Alcotest.test_case "accepted (Def 4.24)" `Quick test_adversary_accepted;
          Alcotest.test_case "EAct-touching rejected" `Quick test_adversary_rejected_eact;
          Alcotest.test_case "missing AI coverage rejected" `Quick test_adversary_rejected_missing_ai;
          Alcotest.test_case "restriction (Lemma 4.25)" `Quick test_lemma_425_restriction;
          Alcotest.test_case "rejection is actionable" `Quick test_adversary_error_actionable;
          Alcotest.test_case "silent takeover shape" `Quick test_silent_takeover_shape ] );
      ( "impl",
        [ Alcotest.test_case "identical holds at ε=0" `Quick test_impl_identical_holds;
          Alcotest.test_case "bias detected then tolerated" `Quick test_impl_biased_fails_then_holds;
          Alcotest.test_case "transitivity ε-addition (Thm 4.16)" `Quick test_impl_transitivity_eps_adds;
          Alcotest.test_case "context composability (Lemma 4.13)" `Quick test_impl_composability_context;
          Alcotest.test_case "family ≤ neg,pt (Def 4.12)" `Quick test_impl_family_neg_pt;
          Alcotest.test_case "family composability (Lemma 4.14)" `Quick
            test_impl_family_composability_lemma_414;
          Alcotest.test_case "hybrid chain triangle bound" `Quick test_triangle_chain ] );
      ( "dummy",
        [ Alcotest.test_case "valid PSIOA (Def 4.27)" `Quick test_dummy_is_valid_psioa;
          Alcotest.test_case "forwards both directions" `Quick test_dummy_forwards ] );
      ( "forwarding",
        [ Alcotest.test_case "Forward^e yields rhs executions" `Quick test_forward_exec_valid;
          Alcotest.test_case "Forward^e length bound" `Quick test_forward_exec_lengths;
          Alcotest.test_case "Lemma D.1: ε = 0 (accept)" `Quick test_lemma_d1_exact;
          Alcotest.test_case "Lemma D.1: ε = 0 (uniform sched)" `Quick test_lemma_d1_exact_uniform;
          Alcotest.test_case "Lemma D.1: traces identical" `Quick test_lemma_d1_trace_insight;
          Alcotest.test_case "Lemma D.1 on a PCA (resp. PCA clause)" `Quick test_lemma_d1_on_pca;
          Alcotest.test_case "Lemma 4.29 at the family level" `Quick test_lemma_d1_family;
          Alcotest.test_case "brave pair bullets (Def 4.28)" `Quick test_brave_pair ] );
      ( "emulation",
        [ Alcotest.test_case "reflexivity (Def 4.26)" `Quick test_emulation_reflexive;
          Alcotest.test_case "detects broken ideal" `Quick test_emulation_detects_leaky_ideal;
          Alcotest.test_case "Thm 4.30 composite simulator" `Quick test_composite_simulator_shape;
          Alcotest.test_case "Check_failed printer" `Quick test_emulation_check_failed_printer ] ) ]
