(* Protocol-level tests for the cdse_serve daemon.

   Every test starts a fresh in-process server on its own temp socket and
   talks to it through the blocking test client
   (test/support/serve_client.ml), which shares no connection code with
   the server. The load-bearing checks are differential: whatever the
   daemon replies — cold, cached, or resumed from a shallower frontier —
   must decode to a distribution bit-identical (items, order, rationals,
   truncation tag and deficit) to an in-process [Measure.exec_dist] and,
   for the deepening test, to the naive oracle. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_testkit
module Json = Cdse_serve.Json
module Codec = Cdse_serve.Codec
module Protocol = Cdse_serve.Protocol
module Engine = Cdse_serve.Engine
module Server = Cdse_serve.Server
module Client = Serve_client

let qtest = QCheck_alcotest.to_alcotest

(* Per-request domain count: 1 by default, CDSE_TEST_DOMAINS when the CI
   leg asks for a multicore replay of the whole protocol battery. *)
let test_domains =
  match Option.bind (Sys.getenv_opt "CDSE_TEST_DOMAINS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 1

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "cdse-t%d-%d.sock" (Unix.getpid ()) !sock_counter)

let with_server ?workers ?cache_cap ?max_queue f =
  let socket = fresh_socket () in
  let server = Server.start ?workers ?cache_cap ?max_queue ~socket () in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server socket)

let with_client ?workers ?cache_cap ?max_queue f =
  with_server ?workers ?cache_cap ?max_queue (fun server socket ->
      let c = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f server c))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Request builders *)

let model_coin = Json.Obj [ ("kind", Json.Str "coin") ]

let model_walk span =
  Json.Obj [ ("kind", Json.Str "random_walk"); ("span", Json.Num (float_of_int span)) ]

let model_rauto seed =
  Json.Obj
    [
      ("kind", Json.Str "random_auto");
      ("seed", Json.Num (float_of_int seed));
      ("states", Json.Num 5.);
      ("actions", Json.Num 3.);
    ]

let sched_json ?fault_budget ?bound kind =
  Json.Obj
    (("kind", Json.Str kind)
    :: (match fault_budget with
       | Some k -> [ ("fault_budget", Json.Num (float_of_int k)) ]
       | None -> [])
    @ match bound with
      | Some b -> [ ("bound", Json.Num (float_of_int b)) ]
      | None -> [])

let measure_fields ?(compress = "off") ?max_execs ?max_width ~model ~sched
    ~depth () =
  [
    ("op", Json.Str "measure");
    ("model", model);
    ("sched", sched);
    ("depth", Json.Num (float_of_int depth));
    ("compress", Json.Str compress);
    ("domains", Json.Num (float_of_int test_domains));
  ]
  @ (match max_execs with
    | Some n -> [ ("max_execs", Json.Num (float_of_int n)) ]
    | None -> [])
  @
  match max_width with
  | Some n -> [ ("max_width", Json.Num (float_of_int n)) ]
  | None -> []

(* Reply dissection *)

let expect_ok (r : Client.reply) =
  if not r.Client.r_ok then
    Alcotest.failf "expected ok reply, got error: %s" (Json.to_string r.Client.r_body);
  r.Client.r_body

let expect_error (r : Client.reply) =
  if r.Client.r_ok then
    Alcotest.failf "expected error reply, got: %s" (Json.to_string r.Client.r_body);
  r.Client.r_body

let dist_of_result body = Codec.dist_of_json (Client.field "dist" body)

let items_identical d1 d2 =
  let i1 = Dist.items d1 and i2 = Dist.items d2 in
  List.length i1 = List.length i2
  && List.for_all2
       (fun (e, p) (e', p') -> Exec.compare e e' = 0 && Rat.equal p p')
       i1 i2

let check_identical what served expected =
  Alcotest.(check bool)
    (what ^ ": served distribution bit-identical to in-process")
    true
    (items_identical served expected
    && Rat.equal (Dist.deficit served) (Dist.deficit expected))

(* ------------------------------------------------------------ round trips *)

let test_ping_pong () =
  with_client (fun _ c ->
      let body = expect_ok (Client.ping c) in
      Alcotest.(check string) "pong" "pong" (Client.str body))

let test_measure_roundtrip () =
  with_client (fun _ c ->
      let r =
        expect_ok
          (Client.request c
             (measure_fields ~model:model_coin ~sched:(sched_json "uniform")
                ~depth:3 ()))
      in
      Alcotest.(check string) "exact tag" "exact" (Client.str (Client.field "tag" r));
      Alcotest.(check string) "no loss" "0" (Client.str (Client.field "lost" r));
      let auto = Cdse_gen.Workloads.coin ~p:Rat.half "c" in
      check_identical "coin depth 3" (dist_of_result r)
        (Measure.exec_dist ~domains:test_domains auto (Scheduler.uniform auto)
           ~depth:3))

let test_reach_roundtrip () =
  with_client (fun _ c ->
      let auto = Cdse_gen.Workloads.coin ~p:Rat.half "c" in
      let sched = Scheduler.uniform auto in
      let dist = Measure.exec_dist auto sched ~depth:3 in
      (* Target: the last state of the first completed execution. *)
      let target = Exec.lstate (fst (List.hd (Dist.items dist))) in
      let expected =
        Dist.fold
          (fun acc e p ->
            if List.exists (Value.equal target) (Exec.states e) then
              Rat.add acc p
            else acc)
          Rat.zero dist
      in
      let r =
        expect_ok
          (Client.request c
             (( "state",
                Json.Str (Cdse_util.Bits.to_string (Value.to_bits target)) )
             :: ("op", Json.Str "reach")
             :: List.remove_assoc "op"
                  (measure_fields ~model:model_coin
                     ~sched:(sched_json "uniform") ~depth:3 ())))
      in
      Alcotest.(check string)
        "reach probability exact" (Rat.to_string expected)
        (Client.str (Client.field "prob" r)))

let test_emulate_roundtrip () =
  with_client (fun _ c ->
      let r =
        expect_ok
          (Client.request c
             [
               ("op", Json.Str "emulate");
               ("protocol", Json.Str "channel");
               ("broken", Json.Bool false);
             ])
      in
      (match Client.field "holds" r with
      | Json.Bool true -> ()
      | j -> Alcotest.failf "secure channel should emulate: %s" (Json.to_string j));
      Alcotest.(check string) "zero distance" "0"
        (Client.str (Client.field "worst" r));
      let r =
        expect_ok
          (Client.request c
             [
               ("op", Json.Str "emulate");
               ("protocol", Json.Str "channel");
               ("broken", Json.Bool true);
             ])
      in
      match Client.field "holds" r with
      | Json.Bool false -> ()
      | j -> Alcotest.failf "leaky channel should not emulate: %s" (Json.to_string j))

(* ------------------------------------------------------- malformed input *)

let test_malformed_requests () =
  with_client (fun _ c ->
      let error_field fields =
        let e = expect_error (Client.request c fields) in
        ( Client.str (Client.field "kind" e),
          Client.str (Client.field "field" e) )
      in
      (* Unparseable JSON: the id is unrecoverable, the reply says so. *)
      Client.send_line c "this is not json";
      let r = Client.reply_of_line (Client.recv_line c) in
      Alcotest.(check bool) "garbage: error reply" false r.Client.r_ok;
      Alcotest.(check bool) "garbage: id is null" true (r.Client.r_id = None);
      Alcotest.(check string) "garbage: protocol kind" "protocol"
        (Client.str (Client.field "kind" r.Client.r_body));
      (* Structured failures name the offending field. *)
      Alcotest.(check (pair string string))
        "unknown op" ("protocol", "op")
        (error_field [ ("op", Json.Str "frobnicate") ]);
      Alcotest.(check (pair string string))
        "missing model" ("protocol", "model")
        (error_field [ ("op", Json.Str "measure") ]);
      Alcotest.(check (pair string string))
        "bad model kind" ("protocol", "model.kind")
        (error_field
           [
             ("op", Json.Str "measure");
             ("model", Json.Obj [ ("kind", Json.Str "nope") ]);
           ]);
      Alcotest.(check (pair string string))
        "bad depth" ("protocol", "depth")
        (error_field
           [
             ("op", Json.Str "measure");
             ("model", model_coin);
             ("sched", sched_json "uniform");
             ("depth", Json.Str "three");
           ]);
      (* The connection survives every rejected request. *)
      let body = expect_ok (Client.ping c) in
      Alcotest.(check string) "connection still usable" "pong" (Client.str body))

let test_exception_printers () =
  let rendered_p =
    Printexc.to_string
      (Server.Protocol_error
         { id = Some 7; field = "model.kind"; msg = "unknown model kind" })
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "Protocol_error printer mentions %S" sub)
        true
        (contains ~sub rendered_p))
    [ "Protocol_error"; "id 7"; "model.kind"; "unknown model kind"; "resend" ];
  let rendered_o =
    Printexc.to_string
      (Server.Overloaded { id = Some 42; queue_depth = 64; cap = 64 })
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "Overloaded printer mentions %S" sub)
        true
        (contains ~sub rendered_o))
    [ "Overloaded"; "id 42"; "64"; "--max-queue" ]

(* ------------------------------------------------------------- cache hits *)

let test_cache_hit_bit_identity () =
  with_client (fun _ c ->
      let fields =
        measure_fields ~model:(model_rauto 1234) ~sched:(sched_json "uniform")
          ~depth:4 ()
      in
      let cold = expect_ok (Client.request c fields) in
      let warm = expect_ok (Client.request c fields) in
      Alcotest.(check bool) "cold is uncached" false
        (Client.field "cached" cold = Json.Bool true);
      Alcotest.(check bool) "warm is cached" true
        (Client.field "cached" warm = Json.Bool true);
      (* The cached reply must be byte-for-byte the cold one (same dist,
         same tag, same deficit). *)
      Alcotest.(check string)
        "identical rendering"
        (Json.to_string (Client.field "dist" cold))
        (Json.to_string (Client.field "dist" warm));
      Alcotest.(check string) "identical tag"
        (Client.str (Client.field "tag" cold))
        (Client.str (Client.field "tag" warm));
      let rng = Rng.make 1234 in
      let auto =
        Cdse_gen.Random_auto.make ~rng ~name:"ca" ~n_states:5 ~n_actions:3 ()
      in
      check_identical "warm vs in-process" (dist_of_result warm)
        (Measure.exec_dist auto (Scheduler.uniform auto) ~depth:4))

let test_budgeted_cache_hit () =
  with_client (fun _ c ->
      let fields =
        measure_fields ~max_execs:3 ~model:(model_rauto 99)
          ~sched:(sched_json "uniform") ~depth:4 ()
      in
      let cold = expect_ok (Client.request c fields) in
      let warm = expect_ok (Client.request c fields) in
      let rng = Rng.make 99 in
      let auto =
        Cdse_gen.Random_auto.make ~rng ~name:"ca" ~n_states:5 ~n_actions:3 ()
      in
      let tag, lost =
        match
          Measure.exec_dist_budgeted ~max_execs:3 auto (Scheduler.uniform auto)
            ~depth:4
        with
        | `Exact _ -> ("exact", Rat.zero)
        | `Truncated (_, l) -> ("truncated", l)
      in
      List.iter
        (fun (name, reply) ->
          Alcotest.(check string)
            (name ^ ": tag matches in-process")
            tag
            (Client.str (Client.field "tag" reply));
          Alcotest.(check string)
            (name ^ ": lost mass matches in-process")
            (Rat.to_string lost)
            (Client.str (Client.field "lost" reply)))
        [ ("cold", cold); ("warm", warm) ];
      Alcotest.(check bool) "warm is cached" true
        (Client.field "cached" warm = Json.Bool true);
      Alcotest.(check string) "identical rendering"
        (Json.to_string (Client.field "dist" cold))
        (Json.to_string (Client.field "dist" warm)))

(* ---------------------------------------------------- incremental deepening *)

(* Serve depth d, then d + k on the same line: the daemon must report the
   resume and the result must be bit-identical to a one-shot in-process
   measure AND to the naive oracle at d + k. *)
let test_incremental_deepening () =
  with_client (fun _ c ->
      List.iter
        (fun (name, model_json, build) ->
          let fields depth =
            measure_fields ~model:model_json ~sched:(sched_json "uniform")
              ~depth ()
          in
          let shallow = expect_ok (Client.request c (fields 3)) in
          Alcotest.(check bool)
            (name ^ ": shallow run is from scratch")
            true
            (Client.field "resumed_from" shallow = Json.Null);
          let deep = expect_ok (Client.request c (fields 6)) in
          Alcotest.(check int)
            (name ^ ": deep run resumed from the cached depth-3 frontier")
            3
            (Client.int (Client.field "resumed_from" deep));
          let auto = build () in
          let sched = Scheduler.uniform auto in
          check_identical
            (name ^ ": resumed vs one-shot")
            (dist_of_result deep)
            (Measure.exec_dist ~domains:test_domains auto sched ~depth:6);
          check_identical
            (name ^ ": resumed vs oracle")
            (dist_of_result deep)
            (Oracle.exec_dist auto sched ~depth:6))
        [
          ( "walk",
            model_walk 4,
            fun () -> Cdse_gen.Workloads.random_walk ~span:4 "w" );
          ( "rauto",
            model_rauto 77,
            fun () ->
              Cdse_gen.Random_auto.make ~rng:(Rng.make 77) ~name:"ca"
                ~n_states:5 ~n_actions:3 () );
        ])

(* ------------------------------------------------------- cache soundness *)

(* qcheck property against the socket-free Engine with a tiny cache: any
   interleaving of models, depths and compression modes — with LRU
   eviction constantly kicking entries and frontiers out — must answer
   every query bit-identically to a fresh in-process measure. This is the
   property that rules out stale entries, cross-model or cross-compress
   key collisions, and unsound frontier reuse. *)
let prop_cache_sound =
  let open QCheck in
  let query_of (m, s, depth, comp) : Protocol.query =
    let q_model : Protocol.model =
      match m mod 4 with
      | 0 -> Protocol.Coin { p = Rat.half }
      | 1 -> Protocol.Random_walk { span = 3 }
      | 2 -> Protocol.Counter { bound = 3 }
      | _ ->
          Protocol.Random_auto
            { seed = 7 * (m mod 2); states = 4; actions = 3; branching = 2 }
    in
    {
      Protocol.q_model;
      q_sched =
        {
          Protocol.s_kind =
            (match s mod 3 with
            | 0 -> Protocol.Uniform
            | 1 -> Protocol.First_enabled
            | _ -> Protocol.Round_robin);
          s_fault_budget = None;
          s_bound = None;
        };
      q_depth = depth mod 5;
      q_compress = (if comp mod 2 = 0 then `Off else `Hcons);
      q_engine = `Auto;
      q_domains = Some test_domains;
      q_memo = false;
      q_max_execs = None;
      q_max_width = None;
    }
  in
  Test.make ~count:30 ~name:"serve cache: any interleaving answers fresh"
    (list_of_size Gen.(int_range 1 12)
       (quad (int_bound 7) (int_bound 5) (int_bound 6) (int_bound 1)))
    (fun ops ->
      let engine = Engine.create ~cache_cap:4 ~domains:test_domains () in
      List.for_all
        (fun op ->
          let q = query_of op in
          let served = (Engine.measure engine q).Engine.m_dist in
          let auto = Protocol.build_model q.Protocol.q_model in
          let sched = Protocol.build_sched auto q.Protocol.q_sched in
          let fresh =
            Measure.exec_dist ~compress:q.Protocol.q_compress auto sched
              ~depth:q.Protocol.q_depth
          in
          items_identical served fresh)
        ops)

(* --------------------------------------------------------- concurrency *)

(* Four clients fire the same query mix in different orders against a
   2-worker server; every reply must be bit-identical to the in-process
   reference regardless of which requests hit cache, resumed, or raced. *)
let test_concurrent_clients () =
  with_server ~workers:2 (fun _ socket ->
      let specs =
        [
          (model_rauto 5, 3);
          (model_walk 4, 4);
          (model_rauto 5, 5);
          (model_coin, 3);
          (model_rauto 5, 3);
        ]
      in
      let in_process (m, depth) =
        let auto =
          match Json.member "kind" m with
          | Some (Json.Str "coin") -> Cdse_gen.Workloads.coin ~p:Rat.half "c"
          | Some (Json.Str "random_walk") ->
              Cdse_gen.Workloads.random_walk ~span:4 "w"
          | _ ->
              Cdse_gen.Random_auto.make ~rng:(Rng.make 5) ~name:"ca"
                ~n_states:5 ~n_actions:3 ()
        in
        Measure.exec_dist auto (Scheduler.uniform auto) ~depth
      in
      let expected = List.map in_process specs in
      let failures = Atomic.make 0 in
      let client_thread rot =
        let c = Client.connect socket in
        Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
            let order =
              (* Rotate the query list so clients interleave differently. *)
              let rec rot_n n l =
                if n = 0 then l
                else match l with [] -> [] | x :: tl -> rot_n (n - 1) (tl @ [ x ])
              in
              rot_n rot (List.combine specs expected)
            in
            List.iter
              (fun (((m, depth) as _spec), exp) ->
                let r =
                  Client.request c
                    (measure_fields ~model:m ~sched:(sched_json "uniform")
                       ~depth ())
                in
                if not r.Client.r_ok then Atomic.incr failures
                else if
                  not (items_identical (dist_of_result r.Client.r_body) exp)
                then Atomic.incr failures)
              order)
      in
      let threads = List.init 4 (fun i -> Thread.create client_thread i) in
      List.iter Thread.join threads;
      Alcotest.(check int) "all concurrent replies bit-identical" 0
        (Atomic.get failures))

(* ----------------------------------------------------------- shutdown *)

let test_shutdown_drains () =
  let socket = fresh_socket () in
  let server = Server.start ~workers:2 ~socket () in
  let a = Client.connect socket in
  let b = Client.connect socket in
  (* Pipeline three measures on A without reading, so at least two are
     queued or in-flight when the shutdown lands. *)
  let fields depth =
    measure_fields ~model:(model_rauto 3) ~sched:(sched_json "uniform") ~depth ()
  in
  List.iteri
    (fun i depth ->
      Client.send_line a
        (Json.to_string
           (Json.Obj (("id", Json.Num (float_of_int (100 + i))) :: fields depth))))
    [ 4; 5; 6 ];
  (* First reply means the daemon's reader has long since enqueued the
     rest (it reads the whole pipeline before the first measure finishes);
     a short grace beat keeps the race theoretical. *)
  let first = Client.reply_of_line (Client.recv_line a) in
  Alcotest.(check bool) "first pipelined reply ok" true first.Client.r_ok;
  Thread.delay 0.1;
  let bye = expect_ok (Client.shutdown b) in
  Alcotest.(check string) "shutdown acknowledged" "bye" (Client.str bye);
  (* The drain guarantee: both remaining pipelined requests still reply. *)
  let remaining = List.map (fun _ -> Client.reply_of_line (Client.recv_line a)) [ (); () ] in
  List.iter
    (fun (r : Client.reply) ->
      Alcotest.(check bool) "drained reply ok" true r.Client.r_ok)
    remaining;
  Client.close a;
  Client.close b;
  Server.wait server;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket);
  (match Client.connect ~retries:0 socket with
  | c ->
      Client.close c;
      Alcotest.fail "connect after shutdown should fail"
  | exception Unix.Unix_error _ -> ())

(* ------------------------------------------------------------- runner *)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping round-trip" `Quick test_ping_pong;
          Alcotest.test_case "measure round-trip" `Quick test_measure_roundtrip;
          Alcotest.test_case "reach round-trip" `Quick test_reach_roundtrip;
          Alcotest.test_case "emulate round-trip" `Quick test_emulate_roundtrip;
          Alcotest.test_case "malformed requests get error replies" `Quick
            test_malformed_requests;
          Alcotest.test_case "exception printers" `Quick test_exception_printers;
        ] );
      ( "cache",
        [
          Alcotest.test_case "cache hit is bit-identical" `Quick
            test_cache_hit_bit_identity;
          Alcotest.test_case "budgeted results cache tag and deficit" `Quick
            test_budgeted_cache_hit;
          qtest prop_cache_sound;
        ] );
      ( "deepening",
        [
          Alcotest.test_case "depth d then d+k equals one-shot" `Quick
            test_incremental_deepening;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "concurrent clients, identical answers" `Quick
            test_concurrent_clients;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "shutdown drains in-flight requests" `Quick
            test_shutdown_drains;
        ] );
    ]
