(* Tests for the cdse_prob substrate: bignums, exact rationals, exact
   discrete distributions, statistical distance, deterministic RNG. *)

open Cdse_prob

let qtest = QCheck_alcotest.to_alcotest

(* ---------------------------------------------------------------- Bignat *)

let nat_of = Bignat.of_int

let big_arb =
  (* Bignats well beyond the int range, built multiplicatively. *)
  let gen =
    QCheck.Gen.(
      map2
        (fun a b -> Bignat.mul (Bignat.pow (nat_of a) 7) (nat_of (b + 1)))
        (int_range 2 1000) (int_bound 1000))
  in
  QCheck.make ~print:Bignat.to_string gen

let test_bignat_basics () =
  Alcotest.(check bool) "zero is zero" true (Bignat.is_zero Bignat.zero);
  Alcotest.(check string) "zero" "0" (Bignat.to_string Bignat.zero);
  Alcotest.(check string) "42" "42" (Bignat.to_string (nat_of 42));
  Alcotest.(check (option int)) "to_int" (Some 42) (Bignat.to_int_opt (nat_of 42))

let test_bignat_big_literal () =
  let a = Bignat.of_string "123456789012345678901234567890" in
  Alcotest.(check string) "decimal roundtrip" "123456789012345678901234567890" (Bignat.to_string a);
  Alcotest.(check (option int)) "does not fit" None (Bignat.to_int_opt a);
  let b = Bignat.mul a a in
  Alcotest.(check string) "square"
    "15241578753238836750495351562536198787501905199875019052100"
    (Bignat.to_string b)

let test_bignat_sub_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Bignat.sub: negative result") (fun () ->
      ignore (Bignat.sub (nat_of 3) (nat_of 5)))

let test_bignat_div_by_zero () =
  Alcotest.check_raises "div0" Division_by_zero (fun () ->
      ignore (Bignat.divmod (nat_of 3) Bignat.zero))

let test_bignat_pow () =
  Alcotest.(check string) "2^100" "1267650600228229401496703205376"
    (Bignat.to_string (Bignat.pow Bignat.two 100))

let prop_nat_add_matches_int =
  QCheck.Test.make ~name:"bignat: add matches int" QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) -> Bignat.to_int_opt (Bignat.add (nat_of a) (nat_of b)) = Some (a + b))

let prop_nat_mul_matches_int =
  QCheck.Test.make ~name:"bignat: mul matches int" QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (a, b) -> Bignat.to_int_opt (Bignat.mul (nat_of a) (nat_of b)) = Some (a * b))

let prop_big_add_comm =
  QCheck.Test.make ~name:"bignat: a+b = b+a (big)" (QCheck.pair big_arb big_arb) (fun (a, b) ->
      Bignat.equal (Bignat.add a b) (Bignat.add b a))

let prop_big_mul_assoc =
  QCheck.Test.make ~name:"bignat: (ab)c = a(bc) (big)" (QCheck.triple big_arb big_arb big_arb)
    (fun (a, b, c) -> Bignat.equal (Bignat.mul (Bignat.mul a b) c) (Bignat.mul a (Bignat.mul b c)))

let prop_big_distrib =
  QCheck.Test.make ~name:"bignat: a(b+c) = ab+ac (big)" (QCheck.triple big_arb big_arb big_arb)
    (fun (a, b, c) ->
      Bignat.equal (Bignat.mul a (Bignat.add b c)) (Bignat.add (Bignat.mul a b) (Bignat.mul a c)))

let prop_big_sub_inverse =
  QCheck.Test.make ~name:"bignat: (a+b)-b = a (big)" (QCheck.pair big_arb big_arb) (fun (a, b) ->
      Bignat.equal (Bignat.sub (Bignat.add a b) b) a)

let prop_big_divmod =
  QCheck.Test.make ~name:"bignat: a = q·b + r, r < b (big)" (QCheck.pair big_arb big_arb)
    (fun (a, b) ->
      QCheck.assume (not (Bignat.is_zero b));
      let q, r = Bignat.divmod a b in
      Bignat.equal a (Bignat.add (Bignat.mul q b) r) && Bignat.compare r b < 0)

let prop_big_gcd_divides =
  QCheck.Test.make ~name:"bignat: gcd divides both (big)" (QCheck.pair big_arb big_arb)
    (fun (a, b) ->
      QCheck.assume (not (Bignat.is_zero a) && not (Bignat.is_zero b));
      let g = Bignat.gcd a b in
      let _, r1 = Bignat.divmod a g and _, r2 = Bignat.divmod b g in
      Bignat.is_zero r1 && Bignat.is_zero r2)

let prop_big_string_roundtrip =
  QCheck.Test.make ~name:"bignat: decimal roundtrip (big)" big_arb (fun a ->
      Bignat.equal a (Bignat.of_string (Bignat.to_string a)))

let prop_big_bits_roundtrip =
  QCheck.Test.make ~name:"bignat: bits roundtrip (big)" big_arb (fun a ->
      Bignat.equal a (Bignat.of_bits (Bignat.to_bits a)))

let prop_big_compare_consistent =
  QCheck.Test.make ~name:"bignat: compare vs sub (big)" (QCheck.pair big_arb big_arb)
    (fun (a, b) ->
      let c = Bignat.compare a b in
      if c <= 0 then not (Bignat.is_zero (Bignat.sub b a)) || c = 0 else not (Bignat.is_zero (Bignat.sub a b)))

let prop_shift_is_mul_pow2 =
  QCheck.Test.make ~name:"bignat: shift_left k = ·2^k" (QCheck.pair big_arb (QCheck.int_bound 40))
    (fun (a, k) -> Bignat.equal (Bignat.shift_left a k) (Bignat.mul a (Bignat.pow Bignat.two k)))

(* ------------------------------------------------------------------- Rat *)

let rat_arb =
  let gen =
    QCheck.Gen.(
      map2 (fun n d -> Rat.of_ints n (d + 1)) (int_range (-1000) 1000) (int_bound 1000))
  in
  QCheck.make ~print:Rat.to_string gen

let test_rat_normalization () =
  Alcotest.(check string) "6/8 = 3/4" "3/4" (Rat.to_string (Rat.of_ints 6 8));
  Alcotest.(check string) "-6/8" "-3/4" (Rat.to_string (Rat.of_ints (-6) 8));
  Alcotest.(check string) "6/-8" "-3/4" (Rat.to_string (Rat.of_ints 6 (-8)));
  Alcotest.(check string) "0/5 = 0" "0" (Rat.to_string (Rat.of_ints 0 5));
  Alcotest.(check bool) "1/2 = half" true (Rat.equal Rat.half (Rat.of_ints 1 2))

let test_rat_arith () =
  let third = Rat.of_ints 1 3 in
  Alcotest.(check string) "1/3+1/2" "5/6" (Rat.to_string (Rat.add third Rat.half));
  Alcotest.(check string) "1/3-1/2" "-1/6" (Rat.to_string (Rat.sub third Rat.half));
  Alcotest.(check string) "1/3*1/2" "1/6" (Rat.to_string (Rat.mul third Rat.half));
  Alcotest.(check string) "(1/3)/(1/2)" "2/3" (Rat.to_string (Rat.div third Rat.half));
  Alcotest.(check string) "(1/2)^-2" "4" (Rat.to_string (Rat.pow Rat.half (-2)))

let test_rat_of_string () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Rat.to_string (Rat.of_string s)))
    [ "3/4"; "-3/4"; "7"; "0"; "123456789123456789123456789/2" ]

let test_rat_div_zero () =
  Alcotest.check_raises "div0" Division_by_zero (fun () -> ignore (Rat.div Rat.one Rat.zero));
  Alcotest.check_raises "inv0" Division_by_zero (fun () -> ignore (Rat.inv Rat.zero))

let prop_rat_add_assoc =
  QCheck.Test.make ~name:"rat: (a+b)+c = a+(b+c)" (QCheck.triple rat_arb rat_arb rat_arb)
    (fun (a, b, c) -> Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)))

let prop_rat_mul_distrib =
  QCheck.Test.make ~name:"rat: a(b+c) = ab+ac" (QCheck.triple rat_arb rat_arb rat_arb)
    (fun (a, b, c) -> Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_rat_sub_add =
  QCheck.Test.make ~name:"rat: (a-b)+b = a" (QCheck.pair rat_arb rat_arb) (fun (a, b) ->
      Rat.equal (Rat.add (Rat.sub a b) b) a)

let prop_rat_div_mul =
  QCheck.Test.make ~name:"rat: (a/b)·b = a" (QCheck.pair rat_arb rat_arb) (fun (a, b) ->
      QCheck.assume (not (Rat.is_zero b));
      Rat.equal (Rat.mul (Rat.div a b) b) a)

let prop_rat_compare_antisym =
  QCheck.Test.make ~name:"rat: compare antisymmetric" (QCheck.pair rat_arb rat_arb) (fun (a, b) ->
      Rat.compare a b = -Rat.compare b a)

let prop_rat_to_float =
  QCheck.Test.make ~name:"rat: to_float close" rat_arb (fun a ->
      let f = Rat.to_float a in
      QCheck.assume (not (Rat.is_zero a));
      Float.abs (f -. Rat.to_float a) < 1e-9)

let prop_rat_string_roundtrip =
  QCheck.Test.make ~name:"rat: string roundtrip" rat_arb (fun a ->
      Rat.equal a (Rat.of_string (Rat.to_string a)))

let prop_rat_bits_roundtrip =
  QCheck.Test.make ~name:"rat: bits roundtrip" rat_arb (fun a ->
      Rat.equal a (Rat.of_bits (Rat.to_bits a)))

let test_rat_to_float_huge () =
  (* Exercises the >52-bit mantissa path of to_float. *)
  let huge = Rat.make ~sign:1 ~num:(Bignat.pow Bignat.two 200) ~den:(Bignat.pow Bignat.two 199) in
  Alcotest.(check (float 1e-12)) "2^200/2^199 = 2." 2.0 (Rat.to_float huge)

(* Rationals whose numerator or denominator straddles the native-int
   (Bignat.to_int_opt) boundary, so that arithmetic on them crosses the
   small-int / Bignat promotion edge in both directions. *)
let rat_boundary_arb =
  let gen =
    QCheck.Gen.(
      map
        (fun ((n, d), (k, num_side)) ->
          let base = Rat.of_ints n (d + 1) in
          let big = Rat.pow (Rat.of_int 2) k in
          if num_side then Rat.mul base big else Rat.div base big)
        (pair
           (pair (int_range (-1000) 1000) (int_bound 1000))
           (pair (int_range 55 70) bool)))
  in
  QCheck.make ~print:Rat.to_string gen

let prop_rat_promote_add_sub =
  QCheck.Test.make ~name:"rat: (a+h)-h = a across promotion"
    (QCheck.pair rat_arb rat_boundary_arb) (fun (a, h) ->
      Rat.equal (Rat.sub (Rat.add a h) h) a)

let prop_rat_promote_mul_div =
  QCheck.Test.make ~name:"rat: (a·h)/h = a across promotion"
    (QCheck.pair rat_arb rat_boundary_arb) (fun (a, h) ->
      QCheck.assume (not (Rat.is_zero h));
      Rat.equal (Rat.div (Rat.mul a h) h) a)

let prop_rat_promote_compare =
  QCheck.Test.make ~name:"rat: compare = sign of difference (boundary)"
    (QCheck.pair rat_boundary_arb rat_boundary_arb) (fun (a, b) ->
      Rat.compare a b = Rat.sign (Rat.sub a b))

let prop_rat_promote_pow =
  QCheck.Test.make ~name:"rat: pow agrees with iterated mul (boundary)" rat_boundary_arb
    (fun h -> Rat.equal (Rat.pow h 3) (Rat.mul h (Rat.mul h h)))

let prop_rat_promote_string_roundtrip =
  QCheck.Test.make ~name:"rat: string roundtrip (boundary)" rat_boundary_arb (fun a ->
      Rat.equal a (Rat.of_string (Rat.to_string a)))

let prop_rat_promote_bits_roundtrip =
  QCheck.Test.make ~name:"rat: bits roundtrip (boundary)" rat_boundary_arb (fun a ->
      Rat.equal a (Rat.of_bits (Rat.to_bits a)))

let test_rat_int_edges () =
  (* max_int and min_int operands sit exactly on the Bignat.to_int_opt
     demotion edge (|min_int| = max_int + 1 does not fit a native int). *)
  let maxr = Rat.of_int max_int in
  let above = Rat.add maxr Rat.one in
  Alcotest.(check string) "max_int+1 prints"
    (Bignat.to_string (Bignat.add (Bignat.of_int max_int) Bignat.one))
    (Rat.to_string above);
  Alcotest.(check bool) "demotes back under the edge" true
    (Rat.equal maxr (Rat.sub above Rat.one));
  Alcotest.(check bool) "min_int = -(max_int+1)" true
    (Rat.equal (Rat.of_int min_int) (Rat.neg above));
  Alcotest.(check bool) "compare across the edge" true (Rat.compare maxr above < 0);
  Alcotest.(check string) "min_int/min_int = 1" "1" (Rat.to_string (Rat.of_ints min_int min_int));
  let inv_min = Rat.of_ints 1 min_int in
  Alcotest.(check bool) "1/min_int string roundtrip" true
    (Rat.equal inv_min (Rat.of_string (Rat.to_string inv_min)));
  Alcotest.(check bool) "1/min_int bits roundtrip" true
    (Rat.equal inv_min (Rat.of_bits (Rat.to_bits inv_min)))

(* ------------------------------------------------------------------ Dist *)

let icmp = Int.compare
let d_of l = Dist.make ~compare:icmp (List.map (fun (x, n, d) -> (x, Rat.of_ints n d)) l)

let small_dist_arb =
  (* Proper distributions over small int supports with denominators 1..12. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let* xs = list_repeat n (int_bound 8) in
      let* ws = list_repeat n (int_range 1 12) in
      let total = List.fold_left ( + ) 0 ws in
      return
        (Dist.make ~compare:icmp
           (List.map2 (fun x w -> (x, Rat.of_ints w total)) xs ws)))
  in
  QCheck.make ~print:(Format.asprintf "%a" (Dist.pp Format.pp_print_int)) gen

let test_dist_normalize () =
  let d = d_of [ (1, 1, 4); (2, 1, 4); (1, 1, 4); (3, 0, 1); (2, 1, 4) ] in
  Alcotest.(check int) "duplicates merged, zeros dropped" 2 (Dist.size d);
  Alcotest.(check string) "p(1)" "1/2" (Rat.to_string (Dist.prob d 1));
  Alcotest.(check string) "p(2)" "1/2" (Rat.to_string (Dist.prob d 2));
  Alcotest.(check string) "p(3)" "0" (Rat.to_string (Dist.prob d 3));
  Alcotest.(check bool) "proper" true (Dist.is_proper d)

let test_dist_rejects () =
  Alcotest.check_raises "mass > 1" (Dist.Invalid "Dist: mass 3/2 exceeds 1") (fun () ->
      ignore (d_of [ (1, 1, 1); (2, 1, 2) ]));
  Alcotest.check_raises "negative" (Dist.Invalid "Dist: negative probability -1/2") (fun () ->
      ignore (d_of [ (1, -1, 2) ]))

let test_dist_dirac () =
  let d = Dist.dirac ~compare:icmp 7 in
  Alcotest.(check bool) "proper" true (Dist.is_proper d);
  Alcotest.(check string) "p(7)" "1" (Rat.to_string (Dist.prob d 7));
  Alcotest.(check (list int)) "support" [ 7 ] (Dist.support d)

let test_dist_subdist () =
  let d = d_of [ (1, 1, 4); (2, 1, 4) ] in
  Alcotest.(check bool) "not proper" false (Dist.is_proper d);
  Alcotest.(check string) "deficit" "1/2" (Rat.to_string (Dist.deficit d))

let test_dist_product () =
  let a = d_of [ (0, 1, 2); (1, 1, 2) ] in
  let b = d_of [ (0, 1, 3); (1, 2, 3) ] in
  let p = Dist.product a b in
  Alcotest.(check int) "4 outcomes" 4 (Dist.size p);
  Alcotest.(check string) "p(1,1)" "1/3" (Rat.to_string (Dist.prob p (1, 1)));
  Alcotest.(check string) "p(0,0)" "1/6" (Rat.to_string (Dist.prob p (0, 0)))

let test_dist_product_list () =
  let coin = d_of [ (0, 1, 2); (1, 1, 2) ] in
  let p = Dist.product_list ~compare:icmp [ coin; coin; coin ] in
  Alcotest.(check int) "8 outcomes" 8 (Dist.size p);
  Alcotest.(check string) "p[1;0;1]" "1/8" (Rat.to_string (Dist.prob p [ 1; 0; 1 ]))

let test_dist_large_support () =
  (* Regression: the old list-based normalization recursed per support point
     (non-tail merge) and overflowed the stack around ~100k entries; the
     array representation must handle this size comfortably. *)
  let n = 100_000 in
  let p = Rat.of_ints 1 n in
  let d = Dist.make ~compare:icmp (List.init n (fun i -> (i, p))) in
  Alcotest.(check int) "size" n (Dist.size d);
  Alcotest.(check bool) "proper" true (Dist.is_proper d);
  Alcotest.(check string) "prob of a point" (Rat.to_string p) (Rat.to_string (Dist.prob d 54321));
  (* Duplicate-heavy input: every element appears twice, merged pairwise. *)
  let dup = List.init (2 * n) (fun i -> (i mod n, Rat.of_ints 1 (2 * n))) in
  let d2 = Dist.make ~compare:icmp dup in
  Alcotest.(check int) "merged size" n (Dist.size d2);
  Alcotest.(check bool) "merged proper" true (Dist.is_proper d2)

let test_dist_corresponds () =
  (* Definition 2.15: η ↔_f η'. *)
  let a = d_of [ (1, 1, 3); (2, 2, 3) ] in
  let b = d_of [ (10, 1, 3); (20, 2, 3) ] in
  Alcotest.(check bool) "bijective preserving" true (Dist.corresponds ~f:(fun x -> x * 10) a b);
  Alcotest.(check bool) "non-injective fails" false
    (Dist.corresponds ~f:(fun _ -> 10) a (Dist.dirac ~compare:icmp 10) = false |> not);
  let b' = d_of [ (10, 2, 3); (20, 1, 3) ] in
  Alcotest.(check bool) "probability mismatch fails" false (Dist.corresponds ~f:(fun x -> x * 10) a b')

let prop_dist_map_mass =
  QCheck.Test.make ~name:"dist: pushforward preserves mass" small_dist_arb (fun d ->
      Rat.equal (Dist.mass d) (Dist.mass (Dist.map ~compare:icmp (fun x -> x mod 3) d)))

let prop_dist_bind_mass =
  QCheck.Test.make ~name:"dist: bind of proper is proper" small_dist_arb (fun d ->
      let f x = Dist.uniform ~compare:icmp [ x; x + 1 ] in
      Dist.is_proper (Dist.bind ~compare:icmp d f))

let prop_dist_product_mass =
  QCheck.Test.make ~name:"dist: product mass multiplies" (QCheck.pair small_dist_arb small_dist_arb)
    (fun (a, b) -> Rat.equal (Dist.mass (Dist.product a b)) (Rat.mul (Dist.mass a) (Dist.mass b)))

let prop_dist_expect_const =
  QCheck.Test.make ~name:"dist: E[c] = c·mass" small_dist_arb (fun d ->
      Rat.equal (Dist.expect (fun _ -> Rat.of_int 5) d) (Rat.mul (Rat.of_int 5) (Dist.mass d)))

let prop_dist_filter_le =
  QCheck.Test.make ~name:"dist: filter shrinks mass" small_dist_arb (fun d ->
      Rat.compare (Dist.mass (Dist.filter (fun x -> x mod 2 = 0) d)) (Dist.mass d) <= 0)

(* ------------------------------------------------------------------ Stat *)

let test_tv_identical () =
  let d = d_of [ (1, 1, 2); (2, 1, 2) ] in
  Alcotest.(check string) "d(d,d) = 0" "0" (Rat.to_string (Stat.tv_distance d d))

let test_tv_disjoint () =
  let a = d_of [ (1, 1, 1) ] and b = d_of [ (2, 1, 1) ] in
  Alcotest.(check string) "disjoint = 1" "1" (Rat.to_string (Stat.tv_distance a b))

let test_tv_exact_value () =
  let a = d_of [ (1, 1, 2); (2, 1, 2) ] in
  let b = d_of [ (1, 1, 4); (2, 3, 4) ] in
  Alcotest.(check string) "1/4" "1/4" (Rat.to_string (Stat.tv_distance a b));
  Alcotest.(check string) "l1 = 1/2" "1/2" (Rat.to_string (Stat.l1_distance a b))

let test_tv_subdist_deficit () =
  (* A halting deficit is distinguishable mass. *)
  let a = d_of [ (1, 1, 1) ] and b = d_of [ (1, 1, 2) ] in
  Alcotest.(check string) "deficit counts" "1/2" (Rat.to_string (Stat.tv_distance a b))

let prop_tv_symmetric =
  QCheck.Test.make ~name:"stat: d(a,b) = d(b,a)" (QCheck.pair small_dist_arb small_dist_arb)
    (fun (a, b) -> Rat.equal (Stat.tv_distance a b) (Stat.tv_distance b a))

let prop_tv_triangle =
  QCheck.Test.make ~name:"stat: triangle inequality"
    (QCheck.triple small_dist_arb small_dist_arb small_dist_arb)
    (fun (a, b, c) ->
      Rat.compare (Stat.tv_distance a c) (Rat.add (Stat.tv_distance a b) (Stat.tv_distance b c)) <= 0)

let prop_tv_bounded =
  QCheck.Test.make ~name:"stat: 0 ≤ d ≤ 1" (QCheck.pair small_dist_arb small_dist_arb)
    (fun (a, b) ->
      let d = Stat.tv_distance a b in
      Rat.sign d >= 0 && Rat.compare d Rat.one <= 0)

let prop_tv_balanced_consistent =
  QCheck.Test.make ~name:"stat: balanced agrees with distance" (QCheck.pair small_dist_arb small_dist_arb)
    (fun (a, b) -> Stat.balanced ~eps:(Stat.tv_distance a b) a b)

let prop_max_gap_bounded_by_sup =
  QCheck.Test.make ~name:"stat: pointwise gap ≤ sup-set distance"
    (QCheck.pair small_dist_arb small_dist_arb)
    (fun (a, b) ->
      match Stat.max_gap_point a b with
      | None -> true
      | Some (_, g) -> Rat.compare g (Stat.sup_set_distance a b) <= 0)

let prop_sup_le_l1_le_2sup =
  QCheck.Test.make ~name:"stat: sup ≤ L1 ≤ 2·sup" (QCheck.pair small_dist_arb small_dist_arb)
    (fun (a, b) ->
      let sup = Stat.sup_set_distance a b and l1 = Stat.l1_distance a b in
      Rat.compare sup l1 <= 0 && Rat.compare l1 (Rat.mul (Rat.of_int 2) sup) <= 0)

let test_exact_geometric_sum () =
  (* Σ_{k=1..60} 2^-k + 2^-60 = 1 exactly: the kind of telescoping the
     measure computations rely on, far beyond float precision. *)
  let terms = List.init 60 (fun k -> Rat.pow Rat.half (k + 1)) in
  let total = Rat.add (Rat.sum terms) (Rat.pow Rat.half 60) in
  Alcotest.(check string) "exactly 1" "1" (Rat.to_string total)

(* ------------------------------------------------------------------- Rng *)

let test_rng_deterministic () =
  let a = Rng.make 42 and b = Rng.make 42 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b)

let test_rng_bounds () =
  let r = Rng.make 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.fail "out of bounds"
  done

let test_rng_split_independent () =
  let r = Rng.make 1 in
  let a, b = Rng.split r in
  let sa = List.init 10 (fun _ -> Rng.int a 1_000_000) in
  let sb = List.init 10 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "streams differ" true (sa <> sb)

let test_rng_shuffle_permutes () =
  let r = Rng.make 3 in
  let l = List.init 10 Fun.id in
  let s = Rng.shuffle r l in
  Alcotest.(check (list int)) "same multiset" l (List.sort Int.compare s)

let test_dist_sample_support () =
  let r = Rng.make 5 in
  let d = d_of [ (1, 1, 3); (2, 2, 3) ] in
  for _ = 1 to 200 do
    match Dist.sample r d with
    | Some x when x = 1 || x = 2 -> ()
    | Some _ -> Alcotest.fail "sample outside support"
    | None -> Alcotest.fail "proper dist halted"
  done

(* Exactness of the inverse-CDF draw: enumerate the complete fair-bit tree
   to depth 30, driving [sample_bits] with every prefix. A node whose bits
   run out before the draw resolves splits into its two children; a
   resolved node contributes its dyadic interval's width 2^-|prefix| to
   its outcome. The mass resolved to outcome 1 must bracket 1/3 to within
   the unresolved remainder (≤ 2^-30 ≈ 9.3e-10) — three orders of
   magnitude below the old sampler's fixed 1/1_000_003 grid spacing, which
   could only realize probabilities that are multiples of the grid. *)
let test_sample_exact_bernoulli_third () =
  let d = d_of [ (1, 1, 3); (2, 2, 3) ] in
  let depth = 30 in
  let p1 = ref Rat.zero and p2 = ref Rat.zero and unresolved = ref Rat.zero in
  let exception Out_of_bits in
  let rec go prefix w =
    let rest = ref prefix in
    let bit () =
      match !rest with
      | b :: tl ->
          rest := tl;
          b
      | [] -> raise Out_of_bits
    in
    match Dist.sample_bits bit d with
    | Some 1 -> p1 := Rat.add !p1 w
    | Some 2 -> p2 := Rat.add !p2 w
    | Some _ | None -> Alcotest.fail "sampler left the support"
    | exception Out_of_bits ->
        if List.length prefix = depth then unresolved := Rat.add !unresolved w
        else begin
          let w' = Rat.mul w Rat.half in
          go (prefix @ [ false ]) w';
          go (prefix @ [ true ]) w'
        end
  in
  go [] Rat.one;
  let third = Rat.of_ints 1 3 and two_thirds = Rat.of_ints 2 3 in
  let tol = Rat.pow Rat.half depth in
  Alcotest.(check bool) "accounts all mass" true
    (Rat.equal Rat.one (Rat.add !p1 (Rat.add !p2 !unresolved)));
  Alcotest.(check bool) "unresolved ≤ 2^-30" true (Rat.compare !unresolved tol <= 0);
  Alcotest.(check bool) "p(1) ≤ 1/3" true (Rat.compare !p1 third <= 0);
  Alcotest.(check bool) "1/3 ≤ p(1) + unresolved" true
    (Rat.compare third (Rat.add !p1 !unresolved) <= 0);
  Alcotest.(check bool) "p(2) ≤ 2/3" true (Rat.compare !p2 two_thirds <= 0);
  Alcotest.(check bool) "2/3 ≤ p(2) + unresolved" true
    (Rat.compare two_thirds (Rat.add !p2 !unresolved) <= 0)

(* Regression against the fixed-grid sampler. An event of probability
   2^-60 sits far below the old 1/1_000_003 grid; the old implementation
   selected it whenever [Rng.int rng 1_000_003] drew 0 — about 2^40 times
   too often — and each seed below makes that happen on the very first
   draw, so the old sampler deterministically returned [Some 0] where an
   exact draw almost surely returns [Some 1]. *)
let test_sample_subgrid_exact () =
  let tiny = Rat.pow Rat.half 60 in
  let d = Dist.make ~compare:icmp [ (0, tiny); (1, Rat.sub Rat.one tiny) ] in
  List.iter
    (fun seed ->
      let r = Rng.make seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d draws the heavy outcome" seed)
        true
        (Dist.sample r d = Some 1))
    [ 334872; 1572239; 4876451 ];
  (* The tiny outcome stays reachable with exactly its mass: the all-zeros
     bit path pins the draw into [0, 2^-60) after exactly 60 bits. *)
  let zeros = ref 0 in
  let bit () =
    incr zeros;
    false
  in
  Alcotest.(check bool) "60 zero bits reach the 2^-60 event" true
    (Dist.sample_bits bit d = Some 0);
  Alcotest.(check int) "after exactly 60 bits" 60 !zeros

let test_sample_bits_deficit () =
  (* Sub-distribution {1 ↦ 1/2}: the halting band [1/2, 1) gets exactly
     the deficit. One bit decides. *)
  let d = d_of [ (1, 1, 2) ] in
  let src l =
    let r = ref l in
    fun () ->
      match !r with
      | b :: tl ->
          r := tl;
          b
      | [] -> Alcotest.fail "sampler demanded more bits than provided"
  in
  Alcotest.(check bool) "upper half halts" true (Dist.sample_bits (src [ true ]) d = None);
  Alcotest.(check bool) "lower half draws" true (Dist.sample_bits (src [ false ]) d = Some 1)

let prop_sample_chi_square =
  QCheck.Test.make ~count:20 ~name:"dist: sample frequencies pass chi-square" small_dist_arb
    (fun d ->
      let n = 2000 in
      let seed = Hashtbl.hash (Format.asprintf "%a" (Dist.pp Format.pp_print_int) d) in
      let r = Rng.make seed in
      let tbl = Hashtbl.create 8 in
      for _ = 1 to n do
        let k = Dist.sample r d in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      done;
      (* χ² over the support cells plus the halting cell; with at most 5
         degrees of freedom, 35 is beyond the 99.999th percentile, so a
         failure indicates real bias rather than sampling noise. *)
      let cells =
        (None, Dist.deficit d) :: List.map (fun (x, p) -> (Some x, p)) (Dist.items d)
      in
      let ok_zero_cells =
        List.for_all
          (fun (k, p) -> not (Rat.is_zero p) || not (Hashtbl.mem tbl k))
          cells
      in
      let chi2 =
        List.fold_left
          (fun acc (k, p) ->
            if Rat.is_zero p then acc
            else
              let e = float_of_int n *. Rat.to_float p in
              let o = float_of_int (Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
              acc +. (((o -. e) ** 2.0) /. e))
          0.0 cells
      in
      ok_zero_cells && chi2 < 35.0)

(* ----------------------------------------------------------------- Fprob *)

let test_fprob_agrees_with_exact () =
  let d = d_of [ (1, 1, 2); (2, 1, 3); (3, 1, 6) ] in
  let e = d_of [ (1, 1, 3); (2, 1, 3); (3, 1, 3) ] in
  let exact = Rat.to_float (Stat.tv_distance d e) in
  let approx = Fprob.tv_distance (Fprob.of_exact d) (Fprob.of_exact e) in
  Alcotest.(check (float 1e-9)) "float tv matches exact" exact approx

let () =
  Alcotest.run "cdse_prob"
    [ ( "bignat",
        [ Alcotest.test_case "basics" `Quick test_bignat_basics;
          Alcotest.test_case "big literal" `Quick test_bignat_big_literal;
          Alcotest.test_case "sub rejects negative" `Quick test_bignat_sub_negative;
          Alcotest.test_case "div by zero" `Quick test_bignat_div_by_zero;
          Alcotest.test_case "pow" `Quick test_bignat_pow;
          qtest prop_nat_add_matches_int;
          qtest prop_nat_mul_matches_int;
          qtest prop_big_add_comm;
          qtest prop_big_mul_assoc;
          qtest prop_big_distrib;
          qtest prop_big_sub_inverse;
          qtest prop_big_divmod;
          qtest prop_big_gcd_divides;
          qtest prop_big_string_roundtrip;
          qtest prop_big_bits_roundtrip;
          qtest prop_big_compare_consistent;
          qtest prop_shift_is_mul_pow2 ] );
      ( "rat",
        [ Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "of_string" `Quick test_rat_of_string;
          Alcotest.test_case "division by zero" `Quick test_rat_div_zero;
          Alcotest.test_case "to_float huge" `Quick test_rat_to_float_huge;
          qtest prop_rat_add_assoc;
          qtest prop_rat_mul_distrib;
          qtest prop_rat_sub_add;
          qtest prop_rat_div_mul;
          qtest prop_rat_compare_antisym;
          qtest prop_rat_to_float;
          qtest prop_rat_string_roundtrip;
          qtest prop_rat_bits_roundtrip;
          Alcotest.test_case "native-int edges" `Quick test_rat_int_edges;
          qtest prop_rat_promote_add_sub;
          qtest prop_rat_promote_mul_div;
          qtest prop_rat_promote_compare;
          qtest prop_rat_promote_pow;
          qtest prop_rat_promote_string_roundtrip;
          qtest prop_rat_promote_bits_roundtrip ] );
      ( "dist",
        [ Alcotest.test_case "normalize" `Quick test_dist_normalize;
          Alcotest.test_case "rejects invalid" `Quick test_dist_rejects;
          Alcotest.test_case "dirac" `Quick test_dist_dirac;
          Alcotest.test_case "sub-distribution" `Quick test_dist_subdist;
          Alcotest.test_case "product" `Quick test_dist_product;
          Alcotest.test_case "product_list" `Quick test_dist_product_list;
          Alcotest.test_case "large support (100k)" `Quick test_dist_large_support;
          Alcotest.test_case "corresponds (Def 2.15)" `Quick test_dist_corresponds;
          Alcotest.test_case "sample stays in support" `Quick test_dist_sample_support;
          Alcotest.test_case "sample_bits exact (Bernoulli 1/3)" `Quick
            test_sample_exact_bernoulli_third;
          Alcotest.test_case "sample sub-grid event exactness" `Quick test_sample_subgrid_exact;
          Alcotest.test_case "sample_bits deficit band" `Quick test_sample_bits_deficit;
          qtest prop_sample_chi_square;
          qtest prop_dist_map_mass;
          qtest prop_dist_bind_mass;
          qtest prop_dist_product_mass;
          qtest prop_dist_expect_const;
          qtest prop_dist_filter_le ] );
      ( "stat",
        [ Alcotest.test_case "identical" `Quick test_tv_identical;
          Alcotest.test_case "disjoint" `Quick test_tv_disjoint;
          Alcotest.test_case "exact value" `Quick test_tv_exact_value;
          Alcotest.test_case "deficit counts" `Quick test_tv_subdist_deficit;
          qtest prop_tv_symmetric;
          qtest prop_tv_triangle;
          qtest prop_tv_bounded;
          qtest prop_tv_balanced_consistent;
          qtest prop_sup_le_l1_le_2sup;
          qtest prop_max_gap_bounded_by_sup;
          Alcotest.test_case "exact geometric telescoping" `Quick test_exact_geometric_sum ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes ] );
      ("fprob", [ Alcotest.test_case "agrees with exact" `Quick test_fprob_agrees_with_exact ]) ]
