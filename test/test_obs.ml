(* Tests for the observability layer (lib/obs): instrument semantics, the
   free-when-disabled guarantee, and conservation properties tying the
   engine counters back to the exact measures they describe — the
   truncation-deficit gauge mirrors the `Truncated deficit exactly, and
   memo hits + misses account for every lookup. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_testkit
module Obs = Cdse_obs.Obs

let act = Fixtures.act

let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal
let step1 a q x = List.hd (Dist.support (Psioa.step a q x))
let counter_of snap name = List.assoc name snap.Obs.s_counters

(* --------------------------------------------------------- instruments *)

let test_instrument_basics () =
  let c1 = Obs.counter "test.basic.count" in
  let c2 = Obs.counter "test.basic.count" in
  Obs.set_enabled false;
  Obs.incr c1;
  Alcotest.(check int) "disabled incr is a no-op" 0 (Obs.count c1);
  let (), snap =
    Obs.with_stats (fun () ->
        Obs.incr c1;
        Obs.add c2 4;
        let h = Obs.histogram "test.basic.hist" in
        List.iter (Obs.observe h) [ 0; 1; 2; 3; 4; 7; 8 ])
  in
  Alcotest.(check int) "registration idempotent: handles share state" 5
    (counter_of snap "test.basic.count");
  let h = List.assoc "test.basic.hist" snap.Obs.s_histograms in
  Alcotest.(check int) "hist count" 7 h.Obs.h_count;
  Alcotest.(check int) "hist sum" 25 h.Obs.h_sum;
  Alcotest.(check int) "hist max" 8 h.Obs.h_max;
  Alcotest.(check (list (pair int int)))
    "power-of-two bucket upper bounds"
    [ (0, 1); (1, 1); (3, 2); (7, 2); (15, 1) ]
    h.Obs.h_buckets;
  Alcotest.(check bool) "with_stats restored the disabled state" false
    (Obs.enabled ())

let test_histogram_percentiles () =
  (* 100 observations 1..100: the percentile estimate is the upper bound
     of the first power-of-two bucket covering the rank, capped at the
     recorded max — so p50 <= 63 (bucket 32..63), p90 <= 100 (bucket
     64..127 capped) and p99/p100 hit the max exactly. *)
  let (), snap =
    Obs.with_stats (fun () ->
        let h = Obs.histogram "test.pct.hist" in
        for v = 1 to 100 do
          Obs.observe h v
        done)
  in
  let h = List.assoc "test.pct.hist" snap.Obs.s_histograms in
  Alcotest.(check int) "min recorded" 1 h.Obs.h_min;
  Alcotest.(check int) "max recorded" 100 h.Obs.h_max;
  Alcotest.(check int) "p50 upper bound is its bucket's" 63
    (Obs.hist_percentile h 0.50);
  Alcotest.(check int) "p90 capped at the recorded max" 100
    (Obs.hist_percentile h 0.90);
  Alcotest.(check int) "p99 = max" 100 (Obs.hist_percentile h 0.99);
  (* Degenerate shapes: a single observation answers itself at every
     percentile; an empty histogram answers 0. *)
  let (), snap =
    Obs.with_stats (fun () -> Obs.observe (Obs.histogram "test.pct.one") 5)
  in
  let one = List.assoc "test.pct.one" snap.Obs.s_histograms in
  Alcotest.(check int) "singleton p50 = the value" 5 (Obs.hist_percentile one 0.5);
  Alcotest.(check int) "singleton p99 = the value" 5 (Obs.hist_percentile one 0.99);
  Alcotest.(check int) "singleton min = the value" 5 one.Obs.h_min;
  let (), snap =
    Obs.with_stats (fun () -> ignore (Obs.histogram "test.pct.empty"))
  in
  let empty = List.assoc "test.pct.empty" snap.Obs.s_histograms in
  Alcotest.(check int) "empty histogram: percentile 0" 0
    (Obs.hist_percentile empty 0.5)

let test_event_sink () =
  let got = ref [] in
  let forced = ref 0 in
  Obs.set_sink (Some (fun (e : Obs.event) -> got := e :: !got));
  Obs.set_enabled false;
  Obs.emit "test.ev" (fun () ->
      incr forced;
      "dropped");
  Alcotest.(check int) "disabled: payload thunk never forced" 0 !forced;
  let (), _ =
    Obs.with_stats (fun () ->
        Obs.emit "test.ev" (fun () ->
            incr forced;
            "kept"))
  in
  Obs.set_sink None;
  Alcotest.(check int) "enabled: forced exactly once" 1 !forced;
  match !got with
  | [ e ] ->
      Alcotest.(check string) "event name" "test.ev" e.Obs.name;
      Alcotest.(check string) "event detail" "kept" e.Obs.detail
  | _ -> Alcotest.fail "expected exactly one delivered event"

(* -------------------------------------------------------- conservation *)

let test_memo_counters_account_every_lookup () =
  (* Wrap a counter automaton so the raw signature/transition functions
     count their own invocations, memoize the wrapper, and walk the same
     path twice: hits + misses must equal the lookups issued, and misses
     must equal the raw calls that fell through the cache. *)
  let raw_sig = ref 0 and raw_tr = ref 0 in
  let inner = Fixtures.counter ~bound:4 "k" in
  let counted =
    Psioa.make ~name:"k" ~start:(Psioa.start inner)
      ~signature:(fun q ->
        incr raw_sig;
        Psioa.signature inner q)
      ~transition:(fun q x ->
        incr raw_tr;
        Psioa.transition inner q x)
  in
  let m = Psioa.memoize counted in
  let inc = act "k.inc" in
  let walk () =
    let q = ref (Psioa.start m) in
    for _ = 1 to 3 do
      ignore (Psioa.signature m !q);
      ignore (Psioa.signature m !q);
      q := step1 m !q inc
    done
  in
  let (), snap =
    Obs.with_stats (fun () ->
        walk ();
        walk ())
  in
  let hit = counter_of snap "psioa.memo.sig.hit"
  and miss = counter_of snap "psioa.memo.sig.miss" in
  Alcotest.(check int) "sig: hits + misses = lookups issued" 12 (hit + miss);
  Alcotest.(check int) "sig: misses = raw calls through the cache" !raw_sig miss;
  let hit = counter_of snap "psioa.memo.step.hit"
  and miss = counter_of snap "psioa.memo.step.miss" in
  Alcotest.(check int) "step: hits + misses = lookups issued" 6 (hit + miss);
  Alcotest.(check int) "step: misses = raw calls through the cache" !raw_tr miss

let test_truncation_deficit_gauge_exact () =
  (* A random walk branches two ways per step, so a width budget of 3
     must truncate: the measure.truncation_deficit gauge, reparsed as an
     exact rational, equals the `Truncated deficit bit for bit. *)
  let sys = Fixtures.random_walk ~span:4 "w" in
  let sched = Scheduler.bounded 6 (Scheduler.uniform sys) in
  let res, snap =
    Obs.with_stats (fun () ->
        Measure.exec_dist_budgeted ~max_width:3 sys sched ~depth:5)
  in
  match res with
  | `Exact _ -> Alcotest.fail "expected width truncation"
  | `Truncated (d, lost) ->
      Alcotest.(check bool) "deficit is positive" true (Rat.sign lost > 0);
      let g = List.assoc "measure.truncation_deficit" snap.Obs.s_gauges in
      Alcotest.check rat "gauge mirrors the deficit exactly" lost (Rat.of_string g);
      Alcotest.check rat "mass + deficit = 1" Rat.one (Rat.add (Dist.mass d) lost);
      Alcotest.(check bool) "measure.truncated counted drops" true
        (counter_of snap "measure.truncated" > 0)

let test_exact_run_reports_zero_deficit () =
  let sys = Fixtures.counter ~bound:3 "k" in
  let sched = Scheduler.bounded 4 (Scheduler.uniform sys) in
  let res, snap =
    Obs.with_stats (fun () -> Measure.exec_dist_budgeted sys sched ~depth:5)
  in
  (match res with
  | `Exact _ -> ()
  | `Truncated _ -> Alcotest.fail "unexpected truncation");
  let g = List.assoc "measure.truncation_deficit" snap.Obs.s_gauges in
  Alcotest.check rat "gauge reads zero after an `Exact run" Rat.zero (Rat.of_string g);
  Alcotest.(check int) "nothing truncated" 0 (counter_of snap "measure.truncated");
  let h = List.assoc "measure.frontier.width" snap.Obs.s_histograms in
  Alcotest.(check bool) "layers were counted" true (counter_of snap "measure.layers" > 0);
  Alcotest.(check int) "one width observation per layer"
    (counter_of snap "measure.layers")
    h.Obs.h_count

let test_disabled_mode_free_and_identical () =
  let sys = Fixtures.random_walk ~span:3 "w" in
  let sched = Scheduler.bounded 4 (Scheduler.uniform sys) in
  Obs.set_enabled false;
  Obs.reset ();
  let d_off = Measure.exec_dist ~memo:true sys sched ~depth:4 in
  let s = Obs.snapshot () in
  Alcotest.(check bool) "no counter moved while disabled" true
    (List.for_all (fun (_, v) -> v = 0) s.Obs.s_counters);
  Alcotest.(check bool) "no histogram observation while disabled" true
    (List.for_all (fun (_, h) -> h.Obs.h_count = 0) s.Obs.s_histograms);
  Alcotest.(check bool) "no gauge set while disabled" true (s.Obs.s_gauges = []);
  let d_on, _ =
    Obs.with_stats (fun () -> Measure.exec_dist ~memo:true sys sched ~depth:4)
  in
  Alcotest.(check bool) "stats on/off compute the identical measure" true
    (Dist.equal d_off d_on)

let () =
  Alcotest.run "cdse_obs"
    [ ( "instruments",
        [ Alcotest.test_case "counters, histograms, with_stats" `Quick
            test_instrument_basics;
          Alcotest.test_case "histogram min and percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "event sink gating" `Quick test_event_sink ] );
      ( "conservation",
        [ Alcotest.test_case "memo hits + misses = lookups" `Quick
            test_memo_counters_account_every_lookup;
          Alcotest.test_case "truncation gauge = exact deficit" `Quick
            test_truncation_deficit_gauge_exact;
          Alcotest.test_case "exact run: zero deficit, widths per layer" `Quick
            test_exact_run_reports_zero_deficit;
          Alcotest.test_case "disabled mode is free and identical" `Quick
            test_disabled_mode_free_and_identical ] ) ]
