open Cdse_prob
open Cdse_psioa

type t = {
  name : string;
  registry : Registry.t;
  psioa : Psioa.t;
  config_of : Value.t -> Config.t;
  created : Value.t -> Action.t -> string list;
  hidden : Value.t -> Action_set.t;
}

let name x = x.name
let registry x = x.registry
let psioa x = x.psioa
let config_of x q = x.config_of q
let created x q a = x.created q a
let hidden_actions x q = x.hidden q
let alive x q = Config.auts (x.config_of q)

let make ~name ~registry ~init ?(created = fun _ _ -> []) ?(hidden = fun _ -> Action_set.empty) () =
  if not (Config.is_reduced registry init) then
    invalid_arg (Format.asprintf "Pca.make %s: initial configuration not reduced: %a" name Config.pp init);
  if not (Config.compatible registry init) then
    invalid_arg (Format.asprintf "Pca.make %s: initial configuration not compatible: %a" name Config.pp init);
  let config_of = Config.of_value in
  let signature q =
    let c = Config.of_value q in
    Sigs.hide (Config.signature registry c) (hidden c)
  in
  let transition q act =
    let c = Config.of_value q in
    if not (Action_set.mem act (Sigs.all (signature q))) then None
    else
      Option.map
        (Dist.map ~compare:Value.compare Config.to_value)
        (Ctrans.intrinsic registry c act ~created:(created c act))
  in
  let psioa = Psioa.make ~name ~start:(Config.to_value init) ~signature ~transition in
  { name;
    registry;
    psioa;
    config_of;
    created = (fun q a -> created (Config.of_value q) a);
    hidden = (fun q -> hidden (Config.of_value q)) }

(* Definition 2.17: hiding only touches sig and hidden-actions. *)
let hide x extra =
  let hidden q = Action_set.union (x.hidden q) (extra q) in
  let signature q = Sigs.hide (Psioa.signature x.psioa q) (extra q) in
  let psioa =
    Psioa.make ~name:(Psioa.name x.psioa) ~start:(Psioa.start x.psioa) ~signature
      ~transition:(Psioa.transition x.psioa)
  in
  { x with psioa; hidden }

let compose_pair ?name x1 x2 =
  let name = match name with Some n -> n | None -> x1.name ^ "||" ^ x2.name in
  let psioa = Compose.pair ~name x1.psioa x2.psioa in
  let proj q = Compose.proj_pair q in
  let config_of q =
    let q1, q2 = proj q in
    Config.union (x1.config_of q1) (x2.config_of q2)
  in
  let created q act =
    let q1, q2 = proj q in
    let from x q' =
      if Action_set.mem act (Sigs.all (Psioa.signature x.psioa q')) then x.created q' act else []
    in
    List.sort_uniq String.compare (from x1 q1 @ from x2 q2)
  in
  let hidden q =
    let q1, q2 = proj q in
    Action_set.union (x1.hidden q1) (x2.hidden q2)
  in
  { name; registry = Registry.union x1.registry x2.registry; psioa; config_of; created; hidden }

let parallel ?name = function
  | [] -> invalid_arg "Pca.parallel: empty list"
  | [ x ] -> x
  | x :: rest ->
      let composed = List.fold_left (fun acc y -> compose_pair acc y) x rest in
      (match name with Some n -> { composed with psioa = Psioa.rename_auto n composed.psioa; name = n } | None -> composed)

let check_constraints ?max_states ?max_depth x =
  let reg = x.registry in
  let check_state q =
    let c = x.config_of q in
    let errf fmt = Format.kasprintf (fun s -> Error s) ("PCA %S: " ^^ fmt) x.name in
    if not (Config.is_reduced reg c) then errf "state %a: configuration not reduced" Value.pp q
    else if not (Config.compatible reg c) then errf "state %a: configuration not compatible" Value.pp q
    else begin
      (* Constraint 4 (action hiding). *)
      let expected = Sigs.hide (Config.signature reg c) (x.hidden q) in
      let actual = Psioa.signature x.psioa q in
      if not (Sigs.equal expected actual) then
        errf "state %a: signature %a differs from hidden configuration signature %a" Value.pp q
          Sigs.pp actual Sigs.pp expected
      else begin
        (* Constraints 2 and 3 (top/down and bottom/up simulation): the
           PSIOA transition must correspond, via config(X), to the intrinsic
           transition with φ = created(X)(q)(a) — and exist exactly when the
           intrinsic one does. *)
        let check_action act acc =
          match acc with
          | Error _ -> acc
          | Ok () -> (
              let intrinsic = Ctrans.intrinsic reg c act ~created:(x.created q act) in
              let direct = Psioa.transition x.psioa q act in
              match (direct, intrinsic) with
              | None, None -> Ok ()
              | Some _, None -> errf "state %a, action %a: PSIOA moves but configuration cannot" Value.pp q Action.pp act
              | None, Some _ -> errf "state %a, action %a: configuration moves but PSIOA cannot (bottom/up)" Value.pp q Action.pp act
              | Some d, Some eta' ->
                  if Dist.corresponds ~f:x.config_of d (Dist.map ~compare:Config.compare Fun.id eta')
                  then Ok ()
                  else
                    errf "state %a, action %a: η_(X,q,a) does not correspond to intrinsic transition"
                      Value.pp q Action.pp act)
        in
        Action_set.fold check_action (Sigs.all actual) (Ok ())
      end
    end
  in
  (* Constraint 1 (start preservation). *)
  let start = Psioa.start x.psioa in
  let c0 = x.config_of start in
  let start_ok =
    List.for_all
      (fun (id, q) -> Value.equal q (Psioa.start (Registry.find reg id)))
      (Config.entries c0)
  in
  if not start_ok then
    Error (Printf.sprintf "PCA %S: start state does not map members to their start states" x.name)
  else
    List.fold_left
      (fun acc q -> match acc with Error _ -> acc | Ok () -> check_state q)
      (Ok ())
      (Psioa.reachable ?max_states ?max_depth x.psioa)
