open Cdse_prob
module Obs = Cdse_obs.Obs

type t = {
  name : string;
  start : Value.t;
  signature : Value.t -> Sigs.t;
  transition : Value.t -> Action.t -> Value.t Dist.t option;
}

exception Not_enabled of { automaton : string; state : Value.t; action : Action.t }

(* An actionable rendering of the failure: which automaton, in which state
   (fully rendered, not just its constructor), refused which action. *)
let () =
  Printexc.register_printer (function
    | Not_enabled { automaton; state; action } ->
        Some
          (Printf.sprintf "Psioa.Not_enabled: automaton %S has no transition for action %s in state %s"
             automaton (Action.to_string action) (Value.to_string state))
    | _ -> None)

let make ~name ~start ~signature ~transition = { name; start; signature; transition }

let name a = a.name
let start a = a.start
let signature a q = a.signature q
let transition a q act = a.transition q act
let enabled a q = Sigs.all (a.signature q)
let is_enabled a q act = Action_set.mem act (enabled a q)

let step a q act =
  match a.transition q act with
  | Some d -> d
  | None -> raise (Not_enabled { automaton = a.name; state = q; action = act })

let rename_auto name a = { a with name }

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let c_sig_hit = Obs.counter "psioa.memo.sig.hit"
let c_sig_miss = Obs.counter "psioa.memo.sig.miss"
let c_step_hit = Obs.counter "psioa.memo.step.hit"
let c_step_miss = Obs.counter "psioa.memo.step.miss"

let memoize a =
  let sig_cache = Vtbl.create 64 in
  let tr_cache = Hashtbl.create 64 in
  let signature q =
    match Vtbl.find_opt sig_cache q with
    | Some s ->
        Obs.incr c_sig_hit;
        s
    | None ->
        Obs.incr c_sig_miss;
        let s = a.signature q in
        Vtbl.add sig_cache q s;
        s
  in
  let transition q act =
    let key = (q, act) in
    match Hashtbl.find_opt tr_cache key with
    | Some d ->
        Obs.incr c_step_hit;
        d
    | None ->
        Obs.incr c_step_miss;
        let d = a.transition q act in
        Hashtbl.add tr_cache key d;
        d
  in
  { a with signature; transition }

(* Breadth-first exploration of the support graph, in visit order. The
   second component reports whether [max_states] cut the exploration: a
   state beyond the cap is {e dropped}, never materialised, so callers
   that need soundness (e.g. {!Bisim}) can detect truncation without the
   engine ever holding [max_states + 1] states. *)
let reachable_trunc ?(max_states = 10_000) ?(max_depth = max_int) a =
  let seen = Vtbl.create 64 in
  let queue = Queue.create () in
  Queue.add (a.start, 0) queue;
  Vtbl.add seen a.start ();
  let order = ref [] in
  let truncated = ref false in
  while not (Queue.is_empty queue) do
    let q, depth = Queue.pop queue in
    order := q :: !order;
    if depth < max_depth then
      Action_set.iter
        (fun act ->
          match a.transition q act with
          | None -> ()
          | Some d ->
              List.iter
                (fun q' ->
                  if not (Vtbl.mem seen q') then begin
                    if Vtbl.length seen < max_states then begin
                      Vtbl.add seen q' ();
                      Queue.add (q', depth + 1) queue
                    end
                    else truncated := true
                  end)
                (Dist.support d))
        (Sigs.all (a.signature q))
  done;
  (List.rev !order, !truncated)

let reachable ?max_states ?max_depth a =
  fst (reachable_trunc ?max_states ?max_depth a)

let universal_actions ?max_states ?max_depth a =
  List.fold_left
    (fun acc q -> Action_set.union acc (Sigs.all (a.signature q)))
    Action_set.empty
    (reachable ?max_states ?max_depth a)

(* Check the Definition 2.1 constraints at one state. *)
let check_state a q =
  match a.signature q with
  | exception Sigs.Not_disjoint msg ->
      Error (Printf.sprintf "automaton %S, state %s: %s" a.name (Value.to_string q) msg)
  | s ->
      let check_action act acc =
        match acc with
        | Error _ -> acc
        | Ok () -> (
            match a.transition q act with
            | None ->
                Error
                  (Printf.sprintf "automaton %S, state %s: enabled action %s has no transition"
                     a.name (Value.to_string q) (Action.to_string act))
            | Some d ->
                if Dist.is_proper d then Ok ()
                else
                  Error
                    (Printf.sprintf
                       "automaton %S, state %s, action %s: transition distribution has mass %s"
                       a.name (Value.to_string q) (Action.to_string act)
                       (Rat.to_string (Dist.mass d))))
      in
      Action_set.fold check_action (Sigs.all s) (Ok ())

let validate ?max_states ?max_depth a =
  match reachable ?max_states ?max_depth a with
  | exception Sigs.Not_disjoint msg -> Error (Printf.sprintf "automaton %S: %s" a.name msg)
  | states ->
      List.fold_left
        (fun acc q -> match acc with Error _ -> acc | Ok () -> check_state a q)
        (Ok ()) states

let pp fmt a = Format.fprintf fmt "<psioa %s>" a.name
