(** Probabilistic signature input/output automata (Definition 2.1).

    A PSIOA [A = (Q_A, q̄_A, sig(A), D_A)] has a countable state space, a
    unique start state, a state-dependent signature, and for every state [q]
    and enabled action [a] a unique transition distribution
    [η_(A,q,a) ∈ Disc(Q_A)]. States are {!Value.t}; the signature and
    transition functions are total OCaml functions, with the state space
    generated lazily by reachability. *)

open Cdse_prob

type t

exception Not_enabled of { automaton : string; state : Value.t; action : Action.t }

val make :
  name:string ->
  start:Value.t ->
  signature:(Value.t -> Sigs.t) ->
  transition:(Value.t -> Action.t -> Value.t Dist.t option) ->
  t
(** [transition q a] must be [Some η] exactly when [a ∈ sig-hat(A)(q)]
    (the action-enabling condition E1); {!validate} checks this on the
    explored state space. *)

val name : t -> string
(** The automaton identifier — the element of [Autids] naming this
    automaton (Section 2.2). *)

val start : t -> Value.t
val signature : t -> Value.t -> Sigs.t
val transition : t -> Value.t -> Action.t -> Value.t Dist.t option

val enabled : t -> Value.t -> Action_set.t
(** [sig-hat(A)(q)]: all actions executable at [q]. *)

val is_enabled : t -> Value.t -> Action.t -> bool

val step : t -> Value.t -> Action.t -> Value.t Dist.t
(** Raises {!Not_enabled} when [a ∉ sig-hat(A)(q)]. *)

val rename_auto : string -> t -> t
(** Change only the automaton identifier (not its actions). *)

val memoize : t -> t
(** Cache signature and transition lookups per state (ablation A2). The
    result is observationally identical. The cache is a plain hashtable and
    is {b not} domain-safe: multicore callers (the parallel measure engine)
    give each worker domain its own [memoize] instance. *)

val reachable : ?max_states:int -> ?max_depth:int -> t -> Value.t list
(** Breadth-first exploration of the reachable states ([reachable(A)],
    Definition 2.2), truncated by the optional limits (defaults: 10_000
    states, unlimited depth). *)

val reachable_trunc :
  ?max_states:int -> ?max_depth:int -> t -> Value.t list * bool
(** {!reachable} plus a truncation flag: [true] iff the [max_states] cap
    dropped at least one unexplored state. Exploration stops {e at} the
    cap — no state beyond it is ever materialised — so soundness-sensitive
    callers ({!Bisim}) can reject a truncated state space cheaply. *)

val universal_actions : ?max_states:int -> ?max_depth:int -> t -> Action_set.t
(** [acts(A)] restricted to the explored states: the union of all state
    signatures. *)

val validate : ?max_states:int -> ?max_depth:int -> t -> (unit, string) result
(** Check the PSIOA constraints on the explored state space: signature
    components disjoint, transitions defined exactly on the enabled actions,
    every transition distribution proper. *)

val pp : Format.formatter -> t -> unit
