(** On-the-fly probabilistic-bisimulation quotient of a cone frontier.

    Two frontier executions of the same layer are {e observably bisimilar}
    under a {!Cdse_sched}-style memoryless scheduler when they carry the
    same trace so far and end in the same state: every future scheduler
    choice depends only on [(length, last state)] (both equal), every
    future transition only on the last state, and every future observation
    extends the same past trace — so their continuation trace
    distributions coincide and their masses can be pooled onto a single
    representative without changing any trace-level measure. This is the
    signature-fingerprint + successor-distribution partition of
    {!Bisim} specialised to the frontier of an unrolled cone, where the
    successor condition degenerates to last-state equality (states with
    equal identity have literally equal transition structure).

    The measure engine applies {!merge_frontier} once per layer under
    [~compress:`Quotient]; a depth-[d] frontier then holds equivalence
    classes rather than raw executions. The resulting [exec_dist] is a
    {e compressed support representation} — its pushforward through the
    trace map, its budget accounting (mass + deficit = 1), and its
    length expectations are exact; the execution-level support is not
    (merged-away executions are represented by their class
    representative). Reachability stays exact when the caller threads the
    predicate through [?track], which refines classes by whether the
    execution has already visited a matching state. *)

open Cdse_prob

val merge_frontier :
  sig_of:(Value.t -> Sigs.t) ->
  ?track:(Value.t -> bool) ->
  (Exec.t * Rat.t) list ->
  (Exec.t * Rat.t) list * int * Rat.t
(** [merge_frontier ~sig_of entries] partitions same-layer frontier
    [entries] by [(trace, last state)] — refined by the [?track] predicate
    flag ("has this execution already visited a matching state") when
    given — and pools each class's exact-rational mass onto its minimal
    member by {!Exec.compare}. Returns
    [(classes, merged_away, merged_mass)]: the compressed frontier sorted
    by representative ({!Exec.compare} ascending), the number of entries
    absorbed into another representative, and their total probability
    mass. The output is independent of the input order (representatives
    are order-insensitive minima, rational addition is exact and
    commutative, and the result is sorted), which is what keeps the
    multicore determinism contract intact under compression. *)
