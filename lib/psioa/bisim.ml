open Cdse_prob

type label = Ext of Action.t | Tau

let label_compare l1 l2 =
  match (l1, l2) with
  | Tau, Tau -> 0
  | Tau, Ext _ -> -1
  | Ext _, Tau -> 1
  | Ext a, Ext b -> Action.compare a b

let default_label s a =
  match Sigs.classify a s with
  | `Internal -> Tau
  | `Input | `Output -> Ext a
  | `Absent -> Ext a

(* A node is (side, state); both automata share the partition. *)
type node = { side : int; state : Value.t }

let node_compare n1 n2 =
  let c = Int.compare n1.side n2.side in
  if c <> 0 then c else Value.compare n1.state n2.state

module Nmap = Map.Make (struct
  type t = node

  let compare = node_compare
end)

let run ?(max_states = 2000) ?(label = default_label) a b =
  let explore side auto =
    (* Stop at the cap and test the truncation flag instead of exploring
       [max_states + 1] states just to notice the overflow; the error
       names the automaton and the limit so the caller knows which side
       blew up and what to raise. *)
    let states, truncated = Psioa.reachable_trunc ~max_states auto in
    if truncated then
      invalid_arg
        (Printf.sprintf
           "Bisim: automaton %S has more than %d reachable states (max_states); raise ~max_states — a partition of a truncated state space would be unsound"
           (Psioa.name auto) max_states);
    List.map (fun q -> { side; state = q }) states
  in
  let nodes = explore 0 a @ explore 1 b in
  let auto_of n = if n.side = 0 then a else b in
  (* Per-node transition table: (label, target distribution) list. *)
  let transitions n =
    let auto = auto_of n in
    let s = Psioa.signature auto n.state in
    Action_set.fold
      (fun act acc ->
        match Psioa.transition auto n.state act with
        | None -> acc
        | Some d -> (label s act, d) :: acc)
      (Sigs.all s) []
  in
  let table = List.map (fun n -> (n, transitions n)) nodes in
  (* External interface fingerprint: the multiset of labels enabled plus
     the external signature split (inputs vs outputs must match for
     bisimilarity of I/O automata). *)
  let fingerprint n =
    let auto = auto_of n in
    let s = Psioa.signature auto n.state in
    let labels =
      List.sort label_compare (List.map fst (List.assoc n table))
    in
    let ins = List.map Action.to_string (Action_set.elements (Sigs.input s)) in
    let outs = List.map Action.to_string (Action_set.elements (Sigs.output s)) in
    (labels, ins, outs)
  in
  (* Partition as a block-id map; refine to fixpoint. *)
  let initial =
    let groups = Hashtbl.create 64 in
    List.iteri
      (fun _ n ->
        let key = fingerprint n in
        let members = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        Hashtbl.replace groups key (n :: members))
      nodes;
    let id = ref 0 in
    Hashtbl.fold
      (fun _ members acc ->
        let bid = !id in
        incr id;
        List.fold_left (fun acc n -> Nmap.add n bid acc) acc members)
      groups Nmap.empty
  in
  (* Signature of a node under the current partition: for each label, the
     sorted set of block-probability vectors of its transitions. *)
  let node_signature part n =
    let sig_of_dist d =
      let weights =
        List.fold_left
          (fun acc (q', p) ->
            let bid = Nmap.find { side = n.side; state = q' } part in
            let prev = Option.value ~default:Rat.zero (List.assoc_opt bid acc) in
            (bid, Rat.add prev p) :: List.remove_assoc bid acc)
          [] (Dist.items d)
      in
      List.sort
        (fun (b1, _) (b2, _) -> Int.compare b1 b2)
        (List.map (fun (b, p) -> (b, Rat.to_string p)) weights)
    in
    let per_label =
      List.map (fun (l, d) -> (l, sig_of_dist d)) (List.assoc n table)
    in
    List.sort
      (fun (l1, v1) (l2, v2) ->
        let c = label_compare l1 l2 in
        if c <> 0 then c else compare v1 v2)
      per_label
  in
  let refine part =
    let groups = Hashtbl.create 64 in
    List.iter
      (fun n ->
        let key = (Nmap.find n part, node_signature part n) in
        let members = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        Hashtbl.replace groups key (n :: members))
      nodes;
    let id = ref 0 in
    let part' =
      Hashtbl.fold
        (fun _ members acc ->
          let bid = !id in
          incr id;
          List.fold_left (fun acc n -> Nmap.add n bid acc) acc members)
        groups Nmap.empty
    in
    let block_count m = Nmap.fold (fun _ b acc -> max acc (b + 1)) m 0 in
    (part', block_count part' > block_count part)
  in
  let rec fixpoint part =
    let part', changed = refine part in
    if changed then fixpoint part' else part'
  in
  let final = fixpoint initial in
  (final, List.length nodes)

let bisimilar ?max_states ?label a b =
  let part, _ = run ?max_states ?label a b in
  Nmap.find { side = 0; state = Psioa.start a } part
  = Nmap.find { side = 1; state = Psioa.start b } part

let classes ?max_states ?label a b =
  let part, n = run ?max_states ?label a b in
  (Nmap.fold (fun _ b acc -> max acc (b + 1)) part 0, n)
