open Cdse_prob
module Obs = Cdse_obs.Obs

let c_hit = Obs.counter "hcons.hits"
let c_miss = Obs.counter "hcons.misses"

(* The intern table maps a value (structural hash / equality, with the [==]
   fast path of [Value.compare] inside) to its canonical representative and
   the hash computed when the representative was interned. Only canonical
   values are retained as keys, so the table holds exactly one node per
   distinct value ever interned. *)
module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = { tbl : (Value.t * int) Vtbl.t }

let create ?(size = 256) () = { tbl = Vtbl.create size }

(* Rebuild [v] with canonical children, preserving physical identity when
   every child is already canonical — so re-interning a canonical value
   allocates nothing and [make] is idempotent by table hit. *)
let rec make t v =
  match Vtbl.find_opt t.tbl v with
  | Some (c, _) ->
      Obs.incr c_hit;
      c
  | None ->
      Obs.incr c_miss;
      let c =
        match v with
        | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ -> v
        | Value.Pair (a, b) ->
            let a' = make t a and b' = make t b in
            if a' == a && b' == b then v else Value.pair a' b'
        | Value.List l ->
            let l' = List.map (make t) l in
            if List.for_all2 ( == ) l l' then v else Value.list l'
        | Value.Tag (name, x) ->
            let x' = make t x in
            if x' == x then v else Value.tag name x'
      in
      Vtbl.replace t.tbl c (c, Value.hash c);
      c

let hash t v =
  match Vtbl.find_opt t.tbl v with
  | Some (_, h) -> h
  | None ->
      let c = make t v in
      (match Vtbl.find_opt t.tbl c with Some (_, h) -> h | None -> Value.hash c)

let interned t = Vtbl.length t.tbl

let auto t a =
  let intern_dist d = Dist.map ~compare:Value.compare (make t) d in
  Psioa.make ~name:(Psioa.name a)
    ~start:(make t (Psioa.start a))
    ~signature:(Psioa.signature a)
    ~transition:(fun q act -> Option.map intern_dist (Psioa.transition a q act))
