(** Hash-consing of {!Value.t}: canonical, physically-unique representatives.

    [make t v] returns the canonical value structurally equal to [v] in the
    intern table [t], building it (with maximally shared, already-canonical
    sub-terms) on first sight. Two interned values are equal iff they are
    physically equal, so — combined with the [==] fast path in
    {!Value.compare} — equality checks, {!Exec.compare} on sibling cone
    executions, and the {!Psioa.memoize} tables all short-circuit in O(1)
    on interned states. The per-canonical-value hash is computed once at
    interning time and retrieved by table lookup afterwards ({!hash}), so
    repeated hashing never re-traverses the term.

    Tables are {b not} domain-safe: like {!Psioa.memoize}, multicore
    callers (the measure engine under [~compress]) give each worker domain
    its own table. Physical uniqueness then holds per table — structural
    equality across tables still works, only without the O(1) fast path.

    {!Cdse_obs.Obs} counters: [hcons.hits] (value already interned) and
    [hcons.misses] (new canonical node built), counted per {!make} call
    including the recursive calls on sub-terms. *)

type t
(** An intern table. *)

val create : ?size:int -> unit -> t
(** A fresh, empty table ([size] is the initial bucket-count hint). *)

val make : t -> Value.t -> Value.t
(** The canonical representative of [v] in [t]. Idempotent:
    [make t (make t v) == make t v], and [make t v == make t w] iff
    [Value.compare v w = 0]. *)

val hash : t -> Value.t -> int
(** The hash of [v]'s canonical representative, precomputed at interning
    time (interns [v] if it has not been seen). Consistent with
    {!Value.hash} and hence with structural equality. *)

val interned : t -> int
(** Number of canonical values currently in the table. *)

val auto : t -> Psioa.t -> Psioa.t
(** Wrap an automaton so every state it emits is interned in [t]: the
    start state and all transition-target supports are canonical. The
    result is observationally identical ({!Value.equal}-equal states,
    identical distributions); only physical sharing changes. Compose with
    {!Psioa.memoize} {e on top} so the interning cost of a transition is
    paid once per [(state, action)]. *)
