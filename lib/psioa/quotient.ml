open Cdse_prob

(* A frontier equivalence class: same observable past (trace, and the
   optional tracked-predicate flag) and same continuation behaviour (same
   last state; all members share the layer, hence the length). *)
type key = { trace : Action.t list; state : Value.t; flag : bool }

module Ktbl = Hashtbl.Make (struct
  type t = key

  let equal k1 k2 =
    Bool.equal k1.flag k2.flag
    && Value.equal k1.state k2.state
    && List.compare Action.compare k1.trace k2.trace = 0

  let hash k =
    Hashtbl.hash (List.map Action.hash k.trace, Value.hash k.state, k.flag)
end)

let key ~sig_of ~track e =
  let flag = match track with None -> false | Some p -> List.exists p (Exec.states e) in
  { trace = Exec.trace ~sig_of e; state = Exec.lstate e; flag }

(* Per class: the current representative (minimal member by Exec.compare),
   the representative's own original mass, and the pooled class mass. The
   split lets the caller report exactly how much mass moved onto another
   execution. *)
type cls = { rep : Exec.t; rep_mass : Rat.t; total : Rat.t }

let merge_frontier ~sig_of ?track entries =
  match entries with
  | [] | [ _ ] -> (entries, 0, Rat.zero)
  | _ ->
      (* The span argument thunk is forced after the body, so it can report
         the class count through the result ref. *)
      let out = ref (entries, 0, Rat.zero) in
      Cdse_obs.Trace.span "quotient.merge"
        ~args:(fun () ->
          let classes, merged, _ = !out in
          [ ("in", string_of_int (List.length entries));
            ("classes", string_of_int (List.length classes));
            ("merged", string_of_int merged) ])
        (fun () ->
          let tbl = Ktbl.create 64 in
          let n = ref 0 in
          List.iter
            (fun (e, p) ->
              let k = key ~sig_of ~track e in
              match Ktbl.find_opt tbl k with
              | None ->
                  incr n;
                  Ktbl.replace tbl k { rep = e; rep_mass = p; total = p }
              | Some c ->
                  let total = Rat.add c.total p in
                  let c =
                    if Exec.compare e c.rep < 0 then { rep = e; rep_mass = p; total }
                    else { c with total }
                  in
                  Ktbl.replace tbl k c)
            entries;
          let merged_away = List.length entries - !n in
          if merged_away = 0 then out := (entries, 0, Rat.zero)
          else begin
            let classes = Ktbl.fold (fun _ c acc -> c :: acc) tbl [] in
            let classes =
              List.sort (fun c1 c2 -> Exec.compare c1.rep c2.rep) classes
            in
            let merged_mass =
              List.fold_left
                (fun acc c -> Rat.add acc (Rat.sub c.total c.rep_mass))
                Rat.zero classes
            in
            out :=
              ( List.map (fun c -> (c.rep, c.total)) classes,
                merged_away, merged_mass )
          end);
      !out
