type t = { first : Value.t; rev_steps : (Action.t * Value.t) list; len : int }

let init first = { first; rev_steps = []; len = 0 }

let extend e act q' = { e with rev_steps = (act, q') :: e.rev_steps; len = e.len + 1 }

let fstate e = e.first

let lstate e = match e.rev_steps with [] -> e.first | (_, q) :: _ -> q

let length e = e.len
let steps e = List.rev e.rev_steps
let actions e = List.rev_map fst e.rev_steps

let states e = e.first :: List.map snd (steps e)

let of_steps first steps =
  { first; rev_steps = List.rev steps; len = List.length steps }

let concat a b =
  if not (Value.equal (lstate a) (fstate b)) then
    invalid_arg "Exec.concat: fragments do not meet";
  { first = a.first; rev_steps = b.rev_steps @ a.rev_steps; len = a.len + b.len }

let step_compare = Cdse_util.Order.pair Action.compare Value.compare

(* Forward-lexicographic order on the step sequences (same order as
   [Order.list step_compare] on [steps a] / [steps b]) computed directly on
   the reversed lists: no [List.rev] allocation per comparison, and
   physically shared tails — sibling executions of one cone share their
   prefix — compare in O(1). *)
let compare a b =
  let c = Value.compare a.first b.first in
  if c <> 0 then c
  else begin
    let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
    (* Align on the common prefix: the deepest [min len] entries. *)
    let ra = if a.len > b.len then drop (a.len - b.len) a.rev_steps else a.rev_steps in
    let rb = if b.len > a.len then drop (b.len - a.len) b.rev_steps else b.rev_steps in
    let rec go ra rb =
      if ra == rb then 0
      else
        match (ra, rb) with
        | [], [] -> 0
        | x :: ra', y :: rb' ->
            let c = go ra' rb' in
            if c <> 0 then c else step_compare x y
        | _ -> assert false (* aligned above *)
    in
    let c = go ra rb in
    if c <> 0 then c else Int.compare a.len b.len
  end

let equal a b = compare a b = 0
let hash e = Hashtbl.hash (Value.hash e.first, List.map (fun (a, q) -> (Action.hash a, Value.hash q)) e.rev_steps)

let is_prefix a ~of_ =
  a.len <= of_.len
  && Value.equal a.first of_.first
  &&
  let rec take n l = if n = 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r in
  List.for_all2
    (fun (x, q) (y, q') -> Action.equal x y && Value.equal q q')
    (steps a)
    (take a.len (steps of_))

let trace ~sig_of e =
  let rec go q = function
    | [] -> []
    | (act, q') :: rest ->
        let s = sig_of q in
        if Action_set.mem act (Sigs.ext s) then act :: go q' rest else go q' rest
  in
  go e.first (steps e)

let pp fmt e =
  Format.fprintf fmt "@[<hov>%a" Value.pp e.first;
  List.iter (fun (a, q) -> Format.fprintf fmt "@ —%a→ %a" Action.pp a Value.pp q) (steps e);
  Format.fprintf fmt "@]"

let to_string e = Format.asprintf "%a" pp e
