type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
  | Tag of string * t

let unit = Unit
let bool b = Bool b
let int n = Int n
let str s = Str s
let pair a b = Pair (a, b)
let list l = List l
let tag name v = Tag (name, v)

let ctor_rank = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | Pair _ -> 4
  | List _ -> 5
  | Tag _ -> 6

(* Physical equality short-circuits the structural descent: hash-consed
   values ({!Hcons}) are physically unique, so equal interned values (and
   shared sub-terms of unequal ones) compare in O(1). Plain values are
   unaffected beyond the one pointer test. *)
let rec compare a b =
  if a == b then 0
  else
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Pair (x1, y1), Pair (x2, y2) ->
      let c = compare x1 x2 in
      if c <> 0 then c else compare y1 y2
  | List l1, List l2 -> Cdse_util.Order.list compare l1 l2
  | Tag (t1, v1), Tag (t2, v2) ->
      let c = String.compare t1 t2 in
      if c <> 0 then c else compare v1 v2
  | _ -> Int.compare (ctor_rank a) (ctor_rank b)

let equal a b = a == b || compare a b = 0
let hash v = Hashtbl.hash v

open Cdse_util

let str_bits s =
  Bits.concat
    (Bits.encode_nat (String.length s)
    :: List.init (String.length s) (fun i -> Bits.of_int ~width:8 (Char.code s.[i])))

(* 3-bit constructor tag, then constructor-specific payload. Ints are
   encoded as sign bit + gamma-coded magnitude. *)
let rec to_bits v =
  let tag3 n rest = Bits.append (Bits.of_int ~width:3 n) rest in
  match v with
  | Unit -> tag3 0 Bits.empty
  | Bool b -> tag3 1 (Bits.singleton b)
  | Int n -> tag3 2 (Bits.append (Bits.singleton (n >= 0)) (Bits.encode_nat (abs n)))
  | Str s -> tag3 3 (str_bits s)
  | Pair (a, b) -> tag3 4 (Bits.append (to_bits a) (to_bits b))
  | List l -> tag3 5 (Bits.concat (Bits.encode_nat (List.length l) :: List.map to_bits l))
  | Tag (t, x) -> tag3 6 (Bits.append (str_bits t) (to_bits x))

let decode_str r =
  let n = Bits.Reader.read_nat r in
  String.init n (fun _ -> Char.chr (Bits.Reader.read_int ~width:8 r))

let rec decode r =
  match Bits.Reader.read_int ~width:3 r with
  | 0 -> Unit
  | 1 -> Bool (Bits.Reader.read_bit r)
  | 2 ->
      let pos = Bits.Reader.read_bit r in
      let m = Bits.Reader.read_nat r in
      (* Reject the non-canonical "-0" so that every value has exactly one
         encoding (the injectivity the bounded layer relies on). *)
      if (not pos) && m = 0 then invalid_arg "Value.decode: non-canonical negative zero";
      Int (if pos then m else -m)
  | 3 -> Str (decode_str r)
  | 4 ->
      let a = decode r in
      let b = decode r in
      Pair (a, b)
  | 5 ->
      let n = Bits.Reader.read_nat r in
      List (List.init n (fun _ -> decode r))
  | 6 ->
      let t = decode_str r in
      Tag (t, decode r)
  | n -> invalid_arg (Printf.sprintf "Value.decode: bad constructor tag %d" n)

let of_bits bits =
  let r = Bits.Reader.make bits in
  let v = decode r in
  if not (Bits.Reader.at_end r) then invalid_arg "Value.of_bits: trailing bits";
  v

let bit_length v = Bits.length (to_bits v)

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Bool b -> Format.pp_print_bool fmt b
  | Int n -> Format.pp_print_int fmt n
  | Str s -> Format.fprintf fmt "%S" s
  | Pair (a, b) -> Format.fprintf fmt "(%a, %a)" pp a pp b
  | List l ->
      Format.fprintf fmt "[@[<hov>%a@]]"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ") pp)
        l
  | Tag (t, Unit) -> Format.fprintf fmt "%s" t
  | Tag (t, v) -> Format.fprintf fmt "%s(%a)" t pp v

let to_string v = Format.asprintf "%a" pp v
