open Cdse_prob
open Cdse_psioa

type task = string

let task_of_name n = n
let task_of_action a = Action.name a
let mem a t = String.equal (Action.name a) t
let task_name t = t

let enabled_in auto q t =
  Action_set.elements
    (Action_set.filter (fun a -> mem a t) (Sigs.local (Psioa.signature auto q)))

type schedule = task list

let empty_choice = Dist.empty ~compare:Action.compare

let scheduler auto schedule =
  let tasks = Array.of_list schedule in
  Scheduler.make ~memoryless:true ~validated:true
    ~name:(Printf.sprintf "task-schedule(%d)" (Array.length tasks)) (fun e ->
      let i = Exec.length e in
      if i >= Array.length tasks then empty_choice
      else
        match enabled_in auto (Exec.lstate e) tasks.(i) with
        | [ a ] -> Dist.dirac ~compare:Action.compare a
        | _ -> empty_choice)

let scheduler_skipping auto schedule =
  Scheduler.make ~validated:true
    ~name:(Printf.sprintf "task-schedule-skip(%d)" (List.length schedule))
    (fun e ->
      (* Replay the fragment against the schedule to know how many tasks
         have been consumed: a task is consumed when it fired (it matched
         the fragment's action) or when it was skipped (not uniquely
         enabled at that point). *)
      let rec advance q steps tasks =
        match tasks with
        | [] -> []
        | t :: rest -> (
            match steps with
            | [] -> (
                (* At the frontier: skip leading non-uniquely-enabled
                   tasks. *)
                match enabled_in auto q t with
                | [ _ ] -> tasks
                | _ -> advance q [] rest)
            | (a, q') :: more ->
                if mem a t && List.length (enabled_in auto q t) = 1 then advance q' more rest
                else advance q steps rest)
      in
      match advance (Exec.fstate e) (Exec.steps e) schedule with
      | [] -> empty_choice
      | t :: _ -> (
          match enabled_in auto (Exec.lstate e) t with
          | [ a ] -> Dist.dirac ~compare:Action.compare a
          | _ -> empty_choice))

let is_action_deterministic ?max_states ?max_depth auto schedule =
  let tasks = List.sort_uniq String.compare schedule in
  List.for_all
    (fun q -> List.for_all (fun t -> List.length (enabled_in auto q t) <= 1) tasks)
    (Psioa.reachable ?max_states ?max_depth auto)
