open Cdse_prob
open Cdse_psioa
module Obs = Cdse_obs.Obs
module Trace = Cdse_obs.Trace

type 'a budgeted = [ `Exact of 'a | `Truncated of 'a * Rat.t ]

type compress = [ `Off | `Hcons | `Quotient ]

(* A resumable expansion frontier: the alive entries (each of length
   [f_depth]) plus the finished mass accumulated on the way there. Only
   frontiers of {e unbudgeted} runs are resumable — the budgeted entry
   point discards its frontier, so a truncated one is never observable. *)
type frontier = {
  f_depth : int;
  f_alive : (Exec.t * Rat.t) list;
  f_finished : (Exec.t * Rat.t) list;
}

let start_frontier auto = function
  | None -> (0, [ (Exec.init (Psioa.start auto), Rat.one) ], [])
  | Some f -> (f.f_depth, f.f_alive, f.f_finished)

(* Instruments for the budgeted expansion below (shared by name with any
   other reader: registration is idempotent). The frontier-width histogram
   is fed once per layer by the coordinating domain;
   [measure.truncation_deficit] mirrors the [`Truncated] deficit exactly
   ([Rat.to_string], reparsable with [Rat.of_string]) and reads "0" after
   an [`Exact] run. Worker domains only ever touch counters, through the
   per-domain {!Obs.shard}s merged at layer barriers. *)
let h_width = Obs.histogram "measure.frontier.width"
let c_layers = Obs.counter "measure.layers"
let c_finished = Obs.counter "measure.finished"
let c_truncated = Obs.counter "measure.truncated"
let c_choice_hit = Obs.counter "measure.choice.hit"
let c_choice_miss = Obs.counter "measure.choice.miss"
let g_deficit = Obs.gauge "measure.truncation_deficit"

(* Compression instruments. [measure.frontier.width_compressed] mirrors
   [measure.frontier.width] but records the post-quotient width of each
   layer; [quotient.classes] / [quotient.merged] count the surviving
   classes and the entries absorbed into another representative across
   the run; [quotient.mass_merged] is the cumulative exact-rational mass
   those absorbed entries carried ([Rat.to_string], reparsable). All are
   coordinator-only — the quotient runs between parallel sections — while
   [hcons.hits]/[hcons.misses] (registered in {!Cdse_psioa.Hcons}) are
   worker counters that accumulate through the per-domain shards. *)
let h_width_c = Obs.histogram "measure.frontier.width_compressed"
let c_q_classes = Obs.counter "quotient.classes"
let c_q_merged = Obs.counter "quotient.merged"
let g_q_mass = Obs.gauge "quotient.mass_merged"

(* Subtree-engine instruments. [measure.subtree.roots] counts work units
   claimed off the shared root cursor, [measure.subtree.steals] work units
   claimed from the donation queue by an otherwise-idle worker; their ratio
   is the steal fraction reported in the bench cells. Worker counters,
   accumulated through the per-domain shards. The layered-engine layer
   instruments ([measure.layers], [measure.frontier.width]) are {e not}
   emitted by the subtree engine — it has no layers. *)
let c_sub_roots = Obs.counter "measure.subtree.roots"
let c_sub_steals = Obs.counter "measure.subtree.steals"

(* Per-layer memo/hcons/choice-cache hit deltas, emitted as a
   [measure.layer.stats] instant for the trace summary. Reads the global
   counter records, so it must run on the coordinating domain after worker
   shards are merged — the layer barrier. One probe per engine run; the
   deltas are against the previous layer of the same run, so [prev] must
   start from the counters' values {e at probe creation} (the run start).
   Starting from zero — the historical bug — made the first layer of every
   run after the first report the whole process history: two engine runs in
   one process corrupted each other's [measure.layer.stats] instants. *)
let layer_stats_probe () =
  let tracked =
    [| ("choice_hit", "measure.choice.hit"); ("choice_miss", "measure.choice.miss");
       ("memo_hit", "psioa.memo.step.hit"); ("memo_miss", "psioa.memo.step.miss");
       ("hcons_hit", "hcons.hits"); ("hcons_miss", "hcons.misses") |]
  in
  let prev = Array.map (fun (_, name) -> Obs.counter_value name) tracked in
  fun ~layer ->
    if Trace.enabled () then begin
      let args = ref [] in
      Array.iteri
        (fun i (label, name) ->
          let v = Obs.counter_value name in
          if v - prev.(i) <> 0 then
            args := (label, string_of_int (v - prev.(i))) :: !args;
          prev.(i) <- v)
        tracked;
      if !args <> [] then
        Trace.instant
          ~args:(fun () -> ("layer", string_of_int layer) :: List.rev !args)
          "measure.layer.stats"
    end

(* ------------------------------------------------------------------ pool *)

(* A reusable barrier-style pool: [size - 1] spawned domains plus the
   calling domain (worker 0). [run] hands every worker the same job and
   returns once all have finished — one lock round-trip per worker per
   layer, nothing on the per-entry hot path.

   Raise safety: a job that raises — including from wrappers around the
   engine body such as [Obs.with_shard] / [Trace.with_buffer] — must not
   leave the pool stuck. Historically a worker raise skipped the [pending]
   decrement and [run] waited on [finished] forever. Each worker now
   catches its job's exception into a per-worker slot and decrements
   [pending] unconditionally; [run] always completes the barrier, then
   re-raises the recorded exception of the {e smallest} worker id — a
   deterministic choice independent of OS scheduling — leaving the pool
   reusable for further [run]s. *)
module Pool = struct
  type t = {
    size : int;
    mutex : Mutex.t;
    start : Condition.t;
    finished : Condition.t;
    errs : exn option array;
    mutable job : (int -> unit) option;
    mutable epoch : int;
    mutable pending : int;
    mutable stop : bool;
    mutable doms : unit Domain.t list;
  }

  let worker t wid =
    let epoch = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.mutex;
      while (not t.stop) && t.epoch = !epoch do
        Condition.wait t.start t.mutex
      done;
      if t.stop then begin
        Mutex.unlock t.mutex;
        running := false
      end
      else begin
        epoch := t.epoch;
        let job = Option.get t.job in
        Mutex.unlock t.mutex;
        (try job wid with exn -> t.errs.(wid) <- Some exn);
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      end
    done

  let create size =
    let t =
      { size; mutex = Mutex.create (); start = Condition.create ();
        finished = Condition.create (); errs = Array.make size None; job = None;
        epoch = 0; pending = 0; stop = false; doms = [] }
    in
    t.doms <- List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
    t

  let reraise_first t =
    let rec first i =
      if i >= t.size then None
      else match t.errs.(i) with Some _ as e -> e | None -> first (i + 1)
    in
    match first 0 with Some exn -> raise exn | None -> ()

  let run t job =
    if t.size = 1 then job 0
    else begin
      Mutex.lock t.mutex;
      Array.fill t.errs 0 t.size None;
      t.job <- Some job;
      t.pending <- t.size - 1;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.start;
      Mutex.unlock t.mutex;
      (try job 0 with exn -> t.errs.(0) <- Some exn);
      Mutex.lock t.mutex;
      while t.pending > 0 do
        Condition.wait t.finished t.mutex
      done;
      t.job <- None;
      Mutex.unlock t.mutex;
      reraise_first t
    end

  let shutdown t =
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.doms;
    t.doms <- []
end

(* ---------------------------------------------------------- shared parts *)

(* Keep the [keep] most probable entries of a frontier and return the
   dropped mass. The sort key [(probability desc, Exec.compare asc)] is a
   total order on any frontier (two distinct cone branches are distinct
   executions, so [Exec.compare] never ties), hence the kept set, the kept
   order and the dropped-mass sum are all independent of the input
   permutation — this is what makes budgeted truncation deterministic
   under both sequential iteration and multicore chunking. Only ever
   called when a budget is exceeded: the unbudgeted path never sorts. *)
let truncate_entries ~keep entries =
  Trace.span ~args:(fun () -> [ ("keep", string_of_int keep) ]) "measure.truncate"
  @@ fun () ->
  let arr = Array.of_list entries in
  Array.stable_sort
    (fun (e1, p1) (e2, p2) ->
      let c = Rat.compare p2 p1 in
      if c <> 0 then c else Exec.compare e1 e2)
    arr;
  let kept = ref [] and lost = ref Rat.zero in
  Array.iteri
    (fun i ((_, p) as entry) ->
      if i < keep then kept := entry :: !kept else lost := Rat.add !lost p)
    arr;
  Obs.add c_truncated (Stdlib.max 0 (Array.length arr - keep));
  (List.rev !kept, !lost)

(* Validated scheduler choice, optionally cached. With [~memo:true] and a
   {!Scheduler.is_memoryless} scheduler the validated choice is a function
   of [(length, lstate)] alone (every alive execution at frontier layer [i]
   has length [i]), so it is cached per engine instance. The cache is
   engine-local: the parallel path builds one per worker domain, so the
   hit/miss split depends on the domain count but the {e sum} (one lookup
   per frontier entry) does not. *)
let choice_fn ~memo auto sched =
  if memo && Scheduler.is_memoryless sched then begin
    let tbl = Hashtbl.create 32 in
    fun e ->
      let key = (Exec.length e, Exec.lstate e) in
      match Hashtbl.find_opt tbl key with
      | Some d ->
          Obs.incr c_choice_hit;
          d
      | None ->
          Obs.incr c_choice_miss;
          let d = Scheduler.validate_choice auto sched e in
          Hashtbl.add tbl key d;
          d
  end
  else fun e -> Scheduler.validate_choice auto sched e

let finish alive finished lost =
  if Obs.enabled () then Obs.set_gauge g_deficit (Rat.to_string lost);
  let d = Dist.make ~compare:Exec.compare (List.rev_append finished alive) in
  if Rat.is_zero lost then `Exact d else `Truncated (d, lost)

(* Quotient merging is sound exactly when the scheduler's future choices
   are a function of [(length, last state)] — the {!Scheduler.is_memoryless}
   promise. With a history-dependent scheduler [`Quotient] silently
   degrades to [`Hcons] (interning only), which is always sound. *)
let quotient_on ~compress sched =
  (match compress with `Quotient -> true | `Off | `Hcons -> false)
  && Scheduler.is_memoryless sched

(* One layer of on-the-fly quotient: pool probabilistically-bisimilar
   frontier entries onto their minimal representative before the next
   expansion. [qmass] accumulates the absorbed mass for the run gauge.
   Runs on the coordinating domain only (between parallel sections). *)
let compress_layer ~sig_of ~track ~qmass entries =
  let classes, merged, mass = Quotient.merge_frontier ~sig_of ?track entries in
  if not (Rat.is_zero mass) then qmass := Rat.add !qmass mass;
  if Obs.enabled () then begin
    Obs.add c_q_classes (List.length classes);
    Obs.add c_q_merged merged;
    Obs.observe h_width_c (List.length classes)
  end;
  classes

(* The [`Hcons] and [`Quotient] paths route every state the engine sees
   through an intern table; per engine instance sequentially, per worker
   domain in the parallel engine (like the memo caches — the tables are
   plain hashtables). *)
let wrap_compress ~compress auto =
  match compress with
  | `Off -> auto
  | `Hcons | `Quotient -> Hcons.auto (Hcons.create ()) auto

(* ------------------------------------------------------ sequential engine *)

(* Iteratively expand the cone frontier. [alive] holds executions the
   scheduler may still extend, [finished] the accumulated halting mass.

   With [~memo:true] the expansion reuses {!Psioa.memoize} so signature and
   transition lookups are computed once per [(state, action)] across the
   whole frontier. Both caches are per-call: the results are
   observationally identical, so the flag is purely a performance knob. *)
let seq_exec_dist_budgeted ~memo ~compress ~track ?max_execs ?max_width ?from auto
    sched ~depth =
  let auto = wrap_compress ~compress auto in
  let auto = if memo then Psioa.memoize auto else auto in
  let choice_of = choice_fn ~memo auto sched in
  let quotient = quotient_on ~compress sched in
  let sig_of = Psioa.signature auto in
  let qmass = ref Rat.zero in
  let layer_stats = layer_stats_probe () in
  let rec go step alive n_finished finished lost =
    if step = depth || alive = [] then (alive, finished, lost)
    else begin
      if Obs.enabled () then begin
        Obs.incr c_layers;
        Obs.observe h_width (List.length alive)
      end;
      let layer_tok = Trace.begin_span "measure.layer" in
      let layer_args () =
        [ ("layer", string_of_int step);
          ("width", string_of_int (List.length alive)) ]
      in
      let end_layer () =
        layer_stats ~layer:step;
        Trace.end_span ~args:layer_args layer_tok
      in
      let alive' = ref [] and finished' = ref finished and n_finished' = ref n_finished in
      Trace.span ~args:(fun () -> [ ("layer", string_of_int step) ]) "measure.expand"
        (fun () ->
          List.iter
            (fun (e, p) ->
              let choice = choice_of e in
              if not (Dist.is_proper choice) then begin
                let halt_mass = Rat.mul p (Dist.deficit choice) in
                if not (Rat.is_zero halt_mass) then begin
                  Obs.incr c_finished;
                  finished' := (e, halt_mass) :: !finished';
                  incr n_finished'
                end
              end;
              let q = Exec.lstate e in
              Dist.iter
                (fun act pa ->
                  let eta = Psioa.step auto q act in
                  let pa = Rat.mul p pa in
                  Dist.iter
                    (fun q' pq ->
                      alive' := (Exec.extend e act q', Rat.mul pa pq) :: !alive')
                    eta)
                choice)
            alive);
      (* Quotient before the budgets: the frontier the budgets see — and
         prune, by the same (prob desc, Exec.compare asc) total order — is
         the compressed one, so compression reduces truncation instead of
         competing with it. *)
      let alive' =
        if quotient then
          Trace.span ~args:(fun () -> [ ("layer", string_of_int step) ])
            "measure.quotient" (fun () ->
              compress_layer ~sig_of ~track ~qmass !alive')
        else !alive'
      in
      (* Width budget: prune the frontier to its most probable executions,
         accounting the pruned mass as truncation deficit. *)
      let alive', lost =
        match max_width with
        | Some w when List.length alive' > w ->
            let kept, dropped = truncate_entries ~keep:w alive' in
            (kept, Rat.add lost dropped)
        | _ -> (alive', lost)
      in
      (* Support budget: once completed + frontier executions exceed the
         cap, stop expanding — the surviving frontier is reported as
         completed (a partial measure), the rest as deficit. *)
      match max_execs with
      | Some cap when !n_finished' + List.length alive' > cap ->
          let kept, dropped = truncate_entries ~keep:(max 0 (cap - !n_finished')) alive' in
          end_layer ();
          (kept, !finished', Rat.add lost dropped)
      | _ ->
          end_layer ();
          go (step + 1) alive' !n_finished' !finished' lost
    end
  in
  let start_step, start_alive, start_finished = start_frontier auto from in
  let alive, finished, lost =
    go start_step start_alive (List.length start_finished) start_finished Rat.zero
  in
  if quotient && Obs.enabled () then Obs.set_gauge g_q_mass (Rat.to_string !qmass);
  ( finish alive finished lost,
    { f_depth = depth; f_alive = alive; f_finished = finished } )

(* ------------------------------------------------------- parallel engine *)

(* Frontier layers are embarrassingly parallel: each entry's one-step
   extension depends only on that entry. Workers claim chunks of the
   frontier array off a shared atomic cursor (chunked self-scheduling:
   fast workers steal the remaining chunks of slow ones), write each
   entry's extensions and halting mass into its own slot, and the
   coordinator merges slots in index order — so the merged multiset of
   entries, and hence every downstream sort/normalization, is identical to
   the sequential engine's no matter how the OS schedules the domains. *)
let par_exec_dist_budgeted ~domains ~chunk ~memo ~compress ~track ?max_execs
    ?max_width ?from auto sched ~depth =
  let n_workers = max 2 (min domains 64) in
  (* Per-domain memoization and interning: [Psioa.memoize] and [Hcons]
     caches are plain hashtables, so each worker gets its own instances
     (and choice cache) — domain-safe without hot-path locks; memo lookup
     totals stay conserved. Physical uniqueness of interned states holds
     per worker; cross-worker comparisons fall back to the structural
     path, which stays correct (and still shares intra-worker tails). *)
  let autos =
    Array.init n_workers (fun _ ->
        let a = wrap_compress ~compress auto in
        if memo then Psioa.memoize a else a)
  in
  let quotient = quotient_on ~compress sched in
  let sig_of = Psioa.signature autos.(0) in
  let qmass = ref Rat.zero in
  let choices = Array.map (fun a -> choice_fn ~memo a sched) autos in
  let shards = Array.init n_workers (fun _ -> Obs.new_shard ()) in
  (* Worker trace buffers mirror the Obs shards: acquired once per engine
     run from the {!Trace} freelist (so repeated traced runs reuse the
     rings instead of churning a capacity-sized array per worker per run),
     and only when tracing is already on — enabling tracing mid-run is
     unsupported (same caveat as Obs histograms). [busy_end.(w)] is the
     timestamp at which worker [w] ran out of chunks; the coordinator turns
     the gap up to its own post-barrier clock read into a synthetic
     [measure.barrier.wait] span on the worker's timeline. *)
  let tracing = Trace.enabled () in
  let tbufs =
    if tracing then Array.init n_workers (fun w -> Trace.acquire_buffer ~dom:w)
    else [||]
  in
  let busy_end = Array.make n_workers 0. in
  let layer_stats = layer_stats_probe () in
  let pool = Pool.create n_workers in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown pool;
      if tracing then Array.iter Trace.release_buffer tbufs)
  @@ fun () ->
  let rec go step frontier n_finished finished lost =
    let n = Array.length frontier in
    if step = depth || n = 0 then (Array.to_list frontier, finished, lost)
    else begin
      if Obs.enabled () then begin
        Obs.incr c_layers;
        Obs.observe h_width n
      end;
      let layer_tok = Trace.begin_span "measure.layer" in
      let layer_args () =
        [ ("layer", string_of_int step); ("width", string_of_int n) ]
      in
      let exts = Array.make n [] in
      let halts = Array.make n Rat.zero in
      (* First worker failure per chunk, keyed by the chunk's base index:
         the globally first failing entry always gets recorded (entries
         before it cannot stop any worker), so re-raising the minimum is
         deterministic. *)
      let errors = Array.make n_workers None in
      let next = Atomic.make 0 in
      let chunk_size =
        match chunk with Some c -> max 1 c | None -> max 1 (n / (n_workers * 8))
      in
      let expand_tok = Trace.begin_span "measure.expand" in
      Pool.run pool (fun w ->
          let auto = autos.(w) and choice_of = choices.(w) in
          let body () =
            let running = ref true in
            while !running do
              let lo = Atomic.fetch_and_add next chunk_size in
              if lo >= n then running := false
              else begin
                let hi = min n (lo + chunk_size) in
                let chunk_tok = Trace.begin_span "measure.chunk" in
                (try
                   for i = lo to hi - 1 do
                     let e, p = frontier.(i) in
                     let choice = choice_of e in
                     if not (Dist.is_proper choice) then
                       halts.(i) <- Rat.mul p (Dist.deficit choice);
                     let q = Exec.lstate e in
                     let acc = ref [] in
                     Dist.iter
                       (fun act pa ->
                         let eta = Psioa.step auto q act in
                         let pa = Rat.mul p pa in
                         Dist.iter
                           (fun q' pq ->
                             acc := (Exec.extend e act q', Rat.mul pa pq) :: !acc)
                           eta)
                       choice;
                     exts.(i) <- !acc
                   done
                 with exn ->
                   errors.(w) <- Some (lo, exn);
                   running := false);
                Trace.end_span
                  ~args:(fun () ->
                    [ ("layer", string_of_int step); ("lo", string_of_int lo);
                      ("n", string_of_int (hi - lo)) ])
                  chunk_tok
              end
            done;
            if tracing then busy_end.(w) <- Trace.now_us ()
          in
          Obs.with_shard shards.(w) (fun () ->
              if tracing then Trace.with_buffer tbufs.(w) body else body ()));
      Trace.end_span ~args:(fun () -> [ ("layer", string_of_int step) ]) expand_tok;
      Array.iter Obs.merge_shard shards;
      if tracing then begin
        let t_bar = Trace.now_us () in
        Array.iteri
          (fun w buf ->
            Trace.emit_span ~dom:w
              ~args:[ ("layer", string_of_int step) ]
              "measure.barrier.wait" ~ts_us:busy_end.(w)
              ~dur_us:(t_bar -. busy_end.(w));
            Trace.drain buf)
          tbufs
      end;
      (match
         Array.fold_left
           (fun best err ->
             match (best, err) with
             | None, e -> e
             | Some _, None -> best
             | Some (i, _), Some (j, _) -> if j < i then err else best)
           None errors
       with
      | Some (_, exn) -> raise exn
      | None -> ());
      let alive' = ref [] and finished' = ref finished and n_finished' = ref n_finished in
      Trace.span ~args:(fun () -> [ ("layer", string_of_int step) ]) "measure.merge"
        (fun () ->
          Array.iteri
            (fun i (e, _) ->
              let h = halts.(i) in
              if not (Rat.is_zero h) then begin
                Obs.incr c_finished;
                finished' := (e, h) :: !finished';
                incr n_finished'
              end;
              alive' := List.rev_append exts.(i) !alive')
            frontier);
      (* Same placement as the sequential engine: quotient first, budgets
         on the compressed frontier. The merge itself is insensitive to
         entry order, so the multicore frontier (assembled in index order
         but list-reversed per chunk) compresses to the identical classes. *)
      let alive' =
        if quotient then
          Trace.span ~args:(fun () -> [ ("layer", string_of_int step) ])
            "measure.quotient" (fun () ->
              compress_layer ~sig_of ~track ~qmass !alive')
        else !alive'
      in
      let alive', lost =
        match max_width with
        | Some w when List.length alive' > w ->
            let kept, dropped = truncate_entries ~keep:w alive' in
            (kept, Rat.add lost dropped)
        | _ -> (alive', lost)
      in
      let end_layer () =
        layer_stats ~layer:step;
        Trace.end_span ~args:layer_args layer_tok
      in
      match max_execs with
      | Some cap when !n_finished' + List.length alive' > cap ->
          let kept, dropped = truncate_entries ~keep:(max 0 (cap - !n_finished')) alive' in
          end_layer ();
          (kept, !finished', Rat.add lost dropped)
      | _ ->
          end_layer ();
          go (step + 1) (Array.of_list alive') !n_finished' !finished' lost
    end
  in
  let start_step, start_alive, start_finished = start_frontier auto from in
  let alive, finished, lost =
    go start_step (Array.of_list start_alive) (List.length start_finished)
      start_finished Rat.zero
  in
  if quotient && Obs.enabled () then Obs.set_gauge g_q_mass (Rat.to_string !qmass);
  ( finish alive finished lost,
    { f_depth = depth; f_alive = alive; f_finished = finished } )

(* -------------------------------------- barrier-free subtree engine *)

(* The smaller of two recorded failures, by [Exec.compare] on the failing
   execution — a total order on cone nodes, so the surviving failure is
   independent of the worker count, the donation pattern and the OS
   schedule. *)
let min_fail a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (e1, _), Some (e2, _) -> if Exec.compare e1 e2 <= 0 then a else b

(* One cone node's expansion, shared by the seed phase and the workers.
   The halting mass and the children are computed first and committed
   together by the caller on [Ok]; a raise from the scheduler or a
   transition lookup yields [Error] and commits {e nothing} — the failing
   node contributes neither mass nor children. Descendants of failing
   nodes are therefore never visited, so the visited node set — and with
   it the set of {e minimal} failing nodes — is a function of the model
   alone, not of how the tree was partitioned. *)
let expand_node auto choice_of (e, p) =
  match
    let choice = choice_of e in
    let h =
      if Dist.is_proper choice then Rat.zero else Rat.mul p (Dist.deficit choice)
    in
    let q = Exec.lstate e in
    let acc = ref [] in
    Dist.iter
      (fun act pa ->
        let eta = Psioa.step auto q act in
        let pa = Rat.mul p pa in
        Dist.iter
          (fun q' pq -> acc := (Exec.extend e act q', Rat.mul pa pq) :: !acc)
          eta)
      choice;
    (h, !acc)
  with
  | exception exn -> Error exn
  | res -> Ok res

(* Barrier-free expansion for unbudgeted [`Off]/[`Hcons] runs: no layer
   barriers, no per-layer merge. The coordinator first grows the frontier
   breadth-first ({e seed phase}, sequential) until it is wide enough to
   feed every worker several roots, sorts the roots by
   [(prob desc, Exec.compare asc)] — the same total order as budget
   pruning, so high-mass subtrees are handed out first — and then lets the
   pool loose: workers claim one root at a time off an atomic cursor and
   expand the whole subtree depth-first with their own memo/hcons/choice
   caches, accumulating local finished/alive lists. Load balancing is
   cooperative work donation: a busy worker that sees idle workers
   ([hungry] > 0) donates the {e shallowest} half of its stack — the
   largest remaining subtrees — to a shared overflow queue; idle workers
   take the queue's contents as their next work unit. The single merge at
   the end concatenates the per-worker lists and normalizes through
   {!Dist.make} (sorted by [Exec.compare], exact rational mass merging) —
   permutation-invariant, hence bit-identical to the sequential engine.

   Termination: [busy] counts workers holding work, guarded by [qm]. A
   worker goes idle only with the cursor exhausted and the queue empty;
   the last one to do so ([busy] = 0) broadcasts completion. A donor is
   busy for the whole donation, so the last idle transition cannot race
   with a concurrent donation. *)
let subtree_exec_dist ~domains ~memo ~compress ?from auto sched ~depth =
  let n_workers = max 2 (min domains 64) in
  let autos =
    Array.init n_workers (fun _ ->
        let a = wrap_compress ~compress auto in
        if memo then Psioa.memoize a else a)
  in
  let choices = Array.map (fun a -> choice_fn ~memo a sched) autos in
  let shards = Array.init n_workers (fun _ -> Obs.new_shard ()) in
  let tracing = Trace.enabled () in
  let tbufs =
    if tracing then Array.init n_workers (fun w -> Trace.acquire_buffer ~dom:w)
    else [||]
  in
  Fun.protect
    ~finally:(fun () -> if tracing then Array.iter Trace.release_buffer tbufs)
  @@ fun () ->
  (* Seed phase: breadth-first on the coordinator (worker 0's caches) until
     the frontier can feed every worker several subtrees. Failures are
     recorded, not raised: the engine always completes the surviving work
     first so the raised failure is the deterministic minimum. *)
  let seed_target = n_workers * 8 in
  let start_step, start_alive, start_finished = start_frontier auto from in
  let seed_finished = ref start_finished in
  let seed_fail = ref None in
  let seed_layers = ref 0 in
  let rec seed step alive =
    if step = depth || alive = [] || List.length alive >= seed_target then alive
    else begin
      incr seed_layers;
      let next = ref [] in
      List.iter
        (fun ((e, _) as entry) ->
          match expand_node autos.(0) choices.(0) entry with
          | Error exn -> seed_fail := min_fail !seed_fail (Some (e, exn))
          | Ok (h, kids) ->
              if not (Rat.is_zero h) then begin
                Obs.incr c_finished;
                seed_finished := (e, h) :: !seed_finished
              end;
              next := List.rev_append kids !next)
        alive;
      seed (step + 1) !next
    end
  in
  let seed_frontier =
    Trace.span
      ~args:(fun () -> [ ("layers", string_of_int !seed_layers) ])
      "measure.seed"
      (fun () -> seed start_step start_alive)
  in
  if seed_frontier = [] || Exec.length (fst (List.hd seed_frontier)) >= depth
  then begin
    (* The cone emptied or bottomed out before growing wide enough — the
       seed phase already did all the work. *)
    (match !seed_fail with Some (_, exn) -> raise exn | None -> ());
    ( finish seed_frontier !seed_finished Rat.zero,
      { f_depth = depth; f_alive = seed_frontier; f_finished = !seed_finished } )
  end
  else begin
    let roots = Array.of_list seed_frontier in
    Array.sort
      (fun (e1, p1) (e2, p2) ->
        let c = Rat.compare p2 p1 in
        if c <> 0 then c else Exec.compare e1 e2)
      roots;
    let n_roots = Array.length roots in
    let next = Atomic.make 0 in
    let qm = Mutex.create () in
    let qc = Condition.create () in
    let overflow = ref [] in
    let hungry = Atomic.make 0 in
    let busy = ref n_workers in
    let all_done = ref false in
    let outs = Array.make n_workers [] in
    let finisheds = Array.make n_workers [] in
    let fails = Array.make n_workers None in
    let pool = Pool.create n_workers in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    Pool.run pool (fun w ->
        let auto = autos.(w) and choice_of = choices.(w) in
        let body () =
          let stack = ref [] in
          let out = ref [] and fin = ref [] in
          let am_busy = ref true in
          let donate () =
            if Atomic.get hungry > 0 then
              match !stack with
              | [] | [ _ ] -> ()
              | s ->
                  (* Keep the top (deepest) entries, donate the bottom
                     half — the shallowest nodes, i.e. the largest
                     remaining subtrees. Donation is rare (only while
                     somebody is idle), so the list split is off the
                     common path. *)
                  let n = List.length s in
                  let rec split i l =
                    if i = 0 then ([], l)
                    else
                      match l with
                      | [] -> ([], [])
                      | x :: tl ->
                          let k, d = split (i - 1) tl in
                          (x :: k, d)
                  in
                  let kept, donated = split (n - (n / 2)) s in
                  stack := kept;
                  Mutex.lock qm;
                  overflow := List.rev_append donated !overflow;
                  Condition.broadcast qc;
                  Mutex.unlock qm
          in
          let run_unit src entries =
            let tok = Trace.begin_span "measure.subtree" in
            let nodes = ref 0 in
            stack := entries;
            let running = ref true in
            while !running do
              match !stack with
              | [] -> running := false
              | ((e, _) as entry) :: rest ->
                  stack := rest;
                  incr nodes;
                  if Exec.length e >= depth then out := entry :: !out
                  else begin
                    donate ();
                    match expand_node auto choice_of entry with
                    | Error exn -> fails.(w) <- min_fail fails.(w) (Some (e, exn))
                    | Ok (h, kids) ->
                        if not (Rat.is_zero h) then begin
                          Obs.incr c_finished;
                          fin := (e, h) :: !fin
                        end;
                        stack := List.rev_append kids !stack
                  end
            done;
            Trace.end_span
              ~args:(fun () -> [ ("src", src); ("nodes", string_of_int !nodes) ])
              tok
          in
          let rec claim () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n_roots then begin
              Obs.incr c_sub_roots;
              run_unit (Printf.sprintf "root:%d" i) [ roots.(i) ];
              claim ()
            end
            else idle ()
          and idle () =
            Mutex.lock qm;
            if !overflow <> [] then begin
              let work = !overflow in
              overflow := [];
              Mutex.unlock qm;
              Obs.incr c_sub_steals;
              run_unit "steal" work;
              claim ()
            end
            else begin
              busy := !busy - 1;
              am_busy := false;
              if !busy = 0 then begin
                all_done := true;
                Condition.broadcast qc;
                Mutex.unlock qm
              end
              else begin
                Atomic.incr hungry;
                let tok = Trace.begin_span "measure.steal.idle" in
                let rec wait () =
                  if !all_done then begin
                    Atomic.decr hungry;
                    Mutex.unlock qm;
                    Trace.end_span tok
                  end
                  else if !overflow <> [] then begin
                    let work = !overflow in
                    overflow := [];
                    busy := !busy + 1;
                    am_busy := true;
                    Atomic.decr hungry;
                    Mutex.unlock qm;
                    Trace.end_span tok;
                    Obs.incr c_sub_steals;
                    run_unit "steal" work;
                    claim ()
                  end
                  else begin
                    Condition.wait qc qm;
                    wait ()
                  end
                in
                wait ()
              end
            end
          in
          Fun.protect
            ~finally:(fun () ->
              outs.(w) <- !out;
              finisheds.(w) <- !fin;
              if !am_busy then begin
                (* Exceptional escape past the claim loop (e.g. an
                   allocation failure): keep the termination protocol
                   sound so the surviving workers still finish. *)
                Mutex.lock qm;
                busy := !busy - 1;
                if !busy = 0 then begin
                  all_done := true;
                  Condition.broadcast qc
                end;
                Mutex.unlock qm
              end)
            claim
        in
        Obs.with_shard shards.(w) (fun () ->
            if tracing then Trace.with_buffer tbufs.(w) body else body ()));
    Array.iter Obs.merge_shard shards;
    if tracing then Array.iter Trace.drain tbufs;
    (match Array.fold_left min_fail !seed_fail fails with
    | Some (_, exn) -> raise exn
    | None -> ());
    Trace.span "measure.merge" @@ fun () ->
    let alive = Array.fold_left (fun acc o -> List.rev_append o acc) [] outs in
    let finished =
      Array.fold_left (fun acc f -> List.rev_append f acc) !seed_finished finisheds
    in
    ( finish alive finished Rat.zero,
      { f_depth = depth; f_alive = alive; f_finished = finished } )
  end

(* ---------------------------------------------------------- entry points *)

type engine = [ `Auto | `Layered | `Subtree ]

let needs_layers ~max_execs ~max_width ~compress sched =
  max_execs <> None || max_width <> None || quotient_on ~compress sched

let exec_dist_budgeted ?(engine = `Auto) ?(memo = false) ?max_execs ?max_width
    ?(domains = 1) ?chunk ?(compress = `Off) ?track auto sched ~depth =
  let layered = needs_layers ~max_execs ~max_width ~compress sched in
  (match engine with
  | `Subtree when layered ->
      invalid_arg
        "Par_measure: the `Subtree engine supports neither ?max_execs/?max_width \
         budgets nor an active `Quotient (use `Layered or `Auto)"
  | _ -> ());
  fst
    (if domains <= 1 then
       seq_exec_dist_budgeted ~memo ~compress ~track ?max_execs ?max_width auto
         sched ~depth
     else if layered || engine = `Layered then
       par_exec_dist_budgeted ~domains ~chunk ~memo ~compress ~track ?max_execs
         ?max_width auto sched ~depth
     else subtree_exec_dist ~domains ~memo ~compress auto sched ~depth)

(* Unbudgeted expansion that also returns its final frontier, and can start
   from a previously returned one instead of the initial execution — the
   incremental-deepening hook used by the serving layer's result cache.
   Resuming is bit-identical to a one-shot run at the larger depth: every
   alive entry of a depth-[d] frontier has length [d], {!Dist.make}
   normalizes away list order, rational mass addition is exact and
   commutative, and the quotient's representative choice is
   [Exec.compare]-minimal per class — none of them can see how the prefix
   layers were computed. *)
let exec_dist_frontier ?(engine = `Auto) ?(memo = false) ?(domains = 1) ?chunk
    ?(compress = `Off) ?from auto sched ~depth =
  (match from with
  | Some f when f.f_depth > depth ->
      invalid_arg
        (Printf.sprintf
           "Par_measure.exec_dist_frontier: resume frontier is at depth %d, \
            deeper than the requested depth %d"
           f.f_depth depth)
  | _ -> ());
  let layered = needs_layers ~max_execs:None ~max_width:None ~compress sched in
  (match engine with
  | `Subtree when layered ->
      invalid_arg
        "Par_measure: the `Subtree engine supports neither ?max_execs/?max_width \
         budgets nor an active `Quotient (use `Layered or `Auto)"
  | _ -> ());
  let res, frontier =
    if domains <= 1 then
      seq_exec_dist_budgeted ~memo ~compress ~track:None ?from auto sched ~depth
    else if layered || engine = `Layered then
      par_exec_dist_budgeted ~domains ~chunk ~memo ~compress ~track:None ?from auto
        sched ~depth
    else subtree_exec_dist ~domains ~memo ~compress ?from auto sched ~depth
  in
  match res with `Exact d | `Truncated (d, _) -> (d, frontier)

let exec_dist ?engine ?memo ?max_execs ?max_width ?domains ?chunk ?compress ?track
    auto sched ~depth =
  match
    exec_dist_budgeted ?engine ?memo ?max_execs ?max_width ?domains ?chunk ?compress
      ?track auto sched ~depth
  with
  | `Exact d | `Truncated (d, _) -> d

module For_tests = struct
  let truncate_entries = truncate_entries
  module Pool = Pool
end
