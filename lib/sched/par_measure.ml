open Cdse_prob
open Cdse_psioa
module Obs = Cdse_obs.Obs
module Trace = Cdse_obs.Trace

type 'a budgeted = [ `Exact of 'a | `Truncated of 'a * Rat.t ]

type compress = [ `Off | `Hcons | `Quotient ]

(* Instruments for the budgeted expansion below (shared by name with any
   other reader: registration is idempotent). The frontier-width histogram
   is fed once per layer by the coordinating domain;
   [measure.truncation_deficit] mirrors the [`Truncated] deficit exactly
   ([Rat.to_string], reparsable with [Rat.of_string]) and reads "0" after
   an [`Exact] run. Worker domains only ever touch counters, through the
   per-domain {!Obs.shard}s merged at layer barriers. *)
let h_width = Obs.histogram "measure.frontier.width"
let c_layers = Obs.counter "measure.layers"
let c_finished = Obs.counter "measure.finished"
let c_truncated = Obs.counter "measure.truncated"
let c_choice_hit = Obs.counter "measure.choice.hit"
let c_choice_miss = Obs.counter "measure.choice.miss"
let g_deficit = Obs.gauge "measure.truncation_deficit"

(* Compression instruments. [measure.frontier.width_compressed] mirrors
   [measure.frontier.width] but records the post-quotient width of each
   layer; [quotient.classes] / [quotient.merged] count the surviving
   classes and the entries absorbed into another representative across
   the run; [quotient.mass_merged] is the cumulative exact-rational mass
   those absorbed entries carried ([Rat.to_string], reparsable). All are
   coordinator-only — the quotient runs between parallel sections — while
   [hcons.hits]/[hcons.misses] (registered in {!Cdse_psioa.Hcons}) are
   worker counters that accumulate through the per-domain shards. *)
let h_width_c = Obs.histogram "measure.frontier.width_compressed"
let c_q_classes = Obs.counter "quotient.classes"
let c_q_merged = Obs.counter "quotient.merged"
let g_q_mass = Obs.gauge "quotient.mass_merged"

(* Per-layer memo/hcons/choice-cache hit deltas, emitted as a
   [measure.layer.stats] instant for the trace summary. Reads the global
   counter records, so it must run on the coordinating domain after worker
   shards are merged — the layer barrier. One probe per engine run (the
   deltas are against the previous layer of the same run). *)
let layer_stats_probe () =
  let tracked =
    [| ("choice_hit", "measure.choice.hit"); ("choice_miss", "measure.choice.miss");
       ("memo_hit", "psioa.memo.step.hit"); ("memo_miss", "psioa.memo.step.miss");
       ("hcons_hit", "hcons.hits"); ("hcons_miss", "hcons.misses") |]
  in
  let prev = Array.make (Array.length tracked) 0 in
  fun ~layer ->
    if Trace.enabled () then begin
      let args = ref [] in
      Array.iteri
        (fun i (label, name) ->
          let v = Obs.counter_value name in
          if v - prev.(i) <> 0 then
            args := (label, string_of_int (v - prev.(i))) :: !args;
          prev.(i) <- v)
        tracked;
      if !args <> [] then
        Trace.instant
          ~args:(fun () -> ("layer", string_of_int layer) :: List.rev !args)
          "measure.layer.stats"
    end

(* ------------------------------------------------------------------ pool *)

(* A reusable barrier-style pool: [size - 1] spawned domains plus the
   calling domain (worker 0). [run] hands every worker the same job and
   returns once all have finished — one lock round-trip per worker per
   layer, nothing on the per-entry hot path. Jobs must not raise (the
   engine wraps worker bodies and reports failures out of band). *)
module Pool = struct
  type t = {
    size : int;
    mutex : Mutex.t;
    start : Condition.t;
    finished : Condition.t;
    mutable job : (int -> unit) option;
    mutable epoch : int;
    mutable pending : int;
    mutable stop : bool;
    mutable doms : unit Domain.t list;
  }

  let worker t wid =
    let epoch = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.mutex;
      while (not t.stop) && t.epoch = !epoch do
        Condition.wait t.start t.mutex
      done;
      if t.stop then begin
        Mutex.unlock t.mutex;
        running := false
      end
      else begin
        epoch := t.epoch;
        let job = Option.get t.job in
        Mutex.unlock t.mutex;
        job wid;
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      end
    done

  let create size =
    let t =
      { size; mutex = Mutex.create (); start = Condition.create ();
        finished = Condition.create (); job = None; epoch = 0; pending = 0;
        stop = false; doms = [] }
    in
    t.doms <- List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
    t

  let run t job =
    if t.size = 1 then job 0
    else begin
      Mutex.lock t.mutex;
      t.job <- Some job;
      t.pending <- t.size - 1;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.start;
      Mutex.unlock t.mutex;
      job 0;
      Mutex.lock t.mutex;
      while t.pending > 0 do
        Condition.wait t.finished t.mutex
      done;
      t.job <- None;
      Mutex.unlock t.mutex
    end

  let shutdown t =
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.doms;
    t.doms <- []
end

(* ---------------------------------------------------------- shared parts *)

(* Keep the [keep] most probable entries of a frontier and return the
   dropped mass. The sort key [(probability desc, Exec.compare asc)] is a
   total order on any frontier (two distinct cone branches are distinct
   executions, so [Exec.compare] never ties), hence the kept set, the kept
   order and the dropped-mass sum are all independent of the input
   permutation — this is what makes budgeted truncation deterministic
   under both sequential iteration and multicore chunking. Only ever
   called when a budget is exceeded: the unbudgeted path never sorts. *)
let truncate_entries ~keep entries =
  Trace.span ~args:(fun () -> [ ("keep", string_of_int keep) ]) "measure.truncate"
  @@ fun () ->
  let arr = Array.of_list entries in
  Array.stable_sort
    (fun (e1, p1) (e2, p2) ->
      let c = Rat.compare p2 p1 in
      if c <> 0 then c else Exec.compare e1 e2)
    arr;
  let kept = ref [] and lost = ref Rat.zero in
  Array.iteri
    (fun i ((_, p) as entry) ->
      if i < keep then kept := entry :: !kept else lost := Rat.add !lost p)
    arr;
  Obs.add c_truncated (Stdlib.max 0 (Array.length arr - keep));
  (List.rev !kept, !lost)

(* Validated scheduler choice, optionally cached. With [~memo:true] and a
   {!Scheduler.is_memoryless} scheduler the validated choice is a function
   of [(length, lstate)] alone (every alive execution at frontier layer [i]
   has length [i]), so it is cached per engine instance. The cache is
   engine-local: the parallel path builds one per worker domain, so the
   hit/miss split depends on the domain count but the {e sum} (one lookup
   per frontier entry) does not. *)
let choice_fn ~memo auto sched =
  if memo && Scheduler.is_memoryless sched then begin
    let tbl = Hashtbl.create 32 in
    fun e ->
      let key = (Exec.length e, Exec.lstate e) in
      match Hashtbl.find_opt tbl key with
      | Some d ->
          Obs.incr c_choice_hit;
          d
      | None ->
          Obs.incr c_choice_miss;
          let d = Scheduler.validate_choice auto sched e in
          Hashtbl.add tbl key d;
          d
  end
  else fun e -> Scheduler.validate_choice auto sched e

let finish alive finished lost =
  if Obs.enabled () then Obs.set_gauge g_deficit (Rat.to_string lost);
  let d = Dist.make ~compare:Exec.compare (List.rev_append finished alive) in
  if Rat.is_zero lost then `Exact d else `Truncated (d, lost)

(* Quotient merging is sound exactly when the scheduler's future choices
   are a function of [(length, last state)] — the {!Scheduler.is_memoryless}
   promise. With a history-dependent scheduler [`Quotient] silently
   degrades to [`Hcons] (interning only), which is always sound. *)
let quotient_on ~compress sched =
  (match compress with `Quotient -> true | `Off | `Hcons -> false)
  && Scheduler.is_memoryless sched

(* One layer of on-the-fly quotient: pool probabilistically-bisimilar
   frontier entries onto their minimal representative before the next
   expansion. [qmass] accumulates the absorbed mass for the run gauge.
   Runs on the coordinating domain only (between parallel sections). *)
let compress_layer ~sig_of ~track ~qmass entries =
  let classes, merged, mass = Quotient.merge_frontier ~sig_of ?track entries in
  if not (Rat.is_zero mass) then qmass := Rat.add !qmass mass;
  if Obs.enabled () then begin
    Obs.add c_q_classes (List.length classes);
    Obs.add c_q_merged merged;
    Obs.observe h_width_c (List.length classes)
  end;
  classes

(* The [`Hcons] and [`Quotient] paths route every state the engine sees
   through an intern table; per engine instance sequentially, per worker
   domain in the parallel engine (like the memo caches — the tables are
   plain hashtables). *)
let wrap_compress ~compress auto =
  match compress with
  | `Off -> auto
  | `Hcons | `Quotient -> Hcons.auto (Hcons.create ()) auto

(* ------------------------------------------------------ sequential engine *)

(* Iteratively expand the cone frontier. [alive] holds executions the
   scheduler may still extend, [finished] the accumulated halting mass.

   With [~memo:true] the expansion reuses {!Psioa.memoize} so signature and
   transition lookups are computed once per [(state, action)] across the
   whole frontier. Both caches are per-call: the results are
   observationally identical, so the flag is purely a performance knob. *)
let seq_exec_dist_budgeted ~memo ~compress ~track ?max_execs ?max_width auto sched
    ~depth =
  let auto = wrap_compress ~compress auto in
  let auto = if memo then Psioa.memoize auto else auto in
  let choice_of = choice_fn ~memo auto sched in
  let quotient = quotient_on ~compress sched in
  let sig_of = Psioa.signature auto in
  let qmass = ref Rat.zero in
  let layer_stats = layer_stats_probe () in
  let rec go step alive n_finished finished lost =
    if step = depth || alive = [] then finish alive finished lost
    else begin
      if Obs.enabled () then begin
        Obs.incr c_layers;
        Obs.observe h_width (List.length alive)
      end;
      let layer_tok = Trace.begin_span "measure.layer" in
      let layer_args () =
        [ ("layer", string_of_int step);
          ("width", string_of_int (List.length alive)) ]
      in
      let end_layer () =
        layer_stats ~layer:step;
        Trace.end_span ~args:layer_args layer_tok
      in
      let alive' = ref [] and finished' = ref finished and n_finished' = ref n_finished in
      Trace.span ~args:(fun () -> [ ("layer", string_of_int step) ]) "measure.expand"
        (fun () ->
          List.iter
            (fun (e, p) ->
              let choice = choice_of e in
              if not (Dist.is_proper choice) then begin
                let halt_mass = Rat.mul p (Dist.deficit choice) in
                if not (Rat.is_zero halt_mass) then begin
                  Obs.incr c_finished;
                  finished' := (e, halt_mass) :: !finished';
                  incr n_finished'
                end
              end;
              let q = Exec.lstate e in
              Dist.iter
                (fun act pa ->
                  let eta = Psioa.step auto q act in
                  let pa = Rat.mul p pa in
                  Dist.iter
                    (fun q' pq ->
                      alive' := (Exec.extend e act q', Rat.mul pa pq) :: !alive')
                    eta)
                choice)
            alive);
      (* Quotient before the budgets: the frontier the budgets see — and
         prune, by the same (prob desc, Exec.compare asc) total order — is
         the compressed one, so compression reduces truncation instead of
         competing with it. *)
      let alive' =
        if quotient then
          Trace.span ~args:(fun () -> [ ("layer", string_of_int step) ])
            "measure.quotient" (fun () ->
              compress_layer ~sig_of ~track ~qmass !alive')
        else !alive'
      in
      (* Width budget: prune the frontier to its most probable executions,
         accounting the pruned mass as truncation deficit. *)
      let alive', lost =
        match max_width with
        | Some w when List.length alive' > w ->
            let kept, dropped = truncate_entries ~keep:w alive' in
            (kept, Rat.add lost dropped)
        | _ -> (alive', lost)
      in
      (* Support budget: once completed + frontier executions exceed the
         cap, stop expanding — the surviving frontier is reported as
         completed (a partial measure), the rest as deficit. *)
      match max_execs with
      | Some cap when !n_finished' + List.length alive' > cap ->
          let kept, dropped = truncate_entries ~keep:(max 0 (cap - !n_finished')) alive' in
          end_layer ();
          finish kept !finished' (Rat.add lost dropped)
      | _ ->
          end_layer ();
          go (step + 1) alive' !n_finished' !finished' lost
    end
  in
  let res = go 0 [ (Exec.init (Psioa.start auto), Rat.one) ] 0 [] Rat.zero in
  if quotient && Obs.enabled () then Obs.set_gauge g_q_mass (Rat.to_string !qmass);
  res

(* ------------------------------------------------------- parallel engine *)

(* Frontier layers are embarrassingly parallel: each entry's one-step
   extension depends only on that entry. Workers claim chunks of the
   frontier array off a shared atomic cursor (chunked self-scheduling:
   fast workers steal the remaining chunks of slow ones), write each
   entry's extensions and halting mass into its own slot, and the
   coordinator merges slots in index order — so the merged multiset of
   entries, and hence every downstream sort/normalization, is identical to
   the sequential engine's no matter how the OS schedules the domains. *)
let par_exec_dist_budgeted ~domains ~chunk ~memo ~compress ~track ?max_execs
    ?max_width auto sched ~depth =
  let n_workers = max 2 (min domains 64) in
  (* Per-domain memoization and interning: [Psioa.memoize] and [Hcons]
     caches are plain hashtables, so each worker gets its own instances
     (and choice cache) — domain-safe without hot-path locks; memo lookup
     totals stay conserved. Physical uniqueness of interned states holds
     per worker; cross-worker comparisons fall back to the structural
     path, which stays correct (and still shares intra-worker tails). *)
  let autos =
    Array.init n_workers (fun _ ->
        let a = wrap_compress ~compress auto in
        if memo then Psioa.memoize a else a)
  in
  let quotient = quotient_on ~compress sched in
  let sig_of = Psioa.signature autos.(0) in
  let qmass = ref Rat.zero in
  let choices = Array.map (fun a -> choice_fn ~memo a sched) autos in
  let shards = Array.init n_workers (fun _ -> Obs.new_shard ()) in
  (* Worker trace buffers mirror the Obs shards: allocated once per engine
     run, and only when tracing is already on — enabling tracing mid-run is
     unsupported (same caveat as Obs histograms). [busy_end.(w)] is the
     timestamp at which worker [w] ran out of chunks; the coordinator turns
     the gap up to its own post-barrier clock read into a synthetic
     [measure.barrier.wait] span on the worker's timeline. *)
  let tracing = Trace.enabled () in
  let tbufs =
    if tracing then Array.init n_workers (fun w -> Trace.buffer ~dom:w)
    else [||]
  in
  let busy_end = Array.make n_workers 0. in
  let layer_stats = layer_stats_probe () in
  let pool = Pool.create n_workers in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let rec go step frontier n_finished finished lost =
    let n = Array.length frontier in
    if step = depth || n = 0 then finish (Array.to_list frontier) finished lost
    else begin
      if Obs.enabled () then begin
        Obs.incr c_layers;
        Obs.observe h_width n
      end;
      let layer_tok = Trace.begin_span "measure.layer" in
      let layer_args () =
        [ ("layer", string_of_int step); ("width", string_of_int n) ]
      in
      let exts = Array.make n [] in
      let halts = Array.make n Rat.zero in
      (* First worker failure per chunk, keyed by the chunk's base index:
         the globally first failing entry always gets recorded (entries
         before it cannot stop any worker), so re-raising the minimum is
         deterministic. *)
      let errors = Array.make n_workers None in
      let next = Atomic.make 0 in
      let chunk_size =
        match chunk with Some c -> max 1 c | None -> max 1 (n / (n_workers * 8))
      in
      let expand_tok = Trace.begin_span "measure.expand" in
      Pool.run pool (fun w ->
          let auto = autos.(w) and choice_of = choices.(w) in
          let body () =
            let running = ref true in
            while !running do
              let lo = Atomic.fetch_and_add next chunk_size in
              if lo >= n then running := false
              else begin
                let hi = min n (lo + chunk_size) in
                let chunk_tok = Trace.begin_span "measure.chunk" in
                (try
                   for i = lo to hi - 1 do
                     let e, p = frontier.(i) in
                     let choice = choice_of e in
                     if not (Dist.is_proper choice) then
                       halts.(i) <- Rat.mul p (Dist.deficit choice);
                     let q = Exec.lstate e in
                     let acc = ref [] in
                     Dist.iter
                       (fun act pa ->
                         let eta = Psioa.step auto q act in
                         let pa = Rat.mul p pa in
                         Dist.iter
                           (fun q' pq ->
                             acc := (Exec.extend e act q', Rat.mul pa pq) :: !acc)
                           eta)
                       choice;
                     exts.(i) <- !acc
                   done
                 with exn ->
                   errors.(w) <- Some (lo, exn);
                   running := false);
                Trace.end_span
                  ~args:(fun () ->
                    [ ("layer", string_of_int step); ("lo", string_of_int lo);
                      ("n", string_of_int (hi - lo)) ])
                  chunk_tok
              end
            done;
            if tracing then busy_end.(w) <- Trace.now_us ()
          in
          Obs.with_shard shards.(w) (fun () ->
              if tracing then Trace.with_buffer tbufs.(w) body else body ()));
      Trace.end_span ~args:(fun () -> [ ("layer", string_of_int step) ]) expand_tok;
      Array.iter Obs.merge_shard shards;
      if tracing then begin
        let t_bar = Trace.now_us () in
        Array.iteri
          (fun w buf ->
            Trace.emit_span ~dom:w
              ~args:[ ("layer", string_of_int step) ]
              "measure.barrier.wait" ~ts_us:busy_end.(w)
              ~dur_us:(t_bar -. busy_end.(w));
            Trace.drain buf)
          tbufs
      end;
      (match
         Array.fold_left
           (fun best err ->
             match (best, err) with
             | None, e -> e
             | Some _, None -> best
             | Some (i, _), Some (j, _) -> if j < i then err else best)
           None errors
       with
      | Some (_, exn) -> raise exn
      | None -> ());
      let alive' = ref [] and finished' = ref finished and n_finished' = ref n_finished in
      Trace.span ~args:(fun () -> [ ("layer", string_of_int step) ]) "measure.merge"
        (fun () ->
          Array.iteri
            (fun i (e, _) ->
              let h = halts.(i) in
              if not (Rat.is_zero h) then begin
                Obs.incr c_finished;
                finished' := (e, h) :: !finished';
                incr n_finished'
              end;
              alive' := List.rev_append exts.(i) !alive')
            frontier);
      (* Same placement as the sequential engine: quotient first, budgets
         on the compressed frontier. The merge itself is insensitive to
         entry order, so the multicore frontier (assembled in index order
         but list-reversed per chunk) compresses to the identical classes. *)
      let alive' =
        if quotient then
          Trace.span ~args:(fun () -> [ ("layer", string_of_int step) ])
            "measure.quotient" (fun () ->
              compress_layer ~sig_of ~track ~qmass !alive')
        else !alive'
      in
      let alive', lost =
        match max_width with
        | Some w when List.length alive' > w ->
            let kept, dropped = truncate_entries ~keep:w alive' in
            (kept, Rat.add lost dropped)
        | _ -> (alive', lost)
      in
      let end_layer () =
        layer_stats ~layer:step;
        Trace.end_span ~args:layer_args layer_tok
      in
      match max_execs with
      | Some cap when !n_finished' + List.length alive' > cap ->
          let kept, dropped = truncate_entries ~keep:(max 0 (cap - !n_finished')) alive' in
          end_layer ();
          finish kept !finished' (Rat.add lost dropped)
      | _ ->
          end_layer ();
          go (step + 1) (Array.of_list alive') !n_finished' !finished' lost
    end
  in
  let res = go 0 [| (Exec.init (Psioa.start auto), Rat.one) |] 0 [] Rat.zero in
  if quotient && Obs.enabled () then Obs.set_gauge g_q_mass (Rat.to_string !qmass);
  res

(* ---------------------------------------------------------- entry points *)

let exec_dist_budgeted ?(memo = false) ?max_execs ?max_width ?(domains = 1) ?chunk
    ?(compress = `Off) ?track auto sched ~depth =
  if domains <= 1 then
    seq_exec_dist_budgeted ~memo ~compress ~track ?max_execs ?max_width auto sched
      ~depth
  else
    par_exec_dist_budgeted ~domains ~chunk ~memo ~compress ~track ?max_execs
      ?max_width auto sched ~depth

let exec_dist ?memo ?max_execs ?max_width ?domains ?chunk ?compress ?track auto sched
    ~depth =
  match
    exec_dist_budgeted ?memo ?max_execs ?max_width ?domains ?chunk ?compress ?track
      auto sched ~depth
  with
  | `Exact d | `Truncated (d, _) -> d

module For_tests = struct
  let truncate_entries = truncate_entries
end
