open Cdse_prob
open Cdse_psioa
module Obs = Cdse_obs.Obs

let c_validations = Obs.counter "sched.validations"

type t = {
  name : string;
  memoryless : bool;
  validated : bool;
  choose : Exec.t -> Action.t Dist.t;
}

exception Bad_choice of { scheduler : string; state : Value.t; action : Action.t }

(* Name the scheduler, render the offending state in full and show the
   action: enough to reproduce the bad choice without a debugger. *)
let () =
  Printexc.register_printer (function
    | Bad_choice { scheduler; state; action } ->
        Some
          (Printf.sprintf
             "Scheduler.Bad_choice: scheduler %S chose action %s outside the signature at state %s"
             scheduler (Action.to_string action) (Value.to_string state))
    | _ -> None)

let make ?(memoryless = false) ?(validated = false) ~name choose =
  { name; memoryless; validated; choose }

let is_memoryless s = s.memoryless

let empty_choice = Dist.empty ~compare:Action.compare

let halt = { name = "halt"; memoryless = true; validated = true; choose = (fun _ -> empty_choice) }

(* Locally controlled actions (output ∪ internal) at the last state: the
   closed-world pool the standard schedulers draw from. Free inputs of the
   composite are left to explicit (oblivious/custom) schedulers. *)
let local_pool a e = Sigs.local (Psioa.signature a (Exec.lstate e))

let uniform a =
  make ~memoryless:true ~validated:true ~name:(Printf.sprintf "uniform(%s)" (Psioa.name a)) (fun e ->
      let acts = Action_set.elements (local_pool a e) in
      match acts with [] -> empty_choice | _ -> Dist.uniform ~compare:Action.compare acts)

let first_enabled a =
  make ~memoryless:true ~validated:true ~name:(Printf.sprintf "first(%s)" (Psioa.name a)) (fun e ->
      match Action_set.min_elt_opt (local_pool a e) with
      | None -> empty_choice
      | Some act -> Dist.dirac ~compare:Action.compare act)

let first_enabled_where ?(name = "first-where") pred a =
  (* Deterministic like [first_enabled], but the pick is restricted to the
     pool actions passing [pred e] — the predicate sees the whole history,
     so the promise of memorylessness is dropped. When the pool is
     non-empty but fully filtered the scheduler halts deliberately (empty
     choice, deficit 1), exactly like an exhausted [bounded]. *)
  make ~memoryless:false ~validated:true
    ~name:(Printf.sprintf "%s(%s)" name (Psioa.name a))
    (fun e ->
      match
        Action_set.min_elt_opt (Action_set.filter (pred e) (local_pool a e))
      with
      | None -> empty_choice
      | Some act -> Dist.dirac ~compare:Action.compare act)

let round_robin a =
  make ~memoryless:true ~validated:true ~name:(Printf.sprintf "round-robin(%s)" (Psioa.name a)) (fun e ->
      let acts = Action_set.elements (local_pool a e) in
      match acts with
      | [] -> empty_choice
      | _ -> Dist.dirac ~compare:Action.compare (List.nth acts (Exec.length e mod List.length acts)))

let oblivious a script =
  let script = Array.of_list script in
  make ~memoryless:true ~validated:true ~name:(Printf.sprintf "oblivious(%s,%d)" (Psioa.name a) (Array.length script)) (fun e ->
      let i = Exec.length e in
      if i >= Array.length script then empty_choice
      else
        let act = script.(i) in
        if Psioa.is_enabled a (Exec.lstate e) act then Dist.dirac ~compare:Action.compare act
        else empty_choice)

let oblivious_local a script =
  let script = Array.of_list script in
  make ~memoryless:true ~validated:true ~name:(Printf.sprintf "oblivious-local(%s,%d)" (Psioa.name a) (Array.length script))
    (fun e ->
      let i = Exec.length e in
      if i >= Array.length script then empty_choice
      else
        let act = script.(i) in
        if Action_set.mem act (local_pool a e) then Dist.dirac ~compare:Action.compare act
        else empty_choice)

(* The bound is carried in the name so that is_bounded can recover it
   without an extra record field leaking into every scheduler. *)
let bounded b s =
  { name = Printf.sprintf "bounded[%d] %s" b s.name;
    memoryless = s.memoryless;
    validated = s.validated;
    choose = (fun e -> if Exec.length e >= b then empty_choice else s.choose e) }

let is_bounded s = Scanf.sscanf_opt s.name "bounded[%d]" (fun b -> b)

(* The signature is only computed when the choice is non-empty (halting
   choices dominate the cone frontier's leaves), and membership is checked
   per component via [Sigs.classify] — no union set is materialized. *)
let validate_choice a s e =
  let d = s.choose e in
  if (not s.validated) && Dist.size d > 0 then begin
    Obs.incr c_validations;
    let sg = Psioa.signature a (Exec.lstate e) in
    Dist.iter
      (fun act _ ->
        if Sigs.classify act sg = `Absent then
          raise (Bad_choice { scheduler = s.name; state = Exec.lstate e; action = act }))
      d
  end;
  d
