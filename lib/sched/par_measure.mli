(** Multicore exact-measure engine (OCaml 5 domains).

    The cone expansion of {!Measure.exec_dist} proceeds layer by layer, and
    each frontier execution's one-step extension is independent of every
    other's — embarrassingly parallel work. This module shards each layer
    across a reusable pool of OCaml 5 [Domain]s: workers claim chunks of
    the frontier array off an atomic cursor (chunked self-scheduling, so
    fast workers take over the remainder of slow ones), accumulate into
    per-domain state, and the coordinating domain merges the per-entry
    results in frontier order at the layer barrier.

    {2 Determinism contract}

    The result is {b bit-identical to the sequential engine}, for every
    domain count, chunk size and OS scheduling of the workers:

    - the returned distribution satisfies {!Cdse_prob.Dist.equal} with the
      sequential one {e and} has the same in-memory normal form (entries
      sorted by {!Cdse_psioa.Exec.compare}, exact rationals in canonical
      form — rational arithmetic is exact, so merge order cannot perturb
      masses);
    - the [`Exact] / [`Truncated] tag and the truncation deficit are
      identical — budget pruning sorts by the total order
      [(probability descending, Exec.compare ascending)], which does not
      depend on the arrival order of frontier entries;
    - the {!Cdse_obs.Obs} engine totals are conserved:
      [measure.layers], [measure.finished], [measure.truncated], the
      [measure.frontier.width] histogram and the
      [measure.truncation_deficit] gauge are identical to a sequential
      run, and the memoization and choice-cache counters are conserved as
      {e sums} ([hit + miss] = one lookup per query; the split between
      hit and miss depends on the domain count, because each worker warms
      its own cache).

    Worker domains never touch shared mutable state on the hot path: each
    gets its own {!Cdse_psioa.Psioa.memoize} instance and validated-choice
    cache, and its counter increments accumulate in a per-domain
    {!Cdse_obs.Obs} shard merged at the layer barrier.

    [domains = 1] (the default) runs the sequential engine unchanged —
    byte-for-byte the same code path as {!Measure.exec_dist_budgeted}. *)

open Cdse_prob
open Cdse_psioa

type 'a budgeted = [ `Exact of 'a | `Truncated of 'a * Rat.t ]
(** Same shape as {!Measure.budgeted} (structural, so the two interchange
    freely). *)

type compress = [ `Off | `Hcons | `Quotient ]
(** State-space compression level (see the {!Measure} docs for the user
    contract):

    - [`Off] (default): the historical engine, byte for byte.
    - [`Hcons]: every state is routed through a {!Cdse_psioa.Hcons} intern
      table (per engine instance; per worker domain when parallel), so
      state equality, {!Cdse_psioa.Exec.compare} and the memo tables
      short-circuit on physical equality. Results are identical to
      [`Off] — same distribution, tag, deficit.
    - [`Quotient]: [`Hcons] plus an on-the-fly probabilistic-bisimulation
      quotient of every frontier layer ({!Cdse_psioa.Quotient}): entries
      with the same (trace, last state) — same future under a
      {!Scheduler.is_memoryless} scheduler — pool their exact mass onto
      one representative, so a depth-[d] frontier holds equivalence
      classes instead of raw executions. Trace-level measures, budget
      accounting and length expectations are exact; the execution-level
      support is a compressed representation. Budgets prune the
      {e compressed} frontier by the same (prob desc, [Exec.compare] asc)
      total order. For history-dependent schedulers [`Quotient] silently
      degrades to [`Hcons]. *)

val exec_dist_budgeted :
  ?memo:bool ->
  ?max_execs:int ->
  ?max_width:int ->
  ?domains:int ->
  ?chunk:int ->
  ?compress:compress ->
  ?track:(Value.t -> bool) ->
  Psioa.t ->
  Scheduler.t ->
  depth:int ->
  Exec.t Dist.t budgeted
(** Like {!Measure.exec_dist_budgeted}, expanded on [?domains] (default 1,
    clamped to [64]) OCaml domains: the calling domain coordinates and
    works, [domains - 1] are spawned for the call and joined before it
    returns. [?chunk] overrides the number of frontier entries a worker
    claims per cursor fetch (default: frontier size / (domains × 8),
    at least 1) — a tuning and test knob; any value yields the same
    result, see the determinism contract above.

    [?compress] (default [`Off]) selects the state-space compression
    level; the determinism contract extends to every level — for a fixed
    [compress], the result is bit-identical across domain counts, chunk
    sizes and OS schedules. [?track] refines the [`Quotient] classes by
    "has the execution already visited a state satisfying the predicate",
    which is what keeps {!Measure.reach_prob} exact under compression;
    ignored at other levels. *)

val exec_dist :
  ?memo:bool ->
  ?max_execs:int ->
  ?max_width:int ->
  ?domains:int ->
  ?chunk:int ->
  ?compress:compress ->
  ?track:(Value.t -> bool) ->
  Psioa.t ->
  Scheduler.t ->
  depth:int ->
  Exec.t Dist.t
(** {!exec_dist_budgeted} with the truncation deficit folded into the
    distribution's own {!Dist.deficit}. *)

(**/**)

module For_tests : sig
  val truncate_entries :
    keep:int -> (Exec.t * Rat.t) list -> (Exec.t * Rat.t) list * Rat.t
  (** The budget-pruning step, exposed so the regression suite can verify
      that permuting the frontier leaves the kept entries and dropped mass
      unchanged. *)
end
