(** Multicore exact-measure engine (OCaml 5 domains).

    Each frontier execution's one-step extension is independent of every
    other's — embarrassingly parallel work. This module ships two
    multicore engines over a reusable pool of OCaml 5 [Domain]s:

    - the {b barrier-free subtree engine} (default for unbudgeted
      [`Off]/[`Hcons] runs): the coordinator grows the frontier
      breadth-first until it holds several subtree roots per worker, then
      workers claim whole {e subtrees} — one root at a time off an atomic
      cursor — and expand them depth-first to the full remaining depth
      with their own memo/hcons/choice caches, with no synchronization
      until one canonical merge at the very end. Load balancing is
      cooperative work {e donation}: a busy worker that observes idle
      workers donates the shallowest half of its pending stack (the
      largest remaining subtrees) to a shared overflow queue.
    - the {b layered engine} (selected automatically whenever a run needs
      layer synchronization: [?max_execs] / [?max_width] budgets, or
      [`Quotient] compression with a memoryless scheduler): workers claim
      chunks of each frontier layer off an atomic cursor and the
      coordinating domain merges the per-entry results in frontier order
      at the layer barrier, so per-layer budget pruning and quotienting
      see exactly the sequential frontier.

    {2 Determinism contract}

    The result of {e either} engine is {b bit-identical to the sequential
    engine}, for every domain count, chunk size, donation pattern and OS
    scheduling of the workers:

    - the returned distribution satisfies {!Cdse_prob.Dist.equal} with the
      sequential one {e and} has the same in-memory normal form (entries
      sorted by {!Cdse_psioa.Exec.compare}, exact rationals in canonical
      form — rational arithmetic is exact, so merge order cannot perturb
      masses);
    - the [`Exact] / [`Truncated] tag and the truncation deficit are
      identical — budget pruning sorts by the total order
      [(probability descending, Exec.compare ascending)], which does not
      depend on the arrival order of frontier entries;
    - the {!Cdse_obs.Obs} engine totals are conserved: [measure.finished]
      and the [measure.truncation_deficit] gauge are identical to a
      sequential run for both engines, and the memoization and
      choice-cache counters are conserved as {e sums} ([hit + miss] = one
      lookup per cone node; the split between hit and miss depends on the
      domain count, because each worker warms its own cache). The layered
      engine additionally conserves the per-layer instruments
      ([measure.layers], [measure.truncated], the
      [measure.frontier.width] histogram); the subtree engine has no
      layers and does not emit them — it reports
      [measure.subtree.roots] / [measure.subtree.steals] instead (work
      units claimed from the root cursor / the donation queue; their
      split, unlike their purpose, {e does} vary with the schedule).

    If the scheduler (or a transition lookup) raises, the subtree engine
    completes the surviving work and re-raises the failure of the
    [Exec.compare]-least {e minimal} failing execution (a failing node's
    subtree is never entered, so the minimal failing set is partition-
    independent); the layered engine raises the first failure in frontier
    order, which is also the sequential engine's. When exactly one
    execution fails — the common debugging situation — all engines and
    domain counts surface the same exception. Either way the engines stay
    reusable after a raise.

    Worker domains never touch shared mutable state on the hot path: each
    gets its own {!Cdse_psioa.Psioa.memoize} instance and validated-choice
    cache, and its counter increments accumulate in a per-domain
    {!Cdse_obs.Obs} shard merged at the layer barrier.

    [domains = 1] (the default) runs the sequential engine unchanged —
    byte-for-byte the same code path as {!Measure.exec_dist_budgeted}. *)

open Cdse_prob
open Cdse_psioa

type 'a budgeted = [ `Exact of 'a | `Truncated of 'a * Rat.t ]
(** Same shape as {!Measure.budgeted} (structural, so the two interchange
    freely). *)

type compress = [ `Off | `Hcons | `Quotient ]
(** State-space compression level (see the {!Measure} docs for the user
    contract):

    - [`Off] (default): the historical engine, byte for byte.
    - [`Hcons]: every state is routed through a {!Cdse_psioa.Hcons} intern
      table (per engine instance; per worker domain when parallel), so
      state equality, {!Cdse_psioa.Exec.compare} and the memo tables
      short-circuit on physical equality. Results are identical to
      [`Off] — same distribution, tag, deficit.
    - [`Quotient]: [`Hcons] plus an on-the-fly probabilistic-bisimulation
      quotient of every frontier layer ({!Cdse_psioa.Quotient}): entries
      with the same (trace, last state) — same future under a
      {!Scheduler.is_memoryless} scheduler — pool their exact mass onto
      one representative, so a depth-[d] frontier holds equivalence
      classes instead of raw executions. Trace-level measures, budget
      accounting and length expectations are exact; the execution-level
      support is a compressed representation. Budgets prune the
      {e compressed} frontier by the same (prob desc, [Exec.compare] asc)
      total order. For history-dependent schedulers [`Quotient] silently
      degrades to [`Hcons]. *)

type engine = [ `Auto | `Layered | `Subtree ]
(** Multicore engine selector (ignored when [domains <= 1] — that is
    always the sequential loop):

    - [`Auto] (default): the barrier-free subtree engine whenever the run
      is unbudgeted and quotient-free, the layered engine otherwise — the
      fastest engine that supports the run, never a behavior change.
    - [`Layered]: force the layer-synchronous engine (determinism tests,
      benchmarking the barrier cost, [?chunk] experiments).
    - [`Subtree]: force the subtree engine. [Invalid_argument] if the run
      needs layer synchronization ([?max_execs], [?max_width], or
      [`Quotient] with a {!Scheduler.is_memoryless} scheduler — with a
      history-dependent scheduler [`Quotient] degrades to [`Hcons] and the
      subtree engine applies). *)

val exec_dist_budgeted :
  ?engine:engine ->
  ?memo:bool ->
  ?max_execs:int ->
  ?max_width:int ->
  ?domains:int ->
  ?chunk:int ->
  ?compress:compress ->
  ?track:(Value.t -> bool) ->
  Psioa.t ->
  Scheduler.t ->
  depth:int ->
  Exec.t Dist.t budgeted
(** Like {!Measure.exec_dist_budgeted}, expanded on [?domains] (default 1,
    clamped to [64]) OCaml domains: the calling domain coordinates and
    works, [domains - 1] are spawned for the call and joined before it
    returns. [?engine] selects between the two multicore engines, see
    {!type:engine}. [?chunk] overrides the number of frontier entries a
    worker claims per cursor fetch in the {e layered} engine (default:
    frontier size / (domains × 8), at least 1; ignored by the subtree
    engine) — a tuning and test knob; any value yields the same result,
    see the determinism contract above.

    [?compress] (default [`Off]) selects the state-space compression
    level; the determinism contract extends to every level — for a fixed
    [compress], the result is bit-identical across domain counts, chunk
    sizes and OS schedules. [?track] refines the [`Quotient] classes by
    "has the execution already visited a state satisfying the predicate",
    which is what keeps {!Measure.reach_prob} exact under compression;
    ignored at other levels. *)

val exec_dist :
  ?engine:engine ->
  ?memo:bool ->
  ?max_execs:int ->
  ?max_width:int ->
  ?domains:int ->
  ?chunk:int ->
  ?compress:compress ->
  ?track:(Value.t -> bool) ->
  Psioa.t ->
  Scheduler.t ->
  depth:int ->
  Exec.t Dist.t
(** {!exec_dist_budgeted} with the truncation deficit folded into the
    distribution's own {!Dist.deficit}. *)

type frontier = {
  f_depth : int;  (** Every entry of [f_alive] has exactly this length. *)
  f_alive : (Exec.t * Rat.t) list;
      (** Executions the scheduler may still extend, with their exact mass.
          Post-quotient representatives when the producing run compressed
          with [`Quotient]. *)
  f_finished : (Exec.t * Rat.t) list;
      (** Halting mass accumulated strictly before [f_depth]. *)
}
(** A resumable cone frontier, as returned by {!exec_dist_frontier}. The
    final distribution of the producing run is exactly
    [Dist.make ~compare:Exec.compare (f_finished @ f_alive)]. *)

val exec_dist_frontier :
  ?engine:engine ->
  ?memo:bool ->
  ?domains:int ->
  ?chunk:int ->
  ?compress:compress ->
  ?from:frontier ->
  Psioa.t ->
  Scheduler.t ->
  depth:int ->
  Exec.t Dist.t * frontier
(** Unbudgeted {!exec_dist} that additionally returns the final frontier,
    and can resume from a previously returned one ([?from]) instead of the
    initial execution — the incremental-deepening hook behind the serving
    layer's result cache. Resuming a depth-[d] frontier to depth [d + k] is
    {b bit-identical} to a one-shot run at depth [d + k] with the same
    [auto], [sched] and [compress] (distribution, in-memory normal form,
    and — trivially, both are [`Exact] — tag and deficit), for every
    engine and domain count on either side of the split: frontier entry
    order is normalized away by {!Dist.make}, rational mass addition is
    exact and commutative, and the quotient representative choice is
    [Exec.compare]-minimal per class. Raises [Invalid_argument] if
    [from.f_depth > depth], or on [`Subtree] with an active [`Quotient].
    The caller is responsible for resuming only with the same
    [auto]/[sched]/[compress] that produced the frontier — the serving
    cache keys enforce exactly that. *)

(**/**)

module For_tests : sig
  val truncate_entries :
    keep:int -> (Exec.t * Rat.t) list -> (Exec.t * Rat.t) list * Rat.t
  (** The budget-pruning step, exposed so the regression suite can verify
      that permuting the frontier leaves the kept entries and dropped mass
      unchanged. *)

  module Pool : sig
    type t

    val create : int -> t
    (** [size - 1] spawned worker domains plus the caller. *)

    val run : t -> (int -> unit) -> unit
    (** Run the job on every worker (ids [0 .. size-1], the caller is 0)
        and wait for all of them. If jobs raise, every worker still
        completes the barrier and [run] re-raises the exception of the
        smallest worker id; the pool stays reusable. *)

    val shutdown : t -> unit
  end
  (** The internal domain pool, exposed so the regression suite can pin
      its raise-safety: a raising job must neither deadlock [run] nor
      poison the pool for subsequent runs. *)
end
