(** Schedulers (Definition 3.1).

    A scheduler of a PSIOA [A] maps each finite execution fragment [α] to a
    discrete {e sub}-probability measure over the transitions enabled at
    [lstate α]. Because a PSIOA has exactly one transition per enabled
    action (transition determinism, Definition 2.1), choosing a transition
    is choosing an action, so our schedulers return sub-distributions over
    actions. Mass deficit is the probability of halting after [α]. *)

open Cdse_prob
open Cdse_psioa

type t = {
  name : string;
  memoryless : bool;
  validated : bool;
  choose : Exec.t -> Action.t Dist.t;
}
(** [choose α] must be supported on [sig-hat(A)(lstate α)];
    {!validate_choice} enforces this at measure-computation time.

    [memoryless] declares that [choose α] depends on [α] only through
    [(length α, lstate α)] — not on the rest of the history. The measure
    engine ({!Measure.exec_dist} with [~memo:true]) exploits this to key
    its validated-choice cache by last state instead of whole executions.
    It is a promise, not a checked property: defaults to [false] in
    {!make}, and all the standard schedulers below set it.

    [validated] declares that [choose] only ever returns actions drawn from
    the signature of the last state — true of every scheduler below, since
    they all pick from the enabled local pool by construction.
    {!validate_choice} then skips the (redundant) membership re-check.
    Also a promise; defaults to [false] in {!make}. *)

exception Bad_choice of { scheduler : string; state : Value.t; action : Action.t }

val make : ?memoryless:bool -> ?validated:bool -> name:string -> (Exec.t -> Action.t Dist.t) -> t

val is_memoryless : t -> bool
(** The {!t.memoryless} promise ([bounded] preserves it). *)

val halt : t
(** Halts immediately (the empty sub-distribution everywhere). *)

(** The three standard schedulers draw from the {e locally controlled}
    actions (output ∪ internal) of the last state: in a closed composition
    every action is locally controlled by some component, while free inputs
    of an open composite are the environment's business and are only fired
    by explicit ({!oblivious} or custom) schedulers. *)

val uniform : Psioa.t -> t
(** Uniform over the locally controlled enabled actions; halts when there
    are none. *)

val first_enabled : Psioa.t -> t
(** Deterministic: always the least locally controlled enabled action. *)

val first_enabled_where : ?name:string -> (Exec.t -> Action.t -> bool) -> Psioa.t -> t
(** [first_enabled_where pred a]: deterministic — the least locally
    controlled enabled action [act] with [pred e act], where [e] is the
    whole execution so far. Halts (empty choice, deficit 1) when no pool
    action passes. Because [pred] may inspect the history the scheduler is
    {e not} memoryless; it is validated (picks from the pool by
    construction). The predicate-filtered backbone of
    {!Cdse_fault.Fault.budget_first_enabled}. *)

val round_robin : Psioa.t -> t
(** Deterministic: at step [i], the [(i mod n)]-th of the [n] locally
    controlled enabled actions. *)

val oblivious : Psioa.t -> Action.t list -> t
(** Off-line scheduler: a fixed action sequence decided in advance; at step
    [i] it fires the [i]-th action if enabled and halts otherwise (and halts
    when the list is exhausted). Oblivious schedulers are
    creation-oblivious in the sense of Section 4.4: their decisions do not
    depend on the states (hence not on which sub-automata are alive). *)

val oblivious_local : Psioa.t -> Action.t list -> t
(** Like {!oblivious}, but the scripted action additionally has to be
    locally controlled at the current state: free inputs of an open
    composite are never fired. The closed-world off-line scheduler — this
    is the creation-oblivious schema used by the monotonicity results of
    Section 4.4. *)

val bounded : int -> t -> t
(** Definition 4.6: [bounded b σ] halts on every fragment with [|α| ≥ b],
    so it never executes more than [b] actions. *)

val is_bounded : t -> int option
(** The bound recorded by {!bounded}, if any. *)

val validate_choice : Psioa.t -> t -> Exec.t -> Action.t Dist.t
(** [choose] with the Definition 3.1 support condition enforced; raises
    {!Bad_choice} if the scheduler picks a disabled action. Skipped for
    {!t.validated} schedulers, whose choices satisfy the condition by
    construction. *)
