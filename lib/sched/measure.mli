(** The execution measure [ε_σ] (Section 3).

    A scheduler [σ] induces a probability measure on the σ-field generated
    by cones of execution fragments. For a depth-bounded computation the
    measure is a finite discrete distribution over completed executions:
    an execution is {e completed} when the scheduler halts on it (deficit
    mass) or the depth limit is reached. When [σ] is [b]-bounded
    (Definition 4.6) and [depth ≥ b], the result is exactly [ε_σ].

    {2 Budgets and graceful degradation}

    Exact cone expansion is exponential in depth on branching systems.
    The [?max_execs] / [?max_width] budgets bound the work while keeping
    the result {e exact about its own incompleteness}: the computed
    sub-distribution is a true lower bound of [ε_σ] on every execution it
    contains, and the discarded mass is returned as an explicit deficit,
    so [mass + deficit = 1] as exact rationals.

    - [?max_width w] prunes each frontier layer to its [w] most probable
      executions (ties broken by {!Exec.compare}, so truncation is
      deterministic).
    - [?max_execs n] caps the support of the result: once completed plus
      frontier executions exceed [n], expansion stops and the surviving
      frontier is reported as completed.

    Without budgets the computation is untouched — same code path, same
    results, bit for bit.

    {2 State-space compression}

    [?compress] (default [`Off]) trades representation detail for frontier
    size, without giving up exactness where it matters:

    - [`Off]: the historical engine, byte for byte.
    - [`Hcons]: hash-consing only. Every reached state is interned in a
      {!Cdse_psioa.Hcons} table so equality checks, {!Exec.compare} and
      the memo tables short-circuit on physical identity. The result —
      distribution, [`Exact]/[`Truncated] tag, deficit — is {b identical}
      to [`Off].
    - [`Quotient]: hash-consing {e plus} an on-the-fly
      probabilistic-bisimulation quotient of each frontier layer
      ({!Cdse_psioa.Quotient}). Frontier executions with the same
      (trace, last state) have identical futures under a
      {!Scheduler.is_memoryless} scheduler, so their exact masses are
      pooled onto one representative (the {!Exec.compare}-least member).
      {!trace_dist}, {!reach_prob} (via an internal visited-predicate
      refinement), {!expected_steps} and the budget deficit are exact; the
      {e execution-level} support of {!exec_dist} is a compressed
      representation (one representative per class), so it is not
      bit-identical to [`Off]. Budgets prune the compressed frontier by
      the same total order. For history-dependent schedulers the quotient
      is unsound and the engine silently degrades to [`Hcons].

    Every compression level preserves the cross-domain determinism
    contract: for a fixed [compress], results are bit-identical for every
    [?domains] / [?chunk] value.

    {2 Parallelism}

    [?domains n] (default 1) expands the cone across [n] OCaml 5 domains
    via {!Par_measure}. Unbudgeted [`Off]/[`Hcons] runs use the
    barrier-free {e subtree} engine (workers own whole cone subtrees and
    steal work cooperatively, one merge at the end); runs that need layer
    synchronization ([?max_execs] / [?max_width] budgets, active
    [`Quotient]) use the layer-synchronous engine; [?engine] overrides the
    dispatch. Either way the result is bit-identical to the sequential
    run — same distribution, same [`Exact]/[`Truncated] tag, same deficit,
    conserved {!Cdse_obs.Obs} totals — for every domain count; see
    {!Par_measure} for the determinism contract. [domains = 1] runs the
    historical sequential code path unchanged. *)

open Cdse_prob
open Cdse_psioa

type 'a budgeted = [ `Exact of 'a | `Truncated of 'a * Rat.t ]
(** Outcome of a budgeted computation: [`Exact v] when no budget was hit,
    [`Truncated (v, deficit)] when pruning occurred — [deficit] is the
    exact probability mass the budgets discarded. *)

type compress = Par_measure.compress
(** [`Off | `Hcons | `Quotient] — see the module docs above and
    {!Par_measure.compress}. *)

type engine = Par_measure.engine
(** [`Auto | `Layered | `Subtree] — multicore engine selector, see
    {!Par_measure.engine}. [`Auto] (the default) picks the barrier-free
    subtree engine whenever the run needs no layer synchronization. *)

val exec_dist :
  ?engine:engine ->
  ?memo:bool -> ?max_execs:int -> ?max_width:int -> ?domains:int ->
  ?compress:compress -> ?track:(Value.t -> bool) ->
  Psioa.t -> Scheduler.t -> depth:int ->
  Exec.t Dist.t
(** Exact distribution over completed executions up to [depth] steps.
    Raises {!Scheduler.Bad_choice} if the scheduler violates the
    Definition 3.1 support condition.

    [~memo:true] (default [false]) computes the same measure faster:
    signature/transition lookups are cached per [(state, action)] across
    the cone frontier (via {!Psioa.memoize}), and for
    {!Scheduler.is_memoryless} schedulers the validated choice is cached
    keyed by [(length, last state)] instead of being recomputed per
    execution. Observationally identical; caches live only for the call.

    [?compress] selects the state-space compression level (module docs);
    [?track] refines the [`Quotient] equivalence classes by "has the
    execution already visited a state satisfying the predicate" — pass it
    when the caller will fold a visited-state predicate over the result
    (as {!reach_prob} does internally). Ignored at other levels.

    With [?max_execs] / [?max_width] the result may be a sub-distribution
    (truncation deficit silently folded into the distribution's own
    {!Dist.deficit}); use {!exec_dist_budgeted} when the caller must
    distinguish scheduler halting from budget truncation. *)

val exec_dist_budgeted :
  ?engine:engine ->
  ?memo:bool -> ?max_execs:int -> ?max_width:int -> ?domains:int ->
  ?compress:compress -> ?track:(Value.t -> bool) ->
  Psioa.t -> Scheduler.t -> depth:int ->
  Exec.t Dist.t budgeted
(** Like {!exec_dist}, but reports budget truncation explicitly:
    [`Truncated (d, lost)] satisfies [Dist.mass d + Dist.deficit d' + lost]
    accounting such that the measure's total mass plus [lost] is exactly
    the unbudgeted total. Without budgets, always [`Exact]. *)

type frontier = Par_measure.frontier = {
  f_depth : int;
  f_alive : (Exec.t * Rat.t) list;
  f_finished : (Exec.t * Rat.t) list;
}
(** A resumable cone frontier — see {!Par_measure.frontier}. *)

val exec_dist_frontier :
  ?engine:engine ->
  ?memo:bool -> ?domains:int -> ?compress:compress -> ?from:frontier ->
  Psioa.t -> Scheduler.t -> depth:int ->
  Exec.t Dist.t * frontier
(** Unbudgeted {!exec_dist} that also returns its final frontier and can
    resume from one ([?from]) — the incremental-deepening hook behind the
    {!Cdse_serve} result cache. Resuming a depth-[d] frontier to depth
    [d + k] is bit-identical to a one-shot run at depth [d + k] with the
    same model, scheduler and compression; see
    {!Par_measure.exec_dist_frontier} for the contract and the
    [Invalid_argument] conditions. *)

val cone_prob : Psioa.t -> Scheduler.t -> Exec.t -> Rat.t
(** [ε_σ(C_α)]: the probability that the scheduled run extends [α]
    (Section 3's cone measure), computed as the product of scheduler and
    transition probabilities along [α]. *)

val trace_dist :
  ?memo:bool -> ?max_execs:int -> ?max_width:int -> ?domains:int ->
  ?compress:compress ->
  Psioa.t -> Scheduler.t -> depth:int ->
  Action.t list Dist.t
(** Pushforward of {!exec_dist} through the trace map (Definition 2.2).
    Exact at {e every} compression level — the quotient merges only
    executions with equal traces, so the pushforward is unchanged. *)

val trace_dist_budgeted :
  ?memo:bool -> ?max_execs:int -> ?max_width:int -> ?domains:int ->
  ?compress:compress ->
  Psioa.t -> Scheduler.t -> depth:int ->
  Action.t list Dist.t budgeted
(** Budget-aware {!trace_dist}: the pushforward of {!exec_dist_budgeted},
    carrying the truncation deficit through unchanged. *)

val n_execs :
  ?memo:bool -> ?max_execs:int -> ?max_width:int -> ?domains:int ->
  ?compress:compress ->
  Psioa.t -> Scheduler.t -> depth:int -> int
(** Support size of {!exec_dist} — used by the scaling benchmarks (E7).
    Under [`Quotient] this counts equivalence classes, not raw
    executions. *)

val reach_prob :
  ?memo:bool -> ?max_execs:int -> ?max_width:int -> ?domains:int ->
  ?compress:compress ->
  Psioa.t -> Scheduler.t -> depth:int -> pred:(Value.t -> bool) -> Cdse_prob.Rat.t
(** Exact probability that a completed execution visits a state satisfying
    [pred] within [depth] steps. Under budgets this is a lower bound.
    Exact at every compression level: [pred] is forwarded to the engine as
    the quotient's [?track] refinement, so pred-hitting and pred-missing
    executions are never merged. *)

val reach_prob_budgeted :
  ?memo:bool -> ?max_execs:int -> ?max_width:int -> ?domains:int ->
  ?compress:compress ->
  Psioa.t -> Scheduler.t -> depth:int -> pred:(Value.t -> bool) -> Rat.t budgeted
(** Budget-aware reachability: [`Truncated (p, lost)] brackets the true
    probability in [[p, p + lost]] — the deficit mass may or may not have
    reached [pred]. *)

val expected_steps :
  ?memo:bool -> ?max_execs:int -> ?max_width:int -> ?domains:int ->
  ?compress:compress ->
  Psioa.t -> Scheduler.t -> depth:int ->
  Cdse_prob.Rat.t
(** Expected length of the completed execution (exact; under budgets, the
    expectation over the computed sub-distribution). Exact at every
    compression level — merged executions share their length. *)

(** {2 Monte-Carlo estimation}

    The exact cone expansion is exponential in depth on branching systems;
    the sampling estimator is linear in [samples × depth] and converges to
    the exact measure (ablation in experiment E7). Never used by the ε = 0
    checkers. *)

val sample_exec : Psioa.t -> Scheduler.t -> rng:Rng.t -> depth:int -> Exec.t
(** One sampled completed execution (halting when the scheduler does). *)

val estimate_fdist :
  Psioa.t ->
  Scheduler.t ->
  observe:(Exec.t -> 'a) ->
  rng:Rng.t ->
  samples:int ->
  depth:int ->
  ('a * float) list
(** Empirical observation distribution over [samples] sampled runs. *)
