(** The execution measure [ε_σ] (Section 3).

    A scheduler [σ] induces a probability measure on the σ-field generated
    by cones of execution fragments. For a depth-bounded computation the
    measure is a finite discrete distribution over completed executions:
    an execution is {e completed} when the scheduler halts on it (deficit
    mass) or the depth limit is reached. When [σ] is [b]-bounded
    (Definition 4.6) and [depth ≥ b], the result is exactly [ε_σ]. *)

open Cdse_prob
open Cdse_psioa

val exec_dist : ?memo:bool -> Psioa.t -> Scheduler.t -> depth:int -> Exec.t Dist.t
(** Exact distribution over completed executions up to [depth] steps.
    Raises {!Scheduler.Bad_choice} if the scheduler violates the
    Definition 3.1 support condition.

    [~memo:true] (default [false]) computes the same measure faster:
    signature/transition lookups are cached per [(state, action)] across
    the cone frontier (via {!Psioa.memoize}), and for
    {!Scheduler.is_memoryless} schedulers the validated choice is cached
    keyed by [(length, last state)] instead of being recomputed per
    execution. Observationally identical; caches live only for the call. *)

val cone_prob : Psioa.t -> Scheduler.t -> Exec.t -> Rat.t
(** [ε_σ(C_α)]: the probability that the scheduled run extends [α]
    (Section 3's cone measure), computed as the product of scheduler and
    transition probabilities along [α]. *)

val trace_dist : ?memo:bool -> Psioa.t -> Scheduler.t -> depth:int -> Action.t list Dist.t
(** Pushforward of {!exec_dist} through the trace map (Definition 2.2). *)

val n_execs : ?memo:bool -> Psioa.t -> Scheduler.t -> depth:int -> int
(** Support size of {!exec_dist} — used by the scaling benchmarks (E7). *)

val reach_prob :
  ?memo:bool -> Psioa.t -> Scheduler.t -> depth:int -> pred:(Value.t -> bool) -> Cdse_prob.Rat.t
(** Exact probability that a completed execution visits a state satisfying
    [pred] within [depth] steps. *)

val expected_steps : ?memo:bool -> Psioa.t -> Scheduler.t -> depth:int -> Cdse_prob.Rat.t
(** Expected length of the completed execution (exact). *)

(** {2 Monte-Carlo estimation}

    The exact cone expansion is exponential in depth on branching systems;
    the sampling estimator is linear in [samples × depth] and converges to
    the exact measure (ablation in experiment E7). Never used by the ε = 0
    checkers. *)

val sample_exec : Psioa.t -> Scheduler.t -> rng:Rng.t -> depth:int -> Exec.t
(** One sampled completed execution (halting when the scheduler does). *)

val estimate_fdist :
  Psioa.t ->
  Scheduler.t ->
  observe:(Exec.t -> 'a) ->
  rng:Rng.t ->
  samples:int ->
  depth:int ->
  ('a * float) list
(** Empirical observation distribution over [samples] sampled runs. *)
