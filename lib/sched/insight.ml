open Cdse_prob
open Cdse_psioa

type t = { name : string; observe : Exec.t -> Value.t }

let make ~name observe = { name; observe }

let actions_value acts = Value.list (List.map (fun a -> Value.Tag (Action.name a, Action.payload a)) acts)

let trace composite =
  make ~name:"trace" (fun e ->
      actions_value (Exec.trace ~sig_of:(Psioa.signature composite) e))

let accept ?(action_name = "acc") composite =
  make ~name:(Printf.sprintf "accept(%s)" action_name) (fun e ->
      let tr = Exec.trace ~sig_of:(Psioa.signature composite) e in
      Value.bool (List.exists (fun a -> String.equal (Action.name a) action_name) tr))

(* Environment-local view of a pair execution: fold the composite steps,
   keeping only those in which the environment participates, recording its
   local state trajectory and the actions it saw. *)
let print_left env _composite =
  make ~name:"print" (fun e ->
      let env_state q = fst (Compose.proj_pair q) in
      let rec go acc q = function
        | [] -> List.rev acc
        | (act, q') :: rest ->
            let qe = env_state q and qe' = env_state q' in
            let acc =
              if Action_set.mem act (Psioa.enabled env qe) then
                Value.pair (Value.Tag (Action.name act, Action.payload act)) qe' :: acc
              else acc
            in
            go acc q' rest
      in
      Value.pair (env_state (Exec.fstate e)) (Value.list (go [] (Exec.fstate e) (Exec.steps e))))

(* Environment-local view of an n-ary composite: like print_left but the
   environment sits at a given index of a Compose.parallel state. *)
let print_nth env idx _composite =
  make ~name:(Printf.sprintf "print[%d]" idx) (fun e ->
      let env_state q = List.nth (Compose.proj_list q) idx in
      let rec go acc q = function
        | [] -> List.rev acc
        | (act, q') :: rest ->
            let qe = env_state q and qe' = env_state q' in
            let acc =
              if Action_set.mem act (Psioa.enabled env qe) then
                Value.pair (Value.Tag (Action.name act, Action.payload act)) qe' :: acc
              else acc
            in
            go acc q' rest
      in
      Value.pair (env_state (Exec.fstate e)) (Value.list (go [] (Exec.fstate e) (Exec.steps e))))

let apply ?memo ?domains ?compress insight composite sched ~depth =
  Dist.map ~compare:Value.compare insight.observe
    (Measure.exec_dist ?memo ?domains ?compress composite sched ~depth)

let check_stability ~make_insight ~env ~ctx ~a1 ~a2 ~sched_of ~depth =
  (* Distance when E observes B||Ai, vs when E||B observes Ai. The two
     composites differ only in association; we build both groupings
     explicitly. *)
  let grouped_1 = Compose.pair env (Compose.pair ctx a1) in
  let grouped_2 = Compose.pair env (Compose.pair ctx a2) in
  let flat_1 = Compose.pair (Compose.pair env ctx) a1 in
  let flat_2 = Compose.pair (Compose.pair env ctx) a2 in
  let dist_with composite1 composite2 =
    let f1 = make_insight composite1 and f2 = make_insight composite2 in
    let d1 = apply f1 composite1 (sched_of composite1) ~depth in
    let d2 = apply f2 composite2 (sched_of composite2) ~depth in
    Stat.sup_set_distance d1 d2
  in
  let d_env = dist_with grouped_1 grouped_2 in
  let d_envctx = dist_with flat_1 flat_2 in
  Rat.compare d_env d_envctx <= 0
