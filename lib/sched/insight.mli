(** Insight functions and their image measures (Definitions 3.4, 3.5).

    An insight function [f_(E,A)] maps executions of [E ‖ A] to a measurable
    observation space [G_E] that depends only on the environment [E], so
    that observations of [E ‖ A] and [E ‖ B] can be compared. We encode all
    observations as {!Value.t}, giving a single arrival space with a total
    order.

    Constructors build the [f_(E,A)] member for one concrete composite;
    the same constructor applied to [E ‖ A] and [E ‖ B] yields the matched
    pair of Definition 3.4. *)

open Cdse_prob
open Cdse_psioa

type t = { name : string; observe : Exec.t -> Value.t }

val make : name:string -> (Exec.t -> Value.t) -> t

val trace : Psioa.t -> t
(** The [trace] insight: the external-action sequence of the composite. *)

val accept : ?action_name:string -> Psioa.t -> t
(** The [accept] insight of Canetti et al.: [Bool true] iff an action named
    [action_name] (default ["acc"]) occurs in the trace. The classic
    "environment outputs its verdict" observation. *)

val print_left : Psioa.t -> Psioa.t -> t
(** [print_left env composite]: the [print] insight of the dynamic-PIOA
    framework, specialised to pair composites [E ‖ A] with the environment
    on the left — the observation is the environment's local execution
    (its state/action projection), which is insensitive to the identity of
    the right component. *)

val print_nth : Psioa.t -> int -> Psioa.t -> t
(** [print_nth env idx composite]: like {!print_left} for n-ary
    [Compose.parallel] composites with the environment at index [idx]. *)

val apply :
  ?memo:bool -> ?domains:int -> ?compress:Measure.compress ->
  t -> Psioa.t -> Scheduler.t -> depth:int -> Value.t Dist.t
(** [f-dist(σ)] (Definition 3.5): the image of [ε_σ] under the insight.
    The optional engine knobs are passed through to {!Measure.exec_dist}
    verbatim and inherit its determinism contract: the image distribution
    is bit-identical for every [?domains] count and compression level. *)

(** {2 Stability by composition (Definition 3.7)}

    [trace], [accept] and [print] are stable by composition: an environment
    [E] observing [E ‖ B ‖ Aᵢ] has no more distinguishing power than
    [E ‖ B] observing [Aᵢ]. {!check_stability} validates the inequality of
    Definition 3.7 on a concrete instance (used by tests). *)

val check_stability :
  make_insight:(Psioa.t -> t) ->
  env:Psioa.t ->
  ctx:Psioa.t ->
  a1:Psioa.t ->
  a2:Psioa.t ->
  sched_of:(Psioa.t -> Scheduler.t) ->
  depth:int ->
  bool
(** Check that the distance between observations of [E ‖ (B ‖ A₁)] and
    [E ‖ (B ‖ A₂)] under [make_insight] is no larger than when [E ‖ B] is
    taken as the observing environment. *)
