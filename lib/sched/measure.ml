open Cdse_prob
open Cdse_psioa

(* Iteratively expand the cone frontier. [alive] holds executions the
   scheduler may still extend, [finished] the accumulated halting mass.

   With [~memo:true] the expansion reuses {!Psioa.memoize} so signature and
   transition lookups are computed once per [(state, action)] across the
   whole frontier, and — for {!Scheduler.is_memoryless} schedulers — caches
   the validated scheduler choice keyed by [(length, lstate)] instead of
   re-validating per execution. Both caches are per-call: the results are
   observationally identical, so the flag is purely a performance knob. *)
let exec_dist ?(memo = false) auto sched ~depth =
  let auto = if memo then Psioa.memoize auto else auto in
  let choice_of =
    if memo && Scheduler.is_memoryless sched then begin
      (* Every alive execution at frontier layer [i] has length [i], so for
         a memoryless scheduler the validated choice is a function of
         (length, lstate) alone. *)
      let tbl = Hashtbl.create 32 in
      fun e ->
        let key = (Exec.length e, Exec.lstate e) in
        match Hashtbl.find_opt tbl key with
        | Some d -> d
        | None ->
            let d = Scheduler.validate_choice auto sched e in
            Hashtbl.add tbl key d;
            d
    end
    else fun e -> Scheduler.validate_choice auto sched e
  in
  let rec go step alive finished =
    if step = depth || alive = [] then
      Dist.make ~compare:Exec.compare (List.rev_append finished alive)
    else begin
      let alive' = ref [] and finished' = ref finished in
      List.iter
        (fun (e, p) ->
          let choice = choice_of e in
          if not (Dist.is_proper choice) then begin
            let halt_mass = Rat.mul p (Dist.deficit choice) in
            if not (Rat.is_zero halt_mass) then finished' := (e, halt_mass) :: !finished'
          end;
          let q = Exec.lstate e in
          Dist.iter
            (fun act pa ->
              let eta = Psioa.step auto q act in
              let pa = Rat.mul p pa in
              Dist.iter
                (fun q' pq -> alive' := (Exec.extend e act q', Rat.mul pa pq) :: !alive')
                eta)
            choice)
        alive;
      go (step + 1) !alive' !finished'
    end
  in
  go 0 [ (Exec.init (Psioa.start auto), Rat.one) ] []

let cone_prob auto sched alpha =
  let rec go acc prefix = function
    | [] -> acc
    | (act, q') :: rest ->
        let choice = Scheduler.validate_choice auto sched prefix in
        let pa = Dist.prob choice act in
        if Rat.is_zero pa then Rat.zero
        else
          let eta = Psioa.step auto (Exec.lstate prefix) act in
          let pq = Dist.prob eta q' in
          if Rat.is_zero pq then Rat.zero
          else go (Rat.mul acc (Rat.mul pa pq)) (Exec.extend prefix act q') rest
  in
  if not (Value.equal (Exec.fstate alpha) (Psioa.start auto)) then Rat.zero
  else go Rat.one (Exec.init (Psioa.start auto)) (Exec.steps alpha)

let trace_dist ?memo auto sched ~depth =
  Dist.map
    ~compare:(Cdse_util.Order.list Action.compare)
    (Exec.trace ~sig_of:(Psioa.signature auto))
    (exec_dist ?memo auto sched ~depth)

let n_execs ?memo auto sched ~depth = Dist.size (exec_dist ?memo auto sched ~depth)

(* Probabilistic reachability: mass of completed executions that visit a
   state satisfying the predicate within the depth bound. *)
let reach_prob ?memo auto sched ~depth ~pred =
  let d = exec_dist ?memo auto sched ~depth in
  Dist.fold
    (fun acc e p -> if List.exists pred (Exec.states e) then Rat.add acc p else acc)
    Rat.zero d

(* Expected number of scheduled steps of the completed execution. *)
let expected_steps ?memo auto sched ~depth =
  Dist.expect (fun e -> Rat.of_int (Exec.length e)) (exec_dist ?memo auto sched ~depth)

(* Monte-Carlo estimation: drive sampled runs instead of expanding the
   exact cone tree. The estimator trades exactness for scale — the exact
   computation is exponential in depth on branching systems (experiment
   E7), while sampling is linear in [samples × depth]. *)
let sample_exec auto sched ~rng ~depth =
  let rec go e n =
    if n = 0 then e
    else
      let choice = Scheduler.validate_choice auto sched e in
      match Dist.sample rng choice with
      | None -> e
      | Some act -> (
          let eta = Psioa.step auto (Exec.lstate e) act in
          match Dist.sample rng eta with
          | None -> e (* unreachable: transition measures are proper *)
          | Some q' -> go (Exec.extend e act q') (n - 1))
  in
  go (Exec.init (Psioa.start auto)) depth

let estimate_fdist auto sched ~observe ~rng ~samples ~depth =
  let counts = Hashtbl.create 64 in
  for _ = 1 to samples do
    let obs = observe (sample_exec auto sched ~rng ~depth) in
    Hashtbl.replace counts obs (1 + Option.value ~default:0 (Hashtbl.find_opt counts obs))
  done;
  Hashtbl.fold (fun obs n acc -> (obs, float_of_int n /. float_of_int samples) :: acc) counts []
