open Cdse_prob
open Cdse_psioa
module Obs = Cdse_obs.Obs

type 'a budgeted = [ `Exact of 'a | `Truncated of 'a * Rat.t ]

(* Instruments for the budgeted expansion below. The frontier-width
   histogram is fed once per layer; [measure.truncation_deficit] mirrors the
   [`Truncated] deficit exactly ([Rat.to_string], reparsable with
   [Rat.of_string]) and reads "0" after an [`Exact] run. *)
let h_width = Obs.histogram "measure.frontier.width"
let c_layers = Obs.counter "measure.layers"
let c_finished = Obs.counter "measure.finished"
let c_truncated = Obs.counter "measure.truncated"
let c_choice_hit = Obs.counter "measure.choice.hit"
let c_choice_miss = Obs.counter "measure.choice.miss"
let g_deficit = Obs.gauge "measure.truncation_deficit"

(* Iteratively expand the cone frontier. [alive] holds executions the
   scheduler may still extend, [finished] the accumulated halting mass.

   With [~memo:true] the expansion reuses {!Psioa.memoize} so signature and
   transition lookups are computed once per [(state, action)] across the
   whole frontier, and — for {!Scheduler.is_memoryless} schedulers — caches
   the validated scheduler choice keyed by [(length, lstate)] instead of
   re-validating per execution. Both caches are per-call: the results are
   observationally identical, so the flag is purely a performance knob. *)
(* Keep the [keep] most probable entries of a frontier (ties broken by the
   execution order, so truncation is deterministic) and return the dropped
   mass. Only ever called when a budget is exceeded: the unbudgeted path
   never sorts. *)
let truncate_entries ~keep entries =
  let arr = Array.of_list entries in
  Array.stable_sort
    (fun (e1, p1) (e2, p2) ->
      let c = Rat.compare p2 p1 in
      if c <> 0 then c else Exec.compare e1 e2)
    arr;
  let kept = ref [] and lost = ref Rat.zero in
  Array.iteri
    (fun i ((_, p) as entry) ->
      if i < keep then kept := entry :: !kept else lost := Rat.add !lost p)
    arr;
  Obs.add c_truncated (Stdlib.max 0 (Array.length arr - keep));
  (List.rev !kept, !lost)

let exec_dist_budgeted ?(memo = false) ?max_execs ?max_width auto sched ~depth =
  let auto = if memo then Psioa.memoize auto else auto in
  let choice_of =
    if memo && Scheduler.is_memoryless sched then begin
      (* Every alive execution at frontier layer [i] has length [i], so for
         a memoryless scheduler the validated choice is a function of
         (length, lstate) alone. *)
      let tbl = Hashtbl.create 32 in
      fun e ->
        let key = (Exec.length e, Exec.lstate e) in
        match Hashtbl.find_opt tbl key with
        | Some d ->
            Obs.incr c_choice_hit;
            d
        | None ->
            Obs.incr c_choice_miss;
            let d = Scheduler.validate_choice auto sched e in
            Hashtbl.add tbl key d;
            d
    end
    else fun e -> Scheduler.validate_choice auto sched e
  in
  let finish alive finished lost =
    if Obs.enabled () then Obs.set_gauge g_deficit (Rat.to_string lost);
    let d = Dist.make ~compare:Exec.compare (List.rev_append finished alive) in
    if Rat.is_zero lost then `Exact d else `Truncated (d, lost)
  in
  let rec go step alive n_finished finished lost =
    if step = depth || alive = [] then finish alive finished lost
    else begin
      if Obs.enabled () then begin
        Obs.incr c_layers;
        Obs.observe h_width (List.length alive)
      end;
      let alive' = ref [] and finished' = ref finished and n_finished' = ref n_finished in
      List.iter
        (fun (e, p) ->
          let choice = choice_of e in
          if not (Dist.is_proper choice) then begin
            let halt_mass = Rat.mul p (Dist.deficit choice) in
            if not (Rat.is_zero halt_mass) then begin
              Obs.incr c_finished;
              finished' := (e, halt_mass) :: !finished';
              incr n_finished'
            end
          end;
          let q = Exec.lstate e in
          Dist.iter
            (fun act pa ->
              let eta = Psioa.step auto q act in
              let pa = Rat.mul p pa in
              Dist.iter
                (fun q' pq -> alive' := (Exec.extend e act q', Rat.mul pa pq) :: !alive')
                eta)
            choice)
        alive;
      (* Width budget: prune the frontier to its most probable executions,
         accounting the pruned mass as truncation deficit. *)
      let alive', lost =
        match max_width with
        | Some w when List.length !alive' > w ->
            let kept, dropped = truncate_entries ~keep:w !alive' in
            (kept, Rat.add lost dropped)
        | _ -> (!alive', lost)
      in
      (* Support budget: once completed + frontier executions exceed the
         cap, stop expanding — the surviving frontier is reported as
         completed (a partial measure), the rest as deficit. *)
      match max_execs with
      | Some cap when !n_finished' + List.length alive' > cap ->
          let kept, dropped = truncate_entries ~keep:(max 0 (cap - !n_finished')) alive' in
          finish kept !finished' (Rat.add lost dropped)
      | _ -> go (step + 1) alive' !n_finished' !finished' lost
    end
  in
  go 0 [ (Exec.init (Psioa.start auto), Rat.one) ] 0 [] Rat.zero

let exec_dist ?memo ?max_execs ?max_width auto sched ~depth =
  match exec_dist_budgeted ?memo ?max_execs ?max_width auto sched ~depth with
  | `Exact d | `Truncated (d, _) -> d

let cone_prob auto sched alpha =
  let rec go acc prefix = function
    | [] -> acc
    | (act, q') :: rest ->
        let choice = Scheduler.validate_choice auto sched prefix in
        let pa = Dist.prob choice act in
        if Rat.is_zero pa then Rat.zero
        else
          let eta = Psioa.step auto (Exec.lstate prefix) act in
          let pq = Dist.prob eta q' in
          if Rat.is_zero pq then Rat.zero
          else go (Rat.mul acc (Rat.mul pa pq)) (Exec.extend prefix act q') rest
  in
  if not (Value.equal (Exec.fstate alpha) (Psioa.start auto)) then Rat.zero
  else go Rat.one (Exec.init (Psioa.start auto)) (Exec.steps alpha)

let map_budgeted f = function
  | `Exact d -> `Exact (f d)
  | `Truncated (d, lost) -> `Truncated (f d, lost)

let trace_of auto = Exec.trace ~sig_of:(Psioa.signature auto)

let trace_dist ?memo ?max_execs ?max_width auto sched ~depth =
  Dist.map
    ~compare:(Cdse_util.Order.list Action.compare)
    (trace_of auto)
    (exec_dist ?memo ?max_execs ?max_width auto sched ~depth)

let trace_dist_budgeted ?memo ?max_execs ?max_width auto sched ~depth =
  map_budgeted
    (Dist.map ~compare:(Cdse_util.Order.list Action.compare) (trace_of auto))
    (exec_dist_budgeted ?memo ?max_execs ?max_width auto sched ~depth)

let n_execs ?memo ?max_execs ?max_width auto sched ~depth =
  Dist.size (exec_dist ?memo ?max_execs ?max_width auto sched ~depth)

(* Probabilistic reachability: mass of completed executions that visit a
   state satisfying the predicate within the depth bound. *)
let reach_mass ~pred d =
  Dist.fold
    (fun acc e p -> if List.exists pred (Exec.states e) then Rat.add acc p else acc)
    Rat.zero d

let reach_prob ?memo ?max_execs ?max_width auto sched ~depth ~pred =
  reach_mass ~pred (exec_dist ?memo ?max_execs ?max_width auto sched ~depth)

let reach_prob_budgeted ?memo ?max_execs ?max_width auto sched ~depth ~pred =
  map_budgeted (reach_mass ~pred)
    (exec_dist_budgeted ?memo ?max_execs ?max_width auto sched ~depth)

(* Expected number of scheduled steps of the completed execution. *)
let expected_steps ?memo ?max_execs ?max_width auto sched ~depth =
  Dist.expect
    (fun e -> Rat.of_int (Exec.length e))
    (exec_dist ?memo ?max_execs ?max_width auto sched ~depth)

(* Monte-Carlo estimation: drive sampled runs instead of expanding the
   exact cone tree. The estimator trades exactness for scale — the exact
   computation is exponential in depth on branching systems (experiment
   E7), while sampling is linear in [samples × depth]. *)
let sample_exec auto sched ~rng ~depth =
  let rec go e n =
    if n = 0 then e
    else
      let choice = Scheduler.validate_choice auto sched e in
      match Dist.sample rng choice with
      | None -> e
      | Some act -> (
          let eta = Psioa.step auto (Exec.lstate e) act in
          match Dist.sample rng eta with
          | None -> e (* unreachable: transition measures are proper *)
          | Some q' -> go (Exec.extend e act q') (n - 1))
  in
  go (Exec.init (Psioa.start auto)) depth

let estimate_fdist auto sched ~observe ~rng ~samples ~depth =
  let counts = Hashtbl.create 64 in
  for _ = 1 to samples do
    let obs = observe (sample_exec auto sched ~rng ~depth) in
    Hashtbl.replace counts obs (1 + Option.value ~default:0 (Hashtbl.find_opt counts obs))
  done;
  Hashtbl.fold (fun obs n acc -> (obs, float_of_int n /. float_of_int samples) :: acc) counts []
