open Cdse_prob
open Cdse_psioa

type 'a budgeted = [ `Exact of 'a | `Truncated of 'a * Rat.t ]
type compress = Par_measure.compress
type engine = Par_measure.engine

(* The cone-expansion engine itself lives in {!Par_measure}, which owns
   the sequential path (domains = 1, the historical implementation, byte
   for byte) and the two multicore paths (barrier-free subtree
   work-stealing for unbudgeted runs, layer-synchronous sharding when
   budgets or the quotient need layers) — see par_measure.mli for the
   determinism contract and the engine dispatch. This module keeps the
   measure-theoretic surface: cones, traces, reachability, expectations,
   sampling. *)

(* Every exact entry point funnels through here, so one span covers the
   whole engine run; the spans inside it come from Par_measure. *)
let exec_dist_budgeted ?engine ?memo ?max_execs ?max_width ?domains ?compress
    ?track auto sched ~depth =
  Cdse_obs.Trace.span "measure.exec_dist"
    ~args:(fun () ->
      [ ("depth", string_of_int depth);
        ("domains", string_of_int (Option.value ~default:1 domains)) ])
    (fun () ->
      Par_measure.exec_dist_budgeted ?engine ?memo ?max_execs ?max_width ?domains
        ?compress ?track auto sched ~depth)

let exec_dist ?engine ?memo ?max_execs ?max_width ?domains ?compress ?track auto
    sched ~depth =
  match
    exec_dist_budgeted ?engine ?memo ?max_execs ?max_width ?domains ?compress
      ?track auto sched ~depth
  with
  | `Exact d | `Truncated (d, _) -> d

type frontier = Par_measure.frontier = {
  f_depth : int;
  f_alive : (Exec.t * Rat.t) list;
  f_finished : (Exec.t * Rat.t) list;
}

let exec_dist_frontier ?engine ?memo ?domains ?compress ?from auto sched ~depth =
  Cdse_obs.Trace.span "measure.exec_dist"
    ~args:(fun () ->
      [ ("depth", string_of_int depth);
        ( "resume_from",
          string_of_int (match from with Some f -> f.f_depth | None -> 0) );
        ("domains", string_of_int (Option.value ~default:1 domains)) ])
    (fun () ->
      Par_measure.exec_dist_frontier ?engine ?memo ?domains ?compress ?from auto
        sched ~depth)

let cone_prob auto sched alpha =
  let rec go acc prefix = function
    | [] -> acc
    | (act, q') :: rest ->
        let choice = Scheduler.validate_choice auto sched prefix in
        let pa = Dist.prob choice act in
        if Rat.is_zero pa then Rat.zero
        else
          let eta = Psioa.step auto (Exec.lstate prefix) act in
          let pq = Dist.prob eta q' in
          if Rat.is_zero pq then Rat.zero
          else go (Rat.mul acc (Rat.mul pa pq)) (Exec.extend prefix act q') rest
  in
  if not (Value.equal (Exec.fstate alpha) (Psioa.start auto)) then Rat.zero
  else go Rat.one (Exec.init (Psioa.start auto)) (Exec.steps alpha)

let map_budgeted f = function
  | `Exact d -> `Exact (f d)
  | `Truncated (d, lost) -> `Truncated (f d, lost)

let trace_of auto = Exec.trace ~sig_of:(Psioa.signature auto)

let trace_dist ?memo ?max_execs ?max_width ?domains ?compress auto sched ~depth =
  Dist.map
    ~compare:(Cdse_util.Order.list Action.compare)
    (trace_of auto)
    (exec_dist ?memo ?max_execs ?max_width ?domains ?compress auto sched ~depth)

let trace_dist_budgeted ?memo ?max_execs ?max_width ?domains ?compress auto sched
    ~depth =
  map_budgeted
    (Dist.map ~compare:(Cdse_util.Order.list Action.compare) (trace_of auto))
    (exec_dist_budgeted ?memo ?max_execs ?max_width ?domains ?compress auto sched
       ~depth)

let n_execs ?memo ?max_execs ?max_width ?domains ?compress auto sched ~depth =
  Dist.size (exec_dist ?memo ?max_execs ?max_width ?domains ?compress auto sched ~depth)

(* Probabilistic reachability: mass of completed executions that visit a
   state satisfying the predicate within the depth bound. [pred] is passed
   to the engine as the [?track] refinement, so the quotient never merges a
   pred-hitting execution with a pred-missing one — the mass below stays
   exact under every compression level. *)
let reach_mass ~pred d =
  Dist.fold
    (fun acc e p -> if List.exists pred (Exec.states e) then Rat.add acc p else acc)
    Rat.zero d

let reach_prob ?memo ?max_execs ?max_width ?domains ?compress auto sched ~depth
    ~pred =
  reach_mass ~pred
    (exec_dist ?memo ?max_execs ?max_width ?domains ?compress ~track:pred auto
       sched ~depth)

let reach_prob_budgeted ?memo ?max_execs ?max_width ?domains ?compress auto sched
    ~depth ~pred =
  map_budgeted (reach_mass ~pred)
    (exec_dist_budgeted ?memo ?max_execs ?max_width ?domains ?compress ~track:pred
       auto sched ~depth)

(* Expected number of scheduled steps of the completed execution. *)
let expected_steps ?memo ?max_execs ?max_width ?domains ?compress auto sched
    ~depth =
  Dist.expect
    (fun e -> Rat.of_int (Exec.length e))
    (exec_dist ?memo ?max_execs ?max_width ?domains ?compress auto sched ~depth)

(* Monte-Carlo estimation: drive sampled runs instead of expanding the
   exact cone tree. The estimator trades exactness for scale — the exact
   computation is exponential in depth on branching systems (experiment
   E7), while sampling is linear in [samples × depth]. *)
let sample_exec auto sched ~rng ~depth =
  let rec go e n =
    if n = 0 then e
    else
      let choice = Scheduler.validate_choice auto sched e in
      match Dist.sample rng choice with
      | None -> e
      | Some act -> (
          let eta = Psioa.step auto (Exec.lstate e) act in
          match Dist.sample rng eta with
          | None -> e (* unreachable: transition measures are proper *)
          | Some q' -> go (Exec.extend e act q') (n - 1))
  in
  go (Exec.init (Psioa.start auto)) depth

let estimate_fdist auto sched ~observe ~rng ~samples ~depth =
  let counts = Hashtbl.create 64 in
  for _ = 1 to samples do
    let obs = observe (sample_exec auto sched ~rng ~depth) in
    Hashtbl.replace counts obs (1 + Option.value ~default:0 (Hashtbl.find_opt counts obs))
  done;
  Hashtbl.fold (fun obs n acc -> (obs, float_of_int n /. float_of_int samples) :: acc) counts []
