(** Span tracing for the measure engine: where the wall-clock goes.

    {!Obs} answers "how many" (counters, histograms); this module answers
    "when and for how long". It records {e complete spans} (a name, a
    domain id, a start timestamp and a duration) and {e instant events}
    into per-domain ring buffers, and exports them either as Chrome
    trace-event JSON — load the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto} for an interactive per-domain
    timeline — or as a self-profiling text summary that attributes each
    frontier layer's time to expansion, barrier wait, merge and quotient
    work (the numbers behind the barrier-free-engine decision, ROADMAP
    item 1).

    {2 Cost model}

    Like {!Obs}, the tracer is compiled in unconditionally and designed to
    be free when disabled: every recording site is a load and a branch on
    one [bool ref], argument lists are thunks that are never forced while
    disabled, and {!begin_span} returns a shared null token without
    reading the clock. Enabled, a span costs two clock reads and one
    record write into a preallocated ring.

    {2 Concurrency}

    The same discipline as {!Obs} counters: a worker domain installs a
    ring buffer in its domain-local storage ({!with_buffer}) and every
    event it records lands there, written by that domain alone — no locks,
    no atomics on the hot path. The coordinating domain folds worker
    buffers into the global event store at layer barriers ({!drain}).
    Recording {e without} an installed buffer is reserved for the
    coordinating domain (the sequential engine, checker phases, CLI
    drivers), exactly like histograms and gauges in {!Obs}. Toggle tracing
    only between engine runs, never while worker domains are live.

    {2 Clock}

    Timestamps are microseconds of wall-clock ([Unix.gettimeofday])
    relative to the {!start} call. The engine's spans are long enough
    (layers, chunks, barriers) that µs resolution is ample; durations are
    clamped non-negative so a stepping clock cannot produce a span Chrome
    refuses to render. *)

(** {1 Master switch} *)

val enabled : unit -> bool
(** Tracing switch; [false] at startup. *)

val start : ?capacity:int -> unit -> unit
(** Clear every previously collected event, restart the clock origin and
    enable tracing. [?capacity] (default [65536]) bounds each subsequently
    created ring buffer {e and} is a per-run bound on the global store (a
    full buffer drops further events and counts them, see {!dropped} —
    recording never blocks and never reallocates). *)

val stop : unit -> unit
(** Disable tracing. Collected events are kept for export. *)

val clear : unit -> unit
(** Drop every collected event and reset the dropped-event count. *)

val now_us : unit -> float
(** Microseconds since {!start}. Meaningful only while tracing. *)

val dropped : unit -> int
(** Events discarded because a ring or the global store was full,
    including drops folded in from drained worker buffers. *)

(** {1 Recording} *)

type args = (string * string) list
(** Span/event arguments, rendered into the Chrome [args] object and the
    per-layer summary. Keys are lowercase identifiers. *)

val span : ?args:(unit -> args) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a complete span. The argument thunk is
    forced {e after} [f] returns (so it may read results through a ref)
    and only when tracing is enabled. The span is recorded even when [f]
    raises — spans are always balanced. *)

type tok
(** An open span: name, owning domain and start timestamp. A token from a
    disabled {!begin_span} is inert — {!end_span} on it records nothing. *)

val begin_span : string -> tok

val end_span : ?args:(unit -> args) -> tok -> unit
(** Close the span and record it. Call on the domain that opened it. *)

val instant : ?args:(unit -> args) -> string -> unit
(** A zero-duration event (fault injections, takeovers, per-layer stats). *)

val emit_span : ?dom:int -> ?args:args -> string -> ts_us:float -> dur_us:float -> unit
(** Record a span with explicit coordinates — the coordinator uses this to
    attribute barrier-wait intervals to {e worker} timelines after the
    fact ([?dom] overrides the recording domain's id). No-op when
    disabled; negative durations are clamped to 0. *)

(** {1 Per-domain buffers} *)

type buffer

val buffer : dom:int -> buffer
(** A fresh ring buffer whose events carry domain id [dom] (the worker
    index, used as the Chrome [tid]). Capacity is the value given to the
    last {!start}. *)

val acquire_buffer : dom:int -> buffer
(** Like {!buffer}, but reuses a ring retired with {!release_buffer} when
    one of the current capacity is available (its cursor, drop count and
    owning domain are reset) and allocates only otherwise — the engines use
    this so repeated traced runs stop churning a [capacity]-sized array per
    worker per run. Retired rings whose capacity no longer matches the last
    {!start} are discarded. Thread-safe (one mutex round-trip, off the
    recording hot path). *)

val release_buffer : buffer -> unit
(** Return a buffer to the reuse freelist. Call after {!drain}, once the
    buffer is no longer installed in any domain; the buffer must not be
    used again until re-acquired. *)

val with_buffer : buffer -> (unit -> 'a) -> 'a
(** Install the buffer in {e this} domain's local storage for the duration
    of the callback, diverting every event it records (at any depth) into
    it. The previous buffer, if any, is restored afterwards. A buffer must
    not be installed in two domains at once. *)

val drain : buffer -> unit
(** Fold the buffer's events (and its dropped count) into the global store
    and empty it. Call from the coordinating domain while the buffer's
    worker is idle — a layer barrier. *)

(** {1 Collected events} *)

type event = {
  ev_name : string;
  ev_dom : int;  (** worker/domain index; 0 = coordinator *)
  ev_ts : float;  (** µs since {!start} *)
  ev_dur : float;  (** µs; 0 for instants *)
  ev_instant : bool;
  ev_args : args;
}

val events : unit -> event list
(** Everything drained or recorded on the coordinator so far, sorted by
    start timestamp. Does not include still-undrained worker buffers. *)

(** {1 Exporters} *)

val to_chrome : unit -> string
(** The collected events as Chrome trace-event JSON (the catapult
    ["traceEvents"] format): complete ["ph": "X"] spans and
    ["ph": "i"] instants on [pid] 0, one [tid] per domain, with
    [thread_name] metadata — loadable in [chrome://tracing] and
    Perfetto. *)

val write_chrome : string -> unit
(** {!to_chrome} to a file. *)

(** {2 Self-profiling summary}

    Parsed from the engine's span vocabulary — layered engine:
    [measure.layer], [measure.expand], [measure.chunk],
    [measure.barrier.wait], [measure.merge], [quotient.merge],
    [measure.truncate], [measure.layer.stats]; barrier-free subtree
    engine: [measure.subtree] (one claimed work unit — a whole subtree —
    counted as a chunk on its worker's row) and [measure.steal.idle]
    (a worker waiting for stealable work, aggregated into
    {!summary.sm_idle_frac}). Foreign spans are counted but not
    attributed. When one trace covers several engine runs, rows with the
    same layer index aggregate. *)

type layer_row = {
  lr_layer : int;
  lr_width : int;  (** frontier width entering the layer *)
  lr_total_us : float;  (** full layer span *)
  lr_expand_us : float;  (** parallel section / sequential expansion *)
  lr_merge_us : float;  (** deterministic frontier merge (parallel engine) *)
  lr_quotient_us : float;  (** bisimulation-quotient pass *)
  lr_barrier_us : float;  (** barrier wait, summed over workers *)
  lr_chunks : int;
  lr_stats : args;  (** memo/hcons deltas from [measure.layer.stats] *)
}

type worker_row = {
  wr_dom : int;
  wr_busy_us : float;  (** chunk-span + subtree-span time *)
  wr_wait_us : float;  (** barrier-wait time (layered engine) *)
  wr_idle_us : float;  (** steal-idle time (subtree engine) *)
  wr_chunks : int;  (** claimed work units: layer chunks or subtrees *)
}

type summary = {
  sm_spans : int;
  sm_instants : int;
  sm_dropped : int;
  sm_total_us : float;  (** last event end − first event start *)
  sm_barrier_wait_frac : float;
      (** Σ barrier-wait ∕ (Σ barrier-wait + Σ busy): the fraction of
          worker time stalled at layer barriers. 0 when no parallel
          section was traced — in particular for the barrier-free subtree
          engine, which has no barriers. *)
  sm_idle_frac : float;
      (** Σ steal-idle ∕ (Σ steal-idle + Σ busy): the fraction of worker
          time spent waiting for stealable work in the subtree engine.
          0 for layered/sequential runs. *)
  sm_merge_frac : float;  (** Σ merge ∕ Σ layer time; 0 without layers *)
  sm_imbalance : float;
      (** max ∕ mean of per-worker total busy time — chunk-load imbalance
          across the run (≥ 1; 1 when perfectly balanced or sequential) *)
  sm_layers : layer_row list;  (** sorted by layer index *)
  sm_workers : worker_row list;  (** sorted by domain id *)
  sm_chunk_us : float list;  (** all chunk durations, sorted ascending *)
}

val summary : unit -> summary

val pp_summary : Format.formatter -> summary -> unit
(** Multi-line rendering: run totals, the three attribution fractions, a
    per-layer table, per-worker busy/wait totals and a chunk-duration
    percentile line. *)
