(* Span tracer. Mirrors the Obs discipline: one global on/off flag guards
   every mutation, worker domains write only into a ring buffer installed
   in their own domain-local storage, and the coordinating domain folds
   those rings into the global store at layer barriers. See trace.mli for
   the user contract. *)

type args = (string * string) list

type event = {
  ev_name : string;
  ev_dom : int;
  ev_ts : float;
  ev_dur : float;
  ev_instant : bool;
  ev_args : args;
}

let on = ref false
let enabled () = !on

(* Clock origin (seconds, Unix.gettimeofday) set by [start]. *)
let t0 = ref 0.0
let now_us () = (Unix.gettimeofday () -. !t0) *. 1e6

let default_capacity = 65536
let cap = ref default_capacity

(* Global store: coordinator-only (the no-buffer recording path and
   [drain] both run on the coordinating domain). Kept as a reversed list;
   [events] sorts by timestamp anyway. *)
let store : event list ref = ref []
let n_store = ref 0
let dropped_count = ref 0

let push_global ev =
  if !n_store >= !cap then incr dropped_count
  else begin
    store := ev :: !store;
    incr n_store
  end

(* ----------------------------------------------------- per-domain rings *)

type buffer = {
  mutable buf_dom : int;
  ring : event array;
  mutable buf_len : int;
  mutable buf_dropped : int;
}

let null_event =
  { ev_name = ""; ev_dom = 0; ev_ts = 0.; ev_dur = 0.; ev_instant = true; ev_args = [] }

let buffer ~dom =
  { buf_dom = dom; ring = Array.make !cap null_event; buf_len = 0; buf_dropped = 0 }

(* Freelist of retired ring buffers. A traced engine run used to allocate a
   [!cap]-sized event array per worker per run (~0.5 MB each at the default
   capacity) — bench sweeps and the churn CLI churned megabytes per call.
   [acquire_buffer] reuses a retired ring of the current capacity when one
   is available (resetting its cursor, drop count and owning domain — stale
   events beyond [buf_len] are never read) and allocates only otherwise;
   buffers whose capacity no longer matches [!cap] (a [start ~capacity] in
   between) are discarded rather than kept forever. The freelist is
   mutex-guarded: acquisition happens per engine run, never on the
   recording hot path. *)
let buf_pool : buffer list ref = ref []
let buf_pool_mutex = Mutex.create ()

let acquire_buffer ~dom =
  Mutex.lock buf_pool_mutex;
  let matching, _stale = List.partition (fun b -> Array.length b.ring = !cap) !buf_pool in
  let reused, rest =
    match matching with b :: rest -> (Some b, rest) | [] -> (None, [])
  in
  buf_pool := rest;
  Mutex.unlock buf_pool_mutex;
  match reused with
  | Some b ->
      b.buf_dom <- dom;
      b.buf_len <- 0;
      b.buf_dropped <- 0;
      b
  | None -> buffer ~dom

let release_buffer b =
  Mutex.lock buf_pool_mutex;
  buf_pool := b :: !buf_pool;
  Mutex.unlock buf_pool_mutex

let buf_key : buffer option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_buffer b f =
  let prev = Domain.DLS.get buf_key in
  Domain.DLS.set buf_key (Some b);
  Fun.protect ~finally:(fun () -> Domain.DLS.set buf_key prev) f

let drain b =
  for i = 0 to b.buf_len - 1 do
    push_global b.ring.(i)
  done;
  dropped_count := !dropped_count + b.buf_dropped;
  b.buf_len <- 0;
  b.buf_dropped <- 0

let dom_of () =
  match Domain.DLS.get buf_key with Some b -> b.buf_dom | None -> 0

let push ev =
  match Domain.DLS.get buf_key with
  | Some b ->
      if b.buf_len >= Array.length b.ring then b.buf_dropped <- b.buf_dropped + 1
      else begin
        b.ring.(b.buf_len) <- ev;
        b.buf_len <- b.buf_len + 1
      end
  | None -> push_global ev

(* --------------------------------------------------------- admin *)

let clear () =
  store := [];
  n_store := 0;
  dropped_count := 0

let start ?(capacity = default_capacity) () =
  clear ();
  cap := max 16 capacity;
  t0 := Unix.gettimeofday ();
  on := true

let stop () = on := false

let dropped () = !dropped_count

(* ----------------------------------------------------------- recording *)

let force_args = function None -> [] | Some f -> f ()

let instant ?args name =
  if !on then
    push
      { ev_name = name; ev_dom = dom_of (); ev_ts = now_us (); ev_dur = 0.;
        ev_instant = true; ev_args = force_args args }

type tok = { tk_name : string; tk_dom : int; tk_ts : float; tk_live : bool }

let null_tok = { tk_name = ""; tk_dom = 0; tk_ts = 0.; tk_live = false }

let begin_span name =
  if not !on then null_tok
  else { tk_name = name; tk_dom = dom_of (); tk_ts = now_us (); tk_live = true }

let end_span ?args tok =
  if tok.tk_live && !on then
    push
      { ev_name = tok.tk_name; ev_dom = tok.tk_dom; ev_ts = tok.tk_ts;
        ev_dur = Float.max 0. (now_us () -. tok.tk_ts); ev_instant = false;
        ev_args = force_args args }

let span ?args name f =
  if not !on then f ()
  else begin
    let tok = begin_span name in
    Fun.protect ~finally:(fun () -> end_span ?args tok) f
  end

let emit_span ?dom ?(args = []) name ~ts_us ~dur_us =
  if !on then
    let d = match dom with Some d -> d | None -> dom_of () in
    push
      { ev_name = name; ev_dom = d; ev_ts = ts_us; ev_dur = Float.max 0. dur_us;
        ev_instant = false; ev_args = args }

let events () =
  List.sort
    (fun e1 e2 ->
      let c = Float.compare e1.ev_ts e2.ev_ts in
      if c <> 0 then c else Int.compare e1.ev_dom e2.ev_dom)
    !store

(* -------------------------------------------------------- chrome export *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let args_json = function
  | [] -> "{}"
  | args ->
      "{"
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
             args)
      ^ "}"

let to_chrome () =
  let evs = events () in
  let doms =
    List.sort_uniq Int.compare (List.map (fun e -> e.ev_dom) evs)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  let first = ref true in
  let emit s =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b s
  in
  List.iter
    (fun d ->
      emit
        (Printf.sprintf
           "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %d, \
            \"args\": {\"name\": \"%s\"}}"
           d
           (if d = 0 then "domain 0 (coordinator)" else Printf.sprintf "domain %d" d)))
    doms;
  List.iter
    (fun e ->
      emit
        (if e.ev_instant then
           Printf.sprintf
             "  {\"name\": \"%s\", \"cat\": \"cdse\", \"ph\": \"i\", \"s\": \"t\", \
              \"pid\": 0, \"tid\": %d, \"ts\": %.3f, \"args\": %s}"
             (json_escape e.ev_name) e.ev_dom e.ev_ts (args_json e.ev_args)
         else
           Printf.sprintf
             "  {\"name\": \"%s\", \"cat\": \"cdse\", \"ph\": \"X\", \"pid\": 0, \
              \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": %s}"
             (json_escape e.ev_name) e.ev_dom e.ev_ts e.ev_dur (args_json e.ev_args)))
    evs;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

let write_chrome path =
  let oc = open_out path in
  output_string oc (to_chrome ());
  close_out oc

(* -------------------------------------------------------------- summary *)

type layer_row = {
  lr_layer : int;
  lr_width : int;
  lr_total_us : float;
  lr_expand_us : float;
  lr_merge_us : float;
  lr_quotient_us : float;
  lr_barrier_us : float;
  lr_chunks : int;
  lr_stats : args;
}

type worker_row = {
  wr_dom : int;
  wr_busy_us : float;
  wr_wait_us : float;
  wr_idle_us : float;
  wr_chunks : int;
}

type summary = {
  sm_spans : int;
  sm_instants : int;
  sm_dropped : int;
  sm_total_us : float;
  sm_barrier_wait_frac : float;
  sm_idle_frac : float;
  sm_merge_frac : float;
  sm_imbalance : float;
  sm_layers : layer_row list;
  sm_workers : worker_row list;
  sm_chunk_us : float list;
}

let arg_int e key = Option.bind (List.assoc_opt key e.ev_args) int_of_string_opt

let layer_of e = Option.value ~default:(-1) (arg_int e "layer")

let summary () =
  let evs = events () in
  let spans = List.filter (fun e -> not e.ev_instant) evs in
  let instants = List.filter (fun e -> e.ev_instant) evs in
  let total_us =
    match evs with
    | [] -> 0.
    | first :: _ ->
        let last_end =
          List.fold_left (fun acc e -> Float.max acc (e.ev_ts +. e.ev_dur)) 0. evs
        in
        Float.max 0. (last_end -. first.ev_ts)
  in
  (* Per-layer attribution, keyed by the "layer" argument. *)
  let layers : (int, layer_row) Hashtbl.t = Hashtbl.create 16 in
  let layer_row l =
    match Hashtbl.find_opt layers l with
    | Some r -> r
    | None ->
        let r =
          { lr_layer = l; lr_width = 0; lr_total_us = 0.; lr_expand_us = 0.;
            lr_merge_us = 0.; lr_quotient_us = 0.; lr_barrier_us = 0.;
            lr_chunks = 0; lr_stats = [] }
        in
        Hashtbl.replace layers l r;
        r
  in
  let update l f = Hashtbl.replace layers l (f (layer_row l)) in
  let workers : (int, worker_row) Hashtbl.t = Hashtbl.create 8 in
  let update_worker d f =
    let r =
      match Hashtbl.find_opt workers d with
      | Some r -> r
      | None -> { wr_dom = d; wr_busy_us = 0.; wr_wait_us = 0.; wr_idle_us = 0.; wr_chunks = 0 }
    in
    Hashtbl.replace workers d (f r)
  in
  let chunk_durs = ref [] in
  List.iter
    (fun e ->
      let l = layer_of e in
      match e.ev_name with
      | "measure.layer" ->
          update l (fun r ->
              { r with
                lr_total_us = r.lr_total_us +. e.ev_dur;
                lr_width = (match arg_int e "width" with Some w -> r.lr_width + w | None -> r.lr_width) })
      | "measure.expand" -> update l (fun r -> { r with lr_expand_us = r.lr_expand_us +. e.ev_dur })
      | "measure.merge" -> update l (fun r -> { r with lr_merge_us = r.lr_merge_us +. e.ev_dur })
      | "quotient.merge" | "measure.quotient" ->
          update l (fun r -> { r with lr_quotient_us = r.lr_quotient_us +. e.ev_dur })
      | "measure.barrier.wait" ->
          update l (fun r -> { r with lr_barrier_us = r.lr_barrier_us +. e.ev_dur });
          update_worker e.ev_dom (fun r -> { r with wr_wait_us = r.wr_wait_us +. e.ev_dur })
      | "measure.chunk" ->
          chunk_durs := e.ev_dur :: !chunk_durs;
          update l (fun r -> { r with lr_chunks = r.lr_chunks + 1 });
          update_worker e.ev_dom (fun r ->
              { r with wr_busy_us = r.wr_busy_us +. e.ev_dur; wr_chunks = r.wr_chunks + 1 })
      | "measure.subtree" ->
          (* A claimed work unit of the barrier-free engine: a whole subtree,
             not one layer chunk — attributed to the worker only. *)
          chunk_durs := e.ev_dur :: !chunk_durs;
          update_worker e.ev_dom (fun r ->
              { r with wr_busy_us = r.wr_busy_us +. e.ev_dur; wr_chunks = r.wr_chunks + 1 })
      | "measure.steal.idle" ->
          update_worker e.ev_dom (fun r -> { r with wr_idle_us = r.wr_idle_us +. e.ev_dur })
      | "measure.layer.stats" ->
          update l (fun r -> { r with lr_stats = List.remove_assoc "layer" e.ev_args @ r.lr_stats })
      | _ -> ())
    evs;
  let layer_rows =
    Hashtbl.fold (fun _ r acc -> r :: acc) layers []
    |> List.filter (fun r -> r.lr_layer >= 0)
    |> List.sort (fun r1 r2 -> Int.compare r1.lr_layer r2.lr_layer)
  in
  let worker_rows =
    Hashtbl.fold (fun _ r acc -> r :: acc) workers []
    |> List.sort (fun r1 r2 -> Int.compare r1.wr_dom r2.wr_dom)
  in
  let sum f rows = List.fold_left (fun acc r -> acc +. f r) 0. rows in
  let busy_total = sum (fun w -> w.wr_busy_us) worker_rows in
  let wait_total = sum (fun w -> w.wr_wait_us) worker_rows in
  let idle_total = sum (fun w -> w.wr_idle_us) worker_rows in
  let layer_total = sum (fun r -> r.lr_total_us) layer_rows in
  let merge_total = sum (fun r -> r.lr_merge_us) layer_rows in
  let barrier_wait_frac =
    if busy_total +. wait_total <= 0. then 0. else wait_total /. (busy_total +. wait_total)
  in
  let idle_frac =
    if busy_total +. idle_total <= 0. then 0. else idle_total /. (busy_total +. idle_total)
  in
  let merge_frac = if layer_total <= 0. then 0. else merge_total /. layer_total in
  let imbalance =
    let busies =
      List.filter_map
        (fun w -> if w.wr_chunks > 0 then Some w.wr_busy_us else None)
        worker_rows
    in
    match busies with
    | [] -> 1.
    | _ ->
        let n = float_of_int (List.length busies) in
        let mean = List.fold_left ( +. ) 0. busies /. n in
        if mean <= 0. then 1.
        else Float.max 1. (List.fold_left Float.max 0. busies /. mean)
  in
  { sm_spans = List.length spans;
    sm_instants = List.length instants;
    sm_dropped = !dropped_count;
    sm_total_us = total_us;
    sm_barrier_wait_frac = barrier_wait_frac;
    sm_idle_frac = idle_frac;
    sm_merge_frac = merge_frac;
    sm_imbalance = imbalance;
    sm_layers = layer_rows;
    sm_workers = worker_rows;
    sm_chunk_us = List.sort Float.compare !chunk_durs }

let percentile sorted p =
  match sorted with
  | [] -> 0.
  | l ->
      let n = List.length l in
      let idx = min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1) in
      List.nth l (max 0 idx)

let pp_summary fmt s =
  let open Format in
  fprintf fmt "@[<v>";
  fprintf fmt "%d spans, %d instants, %.1f us traced, %d dropped@," s.sm_spans
    s.sm_instants s.sm_total_us s.sm_dropped;
  fprintf fmt "barrier_wait_frac        %.3f  (worker time stalled at layer barriers)@,"
    s.sm_barrier_wait_frac;
  fprintf fmt "idle_frac                %.3f  (worker time waiting for stealable work)@,"
    s.sm_idle_frac;
  fprintf fmt "merge_frac               %.3f  (layer time in the deterministic merge)@,"
    s.sm_merge_frac;
  fprintf fmt "imbalance_max_over_mean  %.3f  (per-worker busy time, max / mean)@,"
    s.sm_imbalance;
  if s.sm_layers <> [] then begin
    fprintf fmt "per layer (us):@,";
    fprintf fmt "  %5s %8s %10s %10s %10s %10s %10s %7s@," "layer" "width" "total"
      "expand" "merge" "quotient" "barrier" "chunks";
    List.iter
      (fun r ->
        fprintf fmt "  %5d %8d %10.1f %10.1f %10.1f %10.1f %10.1f %7d" r.lr_layer
          r.lr_width r.lr_total_us r.lr_expand_us r.lr_merge_us r.lr_quotient_us
          r.lr_barrier_us r.lr_chunks;
        (match r.lr_stats with
        | [] -> ()
        | st ->
            fprintf fmt "  %s"
              (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) st)));
        fprintf fmt "@,")
      s.sm_layers
  end;
  if s.sm_workers <> [] then begin
    fprintf fmt "per worker (us):@,";
    fprintf fmt "  %5s %10s %10s %10s %7s@," "dom" "busy" "wait" "idle" "chunks";
    List.iter
      (fun w ->
        fprintf fmt "  %5d %10.1f %10.1f %10.1f %7d@," w.wr_dom w.wr_busy_us
          w.wr_wait_us w.wr_idle_us w.wr_chunks)
      s.sm_workers
  end;
  (match s.sm_chunk_us with
  | [] -> ()
  | durs ->
      let n = List.length durs in
      let mean = List.fold_left ( +. ) 0. durs /. float_of_int n in
      fprintf fmt
        "chunk durations (us): n=%d min=%.1f mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f@,"
        n (List.hd durs) mean (percentile durs 0.5) (percentile durs 0.9)
        (percentile durs 0.99)
        (List.nth durs (n - 1)));
  fprintf fmt "@]"
