(** Zero-dependency observability: counters, histograms, gauges and an
    optional event sink for the measure engine and its supporting layers.

    The library is compiled in unconditionally but designed to be free when
    disabled: every mutation is guarded by a single [if enabled ()] branch on
    an immutable-after-startup [bool ref], and event payloads are thunks that
    are never forced while disabled. Instrumented modules register their
    instruments once at module initialisation, so steady-state cost with
    stats off is one load + branch per instrumentation site.

    All state is global to the process. Counters are safe to mutate from
    worker domains {e through a shard} (see {!new_shard}): the multicore
    measure engine installs a per-domain shard, increments accumulate
    locally, and the coordinating domain folds them into the global records
    at a layer barrier — no locks on the hot path. Histograms and gauges
    are coordinator-only: they must never be mutated from two domains at
    once (the engine only touches them between parallel sections).
    Registration takes a mutex, so concurrent construction-time lookups are
    safe. Instrument names are dot-separated lowercase paths
    ([measure.frontier.width]) and registration is idempotent: asking for
    an existing name returns the same instrument.

    Depends on nothing but the stdlib — [Rat] itself is instrumented with
    this module, so exact rationals cross the boundary as strings (see
    {!gauge}). *)

(** {1 Master switch} *)

val enabled : unit -> bool
(** Stats collection switch; [false] at startup. *)

val set_enabled : bool -> unit

(** {1 Counters}

    Monotonic non-negative integer counters. *)

type counter

val counter : string -> counter
(** [counter name] registers (or retrieves) the counter called [name]. *)

val incr : counter -> unit
(** Add 1 when enabled; no-op otherwise. *)

val add : counter -> int -> unit
(** Add [k >= 0] when enabled; no-op otherwise. *)

val count : counter -> int
(** Current value (readable even while disabled). *)

val counter_value : string -> int
(** Value of a counter by name; 0 if it was never registered. *)

(** {1 Domain shards}

    Per-domain accumulation buffers for counters, so worker domains of the
    multicore measure engine can keep incrementing the ordinary global
    counter handles without racing: while a shard is installed (via
    {!with_shard}) in the calling domain, {!incr}/{!add} divert into it
    instead of the global record. The coordinating domain merges shards at
    layer barriers with {!merge_shard}. Counter {e sums} are therefore
    conserved regardless of how work is split across domains. Shards cover
    counters only — histograms, gauges and the event sink must stay on the
    coordinating domain. *)

type shard

val new_shard : unit -> shard
(** A fresh, empty shard (all deltas zero). *)

val with_shard : shard -> (unit -> 'a) -> 'a
(** [with_shard sh f] installs [sh] in {e this} domain's local storage for
    the duration of [f]: every {!incr}/{!add} performed by [f] (at any
    depth) accumulates into [sh]. The previously installed shard, if any,
    is restored afterwards. A shard must not be installed in two domains at
    the same time. *)

val merge_shard : shard -> unit
(** Fold the shard's deltas into the global counters and zero the shard.
    Call from the coordinating domain while the shard's worker is idle (a
    layer barrier); not safe concurrently with the owner still writing. *)

(** {1 Histograms}

    Power-of-two histograms for small integer magnitudes (frontier widths,
    layer sizes). Bucket [0] holds observations [<= 0]; bucket [i >= 1]
    holds observations in [[2^(i-1), 2^i - 1]]. *)

type histogram

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record one observation when enabled; no-op otherwise. *)

val hist_count : histogram -> int
(** Number of observations. *)

val hist_sum : histogram -> int
val hist_max : histogram -> int

val hist_min : histogram -> int
(** Smallest observation; 0 when empty. *)

(** {1 Gauges}

    Last-write-wins text gauges. Used for values that are not integers —
    in particular exact rationals, recorded via [Rat.to_string] so that
    readers can reparse them losslessly with [Rat.of_string]. *)

type gauge

val gauge : string -> gauge

val set_gauge : gauge -> string -> unit
(** Record the value when enabled; no-op otherwise. *)

val gauge_value : string -> string option
(** Last recorded value of a gauge by name; [None] if never set. *)

(** {1 Event sink}

    A single optional structured-event subscriber, for ad-hoc tracing. The
    payload thunk is forced only when stats are enabled AND a sink is
    installed, so tracing call sites stay free in production. *)

type event = { name : string; detail : string }

val set_sink : (event -> unit) option -> unit

val emit : string -> (unit -> string) -> unit
(** [emit name detail] delivers [{ name; detail = detail () }] to the sink,
    if enabled and installed. *)

(** {1 Snapshot / reset / report} *)

type histogram_stats = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;  (** (bucket upper bound, count), non-empty buckets only *)
}

val hist_stats : histogram -> histogram_stats
(** Direct bucket-level view of one histogram, without building a full
    {!snapshot} — used by the serving layer's [stats] endpoint to compute
    latency percentiles per request. *)

val hist_percentile : histogram_stats -> float -> int
(** [hist_percentile st p] (with [0 < p <= 1]) is an upper bound on the
    [p]-th percentile of the recorded observations: the smallest recorded
    bucket upper bound by which at least [ceil (p * count)] observations
    have fallen, capped at [h_max] (so [p = 1] is the exact max). Exact up
    to the power-of-two bucket resolution; 0 for an empty histogram. *)

type snapshot = {
  s_counters : (string * int) list;      (** sorted by name *)
  s_gauges : (string * string) list;     (** sorted by name; set gauges only *)
  s_histograms : (string * histogram_stats) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered instrument (the enabled flag and sink are kept). *)

val with_stats : (unit -> 'a) -> 'a * snapshot
(** [with_stats f] resets all instruments, runs [f] with stats enabled, and
    returns [f ()]'s result together with the resulting snapshot; the
    previous enabled state is restored afterwards (instrument values are
    left as [f] produced them, not restored). *)

val report : Format.formatter -> snapshot -> unit
(** Human-readable multi-line rendering, stable order. *)
