(* Global, single-threaded instrument registry. Mutations branch on [on]
   first so that disabled-mode cost is a load and a conditional per site;
   instruments are registered once at module-init time by the code they
   instrument, so the registry hashtables are cold after startup. *)

let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* Counters *)

type counter = { mutable c : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c = 0 } in
      Hashtbl.add counters name c;
      c

let incr c = if !on then c.c <- c.c + 1
let add c k = if !on then c.c <- c.c + k
let count c = c.c

let counter_value name =
  match Hashtbl.find_opt counters name with Some c -> c.c | None -> 0

(* Histograms: bucket 0 holds v <= 0, bucket i >= 1 holds 2^(i-1) <= v < 2^i.
   63 buckets cover every positive int. *)

type histogram = {
  buckets : int array;
  mutable h_n : int;
  mutable h_total : int;
  mutable h_hi : int;
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 8

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h = { buckets = Array.make 64 0; h_n = 0; h_total = 0; h_hi = 0 } in
      Hashtbl.add histograms name h;
      h

let bucket_of v =
  if v <= 0 then 0
  else
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    go 0 v

let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1

let observe h v =
  if !on then begin
    let i = bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.h_n <- h.h_n + 1;
    h.h_total <- h.h_total + v;
    if v > h.h_hi then h.h_hi <- v
  end

let hist_count h = h.h_n
let hist_sum h = h.h_total
let hist_max h = h.h_hi

(* Gauges *)

type gauge = { mutable g : string option }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 8

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g = None } in
      Hashtbl.add gauges name g;
      g

let set_gauge g v = if !on then g.g <- Some v

let gauge_value name =
  match Hashtbl.find_opt gauges name with Some g -> g.g | None -> None

(* Event sink *)

type event = { name : string; detail : string }

let sink : (event -> unit) option ref = ref None
let set_sink s = sink := s

let emit name detail =
  if !on then
    match !sink with
    | None -> ()
    | Some f -> f { name; detail = detail () }

(* Snapshot / reset / report *)

type histogram_stats = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * string) list;
  s_histograms : (string * histogram_stats) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  let hist_stats h =
    let bs = ref [] in
    for i = Array.length h.buckets - 1 downto 0 do
      if h.buckets.(i) > 0 then bs := (bucket_upper i, h.buckets.(i)) :: !bs
    done;
    { h_count = h.h_n; h_sum = h.h_total; h_max = h.h_hi; h_buckets = !bs }
  in
  {
    s_counters = sorted_bindings counters (fun c -> c.c);
    s_gauges =
      sorted_bindings gauges (fun g -> g.g)
      |> List.filter_map (fun (k, v) ->
             match v with Some v -> Some (k, v) | None -> None);
    s_histograms = sorted_bindings histograms hist_stats;
  }

let reset () =
  Hashtbl.iter (fun _ c -> c.c <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g <- None) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 (Array.length h.buckets) 0;
      h.h_n <- 0;
      h.h_total <- 0;
      h.h_hi <- 0)
    histograms

let with_stats f =
  let was = !on in
  reset ();
  on := true;
  Fun.protect
    ~finally:(fun () -> on := was)
    (fun () ->
      let r = f () in
      (r, snapshot ()))

let report fmt s =
  let open Format in
  fprintf fmt "@[<v>";
  if s.s_counters <> [] then begin
    fprintf fmt "counters:@,";
    List.iter (fun (k, v) -> fprintf fmt "  %-32s %d@," k v) s.s_counters
  end;
  if s.s_gauges <> [] then begin
    fprintf fmt "gauges:@,";
    List.iter (fun (k, v) -> fprintf fmt "  %-32s %s@," k v) s.s_gauges
  end;
  if s.s_histograms <> [] then begin
    fprintf fmt "histograms:@,";
    List.iter
      (fun (k, h) ->
        fprintf fmt "  %-32s count=%d sum=%d max=%d@," k h.h_count h.h_sum
          h.h_max;
        List.iter
          (fun (ub, n) -> fprintf fmt "    <= %-10d %d@," ub n)
          h.h_buckets)
      s.s_histograms
  end;
  fprintf fmt "@]"
