(* Global instrument registry. Mutations branch on [on] first so that
   disabled-mode cost is a load and a conditional per site; instruments are
   registered once at module-init time by the code they instrument, so the
   registry hashtables are cold after startup.

   Counters are the one instrument mutated from worker domains (the measure
   engine's multicore path): a worker installs a [shard] in its domain-local
   storage and counter increments are diverted into it, to be folded into the
   global records by the coordinating domain at a layer barrier. Histograms
   and gauges stay coordinator-only. Registration takes a mutex (cold path:
   instruments are registered at module init, plus the occasional
   construction-time lookup), so concurrent registration from two domains
   cannot corrupt the registry tables. *)

let on = ref false
let enabled () = !on
let set_enabled b = on := b

let registry_mutex = Mutex.create ()

let registered tbl name make =
  Mutex.lock registry_mutex;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
        let v = make () in
        Hashtbl.add tbl name v;
        v
  in
  Mutex.unlock registry_mutex;
  v

(* Counters *)

type counter = { mutable c : int; id : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

(* Dense counter ids back the shard arrays; [by_id] resolves a shard slot
   back to its counter at merge time. Both are only touched under
   [registry_mutex]. *)
let by_id : counter array ref = ref [||]
let n_ids = ref 0

let counter name =
  registered counters name (fun () ->
      let c = { c = 0; id = !n_ids } in
      n_ids := !n_ids + 1;
      if !n_ids > Array.length !by_id then begin
        let bigger = Array.make (max 16 (2 * !n_ids)) c in
        Array.blit !by_id 0 bigger 0 (Array.length !by_id);
        by_id := bigger
      end;
      !by_id.(c.id) <- c;
      c)

(* Domain shards: a plain delta array indexed by counter id, installed in
   the worker's domain-local storage so the instrumentation sites need no
   knowledge of the engine's parallelism. One DLS key for the whole
   process (DLS slots are never reclaimed, so a key per shard would leak). *)

type shard = { mutable deltas : int array }

let shard_key : shard option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let new_shard () = { deltas = [||] }

let shard_bump sh id k =
  let n = Array.length sh.deltas in
  if id >= n then begin
    let bigger = Array.make (max 16 (max (id + 1) (2 * n))) 0 in
    Array.blit sh.deltas 0 bigger 0 n;
    sh.deltas <- bigger
  end;
  sh.deltas.(id) <- sh.deltas.(id) + k

let with_shard sh f =
  let prev = Domain.DLS.get shard_key in
  Domain.DLS.set shard_key (Some sh);
  Fun.protect ~finally:(fun () -> Domain.DLS.set shard_key prev) f

let merge_shard sh =
  Array.iteri
    (fun id d ->
      if d <> 0 then begin
        let c = !by_id.(id) in
        c.c <- c.c + d;
        sh.deltas.(id) <- 0
      end)
    sh.deltas

let incr c =
  if !on then
    match Domain.DLS.get shard_key with
    | None -> c.c <- c.c + 1
    | Some sh -> shard_bump sh c.id 1

let add c k =
  if !on then
    match Domain.DLS.get shard_key with
    | None -> c.c <- c.c + k
    | Some sh -> shard_bump sh c.id k

let count c = c.c

let counter_value name =
  match Hashtbl.find_opt counters name with Some c -> c.c | None -> 0

(* Histograms: bucket 0 holds v <= 0, bucket i >= 1 holds 2^(i-1) <= v < 2^i.
   63 buckets cover every positive int. *)

type histogram = {
  buckets : int array;
  mutable h_n : int;
  mutable h_total : int;
  mutable h_hi : int;
  mutable h_lo : int;
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 8

let histogram name =
  registered histograms name (fun () ->
      { buckets = Array.make 64 0; h_n = 0; h_total = 0; h_hi = 0; h_lo = 0 })

let bucket_of v =
  if v <= 0 then 0
  else
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    go 0 v

let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1

let observe h v =
  if !on then begin
    let i = bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    if h.h_n = 0 || v < h.h_lo then h.h_lo <- v;
    h.h_n <- h.h_n + 1;
    h.h_total <- h.h_total + v;
    if v > h.h_hi then h.h_hi <- v
  end

let hist_count h = h.h_n
let hist_sum h = h.h_total
let hist_max h = h.h_hi
let hist_min h = h.h_lo

(* Gauges *)

type gauge = { mutable g : string option }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 8

let gauge name = registered gauges name (fun () -> { g = None })

let set_gauge g v = if !on then g.g <- Some v

let gauge_value name =
  match Hashtbl.find_opt gauges name with Some g -> g.g | None -> None

(* Event sink *)

type event = { name : string; detail : string }

let sink : (event -> unit) option ref = ref None
let set_sink s = sink := s

let emit name detail =
  if !on then
    match !sink with
    | None -> ()
    | Some f -> f { name; detail = detail () }

(* Snapshot / reset / report *)

type histogram_stats = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
}

(* Smallest recorded bucket upper bound by which at least ceil(p * count)
   observations have fallen; the exact max for p = 1. An upper bound on the
   true percentile — exact to the power-of-two bucket resolution. *)
let hist_percentile st p =
  if st.h_count = 0 then 0
  else begin
    let need =
      let t = int_of_float (ceil (p *. float_of_int st.h_count)) in
      max 1 (min st.h_count t)
    in
    let rec go acc = function
      | [] -> st.h_max
      | (ub, n) :: rest -> if acc + n >= need then min ub st.h_max else go (acc + n) rest
    in
    go 0 st.h_buckets
  end

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * string) list;
  s_histograms : (string * histogram_stats) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_stats h =
  let bs = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then bs := (bucket_upper i, h.buckets.(i)) :: !bs
  done;
  { h_count = h.h_n; h_sum = h.h_total; h_min = h.h_lo; h_max = h.h_hi;
    h_buckets = !bs }

let snapshot () =
  {
    s_counters = sorted_bindings counters (fun c -> c.c);
    s_gauges =
      sorted_bindings gauges (fun g -> g.g)
      |> List.filter_map (fun (k, v) ->
             match v with Some v -> Some (k, v) | None -> None);
    s_histograms = sorted_bindings histograms hist_stats;
  }

let reset () =
  Hashtbl.iter (fun _ c -> c.c <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g <- None) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 (Array.length h.buckets) 0;
      h.h_n <- 0;
      h.h_total <- 0;
      h.h_hi <- 0;
      h.h_lo <- 0)
    histograms

let with_stats f =
  let was = !on in
  reset ();
  on := true;
  Fun.protect
    ~finally:(fun () -> on := was)
    (fun () ->
      let r = f () in
      (r, snapshot ()))

let report fmt s =
  let open Format in
  fprintf fmt "@[<v>";
  if s.s_counters <> [] then begin
    fprintf fmt "counters:@,";
    List.iter (fun (k, v) -> fprintf fmt "  %-32s %d@," k v) s.s_counters
  end;
  if s.s_gauges <> [] then begin
    fprintf fmt "gauges:@,";
    List.iter (fun (k, v) -> fprintf fmt "  %-32s %s@," k v) s.s_gauges
  end;
  if s.s_histograms <> [] then begin
    fprintf fmt "histograms:@,";
    List.iter
      (fun (k, h) ->
        let mean =
          if h.h_count = 0 then 0.
          else float_of_int h.h_sum /. float_of_int h.h_count
        in
        fprintf fmt
          "  %-32s count=%d min=%d max=%d mean=%.1f p50<=%d p90<=%d p99<=%d@,"
          k h.h_count h.h_min h.h_max mean (hist_percentile h 0.5)
          (hist_percentile h 0.9) (hist_percentile h 0.99))
      s.s_histograms
  end;
  fprintf fmt "@]"
