(** The approximate implementation relation
    [A ≤^{Sch,f}_{p,q1,q2,ε} B] (Definition 4.12) and its family /
    neg-pt variants, with the composability and transitivity harnesses
    (Lemmas 4.13–4.14, Theorems 4.15–4.16).

    The paper quantifies over {e all} p-bounded environments and q1-bounded
    schedulers; the checker quantifies over explicit finite families
    supplied by the caller (DESIGN.md substitution table). The existential
    "there is a q2-bounded σ'" is discharged by searching the scheduler
    schema's instances for [E ‖ B] — or by an explicit matching function
    when the caller knows the construction (as the composability proofs
    do). *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched

type verdict = {
  holds : bool;
  worst : Rat.t;  (** largest best-match distance encountered *)
  detail : (string * Rat.t) list;
      (** one entry per (environment, scheduler) pair: the matched
          distance *)
}

type engine = { memo : bool; domains : int; compress : Measure.compress }
(** Measure-engine knobs threaded into every {!Measure.exec_dist} call a
    checker performs. Passed positionally (the checkers have no positional
    parameter over which optional arguments could be erased). *)

val default_engine : engine
(** [{ memo = false; domains = 1; compress = `Off }] — the historical
    sequential path; what the knob-less entry points use. *)

val approx_le :
  schema:Schema.t ->
  insight_of:(Psioa.t -> Insight.t) ->
  envs:Psioa.t list ->
  eps:Rat.t ->
  q1:int ->
  q2:int ->
  depth:int ->
  a:Psioa.t ->
  b:Psioa.t ->
  verdict
(** [A ≤ B]: for every environment [E] and every [q1]-bounded scheduler the
    schema yields for [E ‖ A], search the [q2]-bounded schema schedulers of
    [E ‖ B] for one within sup-set distance [ε] (Definition 3.6). *)

val approx_le_engine :
  engine ->
  schema:Schema.t ->
  insight_of:(Psioa.t -> Insight.t) ->
  envs:Psioa.t list ->
  eps:Rat.t ->
  q1:int ->
  q2:int ->
  depth:int ->
  a:Psioa.t ->
  b:Psioa.t ->
  verdict
(** {!approx_le} with explicit engine knobs. Inherits the
    {!Measure.exec_dist} determinism contract: the verdict (holds, worst
    distance, details) is bit-identical for every [domains] count and
    compression level — experiment E18 asserts this on the compromise
    sweeps. *)

val approx_le_with :
  matcher:(env:Psioa.t -> comp_a:Psioa.t -> comp_b:Psioa.t -> Scheduler.t -> Scheduler.t) ->
  schema:Schema.t ->
  insight_of:(Psioa.t -> Insight.t) ->
  envs:Psioa.t list ->
  eps:Rat.t ->
  q1:int ->
  depth:int ->
  a:Psioa.t ->
  b:Psioa.t ->
  verdict
(** Like {!approx_le} but with an explicit σ ↦ σ' construction — the form
    used when validating the constructive proofs (Lemma D.1's
    [Forward^s]). *)

val pp_verdict : Format.formatter -> verdict -> unit
(** Render a verdict with its per-(environment, scheduler) details,
    matched-scheduler witnesses and (on failure) distinguishing
    observations. *)

val merge_verdicts : verdict list -> verdict
(** Conjunction of verdicts: holds iff all hold; worst distance is the
    maximum; details are concatenated. *)

val approx_le_family :
  window:int list ->
  schema:Schema.t ->
  insight_of:(Psioa.t -> Insight.t) ->
  envs:(int -> Psioa.t list) ->
  eps:(int -> Rat.t) ->
  q1:(int -> int) ->
  q2:(int -> int) ->
  depth:(int -> int) ->
  a:(int -> Psioa.t) ->
  b:(int -> Psioa.t) ->
  verdict
(** The family relation [A̲ ≤ B̲] (Definition 4.12, second half) over a
    window of indices. *)

val le_neg_pt :
  window:int list ->
  schema:Schema.t ->
  insight_of:(Psioa.t -> Insight.t) ->
  envs:(int -> Psioa.t list) ->
  eps:Cdse_bounded.Negligible.t ->
  q1:Cdse_util.Poly.t ->
  q2:Cdse_util.Poly.t ->
  depth:(int -> int) ->
  a:(int -> Psioa.t) ->
  b:(int -> Psioa.t) ->
  verdict
(** [A̲ ≤^{Sch,f}_{neg,pt} B̲]: polynomial scheduler bounds and negligible
    slack, witnessed on the window. *)

(** {2 Hybrid chains}

    Pairwise distances along a chain of automata and the end-to-end
    distance, with the triangle bound [Σ εᵢ] — the quantitative backbone
    of hybrid arguments (and of Theorem 4.16's slack accounting, checked
    in experiment E4). *)

type chain_report = {
  pairwise : Rat.t list;  (** ε between consecutive automata *)
  total_bound : Rat.t;  (** Σ of the pairwise distances *)
  direct : Rat.t;  (** ε between the endpoints *)
  triangle_holds : bool;  (** [direct ≤ total_bound] *)
}

val triangle_chain :
  schema:Schema.t ->
  insight_of:(Psioa.t -> Insight.t) ->
  envs:Psioa.t list ->
  q:int ->
  depth:int ->
  Psioa.t list ->
  chain_report
