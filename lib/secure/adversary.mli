(** Adversaries for structured automata (Definition 4.24, Lemma 4.25).

    An adversary [Adv] for [(A, EAct_A)] is a PSIOA, partially compatible
    with [A], such that at every reachable composite state (i) the
    adversary inputs of [A] are outputs of [Adv] — the adversary drives the
    attack surface — and (ii) [Adv] never touches the environment actions
    of [A]. *)

open Cdse_psioa

exception
  Not_adversary of {
    structured : string;  (** name of the structured automaton *)
    adversary : string;  (** name of the candidate adversary *)
    state : Value.t;  (** reachable composite state where the check failed *)
    condition : string;  (** which Definition 4.24 condition was violated *)
    action : Action.t option;  (** a concrete offending action, when one exists *)
  }
(** Raised by {!check_exn}; a printer is registered, so an uncaught
    violation renders both automaton names, the composite state and the
    offending action. *)

val check :
  ?max_states:int -> ?max_depth:int -> structured:Structured.t -> Psioa.t -> (unit, string) result
(** Verify the two Definition 4.24 conditions on the explored reachable
    states of [A ‖ Adv]. The [Error] carries the rendered
    {!Not_adversary} — automaton names, composite state and offending
    action. *)

val check_exn : ?max_states:int -> ?max_depth:int -> structured:Structured.t -> Psioa.t -> unit
(** Like {!check} but raises {!Not_adversary} on violation. *)

val is_adversary : ?max_states:int -> ?max_depth:int -> structured:Structured.t -> Psioa.t -> bool

val full_control :
  ?max_states:int -> ?max_depth:int -> structured:Structured.t -> Psioa.t -> bool
(** The stronger condition assumed by the dummy-adversary reduction
    (Lemma D.1): additionally every adversary output of [A] is an input of
    [Adv], so all [AAct] traffic flows through the adversary. *)

val silent_takeover : Psioa.t -> Psioa.t
(** [silent_takeover a]: the adversarial reinterpretation of a member over
    the {e same} state space in which every locally controlled action is
    silenced — inputs are still absorbed with [a]'s own transitions (so
    input-enabledness towards composition partners is preserved and the
    state keeps tracking the protocol), but the member never outputs or
    steps internally again. The canonical [~adversarial] argument for
    [Fault.compromise] when the attack is denial of participation (a
    taken-over validator that receives proposals but never votes). States
    with an empty signature stay empty, preserving PCA destruction. *)
