open Cdse_prob
open Cdse_psioa
open Cdse_sched

type verdict = { holds : bool; worst : Rat.t; detail : (string * Rat.t) list }

(* Engine knobs threaded into every underlying [Measure.exec_dist] call.
   A record passed positionally (not optional arguments): the checker
   entry points below have no positional parameter, so optional arguments
   could never be erased. *)
type engine = { memo : bool; domains : int; compress : Measure.compress }

let default_engine = { memo = false; domains = 1; compress = `Off }

let fdist ~engine ~insight_of composite sched ~depth =
  Insight.apply ~memo:engine.memo ~domains:engine.domains ~compress:engine.compress
    (insight_of composite) composite sched ~depth

(* Core loop shared by the search and explicit-matcher variants: for each
   environment and each σ over E‖A, obtain candidate σ' over E‖B and record
   the best distance. The engine knobs are passed to every measure
   computation unchanged, so a verdict is bit-identical across [domains]
   and [compress] by the {!Cdse_sched.Measure} determinism contract. *)
let run ~engine ~insight_of ~envs ~eps ~depth ~scheds_for_a ~candidates_for ~a ~b =
  let detail = ref [] in
  let worst = ref Rat.zero in
  let holds = ref true in
  List.iter
    (fun env ->
      Cdse_obs.Trace.span "emulation.env"
        ~args:(fun () -> [ ("env", Psioa.name env) ])
      @@ fun () ->
      let comp_a = Compose.pair env a in
      let comp_b = Compose.pair env b in
      List.iter
        (fun sigma1 ->
          Cdse_obs.Trace.span "emulation.sched"
            ~args:(fun () -> [ ("sched", sigma1.Scheduler.name) ])
          @@ fun () ->
          let da = fdist ~engine ~insight_of comp_a sigma1 ~depth in
          let best, witness, best_db =
            List.fold_left
              (fun (best, witness, best_db) sigma2 ->
                let db = fdist ~engine ~insight_of comp_b sigma2 ~depth in
                let d = Stat.sup_set_distance da db in
                if Rat.compare d best < 0 then (d, sigma2.Scheduler.name, Some db)
                else (best, witness, best_db))
              (Rat.one, "<none>", None)
              (candidates_for ~env ~comp_a ~comp_b sigma1)
          in
          let entry = Printf.sprintf "%s / %s ⇒ %s" (Psioa.name env) sigma1.Scheduler.name witness in
          let entry =
            (* On failure, attach the distinguishing observation — the
               ζ of Definition 3.6 carrying the largest mass gap. *)
            if Rat.compare best eps > 0 then
              match Option.bind best_db (Stat.max_gap_point da) with
              | Some (obs, gap) ->
                  Printf.sprintf "%s [distinguished by %s, gap %s]" entry (Value.to_string obs)
                    (Rat.to_string gap)
              | None -> entry
            else entry
          in
          detail := (entry, best) :: !detail;
          if Rat.compare best !worst > 0 then worst := best;
          if Rat.compare best eps > 0 then holds := false)
        (scheds_for_a ~comp_a))
    envs;
  { holds = !holds; worst = !worst; detail = List.rev !detail }

let approx_le_engine engine ~schema ~insight_of ~envs ~eps ~q1 ~q2 ~depth ~a ~b =
  run ~engine ~insight_of ~envs ~eps ~depth ~a ~b
    ~scheds_for_a:(fun ~comp_a -> Schema.bounded_instantiate schema ~bound:q1 comp_a)
    ~candidates_for:(fun ~env:_ ~comp_a:_ ~comp_b _sigma1 ->
      Schema.bounded_instantiate schema ~bound:q2 comp_b)

let approx_le ~schema ~insight_of ~envs ~eps ~q1 ~q2 ~depth ~a ~b =
  approx_le_engine default_engine ~schema ~insight_of ~envs ~eps ~q1 ~q2 ~depth ~a ~b

let approx_le_with ~matcher ~schema ~insight_of ~envs ~eps ~q1 ~depth ~a ~b =
  run ~engine:default_engine ~insight_of ~envs ~eps ~depth ~a ~b
    ~scheds_for_a:(fun ~comp_a -> Schema.bounded_instantiate schema ~bound:q1 comp_a)
    ~candidates_for:(fun ~env ~comp_a ~comp_b sigma1 -> [ matcher ~env ~comp_a ~comp_b sigma1 ])

let merge_verdicts vs =
  { holds = List.for_all (fun v -> v.holds) vs;
    worst = List.fold_left (fun acc v -> Rat.max acc v.worst) Rat.zero vs;
    detail = List.concat_map (fun v -> v.detail) vs }

let approx_le_family ~window ~schema ~insight_of ~envs ~eps ~q1 ~q2 ~depth ~a ~b =
  merge_verdicts
    (List.map
       (fun k ->
         let v =
           approx_le ~schema ~insight_of ~envs:(envs k) ~eps:(eps k) ~q1:(q1 k) ~q2:(q2 k)
             ~depth:(depth k) ~a:(a k) ~b:(b k)
         in
         { v with detail = List.map (fun (s, d) -> (Printf.sprintf "k=%d %s" k s, d)) v.detail })
       window)

let le_neg_pt ~window ~schema ~insight_of ~envs ~eps ~q1 ~q2 ~depth ~a ~b =
  approx_le_family ~window ~schema ~insight_of ~envs ~eps
    ~q1:(Cdse_util.Poly.eval q1) ~q2:(Cdse_util.Poly.eval q2) ~depth ~a ~b


(* Hybrid chains: pairwise distances along [A₀ … Aₙ] and the end-to-end
   distance, with the triangle bound Σ εᵢ — the quantitative backbone of
   hybrid arguments and of Theorem 4.16's slack accounting. *)
type chain_report = {
  pairwise : Rat.t list;
  total_bound : Rat.t;
  direct : Rat.t;
  triangle_holds : bool;
}

let triangle_chain ~schema ~insight_of ~envs ~q ~depth automata =
  let dist a b =
    (approx_le ~schema ~insight_of ~envs ~eps:Rat.one ~q1:q ~q2:q ~depth ~a ~b).worst
  in
  let rec pairs = function
    | a :: (b :: _ as rest) -> dist a b :: pairs rest
    | _ -> []
  in
  match automata with
  | [] | [ _ ] -> { pairwise = []; total_bound = Rat.zero; direct = Rat.zero; triangle_holds = true }
  | first :: _ ->
      let last = List.nth automata (List.length automata - 1) in
      let pairwise = pairs automata in
      let total_bound = Rat.sum pairwise in
      let direct = dist first last in
      { pairwise; total_bound; direct; triangle_holds = Rat.compare direct total_bound <= 0 }


let pp_verdict fmt v =
  Format.fprintf fmt "@[<v>holds: %b (worst distance %s)" v.holds (Rat.to_string v.worst);
  List.iter (fun (s, d) -> Format.fprintf fmt "@,  %s -> %s" s (Rat.to_string d)) v.detail;
  Format.fprintf fmt "@]"
