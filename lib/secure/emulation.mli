(** Dynamic secure emulation (Definition 4.26) and its composability
    (Theorem 4.30 / D.2) — the paper's main contribution.

    [A ≤_SE B] holds when for every polynomially-bounded adversary [Adv]
    for [A] there is a simulator [Sim] for [B] with
    [hide(A ‖ Adv, AAct_A) ≤_{neg,pt} hide(B ‖ Sim, AAct_B)].

    The checker quantifies over an explicit adversary list and takes the
    simulator synthesis as a function — for concrete protocols the
    simulator is protocol-specific (see {!Cdse_crypto.Secure_channel}),
    while for the composability theorem it is the generic construction of
    the proof: [Sim = hide(DSim¹ ‖ … ‖ DSimᵇ ‖ g(Adv), g(AAct_Â))], built
    here by {!composite_simulator}. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched

val hidden_system : ?max_states:int -> ?max_depth:int -> Structured.t -> Psioa.t -> Psioa.t
(** [hide(A ‖ Adv, AAct_A)] with the underlined (universe) adversary
    action set of [A]. The optional limits bound the reachability
    exploration computing the universe — callers must pick them large
    enough that every adversary action name appears (protocol action
    alphabets here surface within a few steps). *)

val check :
  schema:Schema.t ->
  insight_of:(Psioa.t -> Insight.t) ->
  envs:Psioa.t list ->
  eps:Rat.t ->
  q1:int ->
  q2:int ->
  depth:int ->
  adversaries:Psioa.t list ->
  sim_for:(Psioa.t -> Psioa.t) ->
  real:Structured.t ->
  ideal:Structured.t ->
  Impl.verdict
(** Definition 4.26 on an instance: for each listed adversary [Adv], verify
    [hide(real ‖ Adv, AAct) ≤ hide(ideal ‖ sim_for Adv, AAct)] with the
    approximate-implementation checker. *)

val check_engine :
  Impl.engine ->
  schema:Schema.t ->
  insight_of:(Psioa.t -> Insight.t) ->
  envs:Psioa.t list ->
  eps:Rat.t ->
  q1:int ->
  q2:int ->
  depth:int ->
  adversaries:Psioa.t list ->
  sim_for:(Psioa.t -> Psioa.t) ->
  real:Structured.t ->
  ideal:Structured.t ->
  Impl.verdict
(** {!check} with explicit {!Impl.engine} knobs, threaded through
    {!Impl.approx_le_engine} to every measure computation; verdicts are
    bit-identical across domain counts and compression levels. *)

exception
  Check_failed of {
    real : string;  (** name of the real structured automaton *)
    ideal : string;  (** name of the ideal functionality *)
    worst : Rat.t;  (** worst best-match distance over the verdict *)
    witness : string;
        (** first failing detail line: environment, scheduler, matched
            candidate and (from {!Impl.approx_le}) the distinguishing
            observation carrying the largest mass gap *)
  }
(** Raised by {!check_exn}; a printer is registered, so an uncaught
    failure renders both automaton names, the exact slack and the
    distinguishing witness. *)

val check_exn :
  schema:Schema.t ->
  insight_of:(Psioa.t -> Insight.t) ->
  envs:Psioa.t list ->
  eps:Rat.t ->
  q1:int ->
  q2:int ->
  depth:int ->
  adversaries:Psioa.t list ->
  sim_for:(Psioa.t -> Psioa.t) ->
  real:Structured.t ->
  ideal:Structured.t ->
  Impl.verdict
(** Like {!check} but raises {!Check_failed} when the verdict does not
    hold. *)

type component = {
  real : Structured.t;
  ideal : Structured.t;
  g : Dummy.renaming;  (** fresh renaming of this component's AAct *)
  dsim : Psioa.t;
      (** the simulator promised by [realᵢ ≤_SE idealᵢ] for this
          component's dummy adversary *)
}

val composite_simulator : components:component list -> adv:Psioa.t -> Psioa.t
(** The Theorem 4.30 construction: rename the composite adversary's
    interactions through [g = g¹ ∪ … ∪ gᵇ], attach every component's
    dummy-simulator, and hide the internalised renamed actions:
    [Sim = hide(DSim¹ ‖ … ‖ DSimᵇ ‖ g(Adv), g(AAct_Â))]. *)

val dummy_for : component -> Psioa.t
(** [Dummy(realᵢ, gᵢ)] — the dummy adversary each component's emulation is
    instantiated with inside the composability proof. *)
