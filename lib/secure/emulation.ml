open Cdse_psioa

let hidden_system ?max_states ?max_depth structured adv =
  let aact = Structured.aact_universe ?max_states ?max_depth structured in
  Hide.psioa_const (Compose.pair (Structured.psioa structured) adv) aact

exception
  Check_failed of {
    real : string;
    ideal : string;
    worst : Cdse_prob.Rat.t;
    witness : string;
  }

(* Name both sides and surface the first failing (environment, scheduler)
   detail line — it carries the matched-scheduler witness and, from
   [Impl.run], the distinguishing observation with the largest mass gap. *)
let () =
  Printexc.register_printer (function
    | Check_failed { real; ideal; worst; witness } ->
        Some
          (Printf.sprintf
             "Emulation.Check_failed: %S does not securely emulate %S (worst distance %s; %s)"
             real ideal (Cdse_prob.Rat.to_string worst) witness)
    | _ -> None)

let check_engine engine ~schema ~insight_of ~envs ~eps ~q1 ~q2 ~depth ~adversaries ~sim_for
    ~real ~ideal =
  let verdicts =
    List.map
      (fun adv ->
        Cdse_obs.Trace.span "emulation.adversary"
          ~args:(fun () -> [ ("adv", Psioa.name adv) ])
        @@ fun () ->
        let sim = sim_for adv in
        let v =
          Impl.approx_le_engine engine ~schema ~insight_of ~envs ~eps ~q1 ~q2 ~depth
            ~a:(hidden_system real adv) ~b:(hidden_system ideal sim)
        in
        { v with
          Impl.detail =
            List.map (fun (s, d) -> (Printf.sprintf "adv=%s %s" (Psioa.name adv) s, d)) v.Impl.detail })
      adversaries
  in
  Impl.merge_verdicts verdicts

let check ~schema ~insight_of ~envs ~eps ~q1 ~q2 ~depth ~adversaries ~sim_for ~real ~ideal =
  check_engine Impl.default_engine ~schema ~insight_of ~envs ~eps ~q1 ~q2 ~depth ~adversaries
    ~sim_for ~real ~ideal

let check_exn ~schema ~insight_of ~envs ~eps ~q1 ~q2 ~depth ~adversaries ~sim_for ~real ~ideal =
  let v = check ~schema ~insight_of ~envs ~eps ~q1 ~q2 ~depth ~adversaries ~sim_for ~real ~ideal in
  if v.Impl.holds then v
  else
    let witness =
      match
        List.find_opt (fun (_, d) -> Cdse_prob.Rat.compare d eps > 0) v.Impl.detail
      with
      | Some (s, d) -> Printf.sprintf "%s -> %s" s (Cdse_prob.Rat.to_string d)
      | None -> "<no failing detail>"
    in
    raise
      (Check_failed
         { real = Structured.name real;
           ideal = Structured.name ideal;
           worst = v.Impl.worst;
           witness })

type component = {
  real : Structured.t;
  ideal : Structured.t;
  g : Dummy.renaming;
  dsim : Psioa.t;
}

let dummy_for c =
  Dummy.make
    ~name:(Structured.name c.real ^ ".dummy")
    ~ai:(Structured.ai_universe c.real)
    ~ao:(Structured.ao_universe c.real)
    ~g:c.g

let composite_simulator ~components ~adv =
  (* g = g¹ ∪ … ∪ gᵇ on the disjoint adversary alphabets of the
     components. *)
  let aact_univs = List.map (fun c -> Structured.aact_universe c.real) components in
  let g_apply act =
    let rec go cs univs =
      match (cs, univs) with
      | [], [] -> act
      | c :: cs', u :: us' -> if Action_set.mem act u then c.g.Dummy.apply act else go cs' us'
      | _ -> act
    in
    go components aact_univs
  in
  let full_univ = List.fold_left Action_set.union Action_set.empty aact_univs in
  let g_adv = Rename.psioa adv (Rename.only full_univ (fun _ act -> g_apply act)) in
  let renamed_univ = Action_set.map_actions g_apply full_univ in
  let dsims = List.map (fun c -> c.dsim) components in
  Hide.psioa_const (Compose.parallel (dsims @ [ g_adv ])) renamed_univ
