open Cdse_psioa

exception
  Not_adversary of {
    structured : string;
    adversary : string;
    state : Value.t;
    condition : string;
    action : Action.t option;
  }

(* Name both automata, render the offending composite state and — when one
   exists — the concrete action violating the condition: enough to find
   the bad signature entry without a debugger (the PR-2 convention of
   [Psioa.Not_enabled] / [Scheduler.Bad_choice]). *)
let () =
  Printexc.register_printer (function
    | Not_adversary { structured; adversary; state; condition; action } ->
        Some
          (Format.asprintf
             "Adversary.Not_adversary: %S is not an adversary for %S: %s at composite state %a%s"
             adversary structured condition Value.pp state
             (match action with
             | None -> ""
             | Some a -> Printf.sprintf " (offending action %s)" (Action.to_string a)))
    | _ -> None)

let violation ~structured ~adv ~state ~condition ~action =
  Not_adversary
    { structured = Structured.name structured;
      adversary = Psioa.name adv;
      state;
      condition;
      action }

let on_composite_states ?max_states ?max_depth ~structured ~adv check =
  let a = Structured.psioa structured in
  let comp = Compose.pair a adv in
  List.fold_left
    (fun acc q ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          let qa, qadv = Compose.proj_pair q in
          check ~q ~qa ~qadv)
    (Ok ())
    (Psioa.reachable ?max_states ?max_depth comp)

let check_exn ?max_states ?max_depth ~structured adv =
  if not (Compose.partially_compatible ?max_states ?max_depth [ Structured.psioa structured; adv ]) then
    raise
      (violation ~structured ~adv ~state:(Psioa.start adv)
         ~condition:"not partially compatible with the structured automaton" ~action:None);
  match
    on_composite_states ?max_states ?max_depth ~structured ~adv (fun ~q ~qa ~qadv ->
        let adv_sig = Psioa.signature adv qadv in
        let missing = Action_set.diff (Structured.ai structured qa) (Sigs.output adv_sig) in
        if not (Action_set.is_empty missing) then
          Error
            (violation ~structured ~adv ~state:q
               ~condition:"AI_A ⊄ out(Adv) — an adversary input of the protocol is not driven"
               ~action:(Action_set.min_elt_opt missing))
        else
          let touched = Action_set.inter (Structured.eact structured qa) (Sigs.all adv_sig) in
          if not (Action_set.is_empty touched) then
            Error
              (violation ~structured ~adv ~state:q
                 ~condition:"adversary touches EAct_A — an environment action is on its interface"
                 ~action:(Action_set.min_elt_opt touched))
          else Ok ())
  with
  | Ok () -> ()
  | Error exn -> raise exn

let check ?max_states ?max_depth ~structured adv =
  match check_exn ?max_states ?max_depth ~structured adv with
  | () -> Ok ()
  | exception (Not_adversary _ as exn) -> Error (Printexc.to_string exn)

let is_adversary ?max_states ?max_depth ~structured adv =
  match check ?max_states ?max_depth ~structured adv with Ok () -> true | Error _ -> false

let full_control ?max_states ?max_depth ~structured adv =
  is_adversary ?max_states ?max_depth ~structured adv
  &&
  match
    on_composite_states ?max_states ?max_depth ~structured ~adv (fun ~q:_ ~qa ~qadv ->
        if
          Action_set.subset (Structured.ao structured qa)
            (Sigs.input (Psioa.signature adv qadv))
        then Ok ()
        else Error "AO_A ⊄ in(Adv)")
  with
  | Ok () -> true
  | Error _ -> false

(* ------------------------------------------------- adversarial takeover *)

(* The canonical adversarial reinterpretation of a member for
   [Fault.compromise]: same state space, but every locally controlled
   action is silenced — the member keeps absorbing its inputs (so
   composition partners and input-enabledness are untouched, and the state
   keeps evolving under the protocol's traffic) while contributing nothing
   of its own. A silently-taken-over committee validator accepts proposals
   but never votes; combined with a k-of-n budget this is exactly the
   "at most k members turn bad" threat model. States whose signature was
   already empty stay empty, preserving PCA destruction. *)
let silent_takeover auto =
  let signature q =
    let s = Psioa.signature auto q in
    let input = Sigs.input s in
    if Action_set.is_empty input then Sigs.empty
    else Sigs.make ~input ~output:Action_set.empty ~internal:Action_set.empty
  in
  let transition q a =
    if Action_set.mem a (Sigs.input (Psioa.signature auto q)) then Psioa.transition auto q a
    else None
  in
  Psioa.make
    ~name:(Psioa.name auto ^ ".silenced")
    ~start:(Psioa.start auto)
    ~signature ~transition
