open Cdse_prob
open Cdse_psioa
open Cdse_sched
module Obs = Cdse_obs.Obs
module Trace = Cdse_obs.Trace

(* Fault transitions evaluated, by kind. A transition fires when the
   measure engine (or a simulation driver) evaluates it; under
   [Psioa.memoize] a cached transition is not re-evaluated, so these count
   distinct evaluations, not probability-weighted occurrences. *)
let c_crash = Obs.counter "fault.crash"
let c_recover = Obs.counter "fault.recover"
let c_drop = Obs.counter "fault.drop"
let c_dup = Obs.counter "fault.dup"
let c_skip = Obs.counter "fault.skip"
let c_injected = Obs.counter "fault.injected"
let c_budget_halt = Obs.counter "fault.budget.halt"
let c_compromise = Obs.counter "fault.compromise"
let c_restore = Obs.counter "fault.restore"

(* Wrapped states are tagged so fault wrappers nest and never collide with
   the wrapped automaton's own state space. *)
let live_tag = "fault-live"
let dead_tag = "fault-dead"
let evil_tag = "fault-evil"

let crash_action n = Action.make (n ^ ".crash")
let recover_action n = Action.make (n ^ ".recover")
let compromise_action n = Action.make (n ^ ".compromise")
let restore_action n = Action.make (n ^ ".restore")

(* ------------------------------------------------------------- crashes *)

(* Shared shape of crash_stop / crash_recover: live states carry the
   original signature plus the crash input; the dead state remembers the
   crash-time state [q0] and absorbs (self-loops) the inputs that were
   enabled there — the signature shrinks to inputs only, exactly the
   state-dependent shrinking Definition 2.1 permits, and input-enabledness
   towards composition partners is preserved. [revive] is the recover
   behaviour of the dead state, or [None] for crash-stop. *)
let crash_wrap ~suffix ~crash ~revive auto =
  let live q = Value.tag live_tag q in
  let dead q = Value.tag dead_tag q in
  let dead_inputs q0 = Action_set.add crash (Sigs.input (Psioa.signature auto q0)) in
  let signature q =
    match q with
    | Value.Tag (t, q0) when String.equal t live_tag ->
        let s = Psioa.signature auto q0 in
        Sigs.make
          ~input:(Action_set.add crash (Sigs.input s))
          ~output:(Sigs.output s) ~internal:(Sigs.internal s)
    | Value.Tag (t, q0) when String.equal t dead_tag ->
        let input =
          match revive with
          | None -> dead_inputs q0
          | Some (rec_act, _) -> Action_set.add rec_act (dead_inputs q0)
        in
        Sigs.make ~input ~output:Action_set.empty ~internal:Action_set.empty
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag (t, q0) when String.equal t live_tag ->
        if Action.equal a crash then begin
          Obs.incr c_crash;
          Trace.instant ~args:(fun () -> [ ("member", Psioa.name auto) ]) "fault.crash";
          Some (Vdist.dirac (dead q0))
        end
        else Option.map (Vdist.map live) (Psioa.transition auto q0 a)
    | Value.Tag (t, q0) when String.equal t dead_tag -> (
        match revive with
        | Some (rec_act, reboot) when Action.equal a rec_act ->
            Obs.incr c_recover;
            Trace.instant ~args:(fun () -> [ ("member", Psioa.name auto) ]) "fault.recover";
            Some (Vdist.dirac (live (reboot q0)))
        | _ ->
            if Action_set.mem a (dead_inputs q0) then Some (Vdist.dirac q)
            else None)
    | _ -> None
  in
  Psioa.make
    ~name:(Psioa.name auto ^ suffix)
    ~start:(live (Psioa.start auto))
    ~signature ~transition

let crash_stop ?crash auto =
  let crash = match crash with Some a -> a | None -> crash_action (Psioa.name auto) in
  crash_wrap ~suffix:"+crash" ~crash ~revive:None auto

let crash_recover ?crash ?recover ?reboot auto =
  let crash = match crash with Some a -> a | None -> crash_action (Psioa.name auto) in
  let recover = match recover with Some a -> a | None -> recover_action (Psioa.name auto) in
  let reboot = match reboot with Some f -> f | None -> fun _ -> Psioa.start auto in
  crash_wrap ~suffix:"+crash-recover" ~crash ~revive:(Some (recover, reboot)) auto

(* ---------------------------------------------------------- compromise *)

(* Dynamic compromise: a member that turns adversarial mid-run. Honest
   states delegate to [auto] and additionally accept the compromise input;
   firing it hands the {e same} underlying state to [adversarial], whose
   transition function takes over until a restore input hands it back.
   Both automata must share a state space (the adversarial behaviour is a
   reinterpretation of the member, not a different machine), so the swap
   is the identity on states and Definition 2.1's per-state signature
   discipline is preserved on both sides of the takeover.

   Signature-emptiness is preserved in both modes: a destroyed member
   (empty signature) offers neither the compromise nor the restore input,
   so configuration reduction (Definition 2.12) and the zero-compromise
   trace equivalence of the wrapper are unaffected. *)
let compromise ?compromise ?restore ~adversarial auto =
  let comp_act =
    match compromise with Some a -> a | None -> compromise_action (Psioa.name auto)
  in
  let rest_act =
    match restore with Some a -> a | None -> restore_action (Psioa.name auto)
  in
  let live q = Value.tag live_tag q in
  let evil q = Value.tag evil_tag q in
  let signature q =
    match q with
    | Value.Tag (t, q0) when String.equal t live_tag ->
        let s = Psioa.signature auto q0 in
        if Sigs.is_empty s then Sigs.empty
        else
          Sigs.make
            ~input:(Action_set.add comp_act (Sigs.input s))
            ~output:(Sigs.output s) ~internal:(Sigs.internal s)
    | Value.Tag (t, q0) when String.equal t evil_tag ->
        let s = Psioa.signature adversarial q0 in
        if Sigs.is_empty s then Sigs.empty
        else
          Sigs.make
            ~input:(Action_set.add rest_act (Sigs.input s))
            ~output:(Sigs.output s) ~internal:(Sigs.internal s)
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag (t, q0) when String.equal t live_tag ->
        if Action.equal a comp_act then
          if Sigs.is_empty (Psioa.signature auto q0) then None
          else begin
            Obs.incr c_compromise;
            Trace.instant
              ~args:(fun () -> [ ("member", Psioa.name auto) ])
              "fault.compromise";
            Some (Vdist.dirac (evil q0))
          end
        else Option.map (Vdist.map live) (Psioa.transition auto q0 a)
    | Value.Tag (t, q0) when String.equal t evil_tag ->
        if Action.equal a rest_act then
          if Sigs.is_empty (Psioa.signature adversarial q0) then None
          else begin
            Obs.incr c_restore;
            Trace.instant
              ~args:(fun () -> [ ("member", Psioa.name auto) ])
              "fault.restore";
            Some (Vdist.dirac (live q0))
          end
        else Option.map (Vdist.map evil) (Psioa.transition adversarial q0 a)
    | _ -> None
  in
  Psioa.make
    ~name:(Psioa.name auto ^ "+compromise")
    ~start:(live (Psioa.start auto))
    ~signature ~transition

let is_compromised = function
  | Value.Tag (t, q0) when String.equal t evil_tag -> Some q0
  | _ -> None

(* ------------------------------------------------------------ channels *)

let wire ~channel a = Action.with_name (fun n -> channel ^ "/" ^ n) a

(* A channel interposer is a bounded FIFO buffer over the interposed action
   set, plus one locally controlled fault action characteristic of the
   channel kind. The buffer holds indices into [acts]; states are
   [Tag ("chan", List [Int i; …])]. Inputs (the wire actions) are enabled
   in every state — a message arriving on a full buffer is absorbed, so
   the channel never blocks its sender. *)
let channel_auto ~fault_suffix ~fault_enabled ~fault_step ?(cap = 8) ~name ~acts () =
  let acts = Array.of_list acts in
  let n_acts = Array.length acts in
  if n_acts = 0 then invalid_arg (name ^ ": empty interposed action set");
  let wires = Array.map (fun a -> wire ~channel:name a) acts in
  let fault = Action.make (name ^ fault_suffix) in
  let c_fault =
    match fault_suffix with
    | ".drop" -> c_drop
    | ".dup" -> c_dup
    | ".skip" -> c_skip
    | s -> Obs.counter ("fault" ^ s)
  in
  let st buf = Value.tag "chan" (Value.list (List.map Value.int buf)) in
  let buf_of = function
    | Value.Tag ("chan", Value.List l) ->
        Some (List.filter_map (function Value.Int i -> Some i | _ -> None) l)
    | _ -> None
  in
  let wire_idx a =
    let rec go i = if i >= n_acts then None else if Action.equal wires.(i) a then Some i else go (i + 1) in
    go 0
  in
  let signature q =
    match buf_of q with
    | None -> Sigs.empty
    | Some buf ->
        let output =
          match buf with [] -> Action_set.empty | hd :: _ -> Action_set.singleton acts.(hd)
        in
        let internal =
          if fault_enabled ~cap buf then Action_set.singleton fault else Action_set.empty
        in
        Sigs.make ~input:(Action_set.of_list (Array.to_list wires)) ~output ~internal
  in
  let transition q a =
    match buf_of q with
    | None -> None
    | Some buf -> (
        match wire_idx a with
        | Some i ->
            (* Arrival: enqueue, or absorb when the buffer is full. *)
            Some (Vdist.dirac (if List.length buf < cap then st (buf @ [ i ]) else q))
        | None -> (
            match buf with
            | hd :: tl ->
                if Action.equal a acts.(hd) then Some (Vdist.dirac (st tl))
                else if Action.equal a fault && fault_enabled ~cap buf then begin
                  Obs.incr c_fault;
                  Some (Vdist.dirac (st (fault_step ~cap ~hd ~tl buf)))
                end
                else None
            | [] -> None))
  in
  Psioa.make ~name ~start:(st []) ~signature ~transition

let lossy_channel ?cap ~name ~acts () =
  channel_auto ?cap ~name ~acts ~fault_suffix:".drop"
    ~fault_enabled:(fun ~cap:_ buf -> buf <> [])
    ~fault_step:(fun ~cap:_ ~hd:_ ~tl _ -> tl)
    ()

let dup_channel ?cap ~name ~acts () =
  channel_auto ?cap ~name ~acts ~fault_suffix:".dup"
    ~fault_enabled:(fun ~cap buf -> buf <> [] && List.length buf < cap)
    ~fault_step:(fun ~cap:_ ~hd ~tl _ -> hd :: hd :: tl)
    ()

let delay_channel ?cap ~name ~acts () =
  channel_auto ?cap ~name ~acts ~fault_suffix:".skip"
    ~fault_enabled:(fun ~cap:_ buf -> List.length buf >= 2)
    ~fault_step:(fun ~cap:_ ~hd ~tl _ -> tl @ [ hd ])
    ()

let via ?name ~channel ~acts sender receiver =
  let cname = Psioa.name channel in
  let aset = Action_set.of_list acts in
  let wired = Rename.psioa sender (Rename.only aset (fun _ a -> wire ~channel:cname a)) in
  let composite = Compose.parallel ?name [ wired; channel; receiver ] in
  Hide.psioa_const composite (Action_set.map_actions (wire ~channel:cname) aset)

(* ------------------------------------------------------------ injector *)

let injector ?(name = "fault-injector") ?(each = 1) ~faults () =
  let faults = Array.of_list faults in
  let n = Array.length faults in
  let st counts = Value.tag "inj" (Value.list (List.map Value.int (Array.to_list counts))) in
  let counts_of = function
    | Value.Tag ("inj", Value.List l) ->
        Some (Array.of_list (List.filter_map (function Value.Int i -> Some i | _ -> None) l))
    | _ -> None
  in
  let signature q =
    match counts_of q with
    | Some counts when Array.length counts = n ->
        let live = ref [] in
        Array.iteri (fun i c -> if c > 0 then live := faults.(i) :: !live) counts;
        Sigs.make ~input:Action_set.empty ~output:(Action_set.of_list !live)
          ~internal:Action_set.empty
    | _ -> Sigs.empty
  in
  let transition q a =
    match counts_of q with
    | Some counts when Array.length counts = n ->
        let rec go i =
          if i >= n then None
          else if counts.(i) > 0 && Action.equal a faults.(i) then begin
            Obs.incr c_injected;
            Trace.instant
              ~args:(fun () -> [ ("fault", Action.to_string faults.(i)) ])
              "fault.injected";
            let counts' = Array.copy counts in
            counts'.(i) <- counts.(i) - 1;
            Some (Vdist.dirac (st counts'))
          end
          else go (i + 1)
        in
        go 0
    | _ -> None
  in
  Psioa.make ~name ~start:(st (Array.make n each)) ~signature ~transition

(* ------------------------------------------------------------- budgets *)

type kind = Crash | Recover | Drop | Dup | Skip | Compromise | Restore

let kind_name = function
  | Crash -> "crash"
  | Recover -> "recover"
  | Drop -> "drop"
  | Dup -> "dup"
  | Skip -> "skip"
  | Compromise -> "compromise"
  | Restore -> "restore"

(* Structural classification on the final dotted component of the action
   name. Crash/recover/compromise/restore actions carry an optional numeric
   instance index ([n.crash], [n.crash3] — the committee names its crash
   inputs that way), channel faults never do. The component must match
   exactly apart from that index: [report.crash_count] (stem
   [crash_count]), [x.recovery], [sys.compromised] and [cfg.restore_keys]
   are not faults, and neither is an undotted name like [dropout]. *)
let fault_kind a =
  let n = Action.name a in
  match String.rindex_opt n '.' with
  | None -> None
  | Some i ->
      let last = String.sub n (i + 1) (String.length n - i - 1) in
      let is_digit c = c >= '0' && c <= '9' in
      let stem_with_index stem =
        let ls = String.length stem and ll = String.length last in
        ll >= ls
        && String.equal (String.sub last 0 ls) stem
        &&
        let rec digits j = j >= ll || (is_digit last.[j] && digits (j + 1)) in
        digits ls
      in
      if stem_with_index "crash" then Some Crash
      else if stem_with_index "recover" then Some Recover
      else if stem_with_index "compromise" then Some Compromise
      else if stem_with_index "restore" then Some Restore
      else if String.equal last "drop" then Some Drop
      else if String.equal last "dup" then Some Dup
      else if String.equal last "skip" then Some Skip
      else None

let default_is_fault a = fault_kind a <> None

let is_compromise a = fault_kind a = Some Compromise

(* The pre-structural heuristic, kept reachable for callers that relied on
   substring matching (e.g. fault actions buried mid-name by a later
   renaming). Known to misclassify: [report.crash_count] counts as a
   fault. *)
let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.equal (String.sub s i lb) sub || go (i + 1)) in
  go 0

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.equal (String.sub s (ls - lx) lx) suffix

let substring_is_fault a =
  let n = Action.name a in
  contains ~sub:".crash" n || contains ~sub:".recover" n
  || ends_with ~suffix:".drop" n || ends_with ~suffix:".dup" n
  || ends_with ~suffix:".skip" n

let count_faults ?(is_fault = default_is_fault) e =
  List.fold_left (fun k a -> if is_fault a then k + 1 else k) 0 (Exec.actions e)

let budget_sched ?(is_fault = default_is_fault) k sched =
  { sched with
    Scheduler.name = Printf.sprintf "fault-budget[%d] %s" k sched.Scheduler.name;
    (* The choice depends on the fault count of the whole history, not
       just (length, lstate): drop the memoryless promise. *)
    memoryless = false;
    choose =
      (fun e ->
        let d = sched.Scheduler.choose e in
        if count_faults ~is_fault e < k then d
        else
          let kept = Dist.filter (fun a -> not (is_fault a)) d in
          if Dist.size kept = Dist.size d then d
          else if Dist.size kept = 0 then begin
            (* Every enabled action is a fault: there is no non-faulty
               behaviour to condition on, so the budgeted scheduler halts
               deliberately — the empty choice has deficit 1, and the
               measure engine books the execution's whole remaining mass
               as halting mass (not as truncation deficit). *)
            Obs.incr c_budget_halt;
            Trace.instant "fault.budget.halt";
            kept
          end
          else
            (* Condition on the surviving support, preserving the original
               halting probability: mass(kept') = mass(d) exactly (the
               all-faults case above is the only one where mass drops). *)
            Dist.scale (Dist.mass d) (Dist.normalize kept)) }

let budget ?is_fault k schema =
  Schema.make
    ~name:(Printf.sprintf "fault-budget[%d] %s" k schema.Schema.name)
    (fun a -> List.map (budget_sched ?is_fault k) (Schema.instantiate schema a))

(* [budget_sched] conditions the wrapped scheduler's choice {e after} it is
   made, which is right for randomized schedulers but degenerate for
   deterministic ones: a dirac on a spent fault filters to the empty
   choice and the run halts even though non-fault actions were enabled.
   [budget_first_enabled] instead folds the budget into the pick itself —
   the least enabled action that is not a spent fault — so deterministic
   budget sweeps (experiment E18) degrade gracefully: below budget it
   coincides with [first_enabled]; at budget it behaves as first_enabled
   of the fault-free protocol. *)
let budget_first_enabled ?(is_fault = default_is_fault) ?(avoid = fun _ -> false) k auto =
  Scheduler.first_enabled_where
    ~name:(Printf.sprintf "budget-first[%d]" k)
    (fun e a ->
      (not (avoid a)) && ((not (is_fault a)) || count_faults ~is_fault e < k))
    auto

let compromise_budget ?avoid k =
  Schema.make
    ~name:(Printf.sprintf "compromise-budget[%d]" k)
    (fun a -> [ budget_first_enabled ~is_fault:is_compromise ?avoid k a ])
